// Ablation A1: virtual-channel count. The paper fixes V (assumption vi
// requires V >= 2 for deadlock freedom) but the model's multiplexing and
// source-queue terms depend on V explicitly; this bench sweeps V at a fixed
// operating point and near saturation, model vs simulator.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace kncube;
  std::cout << "=== Ablation A1: virtual channels (16x16, Lm=32, h=20%) ===\n\n";

  util::Table table({"V", "lambda", "model latency", "sim latency", "rel err",
                     "model VmuxHotY", "sim Vmux", "model sat rate"});
  table.set_title("Effect of virtual-channel count at ~50% of V=2 saturation");
  table.set_precision(4);

  // Fix the operating point to half the V=2 saturation so rows compare the
  // same absolute load.
  core::ScenarioSpec base = bench::paper_scenario(32, 0.2);
  const double lambda = 0.5 * core::model_saturation_rate(base).rate;

  for (int vcs : {2, 3, 4, 6}) {
    core::ScenarioSpec s = base;
    s.vcs = vcs;
    const auto pts = core::run_series(s, {lambda}, /*run_sim=*/true);
    const auto& p = pts[0];
    const double sat = core::model_saturation_rate(s).rate;
    table.add_row({static_cast<long long>(vcs), p.lambda,
                   p.model.saturated ? std::numeric_limits<double>::infinity()
                                     : p.model.latency,
                   p.sim.mean_latency, p.relative_error(), p.model.vc_mux_hot_y,
                   p.sim.mean_vc_multiplexing, sat});
  }
  table.print(std::cout);
  const std::string csv = core::export_csv(table, "ablation_vc");
  if (!csv.empty()) std::cout << "csv: " << csv << "\n";
  std::cout << "\nReading: more VCs deepen multiplexing (Vbar up) but relieve the\n"
               "source queues (lambda/V) and raise the saturation point slightly;\n"
               "the simulator shows the same direction with smaller magnitude.\n";
  return 0;
}
