// Ablation A4 — the paper's §5 future work, implemented twice over: bursty
// (two-state MMPP) arrivals vs Poisson (Bernoulli) at equal mean rate, on
// *both* sides. The simulator has carried MMPP since PR 3; the analytical
// side now predicts it too (the arrival-IDC service stage, DESIGN.md §13),
// so each arrival process gets a model column next to its sim column and
// the table reads as model-vs-sim per process, not just sim-vs-sim.
//
// The chains are fast-mixing (sigma = p_enter + p_leave around 0.1, a
// burst/idle cycle of ~60 cycles) — the regime the asymptotic-IDC
// approximation is built for — and satisfy the achievability constraint
// mult * pi_burst <= 1 that ScenarioSpec::validate() now enforces (the x8
// chain bursts one cycle in nine rather than one in six).
#include <iostream>

#include "bench/common.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace kncube;
  std::cout << "=== Ablation A4: bursty (MMPP) vs Poisson arrivals "
               "(16x16, Lm=32, h=20%) ===\n\n";

  core::ScenarioSpec base = bench::paper_scenario(32, 0.2);
  auto with_mmpp = [&](double mult, double p_enter, double p_leave) {
    core::ScenarioSpec spec = base;
    spec.arrivals = core::MmppArrivals{mult, p_enter, p_leave};
    return spec;
  };
  const core::ScenarioSpec spec4 = with_mmpp(4.0, 0.02, 0.08);   // pi_b = 1/5
  const core::ScenarioSpec spec8 = with_mmpp(8.0, 0.01, 0.08);   // pi_b = 1/9

  core::SweepEngine engine(base);
  core::SweepEngine engine4(spec4);
  core::SweepEngine engine8(spec8);
  // One anchor for every column: the MMPP families share the Bernoulli
  // saturation boundary (burstiness inflates waits, not the flit-bandwidth
  // pole), so equal fractions mean equal mean loads.
  const double sat = engine.saturation_rate().rate;

  util::Table table({"lambda/sat", "model Poisson", "sim Poisson",
                     "model MMPP x4", "sim MMPP x4", "model MMPP x8",
                     "sim MMPP x8"});
  table.set_title("Burstiness penalty at equal mean load, model vs sim");
  table.set_precision(4);

  auto model_lat = [](const model::ModelResult& r) {
    return r.saturated ? std::numeric_limits<double>::infinity() : r.latency;
  };
  auto sim_lat = [](const sim::SimResult& r) {
    return r.saturated ? std::numeric_limits<double>::infinity()
                       : r.mean_latency;
  };

  for (double frac : {0.2, 0.4, 0.6, 0.8}) {
    const double lambda = frac * sat;
    table.add_row({frac,
                   model_lat(engine.model_point(lambda)),
                   sim_lat(sim::simulate(core::to_sim_config(base, lambda))),
                   model_lat(engine4.model_point(lambda)),
                   sim_lat(sim::simulate(core::to_sim_config(spec4, lambda))),
                   model_lat(engine8.model_point(lambda)),
                   sim_lat(sim::simulate(core::to_sim_config(spec8, lambda)))});
  }
  table.print(std::cout);
  const std::string csv = core::export_csv(table, "ablation_bursty");
  if (!csv.empty()) std::cout << "csv: " << csv << "\n";
  std::cout << "\nReading: burstiness leaves the zero-load region untouched but\n"
               "inflates queueing as load grows. The arrival-IDC stage moves\n"
               "the model columns with the sim columns (larger multiplier,\n"
               "larger penalty at equal mean load); the residual gap at high\n"
               "load is the ladder documented in ACCURACY.json's MMPP points.\n";
  return 0;
}
