// Ablation A4 — the paper's §5 future work, implemented: bursty (two-state
// MMPP) arrivals vs Poisson (Bernoulli) at equal mean rate, on the
// simulator. The Poisson-based analytical model has no burstiness term, so
// the gap between the two sim columns bounds the error a bursty workload
// would induce in the model's predictions.
#include <iostream>

#include "bench/common.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace kncube;
  std::cout << "=== Ablation A4: bursty (MMPP) vs Poisson arrivals "
               "(16x16, Lm=32, h=20%) ===\n\n";

  core::ScenarioSpec base = bench::paper_scenario(32, 0.2);
  core::SweepEngine engine(base);
  const double sat = engine.saturation_rate().rate;

  util::Table table({"lambda/sat", "model (Poisson)", "sim Poisson", "sim MMPP x4",
                     "sim MMPP x8", "MMPP x8 / Poisson"});
  table.set_title("Burstiness penalty at equal mean load");
  table.set_precision(4);

  for (double frac : {0.2, 0.4, 0.6, 0.8}) {
    const double lambda = frac * sat;
    const model::ModelResult mr = engine.model_point(lambda);

    // The bursty variants are full ScenarioSpecs — MMPP arrivals are a
    // first-class spec field now, not a sim-config patch.
    auto run_with = [&](double burst_mult) {
      core::ScenarioSpec spec = base;
      if (burst_mult > 1.0) {
        spec.arrivals = core::MmppArrivals{burst_mult, 0.0008, 0.004};
      }
      return sim::simulate(core::to_sim_config(spec, lambda));
    };
    const sim::SimResult poisson = run_with(1.0);
    const sim::SimResult mmpp4 = run_with(4.0);
    const sim::SimResult mmpp8 = run_with(8.0);

    auto lat = [](const sim::SimResult& r) {
      return r.saturated ? std::numeric_limits<double>::infinity() : r.mean_latency;
    };
    table.add_row({frac,
                   mr.saturated ? std::numeric_limits<double>::infinity() : mr.latency,
                   lat(poisson), lat(mmpp4), lat(mmpp8),
                   poisson.mean_latency > 0 ? mmpp8.mean_latency / poisson.mean_latency
                                            : 0.0});
  }
  table.print(std::cout);
  const std::string csv = core::export_csv(table, "ablation_bursty");
  if (!csv.empty()) std::cout << "csv: " << csv << "\n";
  std::cout << "\nReading: burstiness leaves the zero-load region untouched but\n"
               "inflates queueing sharply as load grows — the regime where a\n"
               "non-Poisson extension of the model (the paper's stated next step)\n"
               "would be required.\n";
  return 0;
}
