// Mesh table: the k-ary n-mesh under uniform traffic — the position-
// dependent channel-class model (DESIGN.md §8) against the simulator, the
// per-position link-load profile that distinguishes a mesh from a torus,
// and the wrap-vs-no-wrap capacity comparison at equal node count.
//
// Everything runs through ScenarioSpec + SweepEngine: the registry
// dispatches the mesh spec to the uniform-mesh model, and the same engine
// supplies memoized warm-started solves, the saturation bisection and the
// parallel model-vs-sim sweep.
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "sim/simulator.hpp"
#include "topology/mesh_geometry.hpp"

namespace {

using namespace kncube;

core::ScenarioSpec mesh_spec(int k, int n, int lm, bool quick) {
  core::ScenarioSpec s;
  s.topology = core::MeshTopology{k, n};
  s.traffic = core::UniformTraffic{};
  s.vcs = 2;
  s.message_length = lm;
  s.target_messages = quick ? 800 : 2000;
  s.warmup_cycles = 6000;
  s.max_cycles = quick ? 400'000 : 1'200'000;
  return s;
}

}  // namespace

int main() {
  using namespace kncube;
  const bool quick = bench::quick_mode();
  std::cout << "=== K-ary n-mesh: position-dependent model vs simulator, and "
               "mesh-vs-torus capacity ===\n\n";
  std::vector<std::pair<std::string, core::PanelSummary>> summaries;

  // Panel 1: 8x8 mesh model vs sim across load (the model's validated
  // envelope, DESIGN.md §8 — past ~0.45 the chained blocking over-predicts).
  bench::run_panel("8x8 mesh, Lm=16, uniform: model vs simulation",
                   mesh_spec(8, 2, 16, quick), bench::sweep_points(6, 3),
                   "tab_mesh_panel", &summaries);

  // Panel 2: the per-position link-load profile — the mesh's signature.
  // Model: utilisation lambda_c(i) * Lm from exact path counting; simulator:
  // mean utilisation over the dim-0 (+) links at line position i.
  {
    const int k = 8;
    core::ScenarioSpec spec = mesh_spec(k, 2, 16, quick);
    core::SweepEngine engine(spec);
    const double lambda = 0.5 * engine.saturation_rate().rate;
    sim::Simulator sim(core::to_sim_config(spec, lambda));
    const sim::SimResult sr = sim.run();

    util::Table table({"link position i", "pairs (i+1)(k-1-i)", "model util",
                       "sim util (dim 0, +)"});
    table.set_title("Per-position link load, 8x8 mesh at 50% of saturation");
    table.set_precision(4);
    const auto& net = sim.network();
    const auto& topo = net.topology();
    for (int i = 0; i < k - 1; ++i) {
      double util = 0.0;
      int links = 0;
      for (topo::NodeId id = 0; id < topo.size(); ++id) {
        if (topo.coord(id, 0) != i) continue;
        util += net.channel_utilization(id, 0, topo::Direction::kPlus);
        ++links;
      }
      table.add_row({static_cast<double>(i), topo::mesh_link_pair_count(k, i),
                     topo::mesh_channel_rate(lambda, k, 2, i) * spec.message_length,
                     util / links});
    }
    table.print(std::cout);
    const std::string csv = core::export_csv(table, "tab_mesh_profile");
    if (!csv.empty()) std::cout << "csv: " << csv << "\n";
    std::cout << "(sim ran " << sr.cycles << " cycles)\n\n";
  }

  // Panel 3: wrap-vs-no-wrap at equal N — what the torus's wrap links buy.
  {
    util::Table table({"topology", "model sat rate", "zero-load latency",
                       "bottleneck"});
    table.set_title("Uniform capacity at N=64: 8x8 torus vs 8x8 mesh");
    table.set_precision(4);

    core::ScenarioSpec torus = mesh_spec(8, 2, 16, quick);
    torus.topology = core::TorusTopology{8, 2, false};
    core::SweepEngine torus_engine(torus);
    table.add_row({std::string("8x8 torus (uni)"), torus_engine.saturation_rate().rate,
                   torus_engine.analytical_model().zero_load_latency(),
                   std::string("any channel (vertex-transitive)")});

    core::SweepEngine mesh_engine(mesh_spec(8, 2, 16, quick));
    table.add_row({std::string("8x8 mesh"), mesh_engine.saturation_rate().rate,
                   mesh_engine.analytical_model().zero_load_latency(),
                   std::string("centre (bisection) links")});
    table.print(std::cout);
    const std::string csv = core::export_csv(table, "tab_mesh_capacity");
    if (!csv.empty()) std::cout << "csv: " << csv << "\n";
    std::cout << "\nReading: the mesh shortens mean paths (no ring detours,\n"
                 "bidirectional lines) but funnels traffic through its centre\n"
                 "links — (i+1)(k-1-i) peaks at the bisection — while the torus\n"
                 "spreads load evenly; positional classes, not uniform ones,\n"
                 "are the price of dropping the wrap links.\n";
  }

  bench::print_summaries("tab_mesh summaries", summaries);
  return 0;
}
