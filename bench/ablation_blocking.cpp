// Ablation A3a: blocking-approximation variants (DESIGN.md R8). The paper's
// eqs (26)-(30) leave the service-time scale inside the rho-like quantities
// ambiguous; this bench quantifies every combination against the simulator:
//   * busy basis: inclusive (paper letter) vs transmission (default)
//   * vcmux basis: inclusive vs transmission (default)
//   * blocking form: Pb*wc (paper, eq 26) vs wc alone
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace kncube;
  std::cout << "=== Ablation A3a: blocking approximation variants "
               "(16x16, Lm=32, h=20%) ===\n\n";

  core::ScenarioSpec base = bench::paper_scenario(32, 0.2);
  const double sat = core::model_saturation_rate(base).rate;
  const std::vector<double> lambdas = {0.2 * sat, 0.5 * sat, 0.8 * sat};

  // Simulate each operating point once (shared across variants).
  const auto sim_pts = core::run_series(base, lambdas, /*run_sim=*/true);

  util::Table table({"variant", "lambda/sat", "model latency", "sim latency",
                     "rel err"});
  table.set_title("Model variants vs simulation");
  table.set_precision(4);

  struct Variant {
    const char* name;
    model::ServiceBasis busy;
    model::ServiceBasis mux;
    model::BlockingVariant blocking;
  };
  const Variant variants[] = {
      {"busy=tx, mux=tx (default)", model::ServiceBasis::kTransmission,
       model::ServiceBasis::kTransmission, model::BlockingVariant::kPaper},
      {"busy=incl (paper letter)", model::ServiceBasis::kInclusive,
       model::ServiceBasis::kTransmission, model::BlockingVariant::kPaper},
      {"mux=incl", model::ServiceBasis::kTransmission,
       model::ServiceBasis::kInclusive, model::BlockingVariant::kPaper},
      {"busy=incl, mux=incl", model::ServiceBasis::kInclusive,
       model::ServiceBasis::kInclusive, model::BlockingVariant::kPaper},
      {"pure M/G/1 wait (no Pb)", model::ServiceBasis::kTransmission,
       model::ServiceBasis::kTransmission, model::BlockingVariant::kPureWait},
  };

  for (const auto& variant : variants) {
    // Each variant is its own ScenarioSpec (the ablation knobs are spec
    // fields), dispatched through the registry like any other workload.
    core::ScenarioSpec spec = base;
    spec.busy_basis = variant.busy;
    spec.vcmux_basis = variant.mux;
    spec.blocking = variant.blocking;
    const core::ModelDispatch dispatch = core::make_analytical_model(spec);
    for (std::size_t i = 0; i < lambdas.size(); ++i) {
      const model::ModelResult r = dispatch.model->solve_at(lambdas[i]);
      const double sim_lat = sim_pts[i].sim.mean_latency;
      table.add_row({std::string(variant.name), lambdas[i] / sat,
                     r.saturated ? std::numeric_limits<double>::infinity()
                                 : r.latency,
                     sim_lat,
                     r.saturated || sim_lat <= 0
                         ? util::Cell{std::string("-")}
                         : util::Cell{std::abs(r.latency - sim_lat) / sim_lat}});
    }
  }
  table.print(std::cout);
  const std::string csv = core::export_csv(table, "ablation_blocking");
  if (!csv.empty()) std::cout << "csv: " << csv << "\n";
  std::cout << "\nReading: the transmission basis tracks the simulator closest;\n"
               "inclusive bases (the paper's literal formulas) over-predict under\n"
               "load because blocked residency is double-counted in Pb and Vbar.\n";
  return 0;
}
