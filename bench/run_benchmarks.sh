#!/usr/bin/env bash
# Benchmark baseline pipeline: runs the google-benchmark binaries and writes
# the repo-root BENCH_sim.json / BENCH_model.json baselines that performance
# PRs diff against (see README "Performance baselines").
#
# Usage:
#   bench/run_benchmarks.sh [build-dir] [extra google-benchmark args...]
#
# Examples:
#   bench/run_benchmarks.sh                       # full run, build/ tree
#   bench/run_benchmarks.sh build --benchmark_filter='BM_SimulatorCycles'
#
# The build must contain the perf binaries (configure with google-benchmark
# installed; a bare `cmake -B build` defaults to a Release build, which is
# the only configuration whose numbers are meaningful to commit).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

for bin in perf_sim perf_model; do
  if [[ ! -x "$build_dir/bench/$bin" ]]; then
    echo "error: $build_dir/bench/$bin not found or not executable." >&2
    echo "Configure with google-benchmark available and build first:" >&2
    echo "  cmake -B build -S . && cmake --build build -j" >&2
    exit 1
  fi
done

# Refuse to bake Debug numbers into the committed baselines: -O0 results are
# an order of magnitude off and every later perf PR would diff against noise.
# KNCUBE_ALLOW_DEBUG_BENCH=1 overrides for local experiments.
if grep -q "CMAKE_BUILD_TYPE:STRING=Debug" "$build_dir/CMakeCache.txt" 2>/dev/null; then
  if [[ "${KNCUBE_ALLOW_DEBUG_BENCH:-}" != "1" ]]; then
    echo "error: $build_dir is a Debug build; refusing to write baselines." >&2
    echo "Rebuild Release (a bare 'cmake -B build' defaults to it), or set" >&2
    echo "KNCUBE_ALLOW_DEBUG_BENCH=1 to override for a local experiment." >&2
    exit 1
  fi
  echo "warning: Debug build (override active); do not commit these numbers." >&2
fi

echo "== perf_sim -> BENCH_sim.json"
"$build_dir/bench/perf_sim" \
  --benchmark_format=json \
  --benchmark_out="$repo_root/BENCH_sim.json" \
  --benchmark_out_format=json "$@"

echo "== perf_model -> BENCH_model.json"
"$build_dir/bench/perf_model" \
  --benchmark_format=json \
  --benchmark_out="$repo_root/BENCH_model.json" \
  --benchmark_out_format=json "$@"

# Host metadata: stamp the machine shape and the *kncube* build type into
# each baseline's context block. google-benchmark records its own num_cpus
# and library build type, but not the project's CMAKE_BUILD_TYPE — and a
# baseline is only comparable against runs with the same core count and
# optimisation level, so record both explicitly where perf diffs look first.
#
# Thread-axis rows additionally get per-row honesty keys: a T-thread row run
# on a host with fewer than T cores measures time-slicing overhead, not
# scaling, so each such row is stamped `"oversubscribed": true` together
# with the cores it effectively ran on. Perf diffs must never compare a
# flagged row against an unflagged one.
kncube_build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:STRING=//p' \
  "$build_dir/CMakeCache.txt" 2>/dev/null || true)"
for f in "$repo_root/BENCH_sim.json" "$repo_root/BENCH_model.json"; do
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$f" "${kncube_build_type:-unknown}" <<'PY'
import json, os, sys

path, build_type = sys.argv[1], sys.argv[2]
with open(path) as f:
    doc = json.load(f)
ncpu = os.cpu_count() or 1
ctx = doc.setdefault("context", {})
ctx["host"] = {
    "hardware_concurrency": ncpu,
    "kncube_build_type": build_type,
}
# Per-row thread-axis annotation. BM_SimulatorCycles rows are named
# BM_SimulatorCycles/<k>/<load%>/<sim_threads>; rows asking for more shards
# than the host has cores did not measure parallel stepping.
for row in doc.get("benchmarks", []):
    parts = row.get("name", "").split("/")
    if parts[0] != "BM_SimulatorCycles" or len(parts) < 4:
        continue
    try:
        threads = int(parts[3])
    except ValueError:
        continue
    row["effective_cores"] = min(threads, ncpu)
    row["oversubscribed"] = threads > ncpu
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
PY
  else
    echo "warning: python3 not found; $(basename "$f") lacks host metadata" >&2
  fi
done

# The distro's libbenchmark can itself be a debug flavour; it stamps the
# context block, so surface it — the numbers are still comparable between
# runs on the same library, but note it when reading absolute values.
for f in "$repo_root/BENCH_sim.json" "$repo_root/BENCH_model.json"; do
  if grep -q '"library_build_type": "debug"' "$f"; then
    echo "WARNING: $(basename "$f") was produced against a debug google-benchmark" >&2
    echo "         library (see its context block); absolute timings carry" >&2
    echo "         library overhead even though the kncube code is optimised." >&2
  fi
done

echo "Wrote $repo_root/BENCH_sim.json and $repo_root/BENCH_model.json"
