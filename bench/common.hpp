// Shared harness for the figure/table reproduction binaries.
//
// Every bench binary is runnable with no arguments (the batch harness does
// `for b in build/bench/*; do $b; done`). Set KNCUBE_QUICK=1 to shrink the
// sweeps for smoke runs, KNCUBE_OUT=<dir> to export CSVs alongside the
// printed tables, and KNCUBE_THREADS to pin the sweep parallelism.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/kncube.hpp"

namespace kncube::bench {

/// True when KNCUBE_QUICK is set to a truthy value.
bool quick_mode();

/// Picks the sweep size for the current mode.
int sweep_points(int full, int quick);

/// The paper's validation configuration (§4) as a ScenarioSpec: 16x16
/// unidirectional torus, V=2 virtual channels, hot-spot traffic, with
/// bench-appropriate measurement effort.
core::ScenarioSpec paper_scenario(int message_length, double hot_fraction);

/// Runs one figure panel (model + simulation over a saturation-anchored
/// sweep), prints the paper-style table, optionally exports CSV, and appends
/// the panel summary to `summaries`.
std::vector<core::PointResult> run_panel(
    const std::string& title, const core::ScenarioSpec& spec, int points,
    const std::string& csv_basename,
    std::vector<std::pair<std::string, core::PanelSummary>>* summaries);

/// Prints the cross-panel summary table.
void print_summaries(
    const std::string& title,
    const std::vector<std::pair<std::string, core::PanelSummary>>& summaries);

}  // namespace kncube::bench
