#include "bench/common.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <limits>

#include "core/sweep_engine.hpp"
#include "util/chart.hpp"

namespace kncube::bench {

bool quick_mode() {
  const char* env = std::getenv("KNCUBE_QUICK");
  return env && *env && std::strcmp(env, "0") != 0;
}

int sweep_points(int full, int quick) { return quick_mode() ? quick : full; }

core::ScenarioSpec paper_scenario(int message_length, double hot_fraction) {
  core::ScenarioSpec s;
  s.topology = core::TorusTopology{16, 2, false};
  s.traffic = core::HotspotTraffic{hot_fraction, -1};
  s.vcs = 2;
  s.message_length = message_length;
  s.buffer_depth = 2;
  s.seed = 0x1DC5;
  if (quick_mode()) {
    s.target_messages = 800;
    s.warmup_cycles = 6000;
    s.max_cycles = 400'000;
  } else {
    s.target_messages = 2000;
    s.warmup_cycles = 15000;
    s.max_cycles = 1'500'000;
  }
  return s;
}

std::vector<core::PointResult> run_panel(
    const std::string& title, const core::ScenarioSpec& spec, int points,
    const std::string& csv_basename,
    std::vector<std::pair<std::string, core::PanelSummary>>* summaries) {
  // One engine per panel: the saturation-anchored sweep and any repeated
  // operating points share the engine's memoized model solves.
  core::SweepEngine engine(spec);
  const auto lambdas = engine.lambda_sweep(points, 0.1, 0.95);
  const auto pts = engine.run(lambdas, /*run_sim=*/true);
  util::Table table = core::figure_table(title, pts);
  table.print(std::cout);

  // The paper's panels, as text: model curve vs simulation points.
  util::Series model_series{"model", 'm', {}, {}};
  util::Series sim_series{"simulation", 's', {}, {}};
  for (const auto& p : pts) {
    model_series.x.push_back(p.lambda);
    model_series.y.push_back(p.model.saturated
                                 ? std::numeric_limits<double>::infinity()
                                 : p.model.latency);
    sim_series.x.push_back(p.lambda);
    sim_series.y.push_back(p.has_sim && !p.sim.saturated
                               ? p.sim.mean_latency
                               : std::numeric_limits<double>::infinity());
  }
  util::ChartOptions chart;
  chart.title = title;
  chart.x_label = "traffic (messages/cycle)";
  chart.y_label = "latency (cycles)";
  chart.y_clip_quantile = 0.999;
  std::cout << util::render_chart({model_series, sim_series}, chart);

  const std::string csv = core::export_csv(table, csv_basename);
  if (!csv.empty()) std::cout << "csv: " << csv << "\n";
  std::cout << "\n";
  if (summaries) summaries->emplace_back(title, core::summarize_panel(pts));
  return pts;
}

void print_summaries(
    const std::string& title,
    const std::vector<std::pair<std::string, core::PanelSummary>>& summaries) {
  core::summary_table(title, summaries).print(std::cout);
  std::cout << "\n";
}

}  // namespace kncube::bench
