// Figure 1 (paper §4): mean message latency, model vs flit-level simulation,
// on the 16x16 unidirectional torus with Lm = 32 flits and V = 2 virtual
// channels, for hot-spot fractions h = 20%, 40% and 70%. Each panel sweeps
// the injection rate from 10% to 95% of the model's saturation rate, the
// region the paper plots (its x-axes end at 6e-4, 4e-4 and 2e-4
// messages/cycle respectively — the same decades our saturation search
// lands in).
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace kncube;
  std::cout << "=== Figure 1: latency vs injection rate, Lm=32 flits, 16x16 torus, "
               "V=2 ===\n\n";
  const int points = bench::sweep_points(10, 5);
  std::vector<std::pair<std::string, core::PanelSummary>> summaries;
  for (double h : {0.2, 0.4, 0.7}) {
    const std::string title =
        "Figure 1, h=" + std::to_string(static_cast<int>(h * 100)) + "%";
    bench::run_panel(title, bench::paper_scenario(32, h), points,
                     "fig1_h" + std::to_string(static_cast<int>(h * 100)),
                     &summaries);
  }
  bench::print_summaries("Figure 1 summary (stable region)", summaries);
  return 0;
}
