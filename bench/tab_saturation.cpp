// Saturation-rate table (implied by the figures' x-axis ranges): the highest
// stable injection rate per (Lm, h) combination, model vs simulator, plus
// the closed-form bottleneck estimate. The paper's figures stop exactly
// where these boundaries sit, so this table is the quantitative version of
// "where the asymptote falls" in every panel.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace kncube;
  std::cout << "=== Saturation rates: 16x16 torus, V=2 ===\n\n";

  util::Table table({"Lm (flits)", "h", "model sat rate", "sim sat rate",
                     "sim/model", "bottleneck estimate", "model probes"});
  table.set_title("Saturation injection rate (messages/node/cycle)");
  table.set_precision(4);

  const bool quick = bench::quick_mode();
  for (int lm : {32, 100}) {
    for (double h : {0.2, 0.4, 0.7}) {
      core::ScenarioSpec s = bench::paper_scenario(lm, h);
      // Saturation probes reveal themselves quickly; cap per-probe effort.
      s.target_messages = 800;
      s.max_cycles = quick ? 150'000 : 400'000;
      const auto model_sat = core::model_saturation_rate(s);
      const auto sim_sat = core::sim_saturation_rate(s, quick ? 0.12 : 0.06);
      const double est =
          core::make_analytical_model(s).model->estimated_saturation_rate();
      table.add_row({static_cast<long long>(lm), h, model_sat.rate, sim_sat.rate,
                     sim_sat.rate / model_sat.rate, est,
                     static_cast<long long>(model_sat.probes)});
    }
  }
  table.print(std::cout);
  const std::string csv = core::export_csv(table, "tab_saturation");
  if (!csv.empty()) std::cout << "csv: " << csv << "\n";
  return 0;
}
