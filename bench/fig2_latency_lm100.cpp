// Figure 2 (paper §4): as Figure 1 but with Lm = 100-flit messages. The
// paper's x-axes end near 2e-4 (h=20%), 1.2e-4 (h=40%) and 7e-5 (h=70%)
// messages/cycle; the sweep is anchored at the model's saturation rate,
// which falls in the same decades.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace kncube;
  std::cout << "=== Figure 2: latency vs injection rate, Lm=100 flits, 16x16 torus, "
               "V=2 ===\n\n";
  const int points = bench::sweep_points(10, 5);
  std::vector<std::pair<std::string, core::PanelSummary>> summaries;
  for (double h : {0.2, 0.4, 0.7}) {
    const std::string title =
        "Figure 2, h=" + std::to_string(static_cast<int>(h * 100)) + "%";
    bench::run_panel(title, bench::paper_scenario(100, h), points,
                     "fig2_h" + std::to_string(static_cast<int>(h * 100)),
                     &summaries);
  }
  bench::print_summaries("Figure 2 summary (stable region)", summaries);
  return 0;
}
