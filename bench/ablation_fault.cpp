// Ablation A6 — reliability degradation: latency of the surviving traffic
// and survivable throughput vs failed-router count, on the paper's hot-spot
// torus. The analytical model has no fault-aware counterpart (faulty specs
// dispatch sim-only), so this panel is pure simulation: it quantifies how
// gracefully the network sheds the unreachable pairs as seed-derived random
// failures accumulate, at fixed fractions of the *pristine* saturation rate.
#include <iostream>
#include <limits>

#include "bench/common.hpp"
#include "sim/simulator.hpp"
#include "validate/reliability.hpp"

int main() {
  using namespace kncube;
  std::cout << "=== Ablation A6: degradation under router failures "
               "(8x8 torus, Lm=16, h=20%) ===\n\n";

  // Smaller than the paper's 16x16 so a failure count of 8 is a substantial
  // fraction of the network; the reliability suite (RELIABILITY.json) pins
  // the committed trajectory, this panel explores the wider count axis.
  core::ScenarioSpec base;
  base.topology = core::TorusTopology{8, 2, false};
  base.traffic = core::HotspotTraffic{0.2, -1};
  base.message_length = 16;
  base.warmup_cycles = 5000;
  base.target_messages = bench::quick_mode() ? 700 : 2000;
  base.max_cycles = 800'000;

  core::SweepEngine engine(base);
  const double sat = engine.saturation_rate().rate;

  validate::ReliabilityCase rc;
  rc.spec = base;
  rc.failure_seed = 7;

  util::Table table({"failed", "reach", "lambda/sat", "latency", "delivered",
                     "unreach", "lat vs f=0", "thr vs f=0"});
  table.set_title("Surviving-traffic latency and survivable throughput");
  table.set_precision(4);

  const auto counts = bench::quick_mode() ? std::vector<int>{0, 2, 8}
                                          : std::vector<int>{0, 1, 2, 4, 8};
  for (const double frac : {0.3, 0.6}) {
    const double lambda = frac * sat;
    sim::SimResult pristine{};
    for (const int f : counts) {
      const core::ScenarioSpec spec = validate::ReliabilityEngine::faulty_spec(
          rc, f);
      const sim::SimResult res = sim::simulate(core::to_sim_config(spec, lambda));
      if (f == 0) pristine = res;
      const double inf = std::numeric_limits<double>::infinity();
      const bool ratio_ok =
          f > 0 && !res.saturated && !pristine.saturated &&
          pristine.mean_latency > 0 && pristine.accepted_load > 0;
      table.add_row({static_cast<long long>(f), res.reachable_pair_fraction,
                     frac, res.saturated ? inf : res.mean_latency,
                     res.accepted_load, res.unreachable_fraction,
                     ratio_ok ? util::Cell(res.mean_latency / pristine.mean_latency)
                              : util::Cell(std::string("-")),
                     ratio_ok ? util::Cell(res.accepted_load / pristine.accepted_load)
                              : util::Cell(std::string("-"))});
    }
  }
  table.print(std::cout);
  const std::string csv = core::export_csv(table, "ablation_fault");
  if (!csv.empty()) std::cout << "csv: " << csv << "\n";
  std::cout << "\nReading: survivable throughput tracks the reachable-pair\n"
               "fraction (unreachable traffic never enters the network), while\n"
               "the latency of the surviving pairs can move either way — losing\n"
               "long routes *lowers* the mean, extra contention around the dead\n"
               "routers raises it. The committed RELIABILITY.json trajectory\n"
               "gates conservation and determinism, not direction.\n";
  return 0;
}
