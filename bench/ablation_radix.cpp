// Ablation A2: radix. Hot-spot pressure concentrates lambda*h*k*(k-1)
// messages/cycle on the hot column, so saturation falls roughly as 1/k^2
// while zero-load latency grows only linearly in k — the high-radix
// trade-off the paper's introduction motivates for 2-D/3-D tori.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace kncube;
  std::cout << "=== Ablation A2: radix (Lm=32, h=20%, V=2) ===\n\n";

  util::Table table({"k", "N", "model sat rate", "sat * k^2", "zero-load latency",
                     "model latency @50% sat", "sim latency @50% sat", "rel err"});
  table.set_title("Radix scaling under hot-spot traffic");
  table.set_precision(4);

  for (int k : {8, 12, 16, 24}) {
    core::ScenarioSpec s = bench::paper_scenario(32, 0.2);
    s.torus().k = k;
    // One engine per radix: saturation bisection, the operating point and
    // the zero-load reference all share its dispatched model.
    core::SweepEngine engine(s);
    const double sat = engine.saturation_rate().rate;
    const auto pts = engine.run({0.5 * sat}, /*run_sim=*/true);
    const auto& p = pts[0];
    table.add_row({static_cast<long long>(k), static_cast<long long>(k * k), sat,
                   sat * k * k, engine.analytical_model().zero_load_latency(),
                   p.model.saturated ? std::numeric_limits<double>::infinity()
                                     : p.model.latency,
                   p.sim.mean_latency, p.relative_error()});
  }
  table.print(std::cout);
  const std::string csv = core::export_csv(table, "ablation_radix");
  if (!csv.empty()) std::cout << "csv: " << csv << "\n";
  std::cout << "\nReading: sat*k^2 is roughly constant — the hot column's capacity\n"
               "budget divides across k^2-1 sources, so doubling the radix cuts the\n"
               "per-node hot-spot budget ~4x while zero-load latency only grows ~k.\n";
  return 0;
}
