// P1: simulator performance (google-benchmark). Reports router-cycles/s and
// delivered flit throughput so changes to the hot loop are measurable.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <thread>

#include "sim/simulator.hpp"

namespace {

using namespace kncube;

sim::SimConfig bench_config(int k, int lm, double frac_of_capacity,
                            int sim_threads = 1) {
  sim::SimConfig cfg;
  cfg.k = k;
  cfg.n = 2;
  cfg.vcs = 2;
  cfg.buffer_depth = 2;
  cfg.message_length = lm;
  cfg.pattern = sim::Pattern::kHotspot;
  cfg.hot_fraction = 0.2;
  const double coeff = 0.2 * k * (k - 1.0) + 0.8 * (k - 1.0) / 2.0;
  cfg.injection_rate = frac_of_capacity / (coeff * lm);
  cfg.seed = 42;
  cfg.sim_threads = sim_threads;
  return cfg;
}

/// Args: {k, load%, sim_threads}. The threads axis measures the sharded
/// cycle engine; results are bit-identical across it by contract, so the
/// flits_delivered counter doubles as a cross-check between rows.
///
/// Honesty counters: a T-thread row only measures T-way parallelism when the
/// host actually has T cores — on a smaller machine the shards time-slice
/// and the row measures oversubscription overhead instead of scaling. Each
/// row therefore stamps the cores it effectively ran on and an
/// `oversubscribed` flag; never read a flagged row as a scaling number
/// (run_benchmarks.sh mirrors the flag into the committed JSON baselines).
void BM_SimulatorCycles(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto load = static_cast<double>(state.range(1)) / 100.0;
  const int threads = static_cast<int>(state.range(2));
  sim::Simulator sim(bench_config(k, 32, load, threads));
  sim.step_cycles(2000);  // warm the network into steady operation
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    sim.step_cycles(256);
    cycles += 256;
  }
  state.counters["router_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles) * k * k, benchmark::Counter::kIsRate);
  state.counters["cycles/s"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["flits_delivered"] =
      static_cast<double>(sim.metrics().flits_delivered());
  state.counters["shards"] = static_cast<double>(sim.network().shard_count());
  const auto cores =
      static_cast<double>(std::max(1u, std::thread::hardware_concurrency()));
  state.counters["effective_cores"] = std::min(static_cast<double>(threads), cores);
  state.counters["oversubscribed"] = static_cast<double>(threads) > cores ? 1.0 : 0.0;
}
BENCHMARK(BM_SimulatorCycles)
    ->ArgsProduct({{8, 16, 32, 64}, {30, 80}, {1}})
    ->ArgsProduct({{32, 64}, {30, 80}, {2, 4}})
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorConstruction(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim(bench_config(k, 32, 0.3));
    benchmark::DoNotOptimize(&sim.network());
  }
}
BENCHMARK(BM_SimulatorConstruction)->Arg(8)->Arg(16)->Arg(32);

void BM_FullMeasurementRun(benchmark::State& state) {
  // One complete measurement protocol on a small network: the unit of work
  // each sweep point costs the figure benches.
  for (auto _ : state) {
    sim::SimConfig cfg = bench_config(8, 16, 0.4);
    cfg.warmup_cycles = 2000;
    cfg.target_messages = 400;
    cfg.max_cycles = 200000;
    const sim::SimResult r = sim::simulate(cfg);
    benchmark::DoNotOptimize(r.mean_latency);
  }
}
BENCHMARK(BM_FullMeasurementRun)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
