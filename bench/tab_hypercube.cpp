// Lineage comparison: the predecessor hypercube hot-spot model (paper
// ref. [12]) validated against the simulator in hypercube mode (k=2 n-cube),
// and torus-vs-hypercube hot-spot capacity at equal node count — the
// high-radix-vs-high-dimension trade-off under hot-spot pressure.
#include <iostream>

#include "bench/common.hpp"
#include "model/hypercube_model.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace kncube;

sim::SimConfig hypercube_sim(int dims, int lm, double h, double lambda, bool quick) {
  sim::SimConfig sc;
  sc.k = 2;
  sc.n = dims;
  sc.vcs = 2;
  sc.message_length = lm;
  sc.pattern = sim::Pattern::kHotspot;
  sc.hot_fraction = h;
  sc.injection_rate = lambda;
  sc.target_messages = quick ? 800 : 2000;
  sc.warmup_cycles = 6000;
  sc.max_cycles = quick ? 400'000 : 1'200'000;
  return sc;
}

}  // namespace

int main() {
  using namespace kncube;
  const bool quick = bench::quick_mode();
  std::cout << "=== Hypercube hot-spot model [ref 12] vs simulator (N=64), and "
               "torus-vs-hypercube capacity ===\n\n";

  // Panel 1: hypercube model vs sim across load, h = 20%.
  {
    const int dims = 6;
    const int lm = 32;
    const double h = 0.2;
    model::HypercubeModelConfig mc;
    mc.dims = dims;
    mc.vcs = 2;
    mc.message_length = lm;
    mc.hot_fraction = h;
    const double est = model::HypercubeHotspotModel(mc).estimated_saturation_rate();

    util::Table table({"lambda", "model latency", "sim latency", "rel err",
                       "model sat", "sim sat"});
    table.set_title("6-cube (N=64), Lm=32, h=20%: model vs simulation");
    table.set_precision(5);
    const int points = quick ? 4 : 8;
    for (int i = 0; i < points; ++i) {
      const double frac = 0.1 + 0.75 * i / (points - 1);
      mc.injection_rate = frac * est;
      const auto mr = model::HypercubeHotspotModel(mc).solve();
      const auto sr =
          sim::simulate(hypercube_sim(dims, lm, h, mc.injection_rate, quick));
      const double rel = (!mr.saturated && sr.mean_latency > 0)
                             ? std::abs(mr.latency - sr.mean_latency) / sr.mean_latency
                             : 0.0;
      table.add_row({mc.injection_rate,
                     mr.saturated ? std::numeric_limits<double>::infinity()
                                  : mr.latency,
                     sr.mean_latency, rel, std::string(mr.saturated ? "yes" : "no"),
                     std::string(sr.saturated ? "yes" : "no")});
    }
    table.print(std::cout);
    const std::string csv = core::export_csv(table, "tab_hypercube_panel");
    if (!csv.empty()) std::cout << "csv: " << csv << "\n";
    std::cout << "\n";
  }

  // Panel 2: equal-N capacity comparison, torus 8x8 vs 6-cube (N=64).
  {
    util::Table table({"topology", "h", "model sat rate", "zero-load latency",
                       "bottleneck"});
    table.set_title("Hot-spot capacity at N=64: 8x8 torus vs 6-cube");
    table.set_precision(4);
    for (double h : {0.1, 0.3, 0.5}) {
      core::Scenario torus;
      torus.k = 8;
      torus.vcs = 2;
      torus.message_length = 32;
      torus.hot_fraction = h;
      const double t_sat = core::model_saturation_rate(torus).rate;
      const model::HotspotModel tm(core::to_model_config(torus, 1e-9));
      table.add_row({std::string("8x8 torus"), h, t_sat, tm.zero_load_latency(),
                     std::string("hot column (k(k-1) streams)")});

      model::HypercubeModelConfig hc;
      hc.dims = 6;
      hc.vcs = 2;
      hc.message_length = 32;
      hc.hot_fraction = h;
      // Bisect the hypercube model's saturation boundary.
      double lo = 0.0;
      double hi = model::HypercubeHotspotModel(hc).estimated_saturation_rate() * 4;
      for (int i = 0; i < 40; ++i) {
        hc.injection_rate = 0.5 * (lo + hi);
        (model::HypercubeHotspotModel(hc).solve().saturated ? hi : lo) =
            hc.injection_rate;
      }
      hc.injection_rate = 1e-9;
      table.add_row({std::string("6-cube"), h, lo,
                     model::HypercubeHotspotModel(hc).zero_load_latency(),
                     std::string("last funnel channel (2^{n-1} streams)")});
    }
    table.print(std::cout);
    const std::string csv = core::export_csv(table, "tab_hypercube_capacity");
    if (!csv.empty()) std::cout << "csv: " << csv << "\n";
    std::cout << "\nReading: at equal N the hypercube both shortens paths and\n"
                 "spreads the hot funnel across n dimensions, sustaining a higher\n"
                 "per-node hot-spot rate than the 2-D torus — the contrast between\n"
                 "this paper's torus analysis and its hypercube predecessor [12].\n";
  }
  return 0;
}
