// Lineage comparison: the predecessor hypercube hot-spot model (paper
// ref. [12]) validated against the simulator in hypercube mode (k=2 n-cube),
// and torus-vs-hypercube hot-spot capacity at equal node count — the
// high-radix-vs-high-dimension trade-off under hot-spot pressure.
//
// Both topologies are plain ScenarioSpecs here: the registry dispatches the
// hypercube spec to the lineage model and the torus spec to the paper's
// model, and one SweepEngine per spec supplies memoized, warm-started
// solves, the saturation bisection and the parallel model-vs-sim sweep —
// none of which the hypercube path could reach before ScenarioSpec v2.
#include <cmath>
#include <iostream>
#include <limits>

#include "bench/common.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace kncube;

core::ScenarioSpec hypercube_spec(int dims, int lm, double h, bool quick) {
  core::ScenarioSpec s;
  s.topology = core::HypercubeTopology{dims};
  s.traffic = core::HotspotTraffic{h, -1};
  s.vcs = 2;
  s.message_length = lm;
  s.target_messages = quick ? 800 : 2000;
  s.warmup_cycles = 6000;
  s.max_cycles = quick ? 400'000 : 1'200'000;
  return s;
}

}  // namespace

int main() {
  using namespace kncube;
  const bool quick = bench::quick_mode();
  std::cout << "=== Hypercube hot-spot model [ref 12] vs simulator (N=64), and "
               "torus-vs-hypercube capacity ===\n\n";

  // Panel 1: hypercube model vs sim across load, h = 20% — one engine runs
  // both sides over a saturation-anchored sweep, exactly like the torus
  // figure panels.
  {
    core::SweepEngine engine(hypercube_spec(6, 32, 0.2, quick));
    const int points = quick ? 4 : 8;
    const auto lambdas = engine.lambda_sweep(points, 0.1, 0.85);
    const auto pts = engine.run(lambdas, /*run_sim=*/true);

    util::Table table({"lambda", "model latency", "sim latency", "rel err",
                       "model sat", "sim sat"});
    table.set_title("6-cube (N=64), Lm=32, h=20%: model vs simulation");
    table.set_precision(5);
    for (const auto& p : pts) {
      const double rel = p.relative_error();
      table.add_row({p.lambda,
                     p.model.saturated ? std::numeric_limits<double>::infinity()
                                       : p.model.latency,
                     p.sim.mean_latency, std::isnan(rel) ? 0.0 : rel,
                     std::string(p.model.saturated ? "yes" : "no"),
                     std::string(p.sim.saturated ? "yes" : "no")});
    }
    table.print(std::cout);
    const std::string csv = core::export_csv(table, "tab_hypercube_panel");
    if (!csv.empty()) std::cout << "csv: " << csv << "\n";
    std::cout << "\n";
  }

  // Panel 2: equal-N capacity comparison, torus 8x8 vs 6-cube (N=64). The
  // same engine API bisects both saturation boundaries.
  {
    util::Table table({"topology", "h", "model sat rate", "zero-load latency",
                       "bottleneck"});
    table.set_title("Hot-spot capacity at N=64: 8x8 torus vs 6-cube");
    table.set_precision(4);
    for (double h : {0.1, 0.3, 0.5}) {
      core::ScenarioSpec torus = bench::paper_scenario(32, h);
      torus.torus().k = 8;
      core::SweepEngine torus_engine(torus);
      table.add_row({std::string("8x8 torus"), h, torus_engine.saturation_rate().rate,
                     torus_engine.analytical_model().zero_load_latency(),
                     std::string("hot column (k(k-1) streams)")});

      core::SweepEngine cube_engine(hypercube_spec(6, 32, h, quick));
      table.add_row({std::string("6-cube"), h, cube_engine.saturation_rate().rate,
                     cube_engine.analytical_model().zero_load_latency(),
                     std::string("last funnel channel (2^{n-1} streams)")});
    }
    table.print(std::cout);
    const std::string csv = core::export_csv(table, "tab_hypercube_capacity");
    if (!csv.empty()) std::cout << "csv: " << csv << "\n";
    std::cout << "\nReading: at equal N the hypercube both shortens paths and\n"
                 "spreads the hot funnel across n dimensions, sustaining a higher\n"
                 "per-node hot-spot rate than the 2-D torus — the contrast between\n"
                 "this paper's torus analysis and its hypercube predecessor [12].\n";
  }
  return 0;
}
