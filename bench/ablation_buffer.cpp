// Ablation A3b: buffer depth (simulator only — the model abstracts buffers).
// The paper's router has per-VC flit buffers of unspecified depth; with our
// one-cycle credit loop, depth 1 halves streaming bandwidth while depth >= 2
// streams at full rate, so depth changes both zero-load latency and the
// saturation point.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace kncube;
  std::cout << "=== Ablation A3b: per-VC buffer depth (16x16, Lm=32, h=20%) ===\n\n";

  core::ScenarioSpec base = bench::paper_scenario(32, 0.2);
  const double sat = core::model_saturation_rate(base).rate;
  const std::vector<double> lambdas = {0.3 * sat, 0.6 * sat};

  util::Table table({"buffer depth", "lambda/sat", "sim latency", "sim ci95",
                     "sim source wait", "saturated"});
  table.set_title("Simulator latency vs per-VC buffer depth");
  table.set_precision(4);

  for (int depth : {1, 2, 4, 8}) {
    core::ScenarioSpec s = base;
    s.buffer_depth = depth;
    const auto pts = core::run_series(s, lambdas, /*run_sim=*/true);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      table.add_row({static_cast<long long>(depth), lambdas[i] / sat,
                     pts[i].sim.mean_latency, pts[i].sim.latency_ci95,
                     pts[i].sim.mean_source_wait,
                     std::string(pts[i].sim.saturated ? "yes" : "no")});
    }
  }
  table.print(std::cout);
  const std::string csv = core::export_csv(table, "ablation_buffer");
  if (!csv.empty()) std::cout << "csv: " << csv << "\n";
  std::cout << "\nReading: depth 1 runs body flits at half rate (the analytical\n"
               "model assumes full-rate streaming, i.e. depth >= 2); beyond 2,\n"
               "extra depth only cushions transient contention.\n";
  return 0;
}
