// P2: analytical-model performance (google-benchmark). The whole point of
// the model is to replace minutes of simulation with sub-millisecond
// evaluation; this bench keeps that claim measured.
#include <benchmark/benchmark.h>

#include "core/saturation.hpp"
#include "model/hotspot_model.hpp"
#include "model/uniform_model.hpp"

namespace {

using namespace kncube;

void BM_ModelSolve(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto load_pct = static_cast<double>(state.range(1));
  model::ModelConfig cfg;
  cfg.k = k;
  cfg.vcs = 2;
  cfg.message_length = 32;
  cfg.hot_fraction = 0.2;
  cfg.injection_rate =
      load_pct / 100.0 * model::HotspotModel(cfg).estimated_saturation_rate();
  int iterations = 0;
  for (auto _ : state) {
    const model::ModelResult r = model::HotspotModel(cfg).solve();
    iterations = r.iterations;
    benchmark::DoNotOptimize(r.latency);
  }
  state.counters["fixed_point_iters"] = iterations;
}
BENCHMARK(BM_ModelSolve)->ArgsProduct({{8, 16, 32}, {20, 60, 90}});

void BM_ModelSaturationSearch(benchmark::State& state) {
  core::Scenario s;
  s.k = static_cast<int>(state.range(0));
  s.vcs = 2;
  s.message_length = 32;
  s.hot_fraction = 0.2;
  for (auto _ : state) {
    const auto sat = core::model_saturation_rate(s);
    benchmark::DoNotOptimize(sat.rate);
  }
}
BENCHMARK(BM_ModelSaturationSearch)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_UniformModelSolve(benchmark::State& state) {
  model::UniformModelConfig cfg;
  cfg.k = 16;
  cfg.vcs = 2;
  cfg.message_length = 32;
  cfg.injection_rate = 1e-3;
  for (auto _ : state) {
    const auto r = model::UniformTorusModel(cfg).solve();
    benchmark::DoNotOptimize(r.latency);
  }
}
BENCHMARK(BM_UniformModelSolve);

}  // namespace

BENCHMARK_MAIN();
