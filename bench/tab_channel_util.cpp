// Channel-load validation table: the model's traffic-rate equations (3)-(9)
// against the simulator's measured per-channel flit utilisation, channel
// class by channel class. This validates the *decomposition* underneath the
// latency figures: the hot-y-ring gradient lambda^h_y,j = lambda*h*k*(k-j),
// the x-channel gradient lambda^h_x,j = lambda*h*(k-j), and the uniform
// background lambda_r = lambda*(1-h)*(k-1)/2.
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "sim/simulator.hpp"
#include "topology/hotspot_geometry.hpp"

int main() {
  using namespace kncube;
  std::cout << "=== Channel-load validation: eqs (3)-(9) vs simulator "
               "(16x16, Lm=32, h=30%) ===\n\n";

  core::ScenarioSpec s = bench::paper_scenario(32, 0.3);
  const double sat = core::model_saturation_rate(s).rate;
  const double lambda = 0.5 * sat;

  sim::SimConfig cfg = core::to_sim_config(s, lambda);
  cfg.target_messages = bench::quick_mode() ? 3000 : 12000;
  sim::Simulator sim(cfg);
  const sim::SimResult res = sim.run();
  std::cout << "operating point: lambda=" << lambda << " (50% of saturation), "
            << res.measured_messages << " messages, " << res.cycles << " cycles\n\n";

  const topo::KAryNCube& net = sim.network().topology();
  const topo::HotspotGeometry geo(net, cfg.resolved_hot_node());
  const model::TrafficRates rates =
      model::traffic_rates(s.torus().k, lambda, s.hotspot().fraction);
  const double lm = s.message_length;

  // Measured utilisation per class: hot-y channels individually, x channels
  // averaged over the k rows of equal class, non-hot y channels pooled.
  util::Table table({"channel class", "j", "model flits/cycle", "sim flits/cycle",
                     "rel err"});
  table.set_title("Flit load per channel class (model = message rate x Lm)");
  table.set_precision(4);

  auto add_row = [&](const std::string& cls, int j, double model_rate,
                     double sim_util) {
    const double model_util = model_rate * lm;
    table.add_row({cls, static_cast<long long>(j), model_util, sim_util,
                   sim_util > 0 ? std::abs(model_util - sim_util) / sim_util : 0.0});
  };

  const int k = s.torus().k;
  for (int j = 1; j <= k; ++j) {
    // Hot-y channel j hops from the hot node: outgoing y channel of the hot
    // column's node at y = hy - j.
    topo::Coords c = net.coords(cfg.resolved_hot_node());
    c[1] = ((c[1] - j) % k + k) % k;
    const double util =
        sim.network().channel_utilization(net.node_at(c), 1, topo::Direction::kPlus);
    add_row("hot y-ring", j, rates.total_hot_y(j), util);
  }
  for (int j = 1; j <= k; ++j) {
    // X channels j hops from the hot column, averaged over all k rows.
    topo::Coords c = net.coords(cfg.resolved_hot_node());
    const int x = ((c[0] - j) % k + k) % k;
    double util = 0.0;
    for (int row = 0; row < k; ++row) {
      topo::Coords rc{};
      rc[0] = x;
      rc[1] = row;
      util +=
          sim.network().channel_utilization(net.node_at(rc), 0, topo::Direction::kPlus);
    }
    add_row("x-ring (row avg)", j, rates.total_x(j), util / k);
  }
  {
    // Non-hot y channels: pooled average over every column but the hot one.
    double util = 0.0;
    int count = 0;
    for (topo::NodeId id = 0; id < net.size(); ++id) {
      if (geo.in_hot_column(id)) continue;
      util += sim.network().channel_utilization(id, 1, topo::Direction::kPlus);
      ++count;
    }
    add_row("non-hot y (avg)", 0, rates.regular_rate, util / count);
  }
  table.print(std::cout);
  const std::string csv = core::export_csv(table, "tab_channel_util");
  if (!csv.empty()) std::cout << "csv: " << csv << "\n";
  std::cout << "\nReading: the linear hot-column gradient (k-j) of eqs (5)/(7) and\n"
               "the uniform background of eq (3) both appear directly in the\n"
               "simulator's per-channel counters.\n";
  return 0;
}
