// The paper's contribution: an analytical model of mean message latency in a
// deterministically-routed, wormhole-switched 2-D unidirectional torus under
// Pfister–Norton hot-spot traffic (eqs (1)-(37)).
//
// See DESIGN.md §3 for the full equation inventory and the reconstruction
// notes for the handful of OCR-ambiguous prefactors. The model is solved by
// damped fixed-point iteration (src/model/solver); operating points whose
// iteration diverges, fails a utilisation bound, or does not converge are
// reported as *saturated* — the network has no steady state there, exactly
// the regime the paper's figures leave blank past the latency asymptote.
#pragma once

#include <limits>
#include <vector>

#include "model/engine/channel_class.hpp"  // BlockingVariant, ServiceBasis
#include "model/solver.hpp"
#include "model/traffic_rates.hpp"

namespace kncube::model {

struct ModelConfig {
  int k = 16;                    ///< radix (N = k^2)
  int vcs = 2;                   ///< V >= 2 virtual channels per channel
  int message_length = 32;       ///< Lm flits
  double injection_rate = 1e-4;  ///< lambda, messages/node/cycle
  double hot_fraction = 0.2;     ///< h
  BlockingVariant blocking = BlockingVariant::kPaper;
  /// Basis for the busy probability Pb of eq (27).
  ServiceBasis busy_basis = ServiceBasis::kTransmission;
  /// Basis for the occupancy rho of the VC-multiplexing chain (eq 33).
  ServiceBasis vcmux_basis = ServiceBasis::kTransmission;
  /// Arrival-process index of dispersion (engine/bursty.hpp): 1 = Bernoulli
  /// (the paper's arrivals, bitwise-unchanged results), > 1 = bursty MMPP.
  double arrival_idc = 1.0;
  FixedPointOptions solver{};

  void validate() const;  ///< throws std::invalid_argument when inconsistent
};

struct ModelResult {
  /// Mean message latency in cycles (eq 10); +inf when saturated.
  double latency = std::numeric_limits<double>::infinity();
  bool saturated = true;
  bool converged = false;
  int iterations = 0;

  // Decomposition (finite only when !saturated):
  double regular_latency = 0.0;      ///< S_r of eq (11), scaled
  double hot_latency = 0.0;          ///< S_h of eq (21), scaled
  double regular_network_latency = 0.0;  ///< S_r^net of eq (31), unscaled
  double source_wait_regular = 0.0;      ///< Ws_r of eq (32)

  // Virtual-channel multiplexing degrees (eqs 35-37):
  double vc_mux_x = 1.0;         ///< average over all x channels
  double vc_mux_hot_y = 1.0;     ///< average over hot-y-ring channels
  double vc_mux_nonhot_y = 1.0;  ///< non-hot y channels

  /// Maximum channel utilisation Pb over all channel classes; the hot-y-ring
  /// channel adjacent to the hot node in all non-degenerate cases.
  double max_channel_utilization = 0.0;
};

class HotspotModel {
 public:
  explicit HotspotModel(const ModelConfig& cfg);

  ModelResult solve() const { return solve(nullptr, nullptr); }

  /// Solve with continuation support. `warm_start` (optional) seeds the
  /// fixed-point iteration with a converged channel-class state from a
  /// nearby operating point; on any warm failure the solver falls back to
  /// the zero-load start, so classification matches the cold path, and a
  /// successful warm solve is bit-identical to the cold one (the solver
  /// polishes converged iterates to the map's exact stationary point).
  /// `converged_state` (optional) receives the converged iterate for
  /// chaining; it is left empty when the point is saturated.
  ModelResult solve(const std::vector<double>* warm_start,
                    std::vector<double>* converged_state) const;

  const ModelConfig& config() const noexcept { return cfg_; }
  const TrafficRates& rates() const noexcept { return rates_; }

  /// Exact zero-load latency (mean hops + Lm - 1, averaged over the hot/
  /// regular mix) — the lambda -> 0 limit of solve().latency, used by tests.
  double zero_load_latency() const;

  /// Coarse closed-form estimate of the saturation injection rate from the
  /// bottleneck (hot-y, j=1) channel: lambda_sat ~ 1 / (S0 * (lambda_1/lambda))
  /// with S0 the zero-load hot-path service time. Benches use it to place
  /// sweep ranges; it is intentionally simple, not part of the paper.
  double estimated_saturation_rate() const;

 private:
  ModelConfig cfg_;
  TrafficRates rates_;
};

}  // namespace kncube::model
