#include "model/engine/vcmux.hpp"

#include <algorithm>
#include <vector>

#include "util/assert.hpp"

namespace kncube::model {

void vc_occupancy_distribution(double rate, double service, int vcs, double* out) {
  KNC_ASSERT(vcs >= 1);
  const double rho = std::clamp(rate * service, 0.0, 1.0 - 1e-9);
  std::vector<double> q(static_cast<std::size_t>(vcs) + 1);
  q[0] = 1.0;
  for (int v = 1; v < vcs; ++v) {
    q[static_cast<std::size_t>(v)] = q[static_cast<std::size_t>(v - 1)] * rho;
  }
  q[static_cast<std::size_t>(vcs)] =
      q[static_cast<std::size_t>(vcs - 1)] * rho / (1.0 - rho);
  double sum = 0.0;
  for (double x : q) sum += x;
  for (int v = 0; v <= vcs; ++v) {
    out[v] = q[static_cast<std::size_t>(v)] / sum;
  }
}

double vc_multiplexing_degree(double rate, double service, int vcs) {
  if (rate <= 0.0 || service <= 0.0) return 1.0;
  std::vector<double> p(static_cast<std::size_t>(vcs) + 1);
  vc_occupancy_distribution(rate, service, vcs, p.data());
  double num = 0.0;
  double den = 0.0;
  for (int v = 1; v <= vcs; ++v) {
    const double pv = p[static_cast<std::size_t>(v)];
    num += static_cast<double>(v) * static_cast<double>(v) * pv;
    den += static_cast<double>(v) * pv;
  }
  if (den <= 0.0) return 1.0;
  return num / den;
}

}  // namespace kncube::model
