// M/G/1 waiting-time and wormhole blocking machinery (paper eqs (26)-(30)).
//
// The paper follows Kleinrock's Pollaczek–Khinchine mean wait with the
// standard wormhole-model variance approximation: the service-time variance
// of a channel whose mean service time is S is taken as (S - Lm)^2 — the
// squared deviation from the minimum (contention-free) service time:
//
//   w(lambda, S) = lambda * (S^2 + (S-Lm)^2) / (2 (1 - lambda S))      (28)
//
// The mean blocking delay at a channel crossed by a regular stream and a
// hot-spot stream is the busy probability times the merged-stream wait:
//
//   B = Pb * wc                                                        (26)
//
// Two service-time scales enter (DESIGN.md reconstruction note R8):
//
//  * `inclusive` service times — the iterated downstream latencies S of
//    eqs (16)-(25), which include blocking. They measure how long a message
//    *holds* a channel and drive the busy probability
//    Pb = min(1, lambda*S_l + gamma*S_g)                               (27)
//    (a probability, hence the cap; congestion upstream of a bottleneck can
//    make the raw product exceed 1 long before the channel's bandwidth is
//    exhausted — the tree-saturation effect);
//
//  * `transmission` service times — the contention-free holding times
//    (Lm + remaining hops), which bound the channel's *throughput*. They set
//    the waiting-time moments and its stability pole: the wait diverges when
//    rate * S_tx -> 1, i.e. when the channel runs out of flit bandwidth,
//    which is where the simulator (and the paper's validation sweeps)
//    actually saturate. Feeding the inclusive times into the pole instead
//    collapses the fixed point at ~25% of capacity, inconsistent with the
//    paper's own figures.
#pragma once

namespace kncube::model {

/// Outcome of a queueing computation; `value` is meaningful only when
/// `saturated` is false.
struct QueueDelay {
  double value = 0.0;
  bool saturated = false;
};

/// Pollaczek–Khinchine mean waiting time with the paper's variance
/// approximation (eq 28), generalised to bursty arrivals by a two-moment
/// (Kingman-style) correction: the Poisson part of the numerator is scaled by
/// the arrival process's asymptotic index of dispersion of counts,
///
///   w = rate * (idc * S^2 + (S - Lm)^2) / (2 (1 - rho)).
///
/// `arrival_idc == 1` (Poisson/Bernoulli arrivals) reproduces eq (28)
/// bitwise — `1.0 * x == x` in IEEE arithmetic — so every pre-existing model
/// is unchanged. `service_floor` is Lm, the contention-free service time used
/// by the variance term. Saturated when rate*mean_service >= 1 (burstiness
/// inflates waits, not the stability pole).
QueueDelay mg1_wait(double rate, double mean_service, double service_floor,
                    double arrival_idc = 1.0);

/// One traffic stream at a channel, as seen by the blocking model.
struct Stream {
  double rate = 0.0;       ///< messages/cycle crossing the channel
  double inclusive = 0.0;  ///< blocking-inclusive downstream service time S
  double tx = 0.0;         ///< contention-free holding time (>= Lm)
};

/// Mean blocking delay at a channel (eqs 26-30) crossed by a regular and a
/// hot-spot stream (either may have zero rate). Saturated when the combined
/// flit load reaches the channel's bandwidth (rate * mean_tx >= 1).
/// `busy_on_inclusive` selects the service scale entering Pb (see R8);
/// `arrival_idc` is the bursty-arrival dispersion fed to the merged-stream
/// wait (1 = Bernoulli, bitwise-identical to the original form).
QueueDelay blocking_delay(const Stream& regular, const Stream& hot,
                          double service_floor, bool busy_on_inclusive = true,
                          double arrival_idc = 1.0);

/// Busy probability Pb (eq 27), capped at 1.
double busy_probability(const Stream& regular, const Stream& hot,
                        bool on_inclusive = true);

}  // namespace kncube::model
