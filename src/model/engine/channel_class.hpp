// Shared channel-class engine for the analytical models.
//
// Every model in this repository (uniform torus, hot-spot torus, hot-spot
// hypercube — and any future traffic pattern) has the same mathematical
// shape, inherited from the paper's eqs (16)-(30): a vector of per-channel-
// class mean service times S_c coupled through
//
//   S_c = B_c + 1 + continuation_c                                    (16-25)
//
// where B_c is a (possibly averaged) blocking delay computed from the
// traffic streams crossing the class's channels (eqs 26-30) and the
// continuation is the downstream service time — the previous hop of the same
// class, the entrance of another class, or the Lm-1 drain at the destination.
// The coupled system is closed by damped fixed-point iteration
// (src/model/solver).
//
// This header turns that shape into data: a model is *declared* as a set of
// channel classes (state slots), stream specifications whose inclusive
// service times are linear expressions over the state, and weighted blocking
// groups — then solved by one generic driver. The three concrete models are
// thin builders over this engine (see DESIGN.md §4); the h = 0 agreement
// between the uniform and hot-spot torus models is structural, because both
// instantiate the same machinery with the same stream parameters.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/solver.hpp"

namespace kncube::model {

/// Blocking-delay variant, for the approximation ablation (bench A3):
/// the paper multiplies the busy probability into the M/G/1 wait (eq 26);
/// kPureWait uses the merged-stream wait alone.
enum class BlockingVariant : int { kPaper = 0, kPureWait = 1 };

/// Which service-time scale feeds a rho-like quantity (busy probability,
/// VC-occupancy chain). kInclusive uses the iterated blocking-inclusive
/// downstream latencies (the paper's letter); kTransmission uses the
/// contention-free holding times (bounded, bandwidth-oriented). See
/// DESIGN.md R8 and the ablation bench for the empirical comparison.
enum class ServiceBasis : int { kInclusive = 0, kTransmission = 1 };

namespace engine {

/// Linear expression over the iterated state vector:
///   value = constant + (sum_i weight_i * s[slot_i]) / divisor.
/// The divisor (rather than pre-scaled weights) keeps entrance averages
/// bit-identical to an accumulate-then-divide loop.
///
/// Storage is allocation-frugal: a single term (the overwhelmingly common
/// case — per-hop continuations and hot-stream service reads) lives inline,
/// and multi-term expressions share one immutable spill vector, so copying
/// an expression into the O(k^2) stream specifications of a large system is
/// a refcount bump instead of a heap allocation. Expressions are immutable
/// after construction; build multi-term ones with `weighted`.
struct StateExpr {
  double constant = 0.0;
  double divisor = 1.0;

  double eval(const std::vector<double>& s) const;
  bool empty() const noexcept {
    return inline_slot_ < 0 && !spill_ && constant == 0.0;
  }
  std::size_t term_count() const noexcept {
    return spill_ ? spill_->size() : (inline_slot_ >= 0 ? 1 : 0);
  }
  /// Invokes fn(slot, weight) for each term in insertion order.
  template <typename Fn>
  void for_each_term(Fn&& fn) const {
    if (spill_) {
      for (const auto& [slot, weight] : *spill_) fn(slot, weight);
    } else if (inline_slot_ >= 0) {
      fn(inline_slot_, inline_weight_);
    }
  }
  bool operator==(const StateExpr& o) const;

  static StateExpr constant_of(double c);
  static StateExpr slot(int index, double weight = 1.0);
  /// Mean of `count` consecutive slots starting at `first`.
  static StateExpr average(int first, int count);
  /// General form: constant + sum(terms)/divisor.
  static StateExpr weighted(double constant, double divisor,
                            std::vector<std::pair<int, double>> terms);

 private:
  using Terms = std::vector<std::pair<int, double>>;
  int inline_slot_ = -1;
  double inline_weight_ = 0.0;
  std::shared_ptr<const Terms> spill_;  ///< set when term_count() > 1
};

/// One traffic stream crossing a channel, with its blocking-inclusive
/// service time read from the state (eqs 26-30 inputs).
struct StreamSpec {
  double rate = 0.0;   ///< messages/cycle crossing the channel
  StateExpr inclusive; ///< blocking-inclusive downstream service time S
  double tx = 0.0;     ///< contention-free holding time (>= Lm)
};

/// Weighted mixture of per-channel blocking delays, shared by one or more
/// channel classes:
///   B = (sum_t weight_t * blocking(regular_t, hot_t)) / divisor.
/// An average over k channels uses unit weights and divisor k (eq 17-20); a
/// funnel/plain mixture uses weights f and 1-f with divisor 1.
struct BlockingSpec {
  struct Term {
    double weight = 1.0;
    StreamSpec regular;
    StreamSpec hot;
  };
  std::vector<Term> terms;
  double divisor = 1.0;
};

/// One channel class = one state slot, updated each sweep as
///   out[slot] = B + 1 + input_continuation(in) + output_continuation(out).
/// `output_continuation` implements the Gauss-Seidel recursions within a
/// sweep (eqs 16-25 chain along the path); every slot it references must
/// appear earlier in the system's evaluation order.
struct ChannelClass {
  std::string name;            ///< diagnostics only
  int blocking = -1;           ///< BlockingSpec index; -1 = contention-free
  StateExpr input_continuation;
  StateExpr output_continuation;
  double initial = 0.0;        ///< zero-load starting value for the iteration
};

/// Queueing-policy knobs shared by every blocking evaluation in a system.
struct EngineOptions {
  double service_floor = 1.0;  ///< Lm, the contention-free variance floor
  BlockingVariant blocking = BlockingVariant::kPaper;
  /// Service scale entering the busy probability Pb (eq 27).
  ServiceBasis busy_basis = ServiceBasis::kTransmission;
  /// Arrival-process index of dispersion fed to every waiting-time
  /// evaluation (engine/bursty.hpp). 1 = Bernoulli/Poisson arrivals, in
  /// which case every result is bitwise-identical to the pre-bursty engine.
  double arrival_idc = 1.0;
};

/// Fixed-point policy: base options plus the stubborn-point retry the models
/// use near the saturation knee (stronger damping, longer budget).
struct SolvePolicy {
  FixedPointOptions options{};
  bool retry_with_stronger_damping = true;
  double retry_damping = 0.2;
  int retry_iteration_multiplier = 2;
};

/// A declarative channel-class system: slots + blocking groups + evaluation
/// order. Slots are fixed at construction so builders can lay out and
/// cross-reference indices before filling in the classes.
class ChannelClassSystem {
 public:
  explicit ChannelClassSystem(int slots, EngineOptions options);

  int slots() const noexcept { return static_cast<int>(classes_.size()); }
  const EngineOptions& options() const noexcept { return options_; }

  void set_class(int slot, ChannelClass cls);
  /// Registers a blocking group; returns its index for ChannelClass::blocking.
  int add_blocking(BlockingSpec spec);

  /// Overrides the within-sweep evaluation order (default: slot order). Must
  /// be a permutation of [0, slots); output_continuation references must
  /// point to earlier entries.
  void set_eval_order(std::vector<int> order);

  std::vector<double> initial_state() const;

  /// Damped fixed-point solve with the policy's stubborn-point retry.
  /// `state` holds the converged iterate on success.
  ///
  /// `warm_start` (optional) seeds the iteration with a previously converged
  /// state for this system's layout — typically the fixed point of a nearby
  /// operating point, cutting the iteration count for continuation sweeps
  /// and saturation bisections. If the warm-started iteration fails for any
  /// reason the solver silently falls back to the zero-load start (plus the
  /// usual stubborn-point retry), so a warm start can never lose a point the
  /// cold path would solve; and because converged iterates are polished to
  /// the map's exact stationary point (see model/solver.hpp), a warm solve
  /// that converges returns results bit-identical to the converged cold
  /// solve. (The converse — a warm seed rescuing a point whose cold budget
  /// would expire without diverging — is possible in principle and would
  /// only add a converged point; see DESIGN.md §6.2.)
  FixedPointResult solve(std::vector<double>& state, const SolvePolicy& policy,
                         const std::vector<double>* warm_start = nullptr) const;

 private:
  // Blocking specs are compiled at registration: every distinct inclusive
  // StateExpr is interned into a pool so a sweep evaluates it once, not once
  // per term — the entrance averages are shared by O(k^2) terms in the
  // hot-spot system, and blocking runs in the innermost fixed-point loop.
  struct CompiledStream {
    double rate = 0.0;
    double tx = 0.0;
    int inclusive = -1;  ///< pool index; -1 = identically zero
  };
  struct CompiledTerm {
    double weight = 1.0;
    CompiledStream regular;
    CompiledStream hot;
  };
  struct CompiledBlocking {
    std::vector<CompiledTerm> terms;
    double divisor = 1.0;
  };
  /// Per-solve scratch, allocated once per solve() rather than per sweep.
  struct Workspace {
    std::vector<double> expr_values;      ///< pool evaluations on the input
    std::vector<double> blocking_values;  ///< one per blocking group
    /// With transmission-basis blocking (the default) the blocking values
    /// read nothing from the state — Pb and the merged-stream wait depend
    /// only on rates and contention-free holding times — so they are
    /// computed on the first sweep and reused bit-for-bit afterwards. The
    /// inclusive basis (and with it the expr pool) stays per-sweep.
    bool blocking_cached = false;
  };

  struct ExprHash {
    std::size_t operator()(const StateExpr& e) const noexcept;
  };

  int intern(const StateExpr& expr);
  CompiledStream compile(const StreamSpec& spec);
  bool step(const std::vector<double>& in, std::vector<double>& out,
            Workspace& ws) const;
  bool blocking_value(const CompiledBlocking& spec,
                      const std::vector<double>& expr_values, double& out) const;

  EngineOptions options_;
  bool blocking_state_dependent_;
  std::vector<ChannelClass> classes_;
  std::vector<CompiledBlocking> blockings_;
  std::vector<StateExpr> expr_pool_;
  /// Hash index over expr_pool_ so interning the O(k^2) stream expressions
  /// of a large system is linear, not quadratic (the pool reaches several
  /// hundred entries for k = 32 and interning dominated system builds).
  std::unordered_map<StateExpr, int, ExprHash> expr_index_;
  std::vector<int> eval_order_;
};

}  // namespace engine
}  // namespace kncube::model
