// Bursty-arrival (MMPP/MMBP) service-stage helpers for the channel-class
// engine.
//
// The simulator's MMPP arrival process (sim::MmppArrivals) is a discrete-time
// two-state Markov-modulated Bernoulli process: a background chain alternates
// between an idle state (per-cycle arrival probability lambda_i) and a burst
// state (lambda_b = min(1, burst_multiplier * mean)), with transition
// probabilities p_enter (idle -> burst) and p_leave (burst -> idle). The
// stationary burst fraction is pi_b = p_enter / (p_enter + p_leave) and the
// idle rate solves pi_b*lambda_b + (1-pi_b)*lambda_i == mean.
//
// The analytical side folds that process into the engine through a single
// scalar: the asymptotic index of dispersion of counts (IDC). Writing
// sigma = p_enter + p_leave (1 - sigma is the modulating chain's second
// eigenvalue), the lag-tau autocovariance of the per-cycle arrival indicator
// is pi_b*(1-pi_b)*(lambda_b - lambda_i)^2 * (1-sigma)^tau, so the counting
// process's long-run variance-to-mean ratio exceeds the Poisson value by the
// geometric sum over all lags:
//
//   IDC = 1 + 2 pi_b (1-pi_b) (lambda_b - lambda_i)^2 (1-sigma)
//                 / (sigma * mean)                                     (B1)
//
// This is the two-moment characterisation used by MMPP/G/1 heavy-traffic
// approximations (cf. the bursty NoC models of Mandal et al.,
// arXiv:2007.13951): a GI/G/1 queue driven by an MMPP behaves, to first
// order, like an M/G/1 queue whose arrival variability is inflated by the
// IDC. The engine consumes it via mg1_wait's `arrival_idc` parameter, which
// scales the Poisson part of the Pollaczek–Khinchine numerator
// (DESIGN.md §13).
//
// Exactness at the Bernoulli limit: burst_multiplier == 1 makes
// lambda_b == lambda_i == mean, so (B1) is computed as 1 + 0 and the engine
// sees arrival_idc == 1.0 exactly — every downstream float operation is then
// bitwise-identical to the Bernoulli model (mmpp_model_test pins this).
#pragma once

namespace kncube::model {

/// Stationary description of the two-state MMBP, with the simulator's exact
/// clamping (sim::MmppArrivals) so model and sim agree on realized rates.
struct MmppStationary {
  double pi_burst = 0.0;    ///< stationary fraction of cycles in burst state
  double burst_rate = 0.0;  ///< arrival probability in burst state (<= 1)
  double idle_rate = 0.0;   ///< arrival probability in idle state (>= 0)
  double mean_rate = 0.0;   ///< realized mean: pi_b*burst + (1-pi_b)*idle
};

/// Solves the stationary chain for a configured mean rate, mirroring
/// sim::MmppArrivals' constructor (including both clamps). Requires
/// p_enter, p_leave in (0,1] and burst_multiplier >= 1 (ScenarioSpec
/// validation guarantees these).
MmppStationary mmpp_stationary(double mean_rate, double burst_multiplier,
                               double p_enter_burst, double p_leave_burst);

/// Asymptotic index of dispersion of counts (B1) of the MMBP, clamped to
/// >= 0. Exactly 1.0 whenever burst and idle rates coincide (in particular
/// burst_multiplier == 1, or mean_rate == 0).
double mmpp_arrival_idc(double mean_rate, double burst_multiplier,
                        double p_enter_burst, double p_leave_burst);

/// Standard deviation of the per-cycle arrival indicator under the MMBP
/// stationary distribution, *relative* to the Bernoulli(mean) process:
/// sqrt(Var_mmpp / Var_bernoulli) >= 1. Used by the validation engine to
/// widen the offered-load sanity band exactly as much as the configured
/// burstiness warrants (instead of a hard-coded MMPP tolerance).
double mmpp_offered_load_dispersion(double mean_rate, double burst_multiplier,
                                    double p_enter_burst, double p_leave_burst);

}  // namespace kncube::model
