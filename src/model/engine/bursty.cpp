#include "model/engine/bursty.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace kncube::model {

MmppStationary mmpp_stationary(double mean_rate, double burst_multiplier,
                               double p_enter_burst, double p_leave_burst) {
  KNC_ASSERT_MSG(p_enter_burst > 0.0 && p_enter_burst <= 1.0 &&
                     p_leave_burst > 0.0 && p_leave_burst <= 1.0,
                 "MMPP transition probabilities must be in (0,1]");
  KNC_ASSERT_MSG(burst_multiplier >= 1.0, "burst multiplier must be >= 1");
  // Identical arithmetic to sim::MmppArrivals' constructor, clamps included,
  // so model and sim realize the same (burst, idle) rate pair.
  MmppStationary s;
  s.pi_burst = p_enter_burst / (p_enter_burst + p_leave_burst);
  s.burst_rate = std::min(1.0, burst_multiplier * mean_rate);
  const double pi_idle = 1.0 - s.pi_burst;
  s.idle_rate =
      pi_idle > 0.0
          ? std::max(0.0, (mean_rate - s.pi_burst * s.burst_rate) / pi_idle)
          : mean_rate;
  s.mean_rate = s.pi_burst * s.burst_rate + pi_idle * s.idle_rate;
  return s;
}

double mmpp_arrival_idc(double mean_rate, double burst_multiplier,
                        double p_enter_burst, double p_leave_burst) {
  const MmppStationary s =
      mmpp_stationary(mean_rate, burst_multiplier, p_enter_burst, p_leave_burst);
  const double diff = s.burst_rate - s.idle_rate;
  // burst_multiplier == 1 gives burst_rate == idle_rate == mean exactly (the
  // idle solve divides pi_idle*mean by pi_idle), so this returns 1.0 and the
  // engine degenerates to the Bernoulli model bitwise.
  if (diff == 0.0 || s.mean_rate <= 0.0) return 1.0;
  const double sigma = p_enter_burst + p_leave_burst;
  const double idc = 1.0 + 2.0 * s.pi_burst * (1.0 - s.pi_burst) * diff * diff *
                               (1.0 - sigma) / (sigma * s.mean_rate);
  // sigma > 1 (an oscillation-dominated chain) gives negatively correlated
  // arrivals and a sub-Poisson IDC; keep it a valid variance scale.
  return std::max(idc, 0.0);
}

double mmpp_offered_load_dispersion(double mean_rate, double burst_multiplier,
                                    double p_enter_burst,
                                    double p_leave_burst) {
  const MmppStationary s =
      mmpp_stationary(mean_rate, burst_multiplier, p_enter_burst, p_leave_burst);
  const double diff = s.burst_rate - s.idle_rate;
  const double lam = s.mean_rate;
  if (diff == 0.0 || lam <= 0.0 || lam >= 1.0) return 1.0;
  // Long-window variance of the time-averaged arrival indicator, relative to
  // the Bernoulli process of the same mean: the single-slot variance
  // lam*(1-lam) is identical, so the entire inflation comes from the
  // modulating chain's autocovariance sum (the same geometric series as the
  // IDC, here normalised by the Bernoulli variance).
  const double sigma = p_enter_burst + p_leave_burst;
  const double ratio = 1.0 + 2.0 * s.pi_burst * (1.0 - s.pi_burst) * diff *
                                 diff * (1.0 - sigma) /
                                 (sigma * lam * (1.0 - lam));
  return std::sqrt(std::max(ratio, 1.0));
}

}  // namespace kncube::model
