#include "model/engine/channel_class.hpp"

#include <algorithm>
#include <bit>

#include "model/engine/mg1.hpp"
#include "util/assert.hpp"

namespace kncube::model::engine {

std::size_t ChannelClassSystem::ExprHash::operator()(
    const StateExpr& e) const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(std::bit_cast<std::uint64_t>(e.constant));
  mix(std::bit_cast<std::uint64_t>(e.divisor));
  e.for_each_term([&](int slot, double weight) {
    mix(static_cast<std::uint64_t>(slot));
    mix(std::bit_cast<std::uint64_t>(weight));
  });
  return static_cast<std::size_t>(h);
}

double StateExpr::eval(const std::vector<double>& s) const {
  if (!spill_) {
    if (inline_slot_ < 0) return constant;  // divisor is 1 for these forms
    return constant +
           inline_weight_ * s[static_cast<std::size_t>(inline_slot_)] / divisor;
  }
  double acc = 0.0;
  for (const auto& [slot, weight] : *spill_) {
    acc += weight * s[static_cast<std::size_t>(slot)];
  }
  return constant + acc / divisor;
}

bool StateExpr::operator==(const StateExpr& o) const {
  if (constant != o.constant || divisor != o.divisor ||
      term_count() != o.term_count()) {
    return false;
  }
  if (!spill_ && !o.spill_) {
    return inline_slot_ == o.inline_slot_ &&
           (inline_slot_ < 0 || inline_weight_ == o.inline_weight_);
  }
  if (spill_ && o.spill_) return spill_ == o.spill_ || *spill_ == *o.spill_;
  // One inline, one single-term spill: compare the lone terms.
  bool equal = false;
  for_each_term([&](int slot, double weight) {
    o.for_each_term([&](int oslot, double oweight) {
      equal = slot == oslot && weight == oweight;
    });
  });
  return equal;
}

StateExpr StateExpr::constant_of(double c) {
  StateExpr e;
  e.constant = c;
  return e;
}

StateExpr StateExpr::slot(int index, double weight) {
  KNC_ASSERT(index >= 0);
  StateExpr e;
  e.inline_slot_ = index;
  e.inline_weight_ = weight;
  return e;
}

StateExpr StateExpr::average(int first, int count) {
  KNC_ASSERT(count > 0);
  if (count == 1) {
    StateExpr e = slot(first);
    return e;
  }
  Terms terms;
  terms.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) terms.emplace_back(first + i, 1.0);
  return weighted(0.0, static_cast<double>(count), std::move(terms));
}

StateExpr StateExpr::weighted(double constant, double divisor,
                              std::vector<std::pair<int, double>> terms) {
  StateExpr e;
  e.constant = constant;
  e.divisor = divisor;
  if (terms.size() == 1) {
    e.inline_slot_ = terms.front().first;
    e.inline_weight_ = terms.front().second;
  } else if (!terms.empty()) {
    e.spill_ = std::make_shared<const Terms>(std::move(terms));
  }
  return e;
}

ChannelClassSystem::ChannelClassSystem(int slots, EngineOptions options)
    : options_(options),
      // Blocking reads the iterated state only through Pb on the inclusive
      // basis (eq 27); on the transmission basis (and for the pure-wait
      // ablation) every blocking input is a constant of the system.
      blocking_state_dependent_(options.blocking == BlockingVariant::kPaper &&
                                options.busy_basis == ServiceBasis::kInclusive),
      classes_(static_cast<std::size_t>(slots)) {
  KNC_ASSERT(slots > 0);
  eval_order_.resize(static_cast<std::size_t>(slots));
  for (int i = 0; i < slots; ++i) eval_order_[static_cast<std::size_t>(i)] = i;
}

void ChannelClassSystem::set_class(int slot, ChannelClass cls) {
  classes_[static_cast<std::size_t>(slot)] = std::move(cls);
}

int ChannelClassSystem::intern(const StateExpr& expr) {
  const auto [it, inserted] =
      expr_index_.try_emplace(expr, static_cast<int>(expr_pool_.size()));
  if (inserted) expr_pool_.push_back(expr);
  return it->second;
}

ChannelClassSystem::CompiledStream ChannelClassSystem::compile(
    const StreamSpec& spec) {
  CompiledStream out;
  out.rate = spec.rate;
  out.tx = spec.tx;
  out.inclusive = spec.inclusive.empty() ? -1 : intern(spec.inclusive);
  return out;
}

int ChannelClassSystem::add_blocking(BlockingSpec spec) {
  CompiledBlocking compiled;
  compiled.divisor = spec.divisor;
  compiled.terms.reserve(spec.terms.size());
  for (const BlockingSpec::Term& term : spec.terms) {
    compiled.terms.push_back(
        {term.weight, compile(term.regular), compile(term.hot)});
  }
  blockings_.push_back(std::move(compiled));
  return static_cast<int>(blockings_.size()) - 1;
}

void ChannelClassSystem::set_eval_order(std::vector<int> order) {
  KNC_ASSERT_MSG(order.size() == classes_.size(),
                 "eval order must cover every slot");
  // A non-permutation would leave some slot unwritten each sweep and blend
  // stale scratch into the state — a silently wrong fixed point.
  std::vector<bool> seen(classes_.size(), false);
  for (const int slot : order) {
    KNC_ASSERT_MSG(slot >= 0 && static_cast<std::size_t>(slot) < classes_.size(),
                   "eval order slot out of range");
    KNC_ASSERT_MSG(!seen[static_cast<std::size_t>(slot)],
                   "eval order must be a permutation (duplicate slot)");
    seen[static_cast<std::size_t>(slot)] = true;
  }
  eval_order_ = std::move(order);
}

bool ChannelClassSystem::blocking_value(const CompiledBlocking& spec,
                                        const std::vector<double>& expr_values,
                                        double& out) const {
  const bool busy_incl = options_.busy_basis == ServiceBasis::kInclusive;
  const auto bind = [&](const CompiledStream& s) {
    return Stream{s.rate,
                  s.inclusive < 0 ? 0.0
                                  : expr_values[static_cast<std::size_t>(s.inclusive)],
                  s.tx};
  };
  double acc = 0.0;
  for (const CompiledTerm& term : spec.terms) {
    const Stream reg = bind(term.regular);
    const Stream hot = bind(term.hot);
    double value = 0.0;
    if (options_.blocking == BlockingVariant::kPaper) {
      const QueueDelay b = blocking_delay(reg, hot, options_.service_floor,
                                          busy_incl, options_.arrival_idc);
      if (b.saturated) return false;
      value = b.value;
    } else {
      // Ablation variant: the merged-stream M/G/1 wait alone (no Pb factor).
      const double rate = reg.rate + hot.rate;
      if (rate > 0.0) {
        const double mean_tx = (reg.rate * reg.tx + hot.rate * hot.tx) / rate;
        const QueueDelay w = mg1_wait(rate, mean_tx, options_.service_floor,
                                      options_.arrival_idc);
        if (w.saturated) return false;
        value = w.value;
      }
    }
    acc += term.weight * value;
  }
  out = acc / spec.divisor;
  return true;
}

std::vector<double> ChannelClassSystem::initial_state() const {
  std::vector<double> s(classes_.size());
  for (std::size_t i = 0; i < classes_.size(); ++i) s[i] = classes_[i].initial;
  return s;
}

bool ChannelClassSystem::step(const std::vector<double>& in,
                              std::vector<double>& out, Workspace& ws) const {
  // All blocking groups close over the *input* iterate (Jacobi across
  // groups); the per-slot recursions then chain within the sweep through
  // output_continuation (Gauss-Seidel along each path). Shared inclusive
  // expressions are evaluated once per sweep via the interned pool — and
  // the pool plus the blocking groups are skipped entirely after the first
  // sweep when the blocking is state-independent (Workspace::blocking_cached
  // — the expr pool feeds nothing but the blocking evaluation).
  if (!ws.blocking_cached) {
    ws.expr_values.resize(expr_pool_.size());
    for (std::size_t i = 0; i < expr_pool_.size(); ++i) {
      ws.expr_values[i] = expr_pool_[i].eval(in);
    }
    ws.blocking_values.resize(blockings_.size());
    for (std::size_t g = 0; g < blockings_.size(); ++g) {
      if (!blocking_value(blockings_[g], ws.expr_values, ws.blocking_values[g])) {
        return false;
      }
    }
    ws.blocking_cached = !blocking_state_dependent_;
  }
  for (const int slot : eval_order_) {
    const ChannelClass& cls = classes_[static_cast<std::size_t>(slot)];
    const double blocking =
        cls.blocking >= 0 ? ws.blocking_values[static_cast<std::size_t>(cls.blocking)]
                          : 0.0;
    out[static_cast<std::size_t>(slot)] = blocking + 1.0 +
                                          cls.input_continuation.eval(in) +
                                          cls.output_continuation.eval(out);
  }
  return true;
}

FixedPointResult ChannelClassSystem::solve(std::vector<double>& state,
                                           const SolvePolicy& policy,
                                           const std::vector<double>* warm_start) const {
  // Every output_continuation reference must already be evaluated within the
  // sweep — a forward reference would read the previous iteration's raw
  // scratch and converge to a silently wrong fixed point. Once per solve,
  // negligible next to the iteration itself, so always on.
  {
    std::vector<bool> visited(classes_.size(), false);
    for (const int slot : eval_order_) {
      classes_[static_cast<std::size_t>(slot)].output_continuation.for_each_term(
          [&](int ref, double) {
            KNC_ASSERT_MSG(
                ref >= 0 && static_cast<std::size_t>(ref) < classes_.size() &&
                    visited[static_cast<std::size_t>(ref)],
                "output_continuation references a slot evaluated later");
          });
      visited[static_cast<std::size_t>(slot)] = true;
    }
  }
  Workspace ws;  // one allocation per solve, reused across sweeps
  auto step_fn = [this, &ws](const std::vector<double>& in,
                             std::vector<double>& out) {
    return step(in, out, ws);
  };
  // Continuation: try the caller's converged iterate first. Any failure
  // (divergence, non-convergence, a seed from a saturated or mismatched
  // system) falls through to the cold path below, keeping classification
  // identical to a cold solve.
  if (warm_start != nullptr && warm_start->size() == classes_.size()) {
    state = *warm_start;
    const FixedPointResult warm = solve_fixed_point(state, step_fn, policy.options);
    if (warm.converged) return warm;
  }
  state = initial_state();
  FixedPointResult fp = solve_fixed_point(state, step_fn, policy.options);
  if (!fp.converged && !fp.diverged && policy.retry_with_stronger_damping) {
    // Stubborn point near the knee: one retry with stronger damping.
    FixedPointOptions slower = policy.options;
    slower.damping = std::min(policy.retry_damping, policy.options.damping);
    slower.max_iterations =
        policy.options.max_iterations * policy.retry_iteration_multiplier;
    state = initial_state();
    fp = solve_fixed_point(state, step_fn, slower);
  }
  return fp;
}

}  // namespace kncube::model::engine
