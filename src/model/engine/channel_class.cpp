#include "model/engine/channel_class.hpp"

#include <algorithm>

#include "model/engine/mg1.hpp"
#include "util/assert.hpp"

namespace kncube::model::engine {

double StateExpr::eval(const std::vector<double>& s) const {
  double acc = 0.0;
  for (const auto& [slot, weight] : terms) {
    acc += weight * s[static_cast<std::size_t>(slot)];
  }
  return constant + acc / divisor;
}

StateExpr StateExpr::constant_of(double c) {
  StateExpr e;
  e.constant = c;
  return e;
}

StateExpr StateExpr::slot(int index, double weight) {
  StateExpr e;
  e.terms.emplace_back(index, weight);
  return e;
}

StateExpr StateExpr::average(int first, int count) {
  KNC_ASSERT(count > 0);
  StateExpr e;
  e.terms.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) e.terms.emplace_back(first + i, 1.0);
  e.divisor = static_cast<double>(count);
  return e;
}

ChannelClassSystem::ChannelClassSystem(int slots, EngineOptions options)
    : options_(options), classes_(static_cast<std::size_t>(slots)) {
  KNC_ASSERT(slots > 0);
  eval_order_.resize(static_cast<std::size_t>(slots));
  for (int i = 0; i < slots; ++i) eval_order_[static_cast<std::size_t>(i)] = i;
}

void ChannelClassSystem::set_class(int slot, ChannelClass cls) {
  classes_[static_cast<std::size_t>(slot)] = std::move(cls);
}

int ChannelClassSystem::intern(const StateExpr& expr) {
  for (std::size_t i = 0; i < expr_pool_.size(); ++i) {
    if (expr_pool_[i] == expr) return static_cast<int>(i);
  }
  expr_pool_.push_back(expr);
  return static_cast<int>(expr_pool_.size()) - 1;
}

ChannelClassSystem::CompiledStream ChannelClassSystem::compile(
    const StreamSpec& spec) {
  CompiledStream out;
  out.rate = spec.rate;
  out.tx = spec.tx;
  out.inclusive = spec.inclusive.empty() ? -1 : intern(spec.inclusive);
  return out;
}

int ChannelClassSystem::add_blocking(BlockingSpec spec) {
  CompiledBlocking compiled;
  compiled.divisor = spec.divisor;
  compiled.terms.reserve(spec.terms.size());
  for (const BlockingSpec::Term& term : spec.terms) {
    compiled.terms.push_back(
        {term.weight, compile(term.regular), compile(term.hot)});
  }
  blockings_.push_back(std::move(compiled));
  return static_cast<int>(blockings_.size()) - 1;
}

void ChannelClassSystem::set_eval_order(std::vector<int> order) {
  KNC_ASSERT_MSG(order.size() == classes_.size(),
                 "eval order must cover every slot");
  // A non-permutation would leave some slot unwritten each sweep and blend
  // stale scratch into the state — a silently wrong fixed point.
  std::vector<bool> seen(classes_.size(), false);
  for (const int slot : order) {
    KNC_ASSERT_MSG(slot >= 0 && static_cast<std::size_t>(slot) < classes_.size(),
                   "eval order slot out of range");
    KNC_ASSERT_MSG(!seen[static_cast<std::size_t>(slot)],
                   "eval order must be a permutation (duplicate slot)");
    seen[static_cast<std::size_t>(slot)] = true;
  }
  eval_order_ = std::move(order);
}

bool ChannelClassSystem::blocking_value(const CompiledBlocking& spec,
                                        const std::vector<double>& expr_values,
                                        double& out) const {
  const bool busy_incl = options_.busy_basis == ServiceBasis::kInclusive;
  const auto bind = [&](const CompiledStream& s) {
    return Stream{s.rate,
                  s.inclusive < 0 ? 0.0
                                  : expr_values[static_cast<std::size_t>(s.inclusive)],
                  s.tx};
  };
  double acc = 0.0;
  for (const CompiledTerm& term : spec.terms) {
    const Stream reg = bind(term.regular);
    const Stream hot = bind(term.hot);
    double value = 0.0;
    if (options_.blocking == BlockingVariant::kPaper) {
      const QueueDelay b = blocking_delay(reg, hot, options_.service_floor, busy_incl);
      if (b.saturated) return false;
      value = b.value;
    } else {
      // Ablation variant: the merged-stream M/G/1 wait alone (no Pb factor).
      const double rate = reg.rate + hot.rate;
      if (rate > 0.0) {
        const double mean_tx = (reg.rate * reg.tx + hot.rate * hot.tx) / rate;
        const QueueDelay w = mg1_wait(rate, mean_tx, options_.service_floor);
        if (w.saturated) return false;
        value = w.value;
      }
    }
    acc += term.weight * value;
  }
  out = acc / spec.divisor;
  return true;
}

std::vector<double> ChannelClassSystem::initial_state() const {
  std::vector<double> s(classes_.size());
  for (std::size_t i = 0; i < classes_.size(); ++i) s[i] = classes_[i].initial;
  return s;
}

bool ChannelClassSystem::step(const std::vector<double>& in,
                              std::vector<double>& out, Workspace& ws) const {
  // All blocking groups close over the *input* iterate (Jacobi across
  // groups); the per-slot recursions then chain within the sweep through
  // output_continuation (Gauss-Seidel along each path). Shared inclusive
  // expressions are evaluated once per sweep via the interned pool.
  ws.expr_values.resize(expr_pool_.size());
  for (std::size_t i = 0; i < expr_pool_.size(); ++i) {
    ws.expr_values[i] = expr_pool_[i].eval(in);
  }
  ws.blocking_values.resize(blockings_.size());
  for (std::size_t g = 0; g < blockings_.size(); ++g) {
    if (!blocking_value(blockings_[g], ws.expr_values, ws.blocking_values[g])) {
      return false;
    }
  }
  for (const int slot : eval_order_) {
    const ChannelClass& cls = classes_[static_cast<std::size_t>(slot)];
    const double blocking =
        cls.blocking >= 0 ? ws.blocking_values[static_cast<std::size_t>(cls.blocking)]
                          : 0.0;
    out[static_cast<std::size_t>(slot)] = blocking + 1.0 +
                                          cls.input_continuation.eval(in) +
                                          cls.output_continuation.eval(out);
  }
  return true;
}

FixedPointResult ChannelClassSystem::solve(std::vector<double>& state,
                                           const SolvePolicy& policy) const {
  // Every output_continuation reference must already be evaluated within the
  // sweep — a forward reference would read the previous iteration's raw
  // scratch and converge to a silently wrong fixed point. Once per solve,
  // negligible next to the iteration itself, so always on.
  {
    std::vector<bool> visited(classes_.size(), false);
    for (const int slot : eval_order_) {
      for (const auto& [ref, weight] : classes_[static_cast<std::size_t>(slot)]
                                           .output_continuation.terms) {
        (void)weight;
        KNC_ASSERT_MSG(ref >= 0 && static_cast<std::size_t>(ref) < classes_.size() &&
                           visited[static_cast<std::size_t>(ref)],
                       "output_continuation references a slot evaluated later");
      }
      visited[static_cast<std::size_t>(slot)] = true;
    }
  }
  Workspace ws;  // one allocation per solve, reused across sweeps
  auto step_fn = [this, &ws](const std::vector<double>& in,
                             std::vector<double>& out) {
    return step(in, out, ws);
  };
  state = initial_state();
  FixedPointResult fp = solve_fixed_point(state, step_fn, policy.options);
  if (!fp.converged && !fp.diverged && policy.retry_with_stronger_damping) {
    // Stubborn point near the knee: one retry with stronger damping.
    FixedPointOptions slower = policy.options;
    slower.damping = std::min(policy.retry_damping, policy.options.damping);
    slower.max_iterations =
        policy.options.max_iterations * policy.retry_iteration_multiplier;
    state = initial_state();
    fp = solve_fixed_point(state, step_fn, slower);
  }
  return fp;
}

}  // namespace kncube::model::engine
