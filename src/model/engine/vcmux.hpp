// Dally's virtual-channel multiplexing model (paper eqs (33)-(35)).
//
// A physical channel with V virtual channels, total crossing rate `rate` and
// mean service time `service` is modelled as a birth-death chain over the
// number of busy VCs v:
//
//   q_0 = 1,  q_v = q_{v-1} * rho   (0 < v < V),
//   q_V = q_{V-1} * rho / (1 - rho),      rho = rate * service
//   P_v = q_v / sum_l q_l
//
// and the average multiplexing degree — the factor by which each VC's share
// of the physical bandwidth is diluted — is
//
//   Vbar = sum_v v^2 P_v / sum_v v P_v            (eq 35)
//
// Vbar is 1 at zero load (a lone message owns the full channel) and
// approaches V as rho -> 1.
#pragma once

namespace kncube::model {

/// Average multiplexing degree for a channel with `vcs` virtual channels.
/// rho = rate*service is clamped just below 1; Vbar is finite even at
/// saturation (it tends to V).
double vc_multiplexing_degree(double rate, double service, int vcs);

/// Busy-VC distribution P_0..P_V (size V+1), exposed for tests.
void vc_occupancy_distribution(double rate, double service, int vcs, double* out);

}  // namespace kncube::model
