#include "model/engine/mg1.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace kncube::model {

namespace {
// Utilisation this close to 1 (or above) is treated as saturated: the
// steady-state wait diverges and the fixed point no longer exists.
constexpr double kRhoMax = 1.0 - 1e-9;
}  // namespace

QueueDelay mg1_wait(double rate, double mean_service, double service_floor,
                    double arrival_idc) {
  KNC_DEBUG_ASSERT(rate >= 0.0 && mean_service >= 0.0 && service_floor >= 0.0 &&
                   arrival_idc >= 0.0);
  QueueDelay out;
  if (rate <= 0.0 || mean_service <= 0.0) return out;
  const double rho = rate * mean_service;
  if (rho >= kRhoMax) {
    out.saturated = true;
    return out;
  }
  const double dev = mean_service - service_floor;
  // lambda (idc S^2 + (S - Lm)^2) / (2 (1 - rho)); idc == 1 is eq (28).
  out.value = rate * (arrival_idc * mean_service * mean_service + dev * dev) /
              (2.0 * (1.0 - rho));
  return out;
}

double busy_probability(const Stream& regular, const Stream& hot, bool on_inclusive) {
  const double raw = on_inclusive
                         ? regular.rate * regular.inclusive + hot.rate * hot.inclusive
                         : regular.rate * regular.tx + hot.rate * hot.tx;
  return std::min(1.0, raw);
}

QueueDelay blocking_delay(const Stream& regular, const Stream& hot,
                          double service_floor, bool busy_on_inclusive,
                          double arrival_idc) {
  QueueDelay out;
  const double rate = regular.rate + hot.rate;
  if (rate <= 0.0) return out;

  // Stability is a bandwidth property: the channel transmits Lm flits per
  // crossing message regardless of blocking, so the pole sits at the
  // contention-free holding times (R8).
  const double mean_tx = (regular.rate * regular.tx + hot.rate * hot.tx) / rate;
  const QueueDelay wait = mg1_wait(rate, mean_tx, service_floor, arrival_idc);
  if (wait.saturated) {
    out.saturated = true;
    return out;
  }
  const double pb = busy_probability(regular, hot, busy_on_inclusive);
  if (pb <= 0.0) return out;
  out.value = pb * wait.value;
  return out;
}

}  // namespace kncube::model
