#include "model/solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace kncube::model {

namespace {

bool all_finite(const std::vector<double>& v) {
  for (const double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

double max_rel_change(const std::vector<double>& a, const std::vector<double>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double denom = std::max(std::abs(b[i]), 1.0);
    m = std::max(m, std::abs(b[i] - a[i]) / denom);
  }
  return m;
}

/// Refines a tolerance-converged iterate to the map's exactly stationary
/// point (see the header). Phase 1 iterates undamped — near the fixed point
/// the raw map is usually a strong contraction and snaps to stationarity in
/// a handful of sweeps; if a sweep fails, goes non-finite, or stops
/// contracting (the oscillatory regime damping exists for), phase 2 falls
/// back to the damped blend. Exact two-cycles — the terminal behaviour of a
/// rounding-level oscillation — are canonicalised to the componentwise
/// minimum so every trajectory that lands on the cycle reports the same
/// state. Best-effort: on budget exhaustion the current iterate stands.
void polish_to_stationary(
    std::vector<double>& state, std::vector<double>& next,
    const std::function<bool(const std::vector<double>&, std::vector<double>&)>& step,
    const FixedPointOptions& options) {
  const std::size_t size = state.size();
  std::vector<double> prev;
  double last_rel = std::numeric_limits<double>::infinity();
  constexpr int kUndampedBudget = 48;
  for (int it = 0; it < kUndampedBudget; ++it) {
    if (!step(state, next) || !all_finite(next)) return;
    if (next == state) return;  // exactly stationary
    if (!prev.empty() && next == prev) {  // exact 2-cycle: canonicalise
      for (std::size_t i = 0; i < size; ++i) state[i] = std::min(state[i], next[i]);
      return;
    }
    const double rel = max_rel_change(state, next);
    if (rel > last_rel || rel >= 1e-6) break;  // hand over to the damped phase
    prev = state;
    state.swap(next);
    last_rel = rel;
  }
  const double alpha = options.damping;
  prev.clear();
  for (int it = 0; it < options.polish_iterations; ++it) {
    if (!step(state, next) || !all_finite(next)) return;
    bool stationary = true;
    for (std::size_t i = 0; i < size; ++i) {
      next[i] = (1.0 - alpha) * state[i] + alpha * next[i];
      stationary = stationary && next[i] == state[i];
    }
    if (stationary) return;
    if (!prev.empty() && next == prev) {
      for (std::size_t i = 0; i < size; ++i) state[i] = std::min(state[i], next[i]);
      return;
    }
    prev = state;
    state.swap(next);
  }
}

}  // namespace

FixedPointResult solve_fixed_point(
    std::vector<double>& state,
    const std::function<bool(const std::vector<double>&, std::vector<double>&)>& step,
    const FixedPointOptions& options) {
  FixedPointResult result;
  std::vector<double> next(state.size());
  const double alpha = options.damping;
  KNC_ASSERT_MSG(alpha > 0.0 && alpha <= 1.0, "damping must be in (0, 1]");

  for (int it = 0; it < options.max_iterations; ++it) {
    result.iterations = it + 1;
    if (!step(state, next)) {
      result.diverged = true;
      return result;
    }
    KNC_ASSERT_MSG(next.size() == state.size(), "step changed the state size");

    double max_rel = 0.0;
    bool over_cap = false;
    for (std::size_t i = 0; i < state.size(); ++i) {
      const double blended = (1.0 - alpha) * state[i] + alpha * next[i];
      const double denom = std::max(std::abs(blended), 1.0);
      max_rel = std::max(max_rel, std::abs(blended - state[i]) / denom);
      state[i] = blended;
      if (!std::isfinite(blended) || std::abs(blended) > options.divergence_cap) {
        over_cap = true;
      }
    }
    if (over_cap) {
      result.diverged = true;
      return result;
    }
    if (max_rel < options.tolerance) {
      result.converged = true;
      if (options.polish_iterations > 0) {
        polish_to_stationary(state, next, step, options);
      }
      return result;
    }
  }
  return result;  // neither converged nor provably diverged: caller decides
}

}  // namespace kncube::model
