#include "model/solver.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace kncube::model {

FixedPointResult solve_fixed_point(
    std::vector<double>& state,
    const std::function<bool(const std::vector<double>&, std::vector<double>&)>& step,
    const FixedPointOptions& options) {
  FixedPointResult result;
  std::vector<double> next(state.size());
  const double alpha = options.damping;
  KNC_ASSERT_MSG(alpha > 0.0 && alpha <= 1.0, "damping must be in (0, 1]");

  for (int it = 0; it < options.max_iterations; ++it) {
    result.iterations = it + 1;
    if (!step(state, next)) {
      result.diverged = true;
      return result;
    }
    KNC_ASSERT_MSG(next.size() == state.size(), "step changed the state size");

    double max_rel = 0.0;
    bool over_cap = false;
    for (std::size_t i = 0; i < state.size(); ++i) {
      const double blended = (1.0 - alpha) * state[i] + alpha * next[i];
      const double denom = std::max(std::abs(blended), 1.0);
      max_rel = std::max(max_rel, std::abs(blended - state[i]) / denom);
      state[i] = blended;
      if (!std::isfinite(blended) || std::abs(blended) > options.divergence_cap) {
        over_cap = true;
      }
    }
    if (over_cap) {
      result.diverged = true;
      return result;
    }
    if (max_rel < options.tolerance) {
      result.converged = true;
      return result;
    }
  }
  return result;  // neither converged nor provably diverged: caller decides
}

}  // namespace kncube::model
