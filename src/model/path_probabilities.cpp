#include "model/path_probabilities.hpp"

#include "topology/torus.hpp"
#include "util/assert.hpp"

namespace kncube::model {

PathProbabilities path_probabilities(int k) {
  KNC_ASSERT(k >= 2);
  const double kd = k;
  const double n = kd * kd;
  const double denom = n * (n - 1.0);
  PathProbabilities p;
  // Ordered-pair counts (src != dst). The hot column contains k nodes.
  p.x_only = n * (kd - 1.0) / denom;
  p.y_only_hot = kd * (kd - 1.0) / denom;
  p.y_only_nonhot = (n - kd) * (kd - 1.0) / denom;
  p.x_then_hot_y = (n - kd) * (kd - 1.0) / denom;
  p.x_then_nonhot_y = (n * (kd - 1.0) * (kd - 1.0) - (n - kd) * (kd - 1.0)) / denom;
  return p;
}

PathProbabilities path_probabilities_bruteforce(int k) {
  KNC_ASSERT(k >= 2);
  const topo::KAryNCube net(k, 2, /*bidirectional=*/false);
  // Place the hot node anywhere; the counts are invariant by torus symmetry.
  const topo::NodeId hot = net.size() / 2;
  const int hot_col = net.coord(hot, 0);

  std::uint64_t x_only = 0, y_hot = 0, y_nonhot = 0, xy_hot = 0, xy_nonhot = 0;
  for (topo::NodeId s = 0; s < net.size(); ++s) {
    for (topo::NodeId d = 0; d < net.size(); ++d) {
      if (s == d) continue;
      const bool dx = net.coord(s, 0) != net.coord(d, 0);
      const bool dy = net.coord(s, 1) != net.coord(d, 1);
      if (dx && !dy) {
        ++x_only;
      } else if (!dx && dy) {
        (net.coord(s, 0) == hot_col ? y_hot : y_nonhot) += 1;
      } else {
        // dx && dy: the y-ring used is the *destination* column (x first).
        (net.coord(d, 0) == hot_col ? xy_hot : xy_nonhot) += 1;
      }
    }
  }
  const double denom = static_cast<double>(net.size()) *
                       (static_cast<double>(net.size()) - 1.0);
  PathProbabilities p;
  p.x_only = static_cast<double>(x_only) / denom;
  p.y_only_hot = static_cast<double>(y_hot) / denom;
  p.y_only_nonhot = static_cast<double>(y_nonhot) / denom;
  p.x_then_hot_y = static_cast<double>(xy_hot) / denom;
  p.x_then_nonhot_y = static_cast<double>(xy_nonhot) / denom;
  return p;
}

}  // namespace kncube::model
