// AnalyticalModel: the polymorphic solve interface over the four model
// families (hot-spot torus, uniform torus, hot-spot hypercube, uniform
// mesh).
//
// Each adapter fixes a base configuration (topology, Lm, V, h, approximation
// knobs) and exposes solve_at(lambda): build the concrete model at that
// injection rate and solve, with the same warm-start/continuation contract
// as the direct classes — warm solves are bit-identical to cold ones, a warm
// failure falls back to the cold path, and `converged_state` receives the
// converged iterate for chaining (empty when saturated). Results are
// returned as the common ModelResult; the uniform and hypercube adapters map
// their native result fields onto it by straight copies, so every double is
// bit-identical to what the direct model class reports (pinned by
// tests/model/engine_parity_test.cpp).
//
// Saturation semantics are uniform: `saturated == true` means the operating
// point has no steady state (the blank region past the latency asymptote),
// and `estimated_saturation_rate()` gives the coarse closed-form bottleneck
// estimate used to seed bisection searches. core/model_registry.hpp
// dispatches a core::ScenarioSpec to the matching adapter.
#pragma once

#include <memory>
#include <vector>

#include "model/hotspot_model.hpp"
#include "model/hypercube_model.hpp"
#include "model/mesh_hotspot_model.hpp"
#include "model/mesh_model.hpp"
#include "model/uniform_model.hpp"

namespace kncube::model {

class AnalyticalModel {
 public:
  virtual ~AnalyticalModel() = default;

  /// Short family name ("hotspot-torus", "uniform-torus",
  /// "hotspot-hypercube", "uniform-mesh").
  virtual const char* name() const noexcept = 0;

  /// Solves the model at injection rate `lambda`. `warm_start` (optional)
  /// seeds the fixed-point iteration with a nearby converged state;
  /// `converged_state` (optional) receives the converged iterate (empty when
  /// saturated). See HotspotModel::solve for the full contract.
  virtual ModelResult solve_at(double lambda, const std::vector<double>* warm_start,
                               std::vector<double>* converged_state) const = 0;

  ModelResult solve_at(double lambda) const { return solve_at(lambda, nullptr, nullptr); }

  /// Exact zero-load latency (the lambda -> 0 limit of solve_at().latency).
  virtual double zero_load_latency() const = 0;

  /// Coarse closed-form bottleneck estimate of the saturation rate, used to
  /// seed bisection searches. Independent of any particular lambda.
  virtual double estimated_saturation_rate() const = 0;
};

/// The paper's hot-spot 2-D torus model. `base.injection_rate` is ignored;
/// solve_at substitutes its lambda.
class HotspotAnalyticalModel final : public AnalyticalModel {
 public:
  explicit HotspotAnalyticalModel(ModelConfig base);
  const char* name() const noexcept override { return "hotspot-torus"; }
  ModelResult solve_at(double lambda, const std::vector<double>* warm_start,
                       std::vector<double>* converged_state) const override;
  double zero_load_latency() const override;
  double estimated_saturation_rate() const override;

 private:
  ModelConfig base_;
};

/// The uniform-traffic torus baseline. Native UniformModelResult fields map
/// onto ModelResult as: latency/saturated/converged/iterations verbatim;
/// regular_latency = latency (all traffic is regular), hot_latency = 0;
/// network_latency -> regular_network_latency; source_wait ->
/// source_wait_regular; vc_mux_x verbatim; vc_mux_y -> both y-mux slots;
/// channel_utilization -> max_channel_utilization.
class UniformAnalyticalModel final : public AnalyticalModel {
 public:
  explicit UniformAnalyticalModel(UniformModelConfig base);
  const char* name() const noexcept override { return "uniform-torus"; }
  ModelResult solve_at(double lambda, const std::vector<double>* warm_start,
                       std::vector<double>* converged_state) const override;
  double zero_load_latency() const override;
  double estimated_saturation_rate() const override;

 private:
  UniformModelConfig base_;
};

/// The hypercube lineage model (paper ref. [12]). Native fields map onto
/// ModelResult as: latency/saturated/converged/iterations and the latency
/// decomposition verbatim; source_wait -> source_wait_regular;
/// vc_mux_bottleneck -> vc_mux_hot_y (the funnel is the hypercube's hot-y
/// analogue); max_channel_utilization verbatim.
class HypercubeAnalyticalModel final : public AnalyticalModel {
 public:
  explicit HypercubeAnalyticalModel(HypercubeModelConfig base);
  const char* name() const noexcept override { return "hotspot-hypercube"; }
  ModelResult solve_at(double lambda, const std::vector<double>* warm_start,
                       std::vector<double>* converged_state) const override;
  double zero_load_latency() const override;
  double estimated_saturation_rate() const override;

 private:
  HypercubeModelConfig base_;
};

/// Shape of the two-state MMPP arrival chain (core::MmppArrivals mirrored
/// into the model layer, which cannot depend on core/). The arrival IDC fed
/// to the engine depends on the operating point's mean rate, so the MMPP
/// adapters recompute it inside every solve_at instead of freezing it at
/// construction.
struct MmppArrivalShape {
  double burst_multiplier = 4.0;
  double p_enter_burst = 0.0005;
  double p_leave_burst = 0.002;
};

/// Hot-spot torus under bursty (MMPP) arrivals: the Bernoulli hot-spot model
/// with the engine's two-moment bursty service stage (engine/bursty.hpp),
/// arrival_idc recomputed from the MMPP stationary chain at each lambda.
/// burst_multiplier == 1 makes every solve bitwise-identical to
/// HotspotAnalyticalModel (the IDC is exactly 1).
class MmppHotspotAnalyticalModel final : public AnalyticalModel {
 public:
  MmppHotspotAnalyticalModel(ModelConfig base, MmppArrivalShape shape);
  const char* name() const noexcept override { return "mmpp-hotspot-torus"; }
  ModelResult solve_at(double lambda, const std::vector<double>* warm_start,
                       std::vector<double>* converged_state) const override;
  double zero_load_latency() const override;
  double estimated_saturation_rate() const override;

 private:
  ModelConfig base_;
  MmppArrivalShape shape_;
};

/// Uniform torus under bursty (MMPP) arrivals; same contract as the hot-spot
/// MMPP adapter.
class MmppUniformAnalyticalModel final : public AnalyticalModel {
 public:
  MmppUniformAnalyticalModel(UniformModelConfig base, MmppArrivalShape shape);
  const char* name() const noexcept override { return "mmpp-uniform-torus"; }
  ModelResult solve_at(double lambda, const std::vector<double>* warm_start,
                       std::vector<double>* converged_state) const override;
  double zero_load_latency() const override;
  double estimated_saturation_rate() const override;

 private:
  UniformModelConfig base_;
  MmppArrivalShape shape_;
};

/// The k-ary n-mesh uniform model (position-dependent channel classes).
/// Native MeshModelResult fields map onto ModelResult as:
/// latency/saturated/converged/iterations verbatim; regular_latency =
/// latency (all traffic is regular), hot_latency = 0; network_latency ->
/// regular_network_latency; source_wait -> source_wait_regular;
/// vc_mux_first_dim -> vc_mux_x; vc_mux_last_dim -> both y-mux slots;
/// max_channel_utilization verbatim.
class MeshAnalyticalModel final : public AnalyticalModel {
 public:
  explicit MeshAnalyticalModel(MeshModelConfig base);
  const char* name() const noexcept override { return "uniform-mesh"; }
  ModelResult solve_at(double lambda, const std::vector<double>* warm_start,
                       std::vector<double>* converged_state) const override;
  double zero_load_latency() const override;
  double estimated_saturation_rate() const override;

 private:
  MeshModelConfig base_;
};

/// The centre-hot-spot k-ary n-mesh model (mesh_hotspot_model.hpp). The
/// native result already is the shared ModelResult, so solve_at is a straight
/// passthrough. Only the simulator's default (centre) hot node is modeled;
/// core/model_registry.cpp keeps off-centre hot nodes sim-only.
class HotspotMeshAnalyticalModel final : public AnalyticalModel {
 public:
  explicit HotspotMeshAnalyticalModel(MeshHotspotModelConfig base);
  const char* name() const noexcept override { return "hotspot-mesh"; }
  ModelResult solve_at(double lambda, const std::vector<double>* warm_start,
                       std::vector<double>* converged_state) const override;
  double zero_load_latency() const override;
  double estimated_saturation_rate() const override;

 private:
  MeshHotspotModelConfig base_;
};

}  // namespace kncube::model
