// Baseline: uniform-traffic analytical model for the deterministically-routed
// 2-D unidirectional torus (the h = 0 special case, in the lineage of the
// classic wormhole models [4, 6, 18] the paper builds on).
//
// This is an *independent* three-class implementation (x-only, x-then-y,
// y-only), not a wrapper over HotspotModel: the hot-spot model with h = 0
// must reproduce it to solver tolerance, which the integration tests use as
// a strong structural cross-check of both implementations.
#pragma once

#include <limits>
#include <vector>

#include "model/solver.hpp"

namespace kncube::model {

struct UniformModelConfig {
  int k = 16;
  int vcs = 2;
  int message_length = 32;
  double injection_rate = 1e-4;
  /// Arrival-process index of dispersion (engine/bursty.hpp): 1 = Bernoulli
  /// (bitwise-unchanged results), > 1 = bursty MMPP arrivals.
  double arrival_idc = 1.0;
  FixedPointOptions solver{};

  void validate() const;
};

struct UniformModelResult {
  double latency = std::numeric_limits<double>::infinity();
  bool saturated = true;
  bool converged = false;
  int iterations = 0;
  double network_latency = 0.0;  ///< unscaled mean network latency
  double source_wait = 0.0;
  double vc_mux_x = 1.0;
  double vc_mux_y = 1.0;
  double channel_utilization = 0.0;  ///< identical on every channel
};

class UniformTorusModel {
 public:
  explicit UniformTorusModel(const UniformModelConfig& cfg);

  UniformModelResult solve() const { return solve(nullptr, nullptr); }
  /// Continuation solve: `warm_start` seeds the iteration with a nearby
  /// converged state (cold fallback on failure, bit-identical on success);
  /// `converged_state` receives the converged iterate for chaining. Either
  /// may be null. See HotspotModel::solve for the contract.
  UniformModelResult solve(const std::vector<double>* warm_start,
                           std::vector<double>* converged_state) const;
  double zero_load_latency() const;
  /// Per-channel message rate lambda * (k-1)/2.
  double channel_rate() const noexcept;

 private:
  UniformModelConfig cfg_;
};

}  // namespace kncube::model
