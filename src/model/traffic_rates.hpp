// Channel traffic rates under hot-spot traffic (paper eqs (1)-(9)).
#pragma once

#include <vector>

namespace kncube::model {

/// Per-channel message rates for the 2-D unidirectional torus with XY
/// routing and Pfister–Norton hot-spot traffic. Index convention follows the
/// paper: position j in [1, k] counts hops to the hot column (x channels) or
/// to the hot node (hot-y-ring channels); j == k is the channel leaving the
/// hot column / hot node itself and carries no hot-spot traffic. Arrays are
/// stored with j at index j (index 0 unused).
struct TrafficRates {
  double lambda = 0.0;      ///< per-node generation rate
  double hot_fraction = 0.0;
  int k = 0;
  double mean_hops_per_dim = 0.0;  ///< kbar = (k-1)/2, eq (1)
  double regular_rate = 0.0;       ///< lambda_r, on every channel, eq (3)
  std::vector<double> hot_x;       ///< lambda^h_x[j] = lambda*h*(k-j), eq (6)
  std::vector<double> hot_y;       ///< lambda^h_y[j] = lambda*h*k*(k-j), eq (7)

  double total_x(int j) const { return regular_rate + hot_x[static_cast<std::size_t>(j)]; }
  double total_hot_y(int j) const {
    return regular_rate + hot_y[static_cast<std::size_t>(j)];
  }
};

TrafficRates traffic_rates(int k, double lambda, double hot_fraction);

}  // namespace kncube::model
