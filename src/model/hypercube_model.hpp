// Hot-spot latency model for the deterministically-routed binary hypercube —
// the paper's direct predecessor (its ref. [12]: Loucif & Ould-Khaoua,
// "Modelling latency in deterministic wormhole-routed hypercubes under
// hot-spot traffic", J. Supercomputing 27(3), 2004), rebuilt here with the
// same queueing machinery as the torus model so the two lineage models can
// be compared on equal footing.
//
// Topology: N = 2^n nodes; node v's dimension-d channel links it to
// v XOR (1<<d). E-cube (dimension-order) routing corrects differing bits in
// increasing dimension order — exactly the k = 2 instance of this
// repository's k-ary n-cube simulator, which is what the tests validate
// against.
//
// Structure (mirrors DESIGN.md §3 with hypercube geometry):
//  * regular per-channel rate: lambda (1-h) 2^{n-1}/(2^n - 1)  (~lambda/2);
//  * hot-spot traffic funnels: the dim-d channel pointing at the hot node
//    from a node whose bits below d already match carries lambda h 2^d
//    (2^{n-d-1} such channels exist; conservation: sum_d 2^d 2^{n-d-1}
//    = n 2^{n-1} = total hot hop flux);
//  * a message at its dim-d channel next visits dim d' > d with probability
//    2^{-(d'-d)} and is delivered with probability 2^{-(n-1-d)} (source
//    address bits above d are i.i.d. fair coins);
//  * per-dimension service times S^r_d, S^h_d close through the same
//    blocking/waiting primitives (mg1.hpp) and Dally VC chain (vcmux.hpp),
//    solved by the shared fixed-point driver.
#pragma once

#include <limits>
#include <vector>

#include "model/engine/channel_class.hpp"  // ServiceBasis, BlockingVariant
#include "model/solver.hpp"

namespace kncube::model {

struct HypercubeModelConfig {
  int dims = 6;                  ///< n; N = 2^n nodes
  int vcs = 2;                   ///< V virtual channels per channel
  int message_length = 32;       ///< Lm flits
  double injection_rate = 1e-4;  ///< lambda, messages/node/cycle
  double hot_fraction = 0.2;     ///< h
  ServiceBasis busy_basis = ServiceBasis::kTransmission;
  ServiceBasis vcmux_basis = ServiceBasis::kTransmission;
  FixedPointOptions solver{};

  void validate() const;
};

struct HypercubeModelResult {
  double latency = std::numeric_limits<double>::infinity();
  bool saturated = true;
  bool converged = false;
  int iterations = 0;

  double regular_latency = 0.0;
  double hot_latency = 0.0;
  double source_wait = 0.0;
  /// Multiplexing degree on the final funnel channel (dim n-1 into the hot
  /// node) — the hypercube's bottleneck.
  double vc_mux_bottleneck = 1.0;
  double max_channel_utilization = 0.0;
};

class HypercubeHotspotModel {
 public:
  explicit HypercubeHotspotModel(const HypercubeModelConfig& cfg);

  HypercubeModelResult solve() const { return solve(nullptr, nullptr); }
  /// Continuation solve: `warm_start` seeds the iteration with a nearby
  /// converged state (cold fallback on failure, bit-identical on success);
  /// `converged_state` receives the converged iterate for chaining. Either
  /// may be null. See HotspotModel::solve for the contract.
  HypercubeModelResult solve(const std::vector<double>* warm_start,
                             std::vector<double>* converged_state) const;

  const HypercubeModelConfig& config() const noexcept { return cfg_; }

  /// Exact zero-load latency: mean e-cube hops + Lm - 1 over the hot/regular
  /// mix (hot and regular coincide — both are uniform over the other nodes'
  /// bit patterns).
  double zero_load_latency() const;

  /// Per-channel regular rate lambda (1-h) 2^{n-1}/(2^n - 1).
  double regular_channel_rate() const;
  /// Hot rate on a dim-d funnel channel: lambda h 2^d.
  double hot_funnel_rate(int d) const;
  /// P(lowest differing dimension == d) for a uniform non-equal pair.
  double first_dim_probability(int d) const;

  /// Coarse bottleneck estimate seeding saturation searches: the dim n-1
  /// funnel channel carries lambda h 2^{n-1} (+ background) at ~Lm cycles
  /// per message.
  double estimated_saturation_rate() const;

 private:
  HypercubeModelConfig cfg_;
};

}  // namespace kncube::model
