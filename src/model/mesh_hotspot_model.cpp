#include "model/mesh_hotspot_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "model/engine/mg1.hpp"
#include "model/engine/vcmux.hpp"
#include "topology/mesh_geometry.hpp"
#include "topology/torus.hpp"  // topo::kMaxDims
#include "util/assert.hpp"

namespace kncube::model {

namespace {

using engine::ChannelClass;
using engine::ChannelClassSystem;
using engine::StateExpr;
using engine::StreamSpec;

/// Mean line distance to the centre coordinate c = k/2 from a uniform
/// source coordinate — the hot analogue of mesh_mean_line_hops.
double mean_hot_line_hops(int k) {
  const int c = k / 2;
  int sum = 0;
  for (int x = 0; x < k; ++x) sum += std::abs(x - c);
  return static_cast<double>(sum) / static_cast<double>(k);
}

// Slot layout. Hot chains first, dimensions high-to-low (the funnel before
// the lines feeding it), +chain positions descending and -chain positions
// ascending, so every hot continuation — the next link toward the centre,
// or E_h(d+1) over the next dimension's chains — references an earlier
// slot. The regular classes follow in the uniform-mesh layout, offset past
// the hot block; they reference only regular slots, so the engine's default
// slot-order evaluation is a valid Gauss-Seidel order for the whole system.
struct Lay {
  int k, n, c, ns, np, nm;
  Lay(int k_, int n_)
      : k(k_), n(n_), c(k_ / 2), ns(k_ - 1), np(k_ / 2), nm(k_ - 1 - k_ / 2) {}
  int hot_base(int d) const { return (n - 1 - d) * (np + nm); }
  /// + link p -> p+1, p = 0..c-1 (hot flows up toward c).
  int sp(int d, int p) const { return hot_base(d) + (c - 1 - p); }
  /// - link x -> x-1, x = c+1..k-1 (hot flows down toward c).
  int sm(int d, int x) const { return hot_base(d) + np + (x - (c + 1)); }
  int reg_base() const { return n * (np + nm); }
  int reg(int d, int i) const {
    return reg_base() + (n - 1 - d) * ns + (ns - 1 - i);
  }
  int total() const { return reg_base() + n * ns; }
};

struct Lin {
  double c = 0.0;
  std::vector<std::pair<int, double>> terms;
};

void add_scaled(Lin& out, const Lin& in, double scale) {
  out.c += scale * in.c;
  for (const auto& [slot, weight] : in.terms) {
    out.terms.emplace_back(slot, scale * weight);
  }
}

/// Builder: shared geometry, rates and holding times for build + assembly.
struct Geo {
  const MeshHotspotModelConfig& cfg;
  Lay lay;
  double lm, h, md_uniform, md_hot;

  explicit Geo(const MeshHotspotModelConfig& c)
      : cfg(c),
        lay(c.k, c.n),
        lm(static_cast<double>(c.message_length)),
        h(c.hot_fraction),
        md_uniform(topo::mesh_mean_line_hops(c.k)),
        md_hot(mean_hot_line_hops(c.k)) {}

  /// Fraction of dimension-d lines that are hot lines: k^-d.
  double q(int d) const {
    return std::pow(1.0 / static_cast<double>(lay.k), d);
  }
  /// Sources funnelled per hot-line position of dimension d: k^d (every
  /// combination of the already-corrected coordinates), each offering
  /// h*lambda toward the centre.
  double funnel(int d) const {
    return std::pow(static_cast<double>(lay.k), d) * h * cfg.injection_rate;
  }
  double sp_rate(int d, int p) const {
    return static_cast<double>(p + 1) * funnel(d);
  }
  double sm_rate(int d, int x) const {
    return static_cast<double>(lay.k - x) * funnel(d);
  }
  double reg_rate(int i) const {
    return topo::mesh_channel_rate((1.0 - h) * cfg.injection_rate, lay.k,
                                   lay.n, i);
  }

  /// Contention-free holding times: Lm plus the mean hops remaining after
  /// the link is crossed. Hot messages have c - (p+1) (or x-1 - c) hops left
  /// in the line and the mean centre distance in every later dimension.
  double tx_sp(int d, int p) const {
    return lm + static_cast<double>(lay.c - 1 - p) +
           static_cast<double>(lay.n - 1 - d) * md_hot;
  }
  double tx_sm(int d, int x) const {
    return lm + static_cast<double>(x - 1 - lay.c) +
           static_cast<double>(lay.n - 1 - d) * md_hot;
  }
  double tx_reg(int d, int i) const {
    return lm + static_cast<double>(lay.k - 2 - i) / 2.0 +
           static_cast<double>(lay.n - 1 - d) * md_uniform;
  }

  StreamSpec reg_stream(int d, int i) const {
    return {reg_rate(i), StateExpr::slot(lay.reg(d, i)), tx_reg(d, i)};
  }
  StreamSpec sp_stream(int d, int p) const {
    return {sp_rate(d, p), StateExpr::slot(lay.sp(d, p)), tx_sp(d, p)};
  }
  StreamSpec sm_stream(int d, int x) const {
    return {sm_rate(d, x), StateExpr::slot(lay.sm(d, x)), tx_sm(d, x)};
  }
  /// Hot stream on the + instance of folded regular position i (empty when
  /// the link is past the centre and carries no +chain traffic).
  StreamSpec hot_on_plus(int d, int i) const {
    if (i >= lay.c) return {};
    return sp_stream(d, i);
  }
  /// Hot stream on the - instance: the fold maps + position i onto the
  /// - link from k-1-i down to k-2-i, in the -chain when k-1-i > c.
  StreamSpec hot_on_minus(int d, int i) const {
    const int x = lay.k - 1 - i;
    if (x <= lay.c) return {};
    return sm_stream(d, x);
  }
};

/// Builds the 2n(k-1)-class system (DESIGN.md §13): hot chains
///
///   Sp_d(p) = Bh + 1 + (p = c-1 ? E_h(d+1) : Sp_d(p+1))
///   Sm_d(x) = Bh + 1 + (x = c+1 ? E_h(d+1) : Sm_d(x-1))
///   E_h(d)  = 1/k [ E_h(d+1) + sum_p Sp_d(p) + sum_x Sm_d(x) ],
///   E_h(n)  = Lm - 1
///
/// plus the uniform-mesh regular recursion with the hot-line blocking
/// mixture. `eh` and `eh0` (optional) receive the E_h(0) expression and its
/// zero-load value for the assembly phase.
ChannelClassSystem build_system(const Geo& geo, Lin* eh_out, double* eh0_out) {
  const MeshHotspotModelConfig& cfg = geo.cfg;
  const Lay& lay = geo.lay;
  const int k = lay.k;
  const int n = lay.n;
  const int c = lay.c;
  const double lm = geo.lm;

  engine::EngineOptions opts;
  opts.service_floor = lm;
  opts.blocking = cfg.blocking;
  opts.busy_basis = cfg.busy_basis;
  ChannelClassSystem sys(lay.total(), opts);

  // --- hot chains, funnel dimension first -------------------------------
  std::vector<Lin> eh(static_cast<std::size_t>(n) + 1);
  std::vector<double> eh0(static_cast<std::size_t>(n) + 1, lm - 1.0);
  eh[static_cast<std::size_t>(n)].c = lm - 1.0;
  std::vector<double> hot0(static_cast<std::size_t>(lay.reg_base()), 0.0);

  for (int d = n - 1; d >= 0; --d) {
    const Lin& cont = eh[static_cast<std::size_t>(d + 1)];
    const double cont0 = eh0[static_cast<std::size_t>(d + 1)];
    for (int p = c - 1; p >= 0; --p) {
      ChannelClass cls;
      cls.name = "hot+";
      cls.blocking =
          sys.add_blocking({{{1.0, geo.reg_stream(d, p), geo.sp_stream(d, p)}},
                            1.0});
      double init;
      if (p == c - 1) {
        cls.output_continuation =
            StateExpr::weighted(cont.c, 1.0, {cont.terms});
        init = 1.0 + cont0;
      } else {
        cls.output_continuation = StateExpr::slot(lay.sp(d, p + 1));
        init = 1.0 + hot0[static_cast<std::size_t>(lay.sp(d, p + 1))];
      }
      hot0[static_cast<std::size_t>(lay.sp(d, p))] = init;
      cls.initial = init;
      sys.set_class(lay.sp(d, p), std::move(cls));
    }
    for (int x = c + 1; x < k; ++x) {
      const int i = k - 1 - x;  // folded regular position of the - link
      ChannelClass cls;
      cls.name = "hot-";
      cls.blocking =
          sys.add_blocking({{{1.0, geo.reg_stream(d, i), geo.sm_stream(d, x)}},
                            1.0});
      double init;
      if (x == c + 1) {
        cls.output_continuation =
            StateExpr::weighted(cont.c, 1.0, {cont.terms});
        init = 1.0 + cont0;
      } else {
        cls.output_continuation = StateExpr::slot(lay.sm(d, x - 1));
        init = 1.0 + hot0[static_cast<std::size_t>(lay.sm(d, x - 1))];
      }
      hot0[static_cast<std::size_t>(lay.sm(d, x))] = init;
      cls.initial = init;
      sys.set_class(lay.sm(d, x), std::move(cls));
    }
    // Close E_h(d): a hot message enters dimension d at a uniform source
    // coordinate — already centred with probability 1/k, else it starts the
    // chain at its entry link.
    Lin& ed = eh[static_cast<std::size_t>(d)];
    const double inv_k = 1.0 / static_cast<double>(k);
    add_scaled(ed, cont, inv_k);
    double acc0 = cont0;
    for (int p = 0; p < c; ++p) {
      ed.terms.emplace_back(lay.sp(d, p), inv_k);
      acc0 += hot0[static_cast<std::size_t>(lay.sp(d, p))];
    }
    for (int x = c + 1; x < k; ++x) {
      ed.terms.emplace_back(lay.sm(d, x), inv_k);
      acc0 += hot0[static_cast<std::size_t>(lay.sm(d, x))];
    }
    eh0[static_cast<std::size_t>(d)] = acc0 * inv_k;
  }

  // --- regular classes: uniform-mesh recursion, hot-line blocking mix ----
  std::vector<Lin> g(static_cast<std::size_t>(n) + 1);
  std::vector<double> g0(static_cast<std::size_t>(n) + 1, lm - 1.0);
  g[static_cast<std::size_t>(n)].c = lm - 1.0;
  std::vector<double> s0(static_cast<std::size_t>(lay.total()), 0.0);

  for (int d = n - 1; d >= 0; --d) {
    const Lin& cont_g = g[static_cast<std::size_t>(d + 1)];
    const double cont_g0 = g0[static_cast<std::size_t>(d + 1)];
    const double qd = geo.q(d);
    for (int i = k - 2; i >= 0; --i) {
      const double m = static_cast<double>(k - 1 - i);
      Lin cont;
      if (i == k - 2) {
        add_scaled(cont, cont_g, 1.0);
      } else {
        add_scaled(cont, cont_g, 1.0 / m);
        cont.terms.emplace_back(lay.reg(d, i + 1), (m - 1.0) / m);
      }

      // Blocking mixture over the folded link pair's line type: plain with
      // probability 1-q_d, else the + or - instance of a hot line (equally
      // likely under the fold).
      engine::BlockingSpec spec;
      spec.divisor = 1.0;
      if (qd < 1.0) {
        spec.terms.push_back({1.0 - qd, geo.reg_stream(d, i), {}});
      }
      spec.terms.push_back({qd / 2.0, geo.reg_stream(d, i), geo.hot_on_plus(d, i)});
      spec.terms.push_back(
          {qd / 2.0, geo.reg_stream(d, i), geo.hot_on_minus(d, i)});

      ChannelClass cls;
      cls.name = "mesh";
      cls.blocking = sys.add_blocking(std::move(spec));
      double init = 1.0 + cont_g0;
      if (i < k - 2) {
        init = 1.0 +
               (m - 1.0) / m * s0[static_cast<std::size_t>(lay.reg(d, i + 1))] +
               cont_g0 / m;
      }
      s0[static_cast<std::size_t>(lay.reg(d, i))] = init;
      cls.initial = init;
      cls.output_continuation =
          StateExpr::weighted(cont.c, 1.0, std::move(cont.terms));
      sys.set_class(lay.reg(d, i), std::move(cls));
    }
    Lin& gd = g[static_cast<std::size_t>(d)];
    add_scaled(gd, g[static_cast<std::size_t>(d + 1)],
               1.0 / static_cast<double>(k));
    double enter0 = 0.0;
    for (int i = 0; i < k - 1; ++i) {
      const double w = topo::mesh_entrance_weight(k, i) *
                       (static_cast<double>(k - 1) / static_cast<double>(k));
      gd.terms.emplace_back(lay.reg(d, i), w);
      enter0 += topo::mesh_entrance_weight(k, i) *
                s0[static_cast<std::size_t>(lay.reg(d, i))];
    }
    g0[static_cast<std::size_t>(d)] =
        g0[static_cast<std::size_t>(d + 1)] / static_cast<double>(k) +
        enter0 * (static_cast<double>(k - 1) / static_cast<double>(k));
  }

  if (eh_out != nullptr) *eh_out = std::move(eh[0]);
  if (eh0_out != nullptr) *eh0_out = eh0[0];
  return sys;
}

}  // namespace

void MeshHotspotModelConfig::validate() const {
  auto fail = [](const char* m) { throw std::invalid_argument(m); };
  if (k < 2) fail("MeshHotspotModelConfig: k must be >= 2");
  if (n < 1 || n > topo::kMaxDims) fail("MeshHotspotModelConfig: n out of range");
  if (vcs < 1) fail("MeshHotspotModelConfig: need at least one VC");
  if (message_length < 1) {
    fail("MeshHotspotModelConfig: message length must be >= 1");
  }
  if (injection_rate < 0.0 || injection_rate > 1.0) {
    fail("MeshHotspotModelConfig: rate must be in [0,1]");
  }
  if (hot_fraction < 0.0 || hot_fraction > 1.0) {
    fail("MeshHotspotModelConfig: hot fraction must be in [0,1]");
  }
}

MeshHotspotModel::MeshHotspotModel(const MeshHotspotModelConfig& cfg)
    : cfg_(cfg) {
  cfg.validate();
}

ModelResult MeshHotspotModel::solve(
    const std::vector<double>* warm_start,
    std::vector<double>* converged_state) const {
  const Geo geo(cfg_);
  const Lay& lay = geo.lay;
  const int k = lay.k;
  const int n = lay.n;
  const double lm = geo.lm;
  const double h = geo.h;

  ModelResult res;
  if (converged_state != nullptr) converged_state->clear();

  Lin eh;
  double eh0 = 0.0;
  const ChannelClassSystem sys = build_system(geo, &eh, &eh0);
  engine::SolvePolicy policy;
  policy.options = cfg_.solver;
  std::vector<double> state;
  const FixedPointResult fp = sys.solve(state, policy, warm_start);
  res.iterations = fp.iterations;
  res.converged = fp.converged;
  if (!fp.converged) return res;  // saturated (diverged or no steady state)

  // --- regular network latency: uniform-mesh assembly over the regular
  // slots (first-correcting-dimension probabilities are exact path counts).
  const double p_self = std::pow(static_cast<double>(k), -n);
  std::vector<double> entrance(static_cast<std::size_t>(n), 0.0);
  std::vector<double> p_first(static_cast<std::size_t>(n), 0.0);
  double s_net = 0.0;
  for (int j = 0; j < n; ++j) {
    double e = 0.0;
    for (int i = 0; i < k - 1; ++i) {
      e += topo::mesh_entrance_weight(k, i) *
           state[static_cast<std::size_t>(lay.reg(j, i))];
    }
    entrance[static_cast<std::size_t>(j)] = e;
    p_first[static_cast<std::size_t>(j)] =
        std::pow(1.0 / static_cast<double>(k), j) *
        (static_cast<double>(k - 1) / static_cast<double>(k)) / (1.0 - p_self);
    s_net += p_first[static_cast<std::size_t>(j)] * e;
  }
  res.regular_network_latency = s_net;

  // Hot network latency: E_h(0) evaluated on the converged state.
  double eh_net = eh.c;
  for (const auto& [slot, weight] : eh.terms) {
    eh_net += weight * state[static_cast<std::size_t>(slot)];
  }

  // --- source wait: per-VC M/G/1 over the h-mixed network service.
  const double arr = cfg_.injection_rate / static_cast<double>(cfg_.vcs);
  const double s_mix = (1.0 - h) * s_net + h * eh_net;
  const QueueDelay ws = mg1_wait(arr, s_mix, lm);
  if (ws.saturated) return res;
  res.source_wait_regular = ws.value;

  // --- VC multiplexing: entrance-weighted per dimension for the regular
  // path (folded-pair mean rate includes the hot share of the line mix) and
  // entry-weighted over the funnel dimension's chains for the hot path.
  const auto mux_service_reg = [&](int d, int i) {
    return cfg_.vcmux_basis == ServiceBasis::kTransmission
               ? geo.tx_reg(d, i)
               : state[static_cast<std::size_t>(lay.reg(d, i))];
  };
  double latency_reg = 0.0;
  double vbar_first = 1.0;
  double vbar_last = 1.0;
  for (int j = 0; j < n; ++j) {
    const double qd = geo.q(j);
    double vbar = 0.0;
    for (int i = 0; i < k - 1; ++i) {
      const double hot_pair =
          qd * 0.5 * (geo.hot_on_plus(j, i).rate + geo.hot_on_minus(j, i).rate);
      vbar += topo::mesh_entrance_weight(k, i) *
              vc_multiplexing_degree(geo.reg_rate(i) + hot_pair,
                                     mux_service_reg(j, i), cfg_.vcs);
    }
    if (j == 0) vbar_first = vbar;
    if (j == n - 1) vbar_last = vbar;
    latency_reg += p_first[static_cast<std::size_t>(j)] *
                   (entrance[static_cast<std::size_t>(j)] + ws.value) * vbar;
  }
  res.vc_mux_x = vbar_first;
  res.vc_mux_nonhot_y = vbar_last;

  // Funnel-dimension hot multiplexing, entry-coordinate weighted.
  const int fd = n - 1;
  double vbar_hot = 0.0;
  for (int x = 0; x < k; ++x) {
    double rate = 0.0;
    double service = lm;
    if (x < lay.c) {
      rate = geo.sp_rate(fd, x) + geo.reg_rate(x);
      service = cfg_.vcmux_basis == ServiceBasis::kTransmission
                    ? geo.tx_sp(fd, x)
                    : state[static_cast<std::size_t>(lay.sp(fd, x))];
    } else if (x > lay.c) {
      rate = geo.sm_rate(fd, x) + geo.reg_rate(k - 1 - x);
      service = cfg_.vcmux_basis == ServiceBasis::kTransmission
                    ? geo.tx_sm(fd, x)
                    : state[static_cast<std::size_t>(lay.sm(fd, x))];
    }
    vbar_hot += vc_multiplexing_degree(rate, service, cfg_.vcs) /
                static_cast<double>(k);
  }
  res.vc_mux_hot_y = vbar_hot;

  const double latency_hot = (eh_net + ws.value) * vbar_hot;
  res.regular_latency = latency_reg;
  res.hot_latency = latency_hot;
  res.latency = (1.0 - h) * latency_reg + h * latency_hot;

  // --- utilisation: regular classes at the regular rate, hot chains at the
  // full (regular + hot) link rate.
  double util = 0.0;
  for (int d = 0; d < n; ++d) {
    for (int i = 0; i < k - 1; ++i) {
      util = std::max(util, geo.reg_rate(i) *
                                state[static_cast<std::size_t>(lay.reg(d, i))]);
    }
    for (int p = 0; p < lay.c; ++p) {
      util = std::max(util, (geo.sp_rate(d, p) + geo.reg_rate(p)) *
                                state[static_cast<std::size_t>(lay.sp(d, p))]);
    }
    for (int x = lay.c + 1; x < k; ++x) {
      util = std::max(util,
                      (geo.sm_rate(d, x) + geo.reg_rate(k - 1 - x)) *
                          state[static_cast<std::size_t>(lay.sm(d, x))]);
    }
  }
  res.max_channel_utilization = std::min(1.0, util);
  res.saturated = false;
  if (converged_state != nullptr) *converged_state = std::move(state);
  return res;
}

double MeshHotspotModel::zero_load_latency() const {
  const double reg = topo::mesh_mean_hops_uniform(cfg_.k, cfg_.n) +
                     static_cast<double>(cfg_.message_length) - 1.0;
  const double hot = static_cast<double>(cfg_.n) * mean_hot_line_hops(cfg_.k) +
                     static_cast<double>(cfg_.message_length) - 1.0;
  return (1.0 - cfg_.hot_fraction) * reg + cfg_.hot_fraction * hot;
}

double MeshHotspotModel::estimated_saturation_rate() const {
  const Geo geo(cfg_);
  const Lay& lay = geo.lay;
  // Regular pole: the dimension-0 bisection link at the uniform component.
  const double coef_reg =
      topo::mesh_bottleneck_rate(1.0, cfg_.k, cfg_.n) * (1.0 - cfg_.hot_fraction);
  const double sat_reg =
      1.0 / (coef_reg * geo.tx_reg(0, (cfg_.k - 2) / 2));
  if (cfg_.hot_fraction <= 0.0) return sat_reg;
  // Funnel pole: the last + link into the centre of the funnel dimension
  // carries c * k^{n-1} hot sources plus the line's regular share.
  const int fd = cfg_.n - 1;
  const double coef_funnel =
      static_cast<double>(lay.c) *
          std::pow(static_cast<double>(cfg_.k), fd) * cfg_.hot_fraction +
      topo::mesh_channel_rate(1.0 - cfg_.hot_fraction, cfg_.k, cfg_.n,
                              lay.c - 1);
  const double sat_funnel = 1.0 / (coef_funnel * geo.tx_sp(fd, lay.c - 1));
  return std::min(sat_reg, sat_funnel);
}

}  // namespace kncube::model
