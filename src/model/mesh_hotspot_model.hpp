// Hot-spot analytical model for the deterministically-routed k-ary n-mesh,
// built on the shared channel-class engine.
//
// The hot node sits at the centre coordinate c = k/2 of every dimension (the
// simulator's resolved default). Under dimension-order routing a hot-spot
// message corrects dimension 0 first, so on dimension d it travels only on
// the "hot lines" whose coordinates in dimensions < d already equal the hot
// node's — a fraction q_d = k^-d of that dimension's lines (every dimension-0
// line is hot; by dimension n-1 only the single funnel line into the hot node
// remains, carrying k^{n-1} sources per position). Removing the torus wrap
// also breaks the mirror fold at the centre: the + links below c and the -
// links above c carry different hot loads, so the hot classes split into a
// +chain (positions 0..c-1) and a -chain (positions c+1..k-1) per dimension,
// while the regular classes keep the uniform-mesh fold and see the hot
// streams through a (1-q_d, q_d/2, q_d/2) blocking mixture over the plain /
// +hot / -hot line cases. DESIGN.md §13 derives the rates and recursions.
#pragma once

#include <limits>
#include <vector>

#include "model/engine/channel_class.hpp"  // BlockingVariant, ServiceBasis
#include "model/hotspot_model.hpp"         // ModelResult
#include "model/solver.hpp"

namespace kncube::model {

struct MeshHotspotModelConfig {
  int k = 8;                     ///< radix
  int n = 2;                     ///< dimensions
  int vcs = 2;                   ///< V virtual channels per physical channel
  int message_length = 32;       ///< Lm flits
  double injection_rate = 1e-4;  ///< lambda, messages/node/cycle
  double hot_fraction = 0.2;     ///< h, fraction of traffic aimed at centre
  BlockingVariant blocking = BlockingVariant::kPaper;
  ServiceBasis busy_basis = ServiceBasis::kTransmission;
  ServiceBasis vcmux_basis = ServiceBasis::kTransmission;
  FixedPointOptions solver{};

  void validate() const;  ///< throws std::invalid_argument when inconsistent
};

/// Solves the centre-hot-spot mesh. Results use the shared ModelResult:
/// regular_latency / hot_latency carry the two path classes, vc_mux_x the
/// dimension-0 entrance-weighted multiplexing degree, vc_mux_hot_y the
/// funnel (last-dimension hot-line) degree, vc_mux_nonhot_y the last
/// dimension's regular degree.
class MeshHotspotModel {
 public:
  explicit MeshHotspotModel(const MeshHotspotModelConfig& cfg);

  ModelResult solve() const { return solve(nullptr, nullptr); }
  /// Continuation solve: `warm_start` seeds the iteration with a nearby
  /// converged state (cold fallback on failure, bit-identical on success);
  /// `converged_state` receives the converged iterate for chaining. Either
  /// may be null. See HotspotModel::solve for the contract.
  ModelResult solve(const std::vector<double>* warm_start,
                    std::vector<double>* converged_state) const;

  const MeshHotspotModelConfig& config() const noexcept { return cfg_; }

  /// Exact zero-load latency: the h-weighted mix of the uniform mean
  /// Manhattan distance and the mean distance to the centre, plus Lm - 1.
  double zero_load_latency() const;

  /// Coarse closed-form saturation estimate: the tighter of the regular
  /// bisection-link pole and the hot funnel-link pole, used to seed
  /// bisection searches.
  double estimated_saturation_rate() const;

 private:
  MeshHotspotModelConfig cfg_;
};

}  // namespace kncube::model
