#include "model/uniform_model.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "model/mg1.hpp"
#include "model/vcmux.hpp"
#include "util/assert.hpp"

namespace kncube::model {

namespace {

// State: Sy[j], Sx[j], Sxy[j] for j = 1..k-1, packed in that order.
struct Lay {
  int ns;
  std::size_t y, x, xy, total;
  explicit Lay(int k) : ns(k - 1) {
    const auto n = static_cast<std::size_t>(ns);
    y = 0;
    x = n;
    xy = 2 * n;
    total = 3 * n;
  }
  std::size_t at(std::size_t base, int j) const {
    return base + static_cast<std::size_t>(j - 1);
  }
};

double avg(const std::vector<double>& v, std::size_t off, int n) {
  double a = 0.0;
  for (int i = 0; i < n; ++i) a += v[off + static_cast<std::size_t>(i)];
  return a / static_cast<double>(n);
}

}  // namespace

void UniformModelConfig::validate() const {
  auto fail = [](const char* m) { throw std::invalid_argument(m); };
  if (k < 2) fail("UniformModelConfig: k must be >= 2");
  if (vcs < 1) fail("UniformModelConfig: need at least one VC");
  if (message_length < 1) fail("UniformModelConfig: message length must be >= 1");
  if (injection_rate < 0.0 || injection_rate > 1.0) {
    fail("UniformModelConfig: rate must be in [0,1]");
  }
}

UniformTorusModel::UniformTorusModel(const UniformModelConfig& cfg) : cfg_(cfg) {
  cfg.validate();
}

double UniformTorusModel::channel_rate() const noexcept {
  return cfg_.injection_rate * static_cast<double>(cfg_.k - 1) / 2.0;
}

UniformModelResult UniformTorusModel::solve() const {
  const int k = cfg_.k;
  const double lm = static_cast<double>(cfg_.message_length);
  const double lc = channel_rate();
  const Lay lay(k);

  UniformModelResult res;

  std::vector<double> state(lay.total);
  const double y_ent0 = static_cast<double>(k) / 2.0 + lm - 1.0;
  for (int j = 1; j < k; ++j) {
    state[lay.at(lay.y, j)] = static_cast<double>(j) + lm - 1.0;
    state[lay.at(lay.x, j)] = static_cast<double>(j) + lm - 1.0;
    state[lay.at(lay.xy, j)] = static_cast<double>(j) + y_ent0;
  }

  // Contention-free holding times (R8): same formulas as the hot-spot
  // engine's regular streams, so the h = 0 cross-check is exact.
  const double tx_y = lm + static_cast<double>(k) / 2.0 - 1.0;
  const double tx_x = tx_y + static_cast<double>(k - 1) / 2.0;

  auto step = [&](const std::vector<double>& in, std::vector<double>& out) {
    const double ey = avg(in, lay.y, lay.ns);
    const double ex = avg(in, lay.x, lay.ns);
    const QueueDelay by =
        blocking_delay(Stream{lc, ey, tx_y}, Stream{}, lm, /*busy_on_inclusive=*/false);
    const QueueDelay bx =
        blocking_delay(Stream{lc, ex, tx_x}, Stream{}, lm, /*busy_on_inclusive=*/false);
    if (by.saturated || bx.saturated) return false;
    for (int j = 1; j < k; ++j) {
      out[lay.at(lay.y, j)] =
          by.value + 1.0 + (j == 1 ? lm - 1.0 : out[lay.at(lay.y, j - 1)]);
      out[lay.at(lay.x, j)] =
          bx.value + 1.0 + (j == 1 ? lm - 1.0 : out[lay.at(lay.x, j - 1)]);
      out[lay.at(lay.xy, j)] =
          bx.value + 1.0 + (j == 1 ? ey : out[lay.at(lay.xy, j - 1)]);
    }
    return true;
  };

  FixedPointResult fp = solve_fixed_point(state, step, cfg_.solver);
  res.iterations = fp.iterations;
  res.converged = fp.converged;
  if (!fp.converged) return res;  // saturated (diverged or no steady state)

  const double ey = avg(state, lay.y, lay.ns);
  const double ex = avg(state, lay.x, lay.ns);
  const double exy = avg(state, lay.xy, lay.ns);

  // Exact path-class probabilities under uniform destinations.
  const double n = static_cast<double>(k) * static_cast<double>(k);
  const double p_xonly = (static_cast<double>(k) - 1.0) / (n - 1.0);
  const double p_yonly = p_xonly;
  const double p_xy = (static_cast<double>(k) - 1.0) * (static_cast<double>(k) - 1.0) /
                      (n - 1.0);

  const double s_net = p_xonly * ex + p_xy * exy + p_yonly * ey;
  res.network_latency = s_net;

  const double arr = cfg_.injection_rate / static_cast<double>(cfg_.vcs);
  const QueueDelay ws = mg1_wait(arr, s_net, lm);
  if (ws.saturated) return res;
  res.source_wait = ws.value;

  // Transmission-basis occupancy, matching the hot-spot engine's default.
  res.vc_mux_x = vc_multiplexing_degree(lc, tx_x, cfg_.vcs);
  res.vc_mux_y = vc_multiplexing_degree(lc, tx_y, cfg_.vcs);

  res.latency = p_xonly * (ex + ws.value) * res.vc_mux_x +
                p_xy * (exy + ws.value) * res.vc_mux_x +
                p_yonly * (ey + ws.value) * res.vc_mux_y;
  res.channel_utilization = std::min(1.0, lc * ex);
  res.saturated = false;
  return res;
}

double UniformTorusModel::zero_load_latency() const {
  const int k = cfg_.k;
  const double lm = static_cast<double>(cfg_.message_length);
  const double kd = static_cast<double>(k);
  const double n = kd * kd;
  const double p_xonly = (kd - 1.0) / (n - 1.0);
  const double p_yonly = p_xonly;
  const double p_xy = (kd - 1.0) * (kd - 1.0) / (n - 1.0);
  const double one_dim = kd / 2.0 + lm - 1.0;
  const double two_dim = kd + lm - 1.0;
  return (p_xonly + p_yonly) * one_dim + p_xy * two_dim;
}

}  // namespace kncube::model
