#include "model/uniform_model.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "model/engine/channel_class.hpp"
#include "model/engine/mg1.hpp"
#include "model/engine/vcmux.hpp"
#include "util/assert.hpp"

namespace kncube::model {

namespace {

using engine::ChannelClass;
using engine::ChannelClassSystem;
using engine::StateExpr;

// State: Sy[j], Sx[j], Sxy[j] for j = 1..k-1, packed in that order.
struct Lay {
  int ns;
  int y, x, xy, total;
  explicit Lay(int k) : ns(k - 1), y(0), x(ns), xy(2 * ns), total(3 * ns) {}
  int at(int base, int j) const { return base + j - 1; }
};

double avg(const std::vector<double>& v, int off, int n) {
  double a = 0.0;
  for (int i = 0; i < n; ++i) a += v[static_cast<std::size_t>(off + i)];
  return a / static_cast<double>(n);
}

// Contention-free holding times (R8): same formulas as the hot-spot model's
// regular streams, so the h = 0 cross-check is structural. One definition
// feeds both the blocking model and the VC-mux occupancy.
struct HoldingTimes {
  double y, x;
};
HoldingTimes holding_times(int k, double lm) {
  const double tx_y = lm + static_cast<double>(k) / 2.0 - 1.0;
  return {tx_y, tx_y + static_cast<double>(k - 1) / 2.0};
}

/// Declares the three uniform path classes (y-only, x-only, x-then-y) over
/// the shared engine: one blocking group per dimension, chained per-hop
/// recursions, x-then-y entering the y dimension at its entrance average.
ChannelClassSystem build_system(const UniformModelConfig& cfg, double lc) {
  const int k = cfg.k;
  const double lm = static_cast<double>(cfg.message_length);
  const Lay lay(k);

  const auto [tx_y, tx_x] = holding_times(k, lm);

  engine::EngineOptions opts;
  opts.service_floor = lm;
  opts.blocking = BlockingVariant::kPaper;
  opts.busy_basis = ServiceBasis::kTransmission;
  opts.arrival_idc = cfg.arrival_idc;
  ChannelClassSystem sys(lay.total, opts);

  const int b_y = sys.add_blocking(
      {{{1.0, {lc, StateExpr::average(lay.y, lay.ns), tx_y}, {}}}, 1.0});
  const int b_x = sys.add_blocking(
      {{{1.0, {lc, StateExpr::average(lay.x, lay.ns), tx_x}, {}}}, 1.0});

  const double y_ent0 = static_cast<double>(k) / 2.0 + lm - 1.0;
  for (int j = 1; j < k; ++j) {
    const double base0 = static_cast<double>(j) + lm - 1.0;
    ChannelClass y;
    y.name = "y";
    y.blocking = b_y;
    y.initial = base0;
    if (j == 1) {
      y.input_continuation = StateExpr::constant_of(lm - 1.0);
    } else {
      y.output_continuation = StateExpr::slot(lay.at(lay.y, j - 1));
    }
    sys.set_class(lay.at(lay.y, j), std::move(y));

    ChannelClass x;
    x.name = "x";
    x.blocking = b_x;
    x.initial = base0;
    if (j == 1) {
      x.input_continuation = StateExpr::constant_of(lm - 1.0);
    } else {
      x.output_continuation = StateExpr::slot(lay.at(lay.x, j - 1));
    }
    sys.set_class(lay.at(lay.x, j), std::move(x));

    ChannelClass xy;
    xy.name = "xy";
    xy.blocking = b_x;
    xy.initial = static_cast<double>(j) + y_ent0;
    if (j == 1) {
      xy.input_continuation = StateExpr::average(lay.y, lay.ns);  // y entrance
    } else {
      xy.output_continuation = StateExpr::slot(lay.at(lay.xy, j - 1));
    }
    sys.set_class(lay.at(lay.xy, j), std::move(xy));
  }
  return sys;
}

}  // namespace

void UniformModelConfig::validate() const {
  auto fail = [](const char* m) { throw std::invalid_argument(m); };
  if (k < 2) fail("UniformModelConfig: k must be >= 2");
  if (vcs < 1) fail("UniformModelConfig: need at least one VC");
  if (message_length < 1) fail("UniformModelConfig: message length must be >= 1");
  if (injection_rate < 0.0 || injection_rate > 1.0) {
    fail("UniformModelConfig: rate must be in [0,1]");
  }
  if (!(arrival_idc >= 0.0)) {
    fail("UniformModelConfig: arrival dispersion must be >= 0");
  }
}

UniformTorusModel::UniformTorusModel(const UniformModelConfig& cfg) : cfg_(cfg) {
  cfg.validate();
}

double UniformTorusModel::channel_rate() const noexcept {
  return cfg_.injection_rate * static_cast<double>(cfg_.k - 1) / 2.0;
}

UniformModelResult UniformTorusModel::solve(
    const std::vector<double>* warm_start,
    std::vector<double>* converged_state) const {
  const int k = cfg_.k;
  const double lm = static_cast<double>(cfg_.message_length);
  const double lc = channel_rate();
  const Lay lay(k);

  UniformModelResult res;
  if (converged_state != nullptr) converged_state->clear();

  const ChannelClassSystem sys = build_system(cfg_, lc);
  engine::SolvePolicy policy;
  policy.options = cfg_.solver;
  policy.retry_with_stronger_damping = false;
  std::vector<double> state;
  const FixedPointResult fp = sys.solve(state, policy, warm_start);
  res.iterations = fp.iterations;
  res.converged = fp.converged;
  if (!fp.converged) return res;  // saturated (diverged or no steady state)

  const double ey = avg(state, lay.y, lay.ns);
  const double ex = avg(state, lay.x, lay.ns);
  const double exy = avg(state, lay.xy, lay.ns);

  // Exact path-class probabilities under uniform destinations.
  const double n = static_cast<double>(k) * static_cast<double>(k);
  const double p_xonly = (static_cast<double>(k) - 1.0) / (n - 1.0);
  const double p_yonly = p_xonly;
  const double p_xy = (static_cast<double>(k) - 1.0) * (static_cast<double>(k) - 1.0) /
                      (n - 1.0);

  const double s_net = p_xonly * ex + p_xy * exy + p_yonly * ey;
  res.network_latency = s_net;

  const double arr = cfg_.injection_rate / static_cast<double>(cfg_.vcs);
  const QueueDelay ws = mg1_wait(arr, s_net, lm, cfg_.arrival_idc);
  if (ws.saturated) return res;
  res.source_wait = ws.value;

  // Transmission-basis occupancy, matching the hot-spot model's default.
  const auto [tx_y, tx_x] = holding_times(k, lm);
  res.vc_mux_x = vc_multiplexing_degree(lc, tx_x, cfg_.vcs);
  res.vc_mux_y = vc_multiplexing_degree(lc, tx_y, cfg_.vcs);

  res.latency = p_xonly * (ex + ws.value) * res.vc_mux_x +
                p_xy * (exy + ws.value) * res.vc_mux_x +
                p_yonly * (ey + ws.value) * res.vc_mux_y;
  res.channel_utilization = std::min(1.0, lc * ex);
  res.saturated = false;
  if (converged_state != nullptr) *converged_state = std::move(state);
  return res;
}

double UniformTorusModel::zero_load_latency() const {
  const int k = cfg_.k;
  const double lm = static_cast<double>(cfg_.message_length);
  const double kd = static_cast<double>(k);
  const double n = kd * kd;
  const double p_xonly = (kd - 1.0) / (n - 1.0);
  const double p_yonly = p_xonly;
  const double p_xy = (kd - 1.0) * (kd - 1.0) / (n - 1.0);
  const double one_dim = kd / 2.0 + lm - 1.0;
  const double two_dim = kd + lm - 1.0;
  return (p_xonly + p_yonly) * one_dim + p_xy * two_dim;
}

}  // namespace kncube::model
