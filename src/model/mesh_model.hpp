// Uniform-traffic analytical model for the deterministically-routed k-ary
// n-mesh, built on the shared channel-class engine.
//
// Removing the torus's wrap-around links breaks vertex-transitivity: under
// dimension-order routing the load of a line's + link at position i is
// proportional to (i+1)(k-1-i) — peaking at the line's centre (the bisection
// links) — so the paper's "all channels of a dimension alike" classes no
// longer exist. The mesh model instead declares one channel class per
// (dimension, position): n(k-1) classes (the - direction folds onto the +
// classes by mirror symmetry, and the per-position rates are the same in
// every dimension), each with its own blocking group fed by the exact
// path-counting rates of src/topology/mesh_geometry.hpp, coupled through the
// same S = B + 1 + continuation recursion as the paper's eqs (16)-(25) and
// closed by the same damped warm-started fixed point. DESIGN.md §8 derives
// the per-class rate and continuation equations and maps each to its paper
// counterpart.
#pragma once

#include <limits>
#include <vector>

#include "model/engine/channel_class.hpp"  // BlockingVariant, ServiceBasis
#include "model/solver.hpp"

namespace kncube::model {

struct MeshModelConfig {
  int k = 8;                     ///< radix
  int n = 2;                     ///< dimensions
  int vcs = 2;                   ///< V virtual channels per physical channel
  int message_length = 32;       ///< Lm flits
  double injection_rate = 1e-4;  ///< lambda, messages/node/cycle
  BlockingVariant blocking = BlockingVariant::kPaper;
  ServiceBasis busy_basis = ServiceBasis::kTransmission;
  ServiceBasis vcmux_basis = ServiceBasis::kTransmission;
  FixedPointOptions solver{};

  void validate() const;  ///< throws std::invalid_argument when inconsistent
};

struct MeshModelResult {
  double latency = std::numeric_limits<double>::infinity();
  bool saturated = true;
  bool converged = false;
  int iterations = 0;

  double network_latency = 0.0;  ///< unscaled mean network latency
  double source_wait = 0.0;
  /// Entrance-weighted VC multiplexing degrees of the first and last
  /// dimensions (dimension 0 carries the longest continuations, the last
  /// dimension drains into the destination).
  double vc_mux_first_dim = 1.0;
  double vc_mux_last_dim = 1.0;
  /// Utilisation of the most loaded channel class — a centre (bisection)
  /// link of dimension 0 in all non-degenerate cases.
  double max_channel_utilization = 0.0;
};

class MeshUniformModel {
 public:
  explicit MeshUniformModel(const MeshModelConfig& cfg);

  MeshModelResult solve() const { return solve(nullptr, nullptr); }
  /// Continuation solve: `warm_start` seeds the iteration with a nearby
  /// converged state (cold fallback on failure, bit-identical on success);
  /// `converged_state` receives the converged iterate for chaining. Either
  /// may be null. See HotspotModel::solve for the contract.
  MeshModelResult solve(const std::vector<double>* warm_start,
                        std::vector<double>* converged_state) const;

  const MeshModelConfig& config() const noexcept { return cfg_; }

  /// Exact zero-load latency: E[Manhattan distance | dst != src] + Lm - 1,
  /// the lambda -> 0 limit of solve().latency.
  double zero_load_latency() const;

  /// Message rate crossing the + link at position i of any dimension
  /// (topology/mesh_geometry.hpp path counting).
  double channel_rate(int i) const noexcept;

  /// Coarse closed-form saturation estimate from the bandwidth pole of the
  /// dimension-0 centre (bisection) link: lambda_sat ~ 1/(coef * tx), used
  /// to seed bisection searches.
  double estimated_saturation_rate() const;

 private:
  MeshModelConfig cfg_;
};

}  // namespace kncube::model
