// Damped fixed-point iteration for the model's interdependent equations.
//
// The paper notes that "a closed-form solution to these interdependencies is
// very difficult to determine" and computes the variables "using iterative
// techniques". We iterate x_{t+1} = (1-alpha) x_t + alpha F(x_t) (Jacobi
// sweep with under-relaxation); alpha < 1 stabilises the strongly coupled
// near-saturation region where undamped iteration oscillates.
#pragma once

#include <functional>
#include <vector>

namespace kncube::model {

struct FixedPointOptions {
  double tolerance = 1e-10;  ///< max relative change per component
  int max_iterations = 50000;
  double damping = 0.5;             ///< alpha; 1 = undamped
  double divergence_cap = 1e12;     ///< any component beyond this => diverged
};

struct FixedPointResult {
  bool converged = false;
  /// The step callback reported an unserviceable state (utilisation >= 1) or
  /// a component exceeded the divergence cap: the operating point has no
  /// steady state (saturation).
  bool diverged = false;
  int iterations = 0;
};

/// `step(current, next)` must fill `next` (same size) and return false to
/// signal saturation. `state` holds the initial guess on entry and the final
/// iterate on exit.
FixedPointResult solve_fixed_point(
    std::vector<double>& state,
    const std::function<bool(const std::vector<double>&, std::vector<double>&)>& step,
    const FixedPointOptions& options = {});

}  // namespace kncube::model
