// Damped fixed-point iteration for the model's interdependent equations.
//
// The paper notes that "a closed-form solution to these interdependencies is
// very difficult to determine" and computes the variables "using iterative
// techniques". We iterate x_{t+1} = (1-alpha) x_t + alpha F(x_t) (Jacobi
// sweep with under-relaxation); alpha < 1 stabilises the strongly coupled
// near-saturation region where undamped iteration oscillates.
#pragma once

#include <functional>
#include <vector>

namespace kncube::model {

struct FixedPointOptions {
  double tolerance = 1e-10;  ///< max relative change per component
  int max_iterations = 50000;
  double damping = 0.5;             ///< alpha; 1 = undamped
  double divergence_cap = 1e12;     ///< any component beyond this => diverged
  /// After the tolerance test passes, refine the iterate until it reproduces
  /// itself bit-for-bit (see solve_fixed_point); 0 disables. The polish
  /// budget bounds the damped phase; the undamped phase is a few sweeps.
  int polish_iterations = 128;
};

struct FixedPointResult {
  bool converged = false;
  /// The step callback reported an unserviceable state (utilisation >= 1) or
  /// a component exceeded the divergence cap: the operating point has no
  /// steady state (saturation).
  bool diverged = false;
  int iterations = 0;
};

/// `step(current, next)` must fill `next` (same size) and return false to
/// signal saturation. `state` holds the initial guess on entry and the final
/// iterate on exit.
///
/// When `options.polish_iterations > 0`, a converged iterate is additionally
/// *polished*: the solver keeps iterating (undamped while that contracts,
/// damped otherwise) until the state is exactly stationary in floating
/// point, i.e. one more sweep reproduces every component bit-for-bit. The
/// stationary iterate is a property of the map alone, not of the starting
/// point, so warm-started solves that reach the same fixed point return
/// results bit-identical to cold solves — the invariant the sweep/saturation
/// warm-start machinery relies on. Polish never changes the converged /
/// diverged classification nor the reported iteration count.
FixedPointResult solve_fixed_point(
    std::vector<double>& state,
    const std::function<bool(const std::vector<double>&, std::vector<double>&)>& step,
    const FixedPointOptions& options = {});

}  // namespace kncube::model
