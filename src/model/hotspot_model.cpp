#include "model/hotspot_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "model/engine/channel_class.hpp"
#include "model/engine/mg1.hpp"
#include "model/engine/vcmux.hpp"
#include "model/path_probabilities.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace kncube::model {

namespace {

using engine::BlockingSpec;
using engine::ChannelClass;
using engine::ChannelClassSystem;
using engine::StateExpr;
using engine::StreamSpec;

/// State-vector layout. Positions j run 1..k-1 (a message has at most k-1
/// hops left inside a ring); array slot j-1 holds position j. The five
/// regular classes and S^h_y are (k-1)-vectors; S^h_x is (k-1) x k
/// (j = hops to the hot column, t = x-ring's distance from the hot node,
/// t == k being the hot node's own row).
struct Layout {
  int k;
  int ns;  ///< k-1
  int ybar, yhot, x, xhy, xyb, shy, shx, total;

  explicit Layout(int radix) : k(radix), ns(radix - 1) {
    ybar = 0;
    yhot = ns;
    x = 2 * ns;
    xhy = 3 * ns;
    xyb = 4 * ns;
    shy = 5 * ns;
    shx = 6 * ns;
    total = 6 * ns + ns * k;
  }
  int at(int base, int j) const {  // j in [1, k-1]
    return base + j - 1;
  }
  int at_shx(int j, int t) const {  // j in [1, k-1], t in [1, k]
    return shx + (t - 1) * ns + (j - 1);
  }
};

double average(const std::vector<double>& v, int off, int count) {
  double acc = 0.0;
  for (int i = 0; i < count; ++i) acc += v[static_cast<std::size_t>(off + i)];
  return acc / static_cast<double>(count);
}

/// Entrance service times: the class averages over the uniform remaining
/// distance 1..k-1 — used both as "network latency at the entrance" and as
/// the (inclusive) service time of competing traffic of that class.
struct Entrances {
  double ybar, yhot, x, xhy, xyb;
};

/// Declarative description of the hot-spot torus over the shared engine:
/// holds the geometry (layout, holding times), builds the channel-class
/// system whose fixed point is eqs (16)-(30), and assembles the final
/// latencies (eqs 10-15, 21-24, 31-37) from the converged state.
class Builder {
 public:
  Builder(const ModelConfig& cfg, const TrafficRates& rates)
      : cfg_(cfg),
        rates_(rates),
        probs_(path_probabilities(cfg.k)),
        lay_(cfg.k),
        lm_(static_cast<double>(cfg.message_length)),
        // Entrance averages are shared by O(k^2) stream specifications;
        // constructed once here, copied by refcount thereafter.
        ent_ybar_(StateExpr::average(lay_.ybar, lay_.ns)),
        ent_yhot_(StateExpr::average(lay_.yhot, lay_.ns)),
        ent_x_(StateExpr::average(lay_.x, lay_.ns)) {}

  const Layout& layout() const { return lay_; }

  // --- contention-free (transmission) holding times, R8 ---
  // A hot message acquiring the hot-y channel j hops from the hot node keeps
  // it for the header's remaining j-1 hops plus the Lm-flit drain.
  double tx_hot_y(int j) const { return lm_ + static_cast<double>(j - 1); }
  double tx_hot_x(int j, int t) const {
    const double y_leg = t == lay_.k ? 0.0 : static_cast<double>(t);
    return lm_ + static_cast<double>(j - 1) + y_leg;
  }
  // Regular traffic, entrance-averaged per channel dimension: mean in-ring
  // distance k/2 past the channel, plus for x channels the expected y leg
  // ((k-1)/k chance of a y excursion of mean k/2).
  double tx_reg_y() const { return lm_ + static_cast<double>(lay_.k) / 2.0 - 1.0; }
  double tx_reg_x() const {
    return tx_reg_y() + static_cast<double>(lay_.k - 1) / 2.0;
  }

  // --- competing streams, inclusive service read at the class entrance ---
  StreamSpec reg_ybar() const {
    return {rates_.regular_rate, ent_ybar_, tx_reg_y()};
  }
  StreamSpec reg_y() const {
    return {rates_.regular_rate, ent_yhot_, tx_reg_y()};
  }
  StreamSpec reg_x() const {
    return {rates_.regular_rate, ent_x_, tx_reg_x()};
  }
  // Hot streams at position l; the channel leaving the hot node / hot column
  // (l == k) carries no hot-spot traffic (rate 0).
  StreamSpec hot_y_stream(int l) const {
    StreamSpec s;
    s.rate = rates_.hot_y[static_cast<std::size_t>(l)];
    if (l < lay_.k) {
      s.inclusive = StateExpr::slot(lay_.at(lay_.shy, l));
      s.tx = tx_hot_y(l);
    }
    return s;
  }
  StreamSpec hot_x_stream(int l, int t) const {
    StreamSpec s;
    s.rate = rates_.hot_x[static_cast<std::size_t>(l)];
    if (l < lay_.k) {
      s.inclusive = StateExpr::slot(lay_.at_shx(l, t));
      s.tx = tx_hot_x(l, t);
    }
    return s;
  }

  /// The channel-class system of eqs (16)-(20), (23), (25).
  ChannelClassSystem build() const {
    const int k = cfg_.k;

    engine::EngineOptions opts;
    opts.service_floor = lm_;
    opts.blocking = cfg_.blocking;
    opts.busy_basis = cfg_.busy_basis;
    opts.arrival_idc = cfg_.arrival_idc;
    ChannelClassSystem sys(lay_.total, opts);

    // --- averaged blocking groups ---
    const int b_ybar = sys.add_blocking({{{1.0, reg_ybar(), {}}}, 1.0});

    BlockingSpec yhot_spec;  // eq (17): average over the k hot-y-ring channels
    for (int l = 1; l <= k; ++l) {
      yhot_spec.terms.push_back({1.0, reg_y(), hot_y_stream(l)});
    }
    yhot_spec.divisor = static_cast<double>(k);
    const int b_yhot = sys.add_blocking(std::move(yhot_spec));

    BlockingSpec x_spec;  // eqs (18-20): average over the k^2 x-channel slots
    for (int t = 1; t <= k; ++t) {
      for (int l = 1; l <= k; ++l) {
        x_spec.terms.push_back({1.0, reg_x(), hot_x_stream(l, t)});
      }
    }
    x_spec.divisor = static_cast<double>(k) * static_cast<double>(k);
    const int b_x = sys.add_blocking(std::move(x_spec));

    // --- regular-class recursions (Gauss-Seidel within each array) ---
    const double last = lm_ - 1.0;
    const double y_ent0 = static_cast<double>(k) / 2.0 + lm_ - 1.0;
    for (int j = 1; j < k; ++j) {
      const double base0 = static_cast<double>(j) + lm_ - 1.0;

      auto chain = [&](const char* name, int base, int blocking, double initial,
                       StateExpr first_hop) {
        ChannelClass c;
        c.name = name;
        c.blocking = blocking;
        c.initial = initial;
        if (j == 1) {
          c.input_continuation = std::move(first_hop);
        } else {
          c.output_continuation = StateExpr::slot(lay_.at(base, j - 1));
        }
        sys.set_class(lay_.at(base, j), std::move(c));
      };
      chain("ybar", lay_.ybar, b_ybar, base0, StateExpr::constant_of(last));
      chain("yhot", lay_.yhot, b_yhot, base0, StateExpr::constant_of(last));
      chain("x", lay_.x, b_x, base0, StateExpr::constant_of(last));
      // x-then-y classes enter the y dimension at its entrance average.
      chain("xhy", lay_.xhy, b_x, static_cast<double>(j) + y_ent0, ent_yhot_);
      chain("xyb", lay_.xyb, b_x, static_cast<double>(j) + y_ent0, ent_ybar_);
    }

    // --- hot-spot messages in the hot y-ring (eq 23) ---
    for (int j = 1; j < k; ++j) {
      ChannelClass c;
      c.name = "shy";
      c.blocking = sys.add_blocking({{{1.0, reg_y(), hot_y_stream(j)}}, 1.0});
      c.initial = static_cast<double>(j) + lm_ - 1.0;
      if (j == 1) {
        c.input_continuation = StateExpr::constant_of(lm_ - 1.0);
      } else {
        c.output_continuation = StateExpr::slot(lay_.at(lay_.shy, j - 1));
      }
      sys.set_class(lay_.at(lay_.shy, j), std::move(c));
    }

    // --- hot-spot messages on x rings (eq 25) ---
    for (int t = 1; t <= k; ++t) {
      const double cont0 = t == k ? lm_ - 1.0 : static_cast<double>(t) + lm_ - 1.0;
      for (int j = 1; j < k; ++j) {
        ChannelClass c;
        c.name = "shx";
        c.blocking = sys.add_blocking({{{1.0, reg_x(), hot_x_stream(j, t)}}, 1.0});
        c.initial = static_cast<double>(j) + cont0;
        if (j > 1) {
          c.output_continuation = StateExpr::slot(lay_.at_shx(j - 1, t));
        } else if (t == k) {
          // The hot node's own row: x ends at the hot node.
          c.input_continuation = StateExpr::constant_of(lm_ - 1.0);
        } else {
          // Enter the hot y-ring, t hops out (shy slots precede shx slots).
          c.output_continuation = StateExpr::slot(lay_.at(lay_.shy, t));
        }
        sys.set_class(lay_.at_shx(j, t), std::move(c));
      }
    }
    return sys;
  }

  Entrances entrances(const std::vector<double>& s) const {
    return Entrances{average(s, lay_.ybar, lay_.ns), average(s, lay_.yhot, lay_.ns),
                     average(s, lay_.x, lay_.ns), average(s, lay_.xhy, lay_.ns),
                     average(s, lay_.xyb, lay_.ns)};
  }

  /// Final assembly (eqs 10-15, 21-24, 31-37) from the converged state.
  bool assemble(const std::vector<double>& s, ModelResult& res) const {
    const int k = cfg_.k;
    const double n_nodes = static_cast<double>(k) * static_cast<double>(k);
    const double lr = rates_.regular_rate;
    const double h = cfg_.hot_fraction;
    const int vcs = cfg_.vcs;
    const Entrances e = entrances(s);

    // Mean regular network latency, eq (31) with exact class probabilities.
    const double sr_net = probs_.x_only * e.x + probs_.x_then_hot_y * e.xhy +
                          probs_.x_then_nonhot_y * e.xyb + probs_.y_only_hot * e.yhot +
                          probs_.y_only_nonhot * e.ybar;
    res.regular_network_latency = sr_net;

    // --- source waits: per-VC M/G/1 queues with arrival lambda/V (eq 32) ---
    const double arr = rates_.lambda / static_cast<double>(vcs);
    const auto source_wait = [&](double service, double& w) {
      const QueueDelay q = mg1_wait(arr, service, lm_, cfg_.arrival_idc);
      if (q.saturated) return false;
      w = q.value;
      return true;
    };

    double ws_sum = 0.0;
    double w_hot_node = 0.0;
    if (!source_wait(sr_net, w_hot_node)) return false;  // the hot node itself
    ws_sum += w_hot_node;

    std::vector<double> ws_shy(static_cast<std::size_t>(k), 0.0);  // j = 1..k-1
    for (int j = 1; j < k; ++j) {
      const double mixed =
          (1.0 - h) * sr_net + h * s[static_cast<std::size_t>(lay_.at(lay_.shy, j))];
      if (!source_wait(mixed, ws_shy[static_cast<std::size_t>(j)])) return false;
      ws_sum += ws_shy[static_cast<std::size_t>(j)];
    }
    std::vector<double> ws_shx(static_cast<std::size_t>(k) * static_cast<std::size_t>(k),
                               0.0);  // (j, t), j = 1..k-1
    for (int t = 1; t <= k; ++t) {
      for (int j = 1; j < k; ++j) {
        const double mixed =
            (1.0 - h) * sr_net + h * s[static_cast<std::size_t>(lay_.at_shx(j, t))];
        double w = 0.0;
        if (!source_wait(mixed, w)) return false;
        ws_shx[static_cast<std::size_t>((t - 1) * k + j)] = w;
        ws_sum += w;
      }
    }
    const double ws_r = ws_sum / n_nodes;
    res.source_wait_regular = ws_r;

    // --- virtual-channel multiplexing degrees (eqs 33-37) ---
    // The occupancy rho uses the configured service basis: inclusive times
    // count a VC as occupying the channel for its whole (blocked) residency;
    // transmission times count only the cycles it actually consumes
    // bandwidth. The latter matches the simulator's observed slowdown and is
    // the default (see R8 / ablation bench).
    const bool mux_incl = cfg_.vcmux_basis == ServiceBasis::kInclusive;
    res.vc_mux_nonhot_y =
        vc_multiplexing_degree(lr, mux_incl ? e.ybar : tx_reg_y(), vcs);

    std::vector<double> v_hy(static_cast<std::size_t>(k) + 1, 1.0);  // j = 1..k
    double v_hy_avg = 0.0;
    for (int j = 1; j <= k; ++j) {
      const double rate_h = rates_.hot_y[static_cast<std::size_t>(j)];
      const double s_h_incl =
          j < k ? s[static_cast<std::size_t>(lay_.at(lay_.shy, j))] : 0.0;
      const double s_h = mux_incl ? s_h_incl : (j < k ? tx_hot_y(j) : 0.0);
      const double s_r = mux_incl ? e.yhot : tx_reg_y();
      const double rate = lr + rate_h;
      const double sbar = rate > 0.0 ? (lr * s_r + rate_h * s_h) / rate : 0.0;
      v_hy[static_cast<std::size_t>(j)] = vc_multiplexing_degree(rate, sbar, vcs);
      v_hy_avg += v_hy[static_cast<std::size_t>(j)];
    }
    v_hy_avg /= static_cast<double>(k);
    res.vc_mux_hot_y = v_hy_avg;

    std::vector<double> v_x(static_cast<std::size_t>(k + 1) * static_cast<std::size_t>(k + 1),
                            1.0);  // (j, t), j,t = 1..k
    double v_x_avg = 0.0;
    for (int t = 1; t <= k; ++t) {
      for (int j = 1; j <= k; ++j) {
        const double rate_h = rates_.hot_x[static_cast<std::size_t>(j)];
        const double s_h_incl =
            j < k ? s[static_cast<std::size_t>(lay_.at_shx(j, t))] : 0.0;
        const double s_h = mux_incl ? s_h_incl : (j < k ? tx_hot_x(j, t) : 0.0);
        const double s_r = mux_incl ? e.x : tx_reg_x();
        const double rate = lr + rate_h;
        const double sbar = rate > 0.0 ? (lr * s_r + rate_h * s_h) / rate : 0.0;
        const double v = vc_multiplexing_degree(rate, sbar, vcs);
        v_x[static_cast<std::size_t>(t * (k + 1) + j)] = v;
        v_x_avg += v;
      }
    }
    v_x_avg /= static_cast<double>(k) * static_cast<double>(k);
    res.vc_mux_x = v_x_avg;

    // --- regular latency, eqs (11)-(15) ---
    const double sr =
        probs_.x_only * (e.x + ws_r) * v_x_avg +
        probs_.x_then_hot_y * (e.xhy + ws_r) * v_x_avg +
        probs_.x_then_nonhot_y * (e.xyb + ws_r) * v_x_avg +
        probs_.y_only_hot * (e.yhot + ws_r) * v_hy_avg +
        probs_.y_only_nonhot * (e.ybar + ws_r) * res.vc_mux_nonhot_y;
    res.regular_latency = sr;

    // --- hot-spot latency, eqs (21)-(24) ---
    double sh = 0.0;
    for (int j = 1; j < k; ++j) {  // hot-column sources (eq 22)
      sh += (s[static_cast<std::size_t>(lay_.at(lay_.shy, j))] +
             ws_shy[static_cast<std::size_t>(j)]) *
            v_hy[static_cast<std::size_t>(j)];
    }
    for (int t = 1; t <= k; ++t) {  // all other sources (eq 24)
      for (int j = 1; j < k; ++j) {
        sh += (s[static_cast<std::size_t>(lay_.at_shx(j, t))] +
               ws_shx[static_cast<std::size_t>((t - 1) * k + j)]) *
              v_x[static_cast<std::size_t>(t * (k + 1) + j)];
      }
    }
    sh /= n_nodes - 1.0;
    res.hot_latency = sh;

    res.latency = (1.0 - h) * sr + h * sh;  // eq (10)

    // --- diagnostic: peak busy probability over channel classes ---
    const bool busy_incl = cfg_.busy_basis == ServiceBasis::kInclusive;
    double max_util = std::min(1.0, lr * (busy_incl ? e.ybar : tx_reg_y()));
    for (int j = 1; j < k; ++j) {
      max_util = std::max(
          max_util,
          busy_probability(
              Stream{lr, e.yhot, tx_reg_y()},
              Stream{rates_.hot_y[static_cast<std::size_t>(j)],
                     s[static_cast<std::size_t>(lay_.at(lay_.shy, j))], tx_hot_y(j)},
              busy_incl));
      for (int t = 1; t <= k; ++t) {
        max_util = std::max(
            max_util,
            busy_probability(
                Stream{lr, e.x, tx_reg_x()},
                Stream{rates_.hot_x[static_cast<std::size_t>(j)],
                       s[static_cast<std::size_t>(lay_.at_shx(j, t))], tx_hot_x(j, t)},
                busy_incl));
      }
    }
    res.max_channel_utilization = max_util;

    res.saturated = false;
    return true;
  }

 private:
  const ModelConfig& cfg_;
  const TrafficRates& rates_;
  PathProbabilities probs_;
  Layout lay_;
  double lm_;
  StateExpr ent_ybar_, ent_yhot_, ent_x_;
};

}  // namespace

void ModelConfig::validate() const {
  auto fail = [](const char* msg) { throw std::invalid_argument(msg); };
  if (k < 2) fail("ModelConfig: radix k must be >= 2");
  if (vcs < 1) fail("ModelConfig: need at least one virtual channel");
  if (message_length < 1) fail("ModelConfig: message length must be >= 1");
  if (injection_rate < 0.0 || injection_rate > 1.0) {
    fail("ModelConfig: injection rate must be in [0,1]");
  }
  if (hot_fraction < 0.0 || hot_fraction > 1.0) {
    fail("ModelConfig: hot fraction must be in [0,1]");
  }
  if (!(arrival_idc >= 0.0)) {
    fail("ModelConfig: arrival dispersion must be >= 0");
  }
}

HotspotModel::HotspotModel(const ModelConfig& cfg) : cfg_(cfg) {
  cfg.validate();  // throws before any derived computation on bad input
  rates_ = traffic_rates(cfg.k, cfg.injection_rate, cfg.hot_fraction);
}

ModelResult HotspotModel::solve(const std::vector<double>* warm_start,
                                std::vector<double>* converged_state) const {
  const Builder builder(cfg_, rates_);
  ModelResult res;
  if (converged_state != nullptr) converged_state->clear();

  const ChannelClassSystem sys = builder.build();
  engine::SolvePolicy policy;
  policy.options = cfg_.solver;
  std::vector<double> state;
  const FixedPointResult fp = sys.solve(state, policy, warm_start);
  res.iterations = fp.iterations;
  res.converged = fp.converged;
  if (!fp.converged) {
    // Diverged or failed to converge: no steady state at this load.
    res.saturated = true;
    return res;
  }
  if (!builder.assemble(state, res)) {
    res.saturated = true;
    res.latency = std::numeric_limits<double>::infinity();
    return res;
  }
  if (converged_state != nullptr) *converged_state = std::move(state);
  return res;
}

double HotspotModel::zero_load_latency() const {
  const int k = cfg_.k;
  const double lm = static_cast<double>(cfg_.message_length);
  const double kd = static_cast<double>(k);
  const PathProbabilities p = path_probabilities(k);

  const double one_dim = kd / 2.0 + lm - 1.0;  // mean over 1..k-1 hops
  const double two_dim = kd + lm - 1.0;
  const double sr0 = p.x_only * one_dim + (p.x_then_hot_y + p.x_then_nonhot_y) * two_dim +
                     (p.y_only_hot + p.y_only_nonhot) * one_dim;

  double sh0 = 0.0;
  for (int j = 1; j < k; ++j) sh0 += static_cast<double>(j) + lm - 1.0;
  for (int t = 1; t <= k; ++t) {
    const double cont = t == k ? lm - 1.0 : static_cast<double>(t) + lm - 1.0;
    for (int j = 1; j < k; ++j) sh0 += static_cast<double>(j) + cont;
  }
  sh0 /= kd * kd - 1.0;

  return (1.0 - cfg_.hot_fraction) * sr0 + cfg_.hot_fraction * sh0;
}

double HotspotModel::estimated_saturation_rate() const {
  const double kd = static_cast<double>(cfg_.k);
  const double h = cfg_.hot_fraction;
  const double lm = static_cast<double>(cfg_.message_length);
  // Bottleneck: the hot-y channel adjacent to the hot node carries
  // lambda * ((1-h)(k-1)/2 + h k (k-1)) messages/cycle, each holding the
  // channel for at least ~Lm cycles.
  const double coeff = (1.0 - h) * (kd - 1.0) / 2.0 + h * kd * (kd - 1.0);
  const double service = lm + kd / 2.0;
  return 1.0 / (coeff * service);
}

}  // namespace kncube::model
