#include "model/mesh_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "model/engine/mg1.hpp"
#include "model/engine/vcmux.hpp"
#include "topology/mesh_geometry.hpp"
#include "topology/torus.hpp"  // topo::kMaxDims
#include "util/assert.hpp"

namespace kncube::model {

namespace {

using engine::ChannelClass;
using engine::ChannelClassSystem;
using engine::StateExpr;

// State: one slot per (dimension d, + link position i), i = 0..k-2; the -
// direction link from i+1 to i mirrors the + link at position k-2-i and
// shares its class. Dimensions are laid out high-to-low and positions
// end-of-line-first, so every continuation (the next link of the same line,
// and the entrances of all later dimensions) references an *earlier* slot —
// the engine's within-sweep Gauss-Seidel chaining, exactly as the torus
// models lay y before x.
struct Lay {
  int k, n, ns;
  Lay(int k_, int n_) : k(k_), n(n_), ns(k_ - 1) {}
  int slot(int d, int i) const { return (n - 1 - d) * ns + (ns - 1 - i); }
  int total() const { return n * ns; }
};

/// Linear-expression accumulator (constant + weighted slots) feeding
/// StateExpr::weighted.
struct Lin {
  double c = 0.0;
  std::vector<std::pair<int, double>> terms;
};

void add_scaled(Lin& out, const Lin& in, double scale) {
  out.c += scale * in.c;
  for (const auto& [slot, weight] : in.terms) {
    out.terms.emplace_back(slot, scale * weight);
  }
}

/// Contention-free holding time of a class-(d, i) channel: Lm plus the mean
/// hops still ahead once the link is crossed — (m-1)/2 within the line
/// (destinations are uniform over the m = k-1-i coordinates beyond the
/// link) plus the iid mean line distance for each uncorrected dimension.
double holding_time(const MeshModelConfig& cfg, int d, int i) {
  const double lm = static_cast<double>(cfg.message_length);
  return lm + static_cast<double>(cfg.k - 2 - i) / 2.0 +
         static_cast<double>(cfg.n - 1 - d) * topo::mesh_mean_line_hops(cfg.k);
}

/// Builds the n(k-1)-class mesh system (DESIGN.md §8). Each class owns one
/// blocking group (per-position rates make blocking position-dependent);
/// continuations chain along the line and fall through G_{d+1}, the expected
/// service from the remaining dimensions:
///
///   S_d(i)   = B_d(i) + 1 + (m-1)/m * S_d(i+1) + 1/m * G_{d+1}   (m = k-1-i)
///   S_d(k-2) = B_d(k-2) + 1 + G_{d+1}
///   G_j      = 1/k * G_{j+1} + (k-1)/k * E_enter(j),  G_n = Lm - 1
///   E_enter(j) = sum_i w_i S_j(i),  w_i = mesh_entrance_weight(k, i)
ChannelClassSystem build_system(const MeshModelConfig& cfg) {
  const int k = cfg.k;
  const int n = cfg.n;
  const double lm = static_cast<double>(cfg.message_length);
  const Lay lay(k, n);

  engine::EngineOptions opts;
  opts.service_floor = lm;
  opts.blocking = cfg.blocking;
  opts.busy_basis = cfg.busy_basis;
  ChannelClassSystem sys(lay.total(), opts);

  // G_{j} continuation expressions, built from the last dimension backward
  // (index n holds the destination drain), alongside their zero-load values
  // for the classes' iteration starting points.
  std::vector<Lin> g(static_cast<std::size_t>(n) + 1);
  std::vector<double> g0(static_cast<std::size_t>(n) + 1, lm - 1.0);
  g[static_cast<std::size_t>(n)].c = lm - 1.0;
  std::vector<double> s0(static_cast<std::size_t>(lay.total()), 0.0);

  for (int d = n - 1; d >= 0; --d) {
    const Lin& cont_g = g[static_cast<std::size_t>(d + 1)];
    const double cont_g0 = g0[static_cast<std::size_t>(d + 1)];
    for (int i = k - 2; i >= 0; --i) {
      const double m = static_cast<double>(k - 1 - i);
      Lin cont;
      if (i == k - 2) {
        add_scaled(cont, cont_g, 1.0);
      } else {
        add_scaled(cont, cont_g, 1.0 / m);
        cont.terms.emplace_back(lay.slot(d, i + 1), (m - 1.0) / m);
      }

      ChannelClass cls;
      cls.name = "mesh";
      cls.blocking = sys.add_blocking(
          {{{1.0,
             {topo::mesh_channel_rate(cfg.injection_rate, k, n, i),
              StateExpr::slot(lay.slot(d, i)), holding_time(cfg, d, i)},
             {}}},
           1.0});
      // Zero-load value of the recursion above with B = 0 (exact: the
      // branching probabilities are exact path counts).
      double init = 1.0 + cont_g0;
      if (i < k - 2) {
        init = 1.0 + (m - 1.0) / m * s0[static_cast<std::size_t>(lay.slot(d, i + 1))] +
               cont_g0 / m;
      }
      s0[static_cast<std::size_t>(lay.slot(d, i))] = init;
      cls.initial = init;
      cls.output_continuation = StateExpr::weighted(cont.c, 1.0, std::move(cont.terms));
      sys.set_class(lay.slot(d, i), std::move(cls));
    }
    // Close this dimension's entrance average into G_d for the dimensions
    // below it.
    Lin& gd = g[static_cast<std::size_t>(d)];
    add_scaled(gd, g[static_cast<std::size_t>(d + 1)], 1.0 / static_cast<double>(k));
    double enter0 = 0.0;
    for (int i = 0; i < k - 1; ++i) {
      const double w = topo::mesh_entrance_weight(k, i) *
                       (static_cast<double>(k - 1) / static_cast<double>(k));
      gd.terms.emplace_back(lay.slot(d, i), w);
      enter0 += topo::mesh_entrance_weight(k, i) *
                s0[static_cast<std::size_t>(lay.slot(d, i))];
    }
    g0[static_cast<std::size_t>(d)] =
        g0[static_cast<std::size_t>(d + 1)] / static_cast<double>(k) +
        enter0 * (static_cast<double>(k - 1) / static_cast<double>(k));
  }
  return sys;
}

}  // namespace

void MeshModelConfig::validate() const {
  auto fail = [](const char* m) { throw std::invalid_argument(m); };
  if (k < 2) fail("MeshModelConfig: k must be >= 2");
  if (n < 1 || n > topo::kMaxDims) fail("MeshModelConfig: n out of range");
  if (vcs < 1) fail("MeshModelConfig: need at least one VC");
  if (message_length < 1) fail("MeshModelConfig: message length must be >= 1");
  if (injection_rate < 0.0 || injection_rate > 1.0) {
    fail("MeshModelConfig: rate must be in [0,1]");
  }
}

MeshUniformModel::MeshUniformModel(const MeshModelConfig& cfg) : cfg_(cfg) {
  cfg.validate();
}

double MeshUniformModel::channel_rate(int i) const noexcept {
  return topo::mesh_channel_rate(cfg_.injection_rate, cfg_.k, cfg_.n, i);
}

MeshModelResult MeshUniformModel::solve(
    const std::vector<double>* warm_start,
    std::vector<double>* converged_state) const {
  const int k = cfg_.k;
  const int n = cfg_.n;
  const double lm = static_cast<double>(cfg_.message_length);
  const Lay lay(k, n);

  MeshModelResult res;
  if (converged_state != nullptr) converged_state->clear();

  const ChannelClassSystem sys = build_system(cfg_);
  engine::SolvePolicy policy;
  policy.options = cfg_.solver;
  std::vector<double> state;
  const FixedPointResult fp = sys.solve(state, policy, warm_start);
  res.iterations = fp.iterations;
  res.converged = fp.converged;
  if (!fp.converged) return res;  // saturated (diverged or no steady state)

  // First-correcting-dimension path probabilities are exact: dimensions
  // 0..j-1 match with probability k^-j, dimension j differs with (k-1)/k,
  // renormalised by the dst != src conditioning.
  const double p_self = std::pow(static_cast<double>(k), -n);
  std::vector<double> entrance(static_cast<std::size_t>(n), 0.0);
  std::vector<double> p_first(static_cast<std::size_t>(n), 0.0);
  double s_net = 0.0;
  for (int j = 0; j < n; ++j) {
    double e = 0.0;
    for (int i = 0; i < k - 1; ++i) {
      e += topo::mesh_entrance_weight(k, i) *
           state[static_cast<std::size_t>(lay.slot(j, i))];
    }
    entrance[static_cast<std::size_t>(j)] = e;
    p_first[static_cast<std::size_t>(j)] =
        std::pow(1.0 / static_cast<double>(k), j) *
        (static_cast<double>(k - 1) / static_cast<double>(k)) / (1.0 - p_self);
    s_net += p_first[static_cast<std::size_t>(j)] * e;
  }
  res.network_latency = s_net;

  const double arr = cfg_.injection_rate / static_cast<double>(cfg_.vcs);
  const QueueDelay ws = mg1_wait(arr, s_net, lm);
  if (ws.saturated) return res;
  res.source_wait = ws.value;

  // Entrance-weighted VC multiplexing per first dimension (eqs 33-35 per
  // class), on the configured occupancy basis.
  double latency = 0.0;
  for (int j = 0; j < n; ++j) {
    double vbar = 0.0;
    for (int i = 0; i < k - 1; ++i) {
      const double service =
          cfg_.vcmux_basis == ServiceBasis::kTransmission
              ? holding_time(cfg_, j, i)
              : state[static_cast<std::size_t>(lay.slot(j, i))];
      vbar += topo::mesh_entrance_weight(k, i) *
              vc_multiplexing_degree(channel_rate(i), service, cfg_.vcs);
    }
    if (j == 0) res.vc_mux_first_dim = vbar;
    if (j == n - 1) res.vc_mux_last_dim = vbar;
    latency += p_first[static_cast<std::size_t>(j)] *
               (entrance[static_cast<std::size_t>(j)] + ws.value) * vbar;
  }
  res.latency = latency;

  double util = 0.0;
  for (int d = 0; d < n; ++d) {
    for (int i = 0; i < k - 1; ++i) {
      util = std::max(util, channel_rate(i) *
                                state[static_cast<std::size_t>(lay.slot(d, i))]);
    }
  }
  res.max_channel_utilization = std::min(1.0, util);
  res.saturated = false;
  if (converged_state != nullptr) *converged_state = std::move(state);
  return res;
}

double MeshUniformModel::zero_load_latency() const {
  return topo::mesh_mean_hops_uniform(cfg_.k, cfg_.n) +
         static_cast<double>(cfg_.message_length) - 1.0;
}

double MeshUniformModel::estimated_saturation_rate() const {
  // Bandwidth pole of the most loaded class: the dimension-0 centre link,
  // whose M/G/1 wait diverges when rate * tx -> 1.
  const double coef = topo::mesh_bottleneck_rate(1.0, cfg_.k, cfg_.n);
  return 1.0 / (coef * holding_time(cfg_, 0, (cfg_.k - 2) / 2));
}

}  // namespace kncube::model
