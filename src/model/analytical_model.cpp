#include "model/analytical_model.hpp"

#include "model/engine/bursty.hpp"

namespace kncube::model {

namespace {

/// Probe rate for lambda-independent queries (zero-load latency, saturation
/// estimates): small enough to be deep in the stable region, positive so
/// rate ratios stay well-defined.
constexpr double kProbeRate = 1e-9;

}  // namespace

// ------------------------------------------------------------ hot-spot ---

HotspotAnalyticalModel::HotspotAnalyticalModel(ModelConfig base)
    : base_(std::move(base)) {
  base_.injection_rate = kProbeRate;
  base_.validate();  // reject inconsistent base configurations eagerly
}

ModelResult HotspotAnalyticalModel::solve_at(
    double lambda, const std::vector<double>* warm_start,
    std::vector<double>* converged_state) const {
  ModelConfig cfg = base_;
  cfg.injection_rate = lambda;
  return HotspotModel(cfg).solve(warm_start, converged_state);
}

double HotspotAnalyticalModel::zero_load_latency() const {
  return HotspotModel(base_).zero_load_latency();
}

double HotspotAnalyticalModel::estimated_saturation_rate() const {
  return HotspotModel(base_).estimated_saturation_rate();
}

// ------------------------------------------------------------- uniform ---

UniformAnalyticalModel::UniformAnalyticalModel(UniformModelConfig base)
    : base_(std::move(base)) {
  base_.injection_rate = kProbeRate;
  base_.validate();  // reject inconsistent base configurations eagerly
}

ModelResult UniformAnalyticalModel::solve_at(
    double lambda, const std::vector<double>* warm_start,
    std::vector<double>* converged_state) const {
  UniformModelConfig cfg = base_;
  cfg.injection_rate = lambda;
  const UniformModelResult r =
      UniformTorusModel(cfg).solve(warm_start, converged_state);
  ModelResult out;
  out.latency = r.latency;
  out.saturated = r.saturated;
  out.converged = r.converged;
  out.iterations = r.iterations;
  out.regular_latency = r.latency;  // all traffic is regular under h = 0
  out.hot_latency = 0.0;
  out.regular_network_latency = r.network_latency;
  out.source_wait_regular = r.source_wait;
  out.vc_mux_x = r.vc_mux_x;
  out.vc_mux_hot_y = r.vc_mux_y;
  out.vc_mux_nonhot_y = r.vc_mux_y;
  out.max_channel_utilization = r.channel_utilization;
  return out;
}

double UniformAnalyticalModel::zero_load_latency() const {
  return UniformTorusModel(base_).zero_load_latency();
}

double UniformAnalyticalModel::estimated_saturation_rate() const {
  // The x channel is the capacity bound: per-channel rate lambda (k-1)/2 at
  // holding time tx_x = Lm + k/2 - 1 + (k-1)/2 cycles per message.
  const double k = static_cast<double>(base_.k);
  const double tx_x =
      static_cast<double>(base_.message_length) + k / 2.0 - 1.0 + (k - 1.0) / 2.0;
  return 2.0 / ((k - 1.0) * tx_x);
}

// -------------------------------------------------------- MMPP (bursty) ---

MmppHotspotAnalyticalModel::MmppHotspotAnalyticalModel(ModelConfig base,
                                                       MmppArrivalShape shape)
    : base_(std::move(base)), shape_(shape) {
  base_.injection_rate = kProbeRate;
  base_.arrival_idc = 1.0;  // per-lambda value substituted in solve_at
  base_.validate();
}

ModelResult MmppHotspotAnalyticalModel::solve_at(
    double lambda, const std::vector<double>* warm_start,
    std::vector<double>* converged_state) const {
  ModelConfig cfg = base_;
  cfg.injection_rate = lambda;
  cfg.arrival_idc =
      mmpp_arrival_idc(lambda, shape_.burst_multiplier, shape_.p_enter_burst,
                       shape_.p_leave_burst);
  return HotspotModel(cfg).solve(warm_start, converged_state);
}

double MmppHotspotAnalyticalModel::zero_load_latency() const {
  // Closed form, no queueing: burstiness does not shift the lambda -> 0 limit.
  return HotspotModel(base_).zero_load_latency();
}

double MmppHotspotAnalyticalModel::estimated_saturation_rate() const {
  // The stability pole is a bandwidth property (R8) that the IDC does not
  // move; the Bernoulli bottleneck estimate remains the right bisection seed.
  return HotspotModel(base_).estimated_saturation_rate();
}

MmppUniformAnalyticalModel::MmppUniformAnalyticalModel(UniformModelConfig base,
                                                       MmppArrivalShape shape)
    : base_(std::move(base)), shape_(shape) {
  base_.injection_rate = kProbeRate;
  base_.arrival_idc = 1.0;
  base_.validate();
}

ModelResult MmppUniformAnalyticalModel::solve_at(
    double lambda, const std::vector<double>* warm_start,
    std::vector<double>* converged_state) const {
  UniformModelConfig cfg = base_;
  cfg.injection_rate = lambda;
  cfg.arrival_idc =
      mmpp_arrival_idc(lambda, shape_.burst_multiplier, shape_.p_enter_burst,
                       shape_.p_leave_burst);
  const UniformModelResult r =
      UniformTorusModel(cfg).solve(warm_start, converged_state);
  ModelResult out;
  out.latency = r.latency;
  out.saturated = r.saturated;
  out.converged = r.converged;
  out.iterations = r.iterations;
  out.regular_latency = r.latency;
  out.hot_latency = 0.0;
  out.regular_network_latency = r.network_latency;
  out.source_wait_regular = r.source_wait;
  out.vc_mux_x = r.vc_mux_x;
  out.vc_mux_hot_y = r.vc_mux_y;
  out.vc_mux_nonhot_y = r.vc_mux_y;
  out.max_channel_utilization = r.channel_utilization;
  return out;
}

double MmppUniformAnalyticalModel::zero_load_latency() const {
  return UniformTorusModel(base_).zero_load_latency();
}

double MmppUniformAnalyticalModel::estimated_saturation_rate() const {
  const double k = static_cast<double>(base_.k);
  const double tx_x =
      static_cast<double>(base_.message_length) + k / 2.0 - 1.0 + (k - 1.0) / 2.0;
  return 2.0 / ((k - 1.0) * tx_x);
}

// ----------------------------------------------------------- hypercube ---

HypercubeAnalyticalModel::HypercubeAnalyticalModel(HypercubeModelConfig base)
    : base_(std::move(base)) {
  base_.injection_rate = kProbeRate;
  base_.validate();  // reject inconsistent base configurations eagerly
}

ModelResult HypercubeAnalyticalModel::solve_at(
    double lambda, const std::vector<double>* warm_start,
    std::vector<double>* converged_state) const {
  HypercubeModelConfig cfg = base_;
  cfg.injection_rate = lambda;
  const HypercubeModelResult r =
      HypercubeHotspotModel(cfg).solve(warm_start, converged_state);
  ModelResult out;
  out.latency = r.latency;
  out.saturated = r.saturated;
  out.converged = r.converged;
  out.iterations = r.iterations;
  out.regular_latency = r.regular_latency;
  out.hot_latency = r.hot_latency;
  out.regular_network_latency = 0.0;  // not decomposed by the hypercube model
  out.source_wait_regular = r.source_wait;
  out.vc_mux_hot_y = r.vc_mux_bottleneck;  // the funnel channel into the hot node
  out.max_channel_utilization = r.max_channel_utilization;
  return out;
}

double HypercubeAnalyticalModel::zero_load_latency() const {
  return HypercubeHotspotModel(base_).zero_load_latency();
}

double HypercubeAnalyticalModel::estimated_saturation_rate() const {
  return HypercubeHotspotModel(base_).estimated_saturation_rate();
}

// ---------------------------------------------------------------- mesh ---

MeshAnalyticalModel::MeshAnalyticalModel(MeshModelConfig base)
    : base_(std::move(base)) {
  base_.injection_rate = kProbeRate;
  base_.validate();  // reject inconsistent base configurations eagerly
}

ModelResult MeshAnalyticalModel::solve_at(
    double lambda, const std::vector<double>* warm_start,
    std::vector<double>* converged_state) const {
  MeshModelConfig cfg = base_;
  cfg.injection_rate = lambda;
  const MeshModelResult r =
      MeshUniformModel(cfg).solve(warm_start, converged_state);
  ModelResult out;
  out.latency = r.latency;
  out.saturated = r.saturated;
  out.converged = r.converged;
  out.iterations = r.iterations;
  out.regular_latency = r.latency;  // all traffic is regular under uniform
  out.hot_latency = 0.0;
  out.regular_network_latency = r.network_latency;
  out.source_wait_regular = r.source_wait;
  out.vc_mux_x = r.vc_mux_first_dim;
  out.vc_mux_hot_y = r.vc_mux_last_dim;
  out.vc_mux_nonhot_y = r.vc_mux_last_dim;
  out.max_channel_utilization = r.max_channel_utilization;
  return out;
}

double MeshAnalyticalModel::zero_load_latency() const {
  return MeshUniformModel(base_).zero_load_latency();
}

double MeshAnalyticalModel::estimated_saturation_rate() const {
  return MeshUniformModel(base_).estimated_saturation_rate();
}

// ------------------------------------------------------- hot-spot mesh ---

HotspotMeshAnalyticalModel::HotspotMeshAnalyticalModel(
    MeshHotspotModelConfig base)
    : base_(base) {
  base_.injection_rate = kProbeRate;
  base_.validate();  // reject inconsistent base configurations eagerly
}

ModelResult HotspotMeshAnalyticalModel::solve_at(
    double lambda, const std::vector<double>* warm_start,
    std::vector<double>* converged_state) const {
  MeshHotspotModelConfig cfg = base_;
  cfg.injection_rate = lambda;
  return MeshHotspotModel(cfg).solve(warm_start, converged_state);
}

double HotspotMeshAnalyticalModel::zero_load_latency() const {
  return MeshHotspotModel(base_).zero_load_latency();
}

double HotspotMeshAnalyticalModel::estimated_saturation_rate() const {
  return MeshHotspotModel(base_).estimated_saturation_rate();
}

}  // namespace kncube::model
