#include "model/traffic_rates.hpp"

#include "util/assert.hpp"

namespace kncube::model {

TrafficRates traffic_rates(int k, double lambda, double hot_fraction) {
  KNC_ASSERT(k >= 2);
  KNC_ASSERT(lambda >= 0.0);
  KNC_ASSERT(hot_fraction >= 0.0 && hot_fraction <= 1.0);
  TrafficRates r;
  r.lambda = lambda;
  r.hot_fraction = hot_fraction;
  r.k = k;
  r.mean_hops_per_dim = static_cast<double>(k - 1) / 2.0;  // eq (1)
  r.regular_rate = lambda * (1.0 - hot_fraction) * r.mean_hops_per_dim;  // eq (3)
  r.hot_x.assign(static_cast<std::size_t>(k) + 1, 0.0);
  r.hot_y.assign(static_cast<std::size_t>(k) + 1, 0.0);
  for (int j = 1; j < k; ++j) {
    // Eqs (4)-(7): N * lambda * h * P_h{x,y},j with P_hx = (k-j)/N and
    // P_hy = k(k-j)/N; the channels at j == k carry no hot-spot traffic.
    r.hot_x[static_cast<std::size_t>(j)] =
        lambda * hot_fraction * static_cast<double>(k - j);
    r.hot_y[static_cast<std::size_t>(j)] =
        lambda * hot_fraction * static_cast<double>(k) * static_cast<double>(k - j);
  }
  return r;
}

}  // namespace kncube::model
