// Exact path-class probabilities for deterministic XY routing on the 2-D
// torus under uniform destinations (paper §3, eqs (11)-(15), (31)).
//
// A regular (uniform) message from a random source to a destination uniform
// over the other N-1 nodes follows exactly one of five path classes. The
// paper's printed prefactors are partially illegible (see DESIGN.md R2/R3);
// we use the exact ordered-pair counts, which agree with the legible
// 1/(k(k+1))-style factors to O(1/N).
#pragma once

namespace kncube::model {

struct PathProbabilities {
  double x_only = 0.0;        ///< Dx != 0, Dy == 0
  double y_only_hot = 0.0;    ///< Dx == 0, Dy != 0, source column == hot column
  double y_only_nonhot = 0.0; ///< Dx == 0, Dy != 0, source column != hot column
  double x_then_hot_y = 0.0;  ///< Dx != 0, Dy != 0, destination column == hot column
  double x_then_nonhot_y = 0.0;

  double x_any() const noexcept { return x_only + x_then_hot_y + x_then_nonhot_y; }
  double sum() const noexcept {
    return x_only + y_only_hot + y_only_nonhot + x_then_hot_y + x_then_nonhot_y;
  }
};

/// Closed-form probabilities for radix k (N = k^2). All five sum to 1.
PathProbabilities path_probabilities(int k);

/// Brute-force counterpart: enumerates every ordered (src, dst) pair on the
/// torus and classifies its XY route. Used by tests to pin the closed forms.
PathProbabilities path_probabilities_bruteforce(int k);

}  // namespace kncube::model
