#include "model/hypercube_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "model/engine/channel_class.hpp"
#include "model/engine/mg1.hpp"
#include "model/engine/vcmux.hpp"
#include "util/assert.hpp"

namespace kncube::model {

namespace {

using engine::BlockingSpec;
using engine::ChannelClass;
using engine::ChannelClassSystem;
using engine::StateExpr;
using engine::StreamSpec;

double pow2(int e) { return std::ldexp(1.0, e); }

/// State layout: S^r_d at [d], S^h_d at [n + d], d = 0..n-1.
struct Lay {
  int n;
  int total() const { return 2 * n; }
  int r(int d) const { return d; }
  int h(int d) const { return n + d; }
};

/// Declarative description of the hot-spot hypercube over the shared
/// engine: per-dimension regular/hot channel classes whose continuations are
/// the e-cube next-dimension mixture, with funnel/plain blocking mixtures.
class Builder {
 public:
  explicit Builder(const HypercubeModelConfig& cfg)
      : cfg_(cfg), lay_{cfg.dims}, lm_(static_cast<double>(cfg.message_length)) {
    const int n = cfg_.dims;
    lambda_r_ = cfg.injection_rate * (1.0 - cfg.hot_fraction) * pow2(n - 1) /
                (pow2(n) - 1.0);
    hot_rate_.resize(static_cast<std::size_t>(n));
    funnel_fraction_.resize(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      hot_rate_[static_cast<std::size_t>(d)] =
          cfg.injection_rate * cfg.hot_fraction * pow2(d);
      // Funnel channels at dim d: 2^{n-d-1} of the 2^n dim-d channels.
      funnel_fraction_[static_cast<std::size_t>(d)] = pow2(-(d + 1));
    }
  }

  const Lay& layout() const { return lay_; }
  double lambda_r() const { return lambda_r_; }
  double hot_rate(int d) const { return hot_rate_[static_cast<std::size_t>(d)]; }

  /// Contention-free holding time of a dim-d channel: Lm flits plus the
  /// header's expected remaining hops (each higher dimension differs with
  /// probability 1/2) — identical for hot and regular streams.
  double tx(int d) const {
    return lm_ + static_cast<double>(cfg_.dims - 1 - d) / 2.0;
  }

  /// P(next corrected dimension is d' | currently at dim d); delivery
  /// otherwise.
  double next_dim_probability(int d, int dp) const {
    KNC_DEBUG_ASSERT(dp > d);
    return pow2(-(dp - d));
  }
  double delivery_probability(int d) const { return pow2(-(cfg_.dims - 1 - d)); }

  StreamSpec reg_stream(int d) const {
    return {lambda_r_, StateExpr::slot(lay_.r(d)), tx(d)};
  }
  StreamSpec hot_stream(int d) const {
    return {hot_rate(d), StateExpr::slot(lay_.h(d)), tx(d)};
  }

  ChannelClassSystem build() const {
    const int n = cfg_.dims;

    engine::EngineOptions opts;
    opts.service_floor = lm_;
    opts.blocking = BlockingVariant::kPaper;
    opts.busy_basis = cfg_.busy_basis;
    ChannelClassSystem sys(lay_.total(), opts);

    // Zero-load service times S_d = 1 + sum P S_d' + P0 (Lm-1), solved
    // backwards; hot and regular share the geometry at zero load.
    std::vector<double> s0(static_cast<std::size_t>(n));
    for (int d = n - 1; d >= 0; --d) {
      double acc = 1.0 + delivery_probability(d) * (lm_ - 1.0);
      for (int dp = d + 1; dp < n; ++dp) {
        acc += next_dim_probability(d, dp) * s0[static_cast<std::size_t>(dp)];
      }
      s0[static_cast<std::size_t>(d)] = acc;
    }

    // Dimensions close from the top down (the e-cube continuation reads
    // higher dimensions), so the sweep evaluates d = n-1 .. 0.
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(lay_.total()));

    for (int d = n - 1; d >= 0; --d) {
      const double f = funnel_fraction_[static_cast<std::size_t>(d)];
      // Blocking seen by a regular message at a random dim-d channel: the
      // funnel fraction of them also carries the hot stream.
      const int b_reg = sys.add_blocking(
          {{{f, reg_stream(d), hot_stream(d)}, {1.0 - f, reg_stream(d), {}}}, 1.0});
      // Hot messages always ride funnel channels.
      const int b_hot = sys.add_blocking({{{1.0, reg_stream(d), hot_stream(d)}}, 1.0});

      const double cont0 = delivery_probability(d) * (lm_ - 1.0);
      std::vector<std::pair<int, double>> terms_r;
      std::vector<std::pair<int, double>> terms_h;
      terms_r.reserve(static_cast<std::size_t>(n - 1 - d));
      terms_h.reserve(static_cast<std::size_t>(n - 1 - d));
      for (int dp = d + 1; dp < n; ++dp) {
        const double p = next_dim_probability(d, dp);
        terms_r.emplace_back(lay_.r(dp), p);
        terms_h.emplace_back(lay_.h(dp), p);
      }
      StateExpr cont_r = StateExpr::weighted(cont0, 1.0, std::move(terms_r));
      StateExpr cont_h = StateExpr::weighted(cont0, 1.0, std::move(terms_h));

      ChannelClass reg;
      reg.name = "r";
      reg.blocking = b_reg;
      reg.initial = s0[static_cast<std::size_t>(d)];
      reg.output_continuation = std::move(cont_r);
      sys.set_class(lay_.r(d), std::move(reg));
      order.push_back(lay_.r(d));

      ChannelClass hot;
      hot.name = "h";
      hot.blocking = b_hot;
      hot.initial = s0[static_cast<std::size_t>(d)];
      hot.output_continuation = std::move(cont_h);
      sys.set_class(lay_.h(d), std::move(hot));
      order.push_back(lay_.h(d));
    }
    sys.set_eval_order(std::move(order));
    return sys;
  }

  bool assemble(const std::vector<double>& s, HypercubeModelResult& res) const {
    const int n = cfg_.dims;
    const double h = cfg_.hot_fraction;
    const int vcs = cfg_.vcs;
    const double n_nodes = pow2(n);

    // Entry distribution over the first corrected dimension.
    std::vector<double> p_first(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      p_first[static_cast<std::size_t>(d)] = pow2(n - 1 - d) / (n_nodes - 1.0);
    }

    double sr_net = 0.0;
    double sh_net = 0.0;
    for (int d = 0; d < n; ++d) {
      sr_net +=
          p_first[static_cast<std::size_t>(d)] * s[static_cast<std::size_t>(lay_.r(d))];
      sh_net +=
          p_first[static_cast<std::size_t>(d)] * s[static_cast<std::size_t>(lay_.h(d))];
    }

    // Source queue: per-VC M/G/1 with the node-averaged network latency.
    const double arr = cfg_.injection_rate / static_cast<double>(vcs);
    const QueueDelay ws = mg1_wait(arr, (1.0 - h) * sr_net + h * sh_net, lm_);
    if (ws.saturated) return false;
    res.source_wait = ws.value;

    // VC multiplexing per dimension, funnel and plain channel classes.
    const bool mux_incl = cfg_.vcmux_basis == ServiceBasis::kInclusive;
    double sr_total = 0.0;
    double sh_total = 0.0;
    double max_util = 0.0;
    const bool busy_incl = cfg_.busy_basis == ServiceBasis::kInclusive;
    for (int d = 0; d < n; ++d) {
      const double rate_h = hot_rate(d);
      const Stream reg{lambda_r_, s[static_cast<std::size_t>(lay_.r(d))], tx(d)};
      const Stream hot{rate_h, s[static_cast<std::size_t>(lay_.h(d))], tx(d)};
      const double s_r = mux_incl ? s[static_cast<std::size_t>(lay_.r(d))] : tx(d);
      const double s_h = mux_incl ? s[static_cast<std::size_t>(lay_.h(d))] : tx(d);

      const double rate_f = lambda_r_ + rate_h;
      const double sbar_f = (lambda_r_ * s_r + rate_h * s_h) / rate_f;
      const double v_funnel = vc_multiplexing_degree(rate_f, sbar_f, vcs);
      const double v_plain = vc_multiplexing_degree(lambda_r_, s_r, vcs);
      const double f = funnel_fraction_[static_cast<std::size_t>(d)];
      const double v_reg = f * v_funnel + (1.0 - f) * v_plain;

      sr_total += p_first[static_cast<std::size_t>(d)] *
                  (s[static_cast<std::size_t>(lay_.r(d))] + ws.value) * v_reg;
      sh_total += p_first[static_cast<std::size_t>(d)] *
                  (s[static_cast<std::size_t>(lay_.h(d))] + ws.value) * v_funnel;
      max_util = std::max(max_util, busy_probability(reg, hot, busy_incl));
      if (d == n - 1) res.vc_mux_bottleneck = v_funnel;
    }
    res.regular_latency = sr_total;
    res.hot_latency = sh_total;
    res.latency = (1.0 - h) * sr_total + h * sh_total;
    res.max_channel_utilization = max_util;
    res.saturated = false;
    return true;
  }

 private:
  const HypercubeModelConfig& cfg_;
  Lay lay_;
  double lm_;
  double lambda_r_ = 0.0;
  std::vector<double> hot_rate_;
  std::vector<double> funnel_fraction_;
};

}  // namespace

void HypercubeModelConfig::validate() const {
  auto fail = [](const char* m) { throw std::invalid_argument(m); };
  if (dims < 1 || dims > 24) fail("HypercubeModelConfig: dims out of range");
  if (vcs < 1) fail("HypercubeModelConfig: need at least one VC");
  if (message_length < 1) fail("HypercubeModelConfig: message length must be >= 1");
  if (injection_rate < 0.0 || injection_rate > 1.0) {
    fail("HypercubeModelConfig: rate must be in [0,1]");
  }
  if (hot_fraction < 0.0 || hot_fraction > 1.0) {
    fail("HypercubeModelConfig: hot fraction must be in [0,1]");
  }
}

HypercubeHotspotModel::HypercubeHotspotModel(const HypercubeModelConfig& cfg)
    : cfg_(cfg) {
  cfg.validate();
}

double HypercubeHotspotModel::regular_channel_rate() const {
  const int n = cfg_.dims;
  return cfg_.injection_rate * (1.0 - cfg_.hot_fraction) * pow2(n - 1) /
         (pow2(n) - 1.0);
}

double HypercubeHotspotModel::hot_funnel_rate(int d) const {
  KNC_ASSERT(d >= 0 && d < cfg_.dims);
  return cfg_.injection_rate * cfg_.hot_fraction * pow2(d);
}

double HypercubeHotspotModel::first_dim_probability(int d) const {
  KNC_ASSERT(d >= 0 && d < cfg_.dims);
  return pow2(cfg_.dims - 1 - d) / (pow2(cfg_.dims) - 1.0);
}

HypercubeModelResult HypercubeHotspotModel::solve(
    const std::vector<double>* warm_start,
    std::vector<double>* converged_state) const {
  const Builder builder(cfg_);
  HypercubeModelResult res;
  if (converged_state != nullptr) converged_state->clear();

  const ChannelClassSystem sys = builder.build();
  engine::SolvePolicy policy;
  policy.options = cfg_.solver;
  std::vector<double> state;
  const FixedPointResult fp = sys.solve(state, policy, warm_start);
  res.iterations = fp.iterations;
  res.converged = fp.converged;
  if (!fp.converged) {
    res.saturated = true;
    return res;
  }
  if (!builder.assemble(state, res)) {
    res.saturated = true;
    res.latency = std::numeric_limits<double>::infinity();
    return res;
  }
  if (converged_state != nullptr) *converged_state = std::move(state);
  return res;
}

double HypercubeHotspotModel::zero_load_latency() const {
  // Mean e-cube hops over a uniform non-equal pair: n 2^{n-1} / (2^n - 1).
  const int n = cfg_.dims;
  const double hops = static_cast<double>(n) * pow2(n - 1) / (pow2(n) - 1.0);
  return hops + static_cast<double>(cfg_.message_length) - 1.0;
}

double HypercubeHotspotModel::estimated_saturation_rate() const {
  const int n = cfg_.dims;
  const double coeff = cfg_.hot_fraction * pow2(n - 1) +
                       (1.0 - cfg_.hot_fraction) * 0.5;
  return 1.0 / (coeff * (static_cast<double>(cfg_.message_length) + 1.0));
}

}  // namespace kncube::model
