#include "model/hypercube_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "model/mg1.hpp"
#include "model/vcmux.hpp"
#include "util/assert.hpp"

namespace kncube::model {

namespace {

double pow2(int e) { return std::ldexp(1.0, e); }

/// State layout: S^r_d at [d], S^h_d at [n + d], d = 0..n-1.
struct Lay {
  int n;
  std::size_t total() const { return 2 * static_cast<std::size_t>(n); }
  std::size_t r(int d) const { return static_cast<std::size_t>(d); }
  std::size_t h(int d) const { return static_cast<std::size_t>(n + d); }
};

class Engine {
 public:
  explicit Engine(const HypercubeModelConfig& cfg)
      : cfg_(cfg), lay_{cfg.dims}, lm_(static_cast<double>(cfg.message_length)) {
    const int n = cfg_.dims;
    lambda_r_ = cfg.injection_rate * (1.0 - cfg.hot_fraction) * pow2(n - 1) /
                (pow2(n) - 1.0);
    hot_rate_.resize(static_cast<std::size_t>(n));
    funnel_fraction_.resize(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      hot_rate_[static_cast<std::size_t>(d)] =
          cfg.injection_rate * cfg.hot_fraction * pow2(d);
      // Funnel channels at dim d: 2^{n-d-1} of the 2^n dim-d channels.
      funnel_fraction_[static_cast<std::size_t>(d)] = pow2(-(d + 1));
    }
  }

  const Lay& layout() const { return lay_; }
  double lambda_r() const { return lambda_r_; }
  double hot_rate(int d) const { return hot_rate_[static_cast<std::size_t>(d)]; }

  /// Contention-free holding time of a dim-d channel: Lm flits plus the
  /// header's expected remaining hops (each higher dimension differs with
  /// probability 1/2) — identical for hot and regular streams.
  double tx(int d) const {
    return lm_ + static_cast<double>(cfg_.dims - 1 - d) / 2.0;
  }

  /// P(next corrected dimension is d' | currently at dim d); delivery
  /// otherwise.
  double next_dim_probability(int d, int dp) const {
    KNC_DEBUG_ASSERT(dp > d);
    return pow2(-(dp - d));
  }
  double delivery_probability(int d) const { return pow2(-(cfg_.dims - 1 - d)); }

  std::vector<double> initial_state() const {
    // Zero-load: S_d = 1 + sum P S_d' + P0 (Lm-1), solved backwards.
    std::vector<double> s(lay_.total());
    for (int d = cfg_.dims - 1; d >= 0; --d) {
      double acc = 1.0 + delivery_probability(d) * (lm_ - 1.0);
      for (int dp = d + 1; dp < cfg_.dims; ++dp) {
        acc += next_dim_probability(d, dp) * s[lay_.r(dp)];
      }
      s[lay_.r(d)] = acc;
      s[lay_.h(d)] = acc;  // same geometry at zero load
    }
    return s;
  }

  bool block(const Stream& reg, const Stream& hot, double& out) const {
    const QueueDelay b = blocking_delay(
        reg, hot, lm_, cfg_.busy_basis == ServiceBasis::kInclusive);
    if (b.saturated) return false;
    out = b.value;
    return true;
  }

  bool step(const std::vector<double>& in, std::vector<double>& out) const {
    const int n = cfg_.dims;
    for (int d = n - 1; d >= 0; --d) {
      const Stream reg{lambda_r_, in[lay_.r(d)], tx(d)};
      const Stream hot{hot_rate(d), in[lay_.h(d)], tx(d)};

      // Blocking seen by a regular message at a random dim-d channel: the
      // funnel fraction of them also carries the hot stream.
      double b_funnel = 0.0;
      double b_plain = 0.0;
      if (!block(reg, hot, b_funnel)) return false;
      if (!block(reg, Stream{}, b_plain)) return false;
      const double f = funnel_fraction_[static_cast<std::size_t>(d)];
      const double b_reg = f * b_funnel + (1.0 - f) * b_plain;

      double cont_r = delivery_probability(d) * (lm_ - 1.0);
      double cont_h = cont_r;
      for (int dp = d + 1; dp < n; ++dp) {
        const double p = next_dim_probability(d, dp);
        cont_r += p * out[lay_.r(dp)];
        cont_h += p * out[lay_.h(dp)];
      }
      out[lay_.r(d)] = b_reg + 1.0 + cont_r;
      // Hot messages always ride funnel channels.
      out[lay_.h(d)] = b_funnel + 1.0 + cont_h;
    }
    return true;
  }

  bool assemble(const std::vector<double>& s, HypercubeModelResult& res) const {
    const int n = cfg_.dims;
    const double h = cfg_.hot_fraction;
    const int vcs = cfg_.vcs;
    const double n_nodes = pow2(n);

    // Entry distribution over the first corrected dimension.
    std::vector<double> p_first(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      p_first[static_cast<std::size_t>(d)] = pow2(n - 1 - d) / (n_nodes - 1.0);
    }

    double sr_net = 0.0;
    double sh_net = 0.0;
    for (int d = 0; d < n; ++d) {
      sr_net += p_first[static_cast<std::size_t>(d)] * s[lay_.r(d)];
      sh_net += p_first[static_cast<std::size_t>(d)] * s[lay_.h(d)];
    }

    // Source queue: per-VC M/G/1 with the node-averaged network latency.
    const double arr = cfg_.injection_rate / static_cast<double>(vcs);
    const QueueDelay ws = mg1_wait(arr, (1.0 - h) * sr_net + h * sh_net, lm_);
    if (ws.saturated) return false;
    res.source_wait = ws.value;

    // VC multiplexing per dimension, funnel and plain channel classes.
    const bool mux_incl = cfg_.vcmux_basis == ServiceBasis::kInclusive;
    double sr_total = 0.0;
    double sh_total = 0.0;
    double max_util = 0.0;
    const bool busy_incl = cfg_.busy_basis == ServiceBasis::kInclusive;
    for (int d = 0; d < n; ++d) {
      const double rate_h = hot_rate(d);
      const Stream reg{lambda_r_, s[lay_.r(d)], tx(d)};
      const Stream hot{rate_h, s[lay_.h(d)], tx(d)};
      const double s_r = mux_incl ? s[lay_.r(d)] : tx(d);
      const double s_h = mux_incl ? s[lay_.h(d)] : tx(d);

      const double rate_f = lambda_r_ + rate_h;
      const double sbar_f = (lambda_r_ * s_r + rate_h * s_h) / rate_f;
      const double v_funnel = vc_multiplexing_degree(rate_f, sbar_f, vcs);
      const double v_plain = vc_multiplexing_degree(lambda_r_, s_r, vcs);
      const double f = funnel_fraction_[static_cast<std::size_t>(d)];
      const double v_reg = f * v_funnel + (1.0 - f) * v_plain;

      sr_total += p_first[static_cast<std::size_t>(d)] *
                  (s[lay_.r(d)] + ws.value) * v_reg;
      sh_total += p_first[static_cast<std::size_t>(d)] *
                  (s[lay_.h(d)] + ws.value) * v_funnel;
      max_util = std::max(max_util, busy_probability(reg, hot, busy_incl));
      if (d == n - 1) res.vc_mux_bottleneck = v_funnel;
    }
    res.regular_latency = sr_total;
    res.hot_latency = sh_total;
    res.latency = (1.0 - h) * sr_total + h * sh_total;
    res.max_channel_utilization = max_util;
    res.saturated = false;
    return true;
  }

 private:
  const HypercubeModelConfig& cfg_;
  Lay lay_;
  double lm_;
  double lambda_r_ = 0.0;
  std::vector<double> hot_rate_;
  std::vector<double> funnel_fraction_;
};

}  // namespace

void HypercubeModelConfig::validate() const {
  auto fail = [](const char* m) { throw std::invalid_argument(m); };
  if (dims < 1 || dims > 24) fail("HypercubeModelConfig: dims out of range");
  if (vcs < 1) fail("HypercubeModelConfig: need at least one VC");
  if (message_length < 1) fail("HypercubeModelConfig: message length must be >= 1");
  if (injection_rate < 0.0 || injection_rate > 1.0) {
    fail("HypercubeModelConfig: rate must be in [0,1]");
  }
  if (hot_fraction < 0.0 || hot_fraction > 1.0) {
    fail("HypercubeModelConfig: hot fraction must be in [0,1]");
  }
}

HypercubeHotspotModel::HypercubeHotspotModel(const HypercubeModelConfig& cfg)
    : cfg_(cfg) {
  cfg.validate();
}

double HypercubeHotspotModel::regular_channel_rate() const {
  const int n = cfg_.dims;
  return cfg_.injection_rate * (1.0 - cfg_.hot_fraction) * pow2(n - 1) /
         (pow2(n) - 1.0);
}

double HypercubeHotspotModel::hot_funnel_rate(int d) const {
  KNC_ASSERT(d >= 0 && d < cfg_.dims);
  return cfg_.injection_rate * cfg_.hot_fraction * pow2(d);
}

double HypercubeHotspotModel::first_dim_probability(int d) const {
  KNC_ASSERT(d >= 0 && d < cfg_.dims);
  return pow2(cfg_.dims - 1 - d) / (pow2(cfg_.dims) - 1.0);
}

HypercubeModelResult HypercubeHotspotModel::solve() const {
  Engine engine(cfg_);
  HypercubeModelResult res;

  std::vector<double> state = engine.initial_state();
  auto step = [&engine](const std::vector<double>& in, std::vector<double>& out) {
    return engine.step(in, out);
  };
  FixedPointResult fp = solve_fixed_point(state, step, cfg_.solver);
  if (!fp.converged && !fp.diverged) {
    FixedPointOptions slower = cfg_.solver;
    slower.damping = std::min(0.2, cfg_.solver.damping);
    slower.max_iterations = cfg_.solver.max_iterations * 2;
    state = engine.initial_state();
    fp = solve_fixed_point(state, step, slower);
  }
  res.iterations = fp.iterations;
  res.converged = fp.converged;
  if (!fp.converged) {
    res.saturated = true;
    return res;
  }
  if (!engine.assemble(state, res)) {
    res.saturated = true;
    res.latency = std::numeric_limits<double>::infinity();
  }
  return res;
}

double HypercubeHotspotModel::zero_load_latency() const {
  // Mean e-cube hops over a uniform non-equal pair: n 2^{n-1} / (2^n - 1).
  const int n = cfg_.dims;
  const double hops = static_cast<double>(n) * pow2(n - 1) / (pow2(n) - 1.0);
  return hops + static_cast<double>(cfg_.message_length) - 1.0;
}

double HypercubeHotspotModel::estimated_saturation_rate() const {
  const int n = cfg_.dims;
  const double coeff = cfg_.hot_fraction * pow2(n - 1) +
                       (1.0 - cfg_.hot_fraction) * 0.5;
  return 1.0 / (coeff * (static_cast<double>(cfg_.message_length) + 1.0));
}

}  // namespace kncube::model
