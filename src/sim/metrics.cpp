#include "sim/metrics.hpp"

#include "util/assert.hpp"

namespace kncube::sim {

Metrics::Metrics(std::uint64_t batch_size, double steady_rel_tol,
                 double latency_hist_max)
    : latency_hist_(0.0, latency_hist_max, 2048),
      batches_(batch_size, steady_rel_tol) {}

void Metrics::begin_measurement(std::uint64_t cycle) {
  KNC_ASSERT_MSG(!measuring(), "measurement window started twice");
  measure_start_ = cycle;
}

void Metrics::on_generated(std::uint64_t gen_cycle) {
  ++generated_total_;
  if (measuring() && gen_cycle >= measure_start_) ++generated_measured_;
}

void Metrics::on_unreachable(std::uint64_t gen_cycle) {
  ++unreachable_total_;
  if (measuring() && gen_cycle >= measure_start_) ++unreachable_measured_;
}

void Metrics::on_injected(MessageId msg, std::uint64_t gen_cycle, std::uint64_t cycle) {
  ++injected_total_;
  if (!measuring() || gen_cycle < measure_start_) return;
  source_wait_.add(static_cast<double>(cycle - gen_cycle));
  inject_cycle_.emplace(msg, cycle);
}

void Metrics::apply_ejects(const StepDelta& delta, std::uint64_t cycle) {
  flits_delivered_ += delta.flits_delivered;
  for (const StepDelta::DeliveredEvent& e : delta.delivered) {
    on_delivered(e.msg, e.gen_cycle, cycle, e.dest);
  }
}

void Metrics::apply_injects(const StepDelta& delta, std::uint64_t cycle) {
  for (const StepDelta::InjectedEvent& e : delta.injected) {
    on_injected(e.msg, e.gen_cycle, cycle);
  }
}

void Metrics::on_delivered(MessageId msg, std::uint64_t gen_cycle, std::uint64_t cycle,
                           topo::NodeId dest) {
  ++delivered_total_;
  if (!measuring() || gen_cycle < measure_start_) return;
  ++delivered_measured_;
  const auto total = static_cast<double>(cycle - gen_cycle);
  latency_.add(total);
  if (hot_node_ >= 0) {
    (static_cast<std::int64_t>(dest) == hot_node_ ? latency_hot_ : latency_regular_)
        .add(total);
  }
  latency_hist_.add(total);
  batches_.add(total);
  const auto it = inject_cycle_.find(msg);
  KNC_ASSERT_MSG(it != inject_cycle_.end(), "delivered before injected");
  net_latency_.add(static_cast<double>(cycle - it->second));
  inject_cycle_.erase(it);
}

}  // namespace kncube::sim
