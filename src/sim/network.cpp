#include "sim/network.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace kncube::sim {

Network::Network(const SimConfig& cfg)
    : topo_(cfg.k, cfg.n, cfg.bidirectional, cfg.mesh),
      message_length_(static_cast<std::uint32_t>(cfg.message_length)) {
  cfg.validate();
  routers_.reserve(topo_.size());
  active_.reserve(topo_.size());
  for (topo::NodeId id = 0; id < topo_.size(); ++id) {
    routers_.push_back(std::make_unique<Router>(
        topo_, id, cfg.vcs, cfg.buffer_depth, message_length_));
  }
  // Wire links: output port p of node r feeds input port p of the neighbour
  // in that port's (dim, dir); the input port keeps a reference back to the
  // upstream output port for credit/release return. Mesh edge ports whose
  // link would wrap stay unconnected — dimension-order routing on a mesh
  // never selects a direction that runs off the line, so they are never
  // routed to (channel statistics skip them too).
  for (topo::NodeId id = 0; id < topo_.size(); ++id) {
    Router& r = *routers_[id];
    for (int p = 0; p < r.network_ports(); ++p) {
      const int dim = r.port_dim(p);
      const topo::Direction dir = r.port_dir(p);
      if (!topo_.link_exists(id, dim, dir)) continue;
      const topo::NodeId down_id = topo_.neighbor(id, dim, dir);
      Router& down = *routers_[down_id];
      r.connect(p, &down, p);
      down.connect_upstream(p, &r, p);
    }
  }
}

void Network::step(std::uint64_t cycle, Metrics& metrics) {
  // Quiescent routers skip every phase; phases still run list-at-a-time (in
  // router-id order) so all cross-router interactions keep the seed's
  // globally synchronous semantics and metric-callback order.
  active_.clear();
  for (auto& r : routers_) {
    if (r->quiescent()) {
      r->note_idle_cycle();
    } else {
      active_.push_back(r.get());
    }
  }
  for (Router* r : active_) r->refill_injection();
  for (Router* r : active_) r->phase_eject(cycle, metrics);
  for (Router* r : active_) r->phase_route();
  for (Router* r : active_) r->phase_vc_alloc();
  for (Router* r : active_) r->phase_switch(cycle, metrics);
  // A router idle at the cycle start may have received a flit during
  // phase_switch; its staged arrival must become visible at this boundary
  // (full commit is unnecessary: it has no signals, and its idle cycle is
  // already accounted).
  std::size_t next_active = 0;
  for (auto& r : routers_) {
    if (next_active < active_.size() && active_[next_active] == r.get()) {
      r->commit();
      ++next_active;
    } else if (r->has_staged_arrivals()) {
      r->commit_arrivals();
    }
  }
}

void Network::enqueue_message(const QueuedMessage& msg) {
  KNC_ASSERT(msg.src < topo_.size() && msg.dest < topo_.size());
  routers_[msg.src]->enqueue_message(msg, message_length_);
}

std::uint64_t Network::inflight_flits() const {
  std::uint64_t total = 0;
  for (const auto& r : routers_) total += r->buffered_flits();
  return total;
}

std::uint64_t Network::source_backlog() const {
  std::uint64_t total = 0;
  for (const auto& r : routers_) total += r->source_queue_length();
  return total;
}

void Network::reset_channel_stats() {
  for (auto& r : routers_) {
    for (int p = 0; p < r->network_ports(); ++p) {
      r->output_port_mutable(p).reset_stats();
    }
  }
}

Network::ChannelSummary Network::channel_summary() const {
  ChannelSummary s;
  double util_sum = 0.0;
  std::uint64_t channels = 0;
  double vm_weighted = 0.0;
  double vm_weight = 0.0;
  for (const auto& r : routers_) {
    for (int p = 0; p < r->network_ports(); ++p) {
      const auto& op = r->output_port(p);
      // Unconnected mesh edge ports are not physical channels; counting
      // their permanent zeros would dilute the mean utilisation.
      if (op.down == nullptr) continue;
      const double u = op.utilization();
      util_sum += u;
      s.max_utilization = std::max(s.max_utilization, u);
      ++channels;
      if (op.busy_cycles > 0) {
        const auto w = static_cast<double>(op.flits_sent);
        vm_weighted += op.vc_multiplexing() * w;
        vm_weight += w;
      }
    }
  }
  if (channels) s.mean_utilization = util_sum / static_cast<double>(channels);
  if (vm_weight > 0.0) s.mean_vc_multiplexing = vm_weighted / vm_weight;
  return s;
}

double Network::channel_utilization(topo::NodeId node, int dim,
                                    topo::Direction dir) const {
  const Router& r = *routers_[node];
  return r.output_port(r.out_port_for(dim, dir)).utilization();
}

}  // namespace kncube::sim
