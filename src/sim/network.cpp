#include "sim/network.hpp"

#include <algorithm>
#include <thread>

#include "util/assert.hpp"

namespace kncube::sim {

namespace {

/// Shards actually used for `size` routers: the configured knob (0 = one per
/// hardware thread) capped so every shard keeps enough routers to amortise
/// its phase barriers — tiny networks run serial no matter the knob. Pure
/// function of (knob, hardware, size): never of timing, so the partition is
/// process-deterministic; and results are partition-independent anyway.
/// `requested` receives the pre-clamp count (the knob resolved against
/// hardware) so callers can surface the clamp instead of silently running
/// narrower than asked.
std::size_t resolve_shards(int sim_threads, topo::NodeId size,
                           std::size_t* requested) {
  std::size_t want = sim_threads == 0
                         ? std::max(1u, std::thread::hardware_concurrency())
                         : static_cast<std::size_t>(sim_threads);
  *requested = want;
  constexpr topo::NodeId kMinRoutersPerShard = 16;
  const std::size_t cap =
      std::max<std::size_t>(1, static_cast<std::size_t>(size / kMinRoutersPerShard));
  return std::min(want, cap);
}

}  // namespace

Network::Network(const SimConfig& cfg)
    : topo_(cfg.k, cfg.n, cfg.bidirectional, cfg.mesh),
      message_length_(static_cast<std::uint32_t>(cfg.message_length)) {
  cfg.validate();
  faults_ = build_fault_set(cfg, topo_);
  soa_.init(topo_.size(), topo_.channels_per_node(), cfg.vcs, cfg.buffer_depth,
            message_length_);
  // Routers live contiguously (reserve guarantees stable addresses for the
  // down/up wiring pointers taken below).
  routers_.reserve(topo_.size());
  for (topo::NodeId id = 0; id < topo_.size(); ++id) {
    routers_.emplace_back(topo_, id, cfg.vcs, cfg.buffer_depth,
                          message_length_, &soa_);
  }
  // Wire links: output port p of node r feeds input port p of the neighbour
  // in that port's (dim, dir); the input port keeps a reference back to the
  // upstream output port for credit/release return. Mesh edge ports whose
  // link would wrap stay unconnected — dimension-order routing on a mesh
  // never selects a direction that runs off the line, so they are never
  // routed to (channel statistics skip them too). The fault overlay extends
  // the same mechanism: failed links and every link touching a failed router
  // stay unwired, and the simulator only injects pairs whose deterministic
  // path is fully usable (pair_reachable), so unwired ports are never routed
  // to here either — faulty routers stay quiescent and hold no credits.
  for (topo::NodeId id = 0; id < topo_.size(); ++id) {
    Router& r = routers_[id];
    for (int p = 0; p < r.network_ports(); ++p) {
      const int dim = r.port_dim(p);
      const topo::Direction dir = r.port_dir(p);
      if (!faults_.link_usable(topo_, id, dim, dir)) continue;
      const topo::NodeId down_id = topo_.neighbor(id, dim, dir);
      Router& down = routers_[down_id];
      r.connect(p, &down, p);
      down.connect_upstream(p, &r, p);
    }
  }

  // Contiguous equal-ish shards over the router-id range. Contiguity keeps
  // the concatenation of per-shard orders equal to global router-id order,
  // which the metric replay and commit pass rely on.
  const std::size_t shard_count =
      resolve_shards(cfg.sim_threads, topo_.size(), &requested_shards_);
  shards_.resize(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    Shard& sh = shards_[s];
    sh.begin = static_cast<topo::NodeId>(topo_.size() * s / shard_count);
    sh.end = static_cast<topo::NodeId>(topo_.size() * (s + 1) / shard_count);
    sh.active.reserve(sh.end - sh.begin);
  }
  if (shard_count > 1) {
    barrier_ = std::make_unique<util::SpinBarrier>(shard_count);
    team_ = std::make_unique<util::ThreadTeam>(shard_count);
  }
}

void Network::step_shard(std::size_t s) {
  // Quiescent routers skip every phase; within the shard each phase runs
  // list-at-a-time in router-id order, and the barrier between stages keeps
  // all cross-router interactions on the seed's globally synchronous
  // schedule: a stage's remote staged writes complete before any shard
  // enters the stage that could observe their side effects.
  Shard& sh = shards_[s];
  sh.active.clear();
  // The activity scan reads only the two contiguous scheduling arrays — no
  // router object is touched for quiescent ids, so an idle network costs a
  // pair of streaming array reads per router per cycle.
  {
    const std::uint64_t* work = soa_.work.data();
    const std::atomic<std::uint32_t>* wake = soa_.wake.get();
    for (topo::NodeId id = sh.begin; id < sh.end; ++id) {
      if ((work[id] | wake[id].load(std::memory_order_relaxed)) != 0) {
        sh.active.push_back(&routers_[id]);
      }
    }
  }
  // The build above reads each router's committed occupancy, which the
  // phases below mutate remotely (staged arrivals/credits) — no shard may
  // start phasing until every shard has classified its routers.
  phase_barrier();
  for (Router* r : sh.active) r->refill_injection(sh.delta);
  phase_barrier();
  for (Router* r : sh.active) r->phase_eject(sh.delta);
  phase_barrier();
  for (Router* r : sh.active) r->phase_route();
  phase_barrier();
  for (Router* r : sh.active) r->phase_vc_alloc();
  phase_barrier();
  for (Router* r : sh.active) r->phase_switch(sh.delta);
  // Commit consumes the staged slots every shard wrote during the phases;
  // it must not start anywhere before phase_switch ends everywhere.
  phase_barrier();
  // A router idle at the cycle start may have received a flit during
  // phase_switch; its staged arrival must become visible at this boundary
  // (full commit is unnecessary: it has no signals, and its idle cycle is
  // already accounted). Commit itself touches only the owning router.
  std::size_t next_active = 0;
  const std::atomic<std::uint32_t>* wake = soa_.wake.get();
  for (topo::NodeId id = sh.begin; id < sh.end; ++id) {
    Router* r = &routers_[id];
    if (next_active < sh.active.size() && sh.active[next_active] == r) {
      r->commit();
      ++next_active;
    } else if ((wake[id].load(std::memory_order_relaxed) &
                Router::kWakeArrivalMask) != 0) {
      r->commit_arrivals();
    }
  }
}

void Network::step(std::uint64_t cycle, Metrics& metrics) {
  if (team_) {
    team_->run([this](std::size_t member) { step_shard(member); });
  } else {
    step_shard(0);
  }
  // Deterministic merge, identical to the serial call sequence: ejection
  // events of every shard replay in shard (== router-id) order, then the
  // injection events — floating-point accumulation order is preserved
  // bit-for-bit. Integer deltas are sums and merge by addition.
  std::uint64_t flits_out = 0;
  std::uint64_t refilled = 0;
  for (Shard& sh : shards_) {
    metrics.apply_ejects(sh.delta, cycle);
    flits_out += sh.delta.flits_delivered;
  }
  for (Shard& sh : shards_) {
    metrics.apply_injects(sh.delta, cycle);
    refilled += sh.delta.messages_refilled;
  }
  inflight_ += refilled * message_length_;
  inflight_ -= flits_out;
  backlog_ -= refilled;
  for (Shard& sh : shards_) sh.delta.clear();
  // Every router's per-port stat_cycles advances exactly once per cycle
  // whether it was active or idle — it is one global counter (router.hpp).
  ++soa_.stat_cycles;
}

void Network::enqueue_message(const QueuedMessage& msg) {
  KNC_ASSERT(msg.src < topo_.size() && msg.dest < topo_.size());
  // Unreachable pairs must be classified (and counted) at generation time —
  // a message past this point is guaranteed deliverable, so nothing is ever
  // dropped mid-network.
  KNC_ASSERT(pair_reachable(msg.src, msg.dest));
  routers_[msg.src].enqueue_message(msg, message_length_);
  ++backlog_;
}

std::uint64_t Network::scan_inflight_flits() const {
  std::uint64_t total = 0;
  for (const auto& r : routers_) total += r.buffered_flits();
  return total;
}

std::uint64_t Network::scan_source_backlog() const {
  std::uint64_t total = 0;
  for (const auto& r : routers_) total += r.source_queue_length();
  return total;
}

std::uint64_t Network::inflight_flits() const {
  KNC_DEBUG_ASSERT(inflight_ == scan_inflight_flits());
  return inflight_;
}

std::uint64_t Network::source_backlog() const {
  KNC_DEBUG_ASSERT(backlog_ == scan_source_backlog());
  return backlog_;
}

void Network::reset_channel_stats() {
  std::fill(soa_.flits_sent.begin(), soa_.flits_sent.end(), 0);
  std::fill(soa_.busy_vc_cycles.begin(), soa_.busy_vc_cycles.end(), 0);
  std::fill(soa_.busy_vc_sq_cycles.begin(), soa_.busy_vc_sq_cycles.end(), 0);
  std::fill(soa_.busy_cycles.begin(), soa_.busy_cycles.end(), 0);
  soa_.stat_cycles = 0;
}

Network::ChannelSummary Network::channel_summary() const {
  ChannelSummary s;
  double util_sum = 0.0;
  std::uint64_t channels = 0;
  double vm_weighted = 0.0;
  double vm_weight = 0.0;
  for (const auto& r : routers_) {
    for (int p = 0; p < r.network_ports(); ++p) {
      const auto& op = r.output_port(p);
      // Unconnected mesh edge ports are not physical channels; counting
      // their permanent zeros would dilute the mean utilisation.
      if (op.down == nullptr) continue;
      const double u = op.utilization();
      util_sum += u;
      s.max_utilization = std::max(s.max_utilization, u);
      ++channels;
      if (op.busy_cycles > 0) {
        const auto w = static_cast<double>(op.flits_sent);
        vm_weighted += op.vc_multiplexing() * w;
        vm_weight += w;
      }
    }
  }
  if (channels) s.mean_utilization = util_sum / static_cast<double>(channels);
  if (vm_weight > 0.0) s.mean_vc_multiplexing = vm_weighted / vm_weight;
  return s;
}

double Network::channel_utilization(topo::NodeId node, int dim,
                                    topo::Direction dir) const {
  const Router& r = routers_[node];
  const auto& op = r.output_port(r.out_port_for(dim, dir));
  // A mesh edge port or a faulted-out link is not a physical channel.
  if (op.down == nullptr) return 0.0;
  return op.utilization();
}

}  // namespace kncube::sim
