// Flit and message units moved by the wormhole simulator.
//
// A message of Lm flits is a HEAD flit (carries routing state), Lm-2 BODY
// flits and a TAIL flit (Lm == 1 yields a combined HEAD|TAIL flit). Flits
// are self-describing — source, destination and generation timestamp ride in
// every flit — so the hot loop needs no side-table lookups; per-message
// bookkeeping (network-latency stamps) lives in Metrics instead.
#pragma once

#include <cstdint>

#include "topology/torus.hpp"

namespace kncube::sim {

using MessageId = std::uint64_t;

struct Flit {
  MessageId msg = 0;
  topo::NodeId src = 0;
  topo::NodeId dest = 0;
  std::uint32_t seq = 0;        ///< index within the message, 0 == head
  std::uint64_t gen_cycle = 0;  ///< cycle the message was generated at the PE
  bool head = false;
  bool tail = false;
};

/// A generated message waiting in a source queue; flits are materialised
/// lazily when the message reaches the head of its injection VC, keeping
/// memory bounded even when source queues grow long near saturation.
struct QueuedMessage {
  MessageId id = 0;
  topo::NodeId src = 0;
  topo::NodeId dest = 0;
  std::uint64_t gen_cycle = 0;
};

}  // namespace kncube::sim
