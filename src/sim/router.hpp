// A wormhole router with virtual-channel flow control (paper §2).
//
// Microarchitecture (single-stage, one hop per cycle at zero load):
//   * one network input port per incoming channel, each with V virtual
//     channels backed by a `buffer_depth`-flit FIFO and credit-based
//     backpressure;
//   * one injection input port (V VCs fed from per-VC infinite source
//     queues; a queued message's flits materialise lazily);
//   * per-cycle phases: eject -> route -> VC allocation -> switch allocation
//     -> transfer; transfers, credits and VC releases become visible at the
//     next cycle boundary (commit), keeping the network synchronous;
//   * the crossbar is non-blocking on inputs ("can simultaneously connect
//     multiple incoming to multiple outgoing channels", §2); the only
//     bandwidth limit is one flit per output physical channel per cycle,
//     time-multiplexed across its VCs exactly as in Dally's VC model;
//   * ejection consumes destined flits with unlimited bandwidth (assumption
//     iv: "messages are transferred to the local PE as soon as they arrive");
//   * deadlock freedom: dimension-order routing plus Dally–Seitz dateline VC
//     classes inside each ring — class 0 until the message crosses the
//     ring's wrap-around link, class 1 after; the V VCs split into
//     ceil(V/2) class-0 and floor(V/2) class-1 channels.
//
// An output VC is held by a message from header allocation until the tail
// flit leaves the *downstream* buffer (conservative release; the release and
// the final credit travel back together with a one-cycle lag).
//
// Hot-loop layout (DESIGN.md §6, §12): ALL mutable router state lives in a
// network-wide structure-of-arrays arena (RouterSoA). Each field is one
// contiguous array over (router, lane) with a uniform per-router stride, so
// every phase is a batch loop over a router's contiguous lane range — no
// pointer chasing, no per-port heap vectors — and the compiler can
// auto-vectorise the predicate scans (an explicit-width arrival kernel
// rides the same layout, see sim/arrival_batch.hpp). A Router object is a
// *view*: id, wiring, cached pointers to its slice of the arena, and the
// source queues. The `InputVc` / `OutputVc` / `OutputPort` structs remain as
// materialised snapshots for tests and statistics readers; their field
// values are bit-identical to the pre-SoA representation.
//
// Scheduling state is two arena words per router (DESIGN.md §12):
//   * work  — owner-written sum of buffered flits, queued source messages
//             and busy output VCs;
//   * wake  — a relaxed atomic bumped by *neighbours*: staged-arrival count
//             in the low half (downstream stages an arrival during
//             phase_switch), pending credit/release signals in the high half
//             (upstream pops a flit). Both halves are interleaving-
//             independent sums, so the word is bit-deterministic under
//             sharding.
// quiescent() is (work | wake) == 0, and Network::step scans the two
// contiguous arrays instead of touching router objects. Per-port
// stat_cycles is not stored at all: every router advances it exactly once
// per cycle (commit when active, idle accounting otherwise), so the value
// is a single network-global cycles-since-reset counter (RouterSoA::
// stat_cycles) that snapshots report per port.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sim/flit.hpp"
#include "sim/metrics.hpp"
#include "topology/torus.hpp"
#include "util/assert.hpp"

namespace kncube::sim {

class Router;

/// The network-wide SoA arena backing every router's mutable state. One
/// instance per Network; routers hold cached pointers to their slices.
/// Lane indexing (uniform across routers, so slices are pure strides):
///   input lanes:  r * in_lanes  + port * vcs + v   (injection port last)
///   output lanes: r * out_lanes + port * vcs + v   (network ports only)
///   ports:        r * ports + p
struct RouterSoA {
  // --- geometry (shared by every router) ---
  int ports = 0;      ///< network ports per router
  int vcs = 0;        ///< V
  int in_lanes = 0;   ///< (ports + 1) * vcs
  int out_lanes = 0;  ///< ports * vcs
  std::uint32_t slab_stride = 0;  ///< flit slots per router

  // --- per input lane (ring FIFO + routing state) ---
  std::vector<std::uint32_t> vc_head;   ///< free-running front index
  std::vector<std::uint32_t> vc_count;  ///< buffered flits
  std::vector<std::int32_t> vc_route;   ///< chosen output port, -1 none
  std::vector<std::int32_t> vc_outvc;   ///< allocated downstream VC, -1 none
  std::vector<std::uint8_t> vc_active;  ///< message resident (head..tail)

  /// Ring geometry per *local* lane (identical for every router): base
  /// offset inside the router's slab block and pow2 capacity mask.
  std::vector<std::uint32_t> lane_base;
  std::vector<std::uint32_t> lane_mask;

  std::vector<Flit> slab;  ///< all rings of all routers, one array

  // --- per output lane (VC state + staged upstream signals) ---
  std::vector<std::uint8_t> out_busy;
  std::vector<std::int32_t> out_credits;
  std::vector<std::uint16_t> staged_credits;  ///< written by downstream
  std::vector<std::uint8_t> staged_release;   ///< written by downstream

  // --- per (router, output port) ---
  std::vector<std::uint32_t> rr_vc;  ///< VC-allocation round-robin cursor
  std::vector<std::uint32_t> rr_sw;  ///< switch-allocation round-robin cursor
  std::vector<std::int32_t> busy_now;
  std::vector<std::uint64_t> flits_sent;
  std::vector<std::uint64_t> busy_vc_cycles;
  std::vector<std::uint64_t> busy_vc_sq_cycles;
  std::vector<std::uint64_t> busy_cycles;
  /// Sorted requester lists, flattened: segment of capacity `in_lanes` per
  /// (router, port) at (r * ports + p) * in_lanes, length in req_count.
  std::vector<std::int32_t> req;
  std::vector<std::int32_t> req_count;

  // --- per (router, input port): <=1 staged arrival per cycle ---
  std::vector<Flit> staged_flit;        ///< written by upstream
  std::vector<std::int32_t> staged_vc;  ///< vc < 0 means empty

  // --- per router: scheduling words (see header comment) ---
  std::vector<std::uint64_t> work;
  /// std::atomic is not movable, so the wake array lives outside std::vector.
  std::unique_ptr<std::atomic<std::uint32_t>[]> wake;

  /// Cycles since the last reset_channel_stats — the per-port stat_cycles
  /// denominator, provably uniform across all ports of all routers.
  std::uint64_t stat_cycles = 0;

  /// Sizes every array for `routers` routers and computes the shared lane
  /// geometry (ring capacities are the pow2 ceilings of `buffer_depth` for
  /// network lanes and `message_length` for injection lanes).
  void init(topo::NodeId routers, int ports_, int vcs_, int buffer_depth,
            std::uint32_t message_length);
};

class Router {
 public:
  /// Snapshot of one input VC's state (tests / statistics). A VC is owned by
  /// at most one message at a time: `active` spans head arrival to tail
  /// departure, so buffers never interleave flits of different messages.
  struct InputVc {
    std::uint32_t base = 0;   ///< first slab slot of this VC's ring
    std::uint32_t mask = 0;   ///< ring capacity - 1 (capacity is a power of 2)
    std::uint32_t head = 0;   ///< free-running index of the front flit
    std::uint32_t count = 0;  ///< buffered flits
    int route_out = -1;  ///< chosen output port for the resident message
    int out_vc = -1;     ///< allocated VC at the downstream input port
    bool active = false;

    bool empty() const noexcept { return count == 0; }
    std::uint32_t size() const noexcept { return count; }
  };

  struct OutputVc {
    bool busy = false;  ///< allocated to an in-flight message
    int credits = 0;    ///< free flit slots in the downstream buffer
  };

  /// Snapshot of one output port (tests / statistics): same fields and
  /// derived quantities as the pre-SoA live struct.
  struct OutputPort {
    std::vector<OutputVc> vcs;
    Router* down = nullptr;
    int down_port = -1;
    std::uint32_t rr_vc = 0;  ///< round-robin cursor, VC allocation
    std::uint32_t rr_sw = 0;  ///< round-robin cursor, switch allocation
    std::int32_t busy_now = 0;  ///< busy VCs, maintained incrementally
    /// Input VCs currently routed to this port (sorted by input-VC index).
    std::vector<std::int32_t> requesters;
    // Channel statistics (since the last reset_channel_stats).
    std::uint64_t flits_sent = 0;
    std::uint64_t busy_vc_cycles = 0;     ///< sum over cycles of busy-VC count
    std::uint64_t busy_vc_sq_cycles = 0;  ///< sum of squared busy-VC count
    std::uint64_t busy_cycles = 0;        ///< cycles with >= 1 busy VC
    std::uint64_t stat_cycles = 0;

    double utilization() const noexcept {
      return stat_cycles ? static_cast<double>(flits_sent) /
                               static_cast<double>(stat_cycles)
                         : 0.0;
    }
    /// Dally's multiplexing degree estimate E[v^2]/E[v] over busy cycles.
    double vc_multiplexing() const noexcept {
      return busy_vc_cycles ? static_cast<double>(busy_vc_sq_cycles) /
                                  static_cast<double>(busy_vc_cycles)
                            : 1.0;
    }
  };

  Router(const topo::KAryNCube& net, topo::NodeId id, int vcs, int buffer_depth,
         std::uint32_t message_length, RouterSoA* soa);

  topo::NodeId id() const noexcept { return id_; }
  int network_ports() const noexcept { return net_ports_; }
  int injection_port() const noexcept { return net_ports_; }
  int vcs() const noexcept { return vcs_; }

  /// Output port index used by a message travelling dimension `dim` in
  /// direction `dir`.
  int out_port_for(int dim, topo::Direction dir) const noexcept;
  int port_dim(int port) const noexcept;
  topo::Direction port_dir(int port) const noexcept;

  // --- wiring (performed once by Network) ---
  void connect(int out_port, Router* down, int down_port);
  void connect_upstream(int in_port, Router* up, int up_port);
  Router* downstream(int out_port) const noexcept {
    return down_[static_cast<std::size_t>(out_port)];
  }

  // --- per-cycle phases (invoked by Network in order, across all routers) ---
  // Metric events and occupancy deltas accumulate into the caller's StepDelta
  // (the shard's buffer) instead of hitting Metrics directly; Network::step
  // replays the buffers in router-id order at the cycle boundary, so the
  // sharded and serial schedules produce the same Metrics call sequence.
  // Thread-safety contract under sharding: a phase writes remote routers only
  // through single-writer staged slots (arrivals, credits, releases — one
  // upstream/downstream owner per slot) plus the relaxed atomic wake words,
  // and never *reads* remote state; staged data is consumed only by the
  // owner's commit, after the pre-commit barrier.
  void refill_injection(StepDelta& delta);
  void phase_eject(StepDelta& delta);
  void phase_route();
  void phase_vc_alloc();
  void phase_switch(StepDelta& delta);
  void commit();
  /// Commit restricted to staged arrivals: run for routers that were
  /// quiescent at the cycle start but received a flit during phase_switch
  /// (a quiescent router can have no staged credits or releases).
  void commit_arrivals();

  // --- idle scheduling (Network::step) ---
  /// True when every phase of this router's cycle would be a no-op: nothing
  /// buffered or staged, empty source queues, no busy output VCs and no
  /// pending credit/release signals. Network::step reads the same two words
  /// straight from the arena without touching the Router object.
  bool quiescent() const noexcept {
    return *work_ == 0 && wake_->load(std::memory_order_relaxed) == 0;
  }
  bool has_staged_arrivals() const noexcept {
    return (wake_->load(std::memory_order_relaxed) & kWakeArrivalMask) != 0;
  }

  // --- source side ---
  /// Enqueues a generated message; messages are spread round-robin across the
  /// V injection VCs (the model's per-VC lambda/V source queues).
  void enqueue_message(const QueuedMessage& msg, std::uint32_t lm);
  std::uint64_t source_queue_length() const noexcept { return source_total_; }

  // --- introspection (tests, statistics): materialised snapshots ---
  InputVc input_vc(int port, int vc) const;
  OutputPort output_port(int port) const;
  std::uint64_t buffered_flits() const noexcept {
    return buffered_ +
           (wake_->load(std::memory_order_relaxed) & kWakeArrivalMask);
  }

 private:
  friend class Network;

  /// wake word layout: staged-arrival count in the low half, pending
  /// credit/release signal count in the high half. Both are sums of
  /// single-increment fetch_adds, so the final value per cycle is
  /// interleaving-independent.
  static constexpr std::uint32_t kWakeArrivalMask = 0xffffu;
  static constexpr std::uint32_t kWakeSignalUnit = 0x10000u;

  int in_lane(int port, int vc) const noexcept { return port * vcs_ + vc; }

  Flit& ring_front(int lane) noexcept {
    return slab_[lane_base_[lane] + (head_[lane] & lane_mask_[lane])];
  }
  const Flit& ring_front(int lane) const noexcept {
    return slab_[lane_base_[lane] + (head_[lane] & lane_mask_[lane])];
  }
  void ring_push(int lane, const Flit& f) noexcept {
    slab_[lane_base_[lane] + ((head_[lane] + count_[lane]) & lane_mask_[lane])] = f;
    ++count_[lane];
    ++buffered_;
    ++*work_;
  }
  Flit ring_pop(int lane) noexcept {
    const Flit f = slab_[lane_base_[lane] + (head_[lane] & lane_mask_[lane])];
    ++head_[lane];
    --count_[lane];
    --buffered_;
    --*work_;
    return f;
  }
  void requesters_insert(int port, std::int32_t index);
  void requesters_erase(int port, std::int32_t index);

  /// Dateline class of the next hop for a head flit at this router.
  int vc_class_for(const Flit& head, int dim, topo::Direction dir) const noexcept;
  int class_vc_begin(int cls) const noexcept;
  int class_vc_end(int cls) const noexcept;
  /// Pops the front flit of input lane (port, vc) returning credit (and, on
  /// tail, release) to the upstream output VC.
  Flit pop_and_credit(int port, int vc);
  /// Applies the staged arrival slots (wake low half already checked).
  void apply_staged_arrivals();

  const topo::KAryNCube& net_;
  RouterSoA* soa_;
  topo::NodeId id_;
  int vcs_;
  int buffer_depth_;
  int net_ports_;
  int in_lanes_;
  std::uint32_t message_length_;  ///< Lm of the messages being enqueued

  // Cached pointers to this router's arena slices (see RouterSoA).
  std::uint32_t* head_ = nullptr;
  std::uint32_t* count_ = nullptr;
  std::int32_t* route_ = nullptr;
  std::int32_t* outvc_ = nullptr;
  std::uint8_t* active_ = nullptr;
  const std::uint32_t* lane_base_ = nullptr;  ///< shared, local-lane indexed
  const std::uint32_t* lane_mask_ = nullptr;  ///< shared, local-lane indexed
  Flit* slab_ = nullptr;                      ///< this router's slab block
  std::uint8_t* out_busy_ = nullptr;
  std::int32_t* out_credits_ = nullptr;
  std::uint16_t* staged_credits_ = nullptr;
  std::uint8_t* staged_release_ = nullptr;
  std::uint32_t* rr_vc_ = nullptr;
  std::uint32_t* rr_sw_ = nullptr;
  std::int32_t* busy_now_ = nullptr;
  std::uint64_t* flits_sent_ = nullptr;
  std::uint64_t* busy_vc_cycles_ = nullptr;
  std::uint64_t* busy_vc_sq_cycles_ = nullptr;
  std::uint64_t* busy_cycles_ = nullptr;
  std::int32_t* req_ = nullptr;        ///< ports segments of in_lanes_ each
  std::int32_t* req_count_ = nullptr;  ///< per port
  Flit* staged_flit_ = nullptr;        ///< per input port
  std::int32_t* staged_vc_ = nullptr;  ///< per input port
  std::uint64_t* work_ = nullptr;
  std::atomic<std::uint32_t>* wake_ = nullptr;

  std::vector<Router*> down_;      ///< per network output port
  std::vector<int> down_port_;
  std::vector<Router*> up_router_; ///< per network input port
  std::vector<int> up_port_;

  std::vector<std::deque<QueuedMessage>> source_q_;  ///< one per injection VC
  std::uint32_t next_inject_vc_ = 0;

  // Owner-written occupancy counters (work_ is their arena sum; staged
  // arrivals and pending signals live in wake_).
  std::uint64_t buffered_ = 0;      ///< flits resident in any ring
  std::uint64_t source_total_ = 0;  ///< messages waiting in source queues
  std::uint32_t busy_out_ = 0;      ///< busy output VCs across all ports
};

}  // namespace kncube::sim
