// A wormhole router with virtual-channel flow control (paper §2).
//
// Microarchitecture (single-stage, one hop per cycle at zero load):
//   * one network input port per incoming channel, each with V virtual
//     channels backed by a `buffer_depth`-flit FIFO and credit-based
//     backpressure;
//   * one injection input port (V VCs fed from per-VC infinite source
//     queues; a queued message's flits materialise lazily);
//   * per-cycle phases: eject -> route -> VC allocation -> switch allocation
//     -> transfer; transfers, credits and VC releases become visible at the
//     next cycle boundary (commit), keeping the network synchronous;
//   * the crossbar is non-blocking on inputs ("can simultaneously connect
//     multiple incoming to multiple outgoing channels", §2); the only
//     bandwidth limit is one flit per output physical channel per cycle,
//     time-multiplexed across its VCs exactly as in Dally's VC model;
//   * ejection consumes destined flits with unlimited bandwidth (assumption
//     iv: "messages are transferred to the local PE as soon as they arrive");
//   * deadlock freedom: dimension-order routing plus Dally–Seitz dateline VC
//     classes inside each ring — class 0 until the message crosses the
//     ring's wrap-around link, class 1 after; the V VCs split into
//     ceil(V/2) class-0 and floor(V/2) class-1 channels.
//
// An output VC is held by a message from header allocation until the tail
// flit leaves the *downstream* buffer (conservative release; the release and
// the final credit travel back together with a one-cycle lag).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "sim/flit.hpp"
#include "sim/metrics.hpp"
#include "topology/torus.hpp"

namespace kncube::sim {

class Router {
 public:
  /// Per-input-VC state. A VC is owned by at most one message at a time:
  /// `active` spans head arrival to tail departure, so buffers never
  /// interleave flits of different messages.
  struct InputVc {
    std::deque<Flit> buffer;
    int route_out = -1;  ///< chosen output port for the resident message
    int out_vc = -1;     ///< allocated VC at the downstream input port
    bool active = false;
  };

  struct OutputVc {
    bool busy = false;  ///< allocated to an in-flight message
    int credits = 0;    ///< free flit slots in the downstream buffer
  };

  struct OutputPort {
    std::vector<OutputVc> vcs;
    Router* down = nullptr;
    int down_port = -1;
    std::uint32_t rr_vc = 0;  ///< round-robin cursor, VC allocation
    std::uint32_t rr_sw = 0;  ///< round-robin cursor, switch allocation
    // Signals staged by the downstream router, applied at commit.
    std::vector<std::uint16_t> staged_credits;
    std::vector<std::uint8_t> staged_release;
    // Channel statistics (since the last reset_stats).
    std::uint64_t flits_sent = 0;
    std::uint64_t busy_vc_cycles = 0;     ///< sum over cycles of busy-VC count
    std::uint64_t busy_vc_sq_cycles = 0;  ///< sum of squared busy-VC count
    std::uint64_t busy_cycles = 0;        ///< cycles with >= 1 busy VC
    std::uint64_t stat_cycles = 0;

    double utilization() const noexcept {
      return stat_cycles ? static_cast<double>(flits_sent) /
                               static_cast<double>(stat_cycles)
                         : 0.0;
    }
    /// Dally's multiplexing degree estimate E[v^2]/E[v] over busy cycles.
    double vc_multiplexing() const noexcept {
      return busy_vc_cycles ? static_cast<double>(busy_vc_sq_cycles) /
                                  static_cast<double>(busy_vc_cycles)
                            : 1.0;
    }
    void reset_stats() noexcept {
      flits_sent = busy_vc_cycles = busy_vc_sq_cycles = busy_cycles = stat_cycles = 0;
    }
  };

  Router(const topo::KAryNCube& net, topo::NodeId id, int vcs, int buffer_depth);

  topo::NodeId id() const noexcept { return id_; }
  int network_ports() const noexcept { return net_ports_; }
  int injection_port() const noexcept { return net_ports_; }
  int vcs() const noexcept { return vcs_; }

  /// Output port index used by a message travelling dimension `dim` in
  /// direction `dir`.
  int out_port_for(int dim, topo::Direction dir) const noexcept;
  int port_dim(int port) const noexcept;
  topo::Direction port_dir(int port) const noexcept;

  // --- wiring (performed once by Network) ---
  void connect(int out_port, Router* down, int down_port);
  void connect_upstream(int in_port, OutputPort* upstream);

  // --- per-cycle phases (invoked by Network in order, across all routers) ---
  void refill_injection();
  void phase_eject(std::uint64_t cycle, Metrics& metrics);
  void phase_route();
  void phase_vc_alloc();
  void phase_switch(std::uint64_t cycle, Metrics& metrics);
  void commit();

  // --- source side ---
  /// Enqueues a generated message; messages are spread round-robin across the
  /// V injection VCs (the model's per-VC lambda/V source queues).
  void enqueue_message(const QueuedMessage& msg, std::uint32_t lm);
  std::uint64_t source_queue_length() const noexcept;

  // --- introspection (tests, statistics) ---
  const InputVc& input_vc(int port, int vc) const;
  const OutputPort& output_port(int port) const;
  OutputPort& output_port_mutable(int port);
  std::uint64_t buffered_flits() const noexcept;

 private:
  InputVc& ivc(int port, int vc) {
    return in_vcs_[static_cast<std::size_t>(port * vcs_ + vc)];
  }
  /// Dateline class of the next hop for a head flit at this router.
  int vc_class_for(const Flit& head, int dim, topo::Direction dir) const noexcept;
  int class_vc_begin(int cls) const noexcept;
  int class_vc_end(int cls) const noexcept;
  /// Pops the front flit of (port, vc) returning credit (and, on tail,
  /// release) to the upstream output VC.
  Flit pop_and_credit(int port, int vc);

  const topo::KAryNCube& net_;
  topo::NodeId id_;
  int vcs_;
  int buffer_depth_;
  int net_ports_;

  std::vector<InputVc> in_vcs_;       ///< (net_ports_+1) * V, injection last
  std::vector<OutputPort> out_;       ///< network output ports
  std::vector<OutputPort*> upstream_; ///< per network input port
  /// <=1 staged arrival per network input port per cycle: (vc, flit)
  std::vector<std::optional<std::pair<int, Flit>>> staged_in_;

  std::vector<std::deque<QueuedMessage>> source_q_;  ///< one per injection VC
  std::uint32_t next_inject_vc_ = 0;
  std::uint32_t message_length_ = 0;  ///< Lm of the messages being enqueued
};

}  // namespace kncube::sim
