// A wormhole router with virtual-channel flow control (paper §2).
//
// Microarchitecture (single-stage, one hop per cycle at zero load):
//   * one network input port per incoming channel, each with V virtual
//     channels backed by a `buffer_depth`-flit FIFO and credit-based
//     backpressure;
//   * one injection input port (V VCs fed from per-VC infinite source
//     queues; a queued message's flits materialise lazily);
//   * per-cycle phases: eject -> route -> VC allocation -> switch allocation
//     -> transfer; transfers, credits and VC releases become visible at the
//     next cycle boundary (commit), keeping the network synchronous;
//   * the crossbar is non-blocking on inputs ("can simultaneously connect
//     multiple incoming to multiple outgoing channels", §2); the only
//     bandwidth limit is one flit per output physical channel per cycle,
//     time-multiplexed across its VCs exactly as in Dally's VC model;
//   * ejection consumes destined flits with unlimited bandwidth (assumption
//     iv: "messages are transferred to the local PE as soon as they arrive");
//   * deadlock freedom: dimension-order routing plus Dally–Seitz dateline VC
//     classes inside each ring — class 0 until the message crosses the
//     ring's wrap-around link, class 1 after; the V VCs split into
//     ceil(V/2) class-0 and floor(V/2) class-1 channels.
//
// An output VC is held by a message from header allocation until the tail
// flit leaves the *downstream* buffer (conservative release; the release and
// the final credit travel back together with a one-cycle lag).
//
// Hot-loop layout (DESIGN.md §6): router state is structure-of-arrays. Every
// VC FIFO is a fixed-capacity power-of-two ring indexed into one contiguous
// per-router flit slab (no per-flit allocation, no deque chasing); staged
// arrivals are plain POD slots; and each output port keeps a sorted list of
// the input VCs currently routed to it, maintained incrementally by
// phase_route/phase_switch, so the allocation phases touch only requesters
// instead of scanning every VC. Aggregate occupancy counters make
// `quiescent()` O(1), letting Network::step skip idle routers entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/flit.hpp"
#include "sim/metrics.hpp"
#include "topology/torus.hpp"

namespace kncube::sim {

class Router {
 public:
  /// Per-input-VC state. A VC is owned by at most one message at a time:
  /// `active` spans head arrival to tail departure, so buffers never
  /// interleave flits of different messages. The FIFO is a power-of-two ring
  /// (`base`/`mask`) into the router's contiguous flit slab; `head` runs
  /// free and is masked on access.
  struct InputVc {
    std::uint32_t base = 0;   ///< first slab slot of this VC's ring
    std::uint32_t mask = 0;   ///< ring capacity - 1 (capacity is a power of 2)
    std::uint32_t head = 0;   ///< free-running index of the front flit
    std::uint32_t count = 0;  ///< buffered flits
    int route_out = -1;  ///< chosen output port for the resident message
    int out_vc = -1;     ///< allocated VC at the downstream input port
    bool active = false;

    bool empty() const noexcept { return count == 0; }
    std::uint32_t size() const noexcept { return count; }
  };

  struct OutputVc {
    bool busy = false;  ///< allocated to an in-flight message
    int credits = 0;    ///< free flit slots in the downstream buffer
  };

  struct OutputPort {
    std::vector<OutputVc> vcs;
    Router* down = nullptr;
    int down_port = -1;
    std::uint32_t rr_vc = 0;  ///< round-robin cursor, VC allocation
    std::uint32_t rr_sw = 0;  ///< round-robin cursor, switch allocation
    std::int32_t busy_now = 0;  ///< busy VCs, maintained incrementally
    /// Input VCs currently routed to this port (sorted by input-VC index);
    /// a VC enters when phase_route picks this port and leaves when its tail
    /// departs, so the allocation phases iterate requesters only.
    std::vector<std::int32_t> requesters;
    // Signals staged by the downstream router, applied at commit.
    std::vector<std::uint16_t> staged_credits;
    std::vector<std::uint8_t> staged_release;
    // Channel statistics (since the last reset_stats).
    std::uint64_t flits_sent = 0;
    std::uint64_t busy_vc_cycles = 0;     ///< sum over cycles of busy-VC count
    std::uint64_t busy_vc_sq_cycles = 0;  ///< sum of squared busy-VC count
    std::uint64_t busy_cycles = 0;        ///< cycles with >= 1 busy VC
    std::uint64_t stat_cycles = 0;

    double utilization() const noexcept {
      return stat_cycles ? static_cast<double>(flits_sent) /
                               static_cast<double>(stat_cycles)
                         : 0.0;
    }
    /// Dally's multiplexing degree estimate E[v^2]/E[v] over busy cycles.
    double vc_multiplexing() const noexcept {
      return busy_vc_cycles ? static_cast<double>(busy_vc_sq_cycles) /
                                  static_cast<double>(busy_vc_cycles)
                            : 1.0;
    }
    void reset_stats() noexcept {
      flits_sent = busy_vc_cycles = busy_vc_sq_cycles = busy_cycles = stat_cycles = 0;
    }
  };

  Router(const topo::KAryNCube& net, topo::NodeId id, int vcs, int buffer_depth,
         std::uint32_t message_length);

  topo::NodeId id() const noexcept { return id_; }
  int network_ports() const noexcept { return net_ports_; }
  int injection_port() const noexcept { return net_ports_; }
  int vcs() const noexcept { return vcs_; }

  /// Output port index used by a message travelling dimension `dim` in
  /// direction `dir`.
  int out_port_for(int dim, topo::Direction dir) const noexcept;
  int port_dim(int port) const noexcept;
  topo::Direction port_dir(int port) const noexcept;

  // --- wiring (performed once by Network) ---
  void connect(int out_port, Router* down, int down_port);
  void connect_upstream(int in_port, Router* up, int up_port);

  // --- per-cycle phases (invoked by Network in order, across all routers) ---
  // Metric events and occupancy deltas accumulate into the caller's StepDelta
  // (the shard's buffer) instead of hitting Metrics directly; Network::step
  // replays the buffers in router-id order at the cycle boundary, so the
  // sharded and serial schedules produce the same Metrics call sequence.
  // Thread-safety contract under sharding: a phase writes remote routers only
  // through single-writer staged slots (arrivals, credits, releases — one
  // upstream/downstream owner per slot) plus the relaxed atomic aggregates
  // below, and never *reads* remote state; staged data is consumed only by
  // the owner's commit, after the pre-commit barrier.
  void refill_injection(StepDelta& delta);
  void phase_eject(StepDelta& delta);
  void phase_route();
  void phase_vc_alloc();
  void phase_switch(StepDelta& delta);
  void commit();
  /// Commit restricted to staged arrivals: run for routers that were
  /// quiescent at the cycle start but received a flit during phase_switch
  /// (their idle cycle is already accounted by note_idle_cycle, and a
  /// quiescent router can have no staged credits or releases).
  void commit_arrivals();

  // --- idle scheduling (Network::step) ---
  /// True when every phase of this router's cycle would be a no-op: nothing
  /// buffered or staged, empty source queues, no busy output VCs and no
  /// pending credit/release signals.
  bool quiescent() const noexcept {
    return buffered_ == 0 && staged_count_.load(std::memory_order_relaxed) == 0 &&
           source_total_ == 0 && busy_out_ == 0 &&
           pending_signals_.load(std::memory_order_relaxed) == 0;
  }
  bool has_staged_arrivals() const noexcept {
    return staged_count_.load(std::memory_order_relaxed) != 0;
  }
  /// Accounts one skipped (idle) cycle: every output port's stat_cycles
  /// still advances (a quiescent router has zero busy VCs, so the busy
  /// statistics are untouched), keeping utilisation denominators exact
  /// while commit is skipped. Eager — a couple of increments per idle
  /// router — so the stats accessors stay pure reads.
  void note_idle_cycle() noexcept {
    for (auto& op : out_) ++op.stat_cycles;
  }

  // --- source side ---
  /// Enqueues a generated message; messages are spread round-robin across the
  /// V injection VCs (the model's per-VC lambda/V source queues).
  void enqueue_message(const QueuedMessage& msg, std::uint32_t lm);
  std::uint64_t source_queue_length() const noexcept { return source_total_; }

  // --- introspection (tests, statistics) ---
  const InputVc& input_vc(int port, int vc) const;
  const OutputPort& output_port(int port) const;
  OutputPort& output_port_mutable(int port);
  std::uint64_t buffered_flits() const noexcept {
    return buffered_ + staged_count_.load(std::memory_order_relaxed);
  }

 private:
  /// <=1 staged arrival per network input port per cycle; vc < 0 means empty.
  struct StagedArrival {
    Flit flit;
    std::int32_t vc = -1;
  };

  InputVc& ivc(int port, int vc) {
    return in_vcs_[static_cast<std::size_t>(port * vcs_ + vc)];
  }
  Flit& ring_front(InputVc& vc) noexcept {
    return slab_[vc.base + (vc.head & vc.mask)];
  }
  void ring_push(InputVc& vc, const Flit& f) noexcept {
    slab_[vc.base + ((vc.head + vc.count) & vc.mask)] = f;
    ++vc.count;
    ++buffered_;
  }
  Flit ring_pop(InputVc& vc) noexcept {
    const Flit f = slab_[vc.base + (vc.head & vc.mask)];
    ++vc.head;
    --vc.count;
    --buffered_;
    return f;
  }
  void requesters_insert(OutputPort& op, std::int32_t index);
  void requesters_erase(OutputPort& op, std::int32_t index);

  /// Dateline class of the next hop for a head flit at this router.
  int vc_class_for(const Flit& head, int dim, topo::Direction dir) const noexcept;
  int class_vc_begin(int cls) const noexcept;
  int class_vc_end(int cls) const noexcept;
  /// Pops the front flit of (port, vc) returning credit (and, on tail,
  /// release) to the upstream output VC.
  Flit pop_and_credit(int port, int vc);

  const topo::KAryNCube& net_;
  topo::NodeId id_;
  int vcs_;
  int buffer_depth_;
  int net_ports_;
  std::uint32_t message_length_;  ///< Lm of the messages being enqueued

  std::vector<Flit> slab_;            ///< one contiguous flit array, all rings
  std::vector<InputVc> in_vcs_;       ///< (net_ports_+1) * V, injection last
  std::vector<OutputPort> out_;       ///< network output ports
  std::vector<Router*> up_router_;    ///< per network input port
  std::vector<int> up_port_;          ///< matching output-port index upstream
  std::vector<StagedArrival> staged_in_;  ///< per network input port

  std::vector<std::deque<QueuedMessage>> source_q_;  ///< one per injection VC
  std::uint32_t next_inject_vc_ = 0;

  // Aggregate occupancy counters backing quiescent() / buffered_flits().
  // staged_count_ and pending_signals_ are bumped by *neighbouring* routers
  // (phase_switch stages an arrival downstream, pop_and_credit stages a
  // credit upstream), so under sharding several shards increment them
  // concurrently: they are relaxed atomics — the final value is a sum, which
  // is interleaving-independent, keeping the counters bit-deterministic.
  // All other counters are written by the owning router only.
  std::uint64_t buffered_ = 0;        ///< flits resident in any ring
  std::atomic<std::uint32_t> staged_count_{0};  ///< staged arrivals awaiting commit
  std::uint64_t source_total_ = 0;    ///< messages waiting in source queues
  std::uint32_t busy_out_ = 0;        ///< busy output VCs across all ports
  std::atomic<std::uint32_t> pending_signals_{0};  ///< staged credits awaiting commit
};

}  // namespace kncube::sim
