// Simulator configuration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/fault_set.hpp"
#include "topology/torus.hpp"

namespace kncube::sim {

/// Destination pattern. Hotspot is the paper's traffic model (assumption ii):
/// probability `hot_fraction` to the hot node, else uniform over the other
/// nodes; the hot node itself only generates uniform traffic.
enum class Pattern : int {
  kUniform = 0,
  kHotspot = 1,
  kTranspose = 2,     ///< (x, y) -> (y, x); diagonal nodes fall back to uniform
  kBitComplement = 3, ///< dest id = N-1 - src id
  kBitReversal = 4,   ///< reverse the bits of the node index (N power of two)
};

/// Arrival process per node. Bernoulli(rate) per cycle is the discrete-time
/// Poisson approximation used throughout the paper's operating range
/// (rate << 1). MMPP is the bursty extension flagged as future work in §5:
/// a two-state modulated Bernoulli with a burst state and an idle state.
enum class Arrivals : int { kBernoulli = 0, kMmpp = 1 };

struct MmppParams {
  double burst_rate_multiplier = 4.0;  ///< rate in burst state = mult * mean rate
  double p_enter_burst = 0.0005;       ///< idle -> burst transition prob per cycle
  double p_leave_burst = 0.002;        ///< burst -> idle transition prob per cycle
};

struct SimConfig {
  // --- network ---
  int k = 16;                 ///< radix
  int n = 2;                  ///< dimensions
  bool bidirectional = false; ///< paper analyses the unidirectional torus
  /// k-ary n-mesh: no wrap-around links, lines instead of rings. Mesh links
  /// are inherently bidirectional, so `bidirectional` must stay false (it is
  /// the torus extension flag); dimension-order routing is acyclic on a
  /// mesh, so no dateline VC classes and no V >= 2 deadlock requirement.
  bool mesh = false;
  int vcs = 2;                ///< V, virtual channels per physical channel (>= 2)
  int buffer_depth = 2;       ///< flit buffer per VC; >= 2 streams 1 flit/cycle

  // --- workload ---
  int message_length = 32;       ///< Lm flits
  double injection_rate = 1e-4;  ///< lambda, messages/node/cycle
  Pattern pattern = Pattern::kHotspot;
  double hot_fraction = 0.2;  ///< h
  /// Hot node id; -1 picks the centre node (k/2, k/2, ...). Position is
  /// immaterial on a torus (full symmetry); configurable for tests.
  std::int64_t hot_node = -1;
  Arrivals arrivals = Arrivals::kBernoulli;
  MmppParams mmpp{};

  // --- faults (degraded-operation scenarios; all empty = pristine) ---
  /// Explicitly failed router ids (strictly ascending). A failed router
  /// injects nothing, ejects nothing, and every link touching it is down.
  std::vector<std::int64_t> failed_routers;
  /// Explicitly failed directed links (strictly ascending by
  /// (node, dim, dir)); both endpoint routers stay alive.
  std::vector<topo::FailedLink> failed_links;
  /// Random failure mode: fail round(rate * N) additional routers, drawn
  /// from failure_seed (deterministic; the hot node is protected under
  /// hot-spot traffic). 0 disables the mode. Must stay in [0, 1).
  double failure_rate = 0.0;
  std::uint64_t failure_seed = 1;

  bool has_failures() const noexcept {
    return !failed_routers.empty() || !failed_links.empty() ||
           failure_rate != 0.0;
  }

  // --- execution (cannot change any result bit) ---
  /// Worker threads sharding the router set inside Network::step. 1 runs the
  /// classic serial loop; 0 uses hardware_concurrency; N > 1 partitions the
  /// router-id range over N team members with deterministic phase barriers.
  /// Results are bit-identical for every value (pinned by the determinism
  /// goldens at T ∈ {1,2,4}), so this is a pure wall-clock knob; the shard
  /// count is additionally capped so tiny networks never over-partition.
  int sim_threads = 1;

  // --- measurement ---
  std::uint64_t seed = 0xC0FFEE;
  std::uint64_t warmup_cycles = 20000;
  std::uint64_t target_messages = 2500;   ///< measured deliveries wanted
  std::uint64_t max_cycles = 3'000'000;
  std::uint64_t batch_size = 500;         ///< batch-means batch, in messages
  double steady_rel_tol = 0.02;           ///< paper's "does not change appreciably"

  topo::NodeId resolved_hot_node() const {
    if (hot_node >= 0) return static_cast<topo::NodeId>(hot_node);
    // Centre node (k/2, k/2, ...) computed arithmetically: coordinate d has
    // stride k^d (dimension 0 varies fastest), so the id is (k/2)·Σ k^d.
    topo::NodeId id = 0;
    topo::NodeId stride = 1;
    for (int d = 0; d < n; ++d) {
      id += static_cast<topo::NodeId>(k / 2) * stride;
      stride *= static_cast<topo::NodeId>(k);
    }
    return id;
  }

  /// Throws std::invalid_argument on inconsistent settings.
  void validate() const;
};

/// Simulator seed for replication `replication` of the scenario whose
/// canonical key (core::ScenarioSpec::key()) is `scenario_key` and whose
/// configured base seed is `base_seed`.
///
/// The stream is a two-stage SplitMix64 derivation: (scenario_key, base_seed)
/// select a per-scenario stream, and the replication index selects the member
/// seed within it. Constant time, deterministic across processes and thread
/// schedules, and decorrelated both across replications and from
/// core::SweepEngine's per-point golden-ratio seeds (which XOR the base seed
/// directly, without the SplitMix64 mixing stage).
std::uint64_t replication_seed(std::uint64_t scenario_key, std::uint64_t base_seed,
                               std::uint64_t replication);

/// Resolves `cfg`'s failure description against `net` into the concrete
/// fault overlay (explicit lists + seeded random draw, hot node protected
/// under hot-spot traffic). The single resolution path shared by Network
/// wiring, the reliability engine and the tests — so they can never disagree
/// on which elements failed. Returns the empty overlay when cfg has no
/// failures.
topo::FaultSet build_fault_set(const SimConfig& cfg, const topo::KAryNCube& net);

}  // namespace kncube::sim
