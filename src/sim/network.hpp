// The assembled network: a k-ary n-cube of routers plus the synchronous
// cycle engine. Phases run across *all* routers before the next phase starts,
// so every router observes the same globally-consistent start-of-cycle state;
// transfers and credit returns staged during a cycle become visible at the
// next one (Router::commit).
//
// Scheduling: step() rebuilds an active-router list each cycle by scanning
// the arena's two contiguous per-router scheduling words (RouterSoA::work /
// ::wake — see router.hpp) and runs the five phases only over that list — a
// quiescent router (nothing buffered or staged, empty source queues, no busy
// output VCs, no pending credit signals) provably performs no work in any
// phase, so skipping it is bit-identical to running it. Per-port stat_cycles
// is a single network-global counter advanced once per step (it is uniform
// across ports by construction). Routers that receive a flit mid-cycle still
// commit their staged arrivals at the cycle boundary, detected from the wake
// word's arrival half without touching the router object.
//
// Sharding (DESIGN.md §9): with SimConfig::sim_threads > 1 the router-id
// range splits into contiguous shards, one ThreadTeam member each, and every
// phase runs shard-parallel with a SpinBarrier between phases. Cross-shard
// writes land only in single-writer staged slots (read by the owner at
// commit, after the pre-commit barrier) and relaxed atomic sum counters, and
// per-shard metric/occupancy deltas replay into Metrics in shard (router-id)
// order at the cycle boundary — so every result is bit-identical to the
// serial schedule, for any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/config.hpp"
#include "sim/metrics.hpp"
#include "sim/router.hpp"
#include "topology/fault_set.hpp"
#include "topology/torus.hpp"
#include "util/thread_pool.hpp"

namespace kncube::sim {

class Network {
 public:
  explicit Network(const SimConfig& cfg);

  const topo::KAryNCube& topology() const noexcept { return topo_; }
  /// The resolved fault overlay (empty when the config has no failures).
  const topo::FaultSet& faults() const noexcept { return faults_; }
  /// False for failed routers: they inject nothing and eject nothing.
  bool node_alive(topo::NodeId id) const noexcept {
    return !faults_.router_failed(id);
  }
  /// True when the deterministic route src -> dst crosses no failed element
  /// (always true on a pristine network). O(1).
  bool pair_reachable(topo::NodeId src, topo::NodeId dst) const noexcept {
    return faults_.reachable(src, dst);
  }
  Router& router(topo::NodeId id) { return routers_[id]; }
  const Router& router(topo::NodeId id) const { return routers_[id]; }
  topo::NodeId size() const noexcept { return topo_.size(); }

  /// Router shards actually stepping in parallel (1 = serial loop): the
  /// configured sim_threads resolved against hardware and network size.
  std::size_t shard_count() const noexcept { return shards_.size(); }
  /// Shards the sim_threads knob asked for (hardware concurrency when 0),
  /// *before* the network-size clamp. shard_count() < requested_shard_count()
  /// means the network was too small to honour the request.
  std::size_t requested_shard_count() const noexcept {
    return requested_shards_;
  }

  /// Advances the whole network by one cycle.
  void step(std::uint64_t cycle, Metrics& metrics);

  void enqueue_message(const QueuedMessage& msg);

  /// Flits resident in any router buffer or in-flight staging slot
  /// (excludes messages still waiting, unmaterialised, in source queues).
  /// O(1): maintained incrementally at the cycle boundary from the shard
  /// deltas; debug builds assert it against the full router scan.
  std::uint64_t inflight_flits() const;
  /// Messages waiting in source queues across all nodes (unmaterialised).
  /// O(1), incrementally maintained like inflight_flits().
  std::uint64_t source_backlog() const;

  void reset_channel_stats();

  struct ChannelSummary {
    double mean_utilization = 0.0;
    double max_utilization = 0.0;
    /// Flit-weighted mean VC multiplexing degree over busy channels.
    double mean_vc_multiplexing = 1.0;
  };
  ChannelSummary channel_summary() const;

  /// Utilisation of a specific output channel (node, dim, dir).
  double channel_utilization(topo::NodeId node, int dim, topo::Direction dir) const;

 private:
  /// One contiguous router-id range stepped by one team member.
  struct Shard {
    topo::NodeId begin = 0;
    topo::NodeId end = 0;
    std::vector<Router*> active;  ///< per-cycle scratch, rebuilt each cycle
    StepDelta delta;              ///< per-cycle metric/occupancy buffer
  };

  /// Runs one full cycle for shard `s`: active-list rebuild, the five phases
  /// (with a barrier between every stage when sharded) and the commit pass
  /// over the shard's id range.
  void step_shard(std::size_t s);
  void phase_barrier() noexcept {
    if (barrier_) barrier_->arrive_and_wait();
  }

  std::uint64_t scan_inflight_flits() const;
  std::uint64_t scan_source_backlog() const;

  topo::KAryNCube topo_;
  topo::FaultSet faults_;
  RouterSoA soa_;  ///< the arena every router's mutable state lives in
  std::vector<Router> routers_;  ///< contiguous; reserved up front, never reallocated
  std::vector<Shard> shards_;
  std::unique_ptr<util::ThreadTeam> team_;      ///< only when shard_count() > 1
  std::unique_ptr<util::SpinBarrier> barrier_;  ///< ditto
  std::uint32_t message_length_;
  // Incremental occupancy (satisfies the O(routers)-scan-per-poll problem):
  // enqueue_message bumps backlog_; each step folds the shard deltas —
  // a refilled message moves 1 off the backlog and Lm flits into flight, an
  // ejected flit leaves flight; switch transfers are flight-neutral.
  std::uint64_t inflight_ = 0;
  std::uint64_t backlog_ = 0;
  std::size_t requested_shards_ = 1;  ///< pre-clamp sim_threads resolution
};

}  // namespace kncube::sim
