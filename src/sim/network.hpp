// The assembled network: a k-ary n-cube of routers plus the synchronous
// cycle engine. Phases run across *all* routers before the next phase starts,
// so every router observes the same globally-consistent start-of-cycle state;
// transfers and credit returns staged during a cycle become visible at the
// next one (Router::commit).
//
// Scheduling: step() rebuilds an active-router list each cycle from the
// routers' O(1) quiescence predicate and runs the five phases only over that
// list — a quiescent router (nothing buffered or staged, empty source
// queues, no busy output VCs, no pending credit signals) provably performs
// no work in any phase, so skipping it is bit-identical to running it. Its
// only bookkeeping, the per-port stat_cycles advance, is folded in lazily
// (Router::note_idle_cycle / flush). Routers that receive a flit mid-cycle
// still commit their staged arrivals at the cycle boundary.
#pragma once

#include <memory>
#include <vector>

#include "sim/config.hpp"
#include "sim/metrics.hpp"
#include "sim/router.hpp"
#include "topology/torus.hpp"

namespace kncube::sim {

class Network {
 public:
  explicit Network(const SimConfig& cfg);

  const topo::KAryNCube& topology() const noexcept { return topo_; }
  Router& router(topo::NodeId id) { return *routers_[id]; }
  const Router& router(topo::NodeId id) const { return *routers_[id]; }
  topo::NodeId size() const noexcept { return topo_.size(); }

  /// Advances the whole network by one cycle.
  void step(std::uint64_t cycle, Metrics& metrics);

  void enqueue_message(const QueuedMessage& msg);

  /// Flits resident in any router buffer or in-flight staging slot
  /// (excludes messages still waiting, unmaterialised, in source queues).
  std::uint64_t inflight_flits() const;
  /// Messages waiting in source queues across all nodes (unmaterialised).
  std::uint64_t source_backlog() const;

  void reset_channel_stats();

  struct ChannelSummary {
    double mean_utilization = 0.0;
    double max_utilization = 0.0;
    /// Flit-weighted mean VC multiplexing degree over busy channels.
    double mean_vc_multiplexing = 1.0;
  };
  ChannelSummary channel_summary() const;

  /// Utilisation of a specific output channel (node, dim, dir).
  double channel_utilization(topo::NodeId node, int dim, topo::Direction dir) const;

 private:
  topo::KAryNCube topo_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<Router*> active_;  ///< per-cycle scratch, rebuilt by step()
  std::uint32_t message_length_;
};

}  // namespace kncube::sim
