// Traffic generation: destination patterns and arrival processes.
//
// Destinations and arrivals are split so any pattern can be driven by any
// arrival process. Both are deterministic functions of the per-node RNG
// stream, so a simulation is reproducible from (config, seed).
#pragma once

#include <memory>

#include "sim/config.hpp"
#include "topology/torus.hpp"
#include "util/rng.hpp"

namespace kncube::sim {

/// Chooses a destination for a message generated at `src`. Implementations
/// never return `src` itself (messages to self are meaningless in the model).
class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;
  virtual topo::NodeId pick_dest(topo::NodeId src, util::Xoshiro256& rng) = 0;
};

/// Uniform over the other N-1 nodes.
class UniformTraffic final : public TrafficPattern {
 public:
  explicit UniformTraffic(topo::NodeId size) : size_(size) {}
  topo::NodeId pick_dest(topo::NodeId src, util::Xoshiro256& rng) override;

 private:
  topo::NodeId size_;
};

/// Pfister–Norton hot-spot traffic (paper assumption ii): probability h to
/// the hot node, else uniform over the other N-1 nodes (the hot node remains
/// a legal uniform destination). The hot node generates only uniform traffic.
class HotspotTraffic final : public TrafficPattern {
 public:
  HotspotTraffic(topo::NodeId size, topo::NodeId hot, double h);
  topo::NodeId pick_dest(topo::NodeId src, util::Xoshiro256& rng) override;

  topo::NodeId hot_node() const noexcept { return hot_; }
  double hot_fraction() const noexcept { return h_; }

 private:
  topo::NodeId size_;
  topo::NodeId hot_;
  double h_;
};

/// Matrix-transpose permutation for the 2-D torus: (x, y) -> (y, x).
/// Diagonal nodes (x == y) have no transpose partner and fall back to a
/// uniform destination so every node offers the same load.
class TransposeTraffic final : public TrafficPattern {
 public:
  explicit TransposeTraffic(const topo::KAryNCube& net);
  topo::NodeId pick_dest(topo::NodeId src, util::Xoshiro256& rng) override;

 private:
  const topo::KAryNCube& net_;
};

/// dest = (N-1) - src; self-mapping is impossible for even N, asserted at
/// construction.
class BitComplementTraffic final : public TrafficPattern {
 public:
  explicit BitComplementTraffic(topo::NodeId size);
  topo::NodeId pick_dest(topo::NodeId src, util::Xoshiro256& rng) override;

 private:
  topo::NodeId size_;
};

/// Reverse the log2(N) address bits. Requires N to be a power of two;
/// palindromic addresses fall back to uniform.
class BitReversalTraffic final : public TrafficPattern {
 public:
  explicit BitReversalTraffic(topo::NodeId size);
  topo::NodeId pick_dest(topo::NodeId src, util::Xoshiro256& rng) override;

 private:
  topo::NodeId size_;
  int bits_;
};

/// Per-node arrival process; fire() is polled once per node per cycle.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  virtual bool fire(util::Xoshiro256& rng) = 0;
  /// Long-run mean arrivals per cycle (for offered-load accounting).
  virtual double mean_rate() const = 0;
};

/// Bernoulli(rate) per cycle: the discrete-time Poisson stand-in.
class BernoulliArrivals final : public ArrivalProcess {
 public:
  explicit BernoulliArrivals(double rate);
  bool fire(util::Xoshiro256& rng) override;
  double mean_rate() const override { return rate_; }

 private:
  double rate_;
};

/// Two-state Markov-modulated Bernoulli process (bursty traffic, the paper's
/// §5 future-work extension). State transitions occur per cycle; the burst
/// state fires at `burst_rate`, the idle state at `idle_rate`, chosen so the
/// long-run mean equals the requested rate.
class MmppArrivals final : public ArrivalProcess {
 public:
  MmppArrivals(double mean_rate, const MmppParams& params);
  bool fire(util::Xoshiro256& rng) override;
  double mean_rate() const override { return mean_rate_; }

  double burst_rate() const noexcept { return burst_rate_; }
  double idle_rate() const noexcept { return idle_rate_; }
  /// Stationary probability of the burst state.
  double burst_state_probability() const noexcept { return pi_burst_; }

 private:
  double mean_rate_;
  double p_enter_;
  double p_leave_;
  double pi_burst_;
  double burst_rate_;
  double idle_rate_;
  bool in_burst_ = false;
};

/// Factory helpers mapping SimConfig enums to concrete instances.
std::unique_ptr<TrafficPattern> make_pattern(const SimConfig& cfg,
                                             const topo::KAryNCube& net);
std::unique_ptr<ArrivalProcess> make_arrivals(const SimConfig& cfg);

}  // namespace kncube::sim
