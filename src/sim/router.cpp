#include "sim/router.hpp"

#include "util/assert.hpp"

namespace kncube::sim {

Router::Router(const topo::KAryNCube& net, topo::NodeId id, int vcs, int buffer_depth)
    : net_(net),
      id_(id),
      vcs_(vcs),
      buffer_depth_(buffer_depth),
      net_ports_(net.channels_per_node()) {
  KNC_ASSERT(vcs >= 1 && buffer_depth >= 1);
  in_vcs_.resize(static_cast<std::size_t>((net_ports_ + 1) * vcs_));
  out_.resize(static_cast<std::size_t>(net_ports_));
  for (auto& op : out_) {
    op.vcs.assign(static_cast<std::size_t>(vcs_), OutputVc{false, buffer_depth_});
    op.staged_credits.assign(static_cast<std::size_t>(vcs_), 0);
    op.staged_release.assign(static_cast<std::size_t>(vcs_), 0);
  }
  upstream_.assign(static_cast<std::size_t>(net_ports_), nullptr);
  staged_in_.resize(static_cast<std::size_t>(net_ports_));
  source_q_.resize(static_cast<std::size_t>(vcs_));
}

int Router::out_port_for(int dim, topo::Direction dir) const noexcept {
  return net_.bidirectional() ? 2 * dim + static_cast<int>(dir) : dim;
}

int Router::port_dim(int port) const noexcept {
  return net_.bidirectional() ? port / 2 : port;
}

topo::Direction Router::port_dir(int port) const noexcept {
  return net_.bidirectional() ? static_cast<topo::Direction>(port % 2)
                              : topo::Direction::kPlus;
}

void Router::connect(int out_port, Router* down, int down_port) {
  auto& op = out_[static_cast<std::size_t>(out_port)];
  op.down = down;
  op.down_port = down_port;
}

void Router::connect_upstream(int in_port, OutputPort* upstream) {
  upstream_[static_cast<std::size_t>(in_port)] = upstream;
}

int Router::class_vc_begin(int cls) const noexcept {
  return cls == 0 ? 0 : (vcs_ + 1) / 2;
}

int Router::class_vc_end(int cls) const noexcept {
  return cls == 0 ? (vcs_ + 1) / 2 : vcs_;
}

int Router::vc_class_for(const Flit& head, int dim, topo::Direction dir) const noexcept {
  // The message entered this ring at its source coordinate (earlier
  // dimensions were fully corrected before dimension `dim`, later ones are
  // untouched), so whether the wrap-around link has been crossed is derivable
  // from the source coordinate alone: travelling (+) from s, positions before
  // the wrap satisfy c >= s and after it c < s (and symmetrically for (-)).
  const int s = net_.coord(head.src, dim);
  const int c = net_.coord(id_, dim);
  if (dir == topo::Direction::kPlus) return c < s ? 1 : 0;
  return c > s ? 1 : 0;
}

Flit Router::pop_and_credit(int port, int vc) {
  InputVc& in = ivc(port, vc);
  KNC_DEBUG_ASSERT(!in.buffer.empty());
  Flit f = in.buffer.front();
  in.buffer.pop_front();
  if (port < net_ports_) {
    OutputPort* up = upstream_[static_cast<std::size_t>(port)];
    KNC_DEBUG_ASSERT(up != nullptr);
    ++up->staged_credits[static_cast<std::size_t>(vc)];
    if (f.tail) {
      KNC_DEBUG_ASSERT(in.buffer.empty());  // tail is the last flit
      up->staged_release[static_cast<std::size_t>(vc)] = 1;
      in.active = false;
    }
  }
  return f;
}

void Router::refill_injection() {
  const int inj = injection_port();
  for (int v = 0; v < vcs_; ++v) {
    InputVc& in = ivc(inj, v);
    auto& q = source_q_[static_cast<std::size_t>(v)];
    if (!in.buffer.empty() || in.route_out != -1 || q.empty()) continue;
    const QueuedMessage msg = q.front();
    q.pop_front();
    for (std::uint32_t seq = 0; seq < message_length_; ++seq) {
      Flit f;
      f.msg = msg.id;
      f.src = msg.src;
      f.dest = msg.dest;
      f.seq = seq;
      f.gen_cycle = msg.gen_cycle;
      f.head = seq == 0;
      f.tail = seq + 1 == message_length_;
      in.buffer.push_back(f);
    }
  }
}

void Router::phase_eject(std::uint64_t cycle, Metrics& metrics) {
  // Unlimited ejection bandwidth (assumption iv): drain every destined flit
  // at a buffer head this cycle. Flits of one message arrive in order on a
  // single VC, so draining per-VC preserves message ordering.
  for (int p = 0; p < net_ports_; ++p) {
    for (int v = 0; v < vcs_; ++v) {
      InputVc& in = ivc(p, v);
      while (!in.buffer.empty() && in.buffer.front().dest == id_) {
        const Flit f = pop_and_credit(p, v);
        metrics.on_flit_delivered();
        if (f.tail) metrics.on_delivered(f.msg, f.gen_cycle, cycle, f.dest);
      }
    }
  }
}

void Router::phase_route() {
  const int total_ports = net_ports_ + 1;
  for (int p = 0; p < total_ports; ++p) {
    for (int v = 0; v < vcs_; ++v) {
      InputVc& in = ivc(p, v);
      if (in.route_out != -1 || in.buffer.empty()) continue;
      const Flit& f = in.buffer.front();
      if (!f.head) continue;  // cannot happen for well-formed streams
      KNC_DEBUG_ASSERT(f.dest != id_);  // destined flits were ejected already
      const int dim = net_.next_route_dim(id_, f.dest);
      KNC_DEBUG_ASSERT(dim >= 0);
      const topo::Direction dir =
          net_.ring_direction(net_.coord(id_, dim), net_.coord(f.dest, dim));
      in.route_out = out_port_for(dim, dir);
    }
  }
}

void Router::phase_vc_alloc() {
  const int total_vcs = (net_ports_ + 1) * vcs_;
  for (int op_idx = 0; op_idx < net_ports_; ++op_idx) {
    OutputPort& op = out_[static_cast<std::size_t>(op_idx)];
    // Round-robin over input VCs requesting this output port.
    for (int off = 0; off < total_vcs; ++off) {
      const int i = (static_cast<int>(op.rr_vc) + off) % total_vcs;
      InputVc& in = in_vcs_[static_cast<std::size_t>(i)];
      if (in.route_out != op_idx || in.out_vc != -1 || in.buffer.empty()) continue;
      const Flit& head = in.buffer.front();
      KNC_DEBUG_ASSERT(head.head);
      const int cls =
          vc_class_for(head, port_dim(op_idx), port_dir(op_idx));
      int granted = -1;
      for (int v = class_vc_begin(cls); v < class_vc_end(cls); ++v) {
        if (!op.vcs[static_cast<std::size_t>(v)].busy) {
          granted = v;
          break;
        }
      }
      if (granted < 0) continue;  // no free VC in this class right now
      in.out_vc = granted;
      op.vcs[static_cast<std::size_t>(granted)].busy = true;
      op.rr_vc = static_cast<std::uint32_t>((i + 1) % total_vcs);
    }
  }
}

void Router::phase_switch(std::uint64_t cycle, Metrics& metrics) {
  const int total_vcs = (net_ports_ + 1) * vcs_;
  for (int op_idx = 0; op_idx < net_ports_; ++op_idx) {
    OutputPort& op = out_[static_cast<std::size_t>(op_idx)];
    // One flit per output physical channel per cycle: round-robin among the
    // input VCs that hold an allocation, have a flit and downstream credit.
    for (int off = 0; off < total_vcs; ++off) {
      const int i = (static_cast<int>(op.rr_sw) + off) % total_vcs;
      InputVc& in = in_vcs_[static_cast<std::size_t>(i)];
      if (in.route_out != op_idx || in.out_vc == -1 || in.buffer.empty()) continue;
      if (op.vcs[static_cast<std::size_t>(in.out_vc)].credits <= 0) continue;

      const int port = i / vcs_;
      const int vc = i % vcs_;
      const int out_vc = in.out_vc;
      Flit f = pop_and_credit(port, vc);
      --op.vcs[static_cast<std::size_t>(out_vc)].credits;
      ++op.flits_sent;
      KNC_DEBUG_ASSERT(op.down != nullptr);
      KNC_DEBUG_ASSERT(!op.down->staged_in_[static_cast<std::size_t>(op.down_port)]);
      op.down->staged_in_[static_cast<std::size_t>(op.down_port)] =
          std::make_pair(out_vc, f);

      if (port == injection_port() && f.head) {
        metrics.on_injected(f.msg, f.gen_cycle, cycle);
      }
      if (f.tail) {
        // The message releases *this* input VC; the downstream (output) VC
        // stays busy until the tail leaves the downstream buffer.
        in.route_out = -1;
        in.out_vc = -1;
      }
      op.rr_sw = static_cast<std::uint32_t>((i + 1) % total_vcs);
      break;  // physical channel bandwidth: one flit per cycle
    }
  }
}

void Router::commit() {
  // 1. Arrivals become visible.
  for (int p = 0; p < net_ports_; ++p) {
    auto& slot = staged_in_[static_cast<std::size_t>(p)];
    if (!slot) continue;
    const auto& [vc, f] = *slot;
    InputVc& in = ivc(p, vc);
    if (f.head) {
      KNC_ASSERT_MSG(in.buffer.empty() && !in.active && in.route_out == -1,
                     "head flit arrived at an occupied VC");
      in.active = true;
    } else {
      KNC_DEBUG_ASSERT(in.active);
    }
    in.buffer.push_back(f);
    KNC_ASSERT_MSG(static_cast<int>(in.buffer.size()) <= buffer_depth_,
                   "buffer overflow: credit accounting broken");
    slot.reset();
  }
  // 2. Credits and VC releases from downstream become visible.
  for (auto& op : out_) {
    for (std::size_t v = 0; v < op.vcs.size(); ++v) {
      OutputVc& ovc = op.vcs[v];
      ovc.credits += op.staged_credits[v];
      op.staged_credits[v] = 0;
      KNC_ASSERT_MSG(ovc.credits <= buffer_depth_, "credit overflow");
      if (op.staged_release[v]) {
        KNC_ASSERT_MSG(ovc.busy, "release of a free VC");
        KNC_ASSERT_MSG(ovc.credits == buffer_depth_,
                       "VC released while flits remain downstream");
        ovc.busy = false;
        op.staged_release[v] = 0;
      }
    }
    // 3. Channel occupancy statistics.
    std::uint64_t busy = 0;
    for (const auto& ovc : op.vcs) busy += ovc.busy ? 1 : 0;
    ++op.stat_cycles;
    if (busy) {
      op.busy_vc_cycles += busy;
      op.busy_vc_sq_cycles += busy * busy;
      ++op.busy_cycles;
    }
  }
}

void Router::enqueue_message(const QueuedMessage& msg, std::uint32_t lm) {
  KNC_ASSERT_MSG(msg.dest != id_, "self-addressed message");
  KNC_ASSERT_MSG(message_length_ == 0 || message_length_ == lm,
                 "mixed message lengths are not modelled");
  message_length_ = lm;
  source_q_[next_inject_vc_].push_back(msg);
  next_inject_vc_ = (next_inject_vc_ + 1) % static_cast<std::uint32_t>(vcs_);
}

std::uint64_t Router::source_queue_length() const noexcept {
  std::uint64_t total = 0;
  for (const auto& q : source_q_) total += q.size();
  return total;
}

const Router::InputVc& Router::input_vc(int port, int vc) const {
  return in_vcs_[static_cast<std::size_t>(port * vcs_ + vc)];
}

const Router::OutputPort& Router::output_port(int port) const {
  return out_[static_cast<std::size_t>(port)];
}

Router::OutputPort& Router::output_port_mutable(int port) {
  return out_[static_cast<std::size_t>(port)];
}

std::uint64_t Router::buffered_flits() const noexcept {
  std::uint64_t total = 0;
  for (const auto& in : in_vcs_) total += in.buffer.size();
  for (const auto& slot : staged_in_) total += slot ? 1u : 0u;
  return total;
}

}  // namespace kncube::sim
