#include "sim/router.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"

namespace kncube::sim {

namespace {

std::uint32_t pow2_ceil(std::uint32_t v) {
  return std::bit_ceil(std::max<std::uint32_t>(v, 1));
}

}  // namespace

void RouterSoA::init(topo::NodeId routers, int ports_, int vcs_,
                     int buffer_depth, std::uint32_t message_length) {
  KNC_ASSERT(vcs_ >= 1 && buffer_depth >= 1 && message_length >= 1);
  ports = ports_;
  vcs = vcs_;
  in_lanes = (ports + 1) * vcs;
  out_lanes = ports * vcs;

  // Ring capacities: network VCs hold at most buffer_depth flits (credit
  // flow control); injection VCs hold one fully-materialised message. The
  // lane geometry is identical for every router, so one base/mask table
  // serves them all.
  const std::uint32_t cap_net =
      pow2_ceil(static_cast<std::uint32_t>(buffer_depth));
  const std::uint32_t cap_inj = pow2_ceil(message_length);
  lane_base.resize(static_cast<std::size_t>(in_lanes));
  lane_mask.resize(static_cast<std::size_t>(in_lanes));
  std::uint32_t base = 0;
  for (int p = 0; p <= ports; ++p) {
    const std::uint32_t cap = p == ports ? cap_inj : cap_net;
    for (int v = 0; v < vcs; ++v) {
      lane_base[static_cast<std::size_t>(p * vcs + v)] = base;
      lane_mask[static_cast<std::size_t>(p * vcs + v)] = cap - 1;
      base += cap;
    }
  }
  slab_stride = base;

  const auto n = static_cast<std::size_t>(routers);
  const std::size_t n_in = n * static_cast<std::size_t>(in_lanes);
  const std::size_t n_out = n * static_cast<std::size_t>(out_lanes);
  const std::size_t n_ports = n * static_cast<std::size_t>(ports);

  vc_head.assign(n_in, 0);
  vc_count.assign(n_in, 0);
  vc_route.assign(n_in, -1);
  vc_outvc.assign(n_in, -1);
  vc_active.assign(n_in, 0);
  slab.assign(n * slab_stride, Flit{});

  out_busy.assign(n_out, 0);
  out_credits.assign(n_out, static_cast<std::int32_t>(buffer_depth));
  staged_credits.assign(n_out, 0);
  staged_release.assign(n_out, 0);

  rr_vc.assign(n_ports, 0);
  rr_sw.assign(n_ports, 0);
  busy_now.assign(n_ports, 0);
  flits_sent.assign(n_ports, 0);
  busy_vc_cycles.assign(n_ports, 0);
  busy_vc_sq_cycles.assign(n_ports, 0);
  busy_cycles.assign(n_ports, 0);
  req.assign(n_ports * static_cast<std::size_t>(in_lanes), 0);
  req_count.assign(n_ports, 0);

  staged_flit.assign(n_ports, Flit{});
  staged_vc.assign(n_ports, -1);

  work.assign(n, 0);
  wake = std::make_unique<std::atomic<std::uint32_t>[]>(n);  // zero-init
  stat_cycles = 0;
}

Router::Router(const topo::KAryNCube& net, topo::NodeId id, int vcs,
               int buffer_depth, std::uint32_t message_length, RouterSoA* soa)
    : net_(net),
      soa_(soa),
      id_(id),
      vcs_(vcs),
      buffer_depth_(buffer_depth),
      net_ports_(net.channels_per_node()),
      in_lanes_((net.channels_per_node() + 1) * vcs),
      message_length_(message_length) {
  KNC_ASSERT(soa_ != nullptr && soa_->vcs == vcs_ &&
             soa_->ports == net_ports_ && soa_->in_lanes == in_lanes_);
  const auto r = static_cast<std::size_t>(id_);
  const std::size_t in0 = r * static_cast<std::size_t>(soa_->in_lanes);
  const std::size_t out0 = r * static_cast<std::size_t>(soa_->out_lanes);
  const std::size_t p0 = r * static_cast<std::size_t>(soa_->ports);

  head_ = soa_->vc_head.data() + in0;
  count_ = soa_->vc_count.data() + in0;
  route_ = soa_->vc_route.data() + in0;
  outvc_ = soa_->vc_outvc.data() + in0;
  active_ = soa_->vc_active.data() + in0;
  lane_base_ = soa_->lane_base.data();
  lane_mask_ = soa_->lane_mask.data();
  slab_ = soa_->slab.data() + r * soa_->slab_stride;
  out_busy_ = soa_->out_busy.data() + out0;
  out_credits_ = soa_->out_credits.data() + out0;
  staged_credits_ = soa_->staged_credits.data() + out0;
  staged_release_ = soa_->staged_release.data() + out0;
  rr_vc_ = soa_->rr_vc.data() + p0;
  rr_sw_ = soa_->rr_sw.data() + p0;
  busy_now_ = soa_->busy_now.data() + p0;
  flits_sent_ = soa_->flits_sent.data() + p0;
  busy_vc_cycles_ = soa_->busy_vc_cycles.data() + p0;
  busy_vc_sq_cycles_ = soa_->busy_vc_sq_cycles.data() + p0;
  busy_cycles_ = soa_->busy_cycles.data() + p0;
  req_ = soa_->req.data() + p0 * static_cast<std::size_t>(in_lanes_);
  req_count_ = soa_->req_count.data() + p0;
  staged_flit_ = soa_->staged_flit.data() + p0;
  staged_vc_ = soa_->staged_vc.data() + p0;
  work_ = soa_->work.data() + r;
  wake_ = soa_->wake.get() + r;

  down_.assign(static_cast<std::size_t>(net_ports_), nullptr);
  down_port_.assign(static_cast<std::size_t>(net_ports_), -1);
  up_router_.assign(static_cast<std::size_t>(net_ports_), nullptr);
  up_port_.assign(static_cast<std::size_t>(net_ports_), -1);
  source_q_.resize(static_cast<std::size_t>(vcs_));
}

int Router::out_port_for(int dim, topo::Direction dir) const noexcept {
  return net_.bidirectional() ? 2 * dim + static_cast<int>(dir) : dim;
}

int Router::port_dim(int port) const noexcept {
  return net_.bidirectional() ? port / 2 : port;
}

topo::Direction Router::port_dir(int port) const noexcept {
  return net_.bidirectional() ? static_cast<topo::Direction>(port % 2)
                              : topo::Direction::kPlus;
}

void Router::connect(int out_port, Router* down, int down_port) {
  down_[static_cast<std::size_t>(out_port)] = down;
  down_port_[static_cast<std::size_t>(out_port)] = down_port;
}

void Router::connect_upstream(int in_port, Router* up, int up_port) {
  up_router_[static_cast<std::size_t>(in_port)] = up;
  up_port_[static_cast<std::size_t>(in_port)] = up_port;
}

void Router::requesters_insert(int port, std::int32_t index) {
  std::int32_t* seg = req_ + static_cast<std::size_t>(port) * in_lanes_;
  std::int32_t& n = req_count_[port];
  std::int32_t* it = std::lower_bound(seg, seg + n, index);
  KNC_DEBUG_ASSERT(it == seg + n || *it != index);
  std::copy_backward(it, seg + n, seg + n + 1);
  *it = index;
  ++n;
}

void Router::requesters_erase(int port, std::int32_t index) {
  std::int32_t* seg = req_ + static_cast<std::size_t>(port) * in_lanes_;
  std::int32_t& n = req_count_[port];
  std::int32_t* it = std::lower_bound(seg, seg + n, index);
  KNC_DEBUG_ASSERT(it != seg + n && *it == index);
  std::copy(it + 1, seg + n, it);
  --n;
}

int Router::class_vc_begin(int cls) const noexcept {
  // A mesh has no wrap-around link, so dimension-order routing is acyclic
  // and needs no dateline split: class 0 spans every VC (class 1 is never
  // requested — vc_class_for cannot return 1 without a crossed wrap).
  if (net_.mesh()) return 0;
  return cls == 0 ? 0 : (vcs_ + 1) / 2;
}

int Router::class_vc_end(int cls) const noexcept {
  if (net_.mesh()) return vcs_;
  return cls == 0 ? (vcs_ + 1) / 2 : vcs_;
}

int Router::vc_class_for(const Flit& head, int dim, topo::Direction dir) const noexcept {
  // The message entered this ring at its source coordinate (earlier
  // dimensions were fully corrected before dimension `dim`, later ones are
  // untouched), so whether the wrap-around link has been crossed is derivable
  // from the source coordinate alone: travelling (+) from s, positions before
  // the wrap satisfy c >= s and after it c < s (and symmetrically for (-)).
  // On a mesh a (+) message never sits below its source coordinate (nor a
  // (-) message above it), so this naturally evaluates to class 0 there.
  const int s = net_.coord(head.src, dim);
  const int c = net_.coord(id_, dim);
  if (dir == topo::Direction::kPlus) return c < s ? 1 : 0;
  return c > s ? 1 : 0;
}

Flit Router::pop_and_credit(int port, int vc) {
  const int lane = in_lane(port, vc);
  KNC_DEBUG_ASSERT(count_[lane] != 0);
  const Flit f = ring_pop(lane);
  if (port < net_ports_) {
    Router* up = up_router_[static_cast<std::size_t>(port)];
    KNC_DEBUG_ASSERT(up != nullptr);
    const int up_lane = up_port_[static_cast<std::size_t>(port)] * vcs_ + vc;
    ++up->staged_credits_[up_lane];
    up->wake_->fetch_add(kWakeSignalUnit, std::memory_order_relaxed);
    if (f.tail) {
      KNC_DEBUG_ASSERT(count_[lane] == 0);  // tail is the last flit
      up->staged_release_[up_lane] = 1;
      active_[lane] = 0;
    }
  }
  return f;
}

void Router::refill_injection(StepDelta& delta) {
  const int lane0 = injection_port() * vcs_;
  for (int v = 0; v < vcs_; ++v) {
    const int lane = lane0 + v;
    auto& q = source_q_[static_cast<std::size_t>(v)];
    if (count_[lane] != 0 || route_[lane] != -1 || q.empty()) continue;
    const QueuedMessage msg = q.front();
    q.pop_front();
    --source_total_;
    --*work_;
    ++delta.messages_refilled;
    for (std::uint32_t seq = 0; seq < message_length_; ++seq) {
      Flit f;
      f.msg = msg.id;
      f.src = msg.src;
      f.dest = msg.dest;
      f.seq = seq;
      f.gen_cycle = msg.gen_cycle;
      f.head = seq == 0;
      f.tail = seq + 1 == message_length_;
      ring_push(lane, f);
    }
  }
}

void Router::phase_eject(StepDelta& delta) {
  // Unlimited ejection bandwidth (assumption iv): drain every destined flit
  // at a buffer head this cycle. Flits of one message arrive in order on a
  // single VC, so draining per-VC preserves message ordering.
  const int net_lanes = net_ports_ * vcs_;
  for (int lane = 0; lane < net_lanes; ++lane) {
    while (count_[lane] != 0 && ring_front(lane).dest == id_) {
      const Flit f = pop_and_credit(lane / vcs_, lane % vcs_);
      ++delta.flits_delivered;
      if (f.tail) delta.delivered.push_back({f.msg, f.gen_cycle, f.dest});
    }
  }
}

void Router::phase_route() {
  // Batch candidate scan over the contiguous lane arrays (integer predicate,
  // auto-vectorizable); the routing computation itself runs per candidate in
  // ascending lane order, which is exactly the original visit order.
  for (int lane = 0; lane < in_lanes_; ++lane) {
    if (route_[lane] != -1 || count_[lane] == 0) continue;
    const Flit& f = ring_front(lane);
    if (!f.head) continue;  // cannot happen for well-formed streams
    KNC_DEBUG_ASSERT(f.dest != id_);  // destined flits were ejected already
    const int dim = net_.next_route_dim(id_, f.dest);
    KNC_DEBUG_ASSERT(dim >= 0);
    const topo::Direction dir =
        net_.ring_direction(net_.coord(id_, dim), net_.coord(f.dest, dim));
    route_[lane] = out_port_for(dim, dir);
    requesters_insert(route_[lane], static_cast<std::int32_t>(lane));
  }
}

void Router::phase_vc_alloc() {
  // Round-robin over the input VCs requesting each output port, with the
  // seed semantics preserved exactly: the original loop visited
  // i = (rr_vc + off) % total_vcs for off = 0..total_vcs-1, re-reading rr_vc
  // each iteration while grants mutate it (a grant at (i, off) moves the
  // next visit to i + off + 2). Non-requesters can never be granted, so the
  // walk below jumps between requesters (sorted by index) while replaying
  // the identical (i, off) sequence.
  const int total_vcs = in_lanes_;
  for (int op_idx = 0; op_idx < net_ports_; ++op_idx) {
    const std::int32_t* seg = req_ + static_cast<std::size_t>(op_idx) * in_lanes_;
    const std::int32_t n = req_count_[op_idx];
    if (n == 0) continue;
    const std::uint8_t* busy = out_busy_ + op_idx * vcs_;
    int i = static_cast<int>(rr_vc_[op_idx]);
    int off = 0;
    while (off < total_vcs) {
      // Next requester at or cyclically after i.
      const std::int32_t* it = std::lower_bound(seg, seg + n, i);
      const int j = it == seg + n ? seg[0] : *it;
      off += (j - i + total_vcs) % total_vcs;
      if (off >= total_vcs) break;
      i = j;
      KNC_DEBUG_ASSERT(route_[i] == op_idx);
      int granted = -1;
      if (outvc_[i] == -1 && count_[i] != 0) {
        const Flit& head = ring_front(i);
        KNC_DEBUG_ASSERT(head.head);
        const int cls = vc_class_for(head, port_dim(op_idx), port_dir(op_idx));
        for (int v = class_vc_begin(cls); v < class_vc_end(cls); ++v) {
          if (!busy[v]) {
            granted = v;
            break;
          }
        }
      }
      if (granted >= 0) {
        outvc_[i] = granted;
        out_busy_[op_idx * vcs_ + granted] = 1;
        ++busy_now_[op_idx];
        ++busy_out_;
        ++*work_;
        rr_vc_[op_idx] = static_cast<std::uint32_t>((i + 1) % total_vcs);
        i = (i + off + 2) % total_vcs;
      } else {
        i = (i + 1) % total_vcs;
      }
      ++off;
    }
  }
}

void Router::phase_switch(StepDelta& delta) {
  const int total_vcs = in_lanes_;
  for (int op_idx = 0; op_idx < net_ports_; ++op_idx) {
    const std::int32_t* seg = req_ + static_cast<std::size_t>(op_idx) * in_lanes_;
    const std::int32_t n = req_count_[op_idx];
    if (n == 0) continue;
    // One flit per output physical channel per cycle: the first requester in
    // cyclic order from rr_sw that holds an allocation, has a flit and
    // downstream credit (the seed scanned every input VC in the same order;
    // only requesters can pass the eligibility test).
    const std::int32_t* start =
        std::lower_bound(seg, seg + n, static_cast<int>(rr_sw_[op_idx]));
    const std::int32_t first = static_cast<std::int32_t>(start - seg);
    for (std::int32_t step = 0; step < n; ++step) {
      std::int32_t pos = first + step;
      if (pos >= n) pos -= n;
      const int i = seg[pos];
      KNC_DEBUG_ASSERT(route_[i] == op_idx);
      if (outvc_[i] == -1 || count_[i] == 0) continue;
      const int out_vc = outvc_[i];
      if (out_credits_[op_idx * vcs_ + out_vc] <= 0) continue;

      const int port = i / vcs_;
      const int vc = i % vcs_;
      const Flit f = pop_and_credit(port, vc);
      --out_credits_[op_idx * vcs_ + out_vc];
      ++flits_sent_[op_idx];
      Router* down = down_[static_cast<std::size_t>(op_idx)];
      KNC_DEBUG_ASSERT(down != nullptr);
      const int down_port = down_port_[static_cast<std::size_t>(op_idx)];
      KNC_DEBUG_ASSERT(down->staged_vc_[down_port] < 0);
      down->staged_flit_[down_port] = f;
      down->staged_vc_[down_port] = out_vc;
      down->wake_->fetch_add(1, std::memory_order_relaxed);

      if (port == injection_port() && f.head) {
        delta.injected.push_back({f.msg, f.gen_cycle});
      }
      if (f.tail) {
        // The message releases *this* input VC; the downstream (output) VC
        // stays busy until the tail leaves the downstream buffer.
        route_[i] = -1;
        outvc_[i] = -1;
        requesters_erase(op_idx, i);
      }
      rr_sw_[op_idx] = static_cast<std::uint32_t>((i + 1) % total_vcs);
      break;  // physical channel bandwidth: one flit per cycle
    }
  }
}

void Router::apply_staged_arrivals() {
  for (int p = 0; p < net_ports_; ++p) {
    const int vc = staged_vc_[p];
    if (vc < 0) continue;
    const Flit& f = staged_flit_[p];
    const int lane = in_lane(p, vc);
    if (f.head) {
      KNC_ASSERT_MSG(count_[lane] == 0 && !active_[lane] && route_[lane] == -1,
                     "head flit arrived at an occupied VC");
      active_[lane] = 1;
    } else {
      KNC_DEBUG_ASSERT(active_[lane]);
    }
    ring_push(lane, f);
    KNC_ASSERT_MSG(static_cast<int>(count_[lane]) <= buffer_depth_,
                   "buffer overflow: credit accounting broken");
    staged_vc_[p] = -1;
  }
}

void Router::commit_arrivals() {
  const std::uint32_t w = wake_->load(std::memory_order_relaxed);
  if ((w & kWakeArrivalMask) == 0) return;
  // A router quiescent at the cycle start had no busy output VCs, so no
  // downstream neighbour can have staged credits or releases at it.
  KNC_DEBUG_ASSERT(w < kWakeSignalUnit);
  apply_staged_arrivals();
  wake_->store(0, std::memory_order_relaxed);
}

void Router::commit() {
  const std::uint32_t w = wake_->load(std::memory_order_relaxed);
  // 1. Arrivals become visible.
  if ((w & kWakeArrivalMask) != 0) apply_staged_arrivals();
  // 2. Credits and VC releases from downstream become visible. One batch
  //    pass over the router's contiguous output-lane arrays.
  if (w >= kWakeSignalUnit) {
    const int out_lanes = net_ports_ * vcs_;
    for (int l = 0; l < out_lanes; ++l) {
      out_credits_[l] += staged_credits_[l];
      staged_credits_[l] = 0;
      KNC_ASSERT_MSG(out_credits_[l] <= buffer_depth_, "credit overflow");
      if (staged_release_[l]) {
        KNC_ASSERT_MSG(out_busy_[l], "release of a free VC");
        KNC_ASSERT_MSG(out_credits_[l] == buffer_depth_,
                       "VC released while flits remain downstream");
        out_busy_[l] = 0;
        --busy_now_[l / vcs_];
        --busy_out_;
        --*work_;
        staged_release_[l] = 0;
      }
    }
  }
  if (w != 0) wake_->store(0, std::memory_order_relaxed);
  // 3. Channel occupancy statistics (stat_cycles is network-global; a
  //    quiescent router provably has busy_now == 0 on every port, so
  //    skipping commit entirely for it changes nothing here).
  for (int p = 0; p < net_ports_; ++p) {
    KNC_DEBUG_ASSERT(busy_now_[p] >= 0);
    const auto busy = static_cast<std::uint64_t>(busy_now_[p]);
    if (busy) {
      busy_vc_cycles_[p] += busy;
      busy_vc_sq_cycles_[p] += busy * busy;
      ++busy_cycles_[p];
    }
  }
}

void Router::enqueue_message(const QueuedMessage& msg, std::uint32_t lm) {
  KNC_ASSERT_MSG(msg.dest != id_, "self-addressed message");
  KNC_ASSERT_MSG(message_length_ == lm,
                 "mixed message lengths are not modelled");
  source_q_[next_inject_vc_].push_back(msg);
  ++source_total_;
  ++*work_;
  next_inject_vc_ = (next_inject_vc_ + 1) % static_cast<std::uint32_t>(vcs_);
}

Router::InputVc Router::input_vc(int port, int vc) const {
  const int lane = port * vcs_ + vc;
  InputVc in;
  in.base = lane_base_[lane];
  in.mask = lane_mask_[lane];
  in.head = head_[lane];
  in.count = count_[lane];
  in.route_out = route_[lane];
  in.out_vc = outvc_[lane];
  in.active = active_[lane] != 0;
  return in;
}

Router::OutputPort Router::output_port(int port) const {
  OutputPort op;
  op.vcs.resize(static_cast<std::size_t>(vcs_));
  for (int v = 0; v < vcs_; ++v) {
    op.vcs[static_cast<std::size_t>(v)] = {out_busy_[port * vcs_ + v] != 0,
                                           out_credits_[port * vcs_ + v]};
  }
  op.down = down_[static_cast<std::size_t>(port)];
  op.down_port = down_port_[static_cast<std::size_t>(port)];
  op.rr_vc = rr_vc_[port];
  op.rr_sw = rr_sw_[port];
  op.busy_now = busy_now_[port];
  const std::int32_t* seg = req_ + static_cast<std::size_t>(port) * in_lanes_;
  op.requesters.assign(seg, seg + req_count_[port]);
  op.flits_sent = flits_sent_[port];
  op.busy_vc_cycles = busy_vc_cycles_[port];
  op.busy_vc_sq_cycles = busy_vc_sq_cycles_[port];
  op.busy_cycles = busy_cycles_[port];
  op.stat_cycles = soa_->stat_cycles;
  return op;
}

}  // namespace kncube::sim
