#include "sim/router.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"

namespace kncube::sim {

namespace {

std::uint32_t pow2_ceil(std::uint32_t v) {
  return std::bit_ceil(std::max<std::uint32_t>(v, 1));
}

}  // namespace

Router::Router(const topo::KAryNCube& net, topo::NodeId id, int vcs,
               int buffer_depth, std::uint32_t message_length)
    : net_(net),
      id_(id),
      vcs_(vcs),
      buffer_depth_(buffer_depth),
      net_ports_(net.channels_per_node()),
      message_length_(message_length) {
  KNC_ASSERT(vcs >= 1 && buffer_depth >= 1 && message_length >= 1);
  in_vcs_.resize(static_cast<std::size_t>((net_ports_ + 1) * vcs_));

  // Ring capacities: network VCs hold at most buffer_depth flits (credit
  // flow control); injection VCs hold one fully-materialised message.
  const std::uint32_t cap_net = pow2_ceil(static_cast<std::uint32_t>(buffer_depth));
  const std::uint32_t cap_inj = pow2_ceil(message_length);
  std::uint32_t base = 0;
  for (int p = 0; p <= net_ports_; ++p) {
    const std::uint32_t cap = p == net_ports_ ? cap_inj : cap_net;
    for (int v = 0; v < vcs_; ++v) {
      InputVc& in = ivc(p, v);
      in.base = base;
      in.mask = cap - 1;
      base += cap;
    }
  }
  slab_.resize(base);

  out_.resize(static_cast<std::size_t>(net_ports_));
  for (auto& op : out_) {
    op.vcs.assign(static_cast<std::size_t>(vcs_), OutputVc{false, buffer_depth_});
    op.staged_credits.assign(static_cast<std::size_t>(vcs_), 0);
    op.staged_release.assign(static_cast<std::size_t>(vcs_), 0);
    op.requesters.reserve(static_cast<std::size_t>(vcs_) * 2);
  }
  up_router_.assign(static_cast<std::size_t>(net_ports_), nullptr);
  up_port_.assign(static_cast<std::size_t>(net_ports_), -1);
  staged_in_.resize(static_cast<std::size_t>(net_ports_));
  source_q_.resize(static_cast<std::size_t>(vcs_));
}

int Router::out_port_for(int dim, topo::Direction dir) const noexcept {
  return net_.bidirectional() ? 2 * dim + static_cast<int>(dir) : dim;
}

int Router::port_dim(int port) const noexcept {
  return net_.bidirectional() ? port / 2 : port;
}

topo::Direction Router::port_dir(int port) const noexcept {
  return net_.bidirectional() ? static_cast<topo::Direction>(port % 2)
                              : topo::Direction::kPlus;
}

void Router::connect(int out_port, Router* down, int down_port) {
  auto& op = out_[static_cast<std::size_t>(out_port)];
  op.down = down;
  op.down_port = down_port;
}

void Router::connect_upstream(int in_port, Router* up, int up_port) {
  up_router_[static_cast<std::size_t>(in_port)] = up;
  up_port_[static_cast<std::size_t>(in_port)] = up_port;
}

void Router::requesters_insert(OutputPort& op, std::int32_t index) {
  auto it = std::lower_bound(op.requesters.begin(), op.requesters.end(), index);
  KNC_DEBUG_ASSERT(it == op.requesters.end() || *it != index);
  op.requesters.insert(it, index);
}

void Router::requesters_erase(OutputPort& op, std::int32_t index) {
  auto it = std::lower_bound(op.requesters.begin(), op.requesters.end(), index);
  KNC_DEBUG_ASSERT(it != op.requesters.end() && *it == index);
  op.requesters.erase(it);
}

int Router::class_vc_begin(int cls) const noexcept {
  // A mesh has no wrap-around link, so dimension-order routing is acyclic
  // and needs no dateline split: class 0 spans every VC (class 1 is never
  // requested — vc_class_for cannot return 1 without a crossed wrap).
  if (net_.mesh()) return 0;
  return cls == 0 ? 0 : (vcs_ + 1) / 2;
}

int Router::class_vc_end(int cls) const noexcept {
  if (net_.mesh()) return vcs_;
  return cls == 0 ? (vcs_ + 1) / 2 : vcs_;
}

int Router::vc_class_for(const Flit& head, int dim, topo::Direction dir) const noexcept {
  // The message entered this ring at its source coordinate (earlier
  // dimensions were fully corrected before dimension `dim`, later ones are
  // untouched), so whether the wrap-around link has been crossed is derivable
  // from the source coordinate alone: travelling (+) from s, positions before
  // the wrap satisfy c >= s and after it c < s (and symmetrically for (-)).
  // On a mesh a (+) message never sits below its source coordinate (nor a
  // (-) message above it), so this naturally evaluates to class 0 there.
  const int s = net_.coord(head.src, dim);
  const int c = net_.coord(id_, dim);
  if (dir == topo::Direction::kPlus) return c < s ? 1 : 0;
  return c > s ? 1 : 0;
}

Flit Router::pop_and_credit(int port, int vc) {
  InputVc& in = ivc(port, vc);
  KNC_DEBUG_ASSERT(in.count != 0);
  const Flit f = ring_pop(in);
  if (port < net_ports_) {
    Router* up = up_router_[static_cast<std::size_t>(port)];
    KNC_DEBUG_ASSERT(up != nullptr);
    OutputPort& up_op = up->out_[static_cast<std::size_t>(up_port_[static_cast<std::size_t>(port)])];
    ++up_op.staged_credits[static_cast<std::size_t>(vc)];
    up->pending_signals_.fetch_add(1, std::memory_order_relaxed);
    if (f.tail) {
      KNC_DEBUG_ASSERT(in.count == 0);  // tail is the last flit
      up_op.staged_release[static_cast<std::size_t>(vc)] = 1;
      in.active = false;
    }
  }
  return f;
}

void Router::refill_injection(StepDelta& delta) {
  const int inj = injection_port();
  for (int v = 0; v < vcs_; ++v) {
    InputVc& in = ivc(inj, v);
    auto& q = source_q_[static_cast<std::size_t>(v)];
    if (in.count != 0 || in.route_out != -1 || q.empty()) continue;
    const QueuedMessage msg = q.front();
    q.pop_front();
    --source_total_;
    ++delta.messages_refilled;
    for (std::uint32_t seq = 0; seq < message_length_; ++seq) {
      Flit f;
      f.msg = msg.id;
      f.src = msg.src;
      f.dest = msg.dest;
      f.seq = seq;
      f.gen_cycle = msg.gen_cycle;
      f.head = seq == 0;
      f.tail = seq + 1 == message_length_;
      ring_push(in, f);
    }
  }
}

void Router::phase_eject(StepDelta& delta) {
  // Unlimited ejection bandwidth (assumption iv): drain every destined flit
  // at a buffer head this cycle. Flits of one message arrive in order on a
  // single VC, so draining per-VC preserves message ordering.
  for (int p = 0; p < net_ports_; ++p) {
    for (int v = 0; v < vcs_; ++v) {
      InputVc& in = ivc(p, v);
      while (in.count != 0 && ring_front(in).dest == id_) {
        const Flit f = pop_and_credit(p, v);
        ++delta.flits_delivered;
        if (f.tail) delta.delivered.push_back({f.msg, f.gen_cycle, f.dest});
      }
    }
  }
}

void Router::phase_route() {
  const int total_ports = net_ports_ + 1;
  for (int p = 0; p < total_ports; ++p) {
    for (int v = 0; v < vcs_; ++v) {
      InputVc& in = ivc(p, v);
      if (in.route_out != -1 || in.count == 0) continue;
      const Flit& f = ring_front(in);
      if (!f.head) continue;  // cannot happen for well-formed streams
      KNC_DEBUG_ASSERT(f.dest != id_);  // destined flits were ejected already
      const int dim = net_.next_route_dim(id_, f.dest);
      KNC_DEBUG_ASSERT(dim >= 0);
      const topo::Direction dir =
          net_.ring_direction(net_.coord(id_, dim), net_.coord(f.dest, dim));
      in.route_out = out_port_for(dim, dir);
      requesters_insert(out_[static_cast<std::size_t>(in.route_out)],
                        static_cast<std::int32_t>(p * vcs_ + v));
    }
  }
}

void Router::phase_vc_alloc() {
  // Round-robin over the input VCs requesting each output port, with the
  // seed semantics preserved exactly: the original loop visited
  // i = (rr_vc + off) % total_vcs for off = 0..total_vcs-1, re-reading rr_vc
  // each iteration while grants mutate it (a grant at (i, off) moves the
  // next visit to i + off + 2). Non-requesters can never be granted, so the
  // walk below jumps between requesters (sorted by index) while replaying
  // the identical (i, off) sequence.
  const int total_vcs = (net_ports_ + 1) * vcs_;
  for (int op_idx = 0; op_idx < net_ports_; ++op_idx) {
    OutputPort& op = out_[static_cast<std::size_t>(op_idx)];
    const auto& req = op.requesters;
    if (req.empty()) continue;
    int i = static_cast<int>(op.rr_vc);
    int off = 0;
    while (off < total_vcs) {
      // Next requester at or cyclically after i.
      auto it = std::lower_bound(req.begin(), req.end(), i);
      const int j = it == req.end() ? req.front() : *it;
      off += (j - i + total_vcs) % total_vcs;
      if (off >= total_vcs) break;
      i = j;
      InputVc& in = in_vcs_[static_cast<std::size_t>(i)];
      KNC_DEBUG_ASSERT(in.route_out == op_idx);
      int granted = -1;
      if (in.out_vc == -1 && in.count != 0) {
        const Flit& head = ring_front(in);
        KNC_DEBUG_ASSERT(head.head);
        const int cls = vc_class_for(head, port_dim(op_idx), port_dir(op_idx));
        for (int v = class_vc_begin(cls); v < class_vc_end(cls); ++v) {
          if (!op.vcs[static_cast<std::size_t>(v)].busy) {
            granted = v;
            break;
          }
        }
      }
      if (granted >= 0) {
        in.out_vc = granted;
        op.vcs[static_cast<std::size_t>(granted)].busy = true;
        ++op.busy_now;
        ++busy_out_;
        op.rr_vc = static_cast<std::uint32_t>((i + 1) % total_vcs);
        i = (i + off + 2) % total_vcs;
      } else {
        i = (i + 1) % total_vcs;
      }
      ++off;
    }
  }
}

void Router::phase_switch(StepDelta& delta) {
  const int total_vcs = (net_ports_ + 1) * vcs_;
  for (int op_idx = 0; op_idx < net_ports_; ++op_idx) {
    OutputPort& op = out_[static_cast<std::size_t>(op_idx)];
    const auto& req = op.requesters;
    if (req.empty()) continue;
    // One flit per output physical channel per cycle: the first requester in
    // cyclic order from rr_sw that holds an allocation, has a flit and
    // downstream credit (the seed scanned every input VC in the same order;
    // only requesters can pass the eligibility test).
    const auto start =
        std::lower_bound(req.begin(), req.end(), static_cast<int>(op.rr_sw));
    const std::size_t n = req.size();
    const std::size_t first = static_cast<std::size_t>(start - req.begin());
    for (std::size_t step = 0; step < n; ++step) {
      std::size_t pos = first + step;
      if (pos >= n) pos -= n;
      const int i = req[pos];
      InputVc& in = in_vcs_[static_cast<std::size_t>(i)];
      KNC_DEBUG_ASSERT(in.route_out == op_idx);
      if (in.out_vc == -1 || in.count == 0) continue;
      if (op.vcs[static_cast<std::size_t>(in.out_vc)].credits <= 0) continue;

      const int port = i / vcs_;
      const int vc = i % vcs_;
      const int out_vc = in.out_vc;
      const Flit f = pop_and_credit(port, vc);
      --op.vcs[static_cast<std::size_t>(out_vc)].credits;
      ++op.flits_sent;
      KNC_DEBUG_ASSERT(op.down != nullptr);
      Router& down = *op.down;
      StagedArrival& slot = down.staged_in_[static_cast<std::size_t>(op.down_port)];
      KNC_DEBUG_ASSERT(slot.vc < 0);
      slot.flit = f;
      slot.vc = out_vc;
      down.staged_count_.fetch_add(1, std::memory_order_relaxed);

      if (port == injection_port() && f.head) {
        delta.injected.push_back({f.msg, f.gen_cycle});
      }
      if (f.tail) {
        // The message releases *this* input VC; the downstream (output) VC
        // stays busy until the tail leaves the downstream buffer.
        in.route_out = -1;
        in.out_vc = -1;
        requesters_erase(op, i);
      }
      op.rr_sw = static_cast<std::uint32_t>((i + 1) % total_vcs);
      break;  // physical channel bandwidth: one flit per cycle
    }
  }
}

void Router::commit_arrivals() {
  if (staged_count_.load(std::memory_order_relaxed) == 0) return;
  for (int p = 0; p < net_ports_; ++p) {
    StagedArrival& slot = staged_in_[static_cast<std::size_t>(p)];
    if (slot.vc < 0) continue;
    const Flit& f = slot.flit;
    InputVc& in = ivc(p, slot.vc);
    if (f.head) {
      KNC_ASSERT_MSG(in.count == 0 && !in.active && in.route_out == -1,
                     "head flit arrived at an occupied VC");
      in.active = true;
    } else {
      KNC_DEBUG_ASSERT(in.active);
    }
    ring_push(in, f);
    KNC_ASSERT_MSG(static_cast<int>(in.count) <= buffer_depth_,
                   "buffer overflow: credit accounting broken");
    slot.vc = -1;
  }
  staged_count_.store(0, std::memory_order_relaxed);
}

void Router::commit() {
  // 1. Arrivals become visible.
  commit_arrivals();
  // 2. Credits and VC releases from downstream become visible.
  const bool signals = pending_signals_.load(std::memory_order_relaxed) != 0;
  for (auto& op : out_) {
    if (signals) {
      for (std::size_t v = 0; v < op.vcs.size(); ++v) {
        OutputVc& ovc = op.vcs[v];
        ovc.credits += op.staged_credits[v];
        op.staged_credits[v] = 0;
        KNC_ASSERT_MSG(ovc.credits <= buffer_depth_, "credit overflow");
        if (op.staged_release[v]) {
          KNC_ASSERT_MSG(ovc.busy, "release of a free VC");
          KNC_ASSERT_MSG(ovc.credits == buffer_depth_,
                         "VC released while flits remain downstream");
          ovc.busy = false;
          --op.busy_now;
          --busy_out_;
          op.staged_release[v] = 0;
        }
      }
    }
    // 3. Channel occupancy statistics.
    KNC_DEBUG_ASSERT(op.busy_now >= 0);
    const auto busy = static_cast<std::uint64_t>(op.busy_now);
    ++op.stat_cycles;
    if (busy) {
      op.busy_vc_cycles += busy;
      op.busy_vc_sq_cycles += busy * busy;
      ++op.busy_cycles;
    }
  }
  pending_signals_.store(0, std::memory_order_relaxed);
}

void Router::enqueue_message(const QueuedMessage& msg, std::uint32_t lm) {
  KNC_ASSERT_MSG(msg.dest != id_, "self-addressed message");
  KNC_ASSERT_MSG(message_length_ == lm,
                 "mixed message lengths are not modelled");
  source_q_[next_inject_vc_].push_back(msg);
  ++source_total_;
  next_inject_vc_ = (next_inject_vc_ + 1) % static_cast<std::uint32_t>(vcs_);
}

const Router::InputVc& Router::input_vc(int port, int vc) const {
  return in_vcs_[static_cast<std::size_t>(port * vcs_ + vc)];
}

const Router::OutputPort& Router::output_port(int port) const {
  return out_[static_cast<std::size_t>(port)];
}

Router::OutputPort& Router::output_port_mutable(int port) {
  return out_[static_cast<std::size_t>(port)];
}

}  // namespace kncube::sim
