#include "sim/simulator.hpp"

#include <algorithm>

#include "topology/hotspot_geometry.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace kncube::sim {

namespace {

double latency_histogram_ceiling(const SimConfig& cfg) {
  // Generous: a few hundred times the zero-load scale, so quantiles stay
  // meaningful deep into the congested region.
  return 200.0 * static_cast<double>(cfg.message_length + cfg.k * cfg.n);
}

}  // namespace

Simulator::Simulator(const SimConfig& cfg)
    : cfg_(cfg),
      net_(cfg),
      metrics_(cfg.batch_size, cfg.steady_rel_tol, latency_histogram_ceiling(cfg)),
      pattern_(make_pattern(cfg, net_.topology())),
      arrivals_(cfg_, net_.faults(), net_.size()) {
  if (cfg.pattern == Pattern::kHotspot) {
    metrics_.set_hot_node(cfg.resolved_hot_node());
  }
}

void Simulator::tick() {
  // Traffic generation at the cycle boundary: one batch kernel advances all
  // per-node arrival streams (dead nodes masked out, their streams frozen —
  // bitwise-deterministic under faults too), then the sparse fired bitmap is
  // drained in ascending node order, which is exactly the scalar loop's
  // visit order. Only firing nodes pay the virtual pick_dest call.
  arrivals_.generate();
  const std::uint64_t* words = arrivals_.fired_words();
  const std::size_t word_count = arrivals_.fired_word_count();
  for (std::size_t w = 0; w < word_count; ++w) {
    if (words[w] == 0) continue;  // no fires among nodes [8w, 8w+8)
    for (std::size_t b = 0; b < 8; ++b) {
      const auto id = static_cast<topo::NodeId>(8 * w + b);
      if (!arrivals_.fired(id)) continue;
      QueuedMessage msg;
      msg.id = next_msg_id_++;
      msg.src = id;
      util::Xoshiro256 rng = arrivals_.extract_rng(id);
      msg.dest = pattern_->pick_dest(id, rng);
      arrivals_.store_rng(id, rng);
      msg.gen_cycle = cycle_;
      if (!net_.pair_reachable(msg.src, msg.dest)) {
        // The deterministic path crosses a fault: the message counts as
        // offered but undeliverable, classified here at injection time —
        // nothing is ever dropped mid-network (DESIGN.md §10).
        metrics_.on_generated(msg.gen_cycle);
        metrics_.on_unreachable(msg.gen_cycle);
        continue;
      }
      net_.enqueue_message(msg);
      metrics_.on_generated(msg.gen_cycle);
    }
  }
  net_.step(cycle_, metrics_);
  ++cycle_;
}

bool Simulator::drain(std::uint64_t max_cycles) {
  for (std::uint64_t i = 0; i < max_cycles; ++i) {
    if (net_.inflight_flits() == 0 && net_.source_backlog() == 0) return true;
    net_.step(cycle_, metrics_);
    ++cycle_;
  }
  return net_.inflight_flits() == 0 && net_.source_backlog() == 0;
}

void Simulator::step_cycles(std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles; ++i) tick();
}

MessageId Simulator::inject_now(topo::NodeId src, topo::NodeId dest) {
  QueuedMessage msg;
  msg.id = next_msg_id_++;
  msg.src = src;
  msg.dest = dest;
  msg.gen_cycle = cycle_;
  net_.enqueue_message(msg);
  metrics_.on_generated(msg.gen_cycle);
  return msg.id;
}

SimResult Simulator::run() {
  std::uint64_t backlog_at_measure_start = 0;
  // Stop polling is amortised: checking counters every cycle is wasteful.
  // Polls are anchored to the measurement start, not the absolute cycle:
  // anchoring to cycle 0 aliased the poll grid with warmup_cycles, deferring
  // the break by up to kPollPeriod-1 cycles *past* the first poll opportunity
  // after target_messages whenever warmup was not a multiple of the period.
  constexpr std::uint64_t kPollPeriod = 512;

  while (cycle_ < cfg_.max_cycles) {
    if (cycle_ == cfg_.warmup_cycles) {
      metrics_.begin_measurement(cycle_);
      net_.reset_channel_stats();
      backlog_at_measure_start = metrics_.source_backlog();
    }
    tick();
    if (metrics_.measuring() &&
        (cycle_ - metrics_.measure_start()) % kPollPeriod == 0) {
      const std::uint64_t delivered = metrics_.delivered_measured();
      if (delivered >= cfg_.target_messages &&
          (metrics_.steady() || delivered >= 4 * cfg_.target_messages)) {
        break;
      }
    }
  }
  if (!metrics_.measuring()) {
    // max_cycles <= warmup is rejected by validate(); still, guard the
    // arithmetic below.
    metrics_.begin_measurement(cycle_);
  }
  return finalize(backlog_at_measure_start);
}

SimResult Simulator::finalize(std::uint64_t backlog_at_measure_start) const {
  SimResult res;
  res.cycles = cycle_;
  res.measured_cycles = cycle_ - metrics_.measure_start();
  res.measured_messages = metrics_.delivered_measured();
  res.offered_load = cfg_.injection_rate;

  const auto& lat = metrics_.latency();
  res.mean_latency = lat.mean();
  res.latency_ci95 = lat.ci95_half_width();
  res.mean_network_latency = metrics_.network_latency().mean();
  res.mean_source_wait = metrics_.source_wait().mean();
  res.mean_latency_hot = metrics_.latency_hot().mean();
  res.mean_latency_regular = metrics_.latency_regular().mean();
  const auto& hist = metrics_.latency_histogram();
  res.p50_latency = hist.quantile(0.50);
  res.p95_latency = hist.quantile(0.95);
  res.p99_latency = hist.quantile(0.99);

  const double nodes = static_cast<double>(net_.size());
  const double mc = static_cast<double>(std::max<std::uint64_t>(res.measured_cycles, 1));
  res.generated_load = static_cast<double>(metrics_.generated_measured()) / (nodes * mc);
  res.accepted_load = static_cast<double>(res.measured_messages) / (nodes * mc);

  res.steady = metrics_.steady();

  res.unreachable_messages = metrics_.unreachable_measured();
  res.unreachable_messages_total = metrics_.unreachable_total();
  if (metrics_.generated_measured() > 0) {
    res.unreachable_fraction =
        static_cast<double>(res.unreachable_messages) /
        static_cast<double>(metrics_.generated_measured());
  }
  res.unreachable_pairs = net_.faults().unreachable_pairs();
  res.reachable_pair_fraction = net_.faults().reachable_pair_fraction();
  res.failed_routers = net_.faults().failed_router_count();
  // Conservation over two independently maintained counter families:
  // Metrics counts events, Network maintains incremental occupancy. The
  // boundaries differ — Network occupancy moves when a message *refills*
  // (materialises Lm flits from the source queue) while Metrics::injected
  // fires when its head later acquires the first channel — so the identities
  // are phrased at the refill boundary: every enqueued message is either
  // still backlog or has exactly Lm flits split between delivered and
  // in-flight.
  const std::uint64_t lm = static_cast<std::uint64_t>(cfg_.message_length);
  const std::uint64_t enqueued =
      metrics_.generated_total() - metrics_.unreachable_total();
  const bool backlog_sane = enqueued >= net_.source_backlog();
  const std::uint64_t refilled =
      backlog_sane ? enqueued - net_.source_backlog() : 0;
  res.conservation_ok =
      backlog_sane &&
      refilled * lm == metrics_.flits_delivered() + net_.inflight_flits() &&
      metrics_.delivered_total() <= metrics_.injected_total() &&
      metrics_.injected_total() <= refilled;
  // Saturation: the aggregate source backlog grew steadily through the
  // measurement window. A stable network keeps queues near-empty (rho < 1),
  // so sustained growth beyond noise marks the saturated regime.
  const std::uint64_t backlog_end = metrics_.source_backlog();
  const std::uint64_t growth =
      backlog_end > backlog_at_measure_start ? backlog_end - backlog_at_measure_start : 0;
  const std::uint64_t generated = metrics_.generated_measured();
  res.saturated = growth > std::max<std::uint64_t>(64, generated / 5);

  res.sim_shards = net_.shard_count();
  res.sim_shards_requested = net_.requested_shard_count();

  const auto chan = net_.channel_summary();
  res.mean_channel_utilization = chan.mean_utilization;
  res.max_channel_utilization = chan.max_utilization;
  res.mean_vc_multiplexing = chan.mean_vc_multiplexing;

  if (cfg_.pattern == Pattern::kHotspot && cfg_.n == 2 && !cfg_.bidirectional) {
    // The bottleneck channel: hot-y-ring channel one hop from the hot node,
    // i.e. the outgoing y channel of the hot column node directly upstream.
    const auto& topo = net_.topology();
    const topo::NodeId hot = cfg_.resolved_hot_node();
    const topo::NodeId upstream = topo.neighbor(hot, 1, topo::Direction::kMinus);
    res.hot_channel_utilization =
        net_.channel_utilization(upstream, 1, topo::Direction::kPlus);
  }

  KNC_LOG_DEBUG << "sim done: lambda=" << cfg_.injection_rate
                << " latency=" << res.mean_latency << " msgs=" << res.measured_messages
                << " cycles=" << res.cycles << (res.saturated ? " SATURATED" : "");
  return res;
}

SimResult simulate(const SimConfig& cfg) {
  Simulator sim(cfg);
  return sim.run();
}

}  // namespace kncube::sim
