#include "sim/config.hpp"

#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace kncube::sim {

std::uint64_t replication_seed(std::uint64_t scenario_key, std::uint64_t base_seed,
                               std::uint64_t replication) {
  // Stage 1: a per-scenario stream id. The multiplier keeps distinct base
  // seeds from colliding after the XOR even when scenario keys differ in few
  // bits; +1 keeps base_seed == 0 from zeroing the product.
  util::SplitMix64 scenario_stream(scenario_key ^
                                   (0xd1342543de82ef95ULL * (base_seed + 1)));
  const std::uint64_t stream_id = scenario_stream.next();
  // Stage 2: the replication member, golden-ratio strided within the stream.
  util::SplitMix64 member(stream_id ^ (0x9e3779b97f4a7c15ULL * (replication + 1)));
  return member.next();
}

void SimConfig::validate() const {
  auto fail = [](const std::string& msg) { throw std::invalid_argument("SimConfig: " + msg); };
  if (k < 2) fail("radix k must be >= 2");
  if (n < 1 || n > topo::kMaxDims) fail("dimension count out of range");
  if (vcs < 1) fail("need at least one virtual channel");
  if (mesh && bidirectional) {
    // Mesh links are inherently bidirectional; the flag is the torus
    // extension knob and combining them would silently alias two topologies.
    fail("the bidirectional flag applies to the torus; a mesh is always "
         "bidirectional");
  }
  if (!mesh && !bidirectional && k > 2 && vcs < 2) {
    // A unidirectional ring with a single VC can deadlock (paper assumption
    // vi requires V >= 2); k == 2 rings have no cycle of length > 1. A mesh
    // is acyclic under dimension-order routing and needs no second VC.
    fail("unidirectional torus requires V >= 2 for deadlock freedom");
  }
  if (buffer_depth < 1) fail("buffer depth must be >= 1");
  if (message_length < 1) fail("message length must be >= 1 flit");
  if (injection_rate < 0.0 || injection_rate > 1.0) {
    fail("injection rate must be a per-cycle probability");
  }
  if (pattern == Pattern::kHotspot && (hot_fraction < 0.0 || hot_fraction > 1.0)) {
    fail("hot fraction must be in [0,1]");
  }
  if (hot_node >= 0) {
    std::uint64_t size = 1;
    for (int d = 0; d < n; ++d) size *= static_cast<std::uint64_t>(k);
    if (static_cast<std::uint64_t>(hot_node) >= size) fail("hot node outside network");
  }
  if (pattern == Pattern::kTranspose && n != 2) fail("transpose traffic needs n == 2");
  if (arrivals == Arrivals::kMmpp) {
    // Reject out-of-range MMPP parameters here, before they reach the
    // arrival-process constructor's asserts mid-simulation.
    if (mmpp.p_enter_burst <= 0.0 || mmpp.p_enter_burst > 1.0 ||
        mmpp.p_leave_burst <= 0.0 || mmpp.p_leave_burst > 1.0) {
      fail("MMPP transition probabilities must be in (0,1]");
    }
    if (mmpp.burst_rate_multiplier < 1.0) fail("MMPP burst multiplier must be >= 1");
  }
  if (sim_threads < 0) fail("sim threads must be >= 0 (0 = hardware concurrency)");
  if (batch_size == 0) fail("batch size must be positive");
  if (steady_rel_tol <= 0.0) fail("steady-state tolerance must be positive");
  if (max_cycles <= warmup_cycles) fail("max cycles must exceed warmup");
}

}  // namespace kncube::sim
