#include "sim/config.hpp"

#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace kncube::sim {

std::uint64_t replication_seed(std::uint64_t scenario_key, std::uint64_t base_seed,
                               std::uint64_t replication) {
  // Stage 1: a per-scenario stream id. The multiplier keeps distinct base
  // seeds from colliding after the XOR even when scenario keys differ in few
  // bits; +1 keeps base_seed == 0 from zeroing the product.
  util::SplitMix64 scenario_stream(scenario_key ^
                                   (0xd1342543de82ef95ULL * (base_seed + 1)));
  const std::uint64_t stream_id = scenario_stream.next();
  // Stage 2: the replication member, golden-ratio strided within the stream.
  util::SplitMix64 member(stream_id ^ (0x9e3779b97f4a7c15ULL * (replication + 1)));
  return member.next();
}

topo::FaultSet build_fault_set(const SimConfig& cfg, const topo::KAryNCube& net) {
  if (!cfg.has_failures()) return {};
  std::vector<topo::NodeId> routers;
  routers.reserve(cfg.failed_routers.size());
  for (const std::int64_t r : cfg.failed_routers) {
    routers.push_back(static_cast<topo::NodeId>(r));
  }
  const std::int64_t protect =
      cfg.pattern == Pattern::kHotspot
          ? static_cast<std::int64_t>(cfg.resolved_hot_node())
          : -1;
  return topo::FaultSet::resolve(net, routers, cfg.failed_links,
                                 cfg.failure_rate, cfg.failure_seed, protect);
}

void SimConfig::validate() const {
  auto fail = [](const std::string& msg) { throw std::invalid_argument("SimConfig: " + msg); };
  if (k < 2) fail("radix k must be >= 2");
  if (n < 1 || n > topo::kMaxDims) fail("dimension count out of range");
  if (vcs < 1) fail("need at least one virtual channel");
  if (mesh && bidirectional) {
    // Mesh links are inherently bidirectional; the flag is the torus
    // extension knob and combining them would silently alias two topologies.
    fail("the bidirectional flag applies to the torus; a mesh is always "
         "bidirectional");
  }
  if (!mesh && !bidirectional && k > 2 && vcs < 2) {
    // A unidirectional ring with a single VC can deadlock (paper assumption
    // vi requires V >= 2); k == 2 rings have no cycle of length > 1. A mesh
    // is acyclic under dimension-order routing and needs no second VC.
    fail("unidirectional torus requires V >= 2 for deadlock freedom");
  }
  if (buffer_depth < 1) fail("buffer depth must be >= 1");
  if (message_length < 1) fail("message length must be >= 1 flit");
  if (injection_rate < 0.0 || injection_rate > 1.0) {
    fail("injection rate must be a per-cycle probability");
  }
  if (pattern == Pattern::kHotspot && (hot_fraction < 0.0 || hot_fraction > 1.0)) {
    fail("hot fraction must be in [0,1]");
  }
  if (hot_node >= 0) {
    std::uint64_t size = 1;
    for (int d = 0; d < n; ++d) size *= static_cast<std::uint64_t>(k);
    if (static_cast<std::uint64_t>(hot_node) >= size) fail("hot node outside network");
  }
  if (pattern == Pattern::kTranspose && n != 2) fail("transpose traffic needs n == 2");
  if (arrivals == Arrivals::kMmpp) {
    // Reject out-of-range MMPP parameters here, before they reach the
    // arrival-process constructor's asserts mid-simulation.
    if (mmpp.p_enter_burst <= 0.0 || mmpp.p_enter_burst > 1.0 ||
        mmpp.p_leave_burst <= 0.0 || mmpp.p_leave_burst > 1.0) {
      fail("MMPP transition probabilities must be in (0,1]");
    }
    if (mmpp.burst_rate_multiplier < 1.0) fail("MMPP burst multiplier must be >= 1");
  }
  {
    // Fault description: bounds and canonical strict ordering (which also
    // rules out duplicates), and the hot node must survive so hot-spot
    // measurement traffic keeps its sink. ScenarioSpec::validate applies the
    // same rules with line-oriented messages; this is the last line of
    // defence for directly-constructed configs.
    std::uint64_t size = 1;
    for (int d = 0; d < n; ++d) size *= static_cast<std::uint64_t>(k);
    const std::int64_t hot =
        pattern == Pattern::kHotspot
            ? static_cast<std::int64_t>(resolved_hot_node())
            : -1;
    std::int64_t last_router = -1;
    for (const std::int64_t r : failed_routers) {
      if (r < 0 || static_cast<std::uint64_t>(r) >= size) {
        fail("failed router id outside the network");
      }
      if (r <= last_router) {
        fail("failed routers must be strictly ascending (no duplicates)");
      }
      if (r == hot) fail("cannot fail the hot-spot node");
      last_router = r;
    }
    if (failed_routers.size() >= size) fail("cannot fail every router");
    const topo::FailedLink* last_link = nullptr;
    for (const topo::FailedLink& l : failed_links) {
      if (l.node < 0 || static_cast<std::uint64_t>(l.node) >= size) {
        fail("failed link node outside the network");
      }
      if (l.dim < 0 || l.dim >= n) fail("failed link dimension out of range");
      if (l.dir == topo::Direction::kMinus && !mesh && !bidirectional) {
        fail("minus-direction links do not exist on a unidirectional torus");
      }
      if (mesh) {
        std::uint64_t stride = 1;
        for (int d = 0; d < l.dim; ++d) stride *= static_cast<std::uint64_t>(k);
        const int c = static_cast<int>(
            (static_cast<std::uint64_t>(l.node) / stride) %
            static_cast<std::uint64_t>(k));
        const bool exists =
            l.dir == topo::Direction::kPlus ? c < k - 1 : c > 0;
        if (!exists) fail("failed link does not exist (mesh edge would wrap)");
      }
      if (last_link != nullptr) {
        const auto key = [](const topo::FailedLink& x) {
          return (static_cast<std::uint64_t>(x.node) << 5) |
                 (static_cast<std::uint64_t>(x.dim) << 1) |
                 (x.dir == topo::Direction::kMinus ? 1u : 0u);
        };
        if (key(l) <= key(*last_link)) {
          fail("failed links must be strictly ascending (no duplicates)");
        }
      }
      last_link = &l;
    }
    if (failure_rate < 0.0 || failure_rate >= 1.0) {
      fail("failure rate must be in [0,1)");
    }
  }
  if (sim_threads < 0) fail("sim threads must be >= 0 (0 = hardware concurrency)");
  if (batch_size == 0) fail("batch size must be positive");
  if (steady_rel_tol <= 0.0) fail("steady-state tolerance must be positive");
  if (max_cycles <= warmup_cycles) fail("max cycles must exceed warmup");
}

}  // namespace kncube::sim
