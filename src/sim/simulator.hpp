// Simulation driver: traffic generation, warm-up, steady-state measurement
// and result extraction — the experimental protocol of the paper's §4.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/arrival_batch.hpp"
#include "sim/config.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/traffic.hpp"
#include "util/rng.hpp"

namespace kncube::sim {

struct SimResult {
  // Latency in cycles, measured generation -> tail ejection (includes source
  // queueing, like the model's Latency of eq (10)).
  double mean_latency = 0.0;
  double latency_ci95 = 0.0;
  double p50_latency = 0.0;
  double p95_latency = 0.0;
  double p99_latency = 0.0;
  /// Head injection -> tail ejection (excludes source queueing).
  double mean_network_latency = 0.0;
  /// Generation -> head injection (the model's Ws term).
  double mean_source_wait = 0.0;
  /// Per-class means (hot-spot pattern only; 0 otherwise).
  double mean_latency_hot = 0.0;
  double mean_latency_regular = 0.0;

  std::uint64_t measured_messages = 0;
  std::uint64_t cycles = 0;
  std::uint64_t measured_cycles = 0;

  double offered_load = 0.0;    ///< configured lambda (messages/node/cycle)
  double generated_load = 0.0;  ///< measured generation rate
  double accepted_load = 0.0;   ///< measured delivery rate

  bool steady = false;     ///< batch-means criterion satisfied
  bool saturated = false;  ///< source backlog grew without bound

  // --- degraded operation (pristine networks: zeros / 1.0 / true) ---
  /// Measured messages whose deterministic path crossed a fault — counted as
  /// offered-but-undeliverable at injection, never enqueued.
  std::uint64_t unreachable_messages = 0;
  std::uint64_t unreachable_messages_total = 0;  ///< incl. warm-up
  /// Measured unreachable / measured generated (0 when nothing generated).
  double unreachable_fraction = 0.0;
  /// Static property of the fault set: ordered (src != dst, src alive)
  /// pairs whose deterministic route crosses a fault.
  std::uint64_t unreachable_pairs = 0;
  double reachable_pair_fraction = 1.0;
  std::uint64_t failed_routers = 0;
  /// Flit/message conservation cross-check over two independently maintained
  /// counter families: generated == unreachable + injected + source backlog,
  /// and injected * Lm == delivered flits + in-flight flits. Any false here
  /// means the accounting lost or invented traffic.
  bool conservation_ok = true;

  /// Router shards the stepping engine actually used (1 = serial), and what
  /// the sim_threads knob asked for (hardware concurrency when 0). Results
  /// are bit-identical either way; sim_shards < sim_shards_requested means
  /// the network was too small for the requested parallelism and the engine
  /// ran narrower than configured.
  std::uint64_t sim_shards = 1;
  std::uint64_t sim_shards_requested = 1;

  double mean_channel_utilization = 0.0;
  double max_channel_utilization = 0.0;
  double mean_vc_multiplexing = 1.0;
  /// Utilisation of the hot-y-ring channel entering the hot node (the
  /// system bottleneck under hot-spot traffic); 0 for other patterns.
  double hot_channel_utilization = 0.0;
};

class Simulator {
 public:
  explicit Simulator(const SimConfig& cfg);

  /// Runs the full measurement protocol and returns aggregate results.
  SimResult run();

  // --- fine-grained control for tests ---
  /// Advances exactly `cycles` cycles (with traffic generation).
  void step_cycles(std::uint64_t cycles);
  /// Steps the network *without* traffic generation until every buffered
  /// flit is delivered and every source queue is empty, or `max_cycles`
  /// elapse. Returns true when fully drained — at which point
  /// delivered == injected == generated - unreachable, the conservation
  /// identity the fault property tests pin.
  bool drain(std::uint64_t max_cycles);
  /// Enqueues one message immediately (bypasses the traffic pattern).
  MessageId inject_now(topo::NodeId src, topo::NodeId dest);
  std::uint64_t current_cycle() const noexcept { return cycle_; }
  /// Extracts aggregate results at the current cut point (run() calls this
  /// at protocol end; tests call it mid-stream to pin the conservation
  /// identities at arbitrary cuts).
  SimResult finalize(std::uint64_t backlog_at_measure_start) const;

  Network& network() noexcept { return net_; }
  const Network& network() const noexcept { return net_; }
  Metrics& metrics() noexcept { return metrics_; }
  const SimConfig& config() const noexcept { return cfg_; }

 private:
  void tick();

  SimConfig cfg_;
  Network net_;
  Metrics metrics_;
  std::unique_ptr<TrafficPattern> pattern_;
  /// All per-node arrival streams, advanced as one batch kernel per cycle
  /// (bit-identical to the scalar ArrivalProcess classes — see
  /// sim/arrival_batch.hpp).
  ArrivalBatch arrivals_;
  std::uint64_t cycle_ = 0;
  MessageId next_msg_id_ = 1;
};

/// Convenience wrapper: configure, run, return results.
SimResult simulate(const SimConfig& cfg);

}  // namespace kncube::sim
