#include "sim/arrival_batch.hpp"

#include <cmath>

#include "sim/traffic.hpp"
#include "util/assert.hpp"

#if defined(KNCUBE_NATIVE_ARCH) && defined(__AVX2__)
#include <immintrin.h>
#define KNCUBE_ARRIVAL_AVX2 1
#endif

namespace kncube::sim {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int r) noexcept {
  return (x << r) | (x >> (64 - r));
}

}  // namespace

std::uint64_t bernoulli_fire_threshold(double rate) noexcept {
  constexpr std::uint64_t kOne = 1ull << 53;  // draws are in [0, 2^53)
  if (!(rate > 0.0)) return 0;
  if (rate >= 1.0) return kOne;
  // First guess, then nudge to the exact boundary of the downward-closed set
  // {m : (double)m * 2^-53 < rate}. Both conversions below are exact (m <
  // 2^53 and the scale is a power of two), so the two loops terminate after
  // at most a step or two and leave T with: fires ⟺ m < T.
  auto t = static_cast<std::uint64_t>(std::ceil(rate * 0x1p53));
  while (t > 0 && static_cast<double>(t - 1) * 0x1p-53 >= rate) --t;
  while (t < kOne && static_cast<double>(t) * 0x1p-53 < rate) ++t;
  return t;
}

ArrivalBatch::ArrivalBatch(const SimConfig& cfg, const topo::FaultSet& faults,
                           topo::NodeId nodes)
    : n_(nodes), padded_((nodes + 7) & ~std::size_t{7}), kind_(cfg.arrivals) {
  s0_.resize(padded_, 0);
  s1_.resize(padded_, 0);
  s2_.resize(padded_, 0);
  s3_.resize(padded_, 0);
  alive_.resize(padded_, 0);
  fired_.assign(padded_, 0);

  util::Xoshiro256 root(cfg.seed);
  for (topo::NodeId id = 0; id < nodes; ++id) {
    std::uint64_t s[4];
    root.split(id).save_state(s);
    s0_[id] = s[0];
    s1_[id] = s[1];
    s2_[id] = s[2];
    s3_[id] = s[3];
    alive_[id] = faults.router_failed(id) ? 0 : ~std::uint64_t{0};
  }

  switch (kind_) {
    case Arrivals::kBernoulli:
      t_fire_ = bernoulli_fire_threshold(cfg.injection_rate);
      break;
    case Arrivals::kMmpp: {
      // Reuse the reference implementation's rate derivation so the two
      // paths cannot drift; every node starts idle, as the scalar class did.
      const MmppArrivals ref(cfg.injection_rate, cfg.mmpp);
      t_enter_ = bernoulli_fire_threshold(cfg.mmpp.p_enter_burst);
      t_leave_ = bernoulli_fire_threshold(cfg.mmpp.p_leave_burst);
      t_burst_ = bernoulli_fire_threshold(ref.burst_rate());
      t_idle_ = bernoulli_fire_threshold(ref.idle_rate());
      burst_.resize(padded_, 0);
      break;
    }
  }
}

bool ArrivalBatch::explicit_simd() {
#ifdef KNCUBE_ARRIVAL_AVX2
  return true;
#else
  return false;
#endif
}

void ArrivalBatch::generate() {
  if (kind_ == Arrivals::kBernoulli) {
    generate_bernoulli();
  } else {
    generate_mmpp();
  }
}

#ifdef KNCUBE_ARRIVAL_AVX2

namespace {

// xoshiro256** step for four lanes: returns the output word and advances the
// state in place. AVX2 has no 64-bit mullo, but both multipliers are tiny:
// x*5 = x + (x<<2) and x*9 = x + (x<<3).
inline __m256i xs_step4(__m256i& v0, __m256i& v1, __m256i& v2, __m256i& v3) {
  const __m256i x5 = _mm256_add_epi64(v1, _mm256_slli_epi64(v1, 2));
  const __m256i rot =
      _mm256_or_si256(_mm256_slli_epi64(x5, 7), _mm256_srli_epi64(x5, 57));
  const __m256i out = _mm256_add_epi64(rot, _mm256_slli_epi64(rot, 3));
  const __m256i t = _mm256_slli_epi64(v1, 17);
  v2 = _mm256_xor_si256(v2, v0);
  v3 = _mm256_xor_si256(v3, v1);
  v1 = _mm256_xor_si256(v1, v2);
  v0 = _mm256_xor_si256(v0, v3);
  v2 = _mm256_xor_si256(v2, t);
  v3 = _mm256_or_si256(_mm256_slli_epi64(v3, 45), _mm256_srli_epi64(v3, 19));
  return out;
}

// Per-lane all-ones mask for (x >> 11) < t. Values are < 2^53, so the signed
// 64-bit compare is exact.
inline __m256i lt_threshold4(__m256i x, __m256i t) {
  return _mm256_cmpgt_epi64(t, _mm256_srli_epi64(x, 11));
}

}  // namespace

void ArrivalBatch::generate_bernoulli() {
  const __m256i tf = _mm256_set1_epi64x(static_cast<long long>(t_fire_));
  for (std::size_t i = 0; i < padded_; i += 4) {
    const __m256i m = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&alive_[i]));
    __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s0_[i]));
    __m256i v1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s1_[i]));
    __m256i v2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s2_[i]));
    __m256i v3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s3_[i]));
    const __m256i o0 = v0, o1 = v1, o2 = v2, o3 = v3;
    const __m256i x = xs_step4(v0, v1, v2, v3);
    // Dead lanes keep their old state (their stream must not advance).
    v0 = _mm256_blendv_epi8(o0, v0, m);
    v1 = _mm256_blendv_epi8(o1, v1, m);
    v2 = _mm256_blendv_epi8(o2, v2, m);
    v3 = _mm256_blendv_epi8(o3, v3, m);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s0_[i]), v0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s1_[i]), v1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s2_[i]), v2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s3_[i]), v3);
    const __m256i f = _mm256_and_si256(lt_threshold4(x, tf), m);
    const int bits = _mm256_movemask_pd(_mm256_castsi256_pd(f));
    fired_[i + 0] = static_cast<std::uint8_t>(bits & 1);
    fired_[i + 1] = static_cast<std::uint8_t>((bits >> 1) & 1);
    fired_[i + 2] = static_cast<std::uint8_t>((bits >> 2) & 1);
    fired_[i + 3] = static_cast<std::uint8_t>((bits >> 3) & 1);
  }
}

void ArrivalBatch::generate_mmpp() {
  const __m256i te = _mm256_set1_epi64x(static_cast<long long>(t_enter_));
  const __m256i tl = _mm256_set1_epi64x(static_cast<long long>(t_leave_));
  const __m256i tb = _mm256_set1_epi64x(static_cast<long long>(t_burst_));
  const __m256i ti = _mm256_set1_epi64x(static_cast<long long>(t_idle_));
  for (std::size_t i = 0; i < padded_; i += 4) {
    const __m256i m = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&alive_[i]));
    __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s0_[i]));
    __m256i v1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s1_[i]));
    __m256i v2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s2_[i]));
    __m256i v3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s3_[i]));
    const __m256i o0 = v0, o1 = v1, o2 = v2, o3 = v3;
    // Draw 1: state transition (leave when bursting, enter when idle).
    const __m256i x1 = xs_step4(v0, v1, v2, v3);
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&burst_[i]));
    const __m256i leave = lt_threshold4(x1, tl);
    const __m256i enter = lt_threshold4(x1, te);
    __m256i nb = _mm256_or_si256(_mm256_andnot_si256(leave, b),
                                 _mm256_andnot_si256(b, enter));
    // Draw 2: emission at the new state's rate.
    const __m256i x2 = xs_step4(v0, v1, v2, v3);
    const __m256i temit = _mm256_blendv_epi8(ti, tb, nb);
    const __m256i f = _mm256_and_si256(lt_threshold4(x2, temit), m);
    nb = _mm256_blendv_epi8(b, nb, m);
    v0 = _mm256_blendv_epi8(o0, v0, m);
    v1 = _mm256_blendv_epi8(o1, v1, m);
    v2 = _mm256_blendv_epi8(o2, v2, m);
    v3 = _mm256_blendv_epi8(o3, v3, m);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s0_[i]), v0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s1_[i]), v1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s2_[i]), v2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s3_[i]), v3);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&burst_[i]), nb);
    const int bits = _mm256_movemask_pd(_mm256_castsi256_pd(f));
    fired_[i + 0] = static_cast<std::uint8_t>(bits & 1);
    fired_[i + 1] = static_cast<std::uint8_t>((bits >> 1) & 1);
    fired_[i + 2] = static_cast<std::uint8_t>((bits >> 2) & 1);
    fired_[i + 3] = static_cast<std::uint8_t>((bits >> 3) & 1);
  }
}

#else  // scalar kernels (written branch-free so the compiler can vectorize)

void ArrivalBatch::generate_bernoulli() {
  std::uint64_t* s0 = s0_.data();
  std::uint64_t* s1 = s1_.data();
  std::uint64_t* s2 = s2_.data();
  std::uint64_t* s3 = s3_.data();
  const std::uint64_t* alive = alive_.data();
  std::uint8_t* fired = fired_.data();
  const std::uint64_t tf = t_fire_;
  for (std::size_t i = 0; i < padded_; ++i) {
    const std::uint64_t m = alive[i];
    const std::uint64_t x = rotl(s1[i] * 5, 7) * 9;
    const std::uint64_t t = s1[i] << 17;
    std::uint64_t n2 = s2[i] ^ s0[i];
    std::uint64_t n3 = s3[i] ^ s1[i];
    const std::uint64_t n1 = s1[i] ^ n2;
    const std::uint64_t n0 = s0[i] ^ n3;
    n2 ^= t;
    n3 = rotl(n3, 45);
    // Blend: dead lanes keep their old state (stream must not advance).
    s0[i] ^= (n0 ^ s0[i]) & m;
    s1[i] ^= (n1 ^ s1[i]) & m;
    s2[i] ^= (n2 ^ s2[i]) & m;
    s3[i] ^= (n3 ^ s3[i]) & m;
    fired[i] = static_cast<std::uint8_t>(((x >> 11) < tf) & m);
  }
}

void ArrivalBatch::generate_mmpp() {
  std::uint64_t* s0 = s0_.data();
  std::uint64_t* s1 = s1_.data();
  std::uint64_t* s2 = s2_.data();
  std::uint64_t* s3 = s3_.data();
  std::uint64_t* burst = burst_.data();
  const std::uint64_t* alive = alive_.data();
  std::uint8_t* fired = fired_.data();
  for (std::size_t i = 0; i < padded_; ++i) {
    const std::uint64_t m = alive[i];
    // Draw 1: state transition (leave when bursting, enter when idle).
    const std::uint64_t x1 = rotl(s1[i] * 5, 7) * 9;
    std::uint64_t t = s1[i] << 17;
    std::uint64_t a2 = s2[i] ^ s0[i];
    std::uint64_t a3 = s3[i] ^ s1[i];
    const std::uint64_t a1 = s1[i] ^ a2;
    const std::uint64_t a0 = s0[i] ^ a3;
    a2 ^= t;
    a3 = rotl(a3, 45);
    const std::uint64_t b = burst[i];
    const std::uint64_t leave = ~(std::uint64_t{0}) + ((x1 >> 11) >= t_leave_);
    const std::uint64_t enter = ~(std::uint64_t{0}) + ((x1 >> 11) >= t_enter_);
    std::uint64_t nb = (b & ~leave) | (~b & enter);
    // Draw 2: emission at the new state's rate.
    const std::uint64_t x2 = rotl(a1 * 5, 7) * 9;
    t = a1 << 17;
    std::uint64_t b2 = a2 ^ a0;
    std::uint64_t b3 = a3 ^ a1;
    const std::uint64_t b1 = a1 ^ b2;
    const std::uint64_t b0 = a0 ^ b3;
    b2 ^= t;
    b3 = rotl(b3, 45);
    const std::uint64_t temit = (nb & t_burst_) | (~nb & t_idle_);
    fired[i] = static_cast<std::uint8_t>(((x2 >> 11) < temit) & m);
    burst[i] ^= (nb ^ b) & m;
    s0[i] ^= (b0 ^ s0[i]) & m;
    s1[i] ^= (b1 ^ s1[i]) & m;
    s2[i] ^= (b2 ^ s2[i]) & m;
    s3[i] ^= (b3 ^ s3[i]) & m;
  }
}

#endif  // KNCUBE_ARRIVAL_AVX2

}  // namespace kncube::sim
