#include "sim/traffic.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/assert.hpp"

namespace kncube::sim {

namespace {

/// Uniform over [0, size) excluding `excluded`.
topo::NodeId uniform_excluding(topo::NodeId size, topo::NodeId excluded,
                               util::Xoshiro256& rng) {
  const auto raw =
      static_cast<topo::NodeId>(rng.uniform_below(static_cast<std::uint64_t>(size) - 1));
  return raw >= excluded ? raw + 1 : raw;
}

}  // namespace

topo::NodeId UniformTraffic::pick_dest(topo::NodeId src, util::Xoshiro256& rng) {
  return uniform_excluding(size_, src, rng);
}

HotspotTraffic::HotspotTraffic(topo::NodeId size, topo::NodeId hot, double h)
    : size_(size), hot_(hot), h_(h) {
  KNC_ASSERT_MSG(hot < size, "hot node outside the network");
  KNC_ASSERT_MSG(h >= 0.0 && h <= 1.0, "hot fraction must be a probability");
}

topo::NodeId HotspotTraffic::pick_dest(topo::NodeId src, util::Xoshiro256& rng) {
  // "When the source is the hot-spot node, only regular traffic is generated."
  if (src != hot_ && rng.bernoulli(h_)) return hot_;
  return uniform_excluding(size_, src, rng);
}

TransposeTraffic::TransposeTraffic(const topo::KAryNCube& net) : net_(net) {
  KNC_ASSERT_MSG(net.dims() == 2, "transpose is a 2-D permutation");
}

topo::NodeId TransposeTraffic::pick_dest(topo::NodeId src, util::Xoshiro256& rng) {
  topo::Coords c = net_.coords(src);
  std::swap(c[0], c[1]);
  const topo::NodeId dest = net_.node_at(c);
  if (dest == src) return uniform_excluding(net_.size(), src, rng);
  return dest;
}

BitComplementTraffic::BitComplementTraffic(topo::NodeId size) : size_(size) {
  KNC_ASSERT_MSG(size % 2 == 0, "bit-complement needs even N to avoid self-traffic");
}

topo::NodeId BitComplementTraffic::pick_dest(topo::NodeId src, util::Xoshiro256&) {
  return size_ - 1 - src;
}

BitReversalTraffic::BitReversalTraffic(topo::NodeId size) : size_(size), bits_(0) {
  KNC_ASSERT_MSG(size >= 2 && (size & (size - 1)) == 0,
                 "bit-reversal needs a power-of-two node count");
  for (topo::NodeId v = size; v > 1; v >>= 1) ++bits_;
}

topo::NodeId BitReversalTraffic::pick_dest(topo::NodeId src, util::Xoshiro256& rng) {
  topo::NodeId rev = 0;
  for (int b = 0; b < bits_; ++b) {
    rev = static_cast<topo::NodeId>(rev << 1) | ((src >> b) & 1u);
  }
  if (rev == src) return uniform_excluding(size_, src, rng);
  return rev;
}

BernoulliArrivals::BernoulliArrivals(double rate) : rate_(rate) {
  KNC_ASSERT_MSG(rate >= 0.0 && rate <= 1.0,
                 "Bernoulli arrivals need a per-cycle probability");
}

bool BernoulliArrivals::fire(util::Xoshiro256& rng) { return rng.bernoulli(rate_); }

MmppArrivals::MmppArrivals(double mean_rate, const MmppParams& params)
    : mean_rate_(mean_rate),
      p_enter_(params.p_enter_burst),
      p_leave_(params.p_leave_burst) {
  KNC_ASSERT_MSG(mean_rate >= 0.0 && mean_rate <= 1.0, "mean rate must be in [0,1]");
  KNC_ASSERT_MSG(p_enter_ > 0.0 && p_enter_ <= 1.0 && p_leave_ > 0.0 && p_leave_ <= 1.0,
                 "MMPP transition probabilities must be in (0,1]");
  // Stationary distribution of the 2-state chain.
  pi_burst_ = p_enter_ / (p_enter_ + p_leave_);
  const double mult = params.burst_rate_multiplier;
  KNC_ASSERT_MSG(mult >= 1.0, "burst multiplier must be >= 1");
  // Solve pi_burst*burst + (1-pi_burst)*idle == mean with burst = mult*mean,
  // clamping so both rates remain valid probabilities.
  burst_rate_ = std::min(1.0, mult * mean_rate);
  const double pi_idle = 1.0 - pi_burst_;
  idle_rate_ = pi_idle > 0.0
                   ? std::max(0.0, (mean_rate - pi_burst_ * burst_rate_) / pi_idle)
                   : mean_rate;
}

bool MmppArrivals::fire(util::Xoshiro256& rng) {
  // Transition first, then emit with the new state's rate.
  if (in_burst_) {
    if (rng.bernoulli(p_leave_)) in_burst_ = false;
  } else {
    if (rng.bernoulli(p_enter_)) in_burst_ = true;
  }
  return rng.bernoulli(in_burst_ ? burst_rate_ : idle_rate_);
}

std::unique_ptr<TrafficPattern> make_pattern(const SimConfig& cfg,
                                             const topo::KAryNCube& net) {
  switch (cfg.pattern) {
    case Pattern::kUniform:
      return std::make_unique<UniformTraffic>(net.size());
    case Pattern::kHotspot:
      return std::make_unique<HotspotTraffic>(net.size(), cfg.resolved_hot_node(),
                                              cfg.hot_fraction);
    case Pattern::kTranspose:
      return std::make_unique<TransposeTraffic>(net);
    case Pattern::kBitComplement:
      return std::make_unique<BitComplementTraffic>(net.size());
    case Pattern::kBitReversal:
      return std::make_unique<BitReversalTraffic>(net.size());
  }
  throw std::invalid_argument("unknown traffic pattern");
}

std::unique_ptr<ArrivalProcess> make_arrivals(const SimConfig& cfg) {
  switch (cfg.arrivals) {
    case Arrivals::kBernoulli:
      return std::make_unique<BernoulliArrivals>(cfg.injection_rate);
    case Arrivals::kMmpp:
      return std::make_unique<MmppArrivals>(cfg.injection_rate, cfg.mmpp);
  }
  throw std::invalid_argument("unknown arrival process");
}

}  // namespace kncube::sim
