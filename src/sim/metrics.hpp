// Measurement bookkeeping for the simulator.
//
// A message is *measured* when it was generated at or after the measurement
// start cycle; statistics only ever aggregate measured messages, so warm-up
// transients never contaminate results (the paper's steady-state protocol).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/flit.hpp"
#include "util/stats.hpp"

namespace kncube::sim {

/// Per-shard buffer of one cycle's metric events and occupancy deltas.
///
/// The sharded Network::step cannot let router phases call Metrics directly:
/// the floating-point accumulators are order-sensitive, so concurrent calls
/// would make results depend on thread interleaving. Instead every shard
/// appends its events here in router-id order during the phases, and the
/// cycle boundary replays the buffers into Metrics shard-by-shard — ejection
/// events of all shards first, then injection events, exactly the call
/// sequence the serial loop produced. The integer fields are plain sums
/// (order-independent), merged by addition.
struct StepDelta {
  struct DeliveredEvent {
    MessageId msg = 0;
    std::uint64_t gen_cycle = 0;
    topo::NodeId dest = 0;
  };
  struct InjectedEvent {
    MessageId msg = 0;
    std::uint64_t gen_cycle = 0;
  };

  std::vector<DeliveredEvent> delivered;  ///< tail ejections, phase_eject order
  std::vector<InjectedEvent> injected;    ///< head injections, phase_switch order
  std::uint64_t flits_delivered = 0;      ///< every ejected flit (not just tails)
  std::uint64_t messages_refilled = 0;    ///< source-queue messages materialised

  void clear() noexcept {
    delivered.clear();
    injected.clear();
    flits_delivered = 0;
    messages_refilled = 0;
  }
};

class Metrics {
 public:
  Metrics(std::uint64_t batch_size, double steady_rel_tol, double latency_hist_max);

  /// Marks the start of the measurement window (end of warm-up).
  void begin_measurement(std::uint64_t cycle);
  bool measuring() const noexcept { return measure_start_ != kNever; }
  std::uint64_t measure_start() const noexcept { return measure_start_; }

  /// Enables per-class statistics: deliveries to `hot` count as hot-spot
  /// messages, everything else as regular.
  void set_hot_node(topo::NodeId hot) noexcept {
    hot_node_ = static_cast<std::int64_t>(hot);
  }

  // --- hooks called by the network ---
  void on_generated(std::uint64_t gen_cycle);
  /// Generated message whose deterministic path crosses a fault: counted as
  /// offered-but-undeliverable at injection time (after on_generated), never
  /// enqueued. Pristine networks never call this.
  void on_unreachable(std::uint64_t gen_cycle);
  /// Head flit left its source queue (acquired the first network channel).
  void on_injected(MessageId msg, std::uint64_t gen_cycle, std::uint64_t cycle);
  /// Tail flit consumed at the destination PE.
  void on_delivered(MessageId msg, std::uint64_t gen_cycle, std::uint64_t cycle,
                    topo::NodeId dest);
  void on_flit_delivered() noexcept { ++flits_delivered_; }

  // --- deterministic replay of sharded-step buffers (Network::step) ---
  /// Applies one shard's ejection-side events: flit count plus on_delivered
  /// for each tail, in recorded order. Call for every shard in shard order
  /// before any apply_injects of the same cycle.
  void apply_ejects(const StepDelta& delta, std::uint64_t cycle);
  /// Applies one shard's injection-side events (on_injected in order).
  void apply_injects(const StepDelta& delta, std::uint64_t cycle);

  // --- counters ---
  std::uint64_t generated_total() const noexcept { return generated_total_; }
  std::uint64_t injected_total() const noexcept { return injected_total_; }
  std::uint64_t delivered_total() const noexcept { return delivered_total_; }
  std::uint64_t generated_measured() const noexcept { return generated_measured_; }
  std::uint64_t delivered_measured() const noexcept { return delivered_measured_; }
  std::uint64_t flits_delivered() const noexcept { return flits_delivered_; }
  std::uint64_t unreachable_total() const noexcept { return unreachable_total_; }
  std::uint64_t unreachable_measured() const noexcept {
    return unreachable_measured_;
  }
  /// Messages generated but whose head has not yet entered the network
  /// (unreachable messages never will: they are not backlog).
  std::uint64_t source_backlog() const noexcept {
    return generated_total_ - injected_total_ - unreachable_total_;
  }

  // --- statistics over measured messages ---
  const util::RunningStats& latency() const noexcept { return latency_; }
  const util::RunningStats& latency_hot() const noexcept { return latency_hot_; }
  const util::RunningStats& latency_regular() const noexcept { return latency_regular_; }
  const util::RunningStats& network_latency() const noexcept { return net_latency_; }
  const util::RunningStats& source_wait() const noexcept { return source_wait_; }
  const util::Histogram& latency_histogram() const noexcept { return latency_hist_; }
  const util::BatchMeans& batch_means() const noexcept { return batches_; }
  bool steady() const noexcept { return batches_.converged(); }

 private:
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  std::uint64_t measure_start_ = kNever;
  std::uint64_t generated_total_ = 0;
  std::uint64_t injected_total_ = 0;
  std::uint64_t delivered_total_ = 0;
  std::uint64_t generated_measured_ = 0;
  std::uint64_t delivered_measured_ = 0;
  std::uint64_t flits_delivered_ = 0;
  std::uint64_t unreachable_total_ = 0;
  std::uint64_t unreachable_measured_ = 0;

  std::int64_t hot_node_ = -1;
  util::RunningStats latency_;
  util::RunningStats latency_hot_;
  util::RunningStats latency_regular_;
  util::RunningStats net_latency_;
  util::RunningStats source_wait_;
  util::Histogram latency_hist_;
  util::BatchMeans batches_;
  /// head-injection cycle of measured in-flight messages, for network latency
  std::unordered_map<MessageId, std::uint64_t> inject_cycle_;
};

}  // namespace kncube::sim
