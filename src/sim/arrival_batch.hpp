// Batched traffic-generation kernel (DESIGN.md §12).
//
// The per-cycle arrival decision is the simulator's last O(nodes) scalar
// loop: one or two virtual calls plus RNG draws per node per cycle. This
// kernel keeps the four xoshiro256** state words of every node in parallel
// arrays (structure-of-arrays) and advances *all* alive nodes' streams in
// one branch-free batch pass per cycle, producing a fired bitmap. The rare
// data-dependent follow-up draws (destination choice, with its rejection
// loop) reconstitute a scalar generator from the state words and write it
// back, so the per-node bit stream is exactly the one the scalar
// `ArrivalProcess` classes consume — `BernoulliArrivals` / `MmppArrivals`
// in sim/traffic.hpp remain the reference implementations the property
// tests compare against.
//
// Bit-identity under batching rests on one exact-arithmetic fact: the
// scalar path fires iff uniform() < rate, i.e. (double)(x >> 11) * 2^-53 <
// rate. Both the int→double conversion (the operand is < 2^53) and the
// scaling by a power of two are exact, and the map m ↦ (double)m * 2^-53 is
// strictly monotone, so {m : fires} is exactly [0, T) for an integer
// threshold T computed once per rate. The kernel compares (x >> 11) < T in
// pure integer arithmetic — the same predicate, no floating point in the
// loop, identical on every lane width (scalar, auto-vectorized, or the
// explicit AVX2 path compiled under KNCUBE_NATIVE_ARCH).
//
// Dead nodes (fault overlay) never advance their stream — their lanes are
// masked out with a blend, matching the scalar loop's `continue` — so
// faulty-network goldens are preserved too.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "topology/fault_set.hpp"
#include "topology/torus.hpp"
#include "util/rng.hpp"

namespace kncube::sim {

/// Integer fire threshold T with (x >> 11) < T  ⟺  (double)(x >> 11) * 2^-53
/// < rate, for every possible draw x. Exposed for the equivalence tests.
std::uint64_t bernoulli_fire_threshold(double rate) noexcept;

class ArrivalBatch {
 public:
  /// Seeds one stream per node exactly as the scalar path did
  /// (Xoshiro256(cfg.seed).split(id)) and derives the integer thresholds
  /// from the configured arrival process.
  ArrivalBatch(const SimConfig& cfg, const topo::FaultSet& faults,
               topo::NodeId nodes);

  /// Advances every alive node's stream by this cycle's fixed draw count
  /// (Bernoulli: one; MMPP: transition + emission) and records which nodes
  /// fired. Dead nodes' streams and burst states are untouched.
  void generate();

  /// Fired flags as 8-node words for a sparse scan: bits of word w cover
  /// nodes [8w, 8w+8), one byte per node (0 or 1), zero-padded past `nodes`.
  const std::uint64_t* fired_words() const noexcept {
    return reinterpret_cast<const std::uint64_t*>(fired_.data());
  }
  std::size_t fired_word_count() const noexcept { return fired_.size() / 8; }
  bool fired(topo::NodeId id) const noexcept { return fired_[id] != 0; }

  /// Scalar-generator round-trip for the data-dependent draws that follow a
  /// fire (destination choice). The returned generator continues the node's
  /// stream exactly where the batch pass left it; store_rng writes the
  /// advanced state back.
  util::Xoshiro256 extract_rng(topo::NodeId id) const noexcept {
    const std::uint64_t s[4] = {s0_[id], s1_[id], s2_[id], s3_[id]};
    return util::Xoshiro256::from_state(s);
  }
  void store_rng(topo::NodeId id, const util::Xoshiro256& rng) noexcept {
    std::uint64_t s[4];
    rng.save_state(s);
    s0_[id] = s[0];
    s1_[id] = s[1];
    s2_[id] = s[2];
    s3_[id] = s[3];
  }

  /// True when the explicit-width SIMD kernel is compiled in (build under
  /// KNCUBE_NATIVE_ARCH on an AVX2 host); the scalar kernel is the fallback
  /// and produces bit-identical results.
  static bool explicit_simd();

 private:
  void generate_bernoulli();
  void generate_mmpp();

  std::size_t n_ = 0;        ///< node count
  std::size_t padded_ = 0;   ///< n_ rounded up to a multiple of 8
  Arrivals kind_ = Arrivals::kBernoulli;

  // xoshiro256** state, one word-array per state slot (index = node id).
  std::vector<std::uint64_t> s0_, s1_, s2_, s3_;
  /// All-ones for alive nodes, zero for failed ones (blend mask).
  std::vector<std::uint64_t> alive_;
  /// MMPP burst state as a full-width mask (all-ones = in burst).
  std::vector<std::uint64_t> burst_;
  std::vector<std::uint8_t> fired_;  ///< 1 per fired node, padded_ long

  // Integer fire thresholds (see bernoulli_fire_threshold).
  std::uint64_t t_fire_ = 0;   ///< Bernoulli rate
  std::uint64_t t_enter_ = 0;  ///< MMPP idle→burst transition
  std::uint64_t t_leave_ = 0;  ///< MMPP burst→idle transition
  std::uint64_t t_burst_ = 0;  ///< MMPP emission while in burst
  std::uint64_t t_idle_ = 0;   ///< MMPP emission while idle
};

}  // namespace kncube::sim
