// ReplicationRunner: replication-based simulation measurement.
//
// One simulator run is a single sample path: its mean latency carries
// sampling noise that a point tolerance cannot distinguish from model error.
// The runner executes R independent replications of the same ScenarioSpec
// operating point — identical in every knob except the seed, which is a
// per-replication stream derived from the spec's canonical key()
// (sim::replication_seed) — and aggregates the per-replication means into
// Student-t confidence intervals (util::stats).
//
// Determinism: replication r always receives the same seed regardless of
// which worker thread runs it or how many workers exist, results are
// collected into slot r of a pre-sized vector, and every aggregate is folded
// sequentially in replication order after the parallel phase — so the entire
// ReplicationPoint is bit-identical across thread counts and schedules
// (pinned by tests/validate/replication_test.cpp).
//
// Composition with intra-simulation sharding: the runner's worker pool
// parallelises *across* replications while ScenarioSpec::sim_threads shards
// *within* each replication's Network::step — the two nest freely. Since
// sim.threads is excluded from the spec key(), per-replication seeds are
// unchanged by it, and sharding itself is bit-identical, so any
// (outer workers × inner sim_threads) combination reproduces the serial
// ReplicationPoint exactly. Note the thread budgets multiply: R outer
// workers each spin up sim_threads-1 extra team threads.
#pragma once

#include <cstdint>
#include <vector>

#include "core/scenario_spec.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace kncube::validate {

/// Aggregated measurement of one (spec, lambda) operating point over R
/// independent replications. Each interval is over the per-replication means
/// (R samples), not the per-message population.
struct ReplicationPoint {
  double lambda = 0.0;
  int replications = 0;

  util::ConfidenceInterval latency;          ///< mean message latency, cycles
  util::ConfidenceInterval network_latency;  ///< head-in to tail-out, cycles
  util::ConfidenceInterval throughput;       ///< accepted load, msgs/node/cycle

  int saturated_replications = 0;
  int steady_replications = 0;

  /// Per-replication raw results, indexed by replication number.
  std::vector<sim::SimResult> results;

  /// Majority-vote saturation: a point is called saturated when more than
  /// half its replications hit the backlog-growth criterion.
  bool saturated() const noexcept {
    return 2 * saturated_replications > replications;
  }

  /// Unweighted mean of `get(result)` over the replications — the single
  /// aggregation convention for SimResult fields without a dedicated CI
  /// (per-class latencies, source wait, generated load, ...).
  template <typename Get>
  double mean_of(Get get) const {
    double acc = 0.0;
    for (const sim::SimResult& r : results) acc += get(r);
    return results.empty() ? 0.0 : acc / static_cast<double>(results.size());
  }
};

class ReplicationRunner {
 public:
  /// `replications` independent runs per operating point; `pool == nullptr`
  /// uses the process-wide pool (util::global_pool / KNCUBE_THREADS).
  /// Throws std::invalid_argument when the spec is invalid or R < 1.
  explicit ReplicationRunner(core::ScenarioSpec spec, int replications = 5,
                             util::ThreadPool* pool = nullptr);

  const core::ScenarioSpec& spec() const noexcept { return spec_; }
  int replications() const noexcept { return replications_; }

  /// Confidence level of the aggregated intervals (default 0.95).
  void set_confidence(double confidence);
  double confidence() const noexcept { return confidence_; }

  /// Seed for replication `r`: sim::replication_seed over the spec's
  /// canonical key and configured base seed.
  std::uint64_t replication_seed(int r) const noexcept;

  /// Runs the R replications of one operating point in parallel and
  /// aggregates. Deterministic across thread counts.
  ReplicationPoint run(double lambda) const;

  /// Runs several operating points, parallelising over the full
  /// (point, replication) grid so a single near-saturation point cannot
  /// serialise the sweep. Results come back in input order.
  std::vector<ReplicationPoint> run(const std::vector<double>& lambdas) const;

 private:
  ReplicationPoint aggregate(double lambda,
                             std::vector<sim::SimResult> results) const;

  core::ScenarioSpec spec_;
  std::uint64_t spec_key_ = 0;
  int replications_ = 5;
  double confidence_ = 0.95;
  util::ThreadPool* pool_ = nullptr;  ///< null -> global pool
};

}  // namespace kncube::validate
