// ACCURACY.json: the committed accuracy trajectory.
//
// A ValidationReport renders to a stable, diff-friendly JSON document — the
// accuracy analogue of the BENCH_*.json perf baselines. The writer is
// deliberately environment-free: no timestamps, hostnames or build ids, so
// the committed file only changes when the model, the simulator, the suite
// or the tolerance policy changes, and a `git diff` of ACCURACY.json *is*
// the accuracy regression review. Doubles print round-trip exact (%.17g),
// NaN (sim-only model fields) prints as null, and points appear in suite
// order.
#pragma once

#include <string>

#include "util/table.hpp"
#include "validate/validation_engine.hpp"

namespace kncube::validate {

/// Serializes the report (schema "kncube-accuracy-v1"): a `config` block,
/// per-class `summary` counts plus the overall pass flag, and one object
/// per classified point.
std::string to_json(const ValidationReport& report);

/// Writes `to_json` to `path`; returns false on I/O failure.
bool write_accuracy_json(const ValidationReport& report, const std::string& path);

/// Human-readable rendering of the same data: one row per point with the
/// model/sim/CI columns and the classification verdict.
util::Table accuracy_table(const ValidationReport& report);

/// One-line per-class roll-up ("12 model-in-CI, 5 within-tolerance, ...").
std::string summary_line(const ValidationReport& report);

}  // namespace kncube::validate
