// The committed validation suites: which corners of the ScenarioSpec space
// the accuracy baseline covers, and at what measurement effort.
//
// Every registry-dispatched (topology x traffic x arrivals) model family
// appears in full_suite() — hot-spot torus (the paper), uniform torus, the
// hypercube model under both its hot-spot and uniform (h = 0) degenerations,
// the uniform mesh (two shapes: the per-dimension class chains differ
// between n = 2 and n = 3), the centre-hot-spot mesh, and the MMPP bursty
// torus families (hot-spot and uniform) — alongside sim-only specs
// exercising the simulator's remaining extensions (the transpose
// permutation, bidirectional links). Network sizes are deliberately small
// (k = 8 torus/mesh, 64-node hypercube): the model/simulator agreement the
// paper claims is
// size-independent in structure, and small networks keep the full sweep in
// CI minutes while replication counts, not network size, set the power of
// the statistical gates.
//
// Sim-only anchors: with no analytical saturation boundary to sweep against,
// each sim-only case anchors its lambda grid on the *estimated* saturation
// rate of the nearest modeled relative (closed-form, no bisection), scaled
// conservatively below the boundary so sanity checks run on unsaturated
// points.
#include <utility>

#include "core/model_registry.hpp"
#include "validate/validation_engine.hpp"

namespace kncube::validate {

namespace {

/// Measurement effort per replication. Replication count times this governs
/// total cost; these values keep single-replication noise small enough that
/// R = 3..5 CIs are a few percent of the mean.
void set_effort(core::ScenarioSpec& spec, std::uint64_t target_messages,
                std::uint64_t warmup_cycles, std::uint64_t max_cycles) {
  spec.target_messages = target_messages;
  spec.warmup_cycles = warmup_cycles;
  spec.max_cycles = max_cycles;
}

/// Closed-form saturation estimate of `spec`'s nearest modeled relative
/// (the spec itself must dispatch to a model).
double estimated_saturation(const core::ScenarioSpec& spec) {
  return core::make_analytical_model(spec).model->estimated_saturation_rate();
}

}  // namespace

std::vector<ScenarioCase> full_suite() {
  std::vector<ScenarioCase> suite;

  // --- hotspot-torus: the paper's model, at two hot-spot intensities ---
  {
    ScenarioCase c;
    c.name = "hotspot-torus-k8-h20";
    c.spec.torus().k = 8;
    c.spec.hotspot().fraction = 0.2;
    c.spec.message_length = 16;
    set_effort(c.spec, 2000, 5000, 800'000);
    c.fractions = {0.15, 0.3, 0.45, 0.6, 0.75};
    suite.push_back(std::move(c));
  }
  {
    ScenarioCase c;
    c.name = "hotspot-torus-k8-h40";
    c.spec.torus().k = 8;
    c.spec.hotspot().fraction = 0.4;
    c.spec.message_length = 16;
    set_effort(c.spec, 2000, 5000, 800'000);
    c.fractions = {0.2, 0.4, 0.6};
    suite.push_back(std::move(c));
  }

  // --- uniform-torus: the baseline model ---
  {
    ScenarioCase c;
    c.name = "uniform-torus-k8";
    c.spec.torus().k = 8;
    c.spec.traffic = core::UniformTraffic{};
    c.spec.message_length = 16;
    set_effort(c.spec, 2000, 5000, 800'000);
    // The uniform family's validated envelope stops at 0.5: beyond it the
    // simulator congests well before the model (chained wormhole blocking
    // with every channel equally loaded — the bias direction the
    // integration tests pin), so higher fractions measure the documented
    // divergence, not model accuracy.
    c.fractions = {0.15, 0.3, 0.45, 0.5};
    suite.push_back(std::move(c));
  }

  // --- hotspot-hypercube: the lineage model, hot-spot and h = 0 uniform ---
  {
    ScenarioCase c;
    c.name = "hotspot-hypercube-d6-h20";
    c.spec.topology = core::HypercubeTopology{6};
    c.spec.hotspot().fraction = 0.2;
    c.spec.message_length = 16;
    set_effort(c.spec, 2000, 5000, 800'000);
    c.fractions = {0.15, 0.3, 0.45, 0.6, 0.75};
    suite.push_back(std::move(c));
  }
  {
    ScenarioCase c;
    c.name = "uniform-hypercube-d6";
    c.spec.topology = core::HypercubeTopology{6};
    c.spec.traffic = core::UniformTraffic{};
    c.spec.message_length = 16;
    set_effort(c.spec, 2000, 5000, 800'000);
    c.fractions = {0.15, 0.3, 0.45, 0.6};
    suite.push_back(std::move(c));
  }

  // --- uniform-mesh: the position-dependent channel-class model, on the
  // paper's 2-D shape and a 3-D shape (the per-dimension continuation
  // chain differs, so both exercise distinct class structures) ---
  {
    ScenarioCase c;
    c.name = "uniform-mesh-k8-n2";
    c.spec.topology = core::MeshTopology{8, 2};
    c.spec.traffic = core::UniformTraffic{};
    c.spec.message_length = 16;
    set_effort(c.spec, 2000, 5000, 800'000);
    // The mesh model's validated envelope stops at 0.45: past it the chained
    // per-position blocking over-predicts latency (the same wormhole-chain
    // bias as the uniform torus, opposite sign), so higher fractions measure
    // the documented divergence, not model accuracy (DESIGN.md §8).
    c.fractions = {0.15, 0.3, 0.45};
    suite.push_back(std::move(c));
  }
  {
    ScenarioCase c;
    c.name = "uniform-mesh-k4-n3";
    c.spec.topology = core::MeshTopology{4, 3};
    c.spec.traffic = core::UniformTraffic{};
    c.spec.message_length = 16;
    set_effort(c.spec, 2000, 5000, 800'000);
    c.fractions = {0.15, 0.3, 0.45};
    suite.push_back(std::move(c));
  }

  // --- hotspot-mesh: the centre-hot-node mesh model (hot chains toward the
  // centre plus the uniform position-dependent background) ---
  {
    ScenarioCase c;
    c.name = "hotspot-mesh-k8-h20";
    c.spec.topology = core::MeshTopology{8, 2};
    c.spec.hotspot().fraction = 0.2;
    c.spec.message_length = 16;
    set_effort(c.spec, 2000, 5000, 800'000);
    // Same knee bias as the uniform mesh (the hot funnel adds the torus
    // model's funnel approximation on top), so the envelope stops at 0.6.
    c.fractions = {0.15, 0.3, 0.45, 0.6};
    suite.push_back(std::move(c));
  }

  // --- mmpp-torus: bursty arrivals through the two-moment service stage
  // (engine/bursty.hpp), on both torus traffic patterns. The suite uses a
  // fast-mixing chain (burst/idle cycle ~60 cycles, same 20% stationary
  // burst fraction as the default shape): the IDC-based waiting-time
  // correction assumes the queue sees many modulation cycles per busy
  // period, while the default slow-mixing shape is quasi-static — the
  // network alternates between two near-steady operating points, which no
  // single-point latency figure represents (DESIGN.md §13).
  {
    ScenarioCase c;
    c.name = "mmpp-hotspot-torus-k8";
    c.spec.torus().k = 8;
    c.spec.hotspot().fraction = 0.2;
    c.spec.message_length = 16;
    c.spec.arrivals = core::MmppArrivals{4.0, 0.02, 0.08};
    // Bursts still need longer windows than Bernoulli: each replication
    // must observe many burst/idle cycles.
    set_effort(c.spec, 3000, 8000, 1'500'000);
    c.fractions = {0.15, 0.3, 0.45, 0.6};
    suite.push_back(std::move(c));
  }
  {
    ScenarioCase c;
    c.name = "mmpp-uniform-torus-k8";
    c.spec.torus().k = 8;
    c.spec.traffic = core::UniformTraffic{};
    c.spec.message_length = 16;
    c.spec.arrivals = core::MmppArrivals{4.0, 0.02, 0.08};
    set_effort(c.spec, 3000, 8000, 1'500'000);
    // The uniform family's envelope stops at 0.5 (see uniform-torus-k8);
    // burstiness adds variance on top, so stop one rung earlier.
    c.fractions = {0.15, 0.3, 0.45};
    suite.push_back(std::move(c));
  }

  // --- sim-only: transpose permutation on the 2-D torus ---
  {
    ScenarioCase c;
    c.name = "transpose-torus-k8";
    c.spec.torus().k = 8;
    c.spec.traffic = core::TransposeTraffic{};
    c.spec.message_length = 16;
    set_effort(c.spec, 2000, 5000, 800'000);
    core::ScenarioSpec uniform_twin = c.spec;
    uniform_twin.traffic = core::UniformTraffic{};
    // The transpose permutation concentrates flows on fewer channels than
    // uniform traffic does; anchor beneath the uniform estimate.
    c.max_rate = 0.5 * estimated_saturation(uniform_twin);
    c.fractions = {0.25, 0.5, 0.75, 1.0};
    suite.push_back(std::move(c));
  }

  // --- sim-only: bidirectional links (outside every model's assumptions) ---
  {
    ScenarioCase c;
    c.name = "bidirectional-uniform-torus-k8";
    c.spec.torus().k = 8;
    c.spec.torus().bidirectional = true;
    c.spec.traffic = core::UniformTraffic{};
    c.spec.message_length = 16;
    set_effort(c.spec, 2000, 5000, 800'000);
    core::ScenarioSpec uni_twin = c.spec;
    uni_twin.torus().bidirectional = false;
    // Bidirectional links double channel capacity and halve mean distance;
    // the unidirectional estimate is itself a conservative ceiling.
    c.max_rate = 0.8 * estimated_saturation(uni_twin);
    c.fractions = {0.25, 0.5, 0.75, 1.0};
    suite.push_back(std::move(c));
  }

  return suite;
}

std::vector<ScenarioCase> quick_suite() {
  std::vector<ScenarioCase> suite;

  // One modeled case per topology family plus one sim-only case, at reduced
  // effort: the tier-1 `accuracy`-labeled gate (seconds, not minutes).
  {
    ScenarioCase c;
    c.name = "quick-hotspot-torus-k8";
    c.spec.torus().k = 8;
    c.spec.hotspot().fraction = 0.2;
    c.spec.message_length = 16;
    set_effort(c.spec, 700, 3000, 300'000);
    c.fractions = {0.2, 0.45};
    suite.push_back(std::move(c));
  }
  {
    ScenarioCase c;
    c.name = "quick-hotspot-hypercube-d5";
    c.spec.topology = core::HypercubeTopology{5};
    c.spec.hotspot().fraction = 0.2;
    c.spec.message_length = 16;
    set_effort(c.spec, 700, 3000, 300'000);
    c.fractions = {0.3};
    suite.push_back(std::move(c));
  }
  {
    ScenarioCase c;
    c.name = "quick-uniform-mesh-k8";
    c.spec.topology = core::MeshTopology{8, 2};
    c.spec.traffic = core::UniformTraffic{};
    c.spec.message_length = 16;
    set_effort(c.spec, 700, 3000, 300'000);
    c.fractions = {0.3};
    suite.push_back(std::move(c));
  }
  {
    ScenarioCase c;
    c.name = "quick-mmpp-hotspot-torus-k8";
    c.spec.torus().k = 8;
    c.spec.hotspot().fraction = 0.2;
    c.spec.message_length = 16;
    // Fast-mixing shape, as in the full suite's MMPP cases.
    c.spec.arrivals = core::MmppArrivals{4.0, 0.02, 0.08};
    set_effort(c.spec, 1000, 4000, 500'000);
    c.fractions = {0.2, 0.45};
    suite.push_back(std::move(c));
  }
  // Sim-only representative, so the quick gate exercises the sanity-check
  // path (conservation, offered-load tracking, monotonicity) too.
  {
    ScenarioCase c;
    c.name = "quick-transpose-torus-k8";
    c.spec.torus().k = 8;
    c.spec.traffic = core::TransposeTraffic{};
    c.spec.message_length = 16;
    set_effort(c.spec, 700, 3000, 300'000);
    core::ScenarioSpec uniform_twin = c.spec;
    uniform_twin.traffic = core::UniformTraffic{};
    c.max_rate = 0.5 * estimated_saturation(uniform_twin);
    c.fractions = {0.3, 0.6};
    suite.push_back(std::move(c));
  }

  return suite;
}

}  // namespace kncube::validate
