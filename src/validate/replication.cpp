#include "validate/replication.hpp"

#include <stdexcept>
#include <utility>

namespace kncube::validate {

ReplicationRunner::ReplicationRunner(core::ScenarioSpec spec, int replications,
                                     util::ThreadPool* pool)
    : spec_(std::move(spec)), replications_(replications), pool_(pool) {
  spec_.validate();
  spec_key_ = spec_.key();
  if (replications_ < 1) {
    throw std::invalid_argument("ReplicationRunner: need at least 1 replication");
  }
}

void ReplicationRunner::set_confidence(double confidence) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument("ReplicationRunner: confidence must be in (0,1)");
  }
  confidence_ = confidence;
}

std::uint64_t ReplicationRunner::replication_seed(int r) const noexcept {
  return sim::replication_seed(spec_key_, spec_.seed,
                               static_cast<std::uint64_t>(r));
}

ReplicationPoint ReplicationRunner::aggregate(
    double lambda, std::vector<sim::SimResult> results) const {
  ReplicationPoint pt;
  pt.lambda = lambda;
  pt.replications = replications_;
  // Sequential fold in replication order: the aggregates must not depend on
  // the completion order of the parallel phase.
  std::vector<double> latency, network, throughput;
  latency.reserve(results.size());
  network.reserve(results.size());
  throughput.reserve(results.size());
  for (const sim::SimResult& r : results) {
    latency.push_back(r.mean_latency);
    network.push_back(r.mean_network_latency);
    throughput.push_back(r.accepted_load);
    if (r.saturated) ++pt.saturated_replications;
    if (r.steady) ++pt.steady_replications;
  }
  pt.latency = util::student_t_ci(latency, confidence_);
  pt.network_latency = util::student_t_ci(network, confidence_);
  pt.throughput = util::student_t_ci(throughput, confidence_);
  pt.results = std::move(results);
  return pt;
}

ReplicationPoint ReplicationRunner::run(double lambda) const {
  return run(std::vector<double>{lambda}).front();
}

std::vector<ReplicationPoint> ReplicationRunner::run(
    const std::vector<double>& lambdas) const {
  const auto reps = static_cast<std::size_t>(replications_);
  // Flat (point, replication) grid: slot p * R + r belongs to replication r
  // of point p, so every task writes its own pre-allocated slot.
  std::vector<sim::SimResult> grid(lambdas.size() * reps);
  const auto body = [&](std::size_t task) {
    const std::size_t p = task / reps;
    const auto r = static_cast<int>(task % reps);
    sim::SimConfig cfg = core::to_sim_config(spec_, lambdas[p]);
    cfg.seed = replication_seed(r);
    grid[task] = sim::simulate(cfg);
  };
  if (pool_) {
    pool_->parallel_for(grid.size(), body);
  } else {
    util::parallel_for(grid.size(), body);
  }

  std::vector<ReplicationPoint> points;
  points.reserve(lambdas.size());
  for (std::size_t p = 0; p < lambdas.size(); ++p) {
    points.push_back(aggregate(
        lambdas[p],
        std::vector<sim::SimResult>(grid.begin() + static_cast<std::ptrdiff_t>(p * reps),
                                    grid.begin() + static_cast<std::ptrdiff_t>((p + 1) * reps))));
  }
  return points;
}

}  // namespace kncube::validate
