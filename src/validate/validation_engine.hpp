// ValidationEngine: statistically-gated model-vs-simulation accuracy over
// the ScenarioSpec space.
//
// The paper's claim is §4's model/simulation agreement; this engine turns
// that claim into a tracked, machine-checkable artifact. A validation suite
// is a list of ScenarioCases spanning every registry-dispatched model family
// (hot-spot torus, uniform torus, hot-spot/uniform hypercube, uniform mesh)
// plus sim-only specs (MMPP bursts, permutation patterns, ...). For each
// case the engine
// sweeps lambda at fixed fractions of the model's bisected saturation rate
// (sim-only cases anchor on an explicit max_rate), measures each point with
// R-replication Student-t confidence intervals (ReplicationRunner), and
// classifies every point:
//
//   model-in-CI        model prediction inside the replication CI (widened
//                      by ci_epsilon * sim mean — the CI collapses as R or
//                      the per-run sample count grows, while the model's
//                      approximation error does not);
//   within-tolerance   outside the CI but |model-sim|/sim within the
//                      documented load-dependent tolerance ladder
//                      (default_tolerance below, DESIGN.md §7);
//   out-of-tolerance   a modeled pre-saturation point failing both gates —
//                      the accuracy regression signal, and the only class
//                      (with failed sanity) that fails the report;
//   sim-sanity[-failed] sim-only points, gated on conservation
//                      (accepted == generated load below saturation, offered
//                      load tracked) and lambda-monotonicity of latency;
//   skipped-saturated  either side saturated: excluded from gating (the
//                      asymptote region has no steady state to compare).
//
// tools/validate.cpp renders a report as the committed repo-root
// ACCURACY.json (see accuracy_json.hpp) — the accuracy analogue of the
// BENCH_*.json perf baselines — and CI fails when a report stops passing.
#pragma once

#include <string>
#include <vector>

#include "core/scenario_spec.hpp"
#include "util/stats.hpp"
#include "validate/replication.hpp"

namespace kncube::validate {

enum class PointClass {
  kModelInCI,
  kWithinTolerance,
  kOutOfTolerance,
  kSimSanity,
  kSimSanityFailed,
  kSkippedSaturated,
};

/// Stable snake_case name used in ACCURACY.json ("model_in_ci", ...).
const char* point_class_name(PointClass cls) noexcept;

/// One classified operating point of the suite.
struct ValidationPoint {
  std::string scenario;  ///< owning ScenarioCase name
  std::string family;    ///< analytical model name, or "sim-only"
  double lambda = 0.0;
  /// Fraction of the model saturation rate (modeled cases) or of the case's
  /// max_rate anchor (sim-only cases).
  double lambda_frac = 0.0;

  double model_latency = 0.0;  ///< NaN for sim-only cases
  double sim_mean = 0.0;       ///< replication mean latency; NaN if unavailable
  double ci_half_width = 0.0;  ///< of the replication latency CI
  double rel_error = 0.0;      ///< |model-sim|/sim; NaN when either side missing
  double tolerance = 0.0;      ///< the ladder value this point was gated on

  PointClass cls = PointClass::kSkippedSaturated;
  std::string detail;  ///< human-readable reason (sanity failures, skips)
};

/// One spec in a validation suite.
struct ScenarioCase {
  std::string name;
  core::ScenarioSpec spec;
  /// Sweep fractions: of the model's bisected saturation rate when the
  /// registry dispatches a model, of `max_rate` otherwise.
  std::vector<double> fractions;
  /// Absolute sweep anchor (messages/node/cycle) for sim-only cases.
  double max_rate = 0.0;
};

struct ValidationConfig {
  int replications = 5;
  double confidence = 0.95;
  /// Relative slack added to each CI side before the in-CI test, as a
  /// fraction of the sim mean.
  double ci_epsilon = 0.02;
};

struct ValidationReport {
  ValidationConfig config;
  std::vector<ValidationPoint> points;

  int count(PointClass cls) const noexcept;
  /// True when no point is out-of-tolerance and no sanity check failed.
  bool passed() const noexcept;
};

/// The documented load-dependent tolerance ladder (DESIGN.md §7): the model
/// is a light/moderate-load approximation, so the acceptable relative error
/// grows with the fraction of the saturation rate.
double default_tolerance(double lambda_frac) noexcept;

class ValidationEngine {
 public:
  explicit ValidationEngine(ValidationConfig cfg = {});

  const ValidationConfig& config() const noexcept { return cfg_; }

  /// Runs and classifies the whole suite. Cases execute sequentially (each
  /// case already parallelises its replication grid); throws
  /// std::invalid_argument on an invalid spec or a sim-only case without a
  /// max_rate anchor.
  ValidationReport run(const std::vector<ScenarioCase>& suite) const;

  /// Classification core for a modeled point, exposed for unit tests:
  /// `tolerance` is the ladder value, `ci_epsilon` the relative CI slack.
  static PointClass classify_modeled(double model_latency,
                                     const util::ConfidenceInterval& ci,
                                     double tolerance, double ci_epsilon) noexcept;

  /// Sim-only sanity checks (conservation, offered-load tracking,
  /// lambda-monotonicity against `prev`, the previous unsaturated point).
  /// Returns the failure description, or empty when all checks pass.
  /// Exposed for unit tests.
  static std::string sanity_failure(const ReplicationPoint& pt,
                                    const ReplicationPoint* prev,
                                    const core::ScenarioSpec& spec);

 private:
  ValidationConfig cfg_;
};

/// The committed-baseline suite: every registry-modeled topology x traffic x
/// arrivals family (incl. the uniform mesh at two shapes) plus sim-only
/// specs (MMPP bursts, transpose permutation, bidirectional torus, mesh
/// hot-spot). Sized for minutes, not hours — the nightly CI job and
/// `tools/validate` run this.
std::vector<ScenarioCase> full_suite();

/// Tier-1 subset (ctest label `accuracy`): one modeled case per topology
/// family plus one sim-only case, at reduced measurement effort — seconds.
std::vector<ScenarioCase> quick_suite();

}  // namespace kncube::validate
