#include "validate/accuracy_json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace kncube::validate {

namespace {

/// Round-trip-exact double, or null for NaN (JSON has no NaN literal).
std::string json_number(double v) {
  if (std::isnan(v)) return "null";
  if (std::isinf(v)) return v > 0 ? "1e999" : "-1e999";  // reads back as inf
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string to_json(const ValidationReport& report) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"kncube-accuracy-v1\",\n";
  out << "  \"config\": {\n";
  out << "    \"replications\": " << report.config.replications << ",\n";
  out << "    \"confidence\": " << json_number(report.config.confidence) << ",\n";
  out << "    \"ci_epsilon\": " << json_number(report.config.ci_epsilon) << "\n";
  out << "  },\n";
  out << "  \"summary\": {\n";
  out << "    \"points\": " << report.points.size() << ",\n";
  out << "    \"model_in_ci\": " << report.count(PointClass::kModelInCI) << ",\n";
  out << "    \"within_tolerance\": " << report.count(PointClass::kWithinTolerance)
      << ",\n";
  out << "    \"out_of_tolerance\": " << report.count(PointClass::kOutOfTolerance)
      << ",\n";
  out << "    \"sim_sanity\": " << report.count(PointClass::kSimSanity) << ",\n";
  out << "    \"sim_sanity_failed\": "
      << report.count(PointClass::kSimSanityFailed) << ",\n";
  out << "    \"skipped_saturated\": "
      << report.count(PointClass::kSkippedSaturated) << ",\n";
  out << "    \"passed\": " << (report.passed() ? "true" : "false") << "\n";
  out << "  },\n";
  out << "  \"points\": [\n";
  for (std::size_t i = 0; i < report.points.size(); ++i) {
    const ValidationPoint& p = report.points[i];
    out << "    {\"scenario\": " << json_string(p.scenario)
        << ", \"family\": " << json_string(p.family)
        << ", \"lambda\": " << json_number(p.lambda)
        << ", \"lambda_frac\": " << json_number(p.lambda_frac)
        << ", \"model_latency\": " << json_number(p.model_latency)
        << ", \"sim_mean\": " << json_number(p.sim_mean)
        << ", \"ci_half_width\": " << json_number(p.ci_half_width)
        << ", \"rel_error\": " << json_number(p.rel_error)
        << ", \"tolerance\": " << json_number(p.tolerance)
        << ", \"class\": " << json_string(point_class_name(p.cls))
        << ", \"detail\": " << json_string(p.detail) << "}"
        << (i + 1 < report.points.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

bool write_accuracy_json(const ValidationReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_json(report);
  return static_cast<bool>(out);
}

util::Table accuracy_table(const ValidationReport& report) {
  util::Table table({"scenario", "family", "frac", "lambda", "model", "sim",
                     "ci±", "rel err", "tol", "class"});
  table.set_title("model-vs-simulation accuracy");
  for (const ValidationPoint& p : report.points) {
    const auto opt = [](double v) -> util::Cell {
      if (std::isnan(v)) return std::string("-");
      return v;
    };
    table.add_row({p.scenario, p.family, p.lambda_frac, p.lambda,
                   opt(p.model_latency), opt(p.sim_mean), opt(p.ci_half_width),
                   opt(p.rel_error), opt(p.tolerance),
                   std::string(point_class_name(p.cls))});
  }
  return table;
}

std::string summary_line(const ValidationReport& report) {
  std::ostringstream out;
  out << report.points.size() << " points: "
      << report.count(PointClass::kModelInCI) << " model-in-CI, "
      << report.count(PointClass::kWithinTolerance) << " within-tolerance, "
      << report.count(PointClass::kOutOfTolerance) << " out-of-tolerance, "
      << report.count(PointClass::kSimSanity) << " sim-sanity, "
      << report.count(PointClass::kSimSanityFailed) << " sim-sanity-failed, "
      << report.count(PointClass::kSkippedSaturated) << " skipped-saturated -> "
      << (report.passed() ? "PASS" : "FAIL");
  return out.str();
}

}  // namespace kncube::validate
