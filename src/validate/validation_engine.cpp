#include "validate/validation_engine.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/sweep_engine.hpp"
#include "model/analytical_model.hpp"
#include "model/engine/bursty.hpp"

namespace kncube::validate {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Relative gap between simulated accepted and generated load tolerated
/// below saturation: flit conservation means the two can differ only by the
/// finite in-flight population at the measurement edges.
constexpr double kConservationTol = 0.05;

}  // namespace

const char* point_class_name(PointClass cls) noexcept {
  switch (cls) {
    case PointClass::kModelInCI: return "model_in_ci";
    case PointClass::kWithinTolerance: return "within_tolerance";
    case PointClass::kOutOfTolerance: return "out_of_tolerance";
    case PointClass::kSimSanity: return "sim_sanity";
    case PointClass::kSimSanityFailed: return "sim_sanity_failed";
    case PointClass::kSkippedSaturated: return "skipped_saturated";
  }
  return "unknown";
}

int ValidationReport::count(PointClass cls) const noexcept {
  int n = 0;
  for (const ValidationPoint& p : points) n += (p.cls == cls) ? 1 : 0;
  return n;
}

bool ValidationReport::passed() const noexcept {
  return count(PointClass::kOutOfTolerance) == 0 &&
         count(PointClass::kSimSanityFailed) == 0;
}

double default_tolerance(double lambda_frac) noexcept {
  // The ladder mirrors the empirically observed accuracy profile (DESIGN.md
  // §7): tight tracking at light load, growing approximation error toward
  // the knee where the M/G/1 blocking terms dominate.
  if (lambda_frac <= 0.2) return 0.15;
  if (lambda_frac <= 0.35) return 0.25;
  if (lambda_frac <= 0.5) return 0.35;
  if (lambda_frac <= 0.65) return 0.45;
  return 0.60;
}

ValidationEngine::ValidationEngine(ValidationConfig cfg) : cfg_(cfg) {
  if (cfg_.replications < 1) {
    throw std::invalid_argument("ValidationEngine: need at least 1 replication");
  }
  if (!(cfg_.confidence > 0.0 && cfg_.confidence < 1.0)) {
    throw std::invalid_argument("ValidationEngine: confidence must be in (0,1)");
  }
  if (cfg_.ci_epsilon < 0.0) {
    throw std::invalid_argument("ValidationEngine: ci_epsilon must be >= 0");
  }
}

PointClass ValidationEngine::classify_modeled(double model_latency,
                                              const util::ConfidenceInterval& ci,
                                              double tolerance,
                                              double ci_epsilon) noexcept {
  if (!std::isfinite(model_latency) || !std::isfinite(ci.mean) || ci.mean <= 0.0) {
    return PointClass::kOutOfTolerance;
  }
  if (ci.contains(model_latency, ci_epsilon * ci.mean)) {
    return PointClass::kModelInCI;
  }
  const double rel = std::abs(model_latency - ci.mean) / ci.mean;
  return rel <= tolerance ? PointClass::kWithinTolerance
                          : PointClass::kOutOfTolerance;
}

ValidationReport ValidationEngine::run(const std::vector<ScenarioCase>& suite) const {
  ValidationReport report;
  report.config = cfg_;

  for (const ScenarioCase& c : suite) {
    core::SweepEngine engine(c.spec);  // validates the spec
    ReplicationRunner runner(c.spec, cfg_.replications);
    runner.set_confidence(cfg_.confidence);

    // Sweep anchor: the model's bisected saturation boundary when the
    // registry dispatched a model, the case's explicit ceiling otherwise.
    double anchor = c.max_rate;
    if (engine.has_model()) {
      anchor = engine.saturation_rate().rate;
    } else if (!(anchor > 0.0)) {
      throw std::invalid_argument("ValidationEngine: sim-only case '" + c.name +
                                  "' needs a max_rate sweep anchor");
    }
    std::vector<double> lambdas;
    lambdas.reserve(c.fractions.size());
    for (double f : c.fractions) lambdas.push_back(f * anchor);

    const std::vector<ReplicationPoint> pts = runner.run(lambdas);

    // Monotonicity state for sim-only sanity: the last unsaturated point.
    const ReplicationPoint* prev = nullptr;

    for (std::size_t i = 0; i < pts.size(); ++i) {
      const ReplicationPoint& pt = pts[i];
      ValidationPoint vp;
      vp.scenario = c.name;
      vp.lambda = lambdas[i];
      vp.lambda_frac = c.fractions[i];
      vp.sim_mean = pt.latency.mean;
      vp.ci_half_width = pt.latency.half_width;

      if (engine.has_model()) {
        vp.family = engine.analytical_model().name();
        vp.tolerance = default_tolerance(vp.lambda_frac);
        const model::ModelResult mr = engine.model_point(lambdas[i]);
        vp.model_latency = mr.latency;
        if (mr.saturated || pt.saturated()) {
          vp.cls = PointClass::kSkippedSaturated;
          vp.detail = mr.saturated ? "model saturated" : "sim saturated";
          vp.rel_error = kNaN;
        } else {
          vp.rel_error = std::abs(mr.latency - pt.latency.mean) / pt.latency.mean;
          vp.cls = classify_modeled(mr.latency, pt.latency, vp.tolerance,
                                    cfg_.ci_epsilon);
        }
      } else {
        vp.family = "sim-only";
        vp.model_latency = kNaN;
        vp.rel_error = kNaN;
        vp.tolerance = 0.0;
        if (pt.saturated()) {
          vp.cls = PointClass::kSkippedSaturated;
          vp.detail = "sim saturated";
        } else {
          vp.detail = sanity_failure(pt, prev, c.spec);
          vp.cls = vp.detail.empty() ? PointClass::kSimSanity
                                     : PointClass::kSimSanityFailed;
          prev = &pt;
        }
      }
      report.points.push_back(std::move(vp));
    }
  }
  return report;
}

std::string ValidationEngine::sanity_failure(const ReplicationPoint& pt,
                                             const ReplicationPoint* prev,
                                             const core::ScenarioSpec& spec) {
  std::ostringstream msg;

  // Conservation: below saturation every generated message is eventually
  // delivered, so measured accepted load must track generated load up to
  // the in-flight population at the measurement-window edges.
  const double generated =
      pt.mean_of([](const sim::SimResult& r) { return r.generated_load; });
  const double accepted =
      pt.mean_of([](const sim::SimResult& r) { return r.accepted_load; });
  if (generated > 0.0 &&
      std::abs(accepted - generated) > kConservationTol * generated) {
    msg << "conservation: accepted load " << accepted
        << " deviates from generated load " << generated << " by more than "
        << kConservationTol * 100 << "%";
    return msg.str();
  }

  // Offered-load tracking: the arrival process is constructed to emit the
  // configured mean rate. MMPP gets a wider band, scaled by the ratio of
  // the modulated process's per-cycle arrival standard deviation to the
  // Bernoulli one at the same mean — computed from the MMPP stationary
  // distribution and autocovariance decay (engine/bursty.hpp), so a
  // slow-mixing, high-multiplier chain widens the band while a chain close
  // to Bernoulli collapses it back to the Bernoulli tolerance.
  const double offered = pt.lambda;
  double offered_tol = 0.15;
  if (spec.is_mmpp()) {
    const core::MmppArrivals& m = spec.mmpp();
    offered_tol *= model::mmpp_offered_load_dispersion(
        offered, m.burst_multiplier, m.p_enter_burst, m.p_leave_burst);
  }
  if (offered > 0.0 && std::abs(generated - offered) > offered_tol * offered) {
    msg << "offered-load tracking: generated load " << generated
        << " deviates from offered " << offered << " by more than "
        << offered_tol * 100 << "%";
    return msg.str();
  }

  // Lambda-monotonicity: mean latency must not decrease with load beyond
  // the replication noise band (the two CIs' combined half-widths). An
  // infinite half-width (R = 1) cannot reject.
  if (prev != nullptr) {
    const double slack =
        pt.latency.half_width + prev->latency.half_width + 1e-9 * prev->latency.mean;
    if (std::isfinite(slack) && pt.latency.mean < prev->latency.mean - slack) {
      msg << "monotonicity: latency " << pt.latency.mean << " at lambda "
          << pt.lambda << " dropped below " << prev->latency.mean
          << " at lambda " << prev->lambda << " beyond the CI noise band";
      return msg.str();
    }
  }
  return {};
}

}  // namespace kncube::validate
