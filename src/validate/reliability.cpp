#include "validate/reliability.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/model_registry.hpp"
#include "validate/replication.hpp"

namespace kncube::validate {

namespace {

std::string json_number(double v) {
  if (std::isnan(v)) return "null";
  if (std::isinf(v)) return v > 0 ? "1e999" : "-1e999";  // reads back as inf
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

/// Bitwise SimResult comparison over every fault-relevant field. Exact
/// (std::bit_cast, not tolerance): the PR 6 sharding contract is
/// bit-identity, and faults must not weaken it.
bool results_identical(const sim::SimResult& a, const sim::SimResult& b) {
  const auto same = [](double x, double y) {
    return std::bit_cast<std::uint64_t>(x) == std::bit_cast<std::uint64_t>(y);
  };
  return same(a.mean_latency, b.mean_latency) &&
         same(a.mean_network_latency, b.mean_network_latency) &&
         same(a.generated_load, b.generated_load) &&
         same(a.accepted_load, b.accepted_load) &&
         a.measured_messages == b.measured_messages && a.cycles == b.cycles &&
         a.unreachable_messages == b.unreachable_messages &&
         a.unreachable_messages_total == b.unreachable_messages_total &&
         a.unreachable_pairs == b.unreachable_pairs &&
         a.failed_routers == b.failed_routers &&
         a.saturated == b.saturated && a.conservation_ok == b.conservation_ok;
}

}  // namespace

ReliabilityEngine::ReliabilityEngine(ReliabilityConfig cfg)
    : cfg_(std::move(cfg)) {}

core::ScenarioSpec ReliabilityEngine::faulty_spec(const ReliabilityCase& c,
                                                  int f) {
  core::ScenarioSpec spec = c.spec;
  if (f > 0) {
    // The random mode fails round(rate * N) routers; rate = f/N reproduces
    // the requested count exactly while keeping the failure *placement* a
    // seed-derived function of the spec text (so the point is reproducible
    // from RELIABILITY.json alone).
    spec.failures.random_rate =
        static_cast<double>(f) / static_cast<double>(spec.node_count());
    spec.failures.random_seed = c.failure_seed;
  }
  return spec;
}

ReliabilityReport ReliabilityEngine::run(
    const std::vector<ReliabilityCase>& cases) const {
  ReliabilityReport report;
  report.config = cfg_;

  for (const ReliabilityCase& c : cases) {
    std::vector<ReliabilityPoint> case_points;

    for (const int f : c.failure_counts) {
      const core::ScenarioSpec spec = faulty_spec(c, f);
      ReplicationRunner runner(spec, cfg_.replications);
      runner.set_confidence(cfg_.confidence);
      std::vector<double> lambdas;
      lambdas.reserve(c.lambda_fracs.size());
      for (const double frac : c.lambda_fracs) {
        lambdas.push_back(frac * c.base_rate);
      }
      const std::vector<ReplicationPoint> measured = runner.run(lambdas);

      for (std::size_t i = 0; i < measured.size(); ++i) {
        const ReplicationPoint& m = measured[i];
        ReliabilityPoint p;
        p.scenario = c.name;
        p.failed_routers = f;
        p.failure_seed = f > 0 ? c.failure_seed : 0;
        p.lambda = m.lambda;
        p.lambda_frac = c.lambda_fracs[i];
        if (!m.results.empty()) {
          // Static fault-set properties: identical in every replication.
          p.unreachable_pairs = m.results.front().unreachable_pairs;
          p.reachable_pair_fraction = m.results.front().reachable_pair_fraction;
        }
        p.replications = m.replications;
        p.latency = m.latency;
        p.offered_load =
            m.mean_of([](const sim::SimResult& r) { return r.generated_load; });
        p.delivered_load = m.throughput.mean;
        p.unreachable_fraction = m.mean_of(
            [](const sim::SimResult& r) { return r.unreachable_fraction; });
        p.saturated = m.saturated();
        for (const sim::SimResult& r : m.results) {
          if (!r.conservation_ok) ++p.conservation_violations;
        }
        report.conservation_violations += p.conservation_violations;
        case_points.push_back(std::move(p));
      }
    }

    // Degradation ratios vs the pristine (f = 0) point at the same load
    // fraction; left NaN when either side saturated (a saturated mean is a
    // truncation artefact, not a latency).
    for (ReliabilityPoint& p : case_points) {
      if (p.failed_routers == 0) continue;
      for (const ReliabilityPoint& base : case_points) {
        if (base.failed_routers != 0 || base.lambda_frac != p.lambda_frac)
          continue;
        if (base.delivered_load > 0.0) {
          p.throughput_ratio = p.delivered_load / base.delivered_load;
        }
        if (!p.saturated && !base.saturated && base.latency.mean > 0.0) {
          p.latency_ratio = p.latency.mean / base.latency.mean;
        }
        break;
      }
    }

    // Thread invariance: the most-degraded config at the lowest load, one
    // replication per thread count, all bit-identical (sim.threads is
    // excluded from key(), so every run shares the replication-0 seed).
    if (!c.failure_counts.empty() && !c.lambda_fracs.empty() &&
        cfg_.thread_sweep.size() > 1) {
      int worst = 0;
      for (const int f : c.failure_counts) worst = std::max(worst, f);
      core::ScenarioSpec spec = faulty_spec(c, worst);
      const double lambda = c.lambda_fracs.front() * c.base_rate;
      sim::SimConfig base_cfg = core::to_sim_config(spec, lambda);
      base_cfg.seed = sim::replication_seed(spec.key(), spec.seed, 0);
      std::vector<sim::SimResult> runs;
      for (const int t : cfg_.thread_sweep) {
        sim::SimConfig cfg = base_cfg;
        cfg.sim_threads = t;
        runs.push_back(sim::simulate(cfg));
      }
      for (std::size_t i = 1; i < runs.size(); ++i) {
        if (!results_identical(runs.front(), runs[i])) {
          report.thread_invariant = false;
        }
      }
    }

    for (ReliabilityPoint& p : case_points) {
      report.points.push_back(std::move(p));
    }
  }

  return report;
}

std::vector<ReliabilityCase> reliability_suite() {
  std::vector<ReliabilityCase> suite;

  // --- hot-spot torus (the paper's substrate) under router failures ---
  {
    ReliabilityCase c;
    c.name = "faulty-hotspot-torus-k8";
    c.spec.torus().k = 8;
    c.spec.hotspot().fraction = 0.2;
    c.spec.message_length = 16;
    c.spec.target_messages = 2000;
    c.spec.warmup_cycles = 5000;
    c.spec.max_cycles = 800'000;
    c.failure_counts = {0, 1, 2, 4};
    c.failure_seed = 7;
    c.lambda_fracs = {0.3, 0.6};
    c.base_rate =
        core::make_analytical_model(c.spec).model->estimated_saturation_rate();
    suite.push_back(std::move(c));
  }

  // --- uniform mesh (position-dependent load; edge failures matter
  // differently from centre failures) ---
  {
    ReliabilityCase c;
    c.name = "faulty-uniform-mesh-k8-n2";
    c.spec.topology = core::MeshTopology{8, 2};
    c.spec.traffic = core::UniformTraffic{};
    c.spec.message_length = 16;
    c.spec.target_messages = 2000;
    c.spec.warmup_cycles = 5000;
    c.spec.max_cycles = 800'000;
    c.failure_counts = {0, 1, 2, 4};
    c.failure_seed = 7;
    c.lambda_fracs = {0.3, 0.6};
    c.base_rate =
        core::make_analytical_model(c.spec).model->estimated_saturation_rate();
    suite.push_back(std::move(c));
  }

  return suite;
}

std::vector<ReliabilityCase> reliability_quick_suite() {
  std::vector<ReliabilityCase> suite = reliability_suite();
  for (ReliabilityCase& c : suite) {
    // Tier-1 sizing: pristine + one degraded config, one load point, reduced
    // measurement effort per replication.
    c.failure_counts = {0, 2};
    c.lambda_fracs = {0.3};
    c.spec.target_messages = 700;
    c.spec.warmup_cycles = 3000;
    c.spec.max_cycles = 300'000;
  }
  return suite;
}

std::string to_json(const ReliabilityReport& report) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"kncube-reliability-v1\",\n";
  out << "  \"config\": {\n";
  out << "    \"replications\": " << report.config.replications << ",\n";
  out << "    \"confidence\": " << json_number(report.config.confidence)
      << "\n";
  out << "  },\n";
  out << "  \"summary\": {\n";
  out << "    \"points\": " << report.points.size() << ",\n";
  out << "    \"conservation_violations\": " << report.conservation_violations
      << ",\n";
  out << "    \"thread_invariant\": "
      << (report.thread_invariant ? "true" : "false") << ",\n";
  out << "    \"passed\": " << (report.passed() ? "true" : "false") << "\n";
  out << "  },\n";
  out << "  \"points\": [\n";
  for (std::size_t i = 0; i < report.points.size(); ++i) {
    const ReliabilityPoint& p = report.points[i];
    out << "    {\"scenario\": " << json_string(p.scenario)
        << ", \"failed_routers\": " << p.failed_routers
        << ", \"failure_seed\": " << p.failure_seed
        << ", \"lambda\": " << json_number(p.lambda)
        << ", \"lambda_frac\": " << json_number(p.lambda_frac)
        << ", \"unreachable_pairs\": " << p.unreachable_pairs
        << ", \"reachable_pair_fraction\": "
        << json_number(p.reachable_pair_fraction)
        << ", \"latency_mean\": " << json_number(p.latency.mean)
        << ", \"latency_ci_half_width\": " << json_number(p.latency.half_width)
        << ", \"offered_load\": " << json_number(p.offered_load)
        << ", \"delivered_load\": " << json_number(p.delivered_load)
        << ", \"unreachable_fraction\": " << json_number(p.unreachable_fraction)
        << ", \"latency_ratio\": " << json_number(p.latency_ratio)
        << ", \"throughput_ratio\": " << json_number(p.throughput_ratio)
        << ", \"saturated\": " << (p.saturated ? "true" : "false")
        << ", \"conservation_violations\": " << p.conservation_violations
        << "}" << (i + 1 < report.points.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

bool write_reliability_json(const ReliabilityReport& report,
                            const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_json(report);
  return static_cast<bool>(out);
}

util::Table reliability_table(const ReliabilityReport& report) {
  util::Table table({"scenario", "failed", "frac", "lambda", "reach", "latency",
                     "ci±", "delivered", "unreach", "lat×", "thr×", "sat"});
  table.set_title("reliability degradation under router failures");
  const auto opt = [](double v) -> util::Cell {
    if (std::isnan(v)) return std::string("-");
    return v;
  };
  for (const ReliabilityPoint& p : report.points) {
    table.add_row({p.scenario, static_cast<long long>(p.failed_routers),
                   p.lambda_frac, p.lambda, p.reachable_pair_fraction,
                   opt(p.latency.mean), opt(p.latency.half_width),
                   p.delivered_load, p.unreachable_fraction,
                   opt(p.latency_ratio), opt(p.throughput_ratio),
                   std::string(p.saturated ? "yes" : "no")});
  }
  return table;
}

std::string summary_line(const ReliabilityReport& report) {
  std::ostringstream out;
  out << report.points.size() << " points, "
      << report.conservation_violations << " conservation violations, "
      << "thread-invariant: " << (report.thread_invariant ? "yes" : "no")
      << " -> " << (report.passed() ? "PASS" : "FAIL");
  return out.str();
}

}  // namespace kncube::validate
