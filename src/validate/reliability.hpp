// ReliabilityEngine: reliability-degradation measurement over the fault axis.
//
// Where the ValidationEngine asks "does the analytical model match the
// simulator on pristine networks?", this engine asks "how gracefully does
// the simulated network degrade as routers fail?". Each ReliabilityCase is a
// pristine ScenarioSpec plus a sweep of failure counts: for every count f
// the engine derives a faulty spec (seed-derived random mode at rate f/N, so
// the resolved failure set is a deterministic function of the spec) and
// measures it at each lambda fraction through ReplicationRunner, producing
// latency-degradation and survivable-throughput curves relative to the
// pristine (f = 0) baseline at the same load.
//
// Gates (ReliabilityReport::passed):
//  - zero conservation violations: every replication of every point must
//    satisfy SimResult::conservation_ok (offered = delivered + unreachable +
//    in-flight, in both message and flit units);
//  - thread invariance: for each case the most-degraded point re-runs at
//    sim.threads in {1, 2, 4} and all results must be bit-identical.
// Degradation *direction* is deliberately not gated: with few failures the
// latency of the surviving pairs can legitimately drop (the unreachable
// pairs were the longest routes), and gating on monotonicity would encode a
// falsehood. The curves themselves are the committed RELIABILITY.json
// trajectory, diffed structurally in CI like ACCURACY.json.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/scenario_spec.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace kncube::validate {

/// One reliability scenario: a pristine spec swept over failure counts and
/// load fractions of `base_rate` (the pristine model's saturation anchor).
struct ReliabilityCase {
  std::string name;
  core::ScenarioSpec spec;           ///< pristine (failures must be empty)
  std::vector<int> failure_counts;   ///< failed-router counts; must include 0
  std::uint64_t failure_seed = 1;    ///< random-mode seed for every count
  std::vector<double> lambda_fracs;  ///< fractions of base_rate
  double base_rate = 0.0;            ///< lambda anchor (pristine saturation)
};

/// One (failure-config, lambda) measurement.
struct ReliabilityPoint {
  std::string scenario;
  int failed_routers = 0;  ///< requested failure count f
  std::uint64_t failure_seed = 0;
  double lambda = 0.0;
  double lambda_frac = 0.0;

  // Static fault-set properties (identical across replications).
  std::uint64_t unreachable_pairs = 0;
  double reachable_pair_fraction = 1.0;

  // Replication aggregates.
  int replications = 0;
  util::ConfidenceInterval latency;  ///< over surviving (delivered) traffic
  double offered_load = 0.0;         ///< mean generated load, msgs/node/cycle
  double delivered_load = 0.0;       ///< mean accepted load (survivable throughput)
  double unreachable_fraction = 0.0; ///< mean unreachable / generated
  bool saturated = false;            ///< majority vote across replications
  std::uint64_t conservation_violations = 0;

  // Degradation vs the pristine (f = 0) point at the same lambda fraction:
  // NaN for the pristine points themselves and when either side saturated.
  double latency_ratio = std::numeric_limits<double>::quiet_NaN();
  double throughput_ratio = std::numeric_limits<double>::quiet_NaN();
};

struct ReliabilityConfig {
  int replications = 3;
  double confidence = 0.95;
  /// Thread counts the bit-invariance check sweeps (the PR 6 determinism
  /// contract, re-verified on faulty networks).
  std::vector<int> thread_sweep = {1, 2, 4};
};

struct ReliabilityReport {
  ReliabilityConfig config;
  std::vector<ReliabilityPoint> points;
  std::uint64_t conservation_violations = 0;
  bool thread_invariant = true;

  bool passed() const noexcept {
    return conservation_violations == 0 && thread_invariant;
  }
};

class ReliabilityEngine {
 public:
  explicit ReliabilityEngine(ReliabilityConfig cfg = {});

  /// Derives the faulty spec for failure count `f` of `c` (f = 0 returns the
  /// pristine spec unchanged). Exposed so tests and the report reader can
  /// reproduce exactly which spec a point measured.
  static core::ScenarioSpec faulty_spec(const ReliabilityCase& c, int f);

  ReliabilityReport run(const std::vector<ReliabilityCase>& cases) const;

 private:
  ReliabilityConfig cfg_;
};

/// The committed reliability suite behind RELIABILITY.json: hot-spot torus
/// and uniform mesh, failure counts {0, 1, 2, 4} x two load fractions.
std::vector<ReliabilityCase> reliability_suite();
/// Tier-1-sized subset (seconds): one faulty and one pristine config per
/// topology family, single load fraction.
std::vector<ReliabilityCase> reliability_quick_suite();

/// Deterministic JSON (schema kncube-reliability-v1, no timestamps).
std::string to_json(const ReliabilityReport& report);
bool write_reliability_json(const ReliabilityReport& report,
                            const std::string& path);
util::Table reliability_table(const ReliabilityReport& report);
std::string summary_line(const ReliabilityReport& report);

}  // namespace kncube::validate
