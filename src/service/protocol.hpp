// The capacity-planning service wire protocol: newline-delimited text over
// a Unix domain socket, shared by the daemon (service/server.hpp), the
// client (service/client.hpp) and the protocol unit tests.
//
// On connect the server greets:
//
//   KNCUBE-SERVE <protocol> version=0x<16 hex>        (store version hash)
//
// Client lines:
//
//   PING                        -> PONG
//   STATS                       -> STATS id=- engines=N store=<kind> <k=v...>
//   REQUEST <id>                -> opens a request frame; then
//     <ScenarioSpec key=value lines>                  (core/scenario_spec.hpp
//     request.lambdas=<rate>,<rate>,...                grammar, verbatim)
//     request.points=N request.lo=F request.hi=F      (sweep anchored at the
//     request.max_rate=F                               model's saturation, or
//     request.sim=0|1                                  max_rate when sim-only)
//   END                         -> runs the request
//
// Inside a frame, `request.*` lines are the request parameters and every
// other line is ScenarioSpec text. The request.* lines are *blanked* (not
// removed) from the spec text, so the "line N" positions in
// parse_scenario's errors — which the server returns verbatim in ERROR
// responses — count lines of the frame body exactly as the client sent
// them.
//
// Server response stream for request <id> (points stream as they converge,
// in completion order, each tagged with its index):
//
//   BEGIN id=<id> key=0x<16 hex> model=<name|-> [reason=<rest of line>]
//   SWEEP id=<id> saturation=<rate bits> probes=N     (model sweeps only)
//   POINT id=<id> index=N lambda=<rate bits> model=<hex|-> sim=<hex|->
//   STATS id=<id> <k=v cache stats>                   (engine-cumulative)
//   DONE id=<id> points=N
//   ERROR id=<id|-> <message>                         (newlines -> "; ")
//
// Doubles travel as their IEEE-754 bit pattern (`0x` + 16 hex digits) and
// result structs as hex-encoded raw bytes, so every value a client prints
// is bit-identical to what the server computed — the protocol never
// round-trips through decimal. Struct blobs are only exchanged between
// binaries built from the same tree; the hello's version hash is the
// compatibility check (the client refuses a mismatched server).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "core/experiment.hpp"
#include "core/result_store.hpp"

namespace kncube::service {

inline constexpr int kProtocolVersion = 1;

// ------------------------------------------------------- value encodings ---

/// `0x` + 16 hex digits of the double's IEEE-754 bit pattern.
std::string format_bits(double value);
/// Accepts the 0x bit form (exact) or a plain decimal double (convenience
/// for hand-written requests).
bool parse_rate(const std::string& token, double* out);

std::string encode_hex(const void* data, std::size_t size);
bool decode_hex(const std::string& hex, void* out, std::size_t size);

template <typename T>
std::string encode_struct(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  return encode_hex(&value, sizeof(T));
}

template <typename T>
bool decode_struct(const std::string& hex, T* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  if (!decode_hex(hex, &value, sizeof(T))) return false;
  std::memcpy(out, &value, sizeof(T));
  return true;
}

// --------------------------------------------------------------- request ---

struct Request {
  std::string id;
  /// ScenarioSpec text (request.* lines blanked in place).
  std::string spec_text;
  /// Explicit operating points; empty means "sweep" via points/lo/hi.
  std::vector<double> lambdas;
  int points = 8;
  double lo = 0.1;
  double hi = 0.95;
  /// Sweep ceiling for sim-only specs (no saturation anchor); 0 = unset.
  double max_rate = 0.0;
  bool with_sim = true;
};

/// Parses a frame body (the lines between `REQUEST <id>` and `END`).
/// Malformed request.* parameters throw std::invalid_argument anchored to
/// the body line ("line N: ..."), matching parse_scenario's convention.
Request parse_request_body(const std::string& id,
                           const std::vector<std::string>& lines);

/// Client side: renders the frame body lines (spec text + request.* lines).
std::vector<std::string> format_request_body(const Request& request);

// -------------------------------------------------------------- messages ---

struct Hello {
  int protocol = 0;
  std::uint64_t version = 0;
};

struct BeginMsg {
  std::string id;
  std::uint64_t spec_key = 0;
  std::string model_name;  ///< empty for sim-only
  std::string reason;      ///< sim-only reason (empty when modeled)
};

struct SweepMsg {
  std::string id;
  double saturation = 0.0;
  int probes = 0;
};

struct PointMsg {
  std::string id;
  std::uint64_t index = 0;
  core::PointResult point;
};

struct StatsMsg {
  std::string id;
  core::CacheStats stats;
  /// Server-wide STATS only (0 / empty on per-request lines).
  std::uint64_t engines = 0;
  std::string store_kind;
};

struct DoneMsg {
  std::string id;
  std::uint64_t points = 0;
};

struct ErrorMsg {
  std::string id;  ///< "-" when not tied to a request
  std::string message;
};

std::string format_hello(std::uint64_t version);
bool parse_hello(const std::string& line, Hello* out);

std::string format_begin(const BeginMsg& msg);
bool parse_begin(const std::string& line, BeginMsg* out);

std::string format_sweep(const SweepMsg& msg);
bool parse_sweep(const std::string& line, SweepMsg* out);

std::string format_point(const PointMsg& msg);
bool parse_point(const std::string& line, PointMsg* out);

std::string format_stats(const StatsMsg& msg);
bool parse_stats(const std::string& line, StatsMsg* out);

std::string format_done(const DoneMsg& msg);
bool parse_done(const std::string& line, DoneMsg* out);

/// Multi-line messages are collapsed to one line ("; " separators).
std::string format_error(const std::string& id, const std::string& message);
bool parse_error(const std::string& line, ErrorMsg* out);

}  // namespace kncube::service
