#include "service/protocol.hpp"

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace kncube::service {

namespace {

[[noreturn]] void fail_line(int line_no, const std::string& what) {
  throw std::invalid_argument("line " + std::to_string(line_no) + ": " + what);
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string t;
  while (is >> t) tokens.push_back(t);
  return tokens;
}

/// Value of the first `key=`-prefixed token; false when absent.
bool token_value(const std::vector<std::string>& tokens, const std::string& key,
                 std::string* out) {
  const std::string prefix = key + "=";
  for (const std::string& t : tokens) {
    if (t.rfind(prefix, 0) == 0) {
      *out = t.substr(prefix.size());
      return true;
    }
  }
  return false;
}

/// Rest of `line` after the `key=` marker (captures spaces to end of line);
/// false when the marker is absent.
bool rest_after(const std::string& line, const std::string& key,
                std::string* out) {
  const std::string marker = " " + key + "=";
  const std::size_t pos = line.find(marker);
  if (pos == std::string::npos) return false;
  *out = line.substr(pos + marker.size());
  return true;
}

bool parse_u64(const std::string& s, std::uint64_t* out, int base = 10) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, base);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_bits_token(const std::string& s, double* out) {
  if (s.rfind("0x", 0) != 0 && s.rfind("0X", 0) != 0) return false;
  std::uint64_t bits = 0;
  if (!parse_u64(s.substr(2), &bits, 16)) return false;
  *out = std::bit_cast<double>(bits);
  return true;
}

bool token_u64(const std::vector<std::string>& tokens, const std::string& key,
               std::uint64_t* out) {
  std::string v;
  if (!token_value(tokens, key, &v)) return false;
  if (v.rfind("0x", 0) == 0 || v.rfind("0X", 0) == 0)
    return parse_u64(v.substr(2), out, 16);
  return parse_u64(v, out);
}

bool token_bits(const std::vector<std::string>& tokens, const std::string& key,
                double* out) {
  std::string v;
  return token_value(tokens, key, &v) && parse_bits_token(v, out);
}

std::string hex16(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

// --------------------------------------------------------- value encodings ---

std::string format_bits(double value) {
  return hex16(std::bit_cast<std::uint64_t>(value));
}

bool parse_rate(const std::string& token, double* out) {
  if (parse_bits_token(token, out)) return true;
  if (token.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(token.c_str(), &end);
  if (errno != 0 || end != token.c_str() + token.size()) return false;
  *out = v;
  return true;
}

std::string encode_hex(const void* data, std::size_t size) {
  static const char* kDigits = "0123456789abcdef";
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::string out;
  out.reserve(size * 2);
  for (std::size_t i = 0; i < size; ++i) {
    out.push_back(kDigits[bytes[i] >> 4]);
    out.push_back(kDigits[bytes[i] & 0xF]);
  }
  return out;
}

namespace {
int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

bool decode_hex(const std::string& hex, void* out, std::size_t size) {
  if (hex.size() != size * 2) return false;
  auto* bytes = static_cast<unsigned char*>(out);
  for (std::size_t i = 0; i < size; ++i) {
    const int hi = hex_nibble(hex[2 * i]);
    const int lo = hex_nibble(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) return false;
    bytes[i] = static_cast<unsigned char>((hi << 4) | lo);
  }
  return true;
}

// ----------------------------------------------------------------- request ---

Request parse_request_body(const std::string& id,
                           const std::vector<std::string>& lines) {
  Request req;
  req.id = id;
  std::ostringstream spec;
  int line_no = 0;
  for (const std::string& raw : lines) {
    ++line_no;
    // Leading whitespace tolerated, same as the spec grammar.
    const std::size_t start = raw.find_first_not_of(" \t");
    const bool is_param =
        start != std::string::npos && raw.compare(start, 8, "request.") == 0;
    if (!is_param) {
      spec << raw << "\n";
      continue;
    }
    spec << "\n";  // keep spec line numbers aligned with the frame body
    const std::string t = raw.substr(start + 8);
    const std::size_t eq = t.find('=');
    if (eq == std::string::npos)
      fail_line(line_no, "expected request.key=value, got 'request." + t + "'");
    const std::string key = t.substr(0, eq);
    const std::string value = t.substr(eq + 1);
    if (key == "lambdas") {
      req.lambdas.clear();
      std::istringstream vs(value);
      std::string item;
      while (std::getline(vs, item, ',')) {
        double rate = 0.0;
        if (!parse_rate(item, &rate) || !(rate > 0.0))
          fail_line(line_no, "request.lambdas: bad rate '" + item + "'");
        req.lambdas.push_back(rate);
      }
      if (req.lambdas.empty())
        fail_line(line_no, "request.lambdas: expected at least one rate");
    } else if (key == "points") {
      std::uint64_t n = 0;
      if (!parse_u64(value, &n) || n < 2 || n > 100000)
        fail_line(line_no, "request.points: expected an integer >= 2, got '" +
                               value + "'");
      req.points = static_cast<int>(n);
    } else if (key == "lo" || key == "hi" || key == "max_rate") {
      double v = 0.0;
      if (!parse_rate(value, &v) || !(v >= 0.0))
        fail_line(line_no, "request." + key + ": bad value '" + value + "'");
      (key == "lo" ? req.lo : key == "hi" ? req.hi : req.max_rate) = v;
    } else if (key == "sim") {
      if (value == "0" || value == "false") {
        req.with_sim = false;
      } else if (value == "1" || value == "true") {
        req.with_sim = true;
      } else {
        fail_line(line_no, "request.sim: expected 0|1, got '" + value + "'");
      }
    } else {
      fail_line(line_no, "unknown request parameter 'request." + key + "'");
    }
  }
  req.spec_text = spec.str();
  return req;
}

std::vector<std::string> format_request_body(const Request& request) {
  std::vector<std::string> lines;
  std::istringstream spec(request.spec_text);
  std::string line;
  while (std::getline(spec, line)) lines.push_back(line);
  lines.push_back(std::string("request.sim=") + (request.with_sim ? "1" : "0"));
  if (!request.lambdas.empty()) {
    std::string l = "request.lambdas=";
    for (std::size_t i = 0; i < request.lambdas.size(); ++i) {
      if (i > 0) l += ',';
      l += format_bits(request.lambdas[i]);
    }
    lines.push_back(l);
  } else {
    lines.push_back("request.points=" + std::to_string(request.points));
    lines.push_back("request.lo=" + format_bits(request.lo));
    lines.push_back("request.hi=" + format_bits(request.hi));
    if (request.max_rate > 0.0)
      lines.push_back("request.max_rate=" + format_bits(request.max_rate));
  }
  return lines;
}

// ---------------------------------------------------------------- messages ---

std::string format_hello(std::uint64_t version) {
  return "KNCUBE-SERVE " + std::to_string(kProtocolVersion) +
         " version=" + hex16(version);
}

bool parse_hello(const std::string& line, Hello* out) {
  const auto tokens = split_ws(line);
  if (tokens.size() < 3 || tokens[0] != "KNCUBE-SERVE") return false;
  std::uint64_t protocol = 0;
  if (!parse_u64(tokens[1], &protocol)) return false;
  out->protocol = static_cast<int>(protocol);
  return token_u64(tokens, "version", &out->version);
}

std::string format_begin(const BeginMsg& msg) {
  std::string line = "BEGIN id=" + msg.id + " key=" + hex16(msg.spec_key) +
                     " model=" +
                     (msg.model_name.empty() ? "-" : msg.model_name);
  if (!msg.reason.empty()) line += " reason=" + msg.reason;
  return line;
}

bool parse_begin(const std::string& line, BeginMsg* out) {
  const auto tokens = split_ws(line);
  if (tokens.empty() || tokens[0] != "BEGIN") return false;
  std::string model;
  if (!token_value(tokens, "id", &out->id) ||
      !token_u64(tokens, "key", &out->spec_key) ||
      !token_value(tokens, "model", &model))
    return false;
  out->model_name = model == "-" ? "" : model;
  rest_after(line, "reason", &out->reason);
  return true;
}

std::string format_sweep(const SweepMsg& msg) {
  return "SWEEP id=" + msg.id + " saturation=" + format_bits(msg.saturation) +
         " probes=" + std::to_string(msg.probes);
}

bool parse_sweep(const std::string& line, SweepMsg* out) {
  const auto tokens = split_ws(line);
  if (tokens.empty() || tokens[0] != "SWEEP") return false;
  std::uint64_t probes = 0;
  if (!token_value(tokens, "id", &out->id) ||
      !token_bits(tokens, "saturation", &out->saturation) ||
      !token_u64(tokens, "probes", &probes))
    return false;
  out->probes = static_cast<int>(probes);
  return true;
}

std::string format_point(const PointMsg& msg) {
  return "POINT id=" + msg.id + " index=" + std::to_string(msg.index) +
         " lambda=" + format_bits(msg.point.lambda) + " model=" +
         (msg.point.has_model ? encode_struct(msg.point.model) : "-") +
         " sim=" + (msg.point.has_sim ? encode_struct(msg.point.sim) : "-");
}

bool parse_point(const std::string& line, PointMsg* out) {
  const auto tokens = split_ws(line);
  if (tokens.empty() || tokens[0] != "POINT") return false;
  std::string model, sim;
  if (!token_value(tokens, "id", &out->id) ||
      !token_u64(tokens, "index", &out->index) ||
      !token_bits(tokens, "lambda", &out->point.lambda) ||
      !token_value(tokens, "model", &model) ||
      !token_value(tokens, "sim", &sim))
    return false;
  out->point.has_model = model != "-";
  if (out->point.has_model && !decode_struct(model, &out->point.model))
    return false;
  out->point.has_sim = sim != "-";
  if (out->point.has_sim && !decode_struct(sim, &out->point.sim)) return false;
  return true;
}

std::string format_stats(const StatsMsg& msg) {
  std::string line = "STATS id=" + msg.id;
  if (!msg.store_kind.empty()) {
    line += " engines=" + std::to_string(msg.engines) +
            " store=" + msg.store_kind;
  }
  return line + " " + core::format_cache_stats(msg.stats);
}

bool parse_stats(const std::string& line, StatsMsg* out) {
  const auto tokens = split_ws(line);
  if (tokens.empty() || tokens[0] != "STATS") return false;
  if (!token_value(tokens, "id", &out->id)) return false;
  token_u64(tokens, "engines", &out->engines);
  token_value(tokens, "store", &out->store_kind);
  core::CacheStats& s = out->stats;
  token_u64(tokens, "model_entries", &s.model_entries);
  token_u64(tokens, "sim_entries", &s.sim_entries);
  token_u64(tokens, "saturation_entries", &s.saturation_entries);
  token_u64(tokens, "model_hits", &s.model_hits);
  token_u64(tokens, "sim_hits", &s.sim_hits);
  token_u64(tokens, "saturation_hits", &s.saturation_hits);
  token_u64(tokens, "model_solves", &s.model_solves);
  token_u64(tokens, "sim_runs", &s.sim_runs);
  token_u64(tokens, "inflight_waits", &s.inflight_waits);
  return true;
}

std::string format_done(const DoneMsg& msg) {
  return "DONE id=" + msg.id + " points=" + std::to_string(msg.points);
}

bool parse_done(const std::string& line, DoneMsg* out) {
  const auto tokens = split_ws(line);
  if (tokens.empty() || tokens[0] != "DONE") return false;
  return token_value(tokens, "id", &out->id) &&
         token_u64(tokens, "points", &out->points);
}

std::string format_error(const std::string& id, const std::string& message) {
  std::string flat;
  flat.reserve(message.size());
  for (std::size_t i = 0; i < message.size(); ++i) {
    if (message[i] == '\n') {
      if (i + 1 < message.size()) flat += "; ";
    } else if (message[i] != '\r') {
      flat += message[i];
    }
  }
  return "ERROR id=" + (id.empty() ? "-" : id) + " " + flat;
}

bool parse_error(const std::string& line, ErrorMsg* out) {
  if (line.rfind("ERROR ", 0) != 0) return false;
  const std::string rest = line.substr(6);
  if (rest.rfind("id=", 0) != 0) return false;
  const std::size_t space = rest.find(' ');
  out->id = rest.substr(3, space == std::string::npos ? std::string::npos
                                                      : space - 3);
  out->message = space == std::string::npos ? "" : rest.substr(space + 1);
  return true;
}

}  // namespace kncube::service
