// The persistent-result-store version: a 64-bit hash over every
// result-producing source file (model, simulator, topology, core), computed
// by CMake at configure time. DiskResultStore stamps it into every store
// file's header and discards stores written under a different version, so a
// model-code change can never serve stale cached fixed points (DESIGN.md
// §11). Tests inject explicit versions to exercise the invalidation path.
#pragma once

#include <cstdint>

namespace kncube::service {

std::uint64_t store_version() noexcept;

}  // namespace kncube::service
