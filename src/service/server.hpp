// The capacity-planning daemon: a Unix-domain-socket server answering
// ScenarioSpec sweep requests from a shared, optionally persistent
// ResultStore.
//
// Architecture (DESIGN.md §11): one accept loop (run()) hands each
// connection to its own reader thread; request *work* — fixed-point solves
// and simulations — is batched onto the global util::ThreadPool by the
// shared SweepEngine instances, so N connections contend for the same
// bounded worker set instead of spawning unbounded compute threads. Engines
// are registered per canonical spec key and all share one ResultStore, so
// concurrent clients asking for the same (spec, lambda) are deduplicated
// in flight by the engine (one solve, everyone gets the bits) and repeated
// questions are answered from the store — across daemon restarts when the
// store is disk-backed.
//
// Points stream back to each client as they converge (completion order,
// index-tagged), every request ends with an engine-cumulative STATS line,
// and malformed requests get structured ERROR responses (parse_scenario's
// line-anchored messages pass through verbatim) without dropping the
// connection.
//
// stop() is async-signal-safe (a self-pipe write), so kncube_serve calls it
// straight from its SIGTERM/SIGINT handlers; run() then drains: stops
// accepting, shuts the client sockets, joins the readers, flushes the
// store and removes the socket file.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/result_store.hpp"
#include "core/sweep_engine.hpp"

namespace kncube::service {

struct ServerOptions {
  std::string socket_path;
  /// Shared across every engine; null = a fresh in-memory store.
  std::shared_ptr<core::ResultStore> store;
  /// Log one INFO line per request (KNC_LOG_INFO).
  bool verbose = false;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens on the socket path (replacing a stale socket file
  /// left by a dead daemon). Throws std::runtime_error on failure.
  void bind();

  /// Blocking accept loop; returns after stop() has drained everything.
  /// Requires bind().
  void run();

  /// Requests shutdown; safe to call from a signal handler or any thread.
  void stop() noexcept;

  const std::string& socket_path() const noexcept {
    return options_.socket_path;
  }
  const std::shared_ptr<core::ResultStore>& store() const noexcept {
    return store_;
  }

  /// Server-wide stats: entry counts from the shared store plus
  /// hit/solve/dedup counters summed over every engine.
  core::CacheStats stats() const;
  std::size_t engine_count() const;
  std::uint64_t requests_served() const noexcept { return requests_served_; }

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mutex;
    std::atomic<bool> dead{false};
    std::atomic<bool> finished{false};
    std::thread thread;
  };

  void connection_loop(Connection* conn);
  void handle_request(Connection* conn, const std::string& id,
                      const std::vector<std::string>& body);
  std::shared_ptr<core::SweepEngine> engine_for(const core::ScenarioSpec& spec);
  void send_line(Connection* conn, const std::string& line);
  void reap_finished_connections();

  ServerOptions options_;
  std::shared_ptr<core::ResultStore> store_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};

  mutable std::mutex engines_mutex_;
  std::map<std::uint64_t, std::shared_ptr<core::SweepEngine>> engines_;

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  std::atomic<std::uint64_t> requests_served_{0};
};

}  // namespace kncube::service
