#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "service/protocol.hpp"
#include "service/store_version.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace kncube::service {

namespace {

/// Upper bound on one request frame — a spec is ~40 lines; anything huge is
/// a runaway or hostile client, and the server errors out instead of
/// buffering it.
constexpr std::size_t kMaxBodyLines = 4096;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un socket_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long (" +
                             std::to_string(path.size()) + " > " +
                             std::to_string(sizeof(addr.sun_path) - 1) +
                             "): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  store_ = options_.store ? options_.store
                          : std::make_shared<core::MemoryResultStore>();
  if (::pipe(stop_pipe_) != 0) throw_errno("Server: pipe");
}

Server::~Server() {
  stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(options_.socket_path.c_str());
  }
  // Joining here covers a Server destroyed without run() having drained
  // (e.g. bind() threw after connections — impossible — or tests).
  for (auto& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
}

void Server::bind() {
  const sockaddr_un addr = socket_address(options_.socket_path);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("Server: socket");
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (errno == EADDRINUSE) {
      // A dead daemon leaves its socket file behind. If nobody answers a
      // connect, the file is stale — remove and retry once.
      const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      const bool live =
          probe >= 0 && ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                                  sizeof(addr)) == 0;
      if (probe >= 0) ::close(probe);
      if (live) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error("Server: '" + options_.socket_path +
                                 "' already has a live daemon");
      }
      ::unlink(options_.socket_path.c_str());
      if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        throw_errno("Server: bind '" + options_.socket_path + "'");
      }
    } else {
      throw_errno("Server: bind '" + options_.socket_path + "'");
    }
  }
  if (::listen(listen_fd_, 64) != 0) throw_errno("Server: listen");
}

void Server::run() {
  if (listen_fd_ < 0) throw std::logic_error("Server::run before bind()");
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("Server: poll");
    }
    if (fds[1].revents != 0) break;  // stop() fired
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      throw_errno("Server: accept");
    }
    reap_finished_connections();
    auto conn = std::make_unique<Connection>();
    conn->fd = client;
    Connection* raw = conn.get();
    conn->thread = std::thread([this, raw] { connection_loop(raw); });
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(std::move(conn));
  }

  // Drain: no new connections, unblock every reader, join, flush.
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& conn : connections_) {
      if (!conn->finished.load()) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (auto& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  connections_.clear();
  store_->flush();
}

void Server::stop() noexcept {
  stopping_.store(true, std::memory_order_relaxed);
  // Async-signal-safe wake-up for the poll loop.
  const char byte = 'x';
  [[maybe_unused]] const ssize_t r = ::write(stop_pipe_[1], &byte, 1);
}

core::CacheStats Server::stats() const {
  core::CacheStats total;
  const core::StoreSizes sizes = store_->sizes();
  total.model_entries = sizes.model;
  total.sim_entries = sizes.sim;
  total.saturation_entries = sizes.saturation;
  std::lock_guard<std::mutex> lock(engines_mutex_);
  for (const auto& [key, engine] : engines_) {
    const core::CacheStats s = engine->cache_stats();
    total.model_hits += s.model_hits;
    total.sim_hits += s.sim_hits;
    total.saturation_hits += s.saturation_hits;
    total.model_solves += s.model_solves;
    total.sim_runs += s.sim_runs;
    total.inflight_waits += s.inflight_waits;
  }
  return total;
}

std::size_t Server::engine_count() const {
  std::lock_guard<std::mutex> lock(engines_mutex_);
  return engines_.size();
}

std::shared_ptr<core::SweepEngine> Server::engine_for(
    const core::ScenarioSpec& spec) {
  const std::uint64_t key = spec.key();
  std::lock_guard<std::mutex> lock(engines_mutex_);
  auto it = engines_.find(key);
  if (it != engines_.end()) return it->second;
  auto engine = std::make_shared<core::SweepEngine>(spec, store_);
  engines_.emplace(key, engine);
  return engine;
}

void Server::send_line(Connection* conn, const std::string& line) {
  if (conn->dead.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  std::string out = line;
  out.push_back('\n');
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = ::send(conn->fd, out.data() + sent, out.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      // Client is gone; keep computing (results land in the store) but
      // stop writing.
      conn->dead.store(true, std::memory_order_relaxed);
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

void Server::connection_loop(Connection* conn) {
  send_line(conn, format_hello(store_version()));

  std::string buffer;
  bool in_frame = false;
  std::string frame_id;
  std::vector<std::string> body;
  char chunk[4096];

  const auto process_line = [&](const std::string& line) {
    if (in_frame) {
      if (line == "END") {
        in_frame = false;
        handle_request(conn, frame_id, body);
        body.clear();
        return true;
      }
      if (body.size() >= kMaxBodyLines) {
        send_line(conn, format_error(frame_id, "request body too large"));
        return false;  // protocol out of sync; drop the connection
      }
      body.push_back(line);
      return true;
    }
    if (line.empty()) return true;
    if (line == "PING") {
      send_line(conn, "PONG");
      return true;
    }
    if (line == "STATS") {
      StatsMsg msg;
      msg.id = "-";
      msg.stats = stats();
      msg.engines = engine_count();
      msg.store_kind = store_->kind();
      send_line(conn, format_stats(msg));
      return true;
    }
    if (line.rfind("REQUEST", 0) == 0) {
      const auto space = line.find(' ');
      frame_id = space == std::string::npos ? "" : line.substr(space + 1);
      if (frame_id.empty() ||
          frame_id.find_first_of(" \t") != std::string::npos) {
        send_line(conn, format_error("-", "REQUEST needs an id token"));
        return true;
      }
      in_frame = true;
      body.clear();
      return true;
    }
    send_line(conn, format_error("-", "unknown command '" + line + "'"));
    return true;
  };

  bool alive = true;
  while (alive) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or shutdown()
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      start = nl + 1;
      if (!process_line(line)) {
        alive = false;
        break;
      }
    }
    buffer.erase(0, start);
  }
  ::close(conn->fd);
  conn->finished.store(true, std::memory_order_release);
}

void Server::handle_request(Connection* conn, const std::string& id,
                            const std::vector<std::string>& body) {
  try {
    const Request req = parse_request_body(id, body);
    core::ScenarioSpec spec = core::parse_scenario(req.spec_text);
    spec.validate();
    const std::shared_ptr<core::SweepEngine> engine = engine_for(spec);

    BeginMsg begin;
    begin.id = id;
    begin.spec_key = engine->spec_key();
    if (engine->has_model()) {
      begin.model_name = engine->analytical_model().name();
    } else {
      begin.reason = engine->sim_only_reason();
    }
    send_line(conn, format_begin(begin));

    std::vector<double> lambdas = req.lambdas;
    if (lambdas.empty()) {
      if (!(req.points >= 2) || !(req.lo > 0.0) || !(req.hi > req.lo)) {
        throw std::invalid_argument(
            "sweep needs request.points >= 2 and 0 < request.lo < request.hi");
      }
      if (engine->has_model()) {
        const core::SaturationResult sat = engine->saturation_rate();
        SweepMsg sweep;
        sweep.id = id;
        sweep.saturation = sat.rate;
        sweep.probes = sat.probes;
        send_line(conn, format_sweep(sweep));
        lambdas = engine->lambda_sweep(req.points, req.lo, req.hi);
      } else if (req.max_rate > 0.0) {
        for (int i = 0; i < req.points; ++i) {
          const double f = req.lo + (req.hi - req.lo) * static_cast<double>(i) /
                                        static_cast<double>(req.points - 1);
          lambdas.push_back(f * req.max_rate);
        }
      } else {
        throw std::invalid_argument(
            "sim-only scenario (" + engine->sim_only_reason() +
            ") needs request.max_rate or request.lambdas to anchor the sweep");
      }
    }

    // The solves/sims batch onto the global thread pool; each point streams
    // out the moment it converges.
    util::parallel_for(lambdas.size(), [&](std::size_t i) {
      PointMsg msg;
      msg.id = id;
      msg.index = i;
      msg.point.lambda = lambdas[i];
      if (engine->has_model()) {
        msg.point.model = engine->model_point(lambdas[i]);
        msg.point.has_model = true;
      }
      if (req.with_sim) {
        msg.point.sim = engine->sim_point(lambdas[i], engine->point_seed(i));
        msg.point.has_sim = true;
      }
      send_line(conn, format_point(msg));
    });

    StatsMsg stats_msg;
    stats_msg.id = id;
    stats_msg.stats = engine->cache_stats();
    send_line(conn, format_stats(stats_msg));
    DoneMsg done;
    done.id = id;
    done.points = lambdas.size();
    // Count before DONE goes out: a client that has seen DONE must see the
    // request in the counter.
    ++requests_served_;
    send_line(conn, format_done(done));
    if (options_.verbose) {
      KNC_LOG_INFO << "[kncube_serve] id=" << id << " key=" << std::hex
                   << begin.spec_key << std::dec << " points=" << lambdas.size()
                   << " model="
                   << (begin.model_name.empty() ? "-" : begin.model_name) << " "
                   << core::format_cache_stats(stats_msg.stats);
    }
  } catch (const std::exception& e) {
    send_line(conn, format_error(id, e.what()));
  }
}

void Server::reap_finished_connections() {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->finished.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace kncube::service
