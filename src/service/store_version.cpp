#include "service/store_version.hpp"

#include "kncube/store_version_gen.hpp"

namespace kncube::service {

std::uint64_t store_version() noexcept { return generated::kStoreVersion; }

}  // namespace kncube::service
