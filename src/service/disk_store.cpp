#include "service/disk_store.hpp"

#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <type_traits>

namespace kncube::service {

namespace {

// Every payload is raw struct bytes; the contract only works for
// trivially-copyable results. The store version covers layout changes: any
// edit to these headers changes the hash and invalidates old files.
static_assert(std::is_trivially_copyable_v<model::ModelResult>);
static_assert(std::is_trivially_copyable_v<sim::SimResult>);
static_assert(std::is_trivially_copyable_v<core::SaturationResult>);

constexpr std::uint32_t kFileMagic = 0x53434E4Bu;    // "KNCS" little-endian
constexpr std::uint32_t kRecordMagic = 0x44524352u;  // "RCRD" little-endian
constexpr std::uint32_t kFormat = 1;
// Sanity cap on one record's payload: the largest real payload is a
// ModelResult plus a few hundred state doubles (~kilobytes); anything huge
// is corruption, not data.
constexpr std::uint32_t kMaxPayload = 1u << 24;

constexpr std::uint32_t kTypeModel = 1;
constexpr std::uint32_t kTypeSim = 2;
constexpr std::uint32_t kTypeSaturation = 3;

struct FileHeader {
  std::uint32_t magic = kFileMagic;
  std::uint32_t format = kFormat;
  std::uint64_t version = 0;
};

struct RecordHeader {
  std::uint32_t magic = kRecordMagic;
  std::uint32_t type = 0;
  std::uint64_t spec_key = 0;
  std::uint64_t k1 = 0;
  std::uint64_t k2 = 0;
  std::uint32_t payload_size = 0;
  std::uint32_t reserved = 0;
  std::uint64_t checksum = 0;
};
static_assert(std::is_trivially_copyable_v<FileHeader>);
static_assert(std::is_trivially_copyable_v<RecordHeader>);

std::uint64_t fnv1a64(const unsigned char* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

template <typename T>
void append_bytes(std::vector<unsigned char>& out, const T& value) {
  const auto* p = reinterpret_cast<const unsigned char*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

/// Reads sizeof(T) bytes at `offset` into `*value`; false past the end.
template <typename T>
bool read_at(const std::vector<unsigned char>& buf, std::size_t offset,
             T* value) {
  if (offset + sizeof(T) > buf.size()) return false;
  std::memcpy(value, buf.data() + offset, sizeof(T));
  return true;
}

std::vector<unsigned char> encode_model_entry(const core::ModelEntry& entry) {
  std::vector<unsigned char> payload;
  payload.reserve(sizeof(model::ModelResult) + sizeof(std::uint64_t) +
                  entry.state.size() * sizeof(double));
  append_bytes(payload, entry.result);
  append_bytes(payload, static_cast<std::uint64_t>(entry.state.size()));
  for (const double d : entry.state) append_bytes(payload, d);
  return payload;
}

bool decode_model_entry(const std::vector<unsigned char>& payload,
                        core::ModelEntry* entry) {
  std::size_t off = 0;
  if (!read_at(payload, off, &entry->result)) return false;
  off += sizeof(model::ModelResult);
  std::uint64_t count = 0;
  if (!read_at(payload, off, &count)) return false;
  off += sizeof(std::uint64_t);
  if (off + count * sizeof(double) != payload.size()) return false;
  entry->state.resize(static_cast<std::size_t>(count));
  if (count > 0) {
    std::memcpy(entry->state.data(), payload.data() + off,
                static_cast<std::size_t>(count) * sizeof(double));
  }
  return true;
}

}  // namespace

DiskResultStore::DiskResultStore(std::string path, std::uint64_t version)
    : path_(std::move(path)), version_(version) {
  load_file();
}

DiskResultStore::~DiskResultStore() {
  std::lock_guard<std::mutex> lock(file_mutex_);
  if (out_.is_open()) out_.flush();
}

void DiskResultStore::load_file() {
  std::vector<unsigned char> buf;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      in.seekg(0, std::ios::end);
      const auto size = in.tellg();
      in.seekg(0, std::ios::beg);
      if (size > 0) {
        buf.resize(static_cast<std::size_t>(size));
        in.read(reinterpret_cast<char*>(buf.data()),
                static_cast<std::streamsize>(buf.size()));
        if (!in) buf.clear();  // unreadable: treat as absent
      }
    }
  }

  FileHeader header;
  if (!buf.empty()) {
    if (!read_at(buf, 0, &header) || header.magic != kFileMagic ||
        header.format != kFormat || header.version != version_) {
      // Foreign file, older format, or result-producing code changed:
      // everything in it is (potentially) stale — discard, start fresh.
      invalidated_ = true;
      start_fresh();
      return;
    }
  } else {
    start_fresh();
    return;
  }

  // Replay records until the buffer ends or stops making sense; the first
  // bad record invalidates everything after it (append-only: a bad byte
  // means a torn write or corruption, and record boundaries downstream of
  // it cannot be trusted).
  std::size_t off = sizeof(FileHeader);
  std::size_t good_end = off;
  while (off < buf.size()) {
    RecordHeader rec;
    if (!read_at(buf, off, &rec)) break;
    if (rec.magic != kRecordMagic || rec.payload_size > kMaxPayload) break;
    const std::size_t payload_off = off + sizeof(RecordHeader);
    if (payload_off + rec.payload_size > buf.size()) break;
    if (fnv1a64(buf.data() + payload_off, rec.payload_size) != rec.checksum)
      break;
    std::vector<unsigned char> payload(buf.begin() + payload_off,
                                       buf.begin() + payload_off +
                                           rec.payload_size);
    bool ok = true;
    switch (rec.type) {
      case kTypeModel: {
        core::ModelEntry entry;
        ok = decode_model_entry(payload, &entry);
        if (ok) index_.store_model(rec.spec_key, rec.k1, entry);
        break;
      }
      case kTypeSim: {
        sim::SimResult r;
        ok = payload.size() == sizeof(r);
        if (ok) {
          std::memcpy(&r, payload.data(), sizeof(r));
          index_.store_sim(rec.spec_key, rec.k1, rec.k2, r);
        }
        break;
      }
      case kTypeSaturation: {
        core::SaturationResult r;
        ok = payload.size() == sizeof(r);
        if (ok) {
          std::memcpy(&r, payload.data(), sizeof(r));
          index_.store_saturation(rec.spec_key, rec.k1, r);
        }
        break;
      }
      default:
        ok = false;
        break;
    }
    if (!ok) break;
    ++loaded_records_;
    off = payload_off + rec.payload_size;
    good_end = off;
  }
  dropped_bytes_ = buf.size() - good_end;

  if (dropped_bytes_ > 0) {
    // Drop the corrupt tail before appending, so the damage cannot sit in
    // the middle of the file forever.
    std::error_code ec;
    std::filesystem::resize_file(path_, good_end, ec);
    if (ec) {
      // Cannot repair in place: fall back to a fresh file rather than
      // appending after garbage. Conservative — the loaded entries are
      // re-solvable; a half-garbage file is not re-trustable.
      invalidated_ = true;
      start_fresh();
      return;
    }
  }
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) {
    throw std::runtime_error("DiskResultStore: cannot open '" + path_ +
                             "' for append");
  }
}

void DiskResultStore::start_fresh() {
  index_.clear();
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("DiskResultStore: cannot open '" + path_ +
                             "' for writing");
  }
  FileHeader header;
  header.version = version_;
  out_.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out_.flush();
}

void DiskResultStore::append_record(std::uint32_t type, std::uint64_t spec_key,
                                    std::uint64_t k1, std::uint64_t k2,
                                    const std::vector<unsigned char>& payload) {
  RecordHeader rec;
  rec.type = type;
  rec.spec_key = spec_key;
  rec.k1 = k1;
  rec.k2 = k2;
  rec.payload_size = static_cast<std::uint32_t>(payload.size());
  rec.checksum = fnv1a64(payload.data(), payload.size());
  std::lock_guard<std::mutex> lock(file_mutex_);
  out_.write(reinterpret_cast<const char*>(&rec), sizeof(rec));
  out_.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
  // Flush every record: a killed daemon loses at most the torn tail the
  // loader is built to drop. (No fsync — this is a cache; the worst case
  // of losing buffered records is re-solving them.)
  out_.flush();
}

bool DiskResultStore::load_model(std::uint64_t spec_key,
                                 std::uint64_t lambda_bits,
                                 core::ModelEntry* out) {
  return index_.load_model(spec_key, lambda_bits, out);
}

void DiskResultStore::store_model(std::uint64_t spec_key,
                                  std::uint64_t lambda_bits,
                                  const core::ModelEntry& entry) {
  // Engines check the store before solving, but two engines can still race
  // the same key; keep the file free of duplicate records.
  core::ModelEntry existing;
  if (index_.load_model(spec_key, lambda_bits, &existing)) return;
  index_.store_model(spec_key, lambda_bits, entry);
  append_record(kTypeModel, spec_key, lambda_bits, 0, encode_model_entry(entry));
}

bool DiskResultStore::warm_state_at_or_below(std::uint64_t spec_key,
                                             std::uint64_t lambda_bits,
                                             std::vector<double>* state) {
  return index_.warm_state_at_or_below(spec_key, lambda_bits, state);
}

bool DiskResultStore::load_sim(std::uint64_t spec_key,
                               std::uint64_t lambda_bits, std::uint64_t seed,
                               sim::SimResult* out) {
  return index_.load_sim(spec_key, lambda_bits, seed, out);
}

void DiskResultStore::store_sim(std::uint64_t spec_key,
                                std::uint64_t lambda_bits, std::uint64_t seed,
                                const sim::SimResult& result) {
  sim::SimResult existing;
  if (index_.load_sim(spec_key, lambda_bits, seed, &existing)) return;
  index_.store_sim(spec_key, lambda_bits, seed, result);
  std::vector<unsigned char> payload;
  append_bytes(payload, result);
  append_record(kTypeSim, spec_key, lambda_bits, seed, payload);
}

bool DiskResultStore::load_saturation(std::uint64_t spec_key,
                                      std::uint64_t tol_bits,
                                      core::SaturationResult* out) {
  return index_.load_saturation(spec_key, tol_bits, out);
}

void DiskResultStore::store_saturation(std::uint64_t spec_key,
                                       std::uint64_t tol_bits,
                                       const core::SaturationResult& result) {
  core::SaturationResult existing;
  if (index_.load_saturation(spec_key, tol_bits, &existing)) return;
  index_.store_saturation(spec_key, tol_bits, result);
  std::vector<unsigned char> payload;
  append_bytes(payload, result);
  append_record(kTypeSaturation, spec_key, tol_bits, 0, payload);
}

core::StoreSizes DiskResultStore::sizes() const { return index_.sizes(); }

void DiskResultStore::clear() {
  std::lock_guard<std::mutex> lock(file_mutex_);
  if (out_.is_open()) out_.close();
  start_fresh();
}

void DiskResultStore::flush() {
  std::lock_guard<std::mutex> lock(file_mutex_);
  if (out_.is_open()) out_.flush();
}

}  // namespace kncube::service
