#include "service/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <stdexcept>

#include "service/store_version.hpp"

namespace kncube::service {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// connect(2) with EINTR handling. A signal can interrupt connect, but the
/// kernel keeps establishing the connection in the background (POSIX leaves
/// the request in progress) — re-calling connect would yield EALREADY, so
/// the correct recovery is to wait for writability and read SO_ERROR.
/// Returns 0 on success; -1 with errno set on failure.
int connect_eintr(int fd, const sockaddr* addr, socklen_t len) {
  if (::connect(fd, addr, len) == 0) return 0;
  if (errno != EINTR) return -1;
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLOUT;
  for (;;) {
    const int pr = ::poll(&pfd, 1, -1);
    if (pr > 0) break;
    if (pr < 0 && errno == EINTR) continue;
    return -1;
  }
  int err = 0;
  socklen_t err_len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) return -1;
  if (err != 0) {
    errno = err;
    return -1;
  }
  return 0;
}

}  // namespace

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("Client: socket");
  if (connect_eintr(fd_, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    errno = err;
    throw_errno("Client: connect '" + socket_path + "'");
  }
  const std::string greeting = read_line();
  if (!parse_hello(greeting, &hello_)) {
    throw std::runtime_error("Client: bad greeting '" + greeting + "'");
  }
  if (hello_.protocol != kProtocolVersion) {
    throw std::runtime_error("Client: protocol mismatch (server " +
                             std::to_string(hello_.protocol) + ", client " +
                             std::to_string(kProtocolVersion) + ")");
  }
  if (hello_.version != store_version()) {
    // Raw struct bytes travel on this wire; different builds must not talk.
    throw std::runtime_error(
        "Client: server was built from different result-producing code "
        "(store version mismatch); restart the daemon from this build");
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_line(const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("Client: send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string Client::read_line() {
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A real I/O error is not the orderly shutdown the message below
      // suggests; surface errno so mid-sweep failures are diagnosable.
      throw_errno("Client: recv");
    }
    if (n == 0) {
      throw std::runtime_error("Client: server closed the connection");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void Client::ping() {
  send_line("PING");
  const std::string reply = read_line();
  if (reply != "PONG") {
    throw std::runtime_error("Client: expected PONG, got '" + reply + "'");
  }
}

StatsMsg Client::server_stats() {
  send_line("STATS");
  const std::string reply = read_line();
  StatsMsg msg;
  if (!parse_stats(reply, &msg)) {
    throw std::runtime_error("Client: bad STATS reply '" + reply + "'");
  }
  return msg;
}

Client::SweepOutcome Client::run(const core::ScenarioSpec& spec,
                                 Request params) {
  params.id = "r" + std::to_string(next_id_++);
  params.spec_text = core::format_scenario(spec);

  send_line("REQUEST " + params.id);
  for (const std::string& line : format_request_body(params)) send_line(line);
  send_line("END");

  SweepOutcome outcome;
  std::map<std::uint64_t, core::PointResult> by_index;
  bool done = false;
  std::uint64_t expected_points = 0;
  while (!done) {
    const std::string line = read_line();
    BeginMsg begin;
    SweepMsg sweep;
    PointMsg point;
    StatsMsg stats;
    DoneMsg done_msg;
    ErrorMsg error;
    if (parse_point(line, &point)) {
      by_index[point.index] = point.point;
    } else if (parse_begin(line, &begin)) {
      outcome.begin = begin;
    } else if (parse_sweep(line, &sweep)) {
      outcome.has_sweep = true;
      outcome.sweep = sweep;
    } else if (parse_stats(line, &stats)) {
      outcome.stats = stats;
    } else if (parse_done(line, &done_msg)) {
      expected_points = done_msg.points;
      done = true;
    } else if (parse_error(line, &error)) {
      throw std::runtime_error("server: " + error.message);
    } else {
      throw std::runtime_error("Client: unexpected line '" + line + "'");
    }
  }
  if (by_index.size() != expected_points) {
    throw std::runtime_error(
        "Client: server announced " + std::to_string(expected_points) +
        " points but streamed " + std::to_string(by_index.size()));
  }
  outcome.points.reserve(by_index.size());
  for (auto& [index, pt] : by_index) outcome.points.push_back(pt);
  return outcome;
}

}  // namespace kncube::service
