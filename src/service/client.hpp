// Client for the capacity-planning daemon (service/server.hpp): connects
// over the Unix socket, speaks the newline protocol (service/protocol.hpp)
// and rebuilds core::PointResult values bit-identical to what the server
// computed. kncube_run's --connect mode is a thin wrapper over this.
//
// The constructor performs the handshake and refuses a server whose store
// version differs from this binary's: the wire carries raw result-struct
// bytes, so client and server must be built from the same tree — and a
// version mismatch also means the two builds would not even agree on what
// the cached numbers should be.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario_spec.hpp"
#include "service/protocol.hpp"

namespace kncube::service {

class Client {
 public:
  /// Connects and validates the hello. Throws std::runtime_error on
  /// connect/handshake/version failure.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  const Hello& hello() const noexcept { return hello_; }

  /// PING round trip; throws on protocol breakage.
  void ping();

  /// Server-wide STATS command.
  StatsMsg server_stats();

  struct SweepOutcome {
    BeginMsg begin;
    bool has_sweep = false;
    SweepMsg sweep;
    /// Ordered by index (the request's lambda order), regardless of the
    /// completion order they streamed in.
    std::vector<core::PointResult> points;
    StatsMsg stats;
  };

  /// Runs one request: `params` carries the lambdas-or-sweep controls and
  /// sim toggle (its id/spec_text are filled in here). A server-side ERROR
  /// throws std::runtime_error carrying the server's message.
  SweepOutcome run(const core::ScenarioSpec& spec, Request params);

 private:
  std::string read_line();
  void send_line(const std::string& line);

  int fd_ = -1;
  std::string buffer_;
  Hello hello_;
  std::uint64_t next_id_ = 1;
};

}  // namespace kncube::service
