// DiskResultStore: the append-only, versioned, disk-backed ResultStore.
//
// One file holds every cached result across all scenarios (entries are
// keyed by the spec's canonical key(), so the daemon points every engine at
// one shared store). The format is a fixed header followed by self-checking
// append-only records:
//
//   header : magic "KNCS" | format u32 | store-version u64
//   record : magic "RCRD" | type u32 | spec_key u64 | k1 u64 | k2 u64
//          | payload_size u32 | reserved u32 | fnv1a64(payload) u64
//          | payload bytes
//
// where (type, k1, k2) is (model, lambda bits, 0), (sim, lambda bits, seed)
// or (saturation, rel_tol bits, 0), and payloads are the raw bytes of the
// trivially-copyable result structs (the model payload appends the
// converged warm-start state vector). Raw bytes make a store hit trivially
// bit-identical to the solve that produced it — the whole point of the
// cache (tests/service/disk_store_test pins a reopen round trip against a
// cold solve).
//
// Robustness contract:
//  * header mismatch (foreign file, older format, different store version —
//    i.e. result-producing code changed, see service/store_version.hpp):
//    the store self-invalidates — previous contents are discarded and the
//    file restarts fresh; `invalidated()` reports it.
//  * corrupt or truncated record (crash mid-append, bit rot caught by the
//    checksum): loading stops at the last intact record, the bad tail is
//    dropped (`dropped_bytes()`), and the store stays fully usable.
//
// Appends go through an in-memory MemoryResultStore index (all queries are
// served from memory; the file is only read at open). Records are flushed
// to the OS on every append; flush() is called again on shutdown. The file
// is host-native byte order — it is a local cache, not an interchange
// format.
//
// Single-writer: one process (the daemon) owns a store file at a time;
// concurrent writers would interleave records. Within the process every
// method is thread-safe.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "core/result_store.hpp"
#include "service/store_version.hpp"

namespace kncube::service {

class DiskResultStore final : public core::ResultStore {
 public:
  /// Opens (creating if absent) the store at `path`. `version` defaults to
  /// the build's store_version(); tests inject explicit values to exercise
  /// invalidation. Throws std::runtime_error when the file cannot be
  /// opened for writing.
  explicit DiskResultStore(std::string path,
                           std::uint64_t version = store_version());
  ~DiskResultStore() override;

  bool load_model(std::uint64_t spec_key, std::uint64_t lambda_bits,
                  core::ModelEntry* out) override;
  void store_model(std::uint64_t spec_key, std::uint64_t lambda_bits,
                   const core::ModelEntry& entry) override;
  bool warm_state_at_or_below(std::uint64_t spec_key, std::uint64_t lambda_bits,
                              std::vector<double>* state) override;
  bool load_sim(std::uint64_t spec_key, std::uint64_t lambda_bits,
                std::uint64_t seed, sim::SimResult* out) override;
  void store_sim(std::uint64_t spec_key, std::uint64_t lambda_bits,
                 std::uint64_t seed, const sim::SimResult& result) override;
  bool load_saturation(std::uint64_t spec_key, std::uint64_t tol_bits,
                       core::SaturationResult* out) override;
  void store_saturation(std::uint64_t spec_key, std::uint64_t tol_bits,
                        const core::SaturationResult& result) override;
  core::StoreSizes sizes() const override;
  void clear() override;
  void flush() override;
  const char* kind() const noexcept override { return "disk"; }

  const std::string& path() const noexcept { return path_; }
  std::uint64_t version() const noexcept { return version_; }

  // --- open-time diagnostics (logs, tests) ---
  /// True when an existing file was discarded for a header/format/version
  /// mismatch.
  bool invalidated() const noexcept { return invalidated_; }
  /// Intact records loaded from the existing file.
  std::uint64_t loaded_records() const noexcept { return loaded_records_; }
  /// Bytes of corrupt/truncated tail dropped from the existing file.
  std::uint64_t dropped_bytes() const noexcept { return dropped_bytes_; }

 private:
  void load_file();
  void start_fresh();
  void append_record(std::uint32_t type, std::uint64_t spec_key,
                     std::uint64_t k1, std::uint64_t k2,
                     const std::vector<unsigned char>& payload);

  std::string path_;
  std::uint64_t version_;
  core::MemoryResultStore index_;

  std::mutex file_mutex_;
  std::ofstream out_;
  bool invalidated_ = false;
  std::uint64_t loaded_records_ = 0;
  std::uint64_t dropped_bytes_ = 0;
};

}  // namespace kncube::service
