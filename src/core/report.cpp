#include "core/report.hpp"

#include <cmath>
#include <cstdlib>

#include "util/stats.hpp"

namespace kncube::core {

util::Table figure_table(const std::string& title, const std::vector<PointResult>& pts) {
  util::Table t({"lambda (msg/node/cyc)", "model latency", "sim latency", "sim ci95",
                 "rel err", "model sat", "sim sat"});
  t.set_title(title);
  t.set_precision(5);
  for (const auto& p : pts) {
    const double rel = p.relative_error();
    // Sim-only scenarios (no analytical counterpart) render "-" in the model
    // columns, mirroring how missing sims render on the other side.
    t.add_row({p.lambda,
               !p.has_model ? util::Cell{std::string{"-"}}
               : p.model.saturated
                   ? util::Cell{std::numeric_limits<double>::infinity()}
                   : util::Cell{p.model.latency},
               p.has_sim ? util::Cell{p.sim.mean_latency} : util::Cell{std::string{"-"}},
               p.has_sim ? util::Cell{p.sim.latency_ci95} : util::Cell{std::string{"-"}},
               std::isnan(rel) ? util::Cell{std::string{"-"}} : util::Cell{rel},
               std::string(!p.has_model ? "-" : (p.model.saturated ? "yes" : "no")),
               std::string(!p.has_sim ? "-" : (p.sim.saturated ? "yes" : "no"))});
  }
  return t;
}

PanelSummary summarize_panel(const std::vector<PointResult>& pts) {
  PanelSummary s;
  std::vector<double> model_curve;
  std::vector<double> sim_curve;
  double err_acc = 0.0;
  for (const auto& p : pts) {
    if (p.has_model && p.model.saturated) ++s.model_saturated_points;
    if (p.has_sim && p.sim.saturated) ++s.sim_saturated_points;
    const double rel = p.relative_error();
    if (!std::isnan(rel) && p.has_sim && !p.sim.saturated) {
      err_acc += rel;
      ++s.stable_points;
      model_curve.push_back(p.model.latency);
      sim_curve.push_back(p.sim.mean_latency);
    }
  }
  if (s.stable_points > 0) err_acc /= s.stable_points;
  s.mean_rel_error = err_acc;
  s.correlation = util::pearson_correlation(model_curve, sim_curve);
  return s;
}

util::Table summary_table(const std::string& title,
                          const std::vector<std::pair<std::string, PanelSummary>>& rows) {
  util::Table t({"panel", "stable pts", "mean rel err", "corr(model,sim)",
                 "model sat pts", "sim sat pts"});
  t.set_title(title);
  t.set_precision(4);
  for (const auto& [name, s] : rows) {
    t.add_row({name, static_cast<long long>(s.stable_points), s.mean_rel_error,
               s.correlation, static_cast<long long>(s.model_saturated_points),
               static_cast<long long>(s.sim_saturated_points)});
  }
  return t;
}

std::string export_csv(const util::Table& table, const std::string& basename) {
  const char* dir = std::getenv("KNCUBE_OUT");
  if (!dir || !*dir) return {};
  const std::string path = std::string(dir) + "/" + basename + ".csv";
  if (!table.write_csv(path)) return {};
  return path;
}

}  // namespace kncube::core
