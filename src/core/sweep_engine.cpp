#include "core/sweep_engine.hpp"

#include <bit>
#include <stdexcept>

#include "core/saturation.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace kncube::core {

namespace {

std::uint64_t lambda_key(double lambda) {
  return std::bit_cast<std::uint64_t>(lambda);
}

}  // namespace

SweepEngine::SweepEngine(ScenarioSpec spec) : spec_(std::move(spec)) {
  ModelDispatch dispatch = make_analytical_model(spec_);  // validates spec_
  model_ = std::move(dispatch.model);
  sim_only_reason_ = std::move(dispatch.sim_only_reason);
}

SweepEngine::SweepEngine(const Scenario& scenario)
    : SweepEngine(to_spec(scenario)) {}

const model::AnalyticalModel& SweepEngine::analytical_model() const {
  if (!model_) {
    throw std::logic_error("SweepEngine: scenario is sim-only (" +
                           sim_only_reason_ + ")");
  }
  return *model_;
}

std::uint64_t SweepEngine::point_seed(std::size_t index) const noexcept {
  // Golden-ratio stride decorrelates points while keeping series
  // reproducible across runs and scheduling orders.
  return spec_.seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
}

// Memoization is check-then-act: the lock is dropped during the solve, so
// two threads missing on the same key concurrently both compute it and the
// second emplace is ignored. That duplicate work is deliberate — it only
// arises when one batch repeats a lambda (model side; sims use per-index
// seeds), and an in-flight-future scheme isn't worth the machinery for it.
model::ModelResult SweepEngine::model_point(double lambda) {
  const model::AnalyticalModel& model = analytical_model();
  const std::uint64_t key = lambda_key(lambda);
  // Warm-start source: the nearest cached stable solve at or below lambda.
  // The IEEE-754 bit pattern of a non-negative double is monotone in its
  // value, so the cache's key order is ascending lambda and the predecessor
  // lookup is one upper_bound. Whatever state the lookup races to see, the
  // result is the same bits (warm starts are bit-exact accelerators).
  std::vector<double> warm;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = model_cache_.find(key); it != model_cache_.end()) {
      ++model_hits_;
      return it->second.result;
    }
    if (warm_start_) {
      auto it = model_cache_.upper_bound(key);
      while (it != model_cache_.begin()) {
        --it;
        if (!it->second.state.empty()) {
          warm = it->second.state;
          break;
        }
      }
    }
  }
  ModelEntry entry;
  entry.result = model.solve_at(lambda, warm.empty() ? nullptr : &warm, &entry.state);
  std::lock_guard<std::mutex> lock(mutex_);
  return model_cache_.emplace(key, std::move(entry)).first->second.result;
}

sim::SimResult SweepEngine::sim_point(double lambda, std::uint64_t seed) {
  const auto key = std::make_pair(lambda_key(lambda), seed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = sim_cache_.find(key); it != sim_cache_.end()) {
      ++sim_hits_;
      return it->second;
    }
  }
  sim::SimConfig cfg = to_sim_config(spec_, lambda);
  cfg.seed = seed;
  const sim::SimResult r = sim::simulate(cfg);
  std::lock_guard<std::mutex> lock(mutex_);
  sim_cache_.emplace(key, r);
  return r;
}

std::vector<PointResult> SweepEngine::run(const std::vector<double>& lambdas,
                                          bool run_sim) {
  std::vector<PointResult> results(lambdas.size());
  util::parallel_for(lambdas.size(), [&](std::size_t i) {
    PointResult& pt = results[i];
    pt.lambda = lambdas[i];
    if (model_) {
      pt.model = model_point(pt.lambda);
      pt.has_model = true;
    }
    if (run_sim) {
      pt.sim = sim_point(pt.lambda, point_seed(i));
      pt.has_sim = true;
    }
  });
  return results;
}

SaturationResult SweepEngine::saturation_rate(double rel_tol) {
  const model::AnalyticalModel& model = analytical_model();
  const std::uint64_t key = lambda_key(rel_tol);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = saturation_cache_.find(key); it != saturation_cache_.end()) {
      return it->second;
    }
  }
  const double guess = model.estimated_saturation_rate();
  const SaturationResult res = bisect_saturation(
      guess, rel_tol, [this](double rate) { return !model_point(rate).saturated; });
  std::lock_guard<std::mutex> lock(mutex_);
  saturation_cache_.emplace(key, res);
  return res;
}

std::vector<double> SweepEngine::lambda_sweep(int points, double lo_frac,
                                              double hi_frac) {
  KNC_ASSERT(points >= 2 && lo_frac > 0.0 && hi_frac > lo_frac);
  const double sat = saturation_rate().rate;
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double f = lo_frac + (hi_frac - lo_frac) * static_cast<double>(i) /
                                   static_cast<double>(points - 1);
    out.push_back(f * sat);
  }
  return out;
}

std::size_t SweepEngine::model_cache_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return model_cache_.size();
}

std::size_t SweepEngine::sim_cache_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sim_cache_.size();
}

std::uint64_t SweepEngine::model_cache_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return model_hits_;
}

std::uint64_t SweepEngine::sim_cache_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sim_hits_;
}

void SweepEngine::clear_cache() {
  std::lock_guard<std::mutex> lock(mutex_);
  model_cache_.clear();
  sim_cache_.clear();
  saturation_cache_.clear();
  model_hits_ = 0;
  sim_hits_ = 0;
}

}  // namespace kncube::core
