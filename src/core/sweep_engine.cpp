#include "core/sweep_engine.hpp"

#include <bit>
#include <stdexcept>

#include "core/saturation.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace kncube::core {

namespace {

std::uint64_t lambda_key(double lambda) {
  return std::bit_cast<std::uint64_t>(lambda);
}

}  // namespace

SweepEngine::SweepEngine(ScenarioSpec spec, std::shared_ptr<ResultStore> store)
    : spec_(std::move(spec)), store_(std::move(store)) {
  ModelDispatch dispatch = make_analytical_model(spec_);  // validates spec_
  model_ = std::move(dispatch.model);
  sim_only_reason_ = std::move(dispatch.sim_only_reason);
  spec_key_ = spec_.key();
  if (!store_) store_ = std::make_shared<MemoryResultStore>();
}

SweepEngine::SweepEngine(const Scenario& scenario)
    : SweepEngine(to_spec(scenario)) {}

const model::AnalyticalModel& SweepEngine::analytical_model() const {
  if (!model_) {
    throw std::logic_error("SweepEngine: scenario is sim-only (" +
                           sim_only_reason_ + ")");
  }
  return *model_;
}

std::uint64_t SweepEngine::point_seed(std::size_t index) const noexcept {
  // Golden-ratio stride decorrelates points while keeping series
  // reproducible across runs and scheduling orders.
  return spec_.seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
}

// Memoization with in-flight dedup: a miss registers itself as the key's
// owner before solving, so concurrent callers of the same key find the
// registration and wait for the owner's result instead of recomputing —
// exactly one solve per distinct key, no matter how many clients race on
// it. The owner publishes to the store *before* deregistering, so a caller
// always sees either the store entry or the in-flight registration, never a
// gap. Waiting never deadlocks the thread pool: the owner runs the solve
// synchronously on its own thread (it is never parked in the queue), so
// every waiter has a running producer.
model::ModelResult SweepEngine::model_point(double lambda) {
  const model::AnalyticalModel& model = analytical_model();
  const std::uint64_t key = lambda_key(lambda);
  std::shared_ptr<Inflight<ModelEntry>> inflight;
  bool owner = false;
  // Warm-start source: the nearest cached stable solve at or below lambda
  // (the IEEE-754 bit pattern of a non-negative double is monotone in its
  // value, so the store's key order is ascending lambda). Whatever state the
  // lookup races to see, the result is the same bits (warm starts are
  // bit-exact accelerators).
  std::vector<double> warm;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ModelEntry cached;
    if (store_->load_model(spec_key_, key, &cached)) {
      ++model_hits_;
      return cached.result;
    }
    if (auto it = inflight_model_.find(key); it != inflight_model_.end()) {
      ++inflight_waits_;
      inflight = it->second;
    } else {
      inflight = std::make_shared<Inflight<ModelEntry>>();
      inflight_model_.emplace(key, inflight);
      owner = true;
      if (warm_start_) store_->warm_state_at_or_below(spec_key_, key, &warm);
    }
  }
  if (!owner) return inflight->wait().result;

  ModelEntry entry;
  try {
    entry.result =
        model.solve_at(lambda, warm.empty() ? nullptr : &warm, &entry.state);
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      inflight_model_.erase(key);
    }
    inflight->fail(e.what());
    throw;
  }
  store_->store_model(spec_key_, key, entry);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++model_solves_;
    inflight_model_.erase(key);
  }
  inflight->fulfill(entry);
  return entry.result;
}

sim::SimResult SweepEngine::sim_point(double lambda, std::uint64_t seed) {
  const auto key = std::make_pair(lambda_key(lambda), seed);
  std::shared_ptr<Inflight<sim::SimResult>> inflight;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sim::SimResult cached;
    if (store_->load_sim(spec_key_, key.first, key.second, &cached)) {
      ++sim_hits_;
      return cached;
    }
    if (auto it = inflight_sim_.find(key); it != inflight_sim_.end()) {
      ++inflight_waits_;
      inflight = it->second;
    } else {
      inflight = std::make_shared<Inflight<sim::SimResult>>();
      inflight_sim_.emplace(key, inflight);
      owner = true;
    }
  }
  if (!owner) return inflight->wait();

  sim::SimResult r;
  try {
    sim::SimConfig cfg = to_sim_config(spec_, lambda);
    cfg.seed = seed;
    r = sim::simulate(cfg);
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      inflight_sim_.erase(key);
    }
    inflight->fail(e.what());
    throw;
  }
  store_->store_sim(spec_key_, key.first, key.second, r);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++sim_runs_;
    inflight_sim_.erase(key);
  }
  inflight->fulfill(r);
  return r;
}

std::vector<PointResult> SweepEngine::run(const std::vector<double>& lambdas,
                                          bool run_sim) {
  std::vector<PointResult> results(lambdas.size());
  util::parallel_for(lambdas.size(), [&](std::size_t i) {
    PointResult& pt = results[i];
    pt.lambda = lambdas[i];
    if (model_) {
      pt.model = model_point(pt.lambda);
      pt.has_model = true;
    }
    if (run_sim) {
      pt.sim = sim_point(pt.lambda, point_seed(i));
      pt.has_sim = true;
    }
  });
  return results;
}

SaturationResult SweepEngine::saturation_rate(double rel_tol) {
  const model::AnalyticalModel& model = analytical_model();
  const std::uint64_t key = lambda_key(rel_tol);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SaturationResult cached;
    if (store_->load_saturation(spec_key_, key, &cached)) {
      ++saturation_hits_;
      return cached;
    }
  }
  // Concurrent first-time callers may both bisect; the probes dedup through
  // model_point, so the duplicate work is a handful of store hits.
  const double guess = model.estimated_saturation_rate();
  const SaturationResult res = bisect_saturation(
      guess, rel_tol, [this](double rate) { return !model_point(rate).saturated; });
  store_->store_saturation(spec_key_, key, res);
  return res;
}

std::vector<double> SweepEngine::lambda_sweep(int points, double lo_frac,
                                              double hi_frac) {
  KNC_ASSERT(points >= 2 && lo_frac > 0.0 && hi_frac > lo_frac);
  const SaturationResult sat_res = saturation_rate();
  if (sat_res.failed) {
    throw std::runtime_error(
        "saturation search failed: no stable rate observed for this spec");
  }
  const double sat = sat_res.rate;
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double f = lo_frac + (hi_frac - lo_frac) * static_cast<double>(i) /
                                   static_cast<double>(points - 1);
    out.push_back(f * sat);
  }
  return out;
}

CacheStats SweepEngine::cache_stats() const {
  const StoreSizes sizes = store_->sizes();
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats s;
  s.model_entries = sizes.model;
  s.sim_entries = sizes.sim;
  s.saturation_entries = sizes.saturation;
  s.model_hits = model_hits_;
  s.sim_hits = sim_hits_;
  s.saturation_hits = saturation_hits_;
  s.model_solves = model_solves_;
  s.sim_runs = sim_runs_;
  s.inflight_waits = inflight_waits_;
  return s;
}

std::size_t SweepEngine::inflight_solves() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inflight_model_.size() + inflight_sim_.size();
}

std::size_t SweepEngine::model_cache_size() const {
  return static_cast<std::size_t>(store_->sizes().model);
}

std::size_t SweepEngine::sim_cache_size() const {
  return static_cast<std::size_t>(store_->sizes().sim);
}

std::uint64_t SweepEngine::model_cache_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return model_hits_;
}

std::uint64_t SweepEngine::sim_cache_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sim_hits_;
}

void SweepEngine::clear_cache() {
  store_->clear();
  std::lock_guard<std::mutex> lock(mutex_);
  model_hits_ = 0;
  sim_hits_ = 0;
  saturation_hits_ = 0;
  model_solves_ = 0;
  sim_runs_ = 0;
  inflight_waits_ = 0;
}

}  // namespace kncube::core
