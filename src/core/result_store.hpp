// ResultStore: the storage interface behind SweepEngine memoization.
//
// SweepEngine originally held its memo maps inline, so every cached fixed
// point and simulation died with the process. Lifting the maps behind this
// interface lets one store outlive an engine, be shared by many engines
// (the capacity-planning daemon keys entries by the spec's canonical
// key(), so one store serves every scenario), and be backed by disk
// (service/disk_store.hpp) so repeated what-if queries across process
// restarts pay each distinct (spec, lambda) solve exactly once, ever.
//
// Contract:
//  * Keys are (spec_key, lambda_bits[, seed]) — spec_key is
//    ScenarioSpec::key(), lambda_bits the IEEE-754 bit pattern of the rate
//    (non-negative doubles order the same by bits and by value, which the
//    warm-start predecessor lookup relies on), seed the simulator seed.
//  * Stored values are returned bit-identical to what was stored. Warm
//    solves are bit-identical to cold ones (model/solver.hpp polishes
//    converged iterates to exact stationarity), so answers served from a
//    store — including one written by a previous process — are bit-identical
//    to a cold in-process computation. tests/service/disk_store_test pins
//    this across a store reopen.
//  * Implementations are internally synchronized: any method may be called
//    from any thread (SweepEngine batches points onto the global pool, and
//    the daemon shares one store across connections).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/saturation.hpp"
#include "model/hotspot_model.hpp"
#include "sim/simulator.hpp"

namespace kncube::core {

/// Cached model solve: the result plus the converged channel-class state
/// (empty when saturated) used to warm-start nearby solves.
struct ModelEntry {
  model::ModelResult result;
  std::vector<double> state;
};

/// One engine's cache counters plus its store's entry counts, as a single
/// value: logged by `kncube_run --verbose`, rendered into the daemon's
/// per-request stats line, and asserted by the dedup/restart tests. Entry
/// counts come from the backing store, so with a shared (multi-spec) store
/// they count entries across *all* scenarios; the hit/solve/wait counters
/// are per-engine.
struct CacheStats {
  std::uint64_t model_entries = 0;
  std::uint64_t sim_entries = 0;
  std::uint64_t saturation_entries = 0;
  std::uint64_t model_hits = 0;
  std::uint64_t sim_hits = 0;
  std::uint64_t saturation_hits = 0;
  /// Fixed points / simulations actually computed (misses that did work).
  std::uint64_t model_solves = 0;
  std::uint64_t sim_runs = 0;
  /// In-flight dedup: calls that found another thread already solving their
  /// exact key and waited for its result instead of recomputing.
  std::uint64_t inflight_waits = 0;
};

/// `k=v` space-separated rendering, one canonical order — the shared format
/// of the daemon's STATS line and kncube_run's --verbose cache line.
std::string format_cache_stats(const CacheStats& stats);

struct StoreSizes {
  std::uint64_t model = 0;
  std::uint64_t sim = 0;
  std::uint64_t saturation = 0;
};

class ResultStore {
 public:
  virtual ~ResultStore() = default;

  /// Loads the cached solve for (spec_key, lambda_bits) into `*out`;
  /// returns false on a miss (out untouched).
  virtual bool load_model(std::uint64_t spec_key, std::uint64_t lambda_bits,
                          ModelEntry* out) = 0;
  virtual void store_model(std::uint64_t spec_key, std::uint64_t lambda_bits,
                           const ModelEntry& entry) = 0;

  /// Warm-start source: the converged state of the nearest stable cached
  /// solve of `spec_key` at or below `lambda_bits` (bit order == value
  /// order for non-negative rates). Returns false when no stable
  /// predecessor exists.
  virtual bool warm_state_at_or_below(std::uint64_t spec_key,
                                      std::uint64_t lambda_bits,
                                      std::vector<double>* state) = 0;

  virtual bool load_sim(std::uint64_t spec_key, std::uint64_t lambda_bits,
                        std::uint64_t seed, sim::SimResult* out) = 0;
  virtual void store_sim(std::uint64_t spec_key, std::uint64_t lambda_bits,
                         std::uint64_t seed, const sim::SimResult& result) = 0;

  virtual bool load_saturation(std::uint64_t spec_key, std::uint64_t tol_bits,
                               SaturationResult* out) = 0;
  virtual void store_saturation(std::uint64_t spec_key, std::uint64_t tol_bits,
                                const SaturationResult& result) = 0;

  virtual StoreSizes sizes() const = 0;

  /// Drops every entry (all spec keys — a shared store is wiped for every
  /// engine using it). Tests and explicit cache resets only.
  virtual void clear() = 0;

  /// Makes everything stored so far durable (no-op for memory stores).
  virtual void flush() {}

  /// "memory" / "disk" — for stats lines and logs.
  virtual const char* kind() const noexcept = 0;
};

/// The in-process map store SweepEngine always had, now shareable between
/// engines. Internally synchronized.
class MemoryResultStore final : public ResultStore {
 public:
  bool load_model(std::uint64_t spec_key, std::uint64_t lambda_bits,
                  ModelEntry* out) override;
  void store_model(std::uint64_t spec_key, std::uint64_t lambda_bits,
                   const ModelEntry& entry) override;
  bool warm_state_at_or_below(std::uint64_t spec_key, std::uint64_t lambda_bits,
                              std::vector<double>* state) override;
  bool load_sim(std::uint64_t spec_key, std::uint64_t lambda_bits,
                std::uint64_t seed, sim::SimResult* out) override;
  void store_sim(std::uint64_t spec_key, std::uint64_t lambda_bits,
                 std::uint64_t seed, const sim::SimResult& result) override;
  bool load_saturation(std::uint64_t spec_key, std::uint64_t tol_bits,
                       SaturationResult* out) override;
  void store_saturation(std::uint64_t spec_key, std::uint64_t tol_bits,
                        const SaturationResult& result) override;
  StoreSizes sizes() const override;
  void clear() override;
  const char* kind() const noexcept override { return "memory"; }

 private:
  mutable std::mutex mutex_;
  /// (spec_key, lambda_bits) -> entry; pair order sorts by spec then by
  /// ascending lambda, so the warm predecessor is one upper_bound away.
  std::map<std::pair<std::uint64_t, std::uint64_t>, ModelEntry> model_;
  std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>,
           sim::SimResult>
      sim_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, SaturationResult>
      saturation_;
};

}  // namespace kncube::core
