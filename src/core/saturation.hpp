// Saturation-rate search for both the analytical models and the simulator.
//
// The models have a sharp feasibility boundary (the fixed point stops
// existing); we locate it by exponential bracketing plus bisection. The
// simulator's boundary is statistical (backlog growth), so the sim search
// uses the same bisection with a coarser tolerance and reduced measurement
// effort per probe. Both searches accept any valid ScenarioSpec; the model
// search requires the spec to have an analytical model (registry dispatch),
// the sim search works for sim-only specs too.
#pragma once

#include <functional>

#include "core/experiment.hpp"

namespace kncube::core {

struct SaturationResult {
  double rate = 0.0;    ///< highest stable injection rate found
  int probes = 0;       ///< model solves / simulations performed
  /// True when no stable rate was ever observed: the shrink phase collapsed
  /// the bracket to ~0 without a single stable probe. `rate` is 0 in that
  /// case — callers must not treat it as a converged saturation boundary.
  bool failed = false;
};

/// Generic bracketing + bisection on a stable(rate) predicate: grows/shrinks
/// from `initial_guess` until the boundary is bracketed, then bisects to
/// relative width `rel_tol`. Exposed so callers with memoized probes (e.g.
/// core::SweepEngine) can reuse the search.
SaturationResult bisect_saturation(double initial_guess, double rel_tol,
                                   const std::function<bool(double)>& stable);

/// Bisects the dispatched model's saturation boundary to relative width
/// `rel_tol`. Throws std::logic_error for sim-only specs.
SaturationResult model_saturation_rate(const ScenarioSpec& spec,
                                       double rel_tol = 1e-3);
SaturationResult model_saturation_rate(const Scenario& scenario,
                                       double rel_tol = 1e-3);

/// Bisects the simulator's saturation boundary. `rel_tol` is coarser by
/// default because every probe is a full simulation.
SaturationResult sim_saturation_rate(const ScenarioSpec& spec, double rel_tol = 0.05);
SaturationResult sim_saturation_rate(const Scenario& scenario, double rel_tol = 0.05);

}  // namespace kncube::core
