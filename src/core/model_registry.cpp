#include "core/model_registry.hpp"

namespace kncube::core {

namespace {

ModelDispatch sim_only(std::string reason) {
  ModelDispatch d;
  d.sim_only_reason = std::move(reason);
  return d;
}

/// True when any model-approximation knob differs from its default. Families
/// that cannot represent a knob must not silently ignore a non-default
/// setting — the caller would believe they ran an ablation that never
/// happened — so they dispatch sim-only instead.
bool nondefault_blocking(const ScenarioSpec& spec) {
  return spec.blocking != model::BlockingVariant::kPaper;
}
bool nondefault_bases(const ScenarioSpec& spec) {
  return spec.busy_basis != model::ServiceBasis::kTransmission ||
         spec.vcmux_basis != model::ServiceBasis::kTransmission;
}

/// Mirrors core::MmppArrivals into the model layer's shape struct.
model::MmppArrivalShape mmpp_shape(const ScenarioSpec& spec) {
  const MmppArrivals& m = spec.mmpp();
  return {m.burst_multiplier, m.p_enter_burst, m.p_leave_burst};
}

ModelDispatch torus_dispatch(const ScenarioSpec& spec) {
  const TorusTopology& t = spec.torus();
  if (t.bidirectional) {
    return sim_only("analytical models assume unidirectional links");
  }
  if (t.n != 2) {
    return sim_only("analytical torus models are 2-D (n == 2)");
  }
  if (spec.is_hotspot()) {
    model::ModelConfig cfg;
    cfg.k = t.k;
    cfg.vcs = spec.vcs;
    cfg.message_length = spec.message_length;
    cfg.hot_fraction = spec.hotspot().fraction;
    cfg.blocking = spec.blocking;
    cfg.busy_basis = spec.busy_basis;
    cfg.vcmux_basis = spec.vcmux_basis;
    ModelDispatch d;
    if (spec.is_mmpp()) {
      d.model = std::make_unique<model::MmppHotspotAnalyticalModel>(
          cfg, mmpp_shape(spec));
    } else {
      d.model = std::make_unique<model::HotspotAnalyticalModel>(cfg);
    }
    return d;
  }
  if (std::holds_alternative<UniformTraffic>(spec.traffic)) {
    if (nondefault_blocking(spec) || nondefault_bases(spec)) {
      return sim_only(
          "uniform-torus model has no blocking/basis ablation variants");
    }
    model::UniformModelConfig cfg;
    cfg.k = t.k;
    cfg.vcs = spec.vcs;
    cfg.message_length = spec.message_length;
    ModelDispatch d;
    if (spec.is_mmpp()) {
      d.model = std::make_unique<model::MmppUniformAnalyticalModel>(
          cfg, mmpp_shape(spec));
    } else {
      d.model = std::make_unique<model::UniformAnalyticalModel>(cfg);
    }
    return d;
  }
  return sim_only("no analytical counterpart for this traffic pattern");
}

ModelDispatch mesh_dispatch(const ScenarioSpec& spec) {
  const MeshTopology& m = spec.mesh();
  if (std::holds_alternative<UniformTraffic>(spec.traffic)) {
    model::MeshModelConfig cfg;
    cfg.k = m.k;
    cfg.n = m.n;
    cfg.vcs = spec.vcs;
    cfg.message_length = spec.message_length;
    cfg.blocking = spec.blocking;
    cfg.busy_basis = spec.busy_basis;
    cfg.vcmux_basis = spec.vcmux_basis;
    ModelDispatch d;
    d.model = std::make_unique<model::MeshAnalyticalModel>(cfg);
    return d;
  }
  if (spec.is_hotspot()) {
    // The hot-spot mesh model exploits the centre node's mirror symmetry
    // (mesh_hotspot_model.hpp): the hot load on a dimension-d line depends
    // only on the distance to the centre and on whether the line is hot
    // (earlier coordinates already corrected), giving O(n k) classes. An
    // off-centre hot node breaks that symmetry — every channel gets its own
    // load — so the simulator carries that variant.
    const MeshTopology& m = spec.mesh();
    std::int64_t centre = 0;
    for (int d = 0, stride = 1; d < m.n; ++d, stride *= m.k) {
      centre += static_cast<std::int64_t>(m.k / 2) * stride;
    }
    const std::int64_t hot = spec.hotspot().hot_node;
    if (hot != -1 && hot != centre) {
      return sim_only(
          "mesh hot-spot model covers the centre hot node only (off-centre "
          "load is per-channel with no class symmetry)");
    }
    model::MeshHotspotModelConfig cfg;
    cfg.k = m.k;
    cfg.n = m.n;
    cfg.vcs = spec.vcs;
    cfg.message_length = spec.message_length;
    cfg.hot_fraction = spec.hotspot().fraction;
    cfg.blocking = spec.blocking;
    cfg.busy_basis = spec.busy_basis;
    cfg.vcmux_basis = spec.vcmux_basis;
    ModelDispatch d;
    d.model = std::make_unique<model::HotspotMeshAnalyticalModel>(cfg);
    return d;
  }
  return sim_only("no analytical counterpart for this traffic pattern");
}

ModelDispatch hypercube_dispatch(const ScenarioSpec& spec) {
  const bool uniform = std::holds_alternative<UniformTraffic>(spec.traffic);
  if (!spec.is_hotspot() && !uniform) {
    return sim_only("no analytical counterpart for this traffic pattern");
  }
  if (nondefault_blocking(spec)) {
    return sim_only("hypercube model has no blocking-form ablation variant");
  }
  model::HypercubeModelConfig cfg;
  cfg.dims = spec.hypercube().dims;
  cfg.vcs = spec.vcs;
  cfg.message_length = spec.message_length;
  // Uniform traffic is the h = 0 degeneration of the hot-spot model (the
  // hot streams vanish and every channel carries the regular background).
  cfg.hot_fraction = uniform ? 0.0 : spec.hotspot().fraction;
  cfg.busy_basis = spec.busy_basis;
  cfg.vcmux_basis = spec.vcmux_basis;
  ModelDispatch d;
  d.model = std::make_unique<model::HypercubeAnalyticalModel>(cfg);
  return d;
}

}  // namespace

ModelDispatch make_analytical_model(const ScenarioSpec& spec) {
  spec.validate();
  if (!spec.failures.empty()) {
    // Every analytical family assumes the pristine network: silently solving
    // the pristine model for a degraded scenario would report latencies for
    // a network that does not exist. Checked before any family dispatch so
    // no faulty spec can slip through a family-specific branch.
    return sim_only("fault-aware analytical model not yet implemented");
  }
  if (spec.is_mmpp() && !spec.is_torus()) {
    // The bursty (MMPP) service stage — engine/bursty.hpp, the paper's §5
    // future work — is wired into the torus families only; the mesh and
    // hypercube builders do not thread an arrival IDC yet.
    return sim_only(
        "bursty-arrival model covers the torus families only (mesh and "
        "hypercube models assume Bernoulli arrivals)");
  }
  if (spec.is_torus()) return torus_dispatch(spec);
  if (spec.is_mesh()) return mesh_dispatch(spec);
  return hypercube_dispatch(spec);
}

}  // namespace kncube::core
