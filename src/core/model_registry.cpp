#include "core/model_registry.hpp"

namespace kncube::core {

namespace {

ModelDispatch sim_only(std::string reason) {
  ModelDispatch d;
  d.sim_only_reason = std::move(reason);
  return d;
}

/// True when any model-approximation knob differs from its default. Families
/// that cannot represent a knob must not silently ignore a non-default
/// setting — the caller would believe they ran an ablation that never
/// happened — so they dispatch sim-only instead.
bool nondefault_blocking(const ScenarioSpec& spec) {
  return spec.blocking != model::BlockingVariant::kPaper;
}
bool nondefault_bases(const ScenarioSpec& spec) {
  return spec.busy_basis != model::ServiceBasis::kTransmission ||
         spec.vcmux_basis != model::ServiceBasis::kTransmission;
}

ModelDispatch torus_dispatch(const ScenarioSpec& spec) {
  const TorusTopology& t = spec.torus();
  if (t.bidirectional) {
    return sim_only("analytical models assume unidirectional links");
  }
  if (t.n != 2) {
    return sim_only("analytical torus models are 2-D (n == 2)");
  }
  if (spec.is_hotspot()) {
    model::ModelConfig cfg;
    cfg.k = t.k;
    cfg.vcs = spec.vcs;
    cfg.message_length = spec.message_length;
    cfg.hot_fraction = spec.hotspot().fraction;
    cfg.blocking = spec.blocking;
    cfg.busy_basis = spec.busy_basis;
    cfg.vcmux_basis = spec.vcmux_basis;
    ModelDispatch d;
    d.model = std::make_unique<model::HotspotAnalyticalModel>(cfg);
    return d;
  }
  if (std::holds_alternative<UniformTraffic>(spec.traffic)) {
    if (nondefault_blocking(spec) || nondefault_bases(spec)) {
      return sim_only(
          "uniform-torus model has no blocking/basis ablation variants");
    }
    model::UniformModelConfig cfg;
    cfg.k = t.k;
    cfg.vcs = spec.vcs;
    cfg.message_length = spec.message_length;
    ModelDispatch d;
    d.model = std::make_unique<model::UniformAnalyticalModel>(cfg);
    return d;
  }
  return sim_only("no analytical counterpart for this traffic pattern");
}

ModelDispatch mesh_dispatch(const ScenarioSpec& spec) {
  const MeshTopology& m = spec.mesh();
  if (std::holds_alternative<UniformTraffic>(spec.traffic)) {
    model::MeshModelConfig cfg;
    cfg.k = m.k;
    cfg.n = m.n;
    cfg.vcs = spec.vcs;
    cfg.message_length = spec.message_length;
    cfg.blocking = spec.blocking;
    cfg.busy_basis = spec.busy_basis;
    cfg.vcmux_basis = spec.vcmux_basis;
    ModelDispatch d;
    d.model = std::make_unique<model::MeshAnalyticalModel>(cfg);
    return d;
  }
  if (spec.is_hotspot()) {
    // The uniform mesh folds its - channels onto the + classes by mirror
    // symmetry and shares one rate profile across dimensions; a hot node
    // breaks both symmetries, leaving one class per individual channel
    // (O(n k^n)) with no reduction — not a channel-class model, so the
    // simulator carries this family.
    return sim_only(
        "mesh hot-spot load is per-channel (no position symmetry to reduce "
        "to channel classes)");
  }
  return sim_only("no analytical counterpart for this traffic pattern");
}

ModelDispatch hypercube_dispatch(const ScenarioSpec& spec) {
  const bool uniform = std::holds_alternative<UniformTraffic>(spec.traffic);
  if (!spec.is_hotspot() && !uniform) {
    return sim_only("no analytical counterpart for this traffic pattern");
  }
  if (nondefault_blocking(spec)) {
    return sim_only("hypercube model has no blocking-form ablation variant");
  }
  model::HypercubeModelConfig cfg;
  cfg.dims = spec.hypercube().dims;
  cfg.vcs = spec.vcs;
  cfg.message_length = spec.message_length;
  // Uniform traffic is the h = 0 degeneration of the hot-spot model (the
  // hot streams vanish and every channel carries the regular background).
  cfg.hot_fraction = uniform ? 0.0 : spec.hotspot().fraction;
  cfg.busy_basis = spec.busy_basis;
  cfg.vcmux_basis = spec.vcmux_basis;
  ModelDispatch d;
  d.model = std::make_unique<model::HypercubeAnalyticalModel>(cfg);
  return d;
}

}  // namespace

ModelDispatch make_analytical_model(const ScenarioSpec& spec) {
  spec.validate();
  if (!spec.failures.empty()) {
    // Every analytical family assumes the pristine network: silently solving
    // the pristine model for a degraded scenario would report latencies for
    // a network that does not exist. Checked before any family dispatch so
    // no faulty spec can slip through a family-specific branch.
    return sim_only("fault-aware analytical model not yet implemented");
  }
  if (spec.is_mmpp()) {
    // The models are Poisson-based; bursty arrivals are the paper's §5
    // stated future work and currently simulator-only.
    return sim_only("analytical models assume Bernoulli (Poisson) arrivals");
  }
  if (spec.is_torus()) return torus_dispatch(spec);
  if (spec.is_mesh()) return mesh_dispatch(spec);
  return hypercube_dispatch(spec);
}

}  // namespace kncube::core
