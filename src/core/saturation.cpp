#include "core/saturation.hpp"

#include <algorithm>

#include "core/sweep_engine.hpp"

#include "util/assert.hpp"

namespace kncube::core {

SaturationResult bisect_saturation(double initial_guess, double rel_tol,
                                   const std::function<bool(double)>& stable) {
  SaturationResult res;
  double lo = 0.0;
  double hi = initial_guess;

  // Bracket: grow hi until unstable, shrinking the guess if even it is
  // unstable from the start.
  auto probe = [&](double rate) {
    ++res.probes;
    return stable(rate);
  };
  if (probe(hi)) {
    lo = hi;
    while (probe(hi * 2.0)) {
      lo = hi * 2.0;
      hi *= 2.0;
      KNC_ASSERT_MSG(res.probes < 200, "saturation bracket failed to close");
    }
    hi *= 2.0;
  } else {
    while (hi > 1e-12 && !probe(hi / 2.0)) {
      hi /= 2.0;
      KNC_ASSERT_MSG(res.probes < 200, "saturation bracket failed to close");
    }
    if (hi <= 1e-12) {
      // The shrink loop ran the bracket down to nothing without observing a
      // single stable probe. Historically this returned hi/2 as a "converged"
      // rate that was never probed; report the failure instead.
      res.failed = true;
      res.rate = 0.0;
      return res;
    }
    // The loop exited because probe(hi/2) was stable, so this lo is probed.
    lo = hi / 2.0;
  }

  while ((hi - lo) > rel_tol * hi) {
    const double mid = 0.5 * (lo + hi);
    if (probe(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  res.rate = lo;
  return res;
}

SaturationResult model_saturation_rate(const ScenarioSpec& spec, double rel_tol) {
  // One-shot engine: the guess + bisection live in SweepEngine so the search
  // logic (and its memoization) has a single definition.
  return SweepEngine(spec).saturation_rate(rel_tol);
}

SaturationResult model_saturation_rate(const Scenario& scenario, double rel_tol) {
  return model_saturation_rate(to_spec(scenario), rel_tol);
}

SaturationResult sim_saturation_rate(const ScenarioSpec& spec, double rel_tol) {
  // Each probe is a full simulation: cap the per-probe effort. A saturated
  // probe reveals itself quickly (backlog growth), a stable one converges.
  ScenarioSpec probe_spec = spec;
  probe_spec.target_messages = std::max<std::uint64_t>(spec.target_messages / 2, 800);

  // Seed the bracketing from the model's bottleneck estimate when the spec
  // has an analytical model; otherwise from the streaming bound 1/Lm (the
  // bracket phase then grows/shrinks to wherever the boundary actually is).
  const ModelDispatch dispatch = make_analytical_model(spec);
  const double guess = dispatch.has_model()
                           ? dispatch.model->estimated_saturation_rate()
                           : 1.0 / static_cast<double>(spec.message_length);
  return bisect_saturation(guess, rel_tol, [&](double rate) {
    const sim::SimResult r = sim::simulate(to_sim_config(probe_spec, rate));
    return !r.saturated;
  });
}

SaturationResult sim_saturation_rate(const Scenario& scenario, double rel_tol) {
  return sim_saturation_rate(to_spec(scenario), rel_tol);
}

}  // namespace kncube::core
