// Experiment harness: runs the analytical models and the flit-level
// simulator over injection-rate sweeps and produces the model-vs-simulation
// series of the paper's §4. This (plus core/kncube.hpp) is the library's
// main entry point for downstream users; workloads are described by
// core::ScenarioSpec (core/scenario_spec.hpp) and dispatched to the matching
// analytical model by the registry (core/model_registry.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "core/scenario_spec.hpp"
#include "model/hotspot_model.hpp"
#include "sim/config.hpp"
#include "sim/simulator.hpp"

namespace kncube::core {

/// DEPRECATED shim (one release): the pre-ScenarioSpec flat scenario, which
/// could only describe the paper's hotspot 2-D unidirectional torus. New
/// code should build a ScenarioSpec (or parse one); `to_spec` converts
/// field-for-field for callers migrating incrementally.
struct Scenario {
  int k = 16;
  int vcs = 2;
  int message_length = 32;
  double hot_fraction = 0.2;
  int buffer_depth = 2;  ///< simulator only (the model abstracts buffers away)
  std::uint64_t seed = 0xC0FFEE;
  // Simulation effort; benches lower these when KNCUBE_QUICK is set.
  std::uint64_t target_messages = 2500;
  std::uint64_t max_cycles = 3'000'000;
  std::uint64_t warmup_cycles = 20000;
  // Model-approximation knobs, forwarded verbatim to model::ModelConfig so
  // ablation scenarios can flip them without dropping down a layer.
  model::BlockingVariant blocking = model::BlockingVariant::kPaper;
  model::ServiceBasis busy_basis = model::ServiceBasis::kTransmission;
  model::ServiceBasis vcmux_basis = model::ServiceBasis::kTransmission;
};

/// Field-for-field conversion of the legacy flat scenario: a hotspot,
/// Bernoulli, 2-D unidirectional torus spec.
ScenarioSpec to_spec(const Scenario& s);

model::ModelConfig to_model_config(const Scenario& s, double lambda);
sim::SimConfig to_sim_config(const Scenario& s, double lambda);

/// One operating point: the model prediction (when the scenario has an
/// analytical model) and the simulation measurement at the same rate.
struct PointResult {
  double lambda = 0.0;
  model::ModelResult model;
  sim::SimResult sim;
  bool has_sim = false;
  /// False for sim-only scenarios (no analytical counterpart); `model` is
  /// then the default-constructed (saturated) result.
  bool has_model = false;

  /// Relative model error |model - sim| / sim; NaN when either side is
  /// unavailable (saturated or non-finite model, missing or degenerate sim).
  double relative_error() const;
};

/// Runs `lambdas` through the dispatched analytical model and (when
/// `run_sim`) the simulator. Convenience wrapper over a one-shot
/// core::SweepEngine (see core/sweep_engine.hpp): points execute in parallel
/// on the global thread pool and come back in input order, with per-point
/// derived seeds so series are reproducible regardless of scheduling.
/// Callers issuing repeated or overlapping sweeps should hold a SweepEngine
/// to reuse its memoization.
std::vector<PointResult> run_series(const ScenarioSpec& spec,
                                    const std::vector<double>& lambdas,
                                    bool run_sim = true);
std::vector<PointResult> run_series(const Scenario& scenario,
                                    const std::vector<double>& lambdas,
                                    bool run_sim = true);

/// A sweep of `points` rates from `lo_frac` to `hi_frac` of the model's
/// saturation rate (found by bisection), mirroring how the paper's figures
/// sample each curve from light load up to the latency asymptote. Requires
/// a scenario with an analytical model.
std::vector<double> lambda_sweep(const ScenarioSpec& spec, int points,
                                 double lo_frac = 0.1, double hi_frac = 0.95);
std::vector<double> lambda_sweep(const Scenario& scenario, int points,
                                 double lo_frac = 0.1, double hi_frac = 0.95);

}  // namespace kncube::core
