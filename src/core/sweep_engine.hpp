// SweepEngine: batched evaluation of operating points for one scenario.
//
// Every consumer of the library — benches, examples, the saturation search,
// parameter studies — ultimately evaluates (scenario, lambda) points. The
// engine centralises that loop for *any* valid ScenarioSpec: the model
// registry (core/model_registry.hpp) dispatches the spec to its analytical
// model family (hot-spot torus, uniform torus, hot-spot hypercube) at
// construction, and every model_point goes through that polymorphic
// interface; sim-only specs (permutation patterns, MMPP arrivals,
// bidirectional links, n ≠ 2 tori) still run simulations through the same
// engine with the model side reported absent. Points are batched across the
// global thread pool (util/thread_pool, KNCUBE_THREADS), simulator seeds are
// derived per-point so series are reproducible regardless of scheduling, and
// repeated points are memoized:
//
//  * model solves are deterministic in (scenario, lambda), so the model
//    cache is keyed by lambda alone — overlapping sweeps (e.g. a saturation
//    bisection followed by a figure sweep, or two panels sharing a grid)
//    pay for each fixed point once;
//  * simulator runs are only deterministic given a seed, so the sim cache is
//    keyed by (lambda, seed). Identical lambdas at *different* point indices
//    derive different seeds on purpose: they are independent replicates, not
//    cache hits.
//
// Model solves are additionally *warm-started* (continuation): each solve
// seeds its fixed-point iteration with the converged channel-class state of
// the nearest cached stable point at or below its lambda, so ascending
// sweeps chain solutions and each saturation-bisection probe starts from the
// stable bracket end. The solver falls back to the zero-load start whenever
// a warm start fails, and converged iterates are polished to the map's exact
// stationary point (model/solver.hpp), so any solve that converges returns
// the same bits no matter where it started or which cached state seeded it.
// One caveat keeps this empirical rather than by-construction: a point whose
// cold iteration would exhaust its budget without diverging could in
// principle still converge from a warm seed (warm starting can only *add*
// converged points, never lose or alter one); no such budget-marginal point
// has been observed in this model family, and tests/model/warm_start_test
// pins warm-on/warm-off equivalence across sweeps including the knee.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "core/model_registry.hpp"
#include "core/saturation.hpp"

namespace kncube::core {

class SweepEngine {
 public:
  /// Dispatches `spec` through the model registry; throws
  /// std::invalid_argument when the spec is invalid.
  explicit SweepEngine(ScenarioSpec spec);
  /// DEPRECATED shim: accepts the legacy flat Scenario via to_spec.
  explicit SweepEngine(const Scenario& scenario);

  const ScenarioSpec& spec() const noexcept { return spec_; }

  /// True when the registry dispatched an analytical model for this spec.
  bool has_model() const noexcept { return model_ != nullptr; }
  /// Why the spec is sim-only (empty when has_model()).
  const std::string& sim_only_reason() const noexcept { return sim_only_reason_; }
  /// The dispatched model; throws std::logic_error for sim-only specs.
  const model::AnalyticalModel& analytical_model() const;

  /// Runs `lambdas` through the model (when one exists) and (when `run_sim`)
  /// the simulator. Points execute in parallel on the global thread pool;
  /// results come back in input order.
  std::vector<PointResult> run(const std::vector<double>& lambdas,
                               bool run_sim = true);

  /// One model evaluation, memoized on lambda. Throws std::logic_error for
  /// sim-only specs.
  model::ModelResult model_point(double lambda);

  /// One simulation, memoized on (lambda, seed).
  sim::SimResult sim_point(double lambda, std::uint64_t seed);

  /// The model's saturation boundary, bisected through the memoized
  /// model_point probes; the result itself is cached, so repeated sweeps
  /// locate the boundary once. Throws std::logic_error for sim-only specs.
  SaturationResult saturation_rate(double rel_tol = 1e-3);

  /// A sweep of `points` rates from `lo_frac` to `hi_frac` of the model's
  /// saturation rate (found by bisection), mirroring how the paper's figures
  /// sample each curve from light load up to the latency asymptote.
  std::vector<double> lambda_sweep(int points, double lo_frac = 0.1,
                                   double hi_frac = 0.95);

  /// Simulator seed for point `index`: decorrelated across indices, stable
  /// across runs and scheduling.
  std::uint64_t point_seed(std::size_t index) const noexcept;

  // --- memoization introspection (tests, diagnostics) ---
  std::size_t model_cache_size() const;
  std::size_t sim_cache_size() const;
  std::uint64_t model_cache_hits() const;
  std::uint64_t sim_cache_hits() const;
  void clear_cache();

  /// Disables/enables warm-started model solves (default on). Results are
  /// bit-identical either way (see the header comment); the toggle exists
  /// for benchmarking and for the tests that verify that very claim.
  void set_warm_start(bool enabled) noexcept { warm_start_ = enabled; }
  bool warm_start() const noexcept { return warm_start_; }

 private:
  /// Cached model solve: the result plus the converged channel-class state
  /// (empty when saturated) used to warm-start nearby solves.
  struct ModelEntry {
    model::ModelResult result;
    std::vector<double> state;
  };

  ScenarioSpec spec_;
  std::unique_ptr<model::AnalyticalModel> model_;  ///< null for sim-only specs
  std::string sim_only_reason_;
  bool warm_start_ = true;

  mutable std::mutex mutex_;
  std::map<std::uint64_t, ModelEntry> model_cache_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, sim::SimResult> sim_cache_;
  std::map<std::uint64_t, SaturationResult> saturation_cache_;  ///< by rel_tol bits
  std::uint64_t model_hits_ = 0;
  std::uint64_t sim_hits_ = 0;
};

}  // namespace kncube::core
