// SweepEngine: batched evaluation of operating points for one scenario.
//
// Every consumer of the library — benches, examples, the saturation search,
// parameter studies, the capacity-planning daemon — ultimately evaluates
// (scenario, lambda) points. The engine centralises that loop for *any*
// valid ScenarioSpec: the model registry (core/model_registry.hpp)
// dispatches the spec to its analytical model family (hot-spot torus,
// uniform torus, hot-spot hypercube, uniform mesh) at construction, and
// every model_point goes through that polymorphic interface; sim-only specs
// (permutation patterns, MMPP arrivals, bidirectional links, n ≠ 2 tori,
// faulty networks) still run simulations through the same engine with the
// model side reported absent. Points are batched across the global thread
// pool (util/thread_pool, KNCUBE_THREADS), simulator seeds are derived
// per-point so series are reproducible regardless of scheduling, and
// repeated points are memoized through a pluggable ResultStore
// (core/result_store.hpp):
//
//  * model solves are deterministic in (scenario, lambda), so model entries
//    are keyed by (spec key, lambda bits) — overlapping sweeps (e.g. a
//    saturation bisection followed by a figure sweep, or two panels sharing
//    a grid) pay for each fixed point once;
//  * simulator runs are only deterministic given a seed, so sim entries are
//    keyed by (spec key, lambda bits, seed). Identical lambdas at
//    *different* point indices derive different seeds on purpose: they are
//    independent replicates, not cache hits.
//
// The default store is a private in-memory map (the engine behaves exactly
// as it always did); passing a shared store — in particular the disk-backed
// service::DiskResultStore — makes cached answers outlive the engine and
// the process. Stored results are returned bit-identical to the cold
// computation, so a store hit is indistinguishable from solving again.
//
// Concurrent identical requests are deduplicated in flight: when a point
// misses the store but another thread is already computing that exact key,
// the caller waits for that solve instead of recomputing — N clients asking
// for the same (spec, lambda) pay one fixed point. The dedup counter is
// part of CacheStats and pinned by tests/core/sweep_engine_test.
//
// Model solves are additionally *warm-started* (continuation): each solve
// seeds its fixed-point iteration with the converged channel-class state of
// the nearest cached stable point at or below its lambda, so ascending
// sweeps chain solutions and each saturation-bisection probe starts from the
// stable bracket end. The solver falls back to the zero-load start whenever
// a warm start fails, and converged iterates are polished to the map's exact
// stationary point (model/solver.hpp), so any solve that converges returns
// the same bits no matter where it started or which cached state seeded it —
// including states loaded from a previous process's disk store. One caveat
// keeps this empirical rather than by-construction: a point whose cold
// iteration would exhaust its budget without diverging could in principle
// still converge from a warm seed (warm starting can only *add* converged
// points, never lose or alter one); no such budget-marginal point has been
// observed in this model family, and tests/model/warm_start_test pins
// warm-on/warm-off equivalence across sweeps including the knee.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "core/model_registry.hpp"
#include "core/result_store.hpp"
#include "core/saturation.hpp"

namespace kncube::core {

class SweepEngine {
 public:
  /// Dispatches `spec` through the model registry; throws
  /// std::invalid_argument when the spec is invalid. `store` (optional)
  /// backs the memoization — pass a shared store to persist results beyond
  /// this engine; the default is a private in-memory store.
  explicit SweepEngine(ScenarioSpec spec,
                       std::shared_ptr<ResultStore> store = nullptr);
  /// DEPRECATED shim: accepts the legacy flat Scenario via to_spec.
  explicit SweepEngine(const Scenario& scenario);

  const ScenarioSpec& spec() const noexcept { return spec_; }
  /// The spec's canonical key — the store's scenario dimension.
  std::uint64_t spec_key() const noexcept { return spec_key_; }
  const std::shared_ptr<ResultStore>& store() const noexcept { return store_; }

  /// True when the registry dispatched an analytical model for this spec.
  bool has_model() const noexcept { return model_ != nullptr; }
  /// Why the spec is sim-only (empty when has_model()).
  const std::string& sim_only_reason() const noexcept { return sim_only_reason_; }
  /// The dispatched model; throws std::logic_error for sim-only specs.
  const model::AnalyticalModel& analytical_model() const;

  /// Runs `lambdas` through the model (when one exists) and (when `run_sim`)
  /// the simulator. Points execute in parallel on the global thread pool;
  /// results come back in input order.
  std::vector<PointResult> run(const std::vector<double>& lambdas,
                               bool run_sim = true);

  /// One model evaluation, memoized through the store and deduplicated
  /// against identical in-flight solves. Throws std::logic_error for
  /// sim-only specs.
  model::ModelResult model_point(double lambda);

  /// One simulation, memoized on (lambda, seed) and deduplicated in flight.
  sim::SimResult sim_point(double lambda, std::uint64_t seed);

  /// The model's saturation boundary, bisected through the memoized
  /// model_point probes; the result itself is cached, so repeated sweeps
  /// locate the boundary once. Throws std::logic_error for sim-only specs.
  SaturationResult saturation_rate(double rel_tol = 1e-3);

  /// A sweep of `points` rates from `lo_frac` to `hi_frac` of the model's
  /// saturation rate (found by bisection), mirroring how the paper's figures
  /// sample each curve from light load up to the latency asymptote.
  std::vector<double> lambda_sweep(int points, double lo_frac = 0.1,
                                   double hi_frac = 0.95);

  /// Simulator seed for point `index`: decorrelated across indices, stable
  /// across runs and scheduling.
  std::uint64_t point_seed(std::size_t index) const noexcept;

  // --- memoization introspection (tests, stats lines, diagnostics) ---

  /// Entry counts (from the store — global across specs when the store is
  /// shared) plus this engine's hit/solve/dedup counters.
  CacheStats cache_stats() const;
  /// Solves this engine currently has in flight (owner threads running).
  std::size_t inflight_solves() const;

  // Narrow legacy accessors, kept for existing call sites; equivalent to
  // the matching cache_stats() fields.
  std::size_t model_cache_size() const;
  std::size_t sim_cache_size() const;
  std::uint64_t model_cache_hits() const;
  std::uint64_t sim_cache_hits() const;
  /// Clears the backing store (every spec, when shared) and the counters.
  void clear_cache();

  /// Disables/enables warm-started model solves (default on). Results are
  /// bit-identical either way (see the header comment); the toggle exists
  /// for benchmarking and for the tests that verify that very claim.
  void set_warm_start(bool enabled) noexcept { warm_start_ = enabled; }
  bool warm_start() const noexcept { return warm_start_; }

 private:
  /// Rendezvous for threads that asked for a key another thread is already
  /// computing: the owner fulfills (or fails) it once, waiters block on the
  /// condition variable. Failure rethrows in every waiter.
  template <typename T>
  struct Inflight {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    bool failed = false;
    std::string error;
    T value{};

    void fulfill(const T& v) {
      {
        std::lock_guard<std::mutex> lock(m);
        value = v;
        done = true;
      }
      cv.notify_all();
    }
    void fail(const std::string& why) {
      {
        std::lock_guard<std::mutex> lock(m);
        failed = true;
        error = why;
        done = true;
      }
      cv.notify_all();
    }
    T wait() {
      std::unique_lock<std::mutex> lock(m);
      cv.wait(lock, [this] { return done; });
      if (failed) throw std::runtime_error(error);
      return value;
    }
  };

  ScenarioSpec spec_;
  std::uint64_t spec_key_ = 0;
  std::shared_ptr<ResultStore> store_;
  std::unique_ptr<model::AnalyticalModel> model_;  ///< null for sim-only specs
  std::string sim_only_reason_;
  bool warm_start_ = true;

  mutable std::mutex mutex_;  ///< counters + in-flight maps
  std::map<std::uint64_t, std::shared_ptr<Inflight<ModelEntry>>> inflight_model_;
  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::shared_ptr<Inflight<sim::SimResult>>>
      inflight_sim_;
  std::uint64_t model_hits_ = 0;
  std::uint64_t sim_hits_ = 0;
  std::uint64_t saturation_hits_ = 0;
  std::uint64_t model_solves_ = 0;
  std::uint64_t sim_runs_ = 0;
  std::uint64_t inflight_waits_ = 0;
};

}  // namespace kncube::core
