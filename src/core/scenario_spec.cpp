#include "core/scenario_spec.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "topology/torus.hpp"

namespace kncube::core {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument("ScenarioSpec: " + msg);
}

// Round-trip-exact double formatting: 17 significant digits reproduce any
// IEEE-754 double bit-for-bit through strtod.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

double parse_double(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    fail(key + ": expected a number, got '" + value + "'");
  }
  return v;
}

std::int64_t parse_int(const std::string& key, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
    fail(key + ": expected an integer, got '" + value + "'");
  }
  return v;
}

/// Checked narrowing for the int-typed knobs: out-of-range values fail like
/// any other malformed input instead of silently wrapping.
int parse_int32(const std::string& key, const std::string& value) {
  const std::int64_t v = parse_int(key, value);
  if (v < std::numeric_limits<int>::min() || v > std::numeric_limits<int>::max()) {
    fail(key + ": value " + value + " out of range");
  }
  return static_cast<int>(v);
}

std::uint64_t parse_uint(const std::string& key, const std::string& value) {
  // strtoull (not strtoll): 64-bit seeds use the full unsigned range.
  if (!value.empty() && value[0] == '-') fail(key + ": must be non-negative");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    fail(key + ": expected an integer, got '" + value + "'");
  }
  return static_cast<std::uint64_t>(v);
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "true" || value == "1") return true;
  if (value == "false" || value == "0") return false;
  fail(key + ": expected true/false, got '" + value + "'");
}

const char* traffic_kind_name(const Traffic& t) {
  struct Visitor {
    const char* operator()(const HotspotTraffic&) const { return "hotspot"; }
    const char* operator()(const UniformTraffic&) const { return "uniform"; }
    const char* operator()(const TransposeTraffic&) const { return "transpose"; }
    const char* operator()(const BitComplementTraffic&) const {
      return "bit_complement";
    }
    const char* operator()(const BitReversalTraffic&) const {
      return "bit_reversal";
    }
  };
  return std::visit(Visitor{}, t);
}

const char* basis_name(model::ServiceBasis b) {
  return b == model::ServiceBasis::kInclusive ? "inclusive" : "transmission";
}

model::ServiceBasis parse_basis(const std::string& key, const std::string& value) {
  if (value == "transmission") return model::ServiceBasis::kTransmission;
  if (value == "inclusive") return model::ServiceBasis::kInclusive;
  fail(key + ": expected transmission|inclusive, got '" + value + "'");
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Splits a comma-separated value list; the empty string is the empty list
/// (`fault.routers=` round-trips an explicit-links-only failure set).
std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> items;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    std::size_t comma = value.find(',', pos);
    if (comma == std::string::npos) comma = value.size();
    const std::string item = trim(value.substr(pos, comma - pos));
    if (!item.empty()) items.push_back(item);
    pos = comma + 1;
  }
  return items;
}

/// One failed-link entry in the canonical `node:dim:+|-` form.
topo::FailedLink parse_failed_link(const std::string& key,
                                   const std::string& entry) {
  const std::size_t c1 = entry.find(':');
  const std::size_t c2 = c1 == std::string::npos ? std::string::npos
                                                 : entry.find(':', c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos) {
    fail(key + ": expected node:dim:+|- entries, got '" + entry + "'");
  }
  topo::FailedLink l;
  l.node = parse_int(key, entry.substr(0, c1));
  l.dim = parse_int32(key, entry.substr(c1 + 1, c2 - c1 - 1));
  const std::string dir = entry.substr(c2 + 1);
  if (dir == "+") {
    l.dir = topo::Direction::kPlus;
  } else if (dir == "-") {
    l.dir = topo::Direction::kMinus;
  } else {
    fail(key + ": link direction must be + or -, got '" + dir + "'");
  }
  return l;
}

std::string format_failed_links(const std::vector<topo::FailedLink>& links) {
  std::string out;
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(links[i].node);
    out += ':';
    out += std::to_string(links[i].dim);
    out += links[i].dir == topo::Direction::kPlus ? ":+" : ":-";
  }
  return out;
}

}  // namespace

std::uint64_t ScenarioSpec::node_count() const noexcept {
  if (is_hypercube()) return std::uint64_t{1} << hypercube().dims;
  const int k = is_torus() ? torus().k : mesh().k;
  const int n = is_torus() ? torus().n : mesh().n;
  std::uint64_t size = 1;
  for (int d = 0; d < n; ++d) size *= static_cast<std::uint64_t>(k);
  return size;
}

void ScenarioSpec::validate() const {
  if (is_torus()) {
    const TorusTopology& t = torus();
    if (t.k < 2) fail("torus radix k must be >= 2");
    if (t.n < 1 || t.n > topo::kMaxDims) fail("torus dimension count out of range");
    if (!t.bidirectional && t.k > 2 && vcs < 2) {
      fail("unidirectional torus requires V >= 2 for deadlock freedom");
    }
  } else if (is_mesh()) {
    const MeshTopology& m = mesh();
    if (m.k < 2) fail("mesh radix k must be >= 2");
    if (m.n < 1 || m.n > topo::kMaxDims) fail("mesh dimension count out of range");
    // Dimension-order routing is acyclic on a mesh: any V >= 1 works.
  } else {
    const HypercubeTopology& h = hypercube();
    // The simulator realises the hypercube as a k = 2 n-cube, so the
    // simulator's dimension bound applies to the whole spec.
    if (h.dims < 1 || h.dims > topo::kMaxDims) fail("hypercube dims out of range");
  }
  if (sim_threads < 0) fail("sim threads must be >= 0 (0 = hardware concurrency)");
  if (vcs < 1) fail("need at least one virtual channel");
  if (buffer_depth < 1) fail("buffer depth must be >= 1");
  if (message_length < 1) fail("message length must be >= 1 flit");
  if (target_messages == 0) fail("target messages must be positive");
  if (max_cycles <= warmup_cycles) fail("max cycles must exceed warmup");

  const std::uint64_t size = node_count();
  if (is_hotspot()) {
    const HotspotTraffic& t = hotspot();
    if (t.fraction < 0.0 || t.fraction > 1.0) fail("hot fraction must be in [0,1]");
    // Resolved-topology bounds live here, not just at sim-config time: -1 is
    // the only placeholder (centre node); any other negative would silently
    // alias it in SimConfig::resolved_hot_node, and ids must fit the node
    // count of whichever topology alternative is active.
    if (t.hot_node < -1) fail("hot node must be -1 (centre) or a node id");
    if (t.hot_node >= 0 && static_cast<std::uint64_t>(t.hot_node) >= size) {
      fail("hot node outside the network");
    }
  } else if (std::holds_alternative<TransposeTraffic>(traffic)) {
    const bool flat_2d = (is_torus() && torus().n == 2) || (is_mesh() && mesh().n == 2);
    if (!flat_2d) fail("transpose traffic needs a 2-D torus or mesh");
  } else if (std::holds_alternative<BitComplementTraffic>(traffic)) {
    if (size % 2 != 0) fail("bit-complement needs an even node count");
  } else if (std::holds_alternative<BitReversalTraffic>(traffic)) {
    if ((size & (size - 1)) != 0) {
      fail("bit-reversal needs a power-of-two node count");
    }
  }

  if (is_mmpp()) {
    const MmppArrivals& m = mmpp();
    if (m.p_enter_burst <= 0.0 || m.p_enter_burst > 1.0 ||
        m.p_leave_burst <= 0.0 || m.p_leave_burst > 1.0) {
      fail("MMPP transition probabilities must be in (0,1]");
    }
    if (m.burst_multiplier < 1.0) fail("MMPP burst multiplier must be >= 1");
    // Degenerate stationary chains: pi_burst must stay strictly inside (0,1)
    // *in double precision* — extreme p_enter/p_leave ratios round it to 0 or
    // 1, a chain that (effectively) never or always bursts, so the burst
    // multiplier silently distorts the realized mean away from the
    // configured rate. Such specs should say Bernoulli instead.
    const double pi_burst =
        m.p_enter_burst / (m.p_enter_burst + m.p_leave_burst);
    if (!(pi_burst > 0.0) || !(pi_burst < 1.0)) {
      fail("MMPP stationary burst fraction is degenerate (0 or 1): the chain "
           "effectively never or always bursts; use Bernoulli arrivals");
    }
    // Achievability: the idle-state rate solves
    // pi_b*mult*lambda + (1-pi_b)*idle == lambda, which needs
    // mult*pi_b <= 1 — otherwise idle clamps at 0 and the realized mean
    // exceeds the configured rate at every lambda (model and sim would not
    // even agree on the offered load).
    if (m.burst_multiplier * pi_burst > 1.0) {
      fail("MMPP burst_multiplier * stationary burst fraction exceeds 1: the "
           "idle-state rate clamps at 0 and the realized mean load no longer "
           "matches the configured rate");
    }
  }

  if (!failures.empty()) {
    // The simulator realises the hypercube as a k = 2 n-cube; resolve the
    // effective (k, dims, wiring) once so the link checks below match the
    // network that will actually be built.
    const int eff_k = is_hypercube() ? 2 : (is_torus() ? torus().k : mesh().k);
    const int eff_n =
        is_hypercube() ? hypercube().dims : (is_torus() ? torus().n : mesh().n);
    const bool minus_links_exist =
        is_mesh() || (is_torus() && torus().bidirectional);

    // The centre-node arithmetic of SimConfig::resolved_hot_node, so the
    // hot-sink protection below agrees with what the simulator will resolve.
    std::int64_t hot = -1;
    if (is_hotspot()) {
      hot = hotspot().hot_node;
      if (hot < 0) {
        hot = 0;
        std::int64_t stride = 1;
        for (int d = 0; d < eff_n; ++d) {
          hot += (eff_k / 2) * stride;
          stride *= eff_k;
        }
      }
    }

    std::int64_t last_router = -1;
    for (const std::int64_t r : failures.routers) {
      if (r < 0 || static_cast<std::uint64_t>(r) >= size) {
        fail("fault.routers: router id " + std::to_string(r) +
             " outside the network");
      }
      if (r <= last_router) {
        fail("fault.routers must be strictly ascending (no duplicates)");
      }
      if (r == hot) {
        fail("fault.routers: cannot fail the hot-spot node (the sink of "
             "measurement traffic)");
      }
      last_router = r;
    }
    if (failures.routers.size() >= size) fail("cannot fail every router");

    std::int64_t last_link_key = -1;
    for (const topo::FailedLink& l : failures.links) {
      if (l.node < 0 || static_cast<std::uint64_t>(l.node) >= size) {
        fail("fault.links: node id " + std::to_string(l.node) +
             " outside the network");
      }
      if (l.dim < 0 || l.dim >= eff_n) {
        fail("fault.links: dimension " + std::to_string(l.dim) +
             " out of range");
      }
      if (l.dir == topo::Direction::kMinus && !minus_links_exist) {
        fail("fault.links: minus-direction links do not exist on a "
             "unidirectional topology");
      }
      if (is_mesh()) {
        std::int64_t stride = 1;
        for (int d = 0; d < l.dim; ++d) stride *= eff_k;
        const int c = static_cast<int>((l.node / stride) % eff_k);
        const bool exists =
            l.dir == topo::Direction::kPlus ? c < eff_k - 1 : c > 0;
        if (!exists) {
          fail("fault.links: link does not exist (mesh edge would wrap)");
        }
      }
      const std::int64_t link_key =
          (l.node << 5) | (static_cast<std::int64_t>(l.dim) << 1) |
          (l.dir == topo::Direction::kMinus ? 1 : 0);
      if (link_key <= last_link_key) {
        fail("fault.links must be strictly ascending by (node, dim, dir) "
             "(no duplicates)");
      }
      last_link_key = link_key;
    }

    if (failures.random_rate < 0.0 || failures.random_rate >= 1.0) {
      fail("fault.rate must be in [0,1)");
    }
  }
}

std::string format_scenario(const ScenarioSpec& spec) {
  std::ostringstream out;
  if (spec.is_torus()) {
    const TorusTopology& t = spec.torus();
    out << "topology.kind=torus\n";
    out << "topology.k=" << t.k << "\n";
    out << "topology.n=" << t.n << "\n";
    out << "topology.bidirectional=" << (t.bidirectional ? "true" : "false") << "\n";
  } else if (spec.is_mesh()) {
    const MeshTopology& m = spec.mesh();
    out << "topology.kind=mesh\n";
    out << "topology.k=" << m.k << "\n";
    out << "topology.n=" << m.n << "\n";
  } else {
    out << "topology.kind=hypercube\n";
    out << "topology.dims=" << spec.hypercube().dims << "\n";
  }
  out << "traffic.kind=" << traffic_kind_name(spec.traffic) << "\n";
  if (spec.is_hotspot()) {
    const HotspotTraffic& t = spec.hotspot();
    out << "traffic.hot_fraction=" << fmt_double(t.fraction) << "\n";
    out << "traffic.hot_node=" << t.hot_node << "\n";
  }
  if (spec.is_mmpp()) {
    const MmppArrivals& m = spec.mmpp();
    out << "arrivals.kind=mmpp\n";
    out << "arrivals.burst_multiplier=" << fmt_double(m.burst_multiplier) << "\n";
    out << "arrivals.p_enter_burst=" << fmt_double(m.p_enter_burst) << "\n";
    out << "arrivals.p_leave_burst=" << fmt_double(m.p_leave_burst) << "\n";
  } else {
    out << "arrivals.kind=bernoulli\n";
  }
  out << "router.vcs=" << spec.vcs << "\n";
  out << "router.buffer_depth=" << spec.buffer_depth << "\n";
  out << "workload.message_length=" << spec.message_length << "\n";
  out << "measure.seed=" << spec.seed << "\n";
  out << "measure.warmup_cycles=" << spec.warmup_cycles << "\n";
  out << "measure.target_messages=" << spec.target_messages << "\n";
  out << "measure.max_cycles=" << spec.max_cycles << "\n";
  out << "model.blocking="
      << (spec.blocking == model::BlockingVariant::kPureWait ? "pure_wait" : "paper")
      << "\n";
  out << "model.busy_basis=" << basis_name(spec.busy_basis) << "\n";
  out << "model.vcmux_basis=" << basis_name(spec.vcmux_basis) << "\n";
  // Fault lines appear only for non-empty failure sets, and then always as
  // the full block of four: a pristine spec's canonical text (hence key(),
  // memo entries and replication seeds) is byte-identical to what it was
  // before faults existed, while any non-empty set is fully result-defining.
  if (!spec.failures.empty()) {
    out << "fault.routers=";
    for (std::size_t i = 0; i < spec.failures.routers.size(); ++i) {
      if (i) out << ',';
      out << spec.failures.routers[i];
    }
    out << "\n";
    out << "fault.links=" << format_failed_links(spec.failures.links) << "\n";
    out << "fault.rate=" << fmt_double(spec.failures.random_rate) << "\n";
    out << "fault.seed=" << spec.failures.random_seed << "\n";
  }
  // Execution knobs come last: key() drops `sim.`-prefixed lines wholesale,
  // so everything above is the result-defining prefix.
  out << "sim.threads=" << spec.sim_threads << "\n";
  return out.str();
}

void apply_scenario_setting(ScenarioSpec& spec, const std::string& key,
                            const std::string& value) {
  // --- variant selectors: switching kinds resets that variant to defaults
  // (re-selecting the active kind is a no-op so parameter order is free).
  if (key == "topology.kind") {
    if (value == "torus") {
      if (!spec.is_torus()) spec.topology = TorusTopology{};
    } else if (value == "hypercube") {
      if (!spec.is_hypercube()) spec.topology = HypercubeTopology{};
    } else if (value == "mesh") {
      if (!spec.is_mesh()) spec.topology = MeshTopology{};
    } else {
      fail(key + ": expected torus|hypercube|mesh, got '" + value + "'");
    }
    return;
  }
  if (key == "traffic.kind") {
    if (value == "hotspot") {
      if (!spec.is_hotspot()) spec.traffic = HotspotTraffic{};
    } else if (value == "uniform") {
      spec.traffic = UniformTraffic{};
    } else if (value == "transpose") {
      spec.traffic = TransposeTraffic{};
    } else if (value == "bit_complement") {
      spec.traffic = BitComplementTraffic{};
    } else if (value == "bit_reversal") {
      spec.traffic = BitReversalTraffic{};
    } else {
      fail(key +
           ": expected hotspot|uniform|transpose|bit_complement|bit_reversal, "
           "got '" +
           value + "'");
    }
    return;
  }
  if (key == "arrivals.kind") {
    if (value == "bernoulli") {
      spec.arrivals = BernoulliArrivals{};
    } else if (value == "mmpp") {
      if (!spec.is_mmpp()) spec.arrivals = MmppArrivals{};
    } else {
      fail(key + ": expected bernoulli|mmpp, got '" + value + "'");
    }
    return;
  }

  // --- variant parameters (require the matching kind to be active) ---
  if (key == "topology.k" || key == "topology.n") {
    // Shared by the two k^n families; the hypercube's size knob is
    // topology.dims.
    if (!spec.is_torus() && !spec.is_mesh()) {
      fail(key + " requires topology.kind=torus or mesh");
    }
    const int v = parse_int32(key, value);
    int& slot = key == "topology.k" ? (spec.is_torus() ? spec.torus().k : spec.mesh().k)
                                    : (spec.is_torus() ? spec.torus().n : spec.mesh().n);
    slot = v;
    return;
  }
  if (key == "topology.bidirectional") {
    if (!spec.is_torus()) fail(key + " requires topology.kind=torus");
    spec.torus().bidirectional = parse_bool(key, value);
    return;
  }
  if (key == "topology.dims") {
    if (!spec.is_hypercube()) fail(key + " requires topology.kind=hypercube");
    spec.hypercube().dims = parse_int32(key, value);
    return;
  }
  if (key == "traffic.hot_fraction" || key == "traffic.hot_node") {
    if (!spec.is_hotspot()) fail(key + " requires traffic.kind=hotspot");
    if (key == "traffic.hot_fraction") {
      spec.hotspot().fraction = parse_double(key, value);
    } else {
      spec.hotspot().hot_node = parse_int(key, value);
    }
    return;
  }
  if (key == "arrivals.burst_multiplier" || key == "arrivals.p_enter_burst" ||
      key == "arrivals.p_leave_burst") {
    if (!spec.is_mmpp()) fail(key + " requires arrivals.kind=mmpp");
    MmppArrivals& m = spec.mmpp();
    const double v = parse_double(key, value);
    if (key == "arrivals.burst_multiplier") {
      m.burst_multiplier = v;
    } else if (key == "arrivals.p_enter_burst") {
      m.p_enter_burst = v;
    } else {
      m.p_leave_burst = v;
    }
    return;
  }

  // --- flat knobs ---
  if (key == "router.vcs") {
    spec.vcs = parse_int32(key, value);
  } else if (key == "router.buffer_depth") {
    spec.buffer_depth = parse_int32(key, value);
  } else if (key == "workload.message_length") {
    spec.message_length = parse_int32(key, value);
  } else if (key == "measure.seed") {
    spec.seed = parse_uint(key, value);
  } else if (key == "measure.warmup_cycles") {
    spec.warmup_cycles = parse_uint(key, value);
  } else if (key == "measure.target_messages") {
    spec.target_messages = parse_uint(key, value);
  } else if (key == "measure.max_cycles") {
    spec.max_cycles = parse_uint(key, value);
  } else if (key == "model.blocking") {
    if (value == "paper") {
      spec.blocking = model::BlockingVariant::kPaper;
    } else if (value == "pure_wait") {
      spec.blocking = model::BlockingVariant::kPureWait;
    } else {
      fail(key + ": expected paper|pure_wait, got '" + value + "'");
    }
  } else if (key == "model.busy_basis") {
    spec.busy_basis = parse_basis(key, value);
  } else if (key == "model.vcmux_basis") {
    spec.vcmux_basis = parse_basis(key, value);
  } else if (key == "fault.routers") {
    spec.failures.routers.clear();
    for (const std::string& item : split_list(value)) {
      spec.failures.routers.push_back(parse_int(key, item));
    }
  } else if (key == "fault.links") {
    spec.failures.links.clear();
    for (const std::string& item : split_list(value)) {
      spec.failures.links.push_back(parse_failed_link(key, item));
    }
  } else if (key == "fault.rate") {
    spec.failures.random_rate = parse_double(key, value);
  } else if (key == "fault.seed") {
    spec.failures.random_seed = parse_uint(key, value);
  } else if (key == "sim.threads") {
    spec.sim_threads = parse_int32(key, value);
  } else {
    fail("unknown key '" + key + "'");
  }
}

ScenarioSpec parse_scenario(const std::string& text) {
  ScenarioSpec spec;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    const std::size_t eq = t.find('=');
    if (eq == std::string::npos) {
      fail("line " + std::to_string(line_no) + ": expected key=value, got '" + t +
           "'");
    }
    try {
      apply_scenario_setting(spec, trim(t.substr(0, eq)), trim(t.substr(eq + 1)));
    } catch (const std::invalid_argument& e) {
      // Re-anchor value errors to the offending line of the input text.
      throw std::invalid_argument("line " + std::to_string(line_no) + ": " +
                                  e.what());
    }
  }
  return spec;
}

std::uint64_t ScenarioSpec::key() const {
  // FNV-1a over the canonical text form: stable across processes and
  // sensitive to every result-affecting field (the text form is injective by
  // construction). `sim.`-prefixed execution lines are skipped: sim.threads
  // is bit-identical by contract, so cache entries, SweepEngine memo hits
  // and replication seeds must not depend on it.
  const std::string text = format_scenario(*this);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size() - 1;
    if (text.compare(pos, 4, "sim.") != 0) {
      for (std::size_t i = pos; i <= nl; ++i) {
        h ^= static_cast<unsigned char>(text[i]);
        h *= 0x100000001b3ULL;
      }
    }
    pos = nl + 1;
  }
  return h;
}

sim::SimConfig to_sim_config(const ScenarioSpec& spec, double lambda) {
  sim::SimConfig cfg;
  if (spec.is_torus()) {
    const TorusTopology& t = spec.torus();
    cfg.k = t.k;
    cfg.n = t.n;
    cfg.bidirectional = t.bidirectional;
  } else if (spec.is_mesh()) {
    const MeshTopology& m = spec.mesh();
    cfg.k = m.k;
    cfg.n = m.n;
    cfg.mesh = true;
  } else {
    cfg.k = 2;
    cfg.n = spec.hypercube().dims;
    cfg.bidirectional = false;
  }
  cfg.vcs = spec.vcs;
  cfg.buffer_depth = spec.buffer_depth;
  cfg.message_length = spec.message_length;
  cfg.injection_rate = lambda;

  struct TrafficVisitor {
    sim::SimConfig& cfg;
    void operator()(const HotspotTraffic& t) const {
      cfg.pattern = sim::Pattern::kHotspot;
      cfg.hot_fraction = t.fraction;
      cfg.hot_node = t.hot_node;
    }
    void operator()(const UniformTraffic&) const {
      cfg.pattern = sim::Pattern::kUniform;
    }
    void operator()(const TransposeTraffic&) const {
      cfg.pattern = sim::Pattern::kTranspose;
    }
    void operator()(const BitComplementTraffic&) const {
      cfg.pattern = sim::Pattern::kBitComplement;
    }
    void operator()(const BitReversalTraffic&) const {
      cfg.pattern = sim::Pattern::kBitReversal;
    }
  };
  std::visit(TrafficVisitor{cfg}, spec.traffic);

  if (spec.is_mmpp()) {
    const MmppArrivals& m = spec.mmpp();
    cfg.arrivals = sim::Arrivals::kMmpp;
    cfg.mmpp.burst_rate_multiplier = m.burst_multiplier;
    cfg.mmpp.p_enter_burst = m.p_enter_burst;
    cfg.mmpp.p_leave_burst = m.p_leave_burst;
  } else {
    cfg.arrivals = sim::Arrivals::kBernoulli;
  }

  cfg.failed_routers = spec.failures.routers;
  cfg.failed_links = spec.failures.links;
  cfg.failure_rate = spec.failures.random_rate;
  cfg.failure_seed = spec.failures.random_seed;

  cfg.seed = spec.seed;
  cfg.warmup_cycles = spec.warmup_cycles;
  cfg.target_messages = spec.target_messages;
  cfg.max_cycles = spec.max_cycles;
  cfg.sim_threads = spec.sim_threads;
  return cfg;
}

}  // namespace kncube::core
