#include "core/result_store.hpp"

#include <sstream>

namespace kncube::core {

std::string format_cache_stats(const CacheStats& s) {
  std::ostringstream os;
  os << "model_entries=" << s.model_entries << " sim_entries=" << s.sim_entries
     << " saturation_entries=" << s.saturation_entries
     << " model_hits=" << s.model_hits << " sim_hits=" << s.sim_hits
     << " saturation_hits=" << s.saturation_hits
     << " model_solves=" << s.model_solves << " sim_runs=" << s.sim_runs
     << " inflight_waits=" << s.inflight_waits;
  return os.str();
}

bool MemoryResultStore::load_model(std::uint64_t spec_key,
                                   std::uint64_t lambda_bits, ModelEntry* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = model_.find({spec_key, lambda_bits});
  if (it == model_.end()) return false;
  *out = it->second;
  return true;
}

void MemoryResultStore::store_model(std::uint64_t spec_key,
                                    std::uint64_t lambda_bits,
                                    const ModelEntry& entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  model_.emplace(std::make_pair(spec_key, lambda_bits), entry);
}

bool MemoryResultStore::warm_state_at_or_below(std::uint64_t spec_key,
                                               std::uint64_t lambda_bits,
                                               std::vector<double>* state) {
  std::lock_guard<std::mutex> lock(mutex_);
  // First entry of this spec strictly above lambda_bits, then walk down
  // through the spec's ascending-lambda range for a stable (non-empty
  // state) predecessor.
  auto it = model_.upper_bound({spec_key, lambda_bits});
  while (it != model_.begin()) {
    --it;
    if (it->first.first != spec_key) return false;
    if (!it->second.state.empty()) {
      *state = it->second.state;
      return true;
    }
  }
  return false;
}

bool MemoryResultStore::load_sim(std::uint64_t spec_key,
                                 std::uint64_t lambda_bits, std::uint64_t seed,
                                 sim::SimResult* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sim_.find({spec_key, lambda_bits, seed});
  if (it == sim_.end()) return false;
  *out = it->second;
  return true;
}

void MemoryResultStore::store_sim(std::uint64_t spec_key,
                                  std::uint64_t lambda_bits, std::uint64_t seed,
                                  const sim::SimResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  sim_.emplace(std::make_tuple(spec_key, lambda_bits, seed), result);
}

bool MemoryResultStore::load_saturation(std::uint64_t spec_key,
                                        std::uint64_t tol_bits,
                                        SaturationResult* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = saturation_.find({spec_key, tol_bits});
  if (it == saturation_.end()) return false;
  *out = it->second;
  return true;
}

void MemoryResultStore::store_saturation(std::uint64_t spec_key,
                                         std::uint64_t tol_bits,
                                         const SaturationResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  saturation_.emplace(std::make_pair(spec_key, tol_bits), result);
}

StoreSizes MemoryResultStore::sizes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {model_.size(), sim_.size(), saturation_.size()};
}

void MemoryResultStore::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  model_.clear();
  sim_.clear();
  saturation_.clear();
}

}  // namespace kncube::core
