// kncube — umbrella public header.
//
// Reproduction of Loucif, Ould-Khaoua & Min, "Analytical Modelling of
// Hot-Spot Traffic in Deterministically-Routed K-Ary N-Cubes" (IPDPS 2005).
//
// Layers, bottom-up:
//   * topology/  — k-ary n-cube addressing, deterministic routing, hot-spot
//                  channel geometry;
//   * sim/       — flit-level wormhole simulator with virtual channels
//                  (the paper's validation substrate);
//   * model/     — the hot-spot analytical model (the contribution), the
//                  uniform-traffic baseline and the queueing primitives;
//   * core/      — experiment harness tying model and simulator together.
//
// Quick start (see examples/quickstart.cpp):
//
//   kncube::core::Scenario s;           // 16x16 torus, Lm=32, h=20%, V=2
//   auto pts = kncube::core::run_series(s, kncube::core::lambda_sweep(s, 8));
//   std::cout << kncube::core::figure_table("demo", pts).to_string();
#pragma once

#include "core/experiment.hpp"   // IWYU pragma: export
#include "core/report.hpp"       // IWYU pragma: export
#include "core/saturation.hpp"   // IWYU pragma: export
#include "core/sweep_engine.hpp" // IWYU pragma: export
#include "model/hotspot_model.hpp"  // IWYU pragma: export
#include "model/hypercube_model.hpp"  // IWYU pragma: export
#include "model/uniform_model.hpp"  // IWYU pragma: export
#include "sim/simulator.hpp"     // IWYU pragma: export
#include "topology/hotspot_geometry.hpp"  // IWYU pragma: export
#include "topology/torus.hpp"    // IWYU pragma: export
