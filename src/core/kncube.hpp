// kncube — umbrella public header.
//
// Reproduction of Loucif, Ould-Khaoua & Min, "Analytical Modelling of
// Hot-Spot Traffic in Deterministically-Routed K-Ary N-Cubes" (IPDPS 2005).
//
// Layers, bottom-up:
//   * topology/  — k-ary n-cube addressing, deterministic routing, hot-spot
//                  channel geometry;
//   * sim/       — flit-level wormhole simulator with virtual channels
//                  (the paper's validation substrate);
//   * model/     — the analytical models behind one polymorphic
//                  model::AnalyticalModel interface: the hot-spot torus
//                  model (the contribution), the uniform-traffic baseline,
//                  the hypercube lineage model, the k-ary n-mesh model
//                  (position-dependent channel classes), and the shared queueing
//                  primitives;
//   * core/      — the public facade. core::ScenarioSpec is the one typed
//                  scenario language (topology × traffic × arrivals plus
//                  router/measurement/ablation knobs); the model registry
//                  dispatches a spec to its analytical model (or reports it
//                  sim-only), and core::SweepEngine evaluates operating
//                  points for any valid spec with memoization, warm-started
//                  continuation, parallel sweeps and saturation bisection;
//   * validate/  — the statistical validation subsystem: ReplicationRunner
//                  (R-replication Student-t confidence intervals per
//                  operating point) and ValidationEngine (model-vs-sim
//                  accuracy classification over the spec space, rendered as
//                  the committed ACCURACY.json baseline by tools/validate).
//
// Quick start (see examples/quickstart.cpp):
//
//   kncube::core::ScenarioSpec s;       // 16x16 torus, Lm=32, h=20%, V=2
//   auto pts = kncube::core::run_series(s, kncube::core::lambda_sweep(s, 8));
//   std::cout << kncube::core::figure_table("demo", pts).to_string();
//
// Specs are text round-trippable — `parse_scenario` / `format_scenario`
// read and write a canonical `key=value` form (e.g. `topology.kind=torus`,
// `traffic.hot_fraction=0.2`), and `examples/kncube_run` drives any spec
// file from the command line. The pre-v2 flat core::Scenario remains as a
// deprecated shim for one release (core/experiment.hpp).
#pragma once

#include "core/experiment.hpp"   // IWYU pragma: export
#include "core/model_registry.hpp"  // IWYU pragma: export
#include "core/report.hpp"       // IWYU pragma: export
#include "core/saturation.hpp"   // IWYU pragma: export
#include "core/scenario_spec.hpp"  // IWYU pragma: export
#include "core/sweep_engine.hpp" // IWYU pragma: export
#include "model/analytical_model.hpp"  // IWYU pragma: export
#include "model/hotspot_model.hpp"  // IWYU pragma: export
#include "model/hypercube_model.hpp"  // IWYU pragma: export
#include "model/mesh_model.hpp"  // IWYU pragma: export
#include "model/uniform_model.hpp"  // IWYU pragma: export
#include "sim/simulator.hpp"     // IWYU pragma: export
#include "topology/hotspot_geometry.hpp"  // IWYU pragma: export
#include "topology/mesh_geometry.hpp"  // IWYU pragma: export
#include "topology/torus.hpp"    // IWYU pragma: export
#include "validate/accuracy_json.hpp"  // IWYU pragma: export
#include "validate/replication.hpp"  // IWYU pragma: export
#include "validate/validation_engine.hpp"  // IWYU pragma: export
