#include "core/experiment.hpp"

#include <cmath>
#include <limits>

#include "core/saturation.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace kncube::core {

model::ModelConfig to_model_config(const Scenario& s, double lambda) {
  model::ModelConfig cfg;
  cfg.k = s.k;
  cfg.vcs = s.vcs;
  cfg.message_length = s.message_length;
  cfg.injection_rate = lambda;
  cfg.hot_fraction = s.hot_fraction;
  cfg.blocking = s.blocking;
  return cfg;
}

sim::SimConfig to_sim_config(const Scenario& s, double lambda) {
  sim::SimConfig cfg;
  cfg.k = s.k;
  cfg.n = 2;  // the paper's analysis and validation are 2-D
  cfg.bidirectional = false;
  cfg.vcs = s.vcs;
  cfg.buffer_depth = s.buffer_depth;
  cfg.message_length = s.message_length;
  cfg.injection_rate = lambda;
  cfg.pattern = sim::Pattern::kHotspot;
  cfg.hot_fraction = s.hot_fraction;
  cfg.seed = s.seed;
  cfg.warmup_cycles = s.warmup_cycles;
  cfg.target_messages = s.target_messages;
  cfg.max_cycles = s.max_cycles;
  return cfg;
}

double PointResult::relative_error() const {
  if (!has_sim || model.saturated || sim.mean_latency <= 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return std::abs(model.latency - sim.mean_latency) / sim.mean_latency;
}

std::vector<PointResult> run_series(const Scenario& scenario,
                                    const std::vector<double>& lambdas,
                                    bool run_sim) {
  std::vector<PointResult> results(lambdas.size());
  util::parallel_for(lambdas.size(), [&](std::size_t i) {
    PointResult& pt = results[i];
    pt.lambda = lambdas[i];
    pt.model = model::HotspotModel(to_model_config(scenario, pt.lambda)).solve();
    if (run_sim) {
      sim::SimConfig sc = to_sim_config(scenario, pt.lambda);
      // Decorrelate seeds across points while keeping the series reproducible.
      sc.seed = scenario.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
      pt.sim = sim::simulate(sc);
      pt.has_sim = true;
    }
  });
  return results;
}

std::vector<double> lambda_sweep(const Scenario& scenario, int points, double lo_frac,
                                 double hi_frac) {
  KNC_ASSERT(points >= 2 && lo_frac > 0.0 && hi_frac > lo_frac);
  const double sat = model_saturation_rate(scenario).rate;
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double f =
        lo_frac + (hi_frac - lo_frac) * static_cast<double>(i) /
                      static_cast<double>(points - 1);
    out.push_back(f * sat);
  }
  return out;
}

}  // namespace kncube::core
