#include "core/experiment.hpp"

#include <cmath>
#include <limits>

#include "core/saturation.hpp"
#include "core/sweep_engine.hpp"
#include "util/assert.hpp"

namespace kncube::core {

ScenarioSpec to_spec(const Scenario& s) {
  ScenarioSpec spec;
  spec.topology = TorusTopology{s.k, 2, false};
  spec.traffic = HotspotTraffic{s.hot_fraction, -1};
  spec.arrivals = BernoulliArrivals{};
  spec.vcs = s.vcs;
  spec.buffer_depth = s.buffer_depth;
  spec.message_length = s.message_length;
  spec.seed = s.seed;
  spec.warmup_cycles = s.warmup_cycles;
  spec.target_messages = s.target_messages;
  spec.max_cycles = s.max_cycles;
  spec.blocking = s.blocking;
  spec.busy_basis = s.busy_basis;
  spec.vcmux_basis = s.vcmux_basis;
  return spec;
}

model::ModelConfig to_model_config(const Scenario& s, double lambda) {
  model::ModelConfig cfg;
  cfg.k = s.k;
  cfg.vcs = s.vcs;
  cfg.message_length = s.message_length;
  cfg.injection_rate = lambda;
  cfg.hot_fraction = s.hot_fraction;
  cfg.blocking = s.blocking;
  cfg.busy_basis = s.busy_basis;
  cfg.vcmux_basis = s.vcmux_basis;
  return cfg;
}

sim::SimConfig to_sim_config(const Scenario& s, double lambda) {
  return to_sim_config(to_spec(s), lambda);
}

double PointResult::relative_error() const {
  // NaN — never inf or a garbage ratio — whenever either side has no usable
  // finite latency: missing sim, saturated model, a non-finite model latency
  // that slipped past the saturation flag, or an empty/saturated sim whose
  // mean is zero or non-finite.
  if (!has_model || !has_sim || model.saturated || !std::isfinite(model.latency) ||
      !std::isfinite(sim.mean_latency) || sim.mean_latency <= 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return std::abs(model.latency - sim.mean_latency) / sim.mean_latency;
}

std::vector<PointResult> run_series(const ScenarioSpec& spec,
                                    const std::vector<double>& lambdas,
                                    bool run_sim) {
  SweepEngine engine(spec);
  return engine.run(lambdas, run_sim);
}

std::vector<PointResult> run_series(const Scenario& scenario,
                                    const std::vector<double>& lambdas,
                                    bool run_sim) {
  return run_series(to_spec(scenario), lambdas, run_sim);
}

std::vector<double> lambda_sweep(const ScenarioSpec& spec, int points,
                                 double lo_frac, double hi_frac) {
  SweepEngine engine(spec);
  return engine.lambda_sweep(points, lo_frac, hi_frac);
}

std::vector<double> lambda_sweep(const Scenario& scenario, int points,
                                 double lo_frac, double hi_frac) {
  return lambda_sweep(to_spec(scenario), points, lo_frac, hi_frac);
}

}  // namespace kncube::core
