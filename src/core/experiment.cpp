#include "core/experiment.hpp"

#include <cmath>
#include <limits>

#include "core/saturation.hpp"
#include "core/sweep_engine.hpp"
#include "util/assert.hpp"

namespace kncube::core {

model::ModelConfig to_model_config(const Scenario& s, double lambda) {
  model::ModelConfig cfg;
  cfg.k = s.k;
  cfg.vcs = s.vcs;
  cfg.message_length = s.message_length;
  cfg.injection_rate = lambda;
  cfg.hot_fraction = s.hot_fraction;
  cfg.blocking = s.blocking;
  cfg.busy_basis = s.busy_basis;
  cfg.vcmux_basis = s.vcmux_basis;
  return cfg;
}

sim::SimConfig to_sim_config(const Scenario& s, double lambda) {
  sim::SimConfig cfg;
  cfg.k = s.k;
  cfg.n = 2;  // the paper's analysis and validation are 2-D
  cfg.bidirectional = false;
  cfg.vcs = s.vcs;
  cfg.buffer_depth = s.buffer_depth;
  cfg.message_length = s.message_length;
  cfg.injection_rate = lambda;
  cfg.pattern = sim::Pattern::kHotspot;
  cfg.hot_fraction = s.hot_fraction;
  cfg.seed = s.seed;
  cfg.warmup_cycles = s.warmup_cycles;
  cfg.target_messages = s.target_messages;
  cfg.max_cycles = s.max_cycles;
  return cfg;
}

double PointResult::relative_error() const {
  // NaN — never inf or a garbage ratio — whenever either side has no usable
  // finite latency: missing sim, saturated model, a non-finite model latency
  // that slipped past the saturation flag, or an empty/saturated sim whose
  // mean is zero or non-finite.
  if (!has_sim || model.saturated || !std::isfinite(model.latency) ||
      !std::isfinite(sim.mean_latency) || sim.mean_latency <= 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return std::abs(model.latency - sim.mean_latency) / sim.mean_latency;
}

std::vector<PointResult> run_series(const Scenario& scenario,
                                    const std::vector<double>& lambdas,
                                    bool run_sim) {
  SweepEngine engine(scenario);
  return engine.run(lambdas, run_sim);
}

std::vector<double> lambda_sweep(const Scenario& scenario, int points, double lo_frac,
                                 double hi_frac) {
  SweepEngine engine(scenario);
  return engine.lambda_sweep(points, lo_frac, hi_frac);
}

}  // namespace kncube::core
