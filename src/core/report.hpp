// Rendering of model-vs-simulation series as the tables behind the paper's
// figures, plus CSV export for replotting.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/table.hpp"

namespace kncube::core {

/// One figure panel (e.g. "Figure 1, h=20%"): latency-vs-rate for model and
/// simulation, with CI and relative error columns.
util::Table figure_table(const std::string& title, const std::vector<PointResult>& pts);

/// Summary across a whole panel: mean relative error in the stable region,
/// correlation of the two curves, and both saturation estimates.
struct PanelSummary {
  double mean_rel_error = 0.0;     ///< over points where both sides are stable
  double correlation = 0.0;        ///< Pearson r of model vs sim latency
  int stable_points = 0;
  int model_saturated_points = 0;
  int sim_saturated_points = 0;
};
PanelSummary summarize_panel(const std::vector<PointResult>& pts);

util::Table summary_table(const std::string& title,
                          const std::vector<std::pair<std::string, PanelSummary>>& rows);

/// Writes `table` to CSV under the directory given by KNCUBE_OUT (if set).
/// Returns the written path, or empty when export is disabled/fails.
std::string export_csv(const util::Table& table, const std::string& basename);

}  // namespace kncube::core
