// ScenarioSpec v2: the one typed scenario language of the library.
//
// A ScenarioSpec is a self-describing value covering the whole
// (topology × traffic × arrivals) space the code implements — the hot-spot
// 2-D torus the paper analyses, the uniform/hypercube baselines it validates
// against, the k-ary n-mesh (wrap-around links removed; position-dependent
// channel load), and the simulator-only extensions (permutation patterns,
// MMPP bursts, bidirectional links, n ≠ 2). Every workload flows through this
// type into the core facade: `SweepEngine`, `run_series`,
// `model_saturation_rate` and `to_sim_config` all accept a spec, and the
// model registry (core/model_registry.hpp) dispatches it to the matching
// analytical model — or reports "sim-only" when no analytical counterpart
// exists.
//
// Specs are file- and CLI-drivable: `format_scenario` emits a canonical
// `key=value` text form, `parse_scenario` reads it back field-for-field, and
// `apply_scenario_setting` applies one `--set topology.k=32`-style override.
// `key()` is a canonical 64-bit hash of the spec (stable across processes)
// for caching and memoization keyed on whole scenarios.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "model/engine/channel_class.hpp"  // BlockingVariant, ServiceBasis
#include "sim/config.hpp"
#include "topology/fault_set.hpp"  // topo::FailedLink

namespace kncube::core {

// --------------------------------------------------------------- topology ---

/// K-ary n-cube torus (the paper's substrate: n = 2, unidirectional).
struct TorusTopology {
  int k = 16;                  ///< radix
  int n = 2;                   ///< dimensions (<= topo::kMaxDims)
  bool bidirectional = false;  ///< paper analyses the unidirectional torus
};

/// Binary hypercube with 2^dims nodes (the k = 2 n-cube; paper ref. [12]).
struct HypercubeTopology {
  int dims = 6;
};

/// K-ary n-mesh: the torus with its wrap-around links removed. Links are
/// inherently bidirectional (a unidirectional line is disconnected) and
/// dimension-order routing is acyclic, so any V >= 1 is deadlock-free.
struct MeshTopology {
  int k = 8;  ///< radix
  int n = 2;  ///< dimensions (<= topo::kMaxDims)
};

using Topology = std::variant<TorusTopology, HypercubeTopology, MeshTopology>;

// ---------------------------------------------------------------- traffic ---

/// Pfister–Norton hot-spot traffic (the paper's assumption ii).
struct HotspotTraffic {
  double fraction = 0.2;       ///< h
  std::int64_t hot_node = -1;  ///< -1 picks the centre node (k/2, k/2, ...)
};

struct UniformTraffic {};
struct TransposeTraffic {};      ///< (x, y) -> (y, x); 2-D torus only
struct BitComplementTraffic {};  ///< dest id = N-1 - src id
struct BitReversalTraffic {};    ///< reverse node-index bits (N power of two)

using Traffic = std::variant<HotspotTraffic, UniformTraffic, TransposeTraffic,
                             BitComplementTraffic, BitReversalTraffic>;

// --------------------------------------------------------------- arrivals ---

/// Bernoulli(rate) per cycle: the discrete-time Poisson approximation the
/// analytical models assume.
struct BernoulliArrivals {};

/// Two-state modulated Bernoulli — the §5 bursty extension (sim-only).
struct MmppArrivals {
  double burst_multiplier = 4.0;  ///< rate in burst state = mult * mean rate
  double p_enter_burst = 0.0005;  ///< idle -> burst transition prob per cycle
  double p_leave_burst = 0.002;   ///< burst -> idle transition prob per cycle
};

using Arrivals = std::variant<BernoulliArrivals, MmppArrivals>;

// ---------------------------------------------------------------- failures ---

/// Degraded-operation description: explicitly failed routers and directed
/// links plus a seed-derived random router-failure mode. The empty set is
/// the pristine network; pristine specs emit no `fault.*` lines, so every
/// pre-existing canonical text, key() and replication seed is unchanged.
/// Non-empty sets participate fully in the canonical text and key() —
/// memoization and the accuracy/reliability baselines see distinct faulty
/// scenarios as distinct. `random_seed` affects results only when the set is
/// non-empty (a pristine spec drops it from the text form entirely).
struct FailureSet {
  /// Failed router ids, strictly ascending (validate() enforces the
  /// canonical order; it also rules out duplicates).
  std::vector<std::int64_t> routers;
  /// Failed directed links, strictly ascending by (node, dim, dir).
  std::vector<topo::FailedLink> links;
  /// Random mode: fail round(rate * N) additional routers drawn from
  /// `random_seed` (hot-spot node protected). Must stay in [0, 1).
  double random_rate = 0.0;
  std::uint64_t random_seed = 1;

  bool empty() const noexcept {
    return routers.empty() && links.empty() && random_rate == 0.0;
  }
};

// ------------------------------------------------------------------- spec ---

struct ScenarioSpec {
  Topology topology = TorusTopology{};
  Traffic traffic = HotspotTraffic{};
  Arrivals arrivals = BernoulliArrivals{};
  FailureSet failures{};  ///< empty = pristine network

  // --- router ---
  int vcs = 2;           ///< V virtual channels per physical channel
  int buffer_depth = 2;  ///< simulator only (the model abstracts buffers away)

  // --- workload ---
  int message_length = 32;  ///< Lm flits

  // --- measurement (simulator side) ---
  std::uint64_t seed = 0xC0FFEE;
  std::uint64_t warmup_cycles = 20000;
  std::uint64_t target_messages = 2500;
  std::uint64_t max_cycles = 3'000'000;

  // --- model-approximation knobs (forwarded to the analytical models) ---
  model::BlockingVariant blocking = model::BlockingVariant::kPaper;
  model::ServiceBasis busy_basis = model::ServiceBasis::kTransmission;
  model::ServiceBasis vcmux_basis = model::ServiceBasis::kTransmission;

  // --- execution (simulator side; never affects results) ---
  /// Router shards for Network::step: 0 = hardware concurrency, 1 = serial,
  /// N > 1 = N shards. Results are bit-identical for every value, so this
  /// knob is excluded from key() — same scenario, same cache entry and
  /// replication seeds, regardless of how it is executed.
  int sim_threads = 1;

  /// Throws std::invalid_argument when the combination is inconsistent
  /// (e.g. transpose off a 2-D torus, MMPP probabilities outside (0,1],
  /// hot node outside the network).
  void validate() const;

  /// Canonical 64-bit hash over every result-affecting field (FNV-1a of the
  /// canonical text form with `sim.*` execution lines skipped), stable
  /// across processes — the cache key for whole scenarios.
  std::uint64_t key() const;

  /// Node count N of the configured topology.
  std::uint64_t node_count() const noexcept;

  // Checked variant accessors, for call sites that know (or require) the
  // active alternative — `spec.torus().k = 32` reads better than get<>.
  // Each throws std::bad_variant_access on a mismatch.
  TorusTopology& torus() { return std::get<TorusTopology>(topology); }
  const TorusTopology& torus() const { return std::get<TorusTopology>(topology); }
  HypercubeTopology& hypercube() { return std::get<HypercubeTopology>(topology); }
  const HypercubeTopology& hypercube() const {
    return std::get<HypercubeTopology>(topology);
  }
  MeshTopology& mesh() { return std::get<MeshTopology>(topology); }
  const MeshTopology& mesh() const { return std::get<MeshTopology>(topology); }
  HotspotTraffic& hotspot() { return std::get<HotspotTraffic>(traffic); }
  const HotspotTraffic& hotspot() const { return std::get<HotspotTraffic>(traffic); }
  MmppArrivals& mmpp() { return std::get<MmppArrivals>(arrivals); }
  const MmppArrivals& mmpp() const { return std::get<MmppArrivals>(arrivals); }

  bool is_torus() const noexcept {
    return std::holds_alternative<TorusTopology>(topology);
  }
  bool is_hypercube() const noexcept {
    return std::holds_alternative<HypercubeTopology>(topology);
  }
  bool is_mesh() const noexcept {
    return std::holds_alternative<MeshTopology>(topology);
  }
  bool is_hotspot() const noexcept {
    return std::holds_alternative<HotspotTraffic>(traffic);
  }
  bool is_mmpp() const noexcept {
    return std::holds_alternative<MmppArrivals>(arrivals);
  }
};

/// Canonical text form: one `key=value` per line, dotted keys
/// (`topology.k=16`), doubles printed round-trip exact. The variant `*.kind`
/// line always precedes the variant's parameters.
std::string format_scenario(const ScenarioSpec& spec);

/// Parses the `key=value` text form (any order within a variant, `#`
/// comments and blank lines ignored; a `*.kind` line must precede that
/// variant's parameters). Unknown keys and malformed values throw
/// std::invalid_argument. `parse_scenario(format_scenario(s))` round-trips
/// every field.
ScenarioSpec parse_scenario(const std::string& text);

/// Applies one `key=value` override (the `--set` CLI form) to `spec`.
/// Setting `topology.kind` / `traffic.kind` / `arrivals.kind` switches the
/// variant (resetting it to that alternative's defaults); setting a
/// parameter of an inactive alternative throws std::invalid_argument.
void apply_scenario_setting(ScenarioSpec& spec, const std::string& key,
                            const std::string& value);

/// Simulator configuration for `spec` at injection rate `lambda` —
/// topology, pattern, arrivals and measurement knobs all forwarded, so the
/// simulator and the analytical side always agree on parameters.
sim::SimConfig to_sim_config(const ScenarioSpec& spec, double lambda);

}  // namespace kncube::core
