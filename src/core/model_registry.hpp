// Model registry: ScenarioSpec -> AnalyticalModel dispatch.
//
// Maps each (topology, traffic, arrivals) combination to the analytical
// model family that covers it, or reports "sim-only" with a reason when no
// analytical counterpart exists. This is the single place that knows which
// corner of the scenario space each model family covers:
//
//   torus n=2 uni  × hotspot  × bernoulli  -> hotspot-torus   (the paper)
//   torus n=2 uni  × uniform  × bernoulli  -> uniform-torus   (baseline)
//   hypercube      × hotspot  × bernoulli  -> hotspot-hypercube (ref. [12])
//   hypercube      × uniform  × bernoulli  -> hotspot-hypercube with h = 0
//   mesh (any n)   × uniform  × bernoulli  -> uniform-mesh    (per-position
//                                             channel classes, DESIGN.md §8)
//   anything else (mesh hot-spot — per-channel load with no class
//   reduction; permutation patterns, MMPP arrivals, bidirectional links,
//   n ≠ 2 tori)                            -> sim-only
//
// A family that cannot represent a requested model-ablation knob (the
// uniform-torus model has no blocking/basis variants; the hypercube model
// has no blocking-form variant) also reports sim-only rather than silently
// running the default approximation under an ablation's name.
//
// SweepEngine holds the dispatched model and solves every operating point
// through it, so memoization, warm-started continuation and saturation
// bisection work identically for all families.
#pragma once

#include <memory>
#include <string>

#include "core/scenario_spec.hpp"
#include "model/analytical_model.hpp"

namespace kncube::core {

struct ModelDispatch {
  /// The matching analytical model, or nullptr when the spec is sim-only.
  std::unique_ptr<model::AnalyticalModel> model;
  /// Why no analytical model applies (empty when `model` is set).
  std::string sim_only_reason;

  bool has_model() const noexcept { return model != nullptr; }
};

/// Dispatches a validated spec to its analytical model family. Throws
/// std::invalid_argument when the spec itself is invalid.
ModelDispatch make_analytical_model(const ScenarioSpec& spec);

}  // namespace kncube::core
