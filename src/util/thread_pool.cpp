#include "util/thread_pool.hpp"

#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

namespace kncube::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    threads = hc ? hc : 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  // Small counts: run inline, no synchronisation overhead.
  if (count == 1 || workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  // Shared state is heap-owned: queued drain tasks can outlive this call (a
  // busy worker may pop one after every iteration has already been claimed),
  // so they must not reference the caller's stack.
  struct Shared {
    std::function<void(std::size_t)> body;
    std::size_t count;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::exception_ptr error;
    std::mutex error_mutex;
    std::mutex done_mutex;
    std::condition_variable done_cv;
  };
  auto shared = std::make_shared<Shared>();
  shared->body = body;
  shared->count = count;

  auto drain = [shared] {
    for (;;) {
      const std::size_t i = shared->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= shared->count) break;
      try {
        shared->body(i);
      } catch (...) {
        std::lock_guard lock(shared->error_mutex);
        if (!shared->error) shared->error = std::current_exception();
      }
      if (shared->done.fetch_add(1, std::memory_order_acq_rel) + 1 == shared->count) {
        std::lock_guard lock(shared->done_mutex);
        shared->done_cv.notify_all();
      }
    }
  };

  // One queue entry per worker; each entry drains iterations dynamically.
  {
    std::lock_guard lock(mutex_);
    for (std::size_t w = 0; w < workers_.size(); ++w) queue_.emplace_back(drain);
  }
  cv_.notify_all();
  drain();  // caller participates

  {
    std::unique_lock lock(shared->done_mutex);
    shared->done_cv.wait(lock, [&shared] {
      return shared->done.load(std::memory_order_acquire) >= shared->count;
    });
  }
  if (shared->error) std::rethrow_exception(shared->error);
}

ThreadPool& global_pool() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("KNCUBE_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{0};
  }());
  return pool;
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body) {
  global_pool().parallel_for(count, body);
}

}  // namespace kncube::util
