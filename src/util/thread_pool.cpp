#include "util/thread_pool.hpp"

#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

namespace kncube::util {

void spin_backoff(unsigned& spins) noexcept {
  if (++spins <= 64) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
    return;
  }
  std::this_thread::yield();
}

void SpinBarrier::arrive_and_wait() noexcept {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    // Reset before the generation bump releases the waiters: a fast party
    // re-arriving for the next use must start the count from zero. No party
    // can complete that next use early — it would need all `parties_`
    // arrivals, and at least one is still leaving this one.
    arrived_.store(0, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
    return;
  }
  unsigned spins = 0;
  while (generation_.load(std::memory_order_acquire) == gen) spin_backoff(spins);
}

ThreadTeam::ThreadTeam(std::size_t members) : members_(members ? members : 1) {
  threads_.reserve(members_ - 1);
  for (std::size_t m = 1; m < members_; ++m) {
    threads_.emplace_back([this, m] { worker_loop(m); });
  }
}

ThreadTeam::~ThreadTeam() {
  {
    std::lock_guard lock(mutex_);
    stop_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadTeam::worker_loop(std::size_t member) {
  // Spin-yield this many waits before sleeping on the condition variable:
  // cheap enough to stay hot between per-cycle runs, bounded so an idle team
  // releases its cores within a fraction of a millisecond.
  constexpr unsigned kWakeSpins = 512;
  std::uint64_t seen = 0;
  for (;;) {
    unsigned spins = 0;
    while (epoch_.load(std::memory_order_acquire) == seen) {
      if (stop_.load(std::memory_order_acquire)) return;
      if (spins < kWakeSpins) {
        spin_backoff(spins);
        continue;
      }
      std::unique_lock lock(mutex_);
      ++sleepers_;
      cv_.wait(lock, [&] {
        return epoch_.load(std::memory_order_acquire) != seen ||
               stop_.load(std::memory_order_acquire);
      });
      --sleepers_;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    ++seen;
    (*fn_)(member);
    done_.fetch_add(1, std::memory_order_release);
  }
}

void ThreadTeam::run(const std::function<void(std::size_t)>& fn) {
  if (members_ == 1) {
    fn(0);
    return;
  }
  fn_ = &fn;
  done_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  bool need_notify;
  {
    // sleepers_ changes only under the mutex, so either a sleeper registered
    // before we took the lock (we notify it) or it will re-check the epoch
    // predicate under the lock after we release it and skip sleeping.
    std::lock_guard lock(mutex_);
    need_notify = sleepers_ != 0;
  }
  if (need_notify) cv_.notify_all();
  fn(0);
  unsigned spins = 0;
  while (done_.load(std::memory_order_acquire) != members_ - 1) spin_backoff(spins);
  fn_ = nullptr;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    threads = hc ? hc : 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  // Small counts: run inline, no synchronisation overhead.
  if (count == 1 || workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  // Shared state is heap-owned: queued drain tasks can outlive this call (a
  // busy worker may pop one after every iteration has already been claimed),
  // so they must not reference the caller's stack.
  struct Shared {
    std::function<void(std::size_t)> body;
    std::size_t count;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::exception_ptr error;
    std::mutex error_mutex;
    std::mutex done_mutex;
    std::condition_variable done_cv;
  };
  auto shared = std::make_shared<Shared>();
  shared->body = body;
  shared->count = count;

  auto drain = [shared] {
    for (;;) {
      const std::size_t i = shared->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= shared->count) break;
      try {
        shared->body(i);
      } catch (...) {
        std::lock_guard lock(shared->error_mutex);
        if (!shared->error) shared->error = std::current_exception();
      }
      if (shared->done.fetch_add(1, std::memory_order_acq_rel) + 1 == shared->count) {
        std::lock_guard lock(shared->done_mutex);
        shared->done_cv.notify_all();
      }
    }
  };

  // One queue entry per worker; each entry drains iterations dynamically.
  {
    std::lock_guard lock(mutex_);
    for (std::size_t w = 0; w < workers_.size(); ++w) queue_.emplace_back(drain);
  }
  cv_.notify_all();
  drain();  // caller participates

  {
    std::unique_lock lock(shared->done_mutex);
    shared->done_cv.wait(lock, [&shared] {
      return shared->done.load(std::memory_order_acquire) >= shared->count;
    });
  }
  if (shared->error) std::rethrow_exception(shared->error);
}

ThreadPool& global_pool() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("KNCUBE_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{0};
  }());
  return pool;
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body) {
  global_pool().parallel_for(count, body);
}

}  // namespace kncube::util
