// Work-stealing-free, fixed-size thread pool with a parallel_for front end.
//
// The experiment harness runs many independent (λ, h, Lm) simulation points;
// each point is single-threaded (a cycle-accurate simulator is inherently
// sequential across cycles) so we parallelise across points. Dynamic
// chunk-of-one scheduling keeps long near-saturation points from straggling
// behind short low-load points.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kncube::util {

/// One bounded spin-then-yield step of a busy-wait loop; call with a counter
/// starting at 0. The first iterations issue cheap pause hints (good when the
/// awaited thread runs on another core); after that the waiter yields its
/// timeslice so single-core machines make progress instead of burning the
/// quantum.
void spin_backoff(unsigned& spins) noexcept;

/// Reusable sense-reversing barrier for a fixed set of `parties` threads.
///
/// arrive_and_wait() is a full synchronisation point: every write performed
/// by any party before arriving happens-before everything any party executes
/// after leaving (arrivals are acq_rel, the generation bump is a release the
/// waiters acquire). Waiting is spin_backoff-based — intended for short,
/// frequent phases (the sharded simulator fires several per cycle), not for
/// long sleeps.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) noexcept : parties_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  void arrive_and_wait() noexcept;

 private:
  std::atomic<std::uint64_t> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
  std::size_t parties_;
};

/// A fixed team of cooperating members for barrier-style parallel phases.
///
/// Unlike ThreadPool (a task queue for independent work items), a ThreadTeam
/// runs the *same* callable on every member simultaneously — run(fn) invokes
/// fn(member) for member 0..members-1, with the caller participating as
/// member 0 — and blocks until all members return. Members may coordinate
/// inside fn with a SpinBarrier. Workers spin briefly between runs (so
/// back-to-back invocations, e.g. one per simulated cycle, hand off in
/// nanoseconds) and fall back to a condition-variable sleep when idle, so a
/// constructed-but-unused team costs nothing.
///
/// run() is a full fork/join: caller writes before run() are visible to every
/// member, and every member's writes are visible to the caller after run()
/// returns.
class ThreadTeam {
 public:
  /// Total member count including the caller; members - 1 threads spawn.
  explicit ThreadTeam(std::size_t members);
  ~ThreadTeam();

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  std::size_t members() const noexcept { return members_; }

  /// Runs fn(member) on all members and blocks until every one returns.
  /// Not reentrant; exceptions from fn must not escape (the phase work the
  /// team exists for is noexcept).
  void run(const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop(std::size_t member);

  std::size_t members_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> done_{0};
  std::atomic<bool> stop_{false};
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t sleepers_ = 0;  ///< guarded by mutex_
  std::vector<std::thread> threads_;
};

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Runs body(i) for i in [0, count) across the pool and blocks until all
  /// iterations finish. Exceptions from the body propagate (first one wins).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Convenience: one-shot parallel for on a process-wide pool.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

/// The process-wide pool (lazily constructed). Size can be pinned by setting
/// KNCUBE_THREADS before first use.
ThreadPool& global_pool();

}  // namespace kncube::util
