// Work-stealing-free, fixed-size thread pool with a parallel_for front end.
//
// The experiment harness runs many independent (λ, h, Lm) simulation points;
// each point is single-threaded (a cycle-accurate simulator is inherently
// sequential across cycles) so we parallelise across points. Dynamic
// chunk-of-one scheduling keeps long near-saturation points from straggling
// behind short low-load points.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kncube::util {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Runs body(i) for i in [0, count) across the pool and blocks until all
  /// iterations finish. Exceptions from the body propagate (first one wins).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Convenience: one-shot parallel for on a process-wide pool.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

/// The process-wide pool (lazily constructed). Size can be pinned by setting
/// KNCUBE_THREADS before first use.
ThreadPool& global_pool();

}  // namespace kncube::util
