// Minimal leveled logging to stderr.
//
// The level is read once from KNCUBE_LOG (error|warn|info|debug, default
// warn) so library code can emit diagnostics without a configuration object
// threading through every call site. Formatting uses iostreams on a local
// buffer so concurrent sweep workers do not interleave partial lines.
#pragma once

#include <sstream>
#include <string>

namespace kncube::util {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;
bool log_enabled(LogLevel level) noexcept;
void log_write(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_write(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace kncube::util

#define KNC_LOG(level)                                   \
  if (!::kncube::util::log_enabled(level)) {             \
  } else                                                 \
    ::kncube::util::detail::LogLine(level)

#define KNC_LOG_ERROR KNC_LOG(::kncube::util::LogLevel::kError)
#define KNC_LOG_WARN KNC_LOG(::kncube::util::LogLevel::kWarn)
#define KNC_LOG_INFO KNC_LOG(::kncube::util::LogLevel::kInfo)
#define KNC_LOG_DEBUG KNC_LOG(::kncube::util::LogLevel::kDebug)
