// Text/CSV table rendering for benchmark output.
//
// Every figure/table reproducer prints (a) a human-readable aligned table to
// stdout, mirroring the series the paper plots, and (b) optionally a CSV file
// so the curves can be re-plotted. This module is that single formatting path.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace kncube::util {

/// A cell is a string, a double (formatted with the table's precision), or an
/// integer count.
using Cell = std::variant<std::string, double, long long>;

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<Cell> row);
  void set_precision(int digits) { precision_ = digits; }
  /// Title printed above the table (and as a CSV comment line).
  void set_title(std::string title) { title_ = std::move(title); }

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return headers_.size(); }

  /// Aligned, boxed text rendering.
  void print(std::ostream& os) const;
  std::string to_string() const;

  /// RFC-4180-ish CSV (quotes fields containing commas/quotes/newlines).
  std::string to_csv() const;
  /// Writes CSV to `path`; returns false (and leaves no partial file
  /// guarantees) on I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  std::string format_cell(const Cell& c) const;

  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

}  // namespace kncube::util
