// Lightweight runtime assertion macros.
//
// KNC_ASSERT is active in all build types: the simulator's invariants (credit
// accounting, VC ownership, flit ordering) are cheap relative to the work per
// cycle and catching a violated invariant immediately is worth far more than
// the branch. KNC_DEBUG_ASSERT compiles out in release builds and is meant for
// hot inner loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace kncube {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "kncube assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg ? msg : "");
  std::abort();
}

}  // namespace kncube

#define KNC_ASSERT(expr)                                                  \
  do {                                                                    \
    if (!(expr)) ::kncube::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define KNC_ASSERT_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr)) ::kncube::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define KNC_DEBUG_ASSERT(expr) ((void)0)
#else
#define KNC_DEBUG_ASSERT(expr) KNC_ASSERT(expr)
#endif
