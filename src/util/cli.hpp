// Minimal command-line option parsing shared by examples and benches.
//
// Accepts `--key value`, `--key=value` and bare `--flag` forms. Unknown keys
// are collected so callers can reject typos, and every accessor takes an
// explicit default so binaries are runnable with no arguments (required for
// the `for b in build/bench/*; do $b; done` harness).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace kncube::util {

class Args {
 public:
  Args(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::optional<std::string> get(const std::string& key) const;

  std::string get_string(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Positional (non --key) arguments, in order.
  const std::vector<std::string>& positional() const noexcept { return positional_; }
  /// Every `--key` seen, for unknown-option validation.
  std::vector<std::string> keys() const;

  /// Returns the list of keys not in `allowed` (empty means all known).
  std::vector<std::string> unknown_keys(const std::vector<std::string>& allowed) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace kncube::util
