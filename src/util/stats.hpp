// Streaming statistics used by both the simulator (latency / utilisation
// measurement, steady-state detection) and the experiment harness (confidence
// intervals on model-vs-simulation comparisons).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace kncube::util {

/// Welford single-pass accumulator: numerically stable mean/variance without
/// storing samples.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  std::uint64_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean.
  double sem() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Half-width of an approximate 95% confidence interval on the mean
  /// (normal approximation; our sample counts are in the thousands).
  double ci95_half_width() const noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi); samples outside the range land in
/// saturating under/overflow bins. Used for latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::uint64_t total() const noexcept { return total_; }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  double bin_lo(std::size_t i) const noexcept;
  double bin_hi(std::size_t i) const noexcept;

  /// Approximate quantile (q in [0,1]) by linear interpolation inside the
  /// containing bin. Returns range endpoints for degenerate cases.
  double quantile(double q) const noexcept;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Batch-means steady-state detector.
///
/// The paper runs each simulation "until a further increase in simulated
/// network cycles does not change the collected statistics appreciably". We
/// implement that as: split the measurement phase into batches of equal
/// sample count; declare steady state once the running cumulative mean over
/// the last `window` batches changes by less than `rel_tol` relative to the
/// previous window.
class BatchMeans {
 public:
  BatchMeans(std::uint64_t batch_size, double rel_tol, std::size_t window = 3);

  /// Feeds one sample; returns true the moment convergence is declared.
  bool add(double x);

  bool converged() const noexcept { return converged_; }
  std::size_t completed_batches() const noexcept { return batch_means_.size(); }
  const std::vector<double>& batch_means() const noexcept { return batch_means_; }
  double overall_mean() const noexcept { return overall_.mean(); }
  const RunningStats& overall() const noexcept { return overall_; }

 private:
  std::uint64_t batch_size_;
  double rel_tol_;
  std::size_t window_;
  RunningStats current_batch_;
  RunningStats overall_;
  std::vector<double> batch_means_;
  std::vector<double> cumulative_means_;
  bool converged_ = false;
};

// ------------------------------------------------- replication statistics ---
//
// The validation subsystem (src/validate/) runs R independent simulator
// replications per operating point and needs exact small-sample confidence
// intervals: R is 3..10, far too small for the normal approximation that
// RunningStats::ci95_half_width uses on per-message samples.

/// Two-sided Student-t critical value: the t* with P(|T| <= t*) = confidence
/// for T ~ t(dof). Computed by inverting the t CDF (regularized incomplete
/// beta), accurate to ~1e-10. dof == 0 returns +infinity (no variance
/// information); confidence must lie in (0, 1).
double student_t_critical(double confidence, std::uint64_t dof);

/// Regularized incomplete beta function I_x(a, b) for a, b > 0 and x in
/// [0, 1], by continued fraction (Lentz). Exposed for tests; the building
/// block of the t distribution's CDF.
double regularized_incomplete_beta(double a, double b, double x);

/// A two-sided mean confidence interval from R independent replications.
struct ConfidenceInterval {
  double mean = 0.0;
  /// Half-width of the interval; +infinity when it cannot be estimated
  /// (fewer than two samples), 0 for zero sample variance.
  double half_width = std::numeric_limits<double>::infinity();
  std::uint64_t count = 0;
  double confidence = 0.95;

  double lo() const noexcept { return mean - half_width; }
  double hi() const noexcept { return mean + half_width; }
  /// True when x lies inside [lo, hi] widened by `slack` on each side.
  bool contains(double x, double slack = 0.0) const noexcept {
    return x >= lo() - slack && x <= hi() + slack;
  }
};

/// Student-t confidence interval on the mean of `samples` (one value per
/// independent replication). Degenerate cases: an empty sample set keeps the
/// default (count 0, infinite half-width); a single sample pins the mean but
/// keeps the infinite half-width (no variance estimate exists at R = 1);
/// identical samples give half-width 0.
ConfidenceInterval student_t_ci(const std::vector<double>& samples,
                                double confidence = 0.95);

/// Pearson correlation of two equally-sized series; used by tests to check
/// that model and simulation latency curves co-move.
double pearson_correlation(const std::vector<double>& a, const std::vector<double>& b);

/// Mean relative error |a-b|/b over positive entries of b.
double mean_relative_error(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace kncube::util
