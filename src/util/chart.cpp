#include "util/chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "util/assert.hpp"

namespace kncube::util {

namespace {

std::string format_tick(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%10.4g", v);
  return buf;
}

}  // namespace

std::string render_chart(const std::vector<Series>& series,
                         const ChartOptions& options) {
  KNC_ASSERT(options.width >= 16 && options.height >= 4);

  // Joint ranges over finite points.
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin;
  double ymin = std::numeric_limits<double>::infinity();
  double ymax = -ymin;
  std::vector<double> finite_y;
  for (const auto& s : series) {
    KNC_ASSERT(s.x.size() == s.y.size());
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) continue;
      xmin = std::min(xmin, s.x[i]);
      xmax = std::max(xmax, s.x[i]);
      ymin = std::min(ymin, s.y[i]);
      ymax = std::max(ymax, s.y[i]);
      finite_y.push_back(s.y[i]);
    }
  }
  std::ostringstream out;
  if (!options.title.empty()) out << options.title << '\n';
  if (finite_y.empty()) {
    out << "  (no finite points)\n";
    return out.str();
  }
  if (options.y_clip_quantile < 1.0 && finite_y.size() > 2) {
    std::sort(finite_y.begin(), finite_y.end());
    const auto idx = static_cast<std::size_t>(
        options.y_clip_quantile * static_cast<double>(finite_y.size() - 1));
    ymax = std::min(ymax, finite_y[idx]);
  }
  if (xmax <= xmin) xmax = xmin + 1.0;
  if (ymax <= ymin) ymax = ymin + 1.0;

  const int w = options.width;
  const int hgt = options.height;
  std::vector<std::string> grid(static_cast<std::size_t>(hgt),
                                std::string(static_cast<std::size_t>(w), ' '));
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) continue;
      const double fx = (s.x[i] - xmin) / (xmax - xmin);
      const double fy = (std::min(s.y[i], ymax) - ymin) / (ymax - ymin);
      const int col = std::clamp(static_cast<int>(std::lround(fx * (w - 1))), 0, w - 1);
      const int row =
          std::clamp(static_cast<int>(std::lround(fy * (hgt - 1))), 0, hgt - 1);
      // Row 0 is the top of the box.
      grid[static_cast<std::size_t>(hgt - 1 - row)][static_cast<std::size_t>(col)] =
          s.marker;
    }
  }

  if (!options.y_label.empty()) out << options.y_label << '\n';
  for (int r = 0; r < hgt; ++r) {
    const double y_at =
        ymax - (ymax - ymin) * static_cast<double>(r) / static_cast<double>(hgt - 1);
    out << (r % 4 == 0 ? format_tick(y_at) : std::string(10, ' ')) << " |"
        << grid[static_cast<std::size_t>(r)] << '\n';
  }
  out << std::string(11, ' ') << '+' << std::string(static_cast<std::size_t>(w), '-')
      << '\n';
  out << std::string(12, ' ') << format_tick(xmin)
      << std::string(static_cast<std::size_t>(std::max(1, w - 24)), ' ')
      << format_tick(xmax) << '\n';
  if (!options.x_label.empty()) {
    out << std::string(12, ' ') << options.x_label << '\n';
  }
  for (const auto& s : series) {
    out << "  " << s.marker << " = " << s.name << '\n';
  }
  return out.str();
}

}  // namespace kncube::util
