// ASCII scatter/line charts for the figure-reproduction benches.
//
// The paper's evaluation is six latency-vs-rate panels; printing the same
// curves as text charts next to the numeric tables makes the shape —
// flat region, knee, asymptote — reviewable straight from the bench logs.
#pragma once

#include <string>
#include <vector>

namespace kncube::util {

struct Series {
  std::string name;
  char marker = '*';
  std::vector<double> x;
  std::vector<double> y;  ///< non-finite values are skipped
};

struct ChartOptions {
  int width = 72;   ///< plot area columns
  int height = 20;  ///< plot area rows
  std::string x_label;
  std::string y_label;
  std::string title;
  /// Clip y at this quantile of the finite values (keeps the asymptote from
  /// flattening the rest of the curve); 1.0 disables clipping.
  double y_clip_quantile = 1.0;
};

/// Renders the series onto a common axis box. X and Y ranges are the joint
/// min/max over all finite points; collisions print the later series' marker.
std::string render_chart(const std::vector<Series>& series, const ChartOptions& options);

}  // namespace kncube::util
