#include "util/rng.hpp"

// Header-only implementation; this translation unit exists so the library has
// a concrete object for the module and to catch ODR/compile issues early.
namespace kncube::util {}
