#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace kncube::util {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::ci95_half_width() const noexcept { return 1.96 * sem(); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  KNC_ASSERT_MSG(hi > lo && bins > 0, "histogram needs a positive range and bins");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge at hi_
  ++counts_[idx];
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<double>(total_) * q;
  double seen = static_cast<double>(underflow_);
  if (seen >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (seen + c >= target && c > 0) {
      const double frac = (target - seen) / c;
      return bin_lo(i) + frac * width_;
    }
    seen += c;
  }
  return hi_;
}

BatchMeans::BatchMeans(std::uint64_t batch_size, double rel_tol, std::size_t window)
    : batch_size_(batch_size), rel_tol_(rel_tol), window_(window) {
  KNC_ASSERT_MSG(batch_size > 0 && window >= 1, "degenerate batch-means config");
}

bool BatchMeans::add(double x) {
  current_batch_.add(x);
  overall_.add(x);
  if (current_batch_.count() < batch_size_) return false;

  batch_means_.push_back(current_batch_.mean());
  cumulative_means_.push_back(overall_.mean());
  current_batch_.reset();

  // Need two full windows of batches before comparing them.
  if (!converged_ && cumulative_means_.size() >= 2 * window_) {
    const std::size_t m = cumulative_means_.size();
    const double recent = cumulative_means_[m - 1];
    const double earlier = cumulative_means_[m - 1 - window_];
    const double denom = std::max(std::abs(recent), 1e-300);
    if (std::abs(recent - earlier) / denom < rel_tol_) converged_ = true;
  }
  return converged_;
}

double pearson_correlation(const std::vector<double>& a, const std::vector<double>& b) {
  KNC_ASSERT(a.size() == b.size());
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  RunningStats sa, sb;
  for (double x : a) sa.add(x);
  for (double x : b) sb.add(x);
  double cov = 0.0;
  for (std::size_t i = 0; i < n; ++i) cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
  cov /= static_cast<double>(n - 1);
  const double denom = sa.stddev() * sb.stddev();
  if (denom == 0.0) return 0.0;
  return cov / denom;
}

double mean_relative_error(const std::vector<double>& a, const std::vector<double>& b) {
  KNC_ASSERT(a.size() == b.size());
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (b[i] > 0.0) {
      acc += std::abs(a[i] - b[i]) / b[i];
      ++n;
    }
  }
  return n ? acc / static_cast<double>(n) : 0.0;
}

}  // namespace kncube::util
