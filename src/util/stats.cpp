#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace kncube::util {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::ci95_half_width() const noexcept { return 1.96 * sem(); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  KNC_ASSERT_MSG(hi > lo && bins > 0, "histogram needs a positive range and bins");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge at hi_
  ++counts_[idx];
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<double>(total_) * q;
  double seen = static_cast<double>(underflow_);
  if (seen >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (seen + c >= target && c > 0) {
      const double frac = (target - seen) / c;
      return bin_lo(i) + frac * width_;
    }
    seen += c;
  }
  return hi_;
}

BatchMeans::BatchMeans(std::uint64_t batch_size, double rel_tol, std::size_t window)
    : batch_size_(batch_size), rel_tol_(rel_tol), window_(window) {
  KNC_ASSERT_MSG(batch_size > 0 && window >= 1, "degenerate batch-means config");
}

bool BatchMeans::add(double x) {
  current_batch_.add(x);
  overall_.add(x);
  if (current_batch_.count() < batch_size_) return false;

  batch_means_.push_back(current_batch_.mean());
  cumulative_means_.push_back(overall_.mean());
  current_batch_.reset();

  // Need two full windows of batches before comparing them.
  if (!converged_ && cumulative_means_.size() >= 2 * window_) {
    const std::size_t m = cumulative_means_.size();
    const double recent = cumulative_means_[m - 1];
    const double earlier = cumulative_means_[m - 1 - window_];
    const double denom = std::max(std::abs(recent), 1e-300);
    if (std::abs(recent - earlier) / denom < rel_tol_) converged_ = true;
  }
  return converged_;
}

namespace {

/// Continued-fraction core of the incomplete beta function (Lentz's method,
/// the standard Numerical-Recipes-style evaluation). Valid for
/// x < (a + 1) / (a + b + 2); the symmetry I_x(a,b) = 1 - I_{1-x}(b,a)
/// covers the rest.
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-15;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const auto md = static_cast<double>(m);
    const double m2 = 2.0 * md;
    double aa = md * (b - md) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + md) * (qab + md) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  KNC_ASSERT_MSG(a > 0.0 && b > 0.0, "incomplete beta needs positive parameters");
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  // Prefactor x^a (1-x)^b / (a B(a,b)), computed in log space.
  const double log_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                           a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(log_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double student_t_critical(double confidence, std::uint64_t dof) {
  KNC_ASSERT_MSG(confidence > 0.0 && confidence < 1.0,
                 "confidence must be in (0,1)");
  if (dof == 0) return std::numeric_limits<double>::infinity();
  // For T ~ t(nu): P(|T| > t) = I_x(nu/2, 1/2) with x = nu / (nu + t^2),
  // so the two-sided critical value solves I_x(nu/2, 1/2) = 1 - confidence.
  // The tail probability is strictly decreasing in t; bracket then bisect.
  const double nu = static_cast<double>(dof);
  const double alpha = 1.0 - confidence;
  const auto two_sided_tail = [nu](double t) {
    return regularized_incomplete_beta(nu / 2.0, 0.5, nu / (nu + t * t));
  };
  double hi = 1.0;
  while (two_sided_tail(hi) > alpha) {
    hi *= 2.0;
    if (hi > 1e12) return hi;  // absurd confidence/dof combination
  }
  double lo = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (two_sided_tail(mid) > alpha) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo <= 1e-12 * std::max(1.0, hi)) break;
  }
  return 0.5 * (lo + hi);
}

ConfidenceInterval student_t_ci(const std::vector<double>& samples,
                                double confidence) {
  ConfidenceInterval ci;
  ci.confidence = confidence;
  ci.count = samples.size();
  if (samples.empty()) return ci;
  RunningStats stats;
  for (double x : samples) stats.add(x);
  ci.mean = stats.mean();
  if (samples.size() < 2) return ci;  // half-width stays infinite at R = 1
  if (stats.variance() == 0.0) {
    ci.half_width = 0.0;
    return ci;
  }
  ci.half_width = student_t_critical(confidence, samples.size() - 1) * stats.sem();
  return ci;
}

double pearson_correlation(const std::vector<double>& a, const std::vector<double>& b) {
  KNC_ASSERT(a.size() == b.size());
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  RunningStats sa, sb;
  for (double x : a) sa.add(x);
  for (double x : b) sb.add(x);
  double cov = 0.0;
  for (std::size_t i = 0; i < n; ++i) cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
  cov /= static_cast<double>(n - 1);
  const double denom = sa.stddev() * sb.stddev();
  if (denom == 0.0) return 0.0;
  return cov / denom;
}

double mean_relative_error(const std::vector<double>& a, const std::vector<double>& b) {
  KNC_ASSERT(a.size() == b.size());
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (b[i] > 0.0) {
      acc += std::abs(a[i] - b[i]) / b[i];
      ++n;
    }
  }
  return n ? acc / static_cast<double>(n) : 0.0;
}

}  // namespace kncube::util
