#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>

#include "util/assert.hpp"

namespace kncube::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  KNC_ASSERT_MSG(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<Cell> row) {
  KNC_ASSERT_MSG(row.size() == headers_.size(), "row width must match headers");
  rows_.push_back(std::move(row));
}

std::string Table::format_cell(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<long long>(&c)) return std::to_string(*i);
  const double d = std::get<double>(c);
  std::ostringstream os;
  if (d != d) {
    os << "nan";
  } else if (d == std::numeric_limits<double>::infinity()) {
    os << "inf (saturated)";
  } else {
    os.setf(std::ios::fmtflags(0), std::ios::floatfield);
    os.precision(precision_);
    os << d;
  }
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> formatted;
  formatted.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> frow;
    frow.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      frow.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], frow.back().size());
    }
    formatted.push_back(std::move(frow));
  }

  std::ostringstream os;
  if (!title_.empty()) os << title_ << '\n';
  auto rule = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size() + 1, ' ') << '|';
    }
    os << '\n';
  };
  rule();
  emit(headers_);
  rule();
  for (const auto& frow : formatted) emit(frow);
  rule();
  return os.str();
}

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  if (!title_.empty()) os << "# " << title_ << '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(format_cell(row[c]));
    }
    os << '\n';
  }
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

}  // namespace kncube::util
