#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace kncube::util {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--key value` unless the next token is itself an option or missing.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "";  // bare flag
    }
  }
}

bool Args::has(const std::string& key) const { return values_.count(key) > 0; }

std::optional<std::string> Args::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get_string(const std::string& key, const std::string& def) const {
  return get(key).value_or(def);
}

std::int64_t Args::get_int(const std::string& key, std::int64_t def) const {
  const auto v = get(key);
  if (!v || v->empty()) return def;
  return std::stoll(*v);
}

double Args::get_double(const std::string& key, double def) const {
  const auto v = get(key);
  if (!v || v->empty()) return def;
  return std::stod(*v);
}

bool Args::get_bool(const std::string& key, bool def) const {
  const auto v = get(key);
  if (!v) return def;
  if (v->empty() || *v == "1" || *v == "true" || *v == "yes" || *v == "on") return true;
  if (*v == "0" || *v == "false" || *v == "no" || *v == "off") return false;
  throw std::invalid_argument("bad boolean for --" + key + ": " + *v);
}

std::vector<std::string> Args::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

std::vector<std::string> Args::unknown_keys(const std::vector<std::string>& allowed) const {
  std::vector<std::string> out;
  for (const auto& [k, _] : values_) {
    if (std::find(allowed.begin(), allowed.end(), k) == allowed.end()) out.push_back(k);
  }
  return out;
}

}  // namespace kncube::util
