// Deterministic pseudo-random number generation for the simulator.
//
// We use xoshiro256** (Blackman & Vigna) seeded through SplitMix64. Compared
// with std::mt19937_64 it is faster, has a tiny state (32 bytes, friendly to
// one-generator-per-node layouts), and gives us bit-for-bit reproducible
// streams across platforms, which std:: distributions do not guarantee. All
// distribution helpers below are therefore hand-rolled.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/assert.hpp"

namespace kncube::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Also a perfectly serviceable (if lower-quality) generator in its own right.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the project-wide PRNG.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 so that any 64-bit seed
  /// (including 0) yields a valid, well-mixed state.
  explicit Xoshiro256(std::uint64_t seed = 0x9fb21c651e98df25ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t uniform_below(std::uint64_t bound) noexcept {
    KNC_DEBUG_ASSERT(bound > 0);
    // Rejection-free fast path is fine for our purposes: the modulo bias of
    // the naive approach is ~bound/2^64, but we keep the unbiased version
    // because destination-choice bias would corrupt traffic statistics.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    KNC_DEBUG_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_below(span));
  }

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double exponential(double rate) noexcept {
    KNC_DEBUG_ASSERT(rate > 0.0);
    // 1 - uniform() is in (0, 1], so the log is finite.
    return -std::log(1.0 - uniform()) / rate;
  }

  /// Geometric number of failed Bernoulli(p) trials before the first success,
  /// i.e. inter-arrival gap of a discrete-time Bernoulli process.
  std::uint64_t geometric(double p) noexcept {
    KNC_DEBUG_ASSERT(p > 0.0 && p <= 1.0);
    if (p >= 1.0) return 0;
    const double u = 1.0 - uniform();  // in (0, 1]
    return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
  }

  /// Derives an independent stream for substream `index` (per-node RNGs).
  Xoshiro256 split(std::uint64_t index) noexcept {
    SplitMix64 sm(s_[0] ^ (0xd1342543de82ef95ULL * (index + 1)));
    return Xoshiro256(sm.next());
  }

  // State round-trip for structure-of-arrays generator banks (the batched
  // arrival kernel keeps the four state words of every node in parallel
  // arrays and reconstitutes a generator only for the rare data-dependent
  // draws). The words are the exact internal state: export/advance/import
  // produces the same stream as advancing this object directly.
  void save_state(std::uint64_t out[4]) const noexcept {
    for (int i = 0; i < 4; ++i) out[i] = s_[i];
  }
  static Xoshiro256 from_state(const std::uint64_t s[4]) noexcept {
    Xoshiro256 r;
    for (int i = 0; i < 4; ++i) r.s_[i] = s[i];
    return r;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int r) noexcept {
    return (x << r) | (x >> (64 - r));
  }
  std::uint64_t s_[4];
};

}  // namespace kncube::util
