#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace kncube::util {

namespace {

LogLevel initial_level() {
  const char* env = std::getenv("KNCUBE_LOG");
  if (!env) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(initial_level())};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) <= static_cast<int>(log_level());
}

void log_write(LogLevel level, const std::string& message) {
  static std::mutex mutex;
  std::lock_guard lock(mutex);
  std::fprintf(stderr, "[kncube %s] %s\n", level_name(level), message.c_str());
}

}  // namespace kncube::util
