#include "topology/torus.hpp"

#include <cmath>

#include "topology/mesh_geometry.hpp"

namespace kncube::topo {

KAryNCube::KAryNCube(int k, int n, bool bidirectional, bool mesh)
    : k_(k), n_(n), bidirectional_(bidirectional || mesh), mesh_(mesh) {
  KNC_ASSERT_MSG(k >= 2, "radix must be at least 2");
  KNC_ASSERT_MSG(n >= 1 && n <= kMaxDims, "dimension count out of range");
  NodeId size = 1;
  for (int d = 0; d < n_; ++d) {
    stride_[static_cast<std::size_t>(d)] = size;
    // Overflow guard: N must fit NodeId with headroom for channel indices.
    KNC_ASSERT_MSG(size <= (1u << 28) / static_cast<NodeId>(k), "network too large");
    size *= static_cast<NodeId>(k);
  }
  size_ = size;
}

int KAryNCube::coord(NodeId node, int dim) const noexcept {
  KNC_DEBUG_ASSERT(node < size_ && dim >= 0 && dim < n_);
  return static_cast<int>((node / stride_[static_cast<std::size_t>(dim)]) %
                          static_cast<NodeId>(k_));
}

Coords KAryNCube::coords(NodeId node) const noexcept {
  Coords c{};
  for (int d = 0; d < n_; ++d) c[static_cast<std::size_t>(d)] = coord(node, d);
  return c;
}

NodeId KAryNCube::node_at(const Coords& c) const noexcept {
  NodeId id = 0;
  for (int d = 0; d < n_; ++d) {
    const int x = c[static_cast<std::size_t>(d)];
    KNC_DEBUG_ASSERT(x >= 0 && x < k_);
    id += static_cast<NodeId>(x) * stride_[static_cast<std::size_t>(d)];
  }
  return id;
}

NodeId KAryNCube::neighbor(NodeId node, int dim, Direction dir) const noexcept {
  KNC_DEBUG_ASSERT(link_exists(node, dim, dir));
  const int c = coord(node, dim);
  const int next = dir == Direction::kPlus ? (c + 1) % k_ : (c - 1 + k_) % k_;
  const auto stride = stride_[static_cast<std::size_t>(dim)];
  return node + (static_cast<NodeId>(next) - static_cast<NodeId>(c)) * stride;
}

bool KAryNCube::link_exists(NodeId node, int dim, Direction dir) const noexcept {
  if (!mesh_) return true;
  const int c = coord(node, dim);
  return dir == Direction::kPlus ? c < k_ - 1 : c > 0;
}

int KAryNCube::ring_distance(int a, int b, Direction dir) const noexcept {
  KNC_DEBUG_ASSERT(a >= 0 && a < k_ && b >= 0 && b < k_);
  if (mesh_) {
    // The line cannot wrap: b must lie on `dir`'s side of a.
    KNC_DEBUG_ASSERT(dir == Direction::kPlus ? b >= a : b <= a);
    return dir == Direction::kPlus ? b - a : a - b;
  }
  return dir == Direction::kPlus ? (b - a + k_) % k_ : (a - b + k_) % k_;
}

int KAryNCube::ring_hops(int a, int b) const noexcept {
  if (mesh_) return a <= b ? b - a : a - b;
  const int plus = ring_distance(a, b, Direction::kPlus);
  if (!bidirectional_) return plus;
  const int minus = ring_distance(a, b, Direction::kMinus);
  return plus <= minus ? plus : minus;
}

Direction KAryNCube::ring_direction(int a, int b) const noexcept {
  if (mesh_) return b >= a ? Direction::kPlus : Direction::kMinus;
  if (!bidirectional_) return Direction::kPlus;
  const int plus = ring_distance(a, b, Direction::kPlus);
  const int minus = ring_distance(a, b, Direction::kMinus);
  return plus <= minus ? Direction::kPlus : Direction::kMinus;
}

int KAryNCube::hops(NodeId src, NodeId dst) const noexcept {
  int total = 0;
  for (int d = 0; d < n_; ++d) total += ring_hops(coord(src, d), coord(dst, d));
  return total;
}

int KAryNCube::next_route_dim(NodeId cur, NodeId dst) const noexcept {
  for (int d = 0; d < n_; ++d) {
    if (coord(cur, d) != coord(dst, d)) return d;
  }
  return -1;
}

std::vector<Hop> KAryNCube::route(NodeId src, NodeId dst) const {
  std::vector<Hop> path;
  path.reserve(static_cast<std::size_t>(hops(src, dst)));
  NodeId cur = src;
  while (cur != dst) {
    const int d = next_route_dim(cur, dst);
    KNC_DEBUG_ASSERT(d >= 0);
    const Direction dir = ring_direction(coord(cur, d), coord(dst, d));
    const NodeId nxt = neighbor(cur, d, dir);
    path.push_back(Hop{cur, nxt, d, dir, is_wrap_link(cur, d, dir)});
    cur = nxt;
  }
  return path;
}

bool KAryNCube::is_wrap_link(NodeId node, int dim, Direction dir) const noexcept {
  if (mesh_) return false;
  const int c = coord(node, dim);
  return dir == Direction::kPlus ? c == k_ - 1 : c == 0;
}

double KAryNCube::mean_ring_hops_uniform() const noexcept {
  if (mesh_) {
    // E|a - b| over iid uniform coordinates. Unlike the torus cases this is
    // position-dependent per node; the iid mean is the network-wide average.
    return mesh_mean_line_hops(k_);
  }
  // Average of ring_hops(a, b) over b uniform in [0, k) for fixed a.
  if (!bidirectional_) return static_cast<double>(k_ - 1) / 2.0;
  double acc = 0.0;
  for (int b = 0; b < k_; ++b) acc += ring_hops(0, b);
  return acc / static_cast<double>(k_);
}

}  // namespace kncube::topo
