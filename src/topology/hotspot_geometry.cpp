#include "topology/hotspot_geometry.hpp"

namespace kncube::topo {

HotspotGeometry::HotspotGeometry(const KAryNCube& net, NodeId hot)
    : net_(net), hot_(hot) {
  KNC_ASSERT_MSG(net.dims() == 2, "hot-spot geometry follows the paper's 2-D analysis");
  KNC_ASSERT_MSG(!net.bidirectional(), "hot-spot geometry assumes unidirectional rings");
  KNC_ASSERT(hot < net.size());
}

int HotspotGeometry::x_channel_hops_from_hot_ring(NodeId node) const noexcept {
  const int k = net_.radix();
  const int vx = net_.coord(node, 0);
  const int hx = net_.coord(hot_, 0);
  // Solve hx - vx == j (mod k) with j in [1, k].
  return ((hx - vx - 1) % k + k) % k + 1;
}

int HotspotGeometry::hot_y_channel_hops_from_hot(NodeId node) const noexcept {
  KNC_DEBUG_ASSERT(in_hot_column(node));
  const int k = net_.radix();
  const int vy = net_.coord(node, 1);
  const int hy = net_.coord(hot_, 1);
  return ((hy - vy - 1) % k + k) % k + 1;
}

int HotspotGeometry::x_ring_hops_from_hot(NodeId node) const noexcept {
  const int k = net_.radix();
  const int vy = net_.coord(node, 1);
  const int hy = net_.coord(hot_, 1);
  return ((hy - vy - 1) % k + k) % k + 1;
}

bool HotspotGeometry::in_hot_column(NodeId node) const noexcept {
  return net_.coord(node, 0) == net_.coord(hot_, 0);
}

double HotspotGeometry::p_hx(int j) const noexcept {
  const int k = net_.radix();
  KNC_DEBUG_ASSERT(j >= 1 && j <= k);
  if (j == k) return 0.0;
  return static_cast<double>(k - j) / static_cast<double>(net_.size());
}

double HotspotGeometry::p_hy(int j) const noexcept {
  const int k = net_.radix();
  KNC_DEBUG_ASSERT(j >= 1 && j <= k);
  if (j == k) return 0.0;
  return static_cast<double>(k) * static_cast<double>(k - j) /
         static_cast<double>(net_.size());
}

double HotspotGeometry::p_hx_bruteforce(int j) const {
  // Count sources whose hot-bound route crosses *one specific* x-channel j
  // hops from the hot column. By ring symmetry every (row, j) channel sees
  // the same count from the sources of its own row; the paper's fraction is
  // per channel, counted over all N sources.
  const int k = net_.radix();
  KNC_ASSERT(j >= 1 && j <= k);
  // The fraction is identical for every row by ring symmetry; count against
  // row 0's class-j channel, the one at x == (hx - j) mod k.
  const int hx = net_.coord(hot_, 0);
  Coords c{};
  c[0] = ((hx - j) % k + k) % k;
  c[1] = 0;
  const NodeId owner = net_.node_at(c);

  std::uint64_t count = 0;
  for (NodeId src = 0; src < net_.size(); ++src) {
    if (src == hot_) continue;
    for (const Hop& hop : net_.route(src, hot_)) {
      if (hop.dim == 0 && hop.from == owner) {
        ++count;
        break;
      }
    }
  }
  return static_cast<double>(count) / static_cast<double>(net_.size());
}

double HotspotGeometry::p_hy_bruteforce(int j) const {
  const int k = net_.radix();
  KNC_ASSERT(j >= 1 && j <= k);
  const int hx = net_.coord(hot_, 0);
  const int hy = net_.coord(hot_, 1);
  Coords c{};
  c[0] = hx;
  c[1] = ((hy - j) % k + k) % k;
  const NodeId owner = net_.node_at(c);

  std::uint64_t count = 0;
  for (NodeId src = 0; src < net_.size(); ++src) {
    if (src == hot_) continue;
    for (const Hop& hop : net_.route(src, hot_)) {
      if (hop.dim == 1 && hop.from == owner) {
        ++count;
        break;
      }
    }
  }
  return static_cast<double>(count) / static_cast<double>(net_.size());
}

int HotspotGeometry::hot_message_hops(NodeId src) const noexcept {
  return net_.hops(src, hot_);
}

}  // namespace kncube::topo
