// Mesh path-counting geometry: the closed forms behind the k-ary n-mesh
// analytical model (src/model/mesh_model.*) and its tests.
//
// Removing the wrap-around links breaks the torus's vertex-transitivity:
// channel load under dimension-order routing becomes position-dependent
// within each line. For the + direction, index the k-1 physical links of a
// line by i = 0..k-2 (the link from coordinate i to i+1); the - direction
// link from i+1 to i is the mirror image of the + link at position k-2-i
// and carries identical uniform-traffic load, so every per-position quantity
// below is stated for the + direction only.
//
// Under uniform traffic with dimension-order routing, a message traverses
// dimension d's links in the row where dimensions < d are already corrected
// and dimensions > d still hold the source coordinates, so the (src, dst)
// pairs crossing the + link at position i of a given line are exactly the
// pairs with src coordinate <= i and dst coordinate > i in that dimension:
// (i+1)(k-1-i) coordinate pairs, peaking at the line's centre — the mesh's
// signature bisection hot spot. See DESIGN.md §8 for the full derivation.
#pragma once

namespace kncube::topo {

/// Coordinate pairs (a <= i < b) whose dimension-order route crosses the +
/// link at position i of a line: (i+1)(k-1-i). The per-position load shape.
double mesh_link_pair_count(int k, int i) noexcept;

/// Per-channel message rate on the + link at position i of any dimension
/// under uniform traffic at per-node injection rate lambda:
///   lambda * (i+1)(k-1-i) * k^(n-1) / (k^n - 1).
/// Independent of the dimension index — dimension-order routing gives every
/// dimension the same free/corrected coordinate split (k^(n-1) rows feed
/// each line bundle regardless of where the dimension sits in the order).
double mesh_channel_rate(double lambda, int k, int n, int i) noexcept;

/// The maximum of mesh_channel_rate over positions: the centre-link
/// (bisection) rate that sets the mesh's bandwidth bottleneck.
double mesh_bottleneck_rate(double lambda, int k, int n) noexcept;

/// Mean |a - b| over iid uniform coordinates a, b in [0, k): (k^2 - 1)/(3k).
double mesh_mean_line_hops(int k) noexcept;

/// Mean Manhattan distance over uniform (src, dst) pairs with dst != src:
///   n * (k^2 - 1)/(3k) / (1 - k^-n).
/// The dst != src conditioning only rescales (distance 0 iff dst == src).
double mesh_mean_hops_uniform(int k, int n) noexcept;

/// Probability that a message entering a line at its source coordinate
/// (uniform) bound for a different coordinate (uniform among the rest)
/// enters through the + link at position i, folding the mirror-symmetric -
/// entrances onto + positions: 2(k-1-i) / (k(k-1)). Sums to 1 over
/// i = 0..k-2; the entrance-average weight of the mesh model.
double mesh_entrance_weight(int k, int i) noexcept;

}  // namespace kncube::topo
