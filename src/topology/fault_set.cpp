#include "topology/fault_set.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace kncube::topo {

FaultSet FaultSet::resolve(const KAryNCube& net,
                           const std::vector<NodeId>& failed_routers,
                           const std::vector<FailedLink>& failed_links,
                           double random_rate, std::uint64_t random_seed,
                           std::int64_t protected_node) {
  FaultSet f;
  if (failed_routers.empty() && failed_links.empty() && random_rate == 0.0) {
    return f;  // pristine: keep the zero-cost empty representation
  }
  f.empty_ = false;
  f.size_ = net.size();
  f.dims_ = net.dims();
  f.router_failed_.assign(f.size_, 0);
  f.link_failed_.assign(static_cast<std::size_t>(f.size_) *
                            static_cast<std::size_t>(f.dims_) * 2,
                        0);

  for (const NodeId r : failed_routers) {
    KNC_DEBUG_ASSERT(r < f.size_);
    f.router_failed_[r] = 1;
  }
  for (const FailedLink& l : failed_links) {
    KNC_DEBUG_ASSERT(l.node >= 0 && static_cast<NodeId>(l.node) < f.size_);
    KNC_DEBUG_ASSERT(l.dim >= 0 && l.dim < f.dims_);
    KNC_DEBUG_ASSERT(net.link_exists(static_cast<NodeId>(l.node), l.dim, l.dir));
    f.link_failed_[f.link_index(static_cast<NodeId>(l.node), l.dim, l.dir)] = 1;
    ++f.failed_link_count_;
  }

  // Random mode: round(rate * N) additional routers, chosen by a seeded
  // partial Fisher-Yates over the still-alive, unprotected candidates. The
  // draw depends only on (net shape, explicit failures, rate, seed,
  // protected node) — never on thread count or timing.
  if (random_rate > 0.0) {
    const auto want = static_cast<std::uint64_t>(
        random_rate * static_cast<double>(f.size_) + 0.5);
    std::vector<NodeId> candidates;
    candidates.reserve(f.size_);
    for (NodeId id = 0; id < f.size_; ++id) {
      if (f.router_failed_[id]) continue;
      if (protected_node >= 0 && static_cast<std::int64_t>(id) == protected_node)
        continue;
      candidates.push_back(id);
    }
    const std::uint64_t count =
        std::min<std::uint64_t>(want, candidates.size());
    util::Xoshiro256 rng(random_seed);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t j =
          i + rng.uniform_below(candidates.size() - i);
      std::swap(candidates[i], candidates[j]);
      f.router_failed_[candidates[i]] = 1;
    }
  }

  for (NodeId id = 0; id < f.size_; ++id) {
    if (f.router_failed_[id]) f.failed_router_list_.push_back(id);
  }
  f.alive_routers_ = f.size_ - f.failed_router_list_.size();
  f.precompute_reachability(net);
  return f;
}

void FaultSet::precompute_reachability(const KAryNCube& net) {
  const std::uint64_t n = size_;
  reach_.assign((n * n + 63) / 64, 0);
  unreachable_pairs_ = 0;
  for (NodeId src = 0; src < n; ++src) {
    if (router_failed_[src]) continue;  // dead sources generate nothing
    for (NodeId dst = 0; dst < n; ++dst) {
      bool ok;
      if (src == dst) {
        ok = true;  // self-delivery never enters the network
      } else if (router_failed_[dst]) {
        ok = false;
      } else {
        ok = true;
        // Walk the unique deterministic path over the *pristine* topology:
        // routing never deviates around faults, so the path shape is the
        // pristine one and a single unusable hop makes the pair unreachable.
        NodeId cur = src;
        while (cur != dst) {
          const int d = net.next_route_dim(cur, dst);
          const Direction dir =
              net.ring_direction(net.coord(cur, d), net.coord(dst, d));
          if (!link_usable(net, cur, d, dir)) {
            ok = false;
            break;
          }
          cur = net.neighbor(cur, d, dir);
        }
      }
      if (ok) {
        const std::uint64_t bit = static_cast<std::uint64_t>(src) * n + dst;
        reach_[bit >> 6] |= std::uint64_t{1} << (bit & 63);
      } else if (src != dst) {
        ++unreachable_pairs_;
      }
    }
  }
}

double FaultSet::reachable_pair_fraction() const noexcept {
  if (empty_) return 1.0;
  const std::uint64_t pairs =
      alive_routers_ * (static_cast<std::uint64_t>(size_) - 1);
  if (pairs == 0) return 0.0;
  return 1.0 -
         static_cast<double>(unreachable_pairs_) / static_cast<double>(pairs);
}

}  // namespace kncube::topo
