// Hot-spot geometry for the 2-D unidirectional torus (paper §3).
//
// The analytical model classifies every channel by its position relative to
// the hot-spot node H = (hx, hy):
//
//  * an x-channel (outgoing channel of node v in dimension x) is j hops,
//    1 <= j <= k, away from the *hot y-ring* (the column x == hx) when
//    vx == (hx - j) mod k; j == k means the channel leaves a node of the hot
//    column itself (such channels carry no hot-spot traffic);
//  * a channel of the hot y-ring is j hops away from the hot node when
//    vy == (hy - j) mod k; j == k is the hot node's own outgoing y channel
//    (again no hot-spot traffic);
//  * an x-ring (row) is t hops, 1 <= t <= k, away from the hot node when its
//    nodes have vy == (hy - t) mod k; t == k is the hot node's own row.
//
// This header provides those classifications in closed form plus brute-force
// counters (explicit path enumeration) that the tests use to validate the
// closed-form node fractions P_hx,j = (k-j)/N and P_hy,j = k(k-j)/N of
// eqs (4)-(5).
#pragma once

#include "topology/torus.hpp"

namespace kncube::topo {

class HotspotGeometry {
 public:
  /// Requires a 2-D unidirectional torus, matching the paper's analysis.
  HotspotGeometry(const KAryNCube& net, NodeId hot);

  const KAryNCube& network() const noexcept { return net_; }
  NodeId hot_node() const noexcept { return hot_; }
  int radix() const noexcept { return net_.radix(); }

  /// j in [1, k] for the outgoing x-channel of `node` (see file comment).
  int x_channel_hops_from_hot_ring(NodeId node) const noexcept;
  /// j in [1, k] for the outgoing y-channel of a hot-column node.
  /// Precondition: node lies in the hot column.
  int hot_y_channel_hops_from_hot(NodeId node) const noexcept;
  /// t in [1, k] for the x-ring (row) containing `node`.
  int x_ring_hops_from_hot(NodeId node) const noexcept;
  bool in_hot_column(NodeId node) const noexcept;

  /// Eq (4): fraction of system nodes whose hot-spot messages cross an
  /// x-channel j hops from the hot y-ring. Zero for j == k.
  double p_hx(int j) const noexcept;
  /// Eq (5): fraction crossing the hot-y-ring channel j hops from the hot
  /// node. Zero for j == k.
  double p_hy(int j) const noexcept;

  /// Brute-force counterparts of p_hx/p_hy: enumerate every source node,
  /// trace the deterministic route of its hot-spot message and count the
  /// sources whose path crosses a channel of the given class. The returned
  /// value is count/N, which eqs (4)-(5) predict in closed form.
  double p_hx_bruteforce(int j) const;
  double p_hy_bruteforce(int j) const;

  /// Hops of a hot-spot message from `src`: x-distance then y-distance.
  int hot_message_hops(NodeId src) const noexcept;

 private:
  const KAryNCube& net_;
  NodeId hot_;
};

}  // namespace kncube::topo
