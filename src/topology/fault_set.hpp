// Fault overlay for a k-ary n-cube / n-mesh: failed routers and failed
// directed links masking the pristine topology's `link_exists`.
//
// The overlay never changes routing. Dimension-order routing is
// deterministic and fault-oblivious: every (src, dst) pair has exactly one
// path, so whether the pair can communicate at all is a *static* property of
// the fault set — the path either avoids every failed element or it does
// not. `resolve` therefore precomputes the full reachability relation once
// (walking the deterministic route of every ordered pair) and the simulator
// classifies each generated message at injection time with a single bit
// test; no packet is ever dropped mid-network.
//
// A failed router takes down the node entirely: it injects nothing, ejects
// nothing, and every link touching it (in either direction) is unusable — so
// the network wiring simply leaves it unconnected and it stays quiescent
// forever. A failed link removes one directed channel while both endpoint
// routers stay alive.
//
// The empty fault set is the pristine network and costs nothing: no masks
// are allocated, every predicate short-circuits to the pristine answer, and
// no reachability matrix is built.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/torus.hpp"

namespace kncube::topo {

/// One failed directed link: the outgoing channel of `node` along
/// (dim, dir). `node` is deliberately wider than NodeId so that scenario
/// parsing can carry out-of-range values to validation instead of silently
/// wrapping them.
struct FailedLink {
  std::int64_t node = 0;
  int dim = 0;
  Direction dir = Direction::kPlus;
};

class FaultSet {
 public:
  /// The empty (pristine) fault set.
  FaultSet() = default;

  /// Resolves an explicit failure list plus the seed-derived random mode
  /// against `net`. The random mode fails round(random_rate * N) additional
  /// routers, drawn without replacement (seeded partial Fisher-Yates over
  /// Xoshiro256(random_seed)) from the routers not already failed and not
  /// equal to `protected_node` (pass -1 to protect nothing; the simulator
  /// protects the hot node so hot-spot measurement traffic keeps its sink).
  /// Ids/dims must be in range and links must exist (callers validate first;
  /// violations are debug-asserted here).
  static FaultSet resolve(const KAryNCube& net,
                          const std::vector<NodeId>& failed_routers,
                          const std::vector<FailedLink>& failed_links,
                          double random_rate, std::uint64_t random_seed,
                          std::int64_t protected_node = -1);

  /// True when nothing is failed: every predicate is pristine and O(1).
  bool empty() const noexcept { return empty_; }

  bool router_failed(NodeId node) const noexcept {
    return !empty_ && router_failed_[node] != 0;
  }

  /// True when the directed link (node, dim, dir) itself was failed
  /// (endpoint-router failures are separate; see link_usable).
  bool link_failed(NodeId node, int dim, Direction dir) const noexcept {
    return !empty_ && link_failed_[link_index(node, dim, dir)] != 0;
  }

  /// The wiring predicate: the link exists in `net`, was not failed, and
  /// neither endpoint router is failed.
  bool link_usable(const KAryNCube& net, NodeId node, int dim,
                   Direction dir) const noexcept {
    if (!net.link_exists(node, dim, dir)) return false;
    if (empty_) return true;
    if (router_failed(node) || link_failed(node, dim, dir)) return false;
    return !router_failed(net.neighbor(node, dim, dir));
  }

  /// True when the deterministic route src -> dst crosses no failed element
  /// (src == dst counts as reachable for an alive src). Precomputed by
  /// resolve; O(1) bit test.
  bool reachable(NodeId src, NodeId dst) const noexcept {
    if (empty_) return true;
    const std::uint64_t bit =
        static_cast<std::uint64_t>(src) * size_ + dst;
    return (reach_[bit >> 6] >> (bit & 63)) & 1u;
  }

  /// Ordered pairs (s, d), s != d, s alive, that cannot communicate.
  std::uint64_t unreachable_pairs() const noexcept { return unreachable_pairs_; }
  /// Fraction of ordered (s != d, s alive) pairs that remain reachable
  /// (1.0 when pristine).
  double reachable_pair_fraction() const noexcept;

  /// All failed routers (explicit + random), ascending.
  const std::vector<NodeId>& failed_routers() const noexcept {
    return failed_router_list_;
  }
  std::uint64_t failed_router_count() const noexcept {
    return failed_router_list_.size();
  }
  /// Explicitly failed links only (links implied by dead routers are not
  /// enumerated; link_usable accounts for them).
  std::uint64_t failed_link_count() const noexcept { return failed_link_count_; }

 private:
  std::size_t link_index(NodeId node, int dim, Direction dir) const noexcept {
    return (static_cast<std::size_t>(node) * static_cast<std::size_t>(dims_) +
            static_cast<std::size_t>(dim)) *
               2 +
           (dir == Direction::kMinus ? 1 : 0);
  }
  void precompute_reachability(const KAryNCube& net);

  bool empty_ = true;
  NodeId size_ = 0;
  int dims_ = 0;
  std::vector<std::uint8_t> router_failed_;  ///< per node
  std::vector<std::uint8_t> link_failed_;    ///< per (node, dim, dir)
  std::vector<std::uint64_t> reach_;         ///< N*N reachability bitset
  std::uint64_t unreachable_pairs_ = 0;
  std::uint64_t alive_routers_ = 0;
  std::uint64_t failed_link_count_ = 0;
  std::vector<NodeId> failed_router_list_;
};

}  // namespace kncube::topo
