// The k-ary n-cube (torus) substrate: addressing, ring arithmetic and
// deterministic dimension-order routing.
//
// Terminology follows the paper (§2–3): N = k^n nodes; each node has one
// outgoing channel per dimension (unidirectional rings, +1 mod k) or two
// (bidirectional extension). Dimension 0 is "x", dimension 1 is "y", and
// deterministic routing corrects dimensions in increasing order (x before y,
// paper assumption v). An *x-ring* is the set of nodes varying in dimension 0
// with the other coordinates fixed; for n = 2 that is a row, and a *y-ring*
// is a column.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace kncube::topo {

using NodeId = std::uint32_t;

/// Link direction around a ring. Unidirectional networks only use kPlus.
enum class Direction : std::uint8_t { kPlus = 0, kMinus = 1 };

/// Maximum supported dimensionality. The analysis in the paper is 2-D; the
/// simulator is generic but a compile-time bound keeps coordinates on the
/// stack in the per-cycle hot path.
inline constexpr int kMaxDims = 8;

using Coords = std::array<int, kMaxDims>;

/// One hop of a deterministic route.
struct Hop {
  NodeId from;
  NodeId to;
  int dim;
  Direction dir;
  bool wraps;  ///< true when this hop traverses the ring's wrap-around link
};

class KAryNCube {
 public:
  /// Builds a k-ary n-cube. `bidirectional` enables the paper's "easily
  /// extended" variant with links in both ring directions and shortest-path
  /// direction choice (ties resolved to kPlus).
  KAryNCube(int k, int n, bool bidirectional = false);

  int radix() const noexcept { return k_; }
  int dims() const noexcept { return n_; }
  NodeId size() const noexcept { return size_; }
  bool bidirectional() const noexcept { return bidirectional_; }
  /// Outgoing network channels per node (n for unidirectional, 2n otherwise).
  int channels_per_node() const noexcept { return bidirectional_ ? 2 * n_ : n_; }

  /// Coordinate of `node` in dimension `dim` (dimension 0 varies fastest).
  int coord(NodeId node, int dim) const noexcept;
  Coords coords(NodeId node) const noexcept;
  NodeId node_at(const Coords& c) const noexcept;

  /// Neighbour of `node` one hop along `dim` in direction `dir`.
  NodeId neighbor(NodeId node, int dim, Direction dir) const noexcept;

  /// Hops from coordinate a to b travelling in `dir` around a ring.
  int ring_distance(int a, int b, Direction dir) const noexcept;
  /// Shortest-hop distance within a ring honouring directionality: for the
  /// unidirectional torus this is the (+) distance; for bidirectional, the
  /// smaller of the two (ties count as the (+) distance).
  int ring_hops(int a, int b) const noexcept;
  /// Direction a deterministic message takes in a ring (kPlus when
  /// unidirectional or tied).
  Direction ring_direction(int a, int b) const noexcept;

  /// Total hop count of the deterministic route src -> dst.
  int hops(NodeId src, NodeId dst) const noexcept;

  /// First dimension (in x-before-y order) still to be corrected, or -1 when
  /// cur == dst (message has arrived).
  int next_route_dim(NodeId cur, NodeId dst) const noexcept;

  /// Full deterministic path src -> dst as a hop list (empty if src == dst).
  std::vector<Hop> route(NodeId src, NodeId dst) const;

  /// True when the link (node, dim, dir) is the ring's wrap-around link,
  /// i.e. it crosses the dateline used for deadlock-free VC classing.
  bool is_wrap_link(NodeId node, int dim, Direction dir) const noexcept;

  /// Mean hops per dimension under uniform traffic (paper eq (1)):
  /// unidirectional (k-1)/2; bidirectional ~ k/4 (exact value returned).
  double mean_ring_hops_uniform() const noexcept;

 private:
  int k_;
  int n_;
  bool bidirectional_;
  NodeId size_;
  std::array<NodeId, kMaxDims> stride_;  // k^dim
};

}  // namespace kncube::topo
