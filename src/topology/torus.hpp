// The k-ary n-cube (torus) substrate: addressing, ring arithmetic and
// deterministic dimension-order routing.
//
// Terminology follows the paper (§2–3): N = k^n nodes; each node has one
// outgoing channel per dimension (unidirectional rings, +1 mod k) or two
// (bidirectional extension). Dimension 0 is "x", dimension 1 is "y", and
// deterministic routing corrects dimensions in increasing order (x before y,
// paper assumption v). An *x-ring* is the set of nodes varying in dimension 0
// with the other coordinates fixed; for n = 2 that is a row, and a *y-ring*
// is a column.
//
// The same class also realises the k-ary n-*mesh* (`mesh = true`): the
// wrap-around links are removed, every ring degenerates to a bidirectional
// line, and dimension-order routing travels the unique minimal direction
// within each line. Edge nodes simply lack the links that would wrap —
// `link_exists` is the predicate the network wiring and the channel
// statistics consult. A mesh is acyclic under dimension-order routing, so
// no dateline VC classes are needed (sim/router.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace kncube::topo {

using NodeId = std::uint32_t;

/// Link direction around a ring. Unidirectional networks only use kPlus.
enum class Direction : std::uint8_t { kPlus = 0, kMinus = 1 };

/// Maximum supported dimensionality. The analysis in the paper is 2-D; the
/// simulator is generic but a compile-time bound keeps coordinates on the
/// stack in the per-cycle hot path.
inline constexpr int kMaxDims = 8;

using Coords = std::array<int, kMaxDims>;

/// One hop of a deterministic route.
struct Hop {
  NodeId from;
  NodeId to;
  int dim;
  Direction dir;
  bool wraps;  ///< true when this hop traverses the ring's wrap-around link
};

class KAryNCube {
 public:
  /// Builds a k-ary n-cube. `bidirectional` enables the paper's "easily
  /// extended" variant with links in both ring directions and shortest-path
  /// direction choice (ties resolved to kPlus). `mesh` removes the
  /// wrap-around links (k-ary n-mesh); a mesh is always bidirectional —
  /// a unidirectional line is disconnected — so `bidirectional` is forced on.
  KAryNCube(int k, int n, bool bidirectional = false, bool mesh = false);

  int radix() const noexcept { return k_; }
  int dims() const noexcept { return n_; }
  NodeId size() const noexcept { return size_; }
  bool bidirectional() const noexcept { return bidirectional_; }
  bool mesh() const noexcept { return mesh_; }
  /// Outgoing network channel *ports* per node (n for unidirectional,
  /// 2n otherwise). On a mesh this is the port-array bound, not the physical
  /// link count: edge nodes leave the would-wrap ports unconnected
  /// (`link_exists`).
  int channels_per_node() const noexcept { return bidirectional_ ? 2 * n_ : n_; }

  /// True when the outgoing link (node, dim, dir) physically exists. Always
  /// true on a torus; false on a mesh for the edge positions whose link
  /// would wrap (coordinate k-1 going kPlus, coordinate 0 going kMinus).
  bool link_exists(NodeId node, int dim, Direction dir) const noexcept;

  /// Coordinate of `node` in dimension `dim` (dimension 0 varies fastest).
  int coord(NodeId node, int dim) const noexcept;
  Coords coords(NodeId node) const noexcept;
  NodeId node_at(const Coords& c) const noexcept;

  /// Neighbour of `node` one hop along `dim` in direction `dir`.
  NodeId neighbor(NodeId node, int dim, Direction dir) const noexcept;

  /// Hops from coordinate a to b travelling in `dir` around a ring. On a
  /// mesh the line cannot wrap: b must be reachable in `dir` (b >= a for
  /// kPlus, b <= a for kMinus).
  int ring_distance(int a, int b, Direction dir) const noexcept;
  /// Shortest-hop distance within a ring honouring directionality: for the
  /// unidirectional torus this is the (+) distance; for bidirectional, the
  /// smaller of the two (ties count as the (+) distance); for a mesh line,
  /// |a - b|.
  int ring_hops(int a, int b) const noexcept;
  /// Direction a deterministic message takes in a ring (kPlus when
  /// unidirectional or tied; on a mesh, the sign of b - a).
  Direction ring_direction(int a, int b) const noexcept;

  /// Total hop count of the deterministic route src -> dst.
  int hops(NodeId src, NodeId dst) const noexcept;

  /// First dimension (in x-before-y order) still to be corrected, or -1 when
  /// cur == dst (message has arrived).
  int next_route_dim(NodeId cur, NodeId dst) const noexcept;

  /// Full deterministic path src -> dst as a hop list (empty if src == dst).
  std::vector<Hop> route(NodeId src, NodeId dst) const;

  /// True when the link (node, dim, dir) is the ring's wrap-around link,
  /// i.e. it crosses the dateline used for deadlock-free VC classing.
  /// Always false on a mesh (there is no wrap-around link to cross).
  bool is_wrap_link(NodeId node, int dim, Direction dir) const noexcept;

  /// Mean hops per dimension under uniform traffic (paper eq (1)):
  /// unidirectional (k-1)/2; bidirectional ~ k/4 (exact value returned);
  /// mesh (k^2 - 1)/(3k), the mean |a - b| over iid uniform coordinates.
  double mean_ring_hops_uniform() const noexcept;

 private:
  int k_;
  int n_;
  bool bidirectional_;
  bool mesh_;
  NodeId size_;
  std::array<NodeId, kMaxDims> stride_;  // k^dim
};

}  // namespace kncube::topo
