#include "topology/mesh_geometry.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace kncube::topo {

double mesh_link_pair_count(int k, int i) noexcept {
  KNC_DEBUG_ASSERT(k >= 2 && i >= 0 && i < k - 1);
  return static_cast<double>(i + 1) * static_cast<double>(k - 1 - i);
}

double mesh_channel_rate(double lambda, int k, int n, int i) noexcept {
  KNC_DEBUG_ASSERT(n >= 1);
  // k^(n-1) source rows feed the line bundle; the destination is uniform
  // over the k^n - 1 other nodes.
  const double rows = std::pow(static_cast<double>(k), n - 1);
  const double others = std::pow(static_cast<double>(k), n) - 1.0;
  return lambda * mesh_link_pair_count(k, i) * rows / others;
}

double mesh_bottleneck_rate(double lambda, int k, int n) noexcept {
  // (i+1)(k-1-i) is maximal at the centre link i = floor((k-2)/2) (either
  // centre link for odd k-1 — they tie by symmetry).
  return mesh_channel_rate(lambda, k, n, (k - 2) / 2);
}

double mesh_mean_line_hops(int k) noexcept {
  const double kd = static_cast<double>(k);
  return (kd * kd - 1.0) / (3.0 * kd);
}

double mesh_mean_hops_uniform(int k, int n) noexcept {
  const double p_self = std::pow(static_cast<double>(k), -n);
  return static_cast<double>(n) * mesh_mean_line_hops(k) / (1.0 - p_self);
}

double mesh_entrance_weight(int k, int i) noexcept {
  KNC_DEBUG_ASSERT(k >= 2 && i >= 0 && i < k - 1);
  // Ordered coordinate pairs (a, b), a != b: k(k-1). Entering + at position
  // i means a == i, b > i: k-1-i pairs; the mirrored - entrances double it.
  return 2.0 * static_cast<double>(k - 1 - i) /
         (static_cast<double>(k) * static_cast<double>(k - 1));
}

}  // namespace kncube::topo
