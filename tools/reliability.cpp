// kncube_reliability: rebuilds the reliability-degradation baseline.
//
// Runs the reliability suite (failure-count sweeps measured with
// R-replication confidence intervals — src/validate/reliability.*), prints
// the degradation table, writes the JSON report, and exits non-zero when the
// report fails (any conservation violation, or faulty-sim results that are
// not bit-identical across sim.threads) — the CI reliability gate.
//
// Usage:
//   kncube_reliability                    # full suite -> RELIABILITY.json
//   kncube_reliability --quick            # tier-1-sized subset, seconds;
//                                         # gate only — writes no file unless
//                                         # --out is given explicitly
//   kncube_reliability --out path.json    # write elsewhere (empty: no file)
//   kncube_reliability --replications 5 --confidence 0.99
//
// Regenerating the committed baseline (from the repo root):
//   ./build/tools/kncube_reliability --out RELIABILITY.json
#include <iostream>
#include <string>

#include "util/cli.hpp"
#include "validate/reliability.hpp"

int main(int argc, char** argv) {
  using namespace kncube;

  util::Args args(argc, argv);
  const auto unknown =
      args.unknown_keys({"quick", "out", "replications", "confidence"});
  if (!unknown.empty()) {
    std::cerr << "kncube_reliability: unknown option --" << unknown.front()
              << "\n";
    return EXIT_FAILURE;
  }

  const bool quick = args.get_bool("quick", false);
  // A quick run is a gate, not a baseline: never clobber the committed
  // RELIABILITY.json with subset data unless --out says so explicitly.
  const std::string out_path =
      args.get_string("out", quick ? "" : "RELIABILITY.json");

  validate::ReliabilityConfig cfg;
  cfg.replications =
      static_cast<int>(args.get_int("replications", quick ? 2 : 3));
  cfg.confidence = args.get_double("confidence", 0.95);

  try {
    const validate::ReliabilityEngine engine(cfg);
    const auto suite = quick ? validate::reliability_quick_suite()
                             : validate::reliability_suite();
    std::cout << (quick ? "quick" : "full") << " suite: " << suite.size()
              << " scenarios, " << cfg.replications
              << " replications/point, confidence " << cfg.confidence << "\n\n";

    const validate::ReliabilityReport report = engine.run(suite);

    validate::reliability_table(report).print(std::cout);
    std::cout << "\n" << validate::summary_line(report) << "\n";

    if (!out_path.empty()) {
      if (!validate::write_reliability_json(report, out_path)) {
        std::cerr << "kncube_reliability: cannot write '" << out_path << "'\n";
        return EXIT_FAILURE;
      }
      std::cout << "wrote " << out_path << "\n";
    }
    return report.passed() ? EXIT_SUCCESS : EXIT_FAILURE;
  } catch (const std::exception& e) {
    std::cerr << "kncube_reliability: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
