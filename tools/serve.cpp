// kncube_serve: the capacity-planning daemon (DESIGN.md §11). Listens on a
// Unix domain socket, answers ScenarioSpec sweep requests from a persistent
// disk-backed result store, and streams points as they converge.
//
// Usage:
//   kncube_serve --socket /tmp/kncube.sock [--store results.kncs] [--verbose]
//
//   --socket path   Unix socket to listen on (required)
//   --store path    disk-backed result store; omitted = in-memory only
//   --verbose       log one INFO line per request
//
// SIGTERM/SIGINT shut the daemon down gracefully: in-flight requests drain,
// the store flushes, and the socket file is removed. Point kncube_run at it
// with `kncube_run --connect /tmp/kncube.sock ...`.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "core/result_store.hpp"
#include "service/disk_store.hpp"
#include "service/server.hpp"
#include "service/store_version.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

namespace {

kncube::service::Server* g_server = nullptr;

// Only the async-signal-safe stop() (a self-pipe write) happens here; the
// actual drain runs on the run() thread.
void handle_signal(int) {
  if (g_server) g_server->stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kncube;

  util::Args args(argc, argv);
  const auto unknown = args.unknown_keys({"socket", "store", "verbose"});
  if (!unknown.empty()) {
    std::cerr << "kncube_serve: unknown option --" << unknown.front() << "\n";
    return EXIT_FAILURE;
  }
  const std::string socket_path = args.get_string("socket", "");
  if (socket_path.empty()) {
    std::cerr << "kncube_serve: --socket <path> is required\n";
    return EXIT_FAILURE;
  }
  const std::string store_path = args.get_string("store", "");
  const bool verbose = args.get_bool("verbose", false);

  try {
    service::ServerOptions options;
    options.socket_path = socket_path;
    options.verbose = verbose;
    if (!store_path.empty()) {
      auto disk = std::make_shared<service::DiskResultStore>(store_path);
      if (disk->invalidated()) {
        std::cout << "store: '" << store_path
                  << "' was invalidated (version/format mismatch or "
                     "unrecoverable corruption); starting fresh\n";
      } else {
        std::cout << "store: '" << store_path << "' loaded "
                  << disk->loaded_records() << " records";
        if (disk->dropped_bytes() > 0) {
          std::cout << " (dropped " << disk->dropped_bytes()
                    << " trailing corrupt/truncated bytes)";
        }
        std::cout << "\n";
      }
      options.store = std::move(disk);
    }

    service::Server server(std::move(options));
    server.bind();
    g_server = &server;
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);

    std::cout << "kncube_serve: listening on " << socket_path << " (store "
              << server.store()->kind() << ", version 0x" << std::hex
              << service::store_version() << std::dec << ")" << std::endl;
    server.run();
    g_server = nullptr;

    const core::CacheStats stats = server.stats();
    std::cout << "kncube_serve: shut down after " << server.requests_served()
              << " requests; " << core::format_cache_stats(stats) << "\n";
  } catch (const std::exception& e) {
    std::cerr << "kncube_serve: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
