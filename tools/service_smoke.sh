#!/usr/bin/env bash
# End-to-end smoke of the capacity-planning service (DESIGN.md §11):
#
#   1. starts kncube_serve on a disk store and waits for the socket;
#   2. fires concurrent requests: repeated identical specs, a distinct
#      spec, a sim-only spec, and (via a raw python3 client) an invalid
#      spec that must produce a line-anchored ERROR without killing the
#      daemon;
#   3. asserts cold-vs-warm cache behaviour from the per-request stats
#      line (warm repeats add hits, never solves);
#   4. SIGTERMs the daemon (clean exit, socket removed), restarts it on
#      the same store file and asserts every answer is a cache hit —
#      zero solves, zero sim runs, byte-identical tables;
#   5. shuts down again and checks the store survived with content.
#
# Usage: tools/service_smoke.sh [build-dir]   (default: ./build)
# Registered as the `service_smoke` ctest (label "service") and run by the
# CI `service-smoke` job.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
serve="$build_dir/tools/kncube_serve"
run="$build_dir/examples/kncube_run"

for bin in "$serve" "$run"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not found; build kncube_serve and kncube_run first" >&2
    exit 1
  fi
done

work="$(mktemp -d "$build_dir/service_smoke.XXXXXX")"
daemon_pid=""
cleanup() {
  if [[ -n "$daemon_pid" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
    kill "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true
  fi
  rm -rf "$work"
}
trap cleanup EXIT

sock="$work/daemon.sock"
store="$work/results.kncs"
export KNCUBE_QUICK=1

fail() { echo "FAIL: $*" >&2; exit 1; }

# Value of one counter on the client-printed "server stats:" line.
stat_of() { # stat_of <file> <counter>
  grep '^server stats:' "$1" | grep -o "$2=[0-9]*" | cut -d= -f2
}

wait_socket() {
  for _ in $(seq 100); do
    [[ -S "$sock" ]] && return 0
    sleep 0.1
  done
  fail "daemon never bound $sock"
}

start_daemon() { # start_daemon <logfile>
  "$serve" --socket "$sock" --store "$store" --verbose > "$1" 2>&1 &
  daemon_pid=$!
  wait_socket
}

stop_daemon() {
  kill -TERM "$daemon_pid"
  local status=0
  wait "$daemon_pid" || status=$?
  daemon_pid=""
  [[ "$status" -eq 0 ]] || fail "kncube_serve exited $status on SIGTERM"
  [[ -S "$sock" ]] && fail "socket file survived shutdown"
  return 0
}

spec_a=(--set topology.k=8 --set topology.n=2 --points 3)
spec_b=(--set topology.k=10 --set topology.n=2 --points 2 --sim 0)
spec_sim_only=(--set topology.n=3 --points 2 --max-rate 0.005 --sim 0)

echo "== 1. daemon start"
start_daemon "$work/serve1.log"

echo "== 2. concurrent requests (repeated / distinct / sim-only / invalid)"
"$run" --connect "$sock" "${spec_a[@]}" > "$work/cold_a1.out" 2>&1 &
p1=$!
"$run" --connect "$sock" "${spec_a[@]}" > "$work/cold_a2.out" 2>&1 &
p2=$!
"$run" --connect "$sock" "${spec_b[@]}" > "$work/cold_b.out" 2>&1 &
p3=$!
"$run" --connect "$sock" "${spec_sim_only[@]}" > "$work/cold_sim_only.out" 2>&1 &
p4=$!
# Invalid spec + malformed parameter, straight over the wire: kncube_run
# validates locally, so only a raw client can exercise the server's
# structured errors.
python3 - "$sock" > "$work/invalid.out" <<'PY' &
import socket, sys
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
f = s.makefile("rw", newline="\n")
assert f.readline().startswith("KNCUBE-SERVE "), "bad greeting"
def roundtrip(lines):
    for line in lines:
        f.write(line + "\n")
    f.flush()
    return f.readline().strip()

r = roundtrip(["REQUEST bad1", "topology.kind=torus", "topology.k=potato", "END"])
assert r.startswith("ERROR id=bad1") and "line 2" in r, r
print("invalid spec ->", r)
r = roundtrip(["REQUEST bad2", "request.points=zero", "END"])
assert r.startswith("ERROR id=bad2") and "line 1" in r, r
print("malformed param ->", r)
r = roundtrip(["BOGUS"])
assert r.startswith("ERROR id=-") and "unknown command" in r, r
print("unknown command ->", r)
# The connection survived three errors.
assert roundtrip(["PING"]) == "PONG"
print("still PONG after errors")
PY
p5=$!
for p in $p1 $p2 $p3 $p4 $p5; do
  wait "$p" || fail "a concurrent client failed (logs in $work)"
done
cat "$work/invalid.out"
grep -q '^summary$' "$work/cold_a1.out" || fail "client A1 printed no summary"
grep -q 'analytical model: none' "$work/cold_sim_only.out" \
  || fail "sim-only spec was not dispatched sim-only"

echo "== 3. cold-vs-warm stats"
cold_solves="$(stat_of "$work/cold_a2.out" model_solves)"
cold_hits="$(stat_of "$work/cold_a2.out" model_hits)"
[[ "$cold_solves" -gt 0 ]] || fail "cold run reported no model solves"
"$run" --connect "$sock" "${spec_a[@]}" > "$work/warm_a.out" 2>&1 \
  || fail "warm client failed"
warm_solves="$(stat_of "$work/warm_a.out" model_solves)"
warm_hits="$(stat_of "$work/warm_a.out" model_hits)"
warm_sim_hits="$(stat_of "$work/warm_a.out" sim_hits)"
[[ "$warm_solves" -eq "$cold_solves" ]] \
  || fail "warm repeat added solves ($cold_solves -> $warm_solves)"
[[ "$warm_hits" -gt "$cold_hits" ]] \
  || fail "warm repeat added no model hits ($cold_hits -> $warm_hits)"
[[ "$warm_sim_hits" -gt 0 ]] || fail "warm repeat reran its simulations"
echo "cold solves=$cold_solves hits=$cold_hits; warm solves=$warm_solves hits=$warm_hits"

echo "== 4. restart: everything answers from the store"
stop_daemon
start_daemon "$work/serve2.log"
grep -q "loaded [1-9][0-9]* records" "$work/serve2.log" \
  || fail "restarted daemon loaded no records"
"$run" --connect "$sock" "${spec_a[@]}" > "$work/restart_a.out" 2>&1 \
  || fail "post-restart client A failed"
"$run" --connect "$sock" "${spec_b[@]}" > "$work/restart_b.out" 2>&1 \
  || fail "post-restart client B failed"
for name in a b; do
  out="$work/restart_$name.out"
  [[ "$(stat_of "$out" model_solves)" -eq 0 ]] \
    || fail "restart $name re-solved the model"
  [[ "$(stat_of "$out" sim_runs)" -eq 0 ]] \
    || fail "restart $name re-ran simulations"
done
# Byte-identical answers across the restart (stats lines differ by design).
diff <(grep -v '^server stats:' "$work/cold_a2.out") \
     <(grep -v '^server stats:' "$work/restart_a.out") \
  || fail "restart changed client A's output"
diff <(grep -v '^server stats:' "$work/cold_b.out") \
     <(grep -v '^server stats:' "$work/restart_b.out") \
  || fail "restart changed client B's output"
echo "restart answered bit-identically with zero solves"

echo "== 5. clean shutdown"
stop_daemon
[[ -s "$store" ]] || fail "store file is missing or empty after shutdown"
grep -q "shut down after" "$work/serve2.log" \
  || fail "daemon did not log its drained shutdown"

echo "service smoke: OK"
