// kncube_validate: rebuilds the statistical accuracy baseline.
//
// Runs the validation suite (model-vs-simulation with R-replication
// confidence intervals over the ScenarioSpec space — src/validate/), prints
// the per-point accuracy table plus the per-class roll-up, writes the JSON
// report, and exits non-zero when the report fails (any out-of-tolerance
// modeled point or failed sim-only sanity check) — the CI accuracy gate.
//
// Usage:
//   kncube_validate                       # full suite -> ACCURACY.json
//   kncube_validate --quick               # tier-1-sized subset, seconds;
//                                         # gate only — writes no file unless
//                                         # --out is given explicitly
//   kncube_validate --out path.json       # write elsewhere (empty: no file)
//   kncube_validate --replications 7 --confidence 0.99
//
// Regenerating the committed baseline (from the repo root):
//   ./build/tools/kncube_validate --out ACCURACY.json
#include <iostream>
#include <string>

#include "util/cli.hpp"
#include "validate/accuracy_json.hpp"
#include "validate/validation_engine.hpp"

int main(int argc, char** argv) {
  using namespace kncube;

  util::Args args(argc, argv);
  const auto unknown =
      args.unknown_keys({"quick", "out", "replications", "confidence"});
  if (!unknown.empty()) {
    std::cerr << "kncube_validate: unknown option --" << unknown.front() << "\n";
    return EXIT_FAILURE;
  }

  const bool quick = args.get_bool("quick", false);
  // A quick run is a gate, not a baseline: never clobber the committed
  // ACCURACY.json with subset data unless --out says so explicitly.
  const std::string out_path =
      args.get_string("out", quick ? "" : "ACCURACY.json");

  validate::ValidationConfig cfg;
  cfg.replications =
      static_cast<int>(args.get_int("replications", quick ? 3 : 5));
  cfg.confidence = args.get_double("confidence", 0.95);

  try {
    const validate::ValidationEngine engine(cfg);
    const auto suite =
        quick ? validate::quick_suite() : validate::full_suite();
    std::cout << (quick ? "quick" : "full") << " suite: " << suite.size()
              << " scenarios, " << cfg.replications
              << " replications/point, confidence " << cfg.confidence << "\n\n";

    const validate::ValidationReport report = engine.run(suite);

    validate::accuracy_table(report).print(std::cout);
    std::cout << "\n" << validate::summary_line(report) << "\n";

    if (!out_path.empty()) {
      if (!validate::write_accuracy_json(report, out_path)) {
        std::cerr << "kncube_validate: cannot write '" << out_path << "'\n";
        return EXIT_FAILURE;
      }
      std::cout << "wrote " << out_path << "\n";
    }
    return report.passed() ? EXIT_SUCCESS : EXIT_FAILURE;
  } catch (const std::exception& e) {
    std::cerr << "kncube_validate: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
