// Quickstart: predict hot-spot latency with the analytical model, validate
// one operating point against the flit-level simulator, and print the
// comparison — the library's core loop in ~60 lines.
//
// Usage: quickstart [--k 16] [--lm 32] [--h 0.2] [--vcs 2] [--lambda <rate>]
#include <cstdlib>
#include <iostream>

#include "core/kncube.hpp"
#include "core/sweep_engine.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace kncube;

  util::Args args(argc, argv);
  core::ScenarioSpec scenario;
  scenario.torus().k = static_cast<int>(args.get_int("k", 16));
  scenario.message_length = static_cast<int>(args.get_int("lm", 32));
  scenario.hotspot().fraction = args.get_double("h", 0.2);
  scenario.vcs = static_cast<int>(args.get_int("vcs", 2));

  // Where does this network saturate? (The engine memoizes every probe.)
  core::SweepEngine engine(scenario);
  const core::SaturationResult sat = engine.saturation_rate();
  std::cout << "network: " << scenario.torus().k << "x" << scenario.torus().k
            << " torus, Lm=" << scenario.message_length
            << " flits, h=" << scenario.hotspot().fraction * 100
            << "%, V=" << scenario.vcs << "\n";
  std::cout << "model saturation rate: " << sat.rate << " messages/node/cycle ("
            << sat.probes << " probes)\n\n";

  // Pick one operating point (default: 60% of saturation) and compare the
  // model prediction against a full simulation, via the sweep engine.
  const double lambda = args.get_double("lambda", 0.6 * sat.rate);
  const model::ModelResult m = engine.model_point(lambda);
  std::cout << "lambda = " << lambda << "\n";
  std::cout << "  model:  latency=" << m.latency << " cycles"
            << "  (regular=" << m.regular_latency << ", hot=" << m.hot_latency
            << ", Ws=" << m.source_wait_regular << ", max util="
            << m.max_channel_utilization << ")\n";

  const sim::SimResult s = engine.sim_point(lambda, scenario.seed);
  std::cout << "  sim:    latency=" << s.mean_latency << " +- " << s.latency_ci95
            << " cycles over " << s.measured_messages << " messages ("
            << s.cycles << " cycles simulated"
            << (s.saturated ? ", SATURATED" : "") << ")\n";
  std::cout << "  sim:    network=" << s.mean_network_latency
            << " source wait=" << s.mean_source_wait
            << " hot channel util=" << s.hot_channel_utilization << "\n";

  if (!m.saturated && s.mean_latency > 0) {
    std::cout << "  relative error: "
              << 100.0 * std::abs(m.latency - s.mean_latency) / s.mean_latency
              << "%\n";
  }
  return EXIT_SUCCESS;
}
