// Generic sweep driver over the public API: model (and optionally
// simulator) latency across an injection-rate range, printed as a table and
// an ASCII chart, optionally exported to CSV. The Swiss-army knife for
// exploring configurations beyond the paper's six panels.
//
// Usage:
//   sweep [--k 16] [--vcs 2] [--lm 32] [--h 0.2] [--points 10]
//         [--lo 0.1] [--hi 0.95]     # fractions of the model saturation rate
//         [--sim 1]                  # 0 = model only (fast)
//         [--csv out.csv]
#include <cstdlib>
#include <iostream>

#include "core/kncube.hpp"
#include "core/sweep_engine.hpp"
#include "util/chart.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace kncube;

  util::Args args(argc, argv);
  const auto unknown = args.unknown_keys(
      {"k", "vcs", "lm", "h", "points", "lo", "hi", "sim", "csv", "seed"});
  if (!unknown.empty()) {
    std::cerr << "unknown option --" << unknown.front() << "\n";
    return EXIT_FAILURE;
  }

  core::ScenarioSpec s;
  s.torus().k = static_cast<int>(args.get_int("k", 16));
  s.vcs = static_cast<int>(args.get_int("vcs", 2));
  s.message_length = static_cast<int>(args.get_int("lm", 32));
  s.hotspot().fraction = args.get_double("h", 0.2);
  s.seed = static_cast<std::uint64_t>(args.get_int("seed", 0xC0FFEE));
  const int points = static_cast<int>(args.get_int("points", 10));
  const double lo = args.get_double("lo", 0.1);
  const double hi = args.get_double("hi", 0.95);
  const bool with_sim = args.get_bool("sim", true);

  core::SweepEngine engine(s);
  const core::SaturationResult sat = engine.saturation_rate();
  std::cout << s.torus().k << "x" << s.torus().k << " torus, Lm="
            << s.message_length << ", h=" << s.hotspot().fraction * 100
            << "%, V=" << s.vcs
            << "; model saturation " << sat.rate << " msg/node/cycle\n\n";

  const auto lambdas = engine.lambda_sweep(points, lo, hi);
  const auto pts = engine.run(lambdas, with_sim);
  util::Table table = core::figure_table("sweep", pts);
  table.print(std::cout);

  util::Series model_series{"model", 'm', {}, {}};
  util::Series sim_series{"simulation", 's', {}, {}};
  for (const auto& p : pts) {
    model_series.x.push_back(p.lambda);
    model_series.y.push_back(p.model.saturated
                                 ? std::numeric_limits<double>::infinity()
                                 : p.model.latency);
    if (p.has_sim) {
      sim_series.x.push_back(p.lambda);
      sim_series.y.push_back(p.sim.saturated
                                 ? std::numeric_limits<double>::infinity()
                                 : p.sim.mean_latency);
    }
  }
  util::ChartOptions chart;
  chart.x_label = "traffic (messages/cycle)";
  chart.y_label = "latency (cycles)";
  // Clip the near-saturation spike so the knee stays visible, but only once
  // there are enough points for a quantile to be meaningful.
  chart.y_clip_quantile = points >= 8 ? 0.999 : 1.0;
  std::vector<util::Series> series = {model_series};
  if (with_sim) series.push_back(sim_series);
  std::cout << "\n" << util::render_chart(series, chart);

  const std::string csv = args.get_string("csv", "");
  if (!csv.empty()) {
    if (table.write_csv(csv)) {
      std::cout << "wrote " << csv << "\n";
    } else {
      std::cerr << "failed to write " << csv << "\n";
      return EXIT_FAILURE;
    }
  }
  return EXIT_SUCCESS;
}
