// Capacity planning with the analytical model — the use case the paper
// argues for: "a practical evaluation tool for gaining insight into the
// performance behaviour of deterministic routing in k-ary n-cubes in the
// presence of hot-spot traffic". Given a workload (message length, hot-spot
// fraction, per-node injection rate) and a latency budget, sweep candidate
// network configurations and report which sustain it — hundreds of model
// evaluations in the time one simulation point would take.
//
// Usage: capacity_planning [--lm 32] [--h 0.2] [--lambda 2e-4] [--budget 150]
#include <cstdlib>
#include <iostream>

#include "core/kncube.hpp"
#include "core/sweep_engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace kncube;

  util::Args args(argc, argv);
  const int lm = static_cast<int>(args.get_int("lm", 32));
  const double h = args.get_double("h", 0.2);
  const double lambda = args.get_double("lambda", 2e-4);
  const double budget = args.get_double("budget", 150.0);

  std::cout << "workload: Lm=" << lm << " flits, h=" << h * 100
            << "% hot-spot, lambda=" << lambda
            << " msg/node/cycle; latency budget " << budget << " cycles\n\n";

  util::Table table({"k", "N", "V", "sat rate", "headroom", "latency @ lambda",
                     "zero-load", "verdict"});
  table.set_title("Candidate configurations (analytical model)");
  table.set_precision(4);

  for (int k : {8, 12, 16, 20, 24}) {
    for (int vcs : {2, 4}) {
      core::ScenarioSpec s;
      s.torus().k = k;
      s.vcs = vcs;
      s.message_length = lm;
      s.hotspot().fraction = h;
      // One engine per candidate: the memoized saturation search, the
      // operating point and the zero-load reference share its model.
      core::SweepEngine engine(s);
      const double sat = engine.saturation_rate().rate;
      const model::ModelResult r = engine.model_point(lambda);

      std::string verdict;
      if (r.saturated) {
        verdict = "SATURATED";
      } else if (r.latency > budget) {
        verdict = "over budget";
      } else if (lambda > 0.8 * sat) {
        verdict = "ok (no headroom)";
      } else {
        verdict = "OK";
      }
      table.add_row({static_cast<long long>(k), static_cast<long long>(k * k),
                     static_cast<long long>(vcs), sat, sat / lambda,
                     r.saturated ? std::numeric_limits<double>::infinity()
                                 : r.latency,
                     engine.analytical_model().zero_load_latency(), verdict});
    }
  }
  table.print(std::cout);
  std::cout << "\nReading: the hot column's capacity shrinks ~1/k^2, so growing\n"
               "the radix *reduces* the sustainable per-node hot-spot load even\n"
               "though the network has more links; extra virtual channels buy a\n"
               "little source-queue relief, not bottleneck bandwidth.\n";
  return EXIT_SUCCESS;
}
