// kncube_run: the generic ScenarioSpec driver — any workload the library
// can describe, from one spec file or the command line, with no per-figure
// hardcoding.
//
// Usage:
//   kncube_run [spec.txt] [--set key=value]...   # spec file plus overrides
//   kncube_run --set topology.k=32 --set traffic.hot_fraction=0.4
//   kncube_run --set topology.k=32 --set sim.threads=4   # sharded stepping,
//                                  # bit-identical results (DESIGN.md §9)
//   kncube_run spec.txt --print-spec             # echo the resolved spec
//   kncube_run --connect /tmp/kncube.sock spec.txt   # ask a kncube_serve
//                                  # daemon instead of computing locally;
//                                  # answers are bit-identical either way
//
// Sweep controls:
//   --points N      operating points (default 8; KNCUBE_QUICK=1 halves it)
//   --lo f --hi f   sweep range as fractions of the saturation rate
//                   (default 0.1 .. 0.95)
//   --max-rate r    absolute sweep ceiling in messages/node/cycle — required
//                   for sim-only specs (no model to anchor the sweep at)
//   --sim 0|1       run the simulator alongside the model (default 1)
//   --csv name      export the table via KNCUBE_OUT (see bench/common.hpp)
//   --verbose       print the cache-stats line (entries/hits/solves); in
//                   --connect mode the server's per-request stats line is
//                   always shown
//
// The spec grammar is the canonical `key=value` form of
// core/scenario_spec.hpp; see examples/specs/ for committed examples.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/kncube.hpp"
#include "service/client.hpp"
#include "util/cli.hpp"

namespace {

using namespace kncube;

bool quick_mode() {
  const char* env = std::getenv("KNCUBE_QUICK");
  return env && *env && std::string(env) != "0";
}

void print_table(const std::vector<core::PointResult>& pts,
                 const util::Args& args) {
  util::Table table = core::figure_table("kncube_run", pts);
  table.print(std::cout);
  const std::string csv_name = args.get_string("csv", "");
  if (!csv_name.empty()) {
    const std::string csv = core::export_csv(table, csv_name);
    if (!csv.empty()) std::cout << "csv: " << csv << "\n";
  }

  // Summary table: the one-line roll-up CI smoke-checks for.
  std::vector<std::pair<std::string, core::PanelSummary>> summaries;
  summaries.emplace_back("kncube_run", core::summarize_panel(pts));
  std::cout << "\n";
  core::summary_table("summary", summaries).print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  const auto unknown =
      args.unknown_keys({"set", "points", "lo", "hi", "max-rate", "sim", "csv",
                         "print-spec", "connect", "verbose"});
  if (!unknown.empty()) {
    std::cerr << "kncube_run: unknown option --" << unknown.front() << "\n";
    return EXIT_FAILURE;
  }

  core::ScenarioSpec spec;
  try {
    // Spec file first (positional), then --set overrides in order. util::Args
    // keeps only the last value per key, so collect repeated --set pairs from
    // the raw argv.
    if (!args.positional().empty()) {
      std::ifstream in(args.positional().front());
      if (!in) {
        std::cerr << "kncube_run: cannot open spec file '"
                  << args.positional().front() << "'\n";
        return EXIT_FAILURE;
      }
      std::ostringstream text;
      text << in.rdbuf();
      spec = core::parse_scenario(text.str());
    }
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) != "--set" || i + 1 >= argc) continue;
      const std::string kv = argv[++i];
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        std::cerr << "kncube_run: --set expects key=value, got '" << kv << "'\n";
        return EXIT_FAILURE;
      }
      core::apply_scenario_setting(spec, kv.substr(0, eq), kv.substr(eq + 1));
    }
    if (quick_mode()) {
      spec.target_messages = std::min<std::uint64_t>(spec.target_messages, 800);
      spec.warmup_cycles = std::min<std::uint64_t>(spec.warmup_cycles, 6000);
      spec.max_cycles = std::min<std::uint64_t>(spec.max_cycles, 400'000);
    }
    spec.validate();
  } catch (const std::exception& e) {
    std::cerr << "kncube_run: " << e.what() << "\n";
    return EXIT_FAILURE;
  }

  std::cout << "--- scenario (key " << std::hex << spec.key() << std::dec
            << ") ---\n"
            << core::format_scenario(spec) << "\n";
  if (args.get_bool("print-spec", false)) return EXIT_SUCCESS;

  const int points = static_cast<int>(
      args.get_int("points", quick_mode() ? 4 : 8));
  const double lo = args.get_double("lo", 0.1);
  const double hi = args.get_double("hi", 0.95);
  const bool with_sim = args.get_bool("sim", true);
  const double max_rate = args.get_double("max-rate", 0.0);
  const bool verbose = args.get_bool("verbose", false);
  if (points < 2 || !(lo > 0.0) || !(hi > lo)) {
    std::cerr << "kncube_run: need --points >= 2 and 0 < --lo < --hi\n";
    return EXIT_FAILURE;
  }

  // ------------------------------------------------------------- connect ---
  // Client mode: ship the spec to a kncube_serve daemon and print its
  // (bit-identical) answers; the daemon's store makes repeats instant.
  const std::string socket_path = args.get_string("connect", "");
  if (!socket_path.empty()) {
    try {
      service::Client client(socket_path);
      service::Request request;
      request.points = points;
      request.lo = lo;
      request.hi = hi;
      request.max_rate = max_rate;
      request.with_sim = with_sim;
      const service::Client::SweepOutcome outcome = client.run(spec, request);
      if (!outcome.begin.model_name.empty()) {
        std::cout << "analytical model: " << outcome.begin.model_name << "\n";
      } else {
        std::cout << "analytical model: none — " << outcome.begin.reason
                  << " (simulator only)\n";
      }
      if (outcome.has_sweep) {
        std::cout << "model saturation rate: " << outcome.sweep.saturation
                  << " messages/node/cycle (" << outcome.sweep.probes
                  << " probes)\n";
      }
      std::cout << "\n";
      print_table(outcome.points, args);
      std::cout << "\nserver stats: "
                << core::format_cache_stats(outcome.stats.stats) << "\n";
    } catch (const std::exception& e) {
      std::cerr << "kncube_run: " << e.what() << "\n";
      return EXIT_FAILURE;
    }
    return EXIT_SUCCESS;
  }

  // --------------------------------------------------------------- local ---
  core::SweepEngine engine(spec);

  // Sweep anchor: the model's bisected saturation boundary when the
  // registry dispatched a model, else the explicit --max-rate ceiling.
  std::vector<double> lambdas;
  if (engine.has_model()) {
    std::cout << "analytical model: " << engine.analytical_model().name()
              << " (zero-load latency "
              << engine.analytical_model().zero_load_latency() << " cycles)\n";
    const core::SaturationResult sat = engine.saturation_rate();
    std::cout << "model saturation rate: " << sat.rate << " messages/node/cycle ("
              << sat.probes << " probes)\n\n";
    lambdas = engine.lambda_sweep(points, lo, hi);
  } else {
    std::cout << "analytical model: none — " << engine.sim_only_reason()
              << " (simulator only)\n\n";
    if (max_rate <= 0.0) {
      std::cerr << "kncube_run: sim-only scenario needs --max-rate to anchor "
                   "the sweep\n";
      return EXIT_FAILURE;
    }
    for (int i = 0; i < points; ++i) {
      const double f = lo + (hi - lo) * static_cast<double>(i) /
                                static_cast<double>(points - 1);
      lambdas.push_back(f * max_rate);
    }
  }

  const auto pts = engine.run(lambdas, with_sim);
  print_table(pts, args);
  if (verbose) {
    std::cout << "\ncache stats: "
              << core::format_cache_stats(engine.cache_stats()) << "\n";
    // Surface the shard resolution: sim.threads is clamped so every shard
    // keeps enough routers, and a silent clamp reads as a perf mystery.
    for (const auto& p : pts) {
      if (!p.has_sim) continue;
      std::cout << "sim shards: " << p.sim.sim_shards << " ("
                << p.sim.sim_shards_requested << " requested";
      if (p.sim.sim_shards < p.sim.sim_shards_requested) {
        std::cout << ", clamped by network size";
      }
      std::cout << ")\n";
      break;
    }
  }
  return EXIT_SUCCESS;
}
