// Traffic-pattern comparison on the flit-level simulator: the same network
// under uniform, hot-spot, transpose, bit-complement and bit-reversal
// destinations at equal injection rate. Shows how far from uniform each
// pattern pushes the channel-load distribution — hot-spot being the extreme
// the paper models.
//
// Usage: traffic_patterns [--k 8] [--lm 16] [--lambda 1e-3] [--h 0.2]
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/kncube.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace kncube;

  util::Args args(argc, argv);
  const int k = static_cast<int>(args.get_int("k", 8));
  const int lm = static_cast<int>(args.get_int("lm", 16));
  const double lambda = args.get_double("lambda", 1e-3);
  const double h = args.get_double("h", 0.2);

  std::cout << "pattern comparison on a " << k << "x" << k << " torus, Lm=" << lm
            << ", lambda=" << lambda << " msg/node/cycle\n\n";

  // Every pattern is a core::Traffic alternative: the spec drives the
  // simulator (and, where one exists, the analytical model) through the
  // same facade.
  const std::vector<std::pair<std::string, core::Traffic>> patterns = {
      {"uniform", core::UniformTraffic{}},
      {"hotspot h=" + std::to_string(static_cast<int>(h * 100)) + "%",
       core::HotspotTraffic{h, -1}},
      {"transpose", core::TransposeTraffic{}},
      {"bit-complement", core::BitComplementTraffic{}},
      {"bit-reversal", core::BitReversalTraffic{}},
  };

  util::Table table({"pattern", "mean latency", "p95", "accepted load",
                     "mean chan util", "max chan util", "max/mean", "saturated"});
  table.set_title("Simulator, equal offered load");
  table.set_precision(4);

  for (const auto& [name, pattern] : patterns) {
    core::ScenarioSpec spec;
    spec.torus().k = k;
    spec.vcs = 2;
    spec.message_length = lm;
    spec.traffic = pattern;
    spec.warmup_cycles = 5000;
    spec.target_messages = 2000;
    spec.max_cycles = 800000;
    const sim::SimResult r = sim::simulate(core::to_sim_config(spec, lambda));
    table.add_row({name,
                   r.saturated ? std::numeric_limits<double>::infinity()
                               : r.mean_latency,
                   r.p95_latency, r.accepted_load, r.mean_channel_utilization,
                   r.max_channel_utilization,
                   r.mean_channel_utilization > 0
                       ? r.max_channel_utilization / r.mean_channel_utilization
                       : 0.0,
                   std::string(r.saturated ? "yes" : "no")});
  }
  table.print(std::cout);
  std::cout << "\nReading: uniform spreads load evenly (max/mean ~ 1); hot-spot\n"
               "concentrates it on one column (max/mean ~ k as eq (7) predicts);\n"
               "permutations sit between, skewed by dimension-order routing.\n";
  return EXIT_SUCCESS;
}
