// Barrier synchronisation — the paper's motivating hot-spot workload
// ("global synchronisation where each node sends a synchronisation message
// to a distinguished node"). Every node fires one message at the root in
// the same cycle; we measure the burst's completion time and latency
// distribution, and compare against the serialisation lower bound of the
// root's column.
//
// Usage: barrier_sync [--k 16] [--lm 8] [--vcs 2] [--repeats 3]
#include <cstdlib>
#include <iostream>

#include "core/kncube.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace kncube;

  util::Args args(argc, argv);
  const int k = static_cast<int>(args.get_int("k", 16));
  const int lm = static_cast<int>(args.get_int("lm", 8));
  const int vcs = static_cast<int>(args.get_int("vcs", 2));
  const int repeats = static_cast<int>(args.get_int("repeats", 3));

  sim::SimConfig cfg;
  cfg.k = k;
  cfg.n = 2;
  cfg.vcs = vcs;
  cfg.message_length = lm;
  cfg.injection_rate = 0.0;  // the barrier burst is injected manually

  std::cout << "barrier synchronisation on a " << k << "x" << k
            << " unidirectional torus, Lm=" << lm << ", V=" << vcs << "\n";

  util::Table table({"root", "completion (cycles)", "mean latency", "p95", "max",
                     "serialisation bound"});
  table.set_title("All-to-one barrier burst");
  table.set_precision(5);

  const topo::KAryNCube net(k, 2);
  for (int rep = 0; rep < repeats; ++rep) {
    // Different root each repetition; results are identical by torus
    // symmetry, which doubles as a quick sanity check.
    const auto root = static_cast<topo::NodeId>(
        static_cast<std::uint64_t>(rep) * 7919u % net.size());
    sim::Simulator sim(cfg);
    sim.metrics().begin_measurement(0);
    for (topo::NodeId src = 0; src < net.size(); ++src) {
      if (src != root) sim.inject_now(src, root);
    }
    const std::uint64_t want = net.size() - 1;
    while (sim.metrics().delivered_total() < want &&
           sim.current_cycle() < 10'000'000) {
      sim.step_cycles(64);
    }
    // The root's column funnels k(k-1) of the messages through its last
    // link at Lm flits each — the burst cannot complete faster.
    const double bound = static_cast<double>(k) * (k - 1) * lm;
    const auto& lat = sim.metrics().latency();
    const auto& hist = sim.metrics().latency_histogram();
    table.add_row({static_cast<long long>(root),
                   static_cast<double>(sim.current_cycle()), lat.mean(),
                   hist.quantile(0.95), lat.max(), bound});
  }
  table.print(std::cout);
  std::cout << "\nThe completion time hugs the hot-column serialisation bound:\n"
               "under an all-to-one burst the network degenerates to the paper's\n"
               "h -> 1 regime, where the hot column is the whole story.\n";
  return EXIT_SUCCESS;
}
