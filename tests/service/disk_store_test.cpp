// On-disk result store format tests (ISSUE acceptance): reopen round trips
// are bit-identical, a corrupt or truncated tail is tolerated, a store
// version mismatch invalidates cleanly, and an engine restarted onto the
// same file answers without re-solving.
#include "service/disk_store.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/sweep_engine.hpp"

namespace kncube::service {
namespace {

constexpr std::uint64_t kVersionA = 0x1111222233334444ULL;
constexpr std::uint64_t kVersionB = 0x5555666677778888ULL;

std::uint64_t bits(double d) { return std::bit_cast<std::uint64_t>(d); }

core::ModelEntry make_entry(double base) {
  core::ModelEntry e;
  e.result.latency = base;
  e.result.saturated = false;
  e.result.converged = true;
  e.result.iterations = 7;
  e.result.regular_latency = base / 3.0;
  e.result.hot_latency = base / 7.0;
  // Irrational-ish values: any decimal round trip would change the bits.
  e.state = {base * 0.5, base / 9.0, base / 11.0};
  return e;
}

sim::SimResult make_sim(double base) {
  sim::SimResult r;
  r.mean_latency = base;
  r.latency_ci95 = base / 13.0;
  r.measured_messages = 1234;
  r.cycles = 99999;
  r.steady = true;
  return r;
}

class DiskStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::string("disk_store_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".kncs";
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  void corrupt_last_byte() {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f);
    f.seekg(0, std::ios::end);
    const auto size = f.tellg();
    f.seekp(static_cast<std::streamoff>(size) - 1);
    char b = 0;
    f.seekg(static_cast<std::streamoff>(size) - 1);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x5A);
    f.seekp(static_cast<std::streamoff>(size) - 1);
    f.write(&b, 1);
  }

  std::string path_;
};

TEST_F(DiskStoreTest, ReopenRoundTripIsBitIdentical) {
  const core::ModelEntry entry = make_entry(1.0 / 3.0);
  const sim::SimResult sim = make_sim(2.0 / 7.0);
  core::SaturationResult sat;
  sat.rate = 1.0 / 13.0;
  sat.probes = 17;
  {
    DiskResultStore store(path_, kVersionA);
    EXPECT_EQ(store.loaded_records(), 0u);
    store.store_model(0xA, bits(0.25), entry);
    store.store_sim(0xA, bits(0.5), 42, sim);
    store.store_saturation(0xA, bits(1e-3), sat);
  }
  DiskResultStore store(path_, kVersionA);
  EXPECT_FALSE(store.invalidated());
  EXPECT_EQ(store.loaded_records(), 3u);
  EXPECT_EQ(store.dropped_bytes(), 0u);

  core::ModelEntry got_entry;
  ASSERT_TRUE(store.load_model(0xA, bits(0.25), &got_entry));
  EXPECT_EQ(bits(got_entry.result.latency), bits(entry.result.latency));
  EXPECT_EQ(bits(got_entry.result.regular_latency),
            bits(entry.result.regular_latency));
  EXPECT_EQ(bits(got_entry.result.hot_latency), bits(entry.result.hot_latency));
  EXPECT_EQ(got_entry.result.saturated, entry.result.saturated);
  EXPECT_EQ(got_entry.result.converged, entry.result.converged);
  EXPECT_EQ(got_entry.result.iterations, entry.result.iterations);
  ASSERT_EQ(got_entry.state.size(), entry.state.size());
  for (std::size_t i = 0; i < entry.state.size(); ++i) {
    EXPECT_EQ(bits(got_entry.state[i]), bits(entry.state[i]));
  }

  sim::SimResult got_sim;
  ASSERT_TRUE(store.load_sim(0xA, bits(0.5), 42, &got_sim));
  EXPECT_EQ(bits(got_sim.mean_latency), bits(sim.mean_latency));
  EXPECT_EQ(bits(got_sim.latency_ci95), bits(sim.latency_ci95));
  EXPECT_EQ(got_sim.measured_messages, sim.measured_messages);
  EXPECT_EQ(got_sim.cycles, sim.cycles);
  EXPECT_EQ(got_sim.steady, sim.steady);

  core::SaturationResult got_sat;
  ASSERT_TRUE(store.load_saturation(0xA, bits(1e-3), &got_sat));
  EXPECT_EQ(bits(got_sat.rate), bits(sat.rate));
  EXPECT_EQ(got_sat.probes, sat.probes);

  // Misses stay misses: other keys and other spec keys.
  core::ModelEntry miss;
  EXPECT_FALSE(store.load_model(0xA, bits(0.125), &miss));
  EXPECT_FALSE(store.load_model(0xB, bits(0.25), &miss));
}

TEST_F(DiskStoreTest, TruncatedTailIsDroppedAndStoreStaysUsable) {
  {
    DiskResultStore store(path_, kVersionA);
    store.store_model(1, bits(0.1), make_entry(0.1));
    store.store_model(1, bits(0.2), make_entry(0.2));
    store.store_model(1, bits(0.3), make_entry(0.3));
  }
  // A crash mid-append leaves a torn record at the end of the file.
  const auto full = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full - 5);
  {
    DiskResultStore store(path_, kVersionA);
    EXPECT_FALSE(store.invalidated());
    EXPECT_EQ(store.loaded_records(), 2u);
    EXPECT_GT(store.dropped_bytes(), 0u);
    core::ModelEntry got;
    EXPECT_TRUE(store.load_model(1, bits(0.1), &got));
    EXPECT_TRUE(store.load_model(1, bits(0.2), &got));
    EXPECT_FALSE(store.load_model(1, bits(0.3), &got));
    // The tail was removed, so new appends land on a clean boundary.
    store.store_model(1, bits(0.3), make_entry(0.3));
  }
  DiskResultStore store(path_, kVersionA);
  EXPECT_FALSE(store.invalidated());
  EXPECT_EQ(store.loaded_records(), 3u);
  EXPECT_EQ(store.dropped_bytes(), 0u);
  core::ModelEntry got;
  EXPECT_TRUE(store.load_model(1, bits(0.3), &got));
  EXPECT_EQ(bits(got.result.latency), bits(0.3));
}

TEST_F(DiskStoreTest, ChecksumCatchesACorruptPayloadByte) {
  {
    DiskResultStore store(path_, kVersionA);
    store.store_model(1, bits(0.1), make_entry(0.1));
    store.store_model(1, bits(0.2), make_entry(0.2));
  }
  corrupt_last_byte();
  DiskResultStore store(path_, kVersionA);
  EXPECT_FALSE(store.invalidated());
  EXPECT_EQ(store.loaded_records(), 1u);
  EXPECT_GT(store.dropped_bytes(), 0u);
  core::ModelEntry got;
  EXPECT_TRUE(store.load_model(1, bits(0.1), &got));
  EXPECT_FALSE(store.load_model(1, bits(0.2), &got));
}

TEST_F(DiskStoreTest, VersionMismatchInvalidatesCleanly) {
  {
    DiskResultStore store(path_, kVersionA);
    store.store_model(1, bits(0.1), make_entry(0.1));
  }
  {
    // The result-producing code changed: everything cached is stale.
    DiskResultStore store(path_, kVersionB);
    EXPECT_TRUE(store.invalidated());
    EXPECT_EQ(store.loaded_records(), 0u);
    const core::StoreSizes sizes = store.sizes();
    EXPECT_EQ(sizes.model, 0u);
    EXPECT_EQ(sizes.sim, 0u);
    EXPECT_EQ(sizes.saturation, 0u);
    store.store_model(1, bits(0.1), make_entry(0.5));
  }
  // The rewritten file carries the new version and loads normally.
  DiskResultStore store(path_, kVersionB);
  EXPECT_FALSE(store.invalidated());
  EXPECT_EQ(store.loaded_records(), 1u);
  core::ModelEntry got;
  ASSERT_TRUE(store.load_model(1, bits(0.1), &got));
  EXPECT_EQ(bits(got.result.latency), bits(0.5));
}

TEST_F(DiskStoreTest, ForeignFileInvalidatesInsteadOfCrashing) {
  {
    std::ofstream f(path_, std::ios::binary);
    f << "this is not a kncube result store\n";
  }
  DiskResultStore store(path_, kVersionA);
  EXPECT_TRUE(store.invalidated());
  EXPECT_EQ(store.loaded_records(), 0u);
  store.store_model(1, bits(0.1), make_entry(0.1));
  DiskResultStore reopened(path_, kVersionA);
  EXPECT_FALSE(reopened.invalidated());
  EXPECT_EQ(reopened.loaded_records(), 1u);
}

TEST_F(DiskStoreTest, ClearEmptiesIndexAndFile) {
  {
    DiskResultStore store(path_, kVersionA);
    store.store_model(1, bits(0.1), make_entry(0.1));
    store.store_sim(1, bits(0.1), 7, make_sim(0.2));
    store.clear();
    const core::StoreSizes sizes = store.sizes();
    EXPECT_EQ(sizes.model, 0u);
    EXPECT_EQ(sizes.sim, 0u);
  }
  DiskResultStore store(path_, kVersionA);
  EXPECT_FALSE(store.invalidated());
  EXPECT_EQ(store.loaded_records(), 0u);
}

TEST_F(DiskStoreTest, DuplicateStoresAppendOnlyOneRecord) {
  {
    DiskResultStore store(path_, kVersionA);
    store.store_model(1, bits(0.1), make_entry(0.1));
    // A raced second writer of the same key must not bloat the file — and
    // must not replace the first entry (first write wins, like the memo).
    store.store_model(1, bits(0.1), make_entry(0.9));
  }
  DiskResultStore store(path_, kVersionA);
  EXPECT_EQ(store.loaded_records(), 1u);
  core::ModelEntry got;
  ASSERT_TRUE(store.load_model(1, bits(0.1), &got));
  EXPECT_EQ(bits(got.result.latency), bits(0.1));
}

// The acceptance pin: an engine restarted onto the same store file answers
// bit-identically to a cold in-process computation, without re-solving.
TEST_F(DiskStoreTest, EngineRestartServesBitIdenticalResultsWithoutResolving) {
  core::ScenarioSpec spec;
  spec.torus().k = 8;
  spec.message_length = 8;
  spec.hotspot().fraction = 0.3;
  spec.target_messages = 500;
  spec.warmup_cycles = 2000;
  spec.max_cycles = 300000;

  const double lambda = 2e-4;
  const std::uint64_t seed = 99;

  // Cold reference: a private in-memory engine, no disk involved.
  core::SweepEngine cold(spec);
  const model::ModelResult cold_model = cold.model_point(lambda);
  const sim::SimResult cold_sim = cold.sim_point(lambda, seed);

  {
    core::SweepEngine writer(spec,
                             std::make_shared<DiskResultStore>(path_, kVersionA));
    writer.model_point(lambda);
    writer.sim_point(lambda, seed);
    EXPECT_EQ(writer.cache_stats().model_solves, 1u);
  }

  // "Restart": a new process would do exactly this — fresh engine, reopened
  // file.
  core::SweepEngine restarted(
      spec, std::make_shared<DiskResultStore>(path_, kVersionA));
  const model::ModelResult warm_model = restarted.model_point(lambda);
  const sim::SimResult warm_sim = restarted.sim_point(lambda, seed);

  const core::CacheStats stats = restarted.cache_stats();
  EXPECT_EQ(stats.model_solves, 0u);
  EXPECT_EQ(stats.sim_runs, 0u);
  EXPECT_EQ(stats.model_hits, 1u);
  EXPECT_EQ(stats.sim_hits, 1u);

  EXPECT_EQ(bits(warm_model.latency), bits(cold_model.latency));
  EXPECT_EQ(bits(warm_model.regular_latency), bits(cold_model.regular_latency));
  EXPECT_EQ(bits(warm_model.hot_latency), bits(cold_model.hot_latency));
  EXPECT_EQ(warm_model.iterations, cold_model.iterations);
  EXPECT_EQ(bits(warm_sim.mean_latency), bits(cold_sim.mean_latency));
  EXPECT_EQ(bits(warm_sim.latency_ci95), bits(cold_sim.latency_ci95));
  EXPECT_EQ(warm_sim.measured_messages, cold_sim.measured_messages);
  EXPECT_EQ(warm_sim.cycles, cold_sim.cycles);
}

}  // namespace
}  // namespace kncube::service
