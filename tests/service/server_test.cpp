// Daemon end-to-end tests over a real Unix socket: a Server running on a
// background thread, the library Client for well-formed traffic, and a raw
// socket for malformed frames (the structured-ERROR satellite).
#include "service/server.hpp"

#include <gtest/gtest.h>
#include <pthread.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sweep_engine.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"

namespace kncube::service {
namespace {

std::uint64_t bits(double d) { return std::bit_cast<std::uint64_t>(d); }

core::ScenarioSpec quick_spec() {
  core::ScenarioSpec spec;
  spec.torus().k = 8;
  spec.message_length = 8;
  spec.hotspot().fraction = 0.3;
  spec.target_messages = 500;
  spec.warmup_cycles = 2000;
  spec.max_cycles = 300000;
  return spec;
}

/// Bare-socket peer for sending frames the Client cannot produce.
class RawConnection {
 public:
  explicit RawConnection(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ADD_FAILURE() << "raw connect failed";
    }
    read_line();  // consume the hello
  }
  ~RawConnection() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_line(const std::string& line) {
    const std::string out = line + "\n";
    ASSERT_EQ(::send(fd_, out.data(), out.size(), 0),
              static_cast<ssize_t>(out.size()));
  }

  std::string read_line() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ =
        std::string("server_test_") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        ".sock";
    std::filesystem::remove(socket_path_);
    ServerOptions options;
    options.socket_path = socket_path_;
    server_ = std::make_unique<Server>(std::move(options));
    server_->bind();
    thread_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    server_->stop();
    thread_.join();
    EXPECT_FALSE(std::filesystem::exists(socket_path_))
        << "drained shutdown must remove the socket file";
    server_.reset();
  }

  std::string socket_path_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
};

TEST_F(ServerTest, PingAndServerWideStats) {
  Client client(socket_path_);
  client.ping();
  const StatsMsg stats = client.server_stats();
  EXPECT_EQ(stats.id, "-");
  EXPECT_EQ(stats.engines, 0u);
  EXPECT_EQ(stats.store_kind, "memory");
}

TEST_F(ServerTest, ExplicitLambdasMatchALocalEngineBitwise) {
  const core::ScenarioSpec spec = quick_spec();
  const std::vector<double> lambdas = {2e-4, 3e-4};

  Client client(socket_path_);
  Request params;
  params.lambdas = lambdas;
  params.with_sim = false;
  const Client::SweepOutcome outcome = client.run(spec, params);

  EXPECT_EQ(outcome.begin.spec_key, spec.key());
  EXPECT_FALSE(outcome.begin.model_name.empty());
  ASSERT_EQ(outcome.points.size(), 2u);

  core::SweepEngine local(spec);
  for (std::size_t i = 0; i < lambdas.size(); ++i) {
    ASSERT_TRUE(outcome.points[i].has_model);
    EXPECT_FALSE(outcome.points[i].has_sim);
    EXPECT_EQ(bits(outcome.points[i].lambda), bits(lambdas[i]));
    const model::ModelResult reference = local.model_point(lambdas[i]);
    EXPECT_EQ(bits(outcome.points[i].model.latency), bits(reference.latency));
    EXPECT_EQ(outcome.points[i].model.iterations, reference.iterations);
  }
  EXPECT_EQ(outcome.stats.stats.model_solves, 2u);
}

TEST_F(ServerTest, RepeatedRequestsAnswerFromTheStore) {
  const core::ScenarioSpec spec = quick_spec();
  Client client(socket_path_);
  Request params;
  params.lambdas = {2e-4};
  params.with_sim = false;

  const auto first = client.run(spec, params);
  EXPECT_EQ(first.stats.stats.model_solves, 1u);
  EXPECT_EQ(first.stats.stats.model_hits, 0u);

  // Engine-cumulative stats: the repeat adds a hit, not a solve.
  const auto second = client.run(spec, params);
  EXPECT_EQ(second.stats.stats.model_solves, 1u);
  EXPECT_EQ(second.stats.stats.model_hits, 1u);
  ASSERT_EQ(second.points.size(), 1u);
  EXPECT_EQ(bits(second.points[0].model.latency),
            bits(first.points[0].model.latency));

  // One engine serves both connections of the same spec.
  EXPECT_EQ(server_->engine_count(), 1u);
  EXPECT_EQ(server_->requests_served(), 2u);
}

TEST_F(ServerTest, SweepRequestStreamsSaturationAndOrderedPoints) {
  Client client(socket_path_);
  Request params;
  params.points = 3;
  params.lo = 0.2;
  params.hi = 0.8;
  params.with_sim = false;
  const Client::SweepOutcome outcome = client.run(quick_spec(), params);

  ASSERT_TRUE(outcome.has_sweep);
  EXPECT_GT(outcome.sweep.saturation, 0.0);
  EXPECT_GT(outcome.sweep.probes, 0);
  ASSERT_EQ(outcome.points.size(), 3u);
  for (std::size_t i = 1; i < outcome.points.size(); ++i) {
    EXPECT_GT(outcome.points[i].lambda, outcome.points[i - 1].lambda);
  }
}

TEST_F(ServerTest, SimOnlySpecWithoutAnchorGetsAStructuredError) {
  core::ScenarioSpec spec = quick_spec();
  spec.torus().n = 3;  // no analytical model for n = 3 tori
  Client client(socket_path_);
  Request params;
  params.with_sim = false;
  try {
    client.run(spec, params);
    FAIL() << "expected a server error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("request.max_rate"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(ServerTest, MalformedFramesGetLineAnchoredErrorsWithoutDisconnect) {
  RawConnection raw(socket_path_);

  // Malformed spec value: parse_scenario's line anchor passes through, and
  // the request.* line above it still counts (blanked, not removed).
  raw.send_line("REQUEST r1");
  raw.send_line("request.sim=0");
  raw.send_line("topology.kind=torus");
  raw.send_line("topology.k=potato");
  raw.send_line("END");
  ErrorMsg err;
  ASSERT_TRUE(parse_error(raw.read_line(), &err));
  EXPECT_EQ(err.id, "r1");
  EXPECT_NE(err.message.find("line 3"), std::string::npos) << err.message;

  // Malformed request parameter, anchored to its own body line.
  raw.send_line("REQUEST r2");
  raw.send_line("request.points=zero");
  raw.send_line("END");
  ASSERT_TRUE(parse_error(raw.read_line(), &err));
  EXPECT_EQ(err.id, "r2");
  EXPECT_NE(err.message.find("line 1"), std::string::npos) << err.message;

  // Unknown commands and bare REQUEST lines answer with untied errors.
  raw.send_line("BOGUS");
  ASSERT_TRUE(parse_error(raw.read_line(), &err));
  EXPECT_EQ(err.id, "-");
  EXPECT_NE(err.message.find("unknown command"), std::string::npos);
  raw.send_line("REQUEST");
  ASSERT_TRUE(parse_error(raw.read_line(), &err));
  EXPECT_NE(err.message.find("id"), std::string::npos);

  // The connection survived all of it: a well-formed request still works.
  raw.send_line("PING");
  EXPECT_EQ(raw.read_line(), "PONG");
}

TEST_F(ServerTest, ClientSurvivesInterruptedSyscalls) {
  // A no-op handler installed *without* SA_RESTART makes every blocking
  // syscall on this thread fail with EINTR when the signal lands — the
  // Client's connect/send/recv paths must all retry instead of erroring out
  // (connect(2) in particular cannot be re-called after EINTR; the Client
  // completes it via poll + SO_ERROR).
  struct sigaction sa{};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  struct sigaction old{};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  std::atomic<bool> storming{true};
  const pthread_t victim = ::pthread_self();
  std::thread storm([&storming, victim] {
    while (storming.load(std::memory_order_relaxed)) {
      ::pthread_kill(victim, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  // Fresh connections hammer the connect + greeting-recv path; the sweep at
  // the end exercises a long multi-line streaming read under the same storm.
  const core::ScenarioSpec spec = quick_spec();
  for (int i = 0; i < 25; ++i) {
    Client client(socket_path_);
    client.ping();
  }
  {
    Client client(socket_path_);
    Request params;
    params.lambdas = {2e-4, 3e-4, 4e-4};
    params.with_sim = false;
    const Client::SweepOutcome outcome = client.run(spec, params);
    ASSERT_EQ(outcome.points.size(), 3u);
    for (const auto& pt : outcome.points) EXPECT_TRUE(pt.has_model);
  }

  storming.store(false, std::memory_order_relaxed);
  storm.join();
  ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);
}

TEST_F(ServerTest, StaleSocketFileIsReplacedOnBind) {
  // A dead daemon leaves its socket file behind; a new bind must reclaim
  // the path instead of failing. (The fixture's server owns socket_path_,
  // so exercise a second path.)
  const std::string stale = socket_path_ + ".stale";
  std::filesystem::remove(stale);
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, stale.c_str(), stale.size() + 1);
    ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    ::close(fd);  // closes without unlink: the file is now stale
  }
  ASSERT_TRUE(std::filesystem::exists(stale));

  ServerOptions options;
  options.socket_path = stale;
  Server second(std::move(options));
  EXPECT_NO_THROW(second.bind());
  std::thread t([&second] { second.run(); });
  {
    Client client(stale);
    client.ping();
  }
  second.stop();
  t.join();
  EXPECT_FALSE(std::filesystem::exists(stale));
}

TEST_F(ServerTest, BindRefusesALiveDaemonsSocket) {
  ServerOptions options;
  options.socket_path = socket_path_;  // the fixture's daemon is listening
  Server second(std::move(options));
  EXPECT_THROW(second.bind(), std::runtime_error);
  // The live daemon is unharmed.
  Client client(socket_path_);
  client.ping();
}

}  // namespace
}  // namespace kncube::service
