// Wire-protocol unit tests: value encodings are bit-exact, every message
// formats/parses back field-for-field, and malformed request frames produce
// line-anchored errors that line up with the frame body the client sent
// (the satellite-6 contract).
#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/scenario_spec.hpp"

namespace kncube::service {
namespace {

std::uint64_t bits(double d) { return std::bit_cast<std::uint64_t>(d); }

TEST(ProtocolValues, BitFormIsExactForAwkwardDoubles) {
  for (const double v : {0.1, 1.0 / 3.0, 2.3e-4, 6.02214076e23, 5e-324}) {
    double back = 0.0;
    ASSERT_TRUE(parse_rate(format_bits(v), &back)) << v;
    EXPECT_EQ(bits(back), bits(v));
  }
}

TEST(ProtocolValues, ParseRateAcceptsPlainDecimals) {
  double v = 0.0;
  EXPECT_TRUE(parse_rate("0.25", &v));
  EXPECT_EQ(v, 0.25);
  EXPECT_TRUE(parse_rate("2e-4", &v));
  EXPECT_EQ(v, 2e-4);
  EXPECT_FALSE(parse_rate("", &v));
  EXPECT_FALSE(parse_rate("fast", &v));
  EXPECT_FALSE(parse_rate("0.25x", &v));
}

TEST(ProtocolValues, HexStructRoundTripIsByteExact) {
  struct Blob {
    double a;
    std::uint64_t b;
    bool c;
  };
  Blob in{1.0 / 7.0, 0xDEADBEEFCAFEF00DULL, true};
  Blob out{};
  ASSERT_TRUE(decode_struct(encode_struct(in), &out));
  EXPECT_EQ(bits(out.a), bits(in.a));
  EXPECT_EQ(out.b, in.b);
  EXPECT_EQ(out.c, in.c);

  EXPECT_FALSE(decode_struct(encode_struct(in) + "00", &out));  // wrong size
  std::string bad = encode_struct(in);
  bad[3] = 'g';  // not a hex digit
  EXPECT_FALSE(decode_struct(bad, &out));
}

TEST(ProtocolRequest, ExplicitLambdasRoundTripBitExact) {
  Request in;
  in.id = "r7";
  in.spec_text = "topology.k=8\n";
  in.lambdas = {1.0 / 3.0, 2e-4};
  in.with_sim = false;
  const Request out = parse_request_body("r7", format_request_body(in));
  EXPECT_EQ(out.id, "r7");
  ASSERT_EQ(out.lambdas.size(), 2u);
  EXPECT_EQ(bits(out.lambdas[0]), bits(in.lambdas[0]));
  EXPECT_EQ(bits(out.lambdas[1]), bits(in.lambdas[1]));
  EXPECT_FALSE(out.with_sim);
  // The spec text survives with request.* lines blanked, not removed.
  EXPECT_NE(out.spec_text.find("topology.k=8"), std::string::npos);
}

TEST(ProtocolRequest, SweepParametersRoundTripBitExact) {
  Request in;
  in.spec_text = "topology.k=8\n";
  in.points = 5;
  in.lo = 0.15;
  in.hi = 0.9;
  in.max_rate = 1.0 / 7.0;
  const Request out = parse_request_body("s", format_request_body(in));
  EXPECT_TRUE(out.lambdas.empty());
  EXPECT_EQ(out.points, 5);
  EXPECT_EQ(bits(out.lo), bits(in.lo));
  EXPECT_EQ(bits(out.hi), bits(in.hi));
  EXPECT_EQ(bits(out.max_rate), bits(in.max_rate));
  EXPECT_TRUE(out.with_sim);
}

TEST(ProtocolRequest, BlankedParamLinesKeepSpecLineNumbersAligned) {
  // Frame body as the client sent it: the spec error is on body line 3, and
  // the request.* line in the middle must not shift it.
  const std::vector<std::string> body = {
      "topology.kind=torus",        // line 1
      "request.sim=1",              // line 2 (blanked in the spec text)
      "topology.k=potato",          // line 3: malformed spec value
  };
  const Request req = parse_request_body("x", body);
  try {
    core::parse_scenario(req.spec_text);
    FAIL() << "expected parse_scenario to reject line 3";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(ProtocolRequest, MalformedParametersAreLineAnchored) {
  const auto expect_line = [](const std::vector<std::string>& body,
                              const std::string& anchor) {
    try {
      parse_request_body("x", body);
      FAIL() << "expected invalid_argument for " << body.back();
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(anchor), std::string::npos)
          << e.what();
    }
  };
  expect_line({"topology.k=8", "request.points=zero"}, "line 2");
  expect_line({"request.lambdas=0.1,-0.5"}, "line 1");
  expect_line({"request.lambdas="}, "line 1");
  expect_line({"topology.k=8", "", "request.sim=maybe"}, "line 3");
  expect_line({"request.burst=9"}, "unknown request parameter");
  expect_line({"request.points"}, "expected request.key=value");
}

TEST(ProtocolMessages, HelloRoundTrips) {
  Hello h;
  ASSERT_TRUE(parse_hello(format_hello(0xABCDEF0123456789ULL), &h));
  EXPECT_EQ(h.protocol, kProtocolVersion);
  EXPECT_EQ(h.version, 0xABCDEF0123456789ULL);
  EXPECT_FALSE(parse_hello("HTTP/1.1 200 OK", &h));
}

TEST(ProtocolMessages, BeginRoundTripsWithAndWithoutReason) {
  BeginMsg in;
  in.id = "r1";
  in.spec_key = 0x1234;
  in.model_name = "hotspot-torus";
  BeginMsg out;
  ASSERT_TRUE(parse_begin(format_begin(in), &out));
  EXPECT_EQ(out.id, "r1");
  EXPECT_EQ(out.spec_key, 0x1234u);
  EXPECT_EQ(out.model_name, "hotspot-torus");
  EXPECT_TRUE(out.reason.empty());

  BeginMsg sim_only;
  sim_only.id = "r2";
  sim_only.spec_key = 9;
  sim_only.reason = "no analytical model for n = 3 tori";
  BeginMsg out2;
  ASSERT_TRUE(parse_begin(format_begin(sim_only), &out2));
  EXPECT_TRUE(out2.model_name.empty());
  EXPECT_EQ(out2.reason, "no analytical model for n = 3 tori");
}

TEST(ProtocolMessages, SweepRoundTripsBitExact) {
  SweepMsg in;
  in.id = "r1";
  in.saturation = 0.00217983;
  in.probes = 12;
  SweepMsg out;
  ASSERT_TRUE(parse_sweep(format_sweep(in), &out));
  EXPECT_EQ(bits(out.saturation), bits(in.saturation));
  EXPECT_EQ(out.probes, 12);
}

TEST(ProtocolMessages, PointRoundTripsResultStructsBitExact) {
  PointMsg in;
  in.id = "r1";
  in.index = 3;
  in.point.lambda = 1.0 / 3.0;
  in.point.has_model = true;
  in.point.model.latency = 40.622e0 / 7.0;
  in.point.model.saturated = false;
  in.point.model.iterations = 13;
  in.point.has_sim = true;
  in.point.sim.mean_latency = 56.252 / 3.0;
  in.point.sim.measured_messages = 4321;
  in.point.sim.steady = true;

  PointMsg out;
  ASSERT_TRUE(parse_point(format_point(in), &out));
  EXPECT_EQ(out.index, 3u);
  EXPECT_EQ(bits(out.point.lambda), bits(in.point.lambda));
  ASSERT_TRUE(out.point.has_model);
  EXPECT_EQ(bits(out.point.model.latency), bits(in.point.model.latency));
  EXPECT_EQ(out.point.model.iterations, 13);
  ASSERT_TRUE(out.point.has_sim);
  EXPECT_EQ(bits(out.point.sim.mean_latency), bits(in.point.sim.mean_latency));
  EXPECT_EQ(out.point.sim.measured_messages, 4321u);
  EXPECT_TRUE(out.point.sim.steady);
}

TEST(ProtocolMessages, PointCarriesAbsentSidesAsDashes) {
  PointMsg in;
  in.id = "r1";
  in.index = 0;
  in.point.lambda = 2e-4;
  in.point.has_model = false;
  in.point.has_sim = false;
  PointMsg out;
  ASSERT_TRUE(parse_point(format_point(in), &out));
  EXPECT_FALSE(out.point.has_model);
  EXPECT_FALSE(out.point.has_sim);
}

TEST(ProtocolMessages, StatsRoundTripsBothShapes) {
  StatsMsg per_request;
  per_request.id = "r1";
  per_request.stats.model_hits = 4;
  per_request.stats.model_solves = 2;
  per_request.stats.inflight_waits = 1;
  StatsMsg out;
  ASSERT_TRUE(parse_stats(format_stats(per_request), &out));
  EXPECT_EQ(out.id, "r1");
  EXPECT_EQ(out.stats.model_hits, 4u);
  EXPECT_EQ(out.stats.model_solves, 2u);
  EXPECT_EQ(out.stats.inflight_waits, 1u);
  EXPECT_TRUE(out.store_kind.empty());

  StatsMsg server_wide;
  server_wide.id = "-";
  server_wide.engines = 3;
  server_wide.store_kind = "disk";
  server_wide.stats.sim_runs = 8;
  StatsMsg out2;
  ASSERT_TRUE(parse_stats(format_stats(server_wide), &out2));
  EXPECT_EQ(out2.engines, 3u);
  EXPECT_EQ(out2.store_kind, "disk");
  EXPECT_EQ(out2.stats.sim_runs, 8u);
}

TEST(ProtocolMessages, DoneAndErrorRoundTrip) {
  DoneMsg done;
  ASSERT_TRUE(parse_done(format_done({"r9", 17}), &done));
  EXPECT_EQ(done.id, "r9");
  EXPECT_EQ(done.points, 17u);

  ErrorMsg err;
  ASSERT_TRUE(parse_error(format_error("r2", "line 3: bad value\ntry again"),
                          &err));
  EXPECT_EQ(err.id, "r2");
  EXPECT_EQ(err.message, "line 3: bad value; try again");
  // Untied errors get the "-" id.
  ASSERT_TRUE(parse_error(format_error("", "unknown command 'BOGUS'"), &err));
  EXPECT_EQ(err.id, "-");
}

TEST(ProtocolMessages, ParsersRejectForeignLines) {
  BeginMsg b;
  SweepMsg s;
  PointMsg p;
  StatsMsg st;
  DoneMsg d;
  ErrorMsg e;
  const std::string point = format_point(PointMsg{});
  EXPECT_FALSE(parse_begin(point, &b));
  EXPECT_FALSE(parse_sweep(point, &s));
  EXPECT_FALSE(parse_stats(point, &st));
  EXPECT_FALSE(parse_done(point, &d));
  EXPECT_FALSE(parse_error(point, &e));
  EXPECT_FALSE(parse_point("POINT id=x index=0", &p));  // missing fields
  EXPECT_FALSE(parse_point("", &p));
}

}  // namespace
}  // namespace kncube::service
