// Property tests for the sharded cycle engine (DESIGN.md §9).
//
// The contract under test: for ANY simulator configuration, running
// Network::step with sim_threads = N is bit-identical to the serial
// schedule — same counters, same channel statistics, same latency
// accumulator bits, same incremental occupancy. The determinism goldens pin
// a handful of curated configs against recorded values; this file instead
// draws random configurations and compares sharded runs against a serial
// run of the same config, so partition-boundary effects that a curated shape
// misses (odd router counts, shard edges through the hot column, ...) still
// get coverage. Also exercises ThreadTeam / SpinBarrier directly.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "util/thread_pool.hpp"

namespace kncube::sim {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// FNV-1a over the integer channel statistics of every (router, port).
std::uint64_t channel_stats_checksum(const Network& net) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (topo::NodeId id = 0; id < net.size(); ++id) {
    const Router& r = net.router(id);
    for (int p = 0; p < r.network_ports(); ++p) {
      const auto& op = r.output_port(p);
      mix(op.flits_sent);
      mix(op.busy_vc_cycles);
      mix(op.busy_vc_sq_cycles);
      mix(op.busy_cycles);
      mix(op.stat_cycles);
    }
  }
  return h;
}

/// Everything a run observably produces, with doubles captured as raw bits.
struct Observation {
  std::uint64_t generated, delivered, flits, injected;
  std::uint64_t inflight, backlog, checksum;
  std::uint64_t latency_bits, net_latency_bits, source_wait_bits;
};

Observation observe(const SimConfig& cfg, int sim_threads, std::uint64_t cycles) {
  SimConfig tcfg = cfg;
  tcfg.sim_threads = sim_threads;
  Simulator sim(tcfg);
  sim.metrics().begin_measurement(0);
  sim.step_cycles(cycles);
  const Network& net = sim.network();
  Observation o;
  o.generated = sim.metrics().generated_total();
  o.delivered = sim.metrics().delivered_total();
  o.flits = sim.metrics().flits_delivered();
  o.injected = sim.metrics().injected_total();
  o.inflight = net.inflight_flits();
  o.backlog = net.source_backlog();
  o.checksum = channel_stats_checksum(net);
  o.latency_bits = bits(sim.metrics().latency().mean());
  o.net_latency_bits = bits(sim.metrics().network_latency().mean());
  o.source_wait_bits = bits(sim.metrics().source_wait().mean());
  return o;
}

void expect_identical(const Observation& a, const Observation& b, int threads,
                      const std::string& what) {
  EXPECT_EQ(a.generated, b.generated) << what << " T=" << threads;
  EXPECT_EQ(a.delivered, b.delivered) << what << " T=" << threads;
  EXPECT_EQ(a.flits, b.flits) << what << " T=" << threads;
  EXPECT_EQ(a.injected, b.injected) << what << " T=" << threads;
  EXPECT_EQ(a.inflight, b.inflight) << what << " T=" << threads;
  EXPECT_EQ(a.backlog, b.backlog) << what << " T=" << threads;
  EXPECT_EQ(a.checksum, b.checksum) << what << " T=" << threads;
  EXPECT_EQ(a.latency_bits, b.latency_bits) << what << " T=" << threads;
  EXPECT_EQ(a.net_latency_bits, b.net_latency_bits) << what << " T=" << threads;
  EXPECT_EQ(a.source_wait_bits, b.source_wait_bits) << what << " T=" << threads;
}

TEST(ShardedStep, RandomConfigsBitIdenticalAcrossThreadCounts) {
  // Fixed-seed random draw over the config space the simulator supports.
  // T = 3 deliberately does not divide most router counts, so shard
  // boundaries land at uneven offsets.
  std::mt19937_64 rng(0x5EED5EEDULL);
  const auto pick = [&rng](int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };
  for (int trial = 0; trial < 8; ++trial) {
    SimConfig cfg;
    const bool mesh = pick(0, 1) == 1;
    cfg.mesh = mesh;
    cfg.bidirectional = mesh ? false : pick(0, 1) == 1;
    cfg.n = pick(1, 3);
    cfg.k = cfg.n == 3 ? pick(3, 5) : pick(4, 9);
    cfg.vcs = (mesh || cfg.bidirectional || cfg.k == 2) ? pick(1, 4) : pick(2, 4);
    cfg.buffer_depth = pick(1, 4);
    cfg.message_length = pick(1, 24);
    const int pat = pick(0, 2);
    if (pat == 0) {
      cfg.pattern = Pattern::kHotspot;
      cfg.hot_fraction = 0.05 * pick(1, 6);
    } else {
      cfg.pattern = Pattern::kUniform;
    }
    if (pick(0, 3) == 0) cfg.arrivals = Arrivals::kMmpp;
    cfg.injection_rate = 1e-3 * pick(1, 6) / cfg.message_length * 4.0;
    cfg.seed = rng();
    const std::uint64_t cycles = 1500;

    SCOPED_TRACE("trial " + std::to_string(trial) + " k=" + std::to_string(cfg.k) +
                 " n=" + std::to_string(cfg.n) + " mesh=" + std::to_string(mesh));
    const Observation serial = observe(cfg, 1, cycles);
    for (const int threads : {2, 3}) {
      expect_identical(serial, observe(cfg, threads, cycles),
                       threads, "trial " + std::to_string(trial));
    }
  }
}

TEST(ShardedStep, FullRunProtocolBitIdenticalSharded) {
  // run() (warm-up + steady-state measurement + anchored stop polling) on a
  // k = 16 torus: the thread count must not shift a single stop decision.
  SimConfig cfg;
  cfg.k = 16;
  cfg.n = 2;
  cfg.vcs = 2;
  cfg.buffer_depth = 2;
  cfg.message_length = 16;
  cfg.pattern = Pattern::kHotspot;
  cfg.hot_fraction = 0.15;
  cfg.injection_rate = 8e-4;
  cfg.seed = 0x7EA4;
  cfg.warmup_cycles = 1500;
  cfg.target_messages = 600;
  cfg.max_cycles = 200000;

  SimResult serial;
  {
    Simulator sim(cfg);
    serial = sim.run();
  }
  for (const int threads : {2, 4}) {
    SimConfig tcfg = cfg;
    tcfg.sim_threads = threads;
    Simulator sim(tcfg);
    const SimResult res = sim.run();
    EXPECT_EQ(res.cycles, serial.cycles) << "T=" << threads;
    EXPECT_EQ(res.measured_messages, serial.measured_messages) << "T=" << threads;
    EXPECT_EQ(bits(res.mean_latency), bits(serial.mean_latency)) << "T=" << threads;
    EXPECT_EQ(bits(res.p95_latency), bits(serial.p95_latency)) << "T=" << threads;
    EXPECT_EQ(bits(res.accepted_load), bits(serial.accepted_load)) << "T=" << threads;
    EXPECT_EQ(bits(res.hot_channel_utilization),
              bits(serial.hot_channel_utilization))
        << "T=" << threads;
  }
}

TEST(ShardedStep, ShardCountResolution) {
  // sim_threads resolves against network size: every shard keeps >= 16
  // routers, tiny networks stay serial, and 0 maps to hardware concurrency
  // (>= 1 shard whatever the box reports).
  const auto shards_for = [](int k, int n, int threads) {
    SimConfig cfg;
    cfg.k = k;
    cfg.n = n;
    cfg.vcs = 2;
    cfg.sim_threads = threads;
    return Network(cfg).shard_count();
  };
  EXPECT_EQ(shards_for(4, 2, 4), 1u);   // 16 routers: serial
  EXPECT_EQ(shards_for(8, 2, 4), 4u);   // 64 routers: 4 x 16
  EXPECT_EQ(shards_for(8, 2, 8), 4u);   // capped at size/16
  EXPECT_EQ(shards_for(32, 2, 4), 4u);  // 1024 routers: plenty of room
  EXPECT_EQ(shards_for(8, 2, 1), 1u);
  EXPECT_GE(shards_for(32, 2, 0), 1u);  // hardware concurrency, clamped
}

TEST(ShardedStep, ClampIsSurfacedNotSilent) {
  // The size/16 clamp must be visible: the network reports both sides of the
  // resolution, and a full run carries them into SimResult. Probe exactly at
  // the clamp edge — 64 routers cap at 4 shards, so threads=4 is honoured
  // verbatim while threads=5 is the first clamped request.
  const auto resolution = [](int k, int threads) {
    SimConfig cfg;
    cfg.k = k;
    cfg.n = 2;
    cfg.vcs = 2;
    cfg.sim_threads = threads;
    const Network net(cfg);
    return std::make_pair(net.shard_count(), net.requested_shard_count());
  };
  const auto at_edge = resolution(8, 4);
  EXPECT_EQ(at_edge.first, 4u);   // honoured verbatim
  EXPECT_EQ(at_edge.second, 4u);
  const auto past_edge = resolution(8, 5);
  EXPECT_EQ(past_edge.first, 4u);  // first clamped request
  EXPECT_EQ(past_edge.second, 5u);
  const auto tiny = resolution(4, 4);
  EXPECT_EQ(tiny.first, 1u);  // 16 routers: serial
  EXPECT_EQ(tiny.second, 4u);

  SimConfig cfg;
  cfg.k = 4;
  cfg.n = 2;
  cfg.vcs = 2;
  cfg.buffer_depth = 2;
  cfg.message_length = 8;
  cfg.injection_rate = 1e-3;
  cfg.sim_threads = 4;  // 16 routers: clamps to a serial run
  cfg.warmup_cycles = 50;
  cfg.target_messages = 5;
  cfg.max_cycles = 5000;
  Simulator sim(cfg);
  const SimResult res = sim.run();
  EXPECT_EQ(res.sim_shards, 1u);
  EXPECT_EQ(res.sim_shards_requested, 4u);
}

TEST(ShardedStep, IncrementalOccupancyMatchesScan) {
  // inflight_flits()/source_backlog() are O(1) counters; check them against
  // a manual per-router scan at several points of a sharded run (debug
  // builds also self-check via KNC_DEBUG_ASSERT on every call).
  SimConfig cfg;
  cfg.k = 8;
  cfg.n = 2;
  cfg.vcs = 2;
  cfg.buffer_depth = 2;
  cfg.message_length = 8;
  cfg.pattern = Pattern::kHotspot;
  cfg.hot_fraction = 0.2;
  cfg.injection_rate = 4e-3;
  cfg.seed = 0x0CC;
  cfg.sim_threads = 4;

  Simulator sim(cfg);
  for (int chunk = 0; chunk < 5; ++chunk) {
    sim.step_cycles(400);
    const Network& net = sim.network();
    std::uint64_t scan_inflight = 0;
    std::uint64_t scan_backlog = 0;
    for (topo::NodeId id = 0; id < net.size(); ++id) {
      scan_inflight += net.router(id).buffered_flits();
      scan_backlog += net.router(id).source_queue_length();
    }
    EXPECT_EQ(net.inflight_flits(), scan_inflight) << "chunk " << chunk;
    EXPECT_EQ(net.source_backlog(), scan_backlog) << "chunk " << chunk;
  }
}

TEST(ShardedStep, ThreadTeamRunsEveryMemberEachRound) {
  util::ThreadTeam team(4);
  ASSERT_EQ(team.members(), 4u);
  std::vector<std::atomic<int>> hits(4);
  for (int round = 0; round < 200; ++round) {
    team.run([&hits](std::size_t m) {
      hits[m].fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (std::size_t m = 0; m < 4; ++m) {
    EXPECT_EQ(hits[m].load(), 200) << "member " << m;
  }
}

TEST(ShardedStep, SpinBarrierSynchronisesPhases) {
  // Each member bumps a per-phase counter and then waits; after the barrier
  // every member must observe the full count of the phase it just left.
  constexpr std::size_t kMembers = 3;
  constexpr int kPhases = 50;
  util::ThreadTeam team(kMembers);
  util::SpinBarrier barrier(kMembers);
  std::vector<std::atomic<int>> phase_counts(kPhases);
  std::atomic<int> violations{0};
  team.run([&](std::size_t) {
    for (int ph = 0; ph < kPhases; ++ph) {
      phase_counts[ph].fetch_add(1, std::memory_order_relaxed);
      barrier.arrive_and_wait();
      if (phase_counts[ph].load(std::memory_order_relaxed) !=
          static_cast<int>(kMembers)) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(violations.load(), 0);
}

}  // namespace
}  // namespace kncube::sim
