// Deadlock freedom and conservation under stress. The dateline VC classes
// plus dimension-order routing must guarantee progress at any load; these
// tests drive the network far beyond saturation and assert both progress
// (deliveries keep happening) and full drainage of finite workloads.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace kncube::sim {
namespace {

SimConfig stress_config(int k, int vcs, int buffer_depth, int lm) {
  SimConfig cfg;
  cfg.k = k;
  cfg.n = 2;
  cfg.vcs = vcs;
  cfg.buffer_depth = buffer_depth;
  cfg.message_length = lm;
  cfg.injection_rate = 0.0;
  return cfg;
}

/// Injects `count` random messages and asserts the network drains fully.
void drain_test(SimConfig cfg, std::uint64_t count, std::uint64_t seed,
                bool all_to_one) {
  Simulator sim(cfg);
  sim.metrics().begin_measurement(0);
  util::Xoshiro256 rng(seed);
  const topo::NodeId n = sim.network().size();
  const topo::NodeId sink = n / 2;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto src = static_cast<topo::NodeId>(rng.uniform_below(n));
    topo::NodeId dest;
    if (all_to_one) {
      dest = src == sink ? (sink + 1) % n : sink;
    } else {
      dest = static_cast<topo::NodeId>(rng.uniform_below(n - 1));
      if (dest >= src) ++dest;
    }
    sim.inject_now(src, dest);
  }
  // Generous cap: full serialisation of every flit through one channel.
  const std::uint64_t cap =
      count * static_cast<std::uint64_t>(cfg.message_length) * 4 + 50000;
  while (sim.metrics().delivered_total() < count && sim.current_cycle() < cap) {
    sim.step_cycles(64);
  }
  EXPECT_EQ(sim.metrics().delivered_total(), count) << "network failed to drain";
  EXPECT_EQ(sim.network().inflight_flits(), 0u);
  EXPECT_EQ(sim.network().source_backlog(), 0u);
  EXPECT_EQ(sim.metrics().flits_delivered(),
            count * static_cast<std::uint64_t>(cfg.message_length));
}

TEST(Deadlock, RandomBurstDrains) {
  drain_test(stress_config(4, 2, 2, 8), 400, 17, false);
}

TEST(Deadlock, RandomBurstDrainsWithSingleFlitBuffers) {
  drain_test(stress_config(4, 2, 1, 8), 300, 23, false);
}

TEST(Deadlock, AllToOneDrains) {
  drain_test(stress_config(4, 2, 2, 8), 300, 29, true);
}

TEST(Deadlock, AllToOneDrainsLongMessages) {
  drain_test(stress_config(4, 2, 2, 64), 80, 31, true);
}

TEST(Deadlock, LargerRadixDrains) { drain_test(stress_config(8, 2, 2, 16), 400, 37, false); }

TEST(Deadlock, ManyVcsDrain) { drain_test(stress_config(4, 6, 2, 8), 400, 41, false); }

TEST(Deadlock, ThreeDimensionsDrain) {
  SimConfig cfg = stress_config(4, 2, 2, 8);
  cfg.n = 3;
  drain_test(cfg, 500, 43, false);
}

TEST(Deadlock, BidirectionalDrains) {
  SimConfig cfg = stress_config(6, 2, 2, 8);
  cfg.bidirectional = true;
  drain_test(cfg, 400, 47, false);
}

TEST(Deadlock, SustainedOverloadKeepsMakingProgress) {
  // 3x the saturation load, continuously injected: deliveries must keep
  // growing between checkpoints (no global stall), even though queues grow.
  SimConfig cfg;
  cfg.k = 8;
  cfg.n = 2;
  cfg.vcs = 2;
  cfg.buffer_depth = 2;
  cfg.message_length = 16;
  cfg.pattern = Pattern::kHotspot;
  cfg.hot_fraction = 0.5;
  cfg.injection_rate = 0.02;  // far beyond saturation
  cfg.seed = 99;
  Simulator sim(cfg);
  sim.metrics().begin_measurement(0);
  std::uint64_t last = 0;
  for (int checkpoint = 0; checkpoint < 10; ++checkpoint) {
    sim.step_cycles(2000);
    const std::uint64_t now = sim.metrics().delivered_total();
    EXPECT_GT(now, last) << "no progress in checkpoint " << checkpoint;
    last = now;
  }
  // The bottleneck channel should be essentially fully utilised.
  const topo::KAryNCube& net = sim.network().topology();
  const topo::NodeId hot = cfg.resolved_hot_node();
  const topo::NodeId up = net.neighbor(hot, 1, topo::Direction::kMinus);
  EXPECT_GT(sim.network().channel_utilization(up, 1, topo::Direction::kPlus), 0.9);
}

}  // namespace
}  // namespace kncube::sim
