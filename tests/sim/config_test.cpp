#include "sim/config.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace kncube::sim {
namespace {

SimConfig valid_config() {
  SimConfig cfg;
  cfg.k = 8;
  cfg.n = 2;
  cfg.vcs = 2;
  cfg.message_length = 16;
  cfg.injection_rate = 1e-3;
  return cfg;
}

TEST(SimConfig, DefaultIsValid) {
  EXPECT_NO_THROW(SimConfig{}.validate());
  EXPECT_NO_THROW(valid_config().validate());
}

struct BadCase {
  const char* name;
  std::function<void(SimConfig&)> mutate;
};

class SimConfigValidation : public ::testing::TestWithParam<BadCase> {};

TEST_P(SimConfigValidation, Rejects) {
  SimConfig cfg = valid_config();
  GetParam().mutate(cfg);
  EXPECT_THROW(cfg.validate(), std::invalid_argument) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    BadConfigs, SimConfigValidation,
    ::testing::Values(
        BadCase{"radix_too_small", [](SimConfig& c) { c.k = 1; }},
        BadCase{"dims_zero", [](SimConfig& c) { c.n = 0; }},
        BadCase{"dims_too_many", [](SimConfig& c) { c.n = 99; }},
        BadCase{"no_vcs", [](SimConfig& c) { c.vcs = 0; }},
        BadCase{"single_vc_unidirectional",
                [](SimConfig& c) {
                  c.vcs = 1;  // deadlock-prone on rings with k > 2
                }},
        BadCase{"zero_buffer", [](SimConfig& c) { c.buffer_depth = 0; }},
        BadCase{"zero_length", [](SimConfig& c) { c.message_length = 0; }},
        BadCase{"negative_rate", [](SimConfig& c) { c.injection_rate = -0.1; }},
        BadCase{"rate_above_one", [](SimConfig& c) { c.injection_rate = 1.5; }},
        BadCase{"bad_hot_fraction",
                [](SimConfig& c) {
                  c.pattern = Pattern::kHotspot;
                  c.hot_fraction = 1.2;
                }},
        BadCase{"hot_node_outside", [](SimConfig& c) { c.hot_node = 1 << 20; }},
        BadCase{"transpose_needs_2d",
                [](SimConfig& c) {
                  c.pattern = Pattern::kTranspose;
                  c.n = 3;
                }},
        BadCase{"mmpp_zero_enter",
                [](SimConfig& c) {
                  c.arrivals = Arrivals::kMmpp;
                  c.mmpp.p_enter_burst = 0.0;
                }},
        BadCase{"mmpp_enter_above_one",
                [](SimConfig& c) {
                  c.arrivals = Arrivals::kMmpp;
                  c.mmpp.p_enter_burst = 1.5;
                }},
        BadCase{"mmpp_negative_leave",
                [](SimConfig& c) {
                  c.arrivals = Arrivals::kMmpp;
                  c.mmpp.p_leave_burst = -0.1;
                }},
        BadCase{"mmpp_multiplier_below_one",
                [](SimConfig& c) {
                  c.arrivals = Arrivals::kMmpp;
                  c.mmpp.burst_rate_multiplier = 0.5;
                }},
        BadCase{"hot_node_one_past_end",
                [](SimConfig& c) { c.hot_node = 8 * 8; }},
        BadCase{"zero_batch", [](SimConfig& c) { c.batch_size = 0; }},
        BadCase{"bad_tolerance", [](SimConfig& c) { c.steady_rel_tol = 0.0; }},
        BadCase{"warmup_swallows_budget",
                [](SimConfig& c) { c.max_cycles = c.warmup_cycles; }}),
    [](const ::testing::TestParamInfo<BadCase>& param_info) {
      return param_info.param.name;
    });

TEST(SimConfig, SingleVcAllowedOnK2) {
  SimConfig cfg = valid_config();
  cfg.k = 2;
  cfg.vcs = 1;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(SimConfig, ResolvedHotNodeDefaultsToCentre) {
  SimConfig cfg = valid_config();  // k=8
  cfg.hot_node = -1;
  const topo::KAryNCube net(cfg.k, cfg.n);
  const topo::NodeId hot = cfg.resolved_hot_node();
  EXPECT_EQ(net.coord(hot, 0), 4);
  EXPECT_EQ(net.coord(hot, 1), 4);
}

TEST(SimConfig, ResolvedHotNodeMatchesTopologyAcrossShapes) {
  // The centre id is computed arithmetically (no KAryNCube construction);
  // it must agree with the topology's addressing for every shape, including
  // odd radices, k = 2 hypercube mode and higher dimensions.
  for (const auto& [k, n] : std::vector<std::pair<int, int>>{
           {2, 1}, {2, 6}, {3, 3}, {5, 2}, {8, 3}, {16, 2}, {4, 4}}) {
    SimConfig cfg;
    cfg.k = k;
    cfg.n = n;
    cfg.hot_node = -1;
    const topo::KAryNCube net(k, n);
    topo::Coords c{};
    for (int d = 0; d < n; ++d) c[static_cast<std::size_t>(d)] = k / 2;
    EXPECT_EQ(cfg.resolved_hot_node(), net.node_at(c)) << "k=" << k << " n=" << n;
  }
}

TEST(SimConfig, ResolvedHotNodeHonoursExplicitChoice) {
  SimConfig cfg = valid_config();
  cfg.hot_node = 11;
  EXPECT_EQ(cfg.resolved_hot_node(), 11u);
}

}  // namespace
}  // namespace kncube::sim
