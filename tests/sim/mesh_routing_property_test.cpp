// Property tests for mesh routing, randomized over the ScenarioSpec space.
//
// On a k-ary n-mesh, dimension-order routing has exactly one minimal path
// per (src, dst) pair and no wrap-around links to take: every routed message
// must traverse exactly the Manhattan-distance hop count and never cross a
// wrap link. The matching torus (same k, n) can only shorten rides — its
// wrap links add shortcuts — giving a metamorphic cross-topology check that
// needs no golden values. Both properties are checked on the topology the
// *simulator* routes with (to_sim_config -> Network), not a hand-built one,
// so the spec plumbing is under test too.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>

#include "core/scenario_spec.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace kncube::sim {
namespace {

int manhattan(const topo::KAryNCube& net, topo::NodeId s, topo::NodeId t) {
  int dist = 0;
  for (int d = 0; d < net.dims(); ++d) {
    dist += std::abs(net.coord(s, d) - net.coord(t, d));
  }
  return dist;
}

TEST(MeshRoutingProperty, RoutesAreManhattanMinimalAndNeverWrap) {
  std::mt19937_64 rng(0x4D455348);  // deterministic: "MESH"
  for (int trial = 0; trial < 40; ++trial) {
    core::ScenarioSpec spec;
    const int n = 1 + static_cast<int>(rng() % 3);
    // Keep k^n small enough to sample densely (<= 512 nodes).
    const int max_k = n == 1 ? 32 : (n == 2 ? 16 : 8);
    const int k = 2 + static_cast<int>(rng() % (max_k - 1));
    spec.topology = core::MeshTopology{k, n};
    spec.traffic = core::UniformTraffic{};
    spec.vcs = 1 + static_cast<int>(rng() % 3);  // V = 1 is legal on a mesh
    spec.validate();

    const Network net(core::to_sim_config(spec, 1e-3));
    const topo::KAryNCube& mesh = net.topology();
    ASSERT_TRUE(mesh.mesh());

    const topo::KAryNCube torus(k, n, /*bidirectional=*/true);

    std::uniform_int_distribution<topo::NodeId> node(0, mesh.size() - 1);
    for (int pair = 0; pair < 200; ++pair) {
      const topo::NodeId s = node(rng);
      const topo::NodeId t = node(rng);
      if (s == t) continue;
      const int dist = manhattan(mesh, s, t);
      EXPECT_EQ(mesh.hops(s, t), dist) << "k=" << k << " n=" << n;
      const auto path = mesh.route(s, t);
      EXPECT_EQ(static_cast<int>(path.size()), dist) << "k=" << k << " n=" << n;
      topo::NodeId cur = s;
      for (const topo::Hop& hop : path) {
        EXPECT_EQ(hop.from, cur);
        EXPECT_FALSE(hop.wraps) << "mesh route crossed a wrap link";
        EXPECT_FALSE(mesh.is_wrap_link(hop.from, hop.dim, hop.dir));
        EXPECT_TRUE(mesh.link_exists(hop.from, hop.dim, hop.dir));
        cur = hop.to;
      }
      EXPECT_EQ(cur, t);
      // Metamorphic: wrap links only ever shorten the ride.
      EXPECT_LE(torus.hops(s, t), dist) << "k=" << k << " n=" << n;
    }
  }
}

TEST(MeshRoutingProperty, DeliveredMeshMessagesMatchManhattanAtZeroLoad) {
  // End-to-end through the router pipeline: at near-zero load a message
  // faces no contention, so its network latency is exactly
  // hops + Lm - 1 + 1 (the injection crossing). Sampled via the simulator's
  // min network latency over a short run on random mesh shapes.
  std::mt19937_64 rng(0xA11CE);
  for (int trial = 0; trial < 5; ++trial) {
    core::ScenarioSpec spec;
    const int n = 1 + static_cast<int>(rng() % 2);
    const int k = 3 + static_cast<int>(rng() % 6);
    spec.topology = core::MeshTopology{k, n};
    spec.traffic = core::UniformTraffic{};
    spec.message_length = 4;
    spec.seed = rng();
    spec.warmup_cycles = 0;
    spec.target_messages = 50;
    spec.max_cycles = 200000;
    spec.validate();

    Simulator sim(core::to_sim_config(spec, 1e-4));
    sim.metrics().begin_measurement(0);
    sim.step_cycles(50000);
    ASSERT_GT(sim.metrics().delivered_total(), 0u) << "k=" << k << " n=" << n;
    // A contention-free message spends hops + Lm - 1 cycles in the network,
    // so the mean must sit inside [1 + Lm - 1, n(k-1) + Lm - 1] (plus a
    // whisker of queueing noise at the top) at this near-zero load.
    const double lm = spec.message_length;
    const double mean = sim.metrics().network_latency().mean();
    EXPECT_GE(mean, 1.0 + lm - 1.0) << "k=" << k << " n=" << n;
    EXPECT_LE(mean, n * (k - 1) + lm - 1.0 + 2.0) << "k=" << k << " n=" << n;
  }
}

}  // namespace
}  // namespace kncube::sim
