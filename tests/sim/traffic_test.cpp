#include "sim/traffic.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.hpp"

namespace kncube::sim {
namespace {

TEST(UniformTraffic, NeverPicksSelfAndCoversAll) {
  UniformTraffic pattern(16);
  util::Xoshiro256 rng(1);
  std::map<topo::NodeId, int> counts;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const topo::NodeId d = pattern.pick_dest(5, rng);
    ASSERT_NE(d, 5u);
    ASSERT_LT(d, 16u);
    ++counts[d];
  }
  EXPECT_EQ(counts.size(), 15u);
  for (const auto& [node, c] : counts) EXPECT_NEAR(c, n / 15, n / 75) << node;
}

TEST(HotspotTraffic, HitsHotNodeAtConfiguredFraction) {
  HotspotTraffic pattern(64, 10, 0.3);
  util::Xoshiro256 rng(2);
  int hot = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hot += pattern.pick_dest(3, rng) == 10 ? 1 : 0;
  // P(dest == hot) = h + (1-h)/(N-1).
  const double expected = 0.3 + 0.7 / 63.0;
  EXPECT_NEAR(static_cast<double>(hot) / n, expected, 0.01);
}

TEST(HotspotTraffic, HotNodeSendsOnlyUniform) {
  HotspotTraffic pattern(64, 10, 0.9);
  util::Xoshiro256 rng(3);
  std::map<topo::NodeId, int> counts;
  for (int i = 0; i < 63000; ++i) {
    const topo::NodeId d = pattern.pick_dest(10, rng);
    ASSERT_NE(d, 10u);
    ++counts[d];
  }
  EXPECT_EQ(counts.size(), 63u);  // all other nodes reachable, no hot bias
  for (const auto& [node, c] : counts) EXPECT_NEAR(c, 1000, 250) << node;
}

TEST(HotspotTraffic, FractionZeroEqualsUniform) {
  HotspotTraffic pattern(16, 0, 0.0);
  util::Xoshiro256 rng(4);
  int hot = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) hot += pattern.pick_dest(5, rng) == 0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hot) / n, 1.0 / 15.0, 0.01);
}

TEST(HotspotTraffic, FractionOneAlwaysHitsHot) {
  HotspotTraffic pattern(16, 3, 1.0);
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(pattern.pick_dest(7, rng), 3u);
}

TEST(TransposeTraffic, SwapsCoordinates) {
  const topo::KAryNCube net(4, 2);
  TransposeTraffic pattern(net);
  util::Xoshiro256 rng(6);
  topo::Coords c{};
  c[0] = 1;
  c[1] = 3;
  const topo::NodeId src = net.node_at(c);
  const topo::NodeId dst = pattern.pick_dest(src, rng);
  EXPECT_EQ(net.coord(dst, 0), 3);
  EXPECT_EQ(net.coord(dst, 1), 1);
}

TEST(TransposeTraffic, DiagonalFallsBackToUniform) {
  const topo::KAryNCube net(4, 2);
  TransposeTraffic pattern(net);
  util::Xoshiro256 rng(7);
  topo::Coords c{};
  c[0] = 2;
  c[1] = 2;
  const topo::NodeId src = net.node_at(c);
  for (int i = 0; i < 100; ++i) ASSERT_NE(pattern.pick_dest(src, rng), src);
}

TEST(BitComplementTraffic, MapsToComplement) {
  BitComplementTraffic pattern(16);
  util::Xoshiro256 rng(8);
  EXPECT_EQ(pattern.pick_dest(0, rng), 15u);
  EXPECT_EQ(pattern.pick_dest(5, rng), 10u);
}

TEST(BitReversalTraffic, ReversesAddressBits) {
  BitReversalTraffic pattern(16);
  util::Xoshiro256 rng(9);
  // 16 nodes -> 4 bits: 0b0001 -> 0b1000.
  EXPECT_EQ(pattern.pick_dest(1, rng), 8u);
  EXPECT_EQ(pattern.pick_dest(3, rng), 12u);  // 0011 -> 1100
}

TEST(BitReversalTraffic, PalindromeFallsBackToUniform) {
  BitReversalTraffic pattern(16);
  util::Xoshiro256 rng(10);
  for (int i = 0; i < 50; ++i) ASSERT_NE(pattern.pick_dest(9, rng), 9u);  // 1001
}

TEST(BernoulliArrivals, MatchesRate) {
  BernoulliArrivals arr(0.05);
  util::Xoshiro256 rng(11);
  int fires = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) fires += arr.fire(rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(fires) / n, 0.05, 0.003);
  EXPECT_DOUBLE_EQ(arr.mean_rate(), 0.05);
}

TEST(MmppArrivals, LongRunMeanMatchesRequestedRate) {
  MmppParams params;
  params.burst_rate_multiplier = 5.0;
  params.p_enter_burst = 0.002;
  params.p_leave_burst = 0.008;
  MmppArrivals arr(0.01, params);
  util::Xoshiro256 rng(12);
  int fires = 0;
  const int n = 2000000;
  for (int i = 0; i < n; ++i) fires += arr.fire(rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(fires) / n, 0.01, 0.002);
}

TEST(MmppArrivals, StationarySplitIsConsistent) {
  MmppParams params;
  params.p_enter_burst = 0.001;
  params.p_leave_burst = 0.004;
  MmppArrivals arr(0.01, params);
  EXPECT_NEAR(arr.burst_state_probability(), 0.2, 1e-12);
  // pi_b*burst + pi_i*idle == mean.
  EXPECT_NEAR(0.2 * arr.burst_rate() + 0.8 * arr.idle_rate(), 0.01, 1e-12);
  EXPECT_GT(arr.burst_rate(), arr.idle_rate());
}

TEST(MmppArrivals, IsBurstierThanBernoulli) {
  // Dispersion of per-window counts: MMPP must exceed Bernoulli's.
  MmppParams params;
  params.burst_rate_multiplier = 8.0;
  params.p_enter_burst = 0.0005;
  params.p_leave_burst = 0.002;
  const double rate = 0.02;
  util::Xoshiro256 rng_m(13), rng_b(13);
  MmppArrivals mmpp(rate, params);
  BernoulliArrivals bern(rate);

  auto window_variance = [](auto& arr, util::Xoshiro256& rng) {
    const int windows = 400;
    const int len = 1000;
    double mean = 0.0, m2 = 0.0;
    for (int w = 0; w < windows; ++w) {
      int count = 0;
      for (int i = 0; i < len; ++i) count += arr.fire(rng) ? 1 : 0;
      const double delta = count - mean;
      mean += delta / (w + 1);
      m2 += delta * (count - mean);
    }
    return m2 / (windows - 1);
  };
  EXPECT_GT(window_variance(mmpp, rng_m), 2.0 * window_variance(bern, rng_b));
}

TEST(Factories, BuildConfiguredTypes) {
  const topo::KAryNCube net(8, 2);
  SimConfig cfg;
  cfg.k = 8;
  cfg.pattern = Pattern::kHotspot;
  cfg.hot_fraction = 0.4;
  auto pattern = make_pattern(cfg, net);
  auto* hotspot = dynamic_cast<HotspotTraffic*>(pattern.get());
  ASSERT_NE(hotspot, nullptr);
  EXPECT_DOUBLE_EQ(hotspot->hot_fraction(), 0.4);

  cfg.arrivals = Arrivals::kMmpp;
  auto arrivals = make_arrivals(cfg);
  EXPECT_NE(dynamic_cast<MmppArrivals*>(arrivals.get()), nullptr);
}

}  // namespace
}  // namespace kncube::sim
