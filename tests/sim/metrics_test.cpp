#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace kncube::sim {
namespace {

Metrics make_metrics() { return Metrics(10, 0.05, 1000.0); }

TEST(Metrics, CountsGeneratedAndBacklog) {
  Metrics m = make_metrics();
  m.on_generated(0);
  m.on_generated(1);
  EXPECT_EQ(m.generated_total(), 2u);
  EXPECT_EQ(m.source_backlog(), 2u);
  m.on_injected(1, 0, 3);
  EXPECT_EQ(m.source_backlog(), 1u);
}

TEST(Metrics, PreMeasurementTrafficIsNotMeasured) {
  Metrics m = make_metrics();
  m.on_generated(5);
  m.on_injected(1, 5, 6);
  m.on_delivered(1, 5, 40, 0);
  EXPECT_EQ(m.delivered_total(), 1u);
  EXPECT_EQ(m.delivered_measured(), 0u);
  EXPECT_TRUE(m.latency().empty());
  EXPECT_TRUE(m.source_wait().empty());
}

TEST(Metrics, WarmupMessagesExcludedAfterMeasurementStarts) {
  Metrics m = make_metrics();
  m.on_generated(50);   // generated before measurement start
  m.begin_measurement(100);
  m.on_injected(1, 50, 120);
  m.on_delivered(1, 50, 150, 0);  // delivered inside the window, born before
  EXPECT_EQ(m.delivered_measured(), 0u);
  EXPECT_TRUE(m.latency().empty());
}

TEST(Metrics, MeasuredMessageLatencies) {
  Metrics m = make_metrics();
  m.begin_measurement(100);
  m.on_generated(110);
  m.on_injected(7, 110, 115);
  m.on_delivered(7, 110, 160, 3);
  EXPECT_EQ(m.delivered_measured(), 1u);
  EXPECT_DOUBLE_EQ(m.latency().mean(), 50.0);        // 160 - 110
  EXPECT_DOUBLE_EQ(m.source_wait().mean(), 5.0);     // 115 - 110
  EXPECT_DOUBLE_EQ(m.network_latency().mean(), 45.0);  // 160 - 115
}

TEST(Metrics, PerClassLatenciesRequireHotNode) {
  Metrics m = make_metrics();
  m.begin_measurement(0);
  m.on_generated(1);
  m.on_injected(1, 1, 2);
  m.on_delivered(1, 1, 10, 4);
  EXPECT_TRUE(m.latency_hot().empty());
  EXPECT_TRUE(m.latency_regular().empty());

  Metrics h = make_metrics();
  h.set_hot_node(4);
  h.begin_measurement(0);
  h.on_generated(1);
  h.on_injected(1, 1, 2);
  h.on_delivered(1, 1, 10, 4);
  h.on_generated(2);
  h.on_injected(2, 2, 3);
  h.on_delivered(2, 2, 30, 9);
  EXPECT_DOUBLE_EQ(h.latency_hot().mean(), 9.0);
  EXPECT_DOUBLE_EQ(h.latency_regular().mean(), 28.0);
}

TEST(Metrics, FlitCounter) {
  Metrics m = make_metrics();
  for (int i = 0; i < 5; ++i) m.on_flit_delivered();
  EXPECT_EQ(m.flits_delivered(), 5u);
}

TEST(Metrics, SteadyStateNeedsEnoughBatches) {
  Metrics m = make_metrics();  // batches of 10
  m.begin_measurement(0);
  for (std::uint64_t i = 0; i < 30; ++i) {
    m.on_injected(i, 1, 2);
    m.on_delivered(i, 1, 43, 0);
  }
  EXPECT_FALSE(m.steady());  // 3 batches < 2 windows of 3
  for (std::uint64_t i = 30; i < 90; ++i) {
    m.on_injected(i, 1, 2);
    m.on_delivered(i, 1, 43, 0);
  }
  EXPECT_TRUE(m.steady());  // constant stream converges
}

TEST(MetricsDeathTest, DeliveredBeforeInjectedAsserts) {
  Metrics m = make_metrics();
  m.begin_measurement(0);
  m.on_generated(1);
  EXPECT_DEATH(m.on_delivered(99, 1, 10, 0), "delivered before injected");
}

TEST(MetricsDeathTest, DoubleMeasurementStartAsserts) {
  Metrics m = make_metrics();
  m.begin_measurement(5);
  EXPECT_DEATH(m.begin_measurement(6), "twice");
}

}  // namespace
}  // namespace kncube::sim
