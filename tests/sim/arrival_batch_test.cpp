// Equivalence tests for the batched traffic-generation kernel (DESIGN.md
// §12): the SoA ArrivalBatch must reproduce, bit for bit, the fire sequence
// of the scalar reference processes (BernoulliArrivals / MmppArrivals) run
// one-node-at-a-time — for random rates, threshold boundary rates, and
// fault-masked node sets, on whichever kernel this build compiled in
// (scalar, auto-vectorized, or the explicit AVX2 path).
#include "sim/arrival_batch.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "sim/config.hpp"
#include "sim/traffic.hpp"
#include "topology/fault_set.hpp"
#include "topology/torus.hpp"
#include "util/rng.hpp"

namespace kncube::sim {
namespace {

// The predicate the scalar path evaluates: uniform() < rate with
// uniform() = (double)(x >> 11) * 2^-53.
bool scalar_fires(std::uint64_t x, double rate) {
  return static_cast<double>(x >> 11) * 0x1p-53 < rate;
}

TEST(ArrivalBatch, FireThresholdMatchesScalarPredicateEverywhere) {
  // For each rate, the integer threshold must classify every mantissa value
  // exactly as the floating-point comparison does. Check the rate's own
  // neighbourhood (the only place a one-off threshold could hide) plus
  // random probes across the full [0, 2^53) range.
  std::mt19937_64 gen(0xA881);
  std::vector<double> rates = {0.0,    1.0,    0.5,   0.3,  1e-4,
                               2.5e-4, 0x1p-53, 0x1.8p-53, 1.0 - 0x1p-53};
  for (int i = 0; i < 40; ++i) {
    rates.push_back(std::uniform_real_distribution<double>(0.0, 1.0)(gen));
    // Exactly representable m * 2^-53 rates sit on the boundary itself.
    rates.push_back(static_cast<double>(gen() >> 11) * 0x1p-53);
  }
  for (const double rate : rates) {
    const std::uint64_t t = bernoulli_fire_threshold(rate);
    // Neighbourhood of the threshold: m in [t - 4, t + 4].
    for (std::int64_t d = -4; d <= 4; ++d) {
      const std::int64_t m = static_cast<std::int64_t>(t) + d;
      if (m < 0 || m >= (std::int64_t{1} << 53)) continue;
      const std::uint64_t x = static_cast<std::uint64_t>(m) << 11;
      EXPECT_EQ(scalar_fires(x, rate),
                static_cast<std::uint64_t>(m) < t)
          << "rate=" << rate << " m=" << m;
    }
    for (int i = 0; i < 256; ++i) {
      const std::uint64_t x = gen();
      EXPECT_EQ(scalar_fires(x, rate), (x >> 11) < t)
          << "rate=" << rate << " x=" << x;
    }
  }
}

SimConfig base_config(int k) {
  SimConfig cfg;
  cfg.k = k;
  cfg.n = 2;
  cfg.vcs = 2;
  cfg.seed = 0xD15EA5E;
  return cfg;
}

/// Runs `cycles` of the batch kernel against a per-node scalar reference
/// (own generator, own process instance — exactly the pre-batch simulator
/// loop) and asserts bitwise-equal fire sequences and generator states.
void check_equivalence(const SimConfig& cfg, std::uint64_t cycles) {
  const topo::KAryNCube topo(cfg.k, cfg.n, cfg.bidirectional, cfg.mesh);
  const topo::FaultSet faults = build_fault_set(cfg, topo);
  ArrivalBatch batch(cfg, faults, topo.size());

  std::vector<util::Xoshiro256> rngs;
  std::vector<std::unique_ptr<ArrivalProcess>> refs;
  rngs.reserve(topo.size());
  for (topo::NodeId id = 0; id < topo.size(); ++id) {
    rngs.push_back(util::Xoshiro256(cfg.seed).split(id));
    refs.push_back(make_arrivals(cfg));
  }

  for (std::uint64_t c = 0; c < cycles; ++c) {
    batch.generate();
    for (topo::NodeId id = 0; id < topo.size(); ++id) {
      if (faults.router_failed(id)) {
        // Dead nodes never fire and their streams stay frozen.
        EXPECT_FALSE(batch.fired(id)) << "cycle " << c << " node " << id;
        continue;
      }
      const bool ref_fired = refs[id]->fire(rngs[id]);
      ASSERT_EQ(batch.fired(id), ref_fired)
          << "cycle " << c << " node " << id;
      // The batch stream must sit at exactly the reference stream's state:
      // the next draws (destination choice) consume the same bits.
      std::uint64_t ref_state[4];
      std::uint64_t batch_state[4];
      rngs[id].save_state(ref_state);
      batch.extract_rng(id).save_state(batch_state);
      for (int w = 0; w < 4; ++w) {
        ASSERT_EQ(batch_state[w], ref_state[w])
            << "cycle " << c << " node " << id << " word " << w;
      }
    }
  }
}

TEST(ArrivalBatch, BernoulliBitIdenticalToReference) {
  for (const double rate : {1e-4, 2.5e-4, 0.37, 0.0, 1.0}) {
    SimConfig cfg = base_config(8);
    cfg.injection_rate = rate;
    check_equivalence(cfg, 200);
  }
}

TEST(ArrivalBatch, MmppBitIdenticalToReference) {
  SimConfig cfg = base_config(8);
  cfg.arrivals = Arrivals::kMmpp;
  cfg.injection_rate = 5e-3;  // transitions and both emission rates exercised
  cfg.mmpp.p_enter_burst = 0.05;
  cfg.mmpp.p_leave_burst = 0.1;
  check_equivalence(cfg, 600);
}

TEST(ArrivalBatch, FaultMaskedNodesStayFrozen) {
  SimConfig cfg = base_config(8);
  cfg.injection_rate = 0.3;  // dense fires make divergence loud
  cfg.failed_routers = {0, 3, 17, 62, 63};  // word edges and interior
  check_equivalence(cfg, 200);

  SimConfig mmpp = cfg;
  mmpp.arrivals = Arrivals::kMmpp;
  mmpp.mmpp.p_enter_burst = 0.05;
  mmpp.mmpp.p_leave_burst = 0.1;
  check_equivalence(mmpp, 300);
}

TEST(ArrivalBatch, NonMultipleOfEightNodeCountPadsCleanly) {
  // 5x5 torus: 25 nodes, padded to 32 — the tail lanes must never report
  // fires and never disturb the live lanes.
  SimConfig cfg = base_config(5);
  cfg.injection_rate = 0.4;
  const topo::KAryNCube topo(cfg.k, cfg.n, cfg.bidirectional, cfg.mesh);
  const topo::FaultSet faults = build_fault_set(cfg, topo);
  ArrivalBatch batch(cfg, faults, topo.size());
  for (int c = 0; c < 100; ++c) {
    batch.generate();
    const std::uint64_t* words = batch.fired_words();
    for (std::size_t w = 0; w < batch.fired_word_count(); ++w) {
      for (std::size_t b = 0; b < 8; ++b) {
        const std::size_t id = 8 * w + b;
        const bool flagged = ((words[w] >> (8 * b)) & 0xff) != 0;
        if (id >= topo.size()) {
          EXPECT_FALSE(flagged) << "padding lane " << id << " fired";
        } else {
          EXPECT_EQ(flagged, batch.fired(static_cast<topo::NodeId>(id)));
        }
      }
    }
  }
  check_equivalence(cfg, 200);
}

TEST(ArrivalBatch, RandomizedConfigsBitIdenticalToReference) {
  // Draw random (rate, seed, fault set, process) combinations; every one
  // must match the scalar reference bit for bit.
  std::mt19937_64 gen(0xBADC0DE);
  for (int trial = 0; trial < 8; ++trial) {
    SimConfig cfg = base_config((trial % 2) ? 8 : 5);
    cfg.seed = gen();
    cfg.injection_rate =
        std::uniform_real_distribution<double>(1e-5, 0.5)(gen);
    if (trial % 3 == 0) {
      cfg.arrivals = Arrivals::kMmpp;
      cfg.mmpp.p_enter_burst =
          std::uniform_real_distribution<double>(0.01, 0.2)(gen);
      cfg.mmpp.p_leave_burst =
          std::uniform_real_distribution<double>(0.01, 0.2)(gen);
    }
    if (trial % 2 == 0) {
      cfg.failure_rate = 0.1;
      cfg.failure_seed = gen() | 1;
    }
    check_equivalence(cfg, 150);
  }
}

}  // namespace
}  // namespace kncube::sim
