// White-box flow-control invariants: after any finite workload fully
// drains, every credit must be returned, every VC released and every buffer
// empty — the credit/release protocol leaks nothing. Violations here are
// the bugs that silently skew latency results long before they deadlock.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace kncube::sim {
namespace {

SimConfig quiet_config(int k, int n, int vcs, int buffer_depth, int lm) {
  SimConfig cfg;
  cfg.k = k;
  cfg.n = n;
  cfg.vcs = vcs;
  cfg.buffer_depth = buffer_depth;
  cfg.message_length = lm;
  cfg.injection_rate = 0.0;
  return cfg;
}

void assert_network_pristine(const Network& net, int vcs, int buffer_depth) {
  for (topo::NodeId id = 0; id < net.size(); ++id) {
    const Router& r = net.router(id);
    for (int p = 0; p < r.network_ports(); ++p) {
      const auto& port = r.output_port(p);
      for (int v = 0; v < vcs; ++v) {
        const auto& ovc = port.vcs[static_cast<std::size_t>(v)];
        EXPECT_FALSE(ovc.busy) << "node " << id << " port " << p << " vc " << v;
        EXPECT_EQ(ovc.credits, buffer_depth)
            << "node " << id << " port " << p << " vc " << v;
      }
    }
    for (int p = 0; p <= r.network_ports(); ++p) {
      for (int v = 0; v < vcs; ++v) {
        const auto& ivc = r.input_vc(p, v);
        EXPECT_TRUE(ivc.empty()) << "node " << id << " port " << p;
        EXPECT_EQ(ivc.route_out, -1) << "node " << id << " port " << p;
        EXPECT_EQ(ivc.out_vc, -1) << "node " << id << " port " << p;
        EXPECT_FALSE(ivc.active) << "node " << id << " port " << p;
      }
    }
  }
}

class DrainInvariants
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(DrainInvariants, EverythingReleasedAfterDrain) {
  const auto [vcs, depth, lm, seed] = GetParam();
  SimConfig cfg = quiet_config(4, 2, vcs, depth, lm);
  Simulator sim(cfg);
  sim.metrics().begin_measurement(0);

  util::Xoshiro256 rng(static_cast<std::uint64_t>(seed));
  const topo::NodeId n = sim.network().size();
  const std::uint64_t count = 200;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto src = static_cast<topo::NodeId>(rng.uniform_below(n));
    auto dest = static_cast<topo::NodeId>(rng.uniform_below(n - 1));
    if (dest >= src) ++dest;
    sim.inject_now(src, dest);
  }
  const std::uint64_t cap = count * static_cast<std::uint64_t>(lm) * 8 + 20000;
  while (sim.metrics().delivered_total() < count && sim.current_cycle() < cap) {
    sim.step_cycles(32);
  }
  ASSERT_EQ(sim.metrics().delivered_total(), count);
  // Let trailing credits/releases land (one-cycle lag).
  sim.step_cycles(4);
  assert_network_pristine(sim.network(), vcs, depth);
}

INSTANTIATE_TEST_SUITE_P(FlowControlSpace, DrainInvariants,
                         ::testing::Combine(::testing::Values(2, 4),   // V
                                            ::testing::Values(1, 2, 4), // B
                                            ::testing::Values(1, 8),    // Lm
                                            ::testing::Values(3, 11)    // seed
                                            ));

TEST(FlowControl, OutputVcHeldExactlyForMessageLifetime) {
  // One message, watched cycle by cycle: the first-hop VC must be busy while
  // any of its flits remain downstream and free afterwards.
  SimConfig cfg = quiet_config(4, 2, 2, 2, 4);
  Simulator sim(cfg);
  sim.metrics().begin_measurement(0);
  sim.inject_now(0, 2);  // two x-hops

  const Router& r0 = sim.network().router(0);
  bool was_busy = false;
  for (int cycle = 0; cycle < 40; ++cycle) {
    sim.step_cycles(1);
    bool busy = false;
    for (const auto& ovc : r0.output_port(0).vcs) busy |= ovc.busy;
    was_busy |= busy;
    if (sim.metrics().delivered_total() == 1 && !busy) break;
  }
  EXPECT_TRUE(was_busy);
  sim.step_cycles(4);
  for (const auto& ovc : r0.output_port(0).vcs) {
    EXPECT_FALSE(ovc.busy);
    EXPECT_EQ(ovc.credits, 2);
  }
}

TEST(FlowControl, CreditsNeverExceedDepthNorGoNegative) {
  // Sustained random traffic with frequent checks; the KNC_ASSERTs inside
  // commit() would abort on accounting bugs, this test additionally scans
  // externally-visible state.
  SimConfig cfg = quiet_config(4, 2, 2, 2, 6);
  cfg.injection_rate = 0.02;
  cfg.pattern = Pattern::kUniform;
  Simulator sim(cfg);
  for (int round = 0; round < 50; ++round) {
    sim.step_cycles(20);
    for (topo::NodeId id = 0; id < sim.network().size(); ++id) {
      const Router& r = sim.network().router(id);
      for (int p = 0; p < r.network_ports(); ++p) {
        for (const auto& ovc : r.output_port(p).vcs) {
          ASSERT_GE(ovc.credits, 0);
          ASSERT_LE(ovc.credits, 2);
        }
      }
    }
  }
}

TEST(FlowControl, StatsCyclesAdvanceUniformly) {
  SimConfig cfg = quiet_config(4, 2, 2, 2, 4);
  Simulator sim(cfg);
  sim.network().reset_channel_stats();
  sim.step_cycles(123);
  for (topo::NodeId id = 0; id < sim.network().size(); ++id) {
    const Router& r = sim.network().router(id);
    for (int p = 0; p < r.network_ports(); ++p) {
      EXPECT_EQ(r.output_port(p).stat_cycles, 123u);
    }
  }
}

}  // namespace
}  // namespace kncube::sim
