// The bidirectional-torus extension (paper §2: "can be easily extended to
// deal with [the] bi-directional case"): shortest-direction routing, twice
// the channels, datelines per direction. The analytical model stays
// unidirectional (as in the paper); these property sweeps pin the simulator
// side of the extension.
#include <gtest/gtest.h>

#include <tuple>

#include "sim/simulator.hpp"

namespace kncube::sim {
namespace {

class BidirectionalSweep
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(BidirectionalSweep, StableAndConservative) {
  const auto [k, lm, h] = GetParam();
  SimConfig cfg;
  cfg.k = k;
  cfg.n = 2;
  cfg.bidirectional = true;
  cfg.vcs = 2;
  cfg.message_length = lm;
  cfg.pattern = Pattern::kHotspot;
  cfg.hot_fraction = h;
  // Bidirectional halves hot-column pressure (two approach directions).
  const double coeff = h * k * (k - 1.0) / 2.0 + (1 - h) * k / 4.0;
  cfg.injection_rate = 0.25 / (coeff * lm);
  cfg.warmup_cycles = 3000;
  cfg.target_messages = 600;
  cfg.max_cycles = 500000;
  const SimResult r = simulate(cfg);
  EXPECT_FALSE(r.saturated);
  EXPECT_GE(r.measured_messages, 600u);
  EXPECT_GT(r.mean_latency, static_cast<double>(lm));
  EXPECT_LE(r.max_channel_utilization, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(DesignSpace, BidirectionalSweep,
                         ::testing::Combine(::testing::Values(4, 8),
                                            ::testing::Values(4, 16),
                                            ::testing::Values(0.0, 0.3)));

TEST(Bidirectional, BeatsUnidirectionalLatencyAtEqualLoad) {
  SimConfig uni;
  uni.k = 8;
  uni.n = 2;
  uni.vcs = 2;
  uni.message_length = 16;
  uni.pattern = Pattern::kUniform;
  uni.injection_rate = 1e-3;
  uni.warmup_cycles = 3000;
  uni.target_messages = 1000;
  uni.max_cycles = 400000;
  SimConfig bi = uni;
  bi.bidirectional = true;
  const SimResult ru = simulate(uni);
  const SimResult rb = simulate(bi);
  ASSERT_FALSE(ru.saturated);
  ASSERT_FALSE(rb.saturated);
  // Half the mean hops (k/4 vs (k-1)/2 per dimension) and twice the links.
  EXPECT_LT(rb.mean_latency, ru.mean_latency);
  EXPECT_LT(rb.mean_channel_utilization, ru.mean_channel_utilization);
}

TEST(Bidirectional, HotSpotPressureSplitsAcrossDirections) {
  SimConfig cfg;
  cfg.k = 8;
  cfg.n = 2;
  cfg.bidirectional = true;
  cfg.vcs = 2;
  cfg.message_length = 16;
  cfg.pattern = Pattern::kHotspot;
  cfg.hot_fraction = 0.5;
  cfg.injection_rate = 4e-4;
  cfg.warmup_cycles = 3000;
  cfg.target_messages = 1500;
  cfg.max_cycles = 400000;
  Simulator sim(cfg);
  sim.run();
  const auto& topo = sim.network().topology();
  const topo::NodeId hot = cfg.resolved_hot_node();
  // Both y-approach channels into the hot node carry comparable load.
  const double from_minus = sim.network().channel_utilization(
      topo.neighbor(hot, 1, topo::Direction::kMinus), 1, topo::Direction::kPlus);
  const double from_plus = sim.network().channel_utilization(
      topo.neighbor(hot, 1, topo::Direction::kPlus), 1, topo::Direction::kMinus);
  EXPECT_GT(from_minus, 0.05);
  EXPECT_GT(from_plus, 0.05);
  EXPECT_NEAR(from_minus, from_plus, 0.4 * std::max(from_minus, from_plus));
}

}  // namespace
}  // namespace kncube::sim
