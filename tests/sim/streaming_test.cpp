// Flow-control behaviour: with one-cycle credit return, buffer depth >= 2
// sustains one flit per cycle per link; depth 1 halves the streaming rate —
// a documented property of the credit loop, pinned here so it cannot silently
// change the simulator's timing model.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace kncube::sim {
namespace {

double lone_latency(int buffer_depth, int lm, int hops) {
  SimConfig cfg;
  cfg.k = 8;
  cfg.n = 2;
  cfg.vcs = 2;
  cfg.buffer_depth = buffer_depth;
  cfg.message_length = lm;
  cfg.injection_rate = 0.0;
  Simulator sim(cfg);
  sim.metrics().begin_measurement(0);
  sim.inject_now(0, static_cast<topo::NodeId>(hops));  // straight x path
  for (int i = 0; i < 100000 && sim.metrics().delivered_total() == 0; ++i) {
    sim.step_cycles(1);
  }
  EXPECT_EQ(sim.metrics().delivered_total(), 1u);
  return sim.metrics().latency().mean();
}

TEST(Streaming, DepthTwoSustainsFullRate) {
  EXPECT_EQ(lone_latency(2, 32, 3), 3 + 32 - 1);
  EXPECT_EQ(lone_latency(2, 100, 5), 5 + 100 - 1);
}

TEST(Streaming, DeeperBuffersDoNotChangeZeroLoadLatency) {
  EXPECT_EQ(lone_latency(4, 32, 3), 3 + 32 - 1);
  EXPECT_EQ(lone_latency(8, 32, 3), 3 + 32 - 1);
}

TEST(Streaming, DepthOneHalvesStreamingBandwidth) {
  // Header still moves one hop/cycle; each body flit needs the credit to
  // round-trip, so the drain runs at one flit per two cycles on the last
  // link: latency ~ H + 2(Lm-1).
  const double lat = lone_latency(1, 32, 3);
  EXPECT_GT(lat, 3 + 1.5 * 31);
  EXPECT_LE(lat, 3 + 2.0 * 31 + 2);
}

TEST(Streaming, SingleFlitMessagesUnaffectedByDepth) {
  EXPECT_EQ(lone_latency(1, 1, 4), 4.0);
  EXPECT_EQ(lone_latency(2, 1, 4), 4.0);
}

TEST(Streaming, BackToBackMessagesOnOneLinkPipelineCleanly) {
  // Two messages from the same source to the same destination must deliver
  // 2*Lm flits over the shared first link in ~2*Lm cycles (full bandwidth),
  // using the two injection VCs without mixing flits.
  SimConfig cfg;
  cfg.k = 8;
  cfg.n = 2;
  cfg.vcs = 2;
  cfg.buffer_depth = 2;
  cfg.message_length = 16;
  cfg.injection_rate = 0.0;
  Simulator sim(cfg);
  sim.metrics().begin_measurement(0);
  sim.inject_now(0, 2);
  sim.inject_now(0, 2);
  std::uint64_t cycles = 0;
  while (sim.metrics().delivered_total() < 2 && cycles < 1000) {
    sim.step_cycles(1);
    ++cycles;
  }
  ASSERT_EQ(sim.metrics().delivered_total(), 2u);
  // Perfect interleaving over the shared bottleneck link: 32 flits need 32
  // cycles of link time; the tail of the second message lands within a
  // couple of cycles of that plus the 2-hop pipeline fill.
  EXPECT_LE(cycles, 2u + 32u + 4u);
  EXPECT_EQ(sim.metrics().flits_delivered(), 32u);
}

}  // namespace
}  // namespace kncube::sim
