// Dateline / wrap-around correctness: messages crossing ring wrap links must
// switch VC class and still deliver, including under ring-saturating load.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace kncube::sim {
namespace {

SimConfig quiet(int k, int lm, int vcs = 2) {
  SimConfig cfg;
  cfg.k = k;
  cfg.n = 2;
  cfg.vcs = vcs;
  cfg.buffer_depth = 2;
  cfg.message_length = lm;
  cfg.injection_rate = 0.0;
  return cfg;
}

TEST(Wraparound, EveryWrapPairDelivers) {
  const int k = 5;
  Simulator sim(quiet(k, 6));
  sim.metrics().begin_measurement(0);
  const topo::KAryNCube& net = sim.network().topology();
  // All source/dest pairs in row 0 that wrap in x.
  std::uint64_t expected = 0;
  for (int sx = 1; sx < k; ++sx) {
    for (int dx = 0; dx < sx; ++dx) {  // dx < sx => path wraps
      topo::Coords a{}, b{};
      a[0] = sx;
      b[0] = dx;
      sim.inject_now(net.node_at(a), net.node_at(b));
      ++expected;
    }
  }
  while (sim.metrics().delivered_total() < expected && sim.current_cycle() < 20000) {
    sim.step_cycles(1);
  }
  EXPECT_EQ(sim.metrics().delivered_total(), expected);
  EXPECT_EQ(sim.network().inflight_flits(), 0u);
}

TEST(Wraparound, FullRingLoadDrainsWithTwoVcs) {
  // Every node of a ring sends k-1 hops (maximal wrap pressure): with the
  // dateline classes this must drain; without them it could deadlock.
  const int k = 6;
  Simulator sim(quiet(k, 8, 2));
  sim.metrics().begin_measurement(0);
  const topo::KAryNCube& net = sim.network().topology();
  for (int x = 0; x < k; ++x) {
    topo::Coords a{}, b{};
    a[0] = x;
    b[0] = (x + k - 1) % k;  // k-1 hops ahead, every message wraps or nearly
    sim.inject_now(net.node_at(a), net.node_at(b));
  }
  while (sim.metrics().delivered_total() < static_cast<std::uint64_t>(k) &&
         sim.current_cycle() < 50000) {
    sim.step_cycles(1);
  }
  EXPECT_EQ(sim.metrics().delivered_total(), static_cast<std::uint64_t>(k));
}

TEST(Wraparound, BothDimensionsWrapInOneRoute) {
  const int k = 4;
  Simulator sim(quiet(k, 5));
  sim.metrics().begin_measurement(0);
  const topo::KAryNCube& net = sim.network().topology();
  topo::Coords a{}, b{};
  a[0] = 3;
  a[1] = 3;
  b[0] = 1;
  b[1] = 1;
  sim.inject_now(net.node_at(a), net.node_at(b));
  sim.step_cycles(100);
  ASSERT_EQ(sim.metrics().delivered_total(), 1u);
  EXPECT_DOUBLE_EQ(sim.metrics().latency().mean(), 4 + 5 - 1);
}

TEST(Wraparound, DatelineRestartsPerDimension) {
  // A route that wraps in x must start again in class 0 when entering y;
  // observable end-to-end: the message still delivers with exact latency
  // even when the y leg also wraps.
  const int k = 5;
  Simulator sim(quiet(k, 7));
  sim.metrics().begin_measurement(0);
  const topo::KAryNCube& net = sim.network().topology();
  topo::Coords a{}, b{};
  a[0] = 4;
  a[1] = 4;
  b[0] = 2;  // x wraps: 3 hops
  b[1] = 3;  // y wraps: 4 hops
  sim.inject_now(net.node_at(a), net.node_at(b));
  sim.step_cycles(200);
  ASSERT_EQ(sim.metrics().delivered_total(), 1u);
  EXPECT_DOUBLE_EQ(sim.metrics().latency().mean(), 7 + 7 - 1);
}

TEST(Wraparound, ManyVcsSplitIntoClassesCorrectly) {
  // V=6: classes get 3+3 VCs; ring-saturating traffic must still drain.
  const int k = 6;
  Simulator sim(quiet(k, 4, 6));
  sim.metrics().begin_measurement(0);
  const topo::KAryNCube& net = sim.network().topology();
  std::uint64_t count = 0;
  for (int x = 0; x < k; ++x) {
    for (int d = 1; d < k; ++d) {
      topo::Coords a{}, b{};
      a[0] = x;
      b[0] = (x + d) % k;
      sim.inject_now(net.node_at(a), net.node_at(b));
      ++count;
    }
  }
  while (sim.metrics().delivered_total() < count && sim.current_cycle() < 100000) {
    sim.step_cycles(1);
  }
  EXPECT_EQ(sim.metrics().delivered_total(), count);
}

}  // namespace
}  // namespace kncube::sim
