// Fault-injection behaviour of the simulator (DESIGN.md §10): dead routers
// stay quiescent, unreachable traffic is classified at injection time and
// never dropped mid-network, flit conservation holds exactly through a full
// drain, and the sharded cycle engine stays bit-identical to the serial
// schedule on faulty networks — randomized over the fault-config space, the
// same way sharded_step_test.cpp covers the pristine space.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>
#include <string>

#include "sim/simulator.hpp"

namespace kncube::sim {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// FNV-1a over the integer channel statistics of every (router, port).
std::uint64_t channel_stats_checksum(const Network& net) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (topo::NodeId id = 0; id < net.size(); ++id) {
    const Router& r = net.router(id);
    for (int p = 0; p < r.network_ports(); ++p) {
      const auto& op = r.output_port(p);
      mix(op.flits_sent);
      mix(op.busy_vc_cycles);
      mix(op.busy_vc_sq_cycles);
      mix(op.busy_cycles);
      mix(op.stat_cycles);
    }
  }
  return h;
}

SimConfig faulty_mesh_config() {
  SimConfig cfg;
  cfg.k = 8;
  cfg.n = 2;
  cfg.mesh = true;
  cfg.vcs = 2;
  cfg.buffer_depth = 2;
  cfg.message_length = 8;
  cfg.pattern = Pattern::kUniform;
  cfg.injection_rate = 6e-3;
  cfg.seed = 0xFA17;
  cfg.failed_routers = {9, 27};
  cfg.failed_links = {{36, 0, topo::Direction::kPlus}};
  return cfg;
}

TEST(FaultInjection, DeadRoutersStayCompletelyQuiescent) {
  const SimConfig cfg = faulty_mesh_config();
  Simulator sim(cfg);
  sim.metrics().begin_measurement(0);
  sim.step_cycles(4000);
  const Network& net = sim.network();
  for (const topo::NodeId dead : {9u, 27u}) {
    ASSERT_FALSE(net.node_alive(dead));
    const Router& r = net.router(dead);
    EXPECT_EQ(r.buffered_flits(), 0u) << "dead router " << dead;
    EXPECT_EQ(r.source_queue_length(), 0u) << "dead router " << dead;
    for (int p = 0; p < r.network_ports(); ++p) {
      EXPECT_EQ(r.output_port(p).flits_sent, 0u)
          << "dead router " << dead << " port " << p;
    }
  }
  // Faults were actually exercised: some traffic was unreachable, some
  // delivered.
  EXPECT_GT(sim.metrics().unreachable_total(), 0u);
  EXPECT_GT(sim.metrics().delivered_total(), 0u);
}

TEST(FaultInjection, DrainConservesEveryFlit) {
  // After generation stops and the network drains, message and flit counts
  // must balance exactly: nothing was dropped mid-network, every enqueued
  // message was delivered whole.
  const SimConfig cfg = faulty_mesh_config();
  Simulator sim(cfg);
  sim.metrics().begin_measurement(0);
  sim.step_cycles(4000);
  ASSERT_TRUE(sim.drain(200000)) << "network failed to drain";

  const Metrics& m = sim.metrics();
  const Network& net = sim.network();
  EXPECT_EQ(net.inflight_flits(), 0u);
  EXPECT_EQ(net.source_backlog(), 0u);
  const std::uint64_t enqueued = m.generated_total() - m.unreachable_total();
  EXPECT_EQ(m.delivered_total(), enqueued);
  EXPECT_EQ(m.injected_total(), enqueued);
  EXPECT_EQ(m.flits_delivered(),
            enqueued * static_cast<std::uint64_t>(cfg.message_length));
  EXPECT_GT(m.unreachable_total(), 0u);

  SimResult res = sim.finalize(0);
  EXPECT_TRUE(res.conservation_ok);
  EXPECT_GT(res.unreachable_pairs, 0u);
  EXPECT_LT(res.reachable_pair_fraction, 1.0);
  EXPECT_EQ(res.failed_routers, 2u);
}

TEST(FaultInjection, MidRunConservationIdentityHolds) {
  // The finalize()-time identity must hold at any cut point, not only after
  // a drain: refilled * Lm == delivered flits + in-flight flits.
  SimConfig cfg = faulty_mesh_config();
  cfg.injection_rate = 1.2e-2;  // keep queues busy so in-flight is nonzero
  Simulator sim(cfg);
  sim.metrics().begin_measurement(0);
  for (int chunk = 0; chunk < 6; ++chunk) {
    sim.step_cycles(500);
    const Metrics& m = sim.metrics();
    const Network& net = sim.network();
    const std::uint64_t enqueued = m.generated_total() - m.unreachable_total();
    ASSERT_GE(enqueued, net.source_backlog()) << "chunk " << chunk;
    const std::uint64_t refilled = enqueued - net.source_backlog();
    EXPECT_EQ(refilled * static_cast<std::uint64_t>(cfg.message_length),
              m.flits_delivered() + net.inflight_flits())
        << "chunk " << chunk;
    EXPECT_LE(m.delivered_total(), m.injected_total()) << "chunk " << chunk;
    EXPECT_LE(m.injected_total(), refilled) << "chunk " << chunk;
  }
}

TEST(FaultInjection, UnreachableAccountingSeparatesMeasuredFromTotal) {
  SimConfig cfg = faulty_mesh_config();
  Simulator sim(cfg);
  sim.step_cycles(1000);  // pre-measurement traffic
  const std::uint64_t before = sim.metrics().unreachable_total();
  EXPECT_GT(before, 0u);
  EXPECT_EQ(sim.metrics().unreachable_measured(), 0u);
  sim.metrics().begin_measurement(1000);
  sim.step_cycles(1000);
  const Metrics& m = sim.metrics();
  EXPECT_EQ(m.unreachable_total(), before + m.unreachable_measured());
  EXPECT_GT(m.unreachable_measured(), 0u);
}

TEST(FaultInjection, RandomFaultConfigsBitIdenticalAcrossThreadCounts) {
  // The PR 6 sharding contract re-verified on faulty networks: for ANY
  // fault configuration, sharded runs are bit-identical to serial. Fault
  // masking is static wiring plus a static generation skip, so per-node RNG
  // streams — the determinism backbone — are untouched; this pins that.
  std::mt19937_64 rng(0xFA17C0DEULL);
  const auto pick = [&rng](int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };
  for (int trial = 0; trial < 6; ++trial) {
    SimConfig cfg;
    const bool mesh = pick(0, 1) == 1;
    cfg.mesh = mesh;
    cfg.bidirectional = mesh ? false : pick(0, 1) == 1;
    cfg.n = 2;
    cfg.k = pick(6, 9);
    cfg.vcs = (mesh || cfg.bidirectional) ? pick(1, 3) : pick(2, 3);
    cfg.buffer_depth = pick(1, 3);
    cfg.message_length = pick(1, 16);
    if (pick(0, 1) == 0) {
      cfg.pattern = Pattern::kHotspot;
      cfg.hot_fraction = 0.05 * pick(1, 5);
    } else {
      cfg.pattern = Pattern::kUniform;
    }
    cfg.injection_rate = 2e-3 * pick(1, 4);
    cfg.seed = rng();
    // Seed-derived random failures: 1..4 routers (hot node auto-protected).
    const int nodes = cfg.k * cfg.k;
    cfg.failure_rate = static_cast<double>(pick(1, 4)) / nodes;
    cfg.failure_seed = rng();
    const std::uint64_t cycles = 1500;

    SCOPED_TRACE("trial " + std::to_string(trial) + " k=" + std::to_string(cfg.k) +
                 " mesh=" + std::to_string(mesh) +
                 " fseed=" + std::to_string(cfg.failure_seed));

    struct Obs {
      std::uint64_t generated, delivered, unreachable, flits, inflight, backlog;
      std::uint64_t checksum, latency_bits;
    };
    const auto observe = [&cycles](SimConfig c, int threads) {
      c.sim_threads = threads;
      Simulator sim(c);
      sim.metrics().begin_measurement(0);
      sim.step_cycles(cycles);
      Obs o;
      o.generated = sim.metrics().generated_total();
      o.delivered = sim.metrics().delivered_total();
      o.unreachable = sim.metrics().unreachable_total();
      o.flits = sim.metrics().flits_delivered();
      o.inflight = sim.network().inflight_flits();
      o.backlog = sim.network().source_backlog();
      o.checksum = channel_stats_checksum(sim.network());
      o.latency_bits = bits(sim.metrics().latency().mean());
      return o;
    };

    const Obs serial = observe(cfg, 1);
    EXPECT_GT(serial.generated, 0u);
    for (const int threads : {2, 4}) {
      const Obs par = observe(cfg, threads);
      EXPECT_EQ(par.generated, serial.generated) << "T=" << threads;
      EXPECT_EQ(par.delivered, serial.delivered) << "T=" << threads;
      EXPECT_EQ(par.unreachable, serial.unreachable) << "T=" << threads;
      EXPECT_EQ(par.flits, serial.flits) << "T=" << threads;
      EXPECT_EQ(par.inflight, serial.inflight) << "T=" << threads;
      EXPECT_EQ(par.backlog, serial.backlog) << "T=" << threads;
      EXPECT_EQ(par.checksum, serial.checksum) << "T=" << threads;
      EXPECT_EQ(par.latency_bits, serial.latency_bits) << "T=" << threads;
    }
  }
}

TEST(FaultInjection, PristineResultsUnchangedByTheFaultMachinery) {
  // An empty failure set must be a true no-op: the FaultSet fast path keeps
  // the pristine hot loop byte-identical, so a config with and without the
  // (empty) fault fields produces identical results.
  SimConfig cfg;
  cfg.k = 8;
  cfg.n = 2;
  cfg.vcs = 2;
  cfg.buffer_depth = 2;
  cfg.message_length = 16;
  cfg.pattern = Pattern::kHotspot;
  cfg.hot_fraction = 0.2;
  cfg.injection_rate = 2e-3;
  cfg.seed = 0x5EED;
  Simulator sim(cfg);
  sim.metrics().begin_measurement(0);
  sim.step_cycles(3000);
  EXPECT_EQ(sim.metrics().unreachable_total(), 0u);
  const SimResult res = sim.finalize(0);
  EXPECT_TRUE(res.conservation_ok);
  EXPECT_EQ(res.unreachable_pairs, 0u);
  EXPECT_EQ(res.reachable_pair_fraction, 1.0);
  EXPECT_EQ(res.failed_routers, 0u);
}

}  // namespace
}  // namespace kncube::sim
