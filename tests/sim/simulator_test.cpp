// Protocol-level simulator tests: measurement windows, steady state,
// saturation detection, reproducibility, and the statistics surfaced in
// SimResult.
#include <gtest/gtest.h>

#include <tuple>

#include "sim/simulator.hpp"

namespace kncube::sim {
namespace {

SimConfig small_config() {
  SimConfig cfg;
  cfg.k = 8;
  cfg.n = 2;
  cfg.vcs = 2;
  cfg.buffer_depth = 2;
  cfg.message_length = 16;
  cfg.injection_rate = 4e-4;
  cfg.pattern = Pattern::kHotspot;
  cfg.hot_fraction = 0.2;
  cfg.warmup_cycles = 4000;
  cfg.target_messages = 1200;
  cfg.max_cycles = 400000;
  cfg.seed = 7;
  return cfg;
}

TEST(Simulator, LowLoadRunIsSteadyAndUnsaturated) {
  const SimResult r = simulate(small_config());
  EXPECT_TRUE(r.steady);
  EXPECT_FALSE(r.saturated);
  EXPECT_GE(r.measured_messages, 1200u);
  EXPECT_GT(r.mean_latency, 0.0);
  EXPECT_GT(r.cycles, 4000u);
}

TEST(Simulator, LatencyNearZeroLoadBoundAtLightTraffic) {
  SimConfig cfg = small_config();
  cfg.injection_rate = 5e-5;
  const SimResult r = simulate(cfg);
  // Zero-load mean: ~ mean hops + Lm - 1; hops ~ 2*avg(ring) ~ 7.1 for k=8.
  EXPECT_GT(r.mean_latency, 15.0);
  EXPECT_LT(r.mean_latency, 30.0);
  EXPECT_LT(r.mean_source_wait, 1.0);
}

TEST(Simulator, AcceptedLoadTracksOfferedBelowSaturation) {
  const SimResult r = simulate(small_config());
  EXPECT_NEAR(r.generated_load, r.offered_load, 0.25 * r.offered_load);
  EXPECT_NEAR(r.accepted_load, r.generated_load, 0.15 * r.generated_load);
}

TEST(Simulator, SameSeedReproducesExactly) {
  const SimResult a = simulate(small_config());
  const SimResult b = simulate(small_config());
  EXPECT_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.measured_messages, b.measured_messages);
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(Simulator, DifferentSeedsAgreeStatistically) {
  SimConfig cfg = small_config();
  const SimResult a = simulate(cfg);
  cfg.seed = 1234;
  const SimResult b = simulate(cfg);
  EXPECT_NE(a.mean_latency, b.mean_latency);
  EXPECT_NEAR(a.mean_latency, b.mean_latency,
              5.0 * (a.latency_ci95 + b.latency_ci95) + 1.0);
}

TEST(Simulator, OverloadIsFlaggedSaturated) {
  SimConfig cfg = small_config();
  cfg.injection_rate = 0.02;  // ~10x saturation
  cfg.max_cycles = 60000;
  const SimResult r = simulate(cfg);
  EXPECT_TRUE(r.saturated);
  EXPECT_LT(r.accepted_load, r.offered_load);
}

TEST(Simulator, HotSpotSkewsChannelUtilization) {
  SimConfig cfg = small_config();
  cfg.hot_fraction = 0.5;
  const SimResult r = simulate(cfg);
  EXPECT_GT(r.hot_channel_utilization, 3.0 * r.mean_channel_utilization);
  EXPECT_GE(r.max_channel_utilization, r.hot_channel_utilization - 1e-9);
}

TEST(Simulator, HotChannelUtilizationMatchesTheory) {
  // Flit load on the hot-y channel next to the hot node:
  // lambda*(h*k*(k-1) + (1-h)*(k-1)/2) * Lm flits/cycle.
  SimConfig cfg = small_config();
  cfg.target_messages = 2500;
  const SimResult r = simulate(cfg);
  const double k = cfg.k;
  const double msg_rate = cfg.injection_rate *
                          (cfg.hot_fraction * k * (k - 1) +
                           (1 - cfg.hot_fraction) * (k - 1) / 2.0);
  const double expected = msg_rate * cfg.message_length;
  EXPECT_NEAR(r.hot_channel_utilization, expected, 0.25 * expected);
}

TEST(Simulator, HotMessagesAreSlowerThanRegular) {
  SimConfig cfg = small_config();
  cfg.hot_fraction = 0.4;
  const SimResult r = simulate(cfg);
  EXPECT_GT(r.mean_latency_hot, r.mean_latency_regular);
  // The overall mean is the traffic-share mix of the two classes.
  const double mix = cfg.hot_fraction * r.mean_latency_hot +
                     (1 - cfg.hot_fraction) * r.mean_latency_regular;
  EXPECT_NEAR(r.mean_latency, mix, 0.1 * r.mean_latency);
}

TEST(Simulator, QuantilesAreOrdered) {
  const SimResult r = simulate(small_config());
  EXPECT_LE(r.p50_latency, r.p95_latency);
  EXPECT_LE(r.p95_latency, r.p99_latency);
  EXPECT_GT(r.p50_latency, 0.0);
}

TEST(Simulator, NetworkLatencyPlusWaitApproximatesTotal) {
  const SimResult r = simulate(small_config());
  EXPECT_NEAR(r.mean_latency, r.mean_network_latency + r.mean_source_wait,
              0.05 * r.mean_latency);
}

TEST(Simulator, UniformPatternBalancesChannelLoad) {
  SimConfig cfg = small_config();
  cfg.pattern = Pattern::kUniform;
  const SimResult r = simulate(cfg);
  // Per eq (3): channel flit load = lambda*(k-1)/2*Lm, identical everywhere.
  const double expected = cfg.injection_rate * 3.5 * cfg.message_length;
  EXPECT_NEAR(r.mean_channel_utilization, expected, 0.2 * expected);
  EXPECT_LT(r.max_channel_utilization, 2.5 * r.mean_channel_utilization);
}

TEST(Simulator, MmppArrivalsRaiseLatencyAtEqualMeanLoad) {
  SimConfig cfg = small_config();
  cfg.target_messages = 2000;
  const SimResult poisson = simulate(cfg);
  cfg.arrivals = Arrivals::kMmpp;
  cfg.mmpp.burst_rate_multiplier = 8.0;
  cfg.mmpp.p_enter_burst = 0.0008;
  cfg.mmpp.p_leave_burst = 0.004;
  const SimResult bursty = simulate(cfg);
  EXPECT_GT(bursty.mean_latency, poisson.mean_latency);
}

// Property sweep over the design space: conservation and sanity on every
// configuration the benches touch.
class SimulatorSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, double>> {};

TEST_P(SimulatorSweep, ConservationAndSanity) {
  const auto [k, vcs, lm, h] = GetParam();
  SimConfig cfg;
  cfg.k = k;
  cfg.vcs = vcs;
  cfg.message_length = lm;
  cfg.pattern = Pattern::kHotspot;
  cfg.hot_fraction = h;
  // ~25% of the bottleneck capacity: well below saturation for every combo.
  const double coeff = h * k * (k - 1.0) + (1 - h) * (k - 1.0) / 2.0;
  cfg.injection_rate = 0.25 / (coeff * lm);
  cfg.warmup_cycles = 3000;
  cfg.target_messages = 600;
  cfg.max_cycles = 600000;
  const SimResult r = simulate(cfg);
  EXPECT_FALSE(r.saturated);
  EXPECT_GE(r.measured_messages, 600u);
  // Latency at least the zero-load floor (min hops = 1).
  EXPECT_GT(r.mean_latency, static_cast<double>(lm));
  EXPECT_LT(r.mean_latency, 20.0 * (lm + 2.0 * k));
  EXPECT_LE(r.max_channel_utilization, 1.0 + 1e-9);
  EXPECT_GE(r.mean_vc_multiplexing, 1.0);
  EXPECT_LE(r.mean_vc_multiplexing, static_cast<double>(vcs));
}

INSTANTIATE_TEST_SUITE_P(
    DesignSpace, SimulatorSweep,
    ::testing::Combine(::testing::Values(4, 8),        // k
                       ::testing::Values(2, 3),        // V
                       ::testing::Values(4, 16),       // Lm
                       ::testing::Values(0.0, 0.3, 0.8)  // h
                       ));

}  // namespace
}  // namespace kncube::sim
