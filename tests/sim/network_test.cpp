// Network-level structure: wiring, port naming, aggregate statistics.
#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace kncube::sim {
namespace {

SimConfig tiny_config(bool bidirectional = false) {
  SimConfig cfg;
  cfg.k = 4;
  cfg.n = 2;
  cfg.vcs = 2;
  cfg.buffer_depth = 2;
  cfg.message_length = 4;
  cfg.injection_rate = 0.0;
  cfg.bidirectional = bidirectional;
  return cfg;
}

TEST(Network, PortNamingRoundTrips) {
  Network net(tiny_config(true));
  const Router& r = net.router(0);
  for (int d = 0; d < 2; ++d) {
    for (auto dir : {topo::Direction::kPlus, topo::Direction::kMinus}) {
      const int port = r.out_port_for(d, dir);
      EXPECT_EQ(r.port_dim(port), d);
      EXPECT_EQ(r.port_dir(port), dir);
    }
  }
}

TEST(Network, UnidirectionalPortCount) {
  Network net(tiny_config(false));
  EXPECT_EQ(net.router(0).network_ports(), 2);
  Network bidir(tiny_config(true));
  EXPECT_EQ(bidir.router(0).network_ports(), 4);
}

TEST(Network, WiringDeliversAlongEveryLink) {
  // Send one message across each dimension from every node; every outgoing
  // channel must carry exactly Lm flits.
  const SimConfig cfg = tiny_config();
  Simulator sim(cfg);
  sim.metrics().begin_measurement(0);
  const auto& topo = sim.network().topology();
  std::uint64_t expected = 0;
  for (topo::NodeId id = 0; id < topo.size(); ++id) {
    for (int d = 0; d < topo.dims(); ++d) {
      sim.inject_now(id, topo.neighbor(id, d, topo::Direction::kPlus));
      ++expected;
    }
  }
  while (sim.metrics().delivered_total() < expected && sim.current_cycle() < 20000) {
    sim.step_cycles(16);
  }
  ASSERT_EQ(sim.metrics().delivered_total(), expected);
  for (topo::NodeId id = 0; id < topo.size(); ++id) {
    for (int p = 0; p < sim.network().router(id).network_ports(); ++p) {
      EXPECT_EQ(sim.network().router(id).output_port(p).flits_sent, 4u)
          << "node " << id << " port " << p;
    }
  }
}

TEST(Network, ChannelSummaryAggregates) {
  const SimConfig cfg = tiny_config();
  Simulator sim(cfg);
  sim.metrics().begin_measurement(0);
  sim.network().reset_channel_stats();
  sim.inject_now(0, 1);
  sim.step_cycles(100);
  const auto summary = sim.network().channel_summary();
  EXPECT_GT(summary.max_utilization, 0.0);
  EXPECT_GT(summary.mean_utilization, 0.0);
  EXPECT_LT(summary.mean_utilization, summary.max_utilization);
  EXPECT_GE(summary.mean_vc_multiplexing, 1.0);
}

TEST(Network, InflightAndBacklogAccounting) {
  SimConfig cfg = tiny_config();
  cfg.message_length = 8;
  Simulator sim(cfg);
  sim.metrics().begin_measurement(0);
  EXPECT_EQ(sim.network().inflight_flits(), 0u);
  // Two messages into the same injection VC queue: the second waits.
  sim.inject_now(0, 2);
  sim.inject_now(0, 2);
  sim.inject_now(0, 2);
  sim.step_cycles(1);
  EXPECT_GT(sim.network().inflight_flits(), 0u);
  sim.step_cycles(200);
  EXPECT_EQ(sim.network().inflight_flits(), 0u);
  EXPECT_EQ(sim.network().source_backlog(), 0u);
  EXPECT_EQ(sim.metrics().delivered_total(), 3u);
}

TEST(Network, ResetChannelStatsZeroesCounters) {
  const SimConfig cfg = tiny_config();
  Simulator sim(cfg);
  sim.metrics().begin_measurement(0);
  sim.inject_now(0, 1);
  sim.step_cycles(50);
  sim.network().reset_channel_stats();
  const auto& port = sim.network().router(0).output_port(0);
  EXPECT_EQ(port.flits_sent, 0u);
  EXPECT_EQ(port.stat_cycles, 0u);
  EXPECT_EQ(port.busy_vc_cycles, 0u);
}

TEST(Network, UtilizationAccessorMatchesPortStats) {
  const SimConfig cfg = tiny_config();
  Simulator sim(cfg);
  sim.metrics().begin_measurement(0);
  sim.network().reset_channel_stats();
  sim.inject_now(0, 1);
  sim.step_cycles(80);
  const double via_accessor =
      sim.network().channel_utilization(0, 0, topo::Direction::kPlus);
  const Router& r = sim.network().router(0);
  EXPECT_DOUBLE_EQ(via_accessor, r.output_port(0).utilization());
  EXPECT_NEAR(via_accessor, 4.0 / 80.0, 1e-12);
}

}  // namespace
}  // namespace kncube::sim
