// Zero-load correctness: a lone message's latency is exactly
// hops + Lm - 1 cycles (one cycle per header hop, then the body drains at
// one flit per cycle), for every route shape including wrap-arounds.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace kncube::sim {
namespace {

SimConfig quiet_config(int k, int lm, int vcs = 2, int buffer_depth = 2) {
  SimConfig cfg;
  cfg.k = k;
  cfg.n = 2;
  cfg.vcs = vcs;
  cfg.buffer_depth = buffer_depth;
  cfg.message_length = lm;
  cfg.injection_rate = 0.0;  // manual injection only
  cfg.pattern = Pattern::kUniform;
  return cfg;
}

/// Injects src->dest into an idle network and returns the measured latency.
double lone_message_latency(const SimConfig& cfg, topo::NodeId src,
                            topo::NodeId dest) {
  Simulator sim(cfg);
  sim.metrics().begin_measurement(0);
  sim.inject_now(src, dest);
  const std::uint64_t cap = 10000;
  for (std::uint64_t i = 0; i < cap && sim.metrics().delivered_total() == 0; ++i) {
    sim.step_cycles(1);
  }
  EXPECT_EQ(sim.metrics().delivered_total(), 1u) << "message never arrived";
  return sim.metrics().latency().mean();
}

TEST(SingleMessage, AdjacentHopMinimalLatency) {
  const SimConfig cfg = quiet_config(4, 1);
  EXPECT_EQ(lone_message_latency(cfg, 0, 1), 1.0);  // H=1, Lm=1
}

TEST(SingleMessage, LatencyIsHopsPlusBodyDrain) {
  const SimConfig cfg = quiet_config(8, 16);
  const topo::KAryNCube net(8, 2);
  const topo::NodeId src = 0;
  for (topo::NodeId dest : {1u, 7u, 8u, 9u, 36u, 63u}) {
    const double expected = net.hops(src, dest) + 16 - 1;
    EXPECT_EQ(lone_message_latency(cfg, src, dest), expected) << "dest=" << dest;
  }
}

TEST(SingleMessage, WrapAroundPathsAreExact) {
  const SimConfig cfg = quiet_config(6, 8);
  const topo::KAryNCube net(6, 2);
  topo::Coords a{}, b{};
  a[0] = 5;
  a[1] = 5;
  b[0] = 1;
  b[1] = 2;
  const topo::NodeId src = net.node_at(a);
  const topo::NodeId dest = net.node_at(b);
  // x: 5->1 wraps (2 hops), y: 5->2 wraps (3 hops).
  EXPECT_EQ(net.hops(src, dest), 5);
  EXPECT_EQ(lone_message_latency(cfg, src, dest), 5 + 8 - 1);
}

TEST(SingleMessage, LongestPathInNetwork) {
  const SimConfig cfg = quiet_config(5, 4);
  const topo::KAryNCube net(5, 2);
  // Unidirectional: worst case is k-1 hops per dimension.
  topo::Coords a{}, b{};
  b[0] = 4;
  b[1] = 4;
  const double lat =
      lone_message_latency(cfg, net.node_at(a), net.node_at(b));
  EXPECT_EQ(lat, 8 + 4 - 1);
}

TEST(SingleMessage, ThreeDimensionalRouting) {
  SimConfig cfg = quiet_config(4, 8);
  cfg.n = 3;
  const topo::KAryNCube net(4, 3);
  const topo::NodeId src = 0;
  const topo::NodeId dest = net.size() - 1;  // (3,3,3): 3 hops per dim
  EXPECT_EQ(lone_message_latency(cfg, src, dest), 9 + 8 - 1);
}

TEST(SingleMessage, BidirectionalTakesShortestDirection) {
  SimConfig cfg = quiet_config(8, 8);
  cfg.bidirectional = true;
  const topo::KAryNCube net(8, 2, true);
  topo::Coords a{}, b{};
  a[0] = 0;
  b[0] = 6;  // minus direction: 2 hops instead of 6
  EXPECT_EQ(lone_message_latency(cfg, net.node_at(a), net.node_at(b)), 2 + 8 - 1);
}

TEST(SingleMessage, NetworkLatencyEqualsTotalWhenSourceIdle) {
  const SimConfig cfg = quiet_config(8, 16);
  Simulator sim(cfg);
  sim.metrics().begin_measurement(0);
  sim.inject_now(0, 3);
  sim.step_cycles(100);
  ASSERT_EQ(sim.metrics().delivered_total(), 1u);
  EXPECT_DOUBLE_EQ(sim.metrics().source_wait().mean(), 0.0);
  EXPECT_DOUBLE_EQ(sim.metrics().network_latency().mean(),
                   sim.metrics().latency().mean());
}

TEST(SingleMessage, AllFlitsConsumedNoResidue) {
  const SimConfig cfg = quiet_config(6, 12);
  Simulator sim(cfg);
  sim.metrics().begin_measurement(0);
  sim.inject_now(2, 17);
  sim.step_cycles(200);
  EXPECT_EQ(sim.metrics().flits_delivered(), 12u);
  EXPECT_EQ(sim.network().inflight_flits(), 0u);
  EXPECT_EQ(sim.network().source_backlog(), 0u);
}

TEST(SingleMessage, UtilizationAccountingMatchesPath) {
  // A lone Lm-flit message crossing H channels sends exactly H*Lm flits.
  const SimConfig cfg = quiet_config(6, 10);
  Simulator sim(cfg);
  sim.metrics().begin_measurement(0);
  const topo::KAryNCube& net = sim.network().topology();
  const topo::NodeId src = 1;
  const topo::NodeId dest = 15;
  sim.inject_now(src, dest);
  sim.step_cycles(200);
  std::uint64_t flits = 0;
  for (topo::NodeId id = 0; id < net.size(); ++id) {
    for (int p = 0; p < sim.network().router(id).network_ports(); ++p) {
      flits += sim.network().router(id).output_port(p).flits_sent;
    }
  }
  EXPECT_EQ(flits, static_cast<std::uint64_t>(net.hops(src, dest)) * 10u);
}

}  // namespace
}  // namespace kncube::sim
