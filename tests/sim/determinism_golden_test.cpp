// Golden determinism pins for the simulator hot loop.
//
// Each case runs a fixed-seed configuration and asserts *exact* equality —
// bit-level for doubles, integer equality for counters, and an FNV-1a
// checksum over every output channel's integer statistics — against values
// recorded from the pre-SoA router (seed `main` plus the measurement-
// anchored stop-poll fix, which landed in the same PR). The SoA flit-slab /
// requester-list / active-router-set refactor must reproduce the seed
// behaviour cycle for cycle; any drift in arbitration order, credit timing
// or stats accounting trips these pins.
//
// To regenerate after an *intentional* behaviour change:
//   KNCUBE_PRINT_GOLDEN=1 ./sim_tests --gtest_filter='DeterminismGolden.*'
// and paste the printed block (values are printed as hexfloat so the
// round-trip is exact).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "core/scenario_spec.hpp"
#include "sim/simulator.hpp"
#include "util/thread_pool.hpp"
#include "validate/replication.hpp"

namespace kncube::sim {
namespace {

/// FNV-1a over the integer channel statistics of every (router, port).
std::uint64_t channel_stats_checksum(const Network& net) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (topo::NodeId id = 0; id < net.size(); ++id) {
    const Router& r = net.router(id);
    for (int p = 0; p < r.network_ports(); ++p) {
      const auto& op = r.output_port(p);
      mix(op.flits_sent);
      mix(op.busy_vc_cycles);
      mix(op.busy_vc_sq_cycles);
      mix(op.busy_cycles);
      mix(op.stat_cycles);
    }
  }
  return h;
}

struct Golden {
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t flits_delivered = 0;
  std::uint64_t inflight = 0;
  std::uint64_t backlog = 0;
  std::uint64_t checksum = 0;
  double mean_latency = 0.0;
  double mean_network_latency = 0.0;
};

bool print_mode() { return std::getenv("KNCUBE_PRINT_GOLDEN") != nullptr; }

/// Runs `cycles` cycles with measurement from cycle 0 at the given thread
/// count and returns the observed pin values.
Golden run_once(const SimConfig& cfg, std::uint64_t cycles, int sim_threads) {
  SimConfig tcfg = cfg;
  tcfg.sim_threads = sim_threads;
  Simulator sim(tcfg);
  sim.metrics().begin_measurement(0);
  sim.step_cycles(cycles);

  Golden got;
  got.generated = sim.metrics().generated_total();
  got.delivered = sim.metrics().delivered_total();
  got.flits_delivered = sim.metrics().flits_delivered();
  got.inflight = sim.network().inflight_flits();
  got.backlog = sim.network().source_backlog();
  got.checksum = channel_stats_checksum(sim.network());
  got.mean_latency = sim.metrics().latency().mean();
  got.mean_network_latency = sim.metrics().network_latency().mean();
  return got;
}

/// Sweeps sim_threads over {1, 2, 4} and either prints the pin (once, from
/// the serial run) or checks *every* thread count against the same recorded
/// values — the sharded engine's bit-identity contract is part of the pin.
void run_case(const char* name, const SimConfig& cfg, std::uint64_t cycles,
              const Golden& want) {
  for (const int threads : {1, 2, 4}) {
    const Golden got = run_once(cfg, cycles, threads);
    if (print_mode()) {
      if (threads != 1) continue;
      std::cout.precision(17);
      std::cout << "  // " << name << "\n"
                << std::hexfloat << "  {" << got.generated << "u, " << got.delivered
                << "u, " << got.flits_delivered << "u, " << got.inflight << "u, "
                << got.backlog << "u, 0x" << std::hex << got.checksum << std::dec
                << "ULL, " << got.mean_latency << ", " << got.mean_network_latency
                << "},\n"
                << std::defaultfloat;
      continue;
    }
    EXPECT_EQ(got.generated, want.generated) << name << " T=" << threads;
    EXPECT_EQ(got.delivered, want.delivered) << name << " T=" << threads;
    EXPECT_EQ(got.flits_delivered, want.flits_delivered) << name << " T=" << threads;
    EXPECT_EQ(got.inflight, want.inflight) << name << " T=" << threads;
    EXPECT_EQ(got.backlog, want.backlog) << name << " T=" << threads;
    EXPECT_EQ(got.checksum, want.checksum) << name << " T=" << threads;
    EXPECT_EQ(got.mean_latency, want.mean_latency) << name << " T=" << threads;
    EXPECT_EQ(got.mean_network_latency, want.mean_network_latency)
        << name << " T=" << threads;
  }
}

TEST(DeterminismGolden, HotspotK8) {
  // The paper's workload shape: unidirectional 8x8 torus, hot-spot traffic,
  // moderate load. Exercises dateline classes, hot-column contention and the
  // active-set scheduler (most routers idle most cycles).
  SimConfig cfg;
  cfg.k = 8;
  cfg.n = 2;
  cfg.bidirectional = false;
  cfg.vcs = 2;
  cfg.buffer_depth = 2;
  cfg.message_length = 16;
  cfg.pattern = Pattern::kHotspot;
  cfg.hot_fraction = 0.2;
  cfg.injection_rate = 2e-3;
  cfg.seed = 0xDE7E12;
  run_case("HotspotK8", cfg, 20000,
           {2506u, 2502u, 40063u, 33u, 0u, 0xbccd2532e298073dULL,
            0x1.c9490e1eb208bp+4, 0x1.b60e531513d95p+4});
}

TEST(DeterminismGolden, HotspotK8HighLoad) {
  // Near saturation: long queues, continuous arbitration conflicts, requester
  // lists that stay populated — the stress case for round-robin parity.
  SimConfig cfg;
  cfg.k = 8;
  cfg.n = 2;
  cfg.vcs = 4;
  cfg.buffer_depth = 4;
  cfg.message_length = 32;
  cfg.pattern = Pattern::kHotspot;
  cfg.hot_fraction = 0.2;
  cfg.injection_rate = 2.5e-3;
  cfg.seed = 0xC0FFEE;
  run_case("HotspotK8HighLoad", cfg, 8000,
           {1293u, 1113u, 35778u, 2174u, 107u, 0xc2b9ad7ffded966ULL,
            0x1.68a611054a4bbp+7, 0x1.1733c0847c34p+7});
}

TEST(DeterminismGolden, BidirectionalUniformK4) {
  // Bidirectional 4x4 torus, uniform traffic, odd VC count (asymmetric
  // dateline class split) and a non-power-of-two buffer depth (ring capacity
  // rounds up while credits still cap at buffer_depth).
  SimConfig cfg;
  cfg.k = 4;
  cfg.n = 2;
  cfg.bidirectional = true;
  cfg.vcs = 3;
  cfg.buffer_depth = 3;
  cfg.message_length = 4;
  cfg.pattern = Pattern::kUniform;
  cfg.injection_rate = 0.02;
  cfg.seed = 99;
  run_case("BidirectionalUniformK4", cfg, 6000,
           {1919u, 1919u, 7676u, 0u, 0u, 0xd43eaca8df11f295ULL,
            0x1.59a58d8a56b71p+2, 0x1.59502cd2c6c51p+2});
}

TEST(DeterminismGolden, SingleFlitCubeK4N3) {
  // 3-D cube with single-flit messages (head == tail) and depth-1 buffers:
  // every push/pop path, credit and release fires on the same flit.
  SimConfig cfg;
  cfg.k = 4;
  cfg.n = 3;
  cfg.vcs = 2;
  cfg.buffer_depth = 1;
  cfg.message_length = 1;
  cfg.pattern = Pattern::kHotspot;
  cfg.hot_fraction = 0.3;
  cfg.injection_rate = 0.01;
  cfg.seed = 7;
  run_case("SingleFlitCubeK4N3", cfg, 6000,
           {3853u, 3849u, 3849u, 4u, 0u, 0xdcd0080558ea6f0eULL,
            0x1.265c2f16f23a5p+2, 0x1.2503645d61932p+2});
}

TEST(DeterminismGolden, HypercubeD6Hotspot) {
  // Binary hypercube as a k = 2 n-cube (dimension-order routing is e-cube):
  // 64 nodes, hot-spot traffic — the predecessor-model substrate that the
  // validation suite sweeps; single-hop rings mean no dateline classes.
  SimConfig cfg;
  cfg.k = 2;
  cfg.n = 6;
  cfg.vcs = 2;
  cfg.buffer_depth = 2;
  cfg.message_length = 16;
  cfg.pattern = Pattern::kHotspot;
  cfg.hot_fraction = 0.2;
  cfg.injection_rate = 3e-3;
  cfg.seed = 0xCAB1E;
  run_case("HypercubeD6Hotspot", cfg, 12000,
           {2287u, 2284u, 36571u, 21u, 0u, 0x628687da0ef68d4aULL,
            0x1.332e2dbaf4ca6p+4, 0x1.2d9aad0ecb8bfp+4});
}

TEST(DeterminismGolden, MmppHotspotK8) {
  // MMPP bursty arrivals (the §5 extension): per-node two-state modulated
  // Bernoulli sources layered on the hot-spot pattern. Pins the burst-state
  // transition RNG stream alongside the routing/arbitration streams.
  SimConfig cfg;
  cfg.k = 8;
  cfg.n = 2;
  cfg.vcs = 2;
  cfg.buffer_depth = 2;
  cfg.message_length = 16;
  cfg.pattern = Pattern::kHotspot;
  cfg.hot_fraction = 0.2;
  cfg.injection_rate = 1.5e-3;
  cfg.arrivals = Arrivals::kMmpp;
  cfg.seed = 0xB0B5;
  run_case("MmppHotspotK8", cfg, 20000,
           {1820u, 1817u, 29099u, 21u, 0u, 0x772f6d5353f4f90ULL,
            0x1.ad0f134d59781p+4, 0x1.95b0415faa565p+4});
}

TEST(DeterminismGolden, MeshK8N2Uniform) {
  // 8x8 mesh, uniform traffic: no wrap links (edge ports unconnected), no
  // dateline classes (all VCs are class 0), position-dependent channel load
  // peaking at the bisection links. Pins the mesh routing/wiring path.
  SimConfig cfg;
  cfg.k = 8;
  cfg.n = 2;
  cfg.mesh = true;
  cfg.vcs = 2;
  cfg.buffer_depth = 2;
  cfg.message_length = 16;
  cfg.pattern = Pattern::kUniform;
  cfg.injection_rate = 8e-3;
  cfg.seed = 0x4D455348;  // "MESH"
  run_case("MeshK8N2Uniform", cfg, 20000,
           {10084u, 10069u, 161194u, 150u, 0u, 0xcb293402a592d1dfULL,
            0x1.daab9da8630ebp+4, 0x1.ce79e2a8f8c25p+4});
}

TEST(DeterminismGolden, MeshK4N3Hotspot) {
  // 4x4x4 mesh with a centre hot spot: hot-spot funnelling without the
  // torus's symmetry, V = 1 (legal on a mesh — acyclic routing needs no
  // dateline split) and depth-1 buffers to stress the credit path.
  SimConfig cfg;
  cfg.k = 4;
  cfg.n = 3;
  cfg.mesh = true;
  cfg.vcs = 1;
  cfg.buffer_depth = 1;
  cfg.message_length = 8;
  cfg.pattern = Pattern::kHotspot;
  cfg.hot_fraction = 0.3;
  cfg.injection_rate = 4e-3;
  cfg.seed = 0xCAFE42;
  run_case("MeshK4N3Hotspot", cfg, 16000,
           {4049u, 4042u, 32348u, 44u, 0u, 0x9e1a02730f915509ULL,
            0x1.5b0c4977f4dacp+4, 0x1.44c61ca09e15fp+4});
}

TEST(DeterminismGolden, FaultyMeshK8N2) {
  // Degraded 8x8 mesh: two dead routers plus one failed directed link (the
  // faulty_mesh.spec shape). Pins the fault-masked wiring, the unreachable-
  // at-injection classification and the sharded engine's bit-identity on a
  // faulty network — generated here counts unreachable traffic too.
  SimConfig cfg;
  cfg.k = 8;
  cfg.n = 2;
  cfg.mesh = true;
  cfg.vcs = 2;
  cfg.buffer_depth = 2;
  cfg.message_length = 16;
  cfg.pattern = Pattern::kUniform;
  cfg.injection_rate = 8e-3;
  cfg.seed = 0x4D455348;  // same seed as MeshK8N2Uniform: only faults differ
  cfg.failed_routers = {9, 27};
  cfg.failed_links = {{36, 0, topo::Direction::kPlus}};
  run_case("FaultyMeshK8N2", cfg, 20000,
           {9763u, 7488u, 119867u, 101u, 0u, 0x701403dc6ad38a0aULL,
            0x1.aecf50f50f511p+4, 0x1.a79c71c71c713p+4});
}

TEST(DeterminismGolden, FaultyTorusK8N2) {
  // Degraded unidirectional 8x8 torus under hot-spot traffic with seed-
  // derived random failures (rate 2/64: exactly two routers, hot node
  // protected). Pins the random-mode resolution path end-to-end.
  SimConfig cfg;
  cfg.k = 8;
  cfg.n = 2;
  cfg.bidirectional = false;
  cfg.vcs = 2;
  cfg.buffer_depth = 2;
  cfg.message_length = 16;
  cfg.pattern = Pattern::kHotspot;
  cfg.hot_fraction = 0.2;
  cfg.injection_rate = 2e-3;
  cfg.seed = 0xDE7E12;  // same seed as HotspotK8: only faults differ
  cfg.failure_rate = 2.0 / 64.0;
  cfg.failure_seed = 7;
  run_case("FaultyTorusK8N2", cfg, 20000,
           {2426u, 1963u, 31439u, 33u, 0u, 0x51031869d82f97a7ULL,
            0x1.adb9d6875e499p+4, 0x1.9ffbd3a8e264fp+4});
}

TEST(DeterminismGolden, HotspotK32Sharded) {
  // Large network (32x32 = 1024 routers): every sweep entry gets real shards
  // (4 threads => 256 routers each), so the cross-shard staging, barrier and
  // metric-replay machinery is pinned at scale, not just on the 64-node
  // cases. Short run — the active-set scheduler keeps most of the 1024
  // routers idle at this load.
  SimConfig cfg;
  cfg.k = 32;
  cfg.n = 2;
  cfg.bidirectional = false;
  cfg.vcs = 2;
  cfg.buffer_depth = 2;
  cfg.message_length = 16;
  cfg.pattern = Pattern::kHotspot;
  cfg.hot_fraction = 0.1;
  cfg.injection_rate = 4e-4;
  cfg.seed = 0x5A4D32;
  run_case("HotspotK32Sharded", cfg, 6000,
           {2506u, 2482u, 39795u, 301u, 0u, 0x69fef3acc3f4fc88ULL,
            0x1.c22804f36aa5cp+5, 0x1.ba78e216b0fe8p+5});
}

TEST(DeterminismGolden, MeshReplicationBitIdenticalAcrossThreadCountsAndRuns) {
  // The mesh goldens above pin one process; this pins the *measurement
  // subsystem* over the mesh: ReplicationRunner aggregates must be
  // bit-identical when re-run and when the worker count changes (per-
  // replication seed streams are scheduling-independent).
  core::ScenarioSpec spec;
  spec.topology = core::MeshTopology{8, 2};
  spec.traffic = core::UniformTraffic{};
  spec.message_length = 16;
  spec.warmup_cycles = 2000;
  spec.target_messages = 400;
  spec.max_cycles = 200000;

  util::ThreadPool one(1);
  util::ThreadPool many(4);
  const validate::ReplicationRunner serial(spec, 3, &one);
  const validate::ReplicationRunner serial_again(spec, 3, &one);
  const validate::ReplicationRunner parallel(spec, 3, &many);

  const double lambda = 5e-3;
  const validate::ReplicationPoint a = serial.run(lambda);
  const validate::ReplicationPoint b = serial_again.run(lambda);
  const validate::ReplicationPoint c = parallel.run(lambda);
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  for (const validate::ReplicationPoint* p : {&b, &c}) {
    EXPECT_EQ(bits(a.latency.mean), bits(p->latency.mean));
    EXPECT_EQ(bits(a.latency.half_width), bits(p->latency.half_width));
    EXPECT_EQ(bits(a.network_latency.mean), bits(p->network_latency.mean));
    EXPECT_EQ(bits(a.throughput.mean), bits(p->throughput.mean));
    ASSERT_EQ(a.results.size(), p->results.size());
    for (std::size_t r = 0; r < a.results.size(); ++r) {
      EXPECT_EQ(bits(a.results[r].mean_latency), bits(p->results[r].mean_latency))
          << "replication " << r;
      EXPECT_EQ(a.results[r].cycles, p->results[r].cycles) << "replication " << r;
    }
  }
}

TEST(DeterminismGolden, FullMeasurementProtocol) {
  // The complete run() protocol (warm-up, measurement window, anchored stop
  // polling): pins end-to-end results including the steady-state machinery.
  SimConfig cfg;
  cfg.k = 8;
  cfg.n = 2;
  cfg.vcs = 2;
  cfg.buffer_depth = 2;
  cfg.message_length = 16;
  cfg.pattern = Pattern::kHotspot;
  cfg.hot_fraction = 0.2;
  cfg.injection_rate = 1.5e-3;
  cfg.seed = 0xBEEF;
  cfg.warmup_cycles = 2000;
  cfg.target_messages = 1200;
  cfg.max_cycles = 300000;

  Simulator sim(cfg);
  const SimResult res = sim.run();
  if (print_mode()) {
    std::cout.precision(17);
    std::cout << "  // FullMeasurementProtocol\n"
              << "  cycles=" << res.cycles << " messages=" << res.measured_messages
              << std::hexfloat << " mean=" << res.mean_latency
              << " p95=" << res.p95_latency << " hot_util=" << res.hot_channel_utilization
              << " chk=0x" << std::hex << channel_stats_checksum(sim.network())
              << std::dec << std::defaultfloat << "\n";
    return;
  }
  EXPECT_EQ(res.cycles, 34256u);
  EXPECT_EQ(res.measured_messages, 3009u);
  EXPECT_EQ(res.mean_latency, 0x1.a237a41d9b7p+4);
  EXPECT_EQ(res.p95_latency, 0x1.5e75555555551p+5);
  EXPECT_EQ(res.hot_channel_utilization, 0x1.479e79e79e79ep-2);
  EXPECT_EQ(channel_stats_checksum(sim.network()), 0x383811799608d566ULL);
}

}  // namespace
}  // namespace kncube::sim
