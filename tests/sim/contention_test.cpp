// Contention behaviour: physical-channel bandwidth sharing, VC multiplexing
// and blocking when messages compete for the same outputs.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace kncube::sim {
namespace {

SimConfig quiet(int k, int lm, int vcs = 2) {
  SimConfig cfg;
  cfg.k = k;
  cfg.n = 2;
  cfg.vcs = vcs;
  cfg.buffer_depth = 2;
  cfg.message_length = lm;
  cfg.injection_rate = 0.0;
  return cfg;
}

void run_until_delivered(Simulator& sim, std::uint64_t count, std::uint64_t cap) {
  while (sim.metrics().delivered_total() < count && sim.current_cycle() < cap) {
    sim.step_cycles(1);
  }
  ASSERT_EQ(sim.metrics().delivered_total(), count);
}

TEST(Contention, TwoMessagesSharingALinkSplitBandwidth) {
  // Sources 0 and 1 both send along row 0 through the link 1->2.
  Simulator sim(quiet(8, 20));
  sim.metrics().begin_measurement(0);
  sim.inject_now(0, 3);
  sim.inject_now(1, 3);
  run_until_delivered(sim, 2, 5000);

  // Zero-load latencies would be (3 hops + 19) = 22 and (2 + 19) = 21; with
  // sharing, total delivered time stretches but both must complete within
  // roughly the sum of the message service times.
  EXPECT_GE(sim.metrics().latency().max(), 21.0 + 10.0);  // someone was delayed
  EXPECT_LE(sim.metrics().latency().max(), 21.0 + 20.0 + 8.0);
  EXPECT_EQ(sim.metrics().flits_delivered(), 40u);
}

TEST(Contention, ObservedVcMultiplexingStaysWithinV) {
  Simulator sim(quiet(8, 24, 2));
  sim.metrics().begin_measurement(0);
  // Four flows through overlapping row-0 links.
  sim.inject_now(0, 4);
  sim.inject_now(1, 5);
  sim.inject_now(2, 6);
  sim.inject_now(3, 7);
  run_until_delivered(sim, 4, 5000);
  for (topo::NodeId id = 0; id < sim.network().size(); ++id) {
    const Router& r = sim.network().router(id);
    for (int p = 0; p < r.network_ports(); ++p) {
      const double v = r.output_port(p).vc_multiplexing();
      EXPECT_GE(v, 1.0);
      EXPECT_LE(v, 2.0);
    }
  }
}

TEST(Contention, SameClassMessagesSerializePerLink) {
  // With V=2 the dateline split leaves exactly one VC per class, so two
  // class-0 messages sharing a link serialize on it: the channel never has
  // both VCs busy.
  Simulator sim(quiet(8, 32, 2));
  sim.metrics().begin_measurement(0);
  sim.inject_now(1, 4);  // class 0 everywhere (no wrap)
  sim.inject_now(2, 5);  // class 0 everywhere
  run_until_delivered(sim, 2, 5000);
  const Router& r2 = sim.network().router(2);
  const auto& port = r2.output_port(r2.out_port_for(0, topo::Direction::kPlus));
  EXPECT_DOUBLE_EQ(port.vc_multiplexing(), 1.0);
  EXPECT_EQ(port.flits_sent, 64u);
}

TEST(Contention, CrossClassMessagesMultiplexALink) {
  // A pre-wrap (class 0) and a post-wrap (class 1) message occupy the two
  // VC classes of the shared link simultaneously and time-multiplex its
  // bandwidth — the behaviour Dally's Vbar models.
  Simulator sim(quiet(8, 32, 2));
  sim.metrics().begin_measurement(0);
  sim.inject_now(1, 4);  // 1->2->3->4, class 0 at link 2->3
  sim.inject_now(7, 5);  // 7->0(wrap)->...->5, class 1 at link 2->3
  run_until_delivered(sim, 2, 5000);
  const Router& r2 = sim.network().router(2);
  const auto& port = r2.output_port(r2.out_port_for(0, topo::Direction::kPlus));
  EXPECT_GT(port.vc_multiplexing(), 1.0);
  EXPECT_EQ(port.flits_sent, 64u);
}

TEST(Contention, UtilizationReflectsFlitsSent) {
  Simulator sim(quiet(6, 10));
  sim.metrics().begin_measurement(0);
  sim.inject_now(0, 2);
  sim.step_cycles(300);
  const Router& r0 = sim.network().router(0);
  const auto& port = r0.output_port(0);
  EXPECT_EQ(port.flits_sent, 10u);
  EXPECT_NEAR(port.utilization(), 10.0 / 300.0, 1e-9);
}

TEST(Contention, HeadOfLineMessageDoesNotStarveOtherVc) {
  // Message A occupies a path; message B on the other injection VC with a
  // disjoint path must proceed immediately (crossbar is non-blocking).
  Simulator sim(quiet(8, 40));
  sim.metrics().begin_measurement(0);
  sim.inject_now(0, 2);   // row 0
  sim.inject_now(0, 16);  // column 0 (disjoint output port)
  run_until_delivered(sim, 2, 5000);
  // B (2 hops in y... node 16 is (0,2): 2 y-hops): zero-load 2+39=41; no
  // interference expected.
  EXPECT_LE(sim.metrics().latency().min(), 41.0 + 1.0);
}

TEST(Contention, ManyToOneCreatesTreeOfBlockedMessages) {
  // All row-0 nodes fire at the same destination: deliveries must serialise
  // on the last link, roughly one message per Lm cycles.
  const int lm = 12;
  Simulator sim(quiet(8, lm));
  sim.metrics().begin_measurement(0);
  for (topo::NodeId src = 0; src < 7; ++src) sim.inject_now(src, 7);
  run_until_delivered(sim, 7, 20000);
  EXPECT_GE(sim.current_cycle(), 7u * lm);  // serialisation lower bound
  EXPECT_EQ(sim.metrics().flits_delivered(), 7u * lm);
  EXPECT_EQ(sim.network().inflight_flits(), 0u);
}

}  // namespace
}  // namespace kncube::sim
