// ReplicationRunner: seed-stream derivation, aggregation correctness, and
// the central determinism contract — results are bit-identical regardless
// of how many worker threads execute the replication grid.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <set>
#include <vector>

#include "sim/simulator.hpp"
#include "validate/replication.hpp"

namespace kncube::validate {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

core::ScenarioSpec small_spec() {
  core::ScenarioSpec spec;
  spec.torus().k = 4;
  spec.hotspot().fraction = 0.2;
  spec.message_length = 8;
  spec.target_messages = 300;
  spec.warmup_cycles = 1000;
  spec.max_cycles = 120000;
  return spec;
}

TEST(ReplicationSeed, DeterministicAndDecorrelated) {
  const core::ScenarioSpec spec = small_spec();
  const std::uint64_t key = spec.key();

  // Stable across calls.
  EXPECT_EQ(sim::replication_seed(key, spec.seed, 0),
            sim::replication_seed(key, spec.seed, 0));

  // Distinct across replications, scenarios and base seeds.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t r = 0; r < 32; ++r) {
    seeds.insert(sim::replication_seed(key, spec.seed, r));
  }
  EXPECT_EQ(seeds.size(), 32u);
  EXPECT_NE(sim::replication_seed(key, spec.seed, 0),
            sim::replication_seed(key ^ 1, spec.seed, 0));
  EXPECT_NE(sim::replication_seed(key, spec.seed, 0),
            sim::replication_seed(key, spec.seed + 1, 0));
}

TEST(ReplicationRunner, SeedsDeriveFromSpecKey) {
  const core::ScenarioSpec spec = small_spec();
  const ReplicationRunner runner(spec, 3);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(runner.replication_seed(r),
              sim::replication_seed(spec.key(), spec.seed, static_cast<std::uint64_t>(r)));
  }
}

TEST(ReplicationRunner, AggregatesMatchDirectSimulations) {
  const core::ScenarioSpec spec = small_spec();
  const double lambda = 0.002;
  const int R = 3;
  const ReplicationRunner runner(spec, R);
  const ReplicationPoint pt = runner.run(lambda);

  ASSERT_EQ(pt.replications, R);
  ASSERT_EQ(pt.results.size(), static_cast<std::size_t>(R));
  EXPECT_EQ(pt.lambda, lambda);

  // Each replication slot must hold exactly the simulate() result for its
  // derived seed, and the CI must be the Student-t interval over the slots.
  std::vector<double> latencies;
  for (int r = 0; r < R; ++r) {
    sim::SimConfig cfg = core::to_sim_config(spec, lambda);
    cfg.seed = runner.replication_seed(r);
    const sim::SimResult direct = sim::simulate(cfg);
    EXPECT_EQ(bits(pt.results[r].mean_latency), bits(direct.mean_latency)) << r;
    EXPECT_EQ(pt.results[r].measured_messages, direct.measured_messages) << r;
    latencies.push_back(direct.mean_latency);
  }
  const util::ConfidenceInterval expect = util::student_t_ci(latencies, 0.95);
  EXPECT_EQ(bits(pt.latency.mean), bits(expect.mean));
  EXPECT_EQ(bits(pt.latency.half_width), bits(expect.half_width));
  EXPECT_EQ(pt.saturated_replications, 0);
  EXPECT_FALSE(pt.saturated());
}

TEST(ReplicationRunner, BitIdenticalAcrossThreadCounts) {
  // The acceptance-criteria pin: one worker vs several workers, same bits
  // everywhere — seeds are schedule-independent and aggregation is a
  // sequential fold in replication order.
  const core::ScenarioSpec spec = small_spec();
  const std::vector<double> lambdas = {0.001, 0.004};

  util::ThreadPool one(1);
  util::ThreadPool many(4);
  const ReplicationRunner serial(spec, 4, &one);
  const ReplicationRunner parallel(spec, 4, &many);

  const auto a = serial.run(lambdas);
  const auto b = parallel.run(lambdas);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    EXPECT_EQ(bits(a[p].latency.mean), bits(b[p].latency.mean)) << p;
    EXPECT_EQ(bits(a[p].latency.half_width), bits(b[p].latency.half_width)) << p;
    EXPECT_EQ(bits(a[p].network_latency.mean), bits(b[p].network_latency.mean)) << p;
    EXPECT_EQ(bits(a[p].throughput.mean), bits(b[p].throughput.mean)) << p;
    EXPECT_EQ(a[p].saturated_replications, b[p].saturated_replications) << p;
    EXPECT_EQ(a[p].steady_replications, b[p].steady_replications) << p;
    ASSERT_EQ(a[p].results.size(), b[p].results.size()) << p;
    for (std::size_t r = 0; r < a[p].results.size(); ++r) {
      EXPECT_EQ(bits(a[p].results[r].mean_latency), bits(b[p].results[r].mean_latency))
          << p << "," << r;
      EXPECT_EQ(a[p].results[r].cycles, b[p].results[r].cycles) << p << "," << r;
    }
  }
}

TEST(ReplicationRunner, OuterWorkersComposeWithInnerSimThreads) {
  // Replication-level parallelism (worker pool) nests with intra-simulation
  // sharding (sim.threads): since sim.threads is excluded from the spec
  // key(), per-replication seeds are unchanged, and sharded stepping is
  // bit-identical, every (outer x inner) combination must reproduce the
  // serial ReplicationPoint exactly. k = 8 so the inner knob gets real
  // shards (64 routers -> 4 x 16).
  core::ScenarioSpec spec = small_spec();
  spec.torus().k = 8;
  spec.target_messages = 200;
  ASSERT_EQ(spec.key(), [&] {
    core::ScenarioSpec t = spec;
    t.sim_threads = 4;
    return t.key();
  }());

  util::ThreadPool one(1);
  util::ThreadPool many(3);
  const ReplicationRunner serial(spec, 3, &one);
  core::ScenarioSpec sharded_spec = spec;
  sharded_spec.sim_threads = 4;
  const ReplicationRunner sharded_serial_pool(sharded_spec, 3, &one);
  const ReplicationRunner sharded_parallel_pool(sharded_spec, 3, &many);

  const double lambda = 0.002;
  const ReplicationPoint a = serial.run(lambda);
  for (const ReplicationRunner* runner :
       {&sharded_serial_pool, &sharded_parallel_pool}) {
    const ReplicationPoint b = runner->run(lambda);
    EXPECT_EQ(bits(a.latency.mean), bits(b.latency.mean));
    EXPECT_EQ(bits(a.latency.half_width), bits(b.latency.half_width));
    EXPECT_EQ(bits(a.network_latency.mean), bits(b.network_latency.mean));
    EXPECT_EQ(bits(a.throughput.mean), bits(b.throughput.mean));
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t r = 0; r < a.results.size(); ++r) {
      EXPECT_EQ(bits(a.results[r].mean_latency), bits(b.results[r].mean_latency))
          << "replication " << r;
      EXPECT_EQ(a.results[r].cycles, b.results[r].cycles) << "replication " << r;
    }
  }
}

TEST(ReplicationRunner, SingleReplicationHasInfiniteHalfWidth) {
  // R = 1 degenerates to a point estimate: the CI must say so (infinite
  // half-width), not fake certainty.
  const ReplicationRunner runner(small_spec(), 1);
  const ReplicationPoint pt = runner.run(0.002);
  EXPECT_EQ(pt.latency.count, 1u);
  EXPECT_TRUE(std::isinf(pt.latency.half_width));
  EXPECT_GT(pt.latency.mean, 0.0);
}

TEST(ReplicationRunner, RejectsBadConfig) {
  EXPECT_THROW(ReplicationRunner(small_spec(), 0), std::invalid_argument);
  core::ScenarioSpec bad = small_spec();
  bad.torus().k = 1;
  EXPECT_THROW(ReplicationRunner(bad, 3), std::invalid_argument);
  ReplicationRunner runner(small_spec(), 2);
  EXPECT_THROW(runner.set_confidence(1.5), std::invalid_argument);
}

}  // namespace
}  // namespace kncube::validate
