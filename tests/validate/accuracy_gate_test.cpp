// The tier-1 accuracy gate (ctest label `accuracy`): runs the quick
// validation suite end-to-end — real model solves, real replicated
// simulations — and requires the statistical classification to pass. This is
// the in-tree miniature of the nightly full-sweep kncube_validate job; if
// this fails, model-vs-simulation accuracy regressed (or the tolerance
// policy no longer reflects reality).
#include <gtest/gtest.h>

#include <cmath>

#include "validate/accuracy_json.hpp"
#include "validate/validation_engine.hpp"

namespace kncube::validate {
namespace {

TEST(AccuracyGate, QuickSuitePasses) {
  ValidationConfig cfg;
  cfg.replications = 3;
  const ValidationEngine engine(cfg);
  const ValidationReport report = engine.run(quick_suite());

  // Print the table on failure so the regressing point is visible in CI.
  EXPECT_TRUE(report.passed()) << accuracy_table(report).to_string();

  // The gate must actually gate: modeled and sim-only points both present,
  // and no point silently skipped as saturated (the quick fractions are all
  // well below the boundary).
  int modeled = 0, sim_only = 0;
  for (const ValidationPoint& p : report.points) {
    if (p.family == "sim-only") {
      ++sim_only;
    } else {
      ++modeled;
      EXPECT_TRUE(std::isfinite(p.model_latency)) << p.scenario;
    }
    EXPECT_NE(p.cls, PointClass::kSkippedSaturated)
        << p.scenario << " frac " << p.lambda_frac;
  }
  EXPECT_GE(modeled, 3);
  EXPECT_GE(sim_only, 2);

  // And the JSON path used by tools/validate renders it.
  const std::string json = to_json(report);
  EXPECT_NE(json.find("\"passed\": true"), std::string::npos);
}

}  // namespace
}  // namespace kncube::validate
