// ValidationEngine unit coverage: classification logic, sanity checks,
// tolerance ladder, suite composition and JSON rendering — everything that
// doesn't need a real simulation (the end-to-end quick-suite run lives in
// accuracy_gate_test.cpp).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/model_registry.hpp"
#include "validate/accuracy_json.hpp"
#include "validate/validation_engine.hpp"

namespace kncube::validate {
namespace {

util::ConfidenceInterval ci(double mean, double half_width) {
  util::ConfidenceInterval c;
  c.mean = mean;
  c.half_width = half_width;
  c.count = 5;
  return c;
}

TEST(Classification, ModelInsideCi) {
  EXPECT_EQ(ValidationEngine::classify_modeled(102.0, ci(100.0, 3.0), 0.15, 0.0),
            PointClass::kModelInCI);
  // Exactly on the widened edge: 100 + 3 + 0.02*100 = 105.
  EXPECT_EQ(ValidationEngine::classify_modeled(105.0, ci(100.0, 3.0), 0.15, 0.02),
            PointClass::kModelInCI);
}

TEST(Classification, WithinToleranceOutsideCi) {
  // 10% off with a 2-cycle CI: outside the interval, inside the ladder.
  EXPECT_EQ(ValidationEngine::classify_modeled(110.0, ci(100.0, 2.0), 0.15, 0.0),
            PointClass::kWithinTolerance);
}

TEST(Classification, OutOfTolerance) {
  EXPECT_EQ(ValidationEngine::classify_modeled(150.0, ci(100.0, 2.0), 0.15, 0.02),
            PointClass::kOutOfTolerance);
  // Non-finite model prediction on an unsaturated sim point is a failure,
  // not a skip.
  EXPECT_EQ(ValidationEngine::classify_modeled(
                std::numeric_limits<double>::infinity(), ci(100.0, 2.0), 0.15, 0.0),
            PointClass::kOutOfTolerance);
}

TEST(Classification, InfiniteHalfWidthNeverRejects) {
  // R = 1: no variance estimate, the CI is the whole line.
  EXPECT_EQ(ValidationEngine::classify_modeled(
                1e6, ci(100.0, std::numeric_limits<double>::infinity()), 0.15, 0.0),
            PointClass::kModelInCI);
}

TEST(ToleranceLadder, MonotoneAndDocumentedValues) {
  EXPECT_DOUBLE_EQ(default_tolerance(0.15), 0.15);
  EXPECT_DOUBLE_EQ(default_tolerance(0.3), 0.25);
  EXPECT_DOUBLE_EQ(default_tolerance(0.45), 0.35);
  EXPECT_DOUBLE_EQ(default_tolerance(0.6), 0.45);
  EXPECT_DOUBLE_EQ(default_tolerance(0.75), 0.60);
  for (double lo = 0.05; lo < 0.9; lo += 0.05) {
    EXPECT_LE(default_tolerance(lo), default_tolerance(lo + 0.05)) << lo;
  }
}

// --- sim-only sanity checks, on hand-built replication points ---

ReplicationPoint sanity_point(double lambda, double latency_mean,
                              double generated, double accepted) {
  ReplicationPoint pt;
  pt.lambda = lambda;
  pt.replications = 2;
  pt.latency = ci(latency_mean, 1.0);
  sim::SimResult r;
  r.mean_latency = latency_mean;
  r.generated_load = generated;
  r.accepted_load = accepted;
  pt.results = {r, r};
  return pt;
}

TEST(SanityChecks, PassesConsistentPoint) {
  core::ScenarioSpec spec;
  const auto pt = sanity_point(0.002, 50.0, 0.002, 0.00199);
  EXPECT_TRUE(ValidationEngine::sanity_failure(pt, nullptr, spec).empty());
}

TEST(SanityChecks, CatchesConservationViolation) {
  core::ScenarioSpec spec;
  // Accepted load 20% below generated: messages are vanishing (or piling up
  // unboundedly) inside the network.
  const auto pt = sanity_point(0.002, 50.0, 0.002, 0.0016);
  const std::string failure = ValidationEngine::sanity_failure(pt, nullptr, spec);
  EXPECT_NE(failure.find("conservation"), std::string::npos) << failure;
}

TEST(SanityChecks, CatchesOfferedLoadDrift) {
  core::ScenarioSpec spec;
  // Generated load 40% below offered: the arrival process is not emitting
  // the configured rate.
  const auto pt = sanity_point(0.002, 50.0, 0.0012, 0.0012);
  const std::string failure = ValidationEngine::sanity_failure(pt, nullptr, spec);
  EXPECT_NE(failure.find("offered-load"), std::string::npos) << failure;
}

TEST(SanityChecks, MmppGetsWiderOfferedBand) {
  core::ScenarioSpec spec;
  spec.arrivals = core::MmppArrivals{};
  // 25% drift: fails the 15% Bernoulli band, passes the 30% MMPP band.
  const auto pt = sanity_point(0.002, 50.0, 0.0015, 0.0015);
  EXPECT_TRUE(ValidationEngine::sanity_failure(pt, nullptr, spec).empty());
  spec.arrivals = core::BernoulliArrivals{};
  EXPECT_FALSE(ValidationEngine::sanity_failure(pt, nullptr, spec).empty());
}

TEST(SanityChecks, CatchesNonMonotoneLatency) {
  core::ScenarioSpec spec;
  const auto prev = sanity_point(0.002, 80.0, 0.002, 0.002);
  // Latency collapsed by far more than the combined CI half-widths.
  const auto cur = sanity_point(0.004, 40.0, 0.004, 0.004);
  const std::string failure = ValidationEngine::sanity_failure(cur, &prev, spec);
  EXPECT_NE(failure.find("monotonicity"), std::string::npos) << failure;
  // A drop within the noise band passes.
  const auto wiggle = sanity_point(0.004, 79.5, 0.004, 0.004);
  EXPECT_TRUE(ValidationEngine::sanity_failure(wiggle, &prev, spec).empty());
}

// --- report and config plumbing ---

TEST(Report, CountsAndPassFlag) {
  ValidationReport report;
  ValidationPoint p;
  p.cls = PointClass::kModelInCI;
  report.points.push_back(p);
  p.cls = PointClass::kSimSanity;
  report.points.push_back(p);
  EXPECT_TRUE(report.passed());
  EXPECT_EQ(report.count(PointClass::kModelInCI), 1);

  p.cls = PointClass::kOutOfTolerance;
  report.points.push_back(p);
  EXPECT_FALSE(report.passed());

  report.points.back().cls = PointClass::kSimSanityFailed;
  EXPECT_FALSE(report.passed());
}

TEST(Engine, RejectsBadConfig) {
  ValidationConfig cfg;
  cfg.replications = 0;
  EXPECT_THROW(ValidationEngine{cfg}, std::invalid_argument);
  cfg = {};
  cfg.confidence = 1.0;
  EXPECT_THROW(ValidationEngine{cfg}, std::invalid_argument);
  cfg = {};
  cfg.ci_epsilon = -0.1;
  EXPECT_THROW(ValidationEngine{cfg}, std::invalid_argument);
}

TEST(Engine, SimOnlyCaseWithoutAnchorThrows) {
  ValidationEngine engine;
  ScenarioCase c;
  c.name = "anchorless";
  c.spec.traffic = core::TransposeTraffic{};  // sim-only
  c.fractions = {0.5};
  EXPECT_THROW(engine.run({c}), std::invalid_argument);
}

TEST(Suites, CoverEveryModeledFamilyAndSimOnlySpecs) {
  const auto suite = full_suite();
  int hotspot_torus = 0, uniform_torus = 0, hypercube = 0, sim_only = 0;
  int mmpp_torus = 0, hotspot_mesh = 0;
  for (const ScenarioCase& c : suite) {
    core::ModelDispatch d = core::make_analytical_model(c.spec);
    if (!d.has_model()) {
      ++sim_only;
      EXPECT_GT(c.max_rate, 0.0) << c.name;
      continue;
    }
    const std::string family = d.model->name();
    hotspot_torus += (family == "hotspot-torus") ? 1 : 0;
    uniform_torus += (family == "uniform-torus") ? 1 : 0;
    hypercube += (family == "hotspot-hypercube") ? 1 : 0;
    mmpp_torus += (family == "mmpp-hotspot-torus") ? 1 : 0;
    mmpp_torus += (family == "mmpp-uniform-torus") ? 1 : 0;
    hotspot_mesh += (family == "hotspot-mesh") ? 1 : 0;
    // Modeled sweeps stay below the saturation boundary.
    for (double f : c.fractions) EXPECT_LT(f, 1.0) << c.name;
  }
  EXPECT_GE(hotspot_torus, 1);
  EXPECT_GE(uniform_torus, 1);
  EXPECT_GE(hypercube, 2);    // hot-spot and uniform (h = 0) degenerations
  EXPECT_GE(mmpp_torus, 2);   // bursty arrivals on both torus patterns
  EXPECT_GE(hotspot_mesh, 1);
  EXPECT_GE(sim_only, 2);     // the acceptance-criteria floor

  // The quick suite is a strict subset in effort, not coverage of *every*
  // family; it must still mix modeled and sim-only cases.
  const auto quick = quick_suite();
  EXPECT_GE(quick.size(), 2u);
  bool has_modeled = false, has_sim_only = false;
  for (const ScenarioCase& c : quick) {
    (core::make_analytical_model(c.spec).has_model() ? has_modeled
                                                     : has_sim_only) = true;
  }
  EXPECT_TRUE(has_modeled);
  EXPECT_TRUE(has_sim_only);
}

TEST(AccuracyJson, RendersStableSchema) {
  ValidationReport report;
  report.config.replications = 3;
  ValidationPoint p;
  p.scenario = "case-a";
  p.family = "hotspot-torus";
  p.lambda = 0.002;
  p.lambda_frac = 0.3;
  p.model_latency = 51.5;
  p.sim_mean = 50.0;
  p.ci_half_width = 2.0;
  p.rel_error = 0.03;
  p.tolerance = 0.25;
  p.cls = PointClass::kModelInCI;
  report.points.push_back(p);
  p.scenario = "case-b";
  p.family = "sim-only";
  p.model_latency = std::numeric_limits<double>::quiet_NaN();
  p.rel_error = std::numeric_limits<double>::quiet_NaN();
  p.cls = PointClass::kSimSanity;
  p.detail = "say \"hi\"";
  report.points.push_back(p);

  const std::string json = to_json(report);
  EXPECT_NE(json.find("\"schema\": \"kncube-accuracy-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"replications\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"model_in_ci\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"sim_sanity\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"passed\": true"), std::string::npos);
  EXPECT_NE(json.find("\"class\": \"model_in_ci\""), std::string::npos);
  // NaN renders as null, quotes are escaped.
  EXPECT_NE(json.find("\"model_latency\": null"), std::string::npos);
  EXPECT_NE(json.find("say \\\"hi\\\""), std::string::npos);
  // Deterministic: same report, same bytes.
  EXPECT_EQ(json, to_json(report));

  const std::string line = summary_line(report);
  EXPECT_NE(line.find("PASS"), std::string::npos);

  const util::Table table = accuracy_table(report);
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_NE(table.to_string().find("model_in_ci"), std::string::npos);
}

}  // namespace
}  // namespace kncube::validate
