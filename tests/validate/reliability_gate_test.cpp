// Tier-1 reliability gate: the quick reliability suite end-to-end (labeled
// "reliability" in ctest, mirroring the accuracy gate). Pins that the
// degradation measurement machinery works — zero conservation violations,
// bit-identical faulty results across sim.threads — and that the report
// carries a sane degradation structure, without pinning the (deliberately
// ungated) degradation direction. The *full* sweep behind the committed
// RELIABILITY.json runs in the CI reliability job via tools/kncube_reliability.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "validate/reliability.hpp"

namespace kncube::validate {
namespace {

/// One engine run shared by every assertion below (the suite costs seconds;
/// re-running it per TEST would dominate tier-1 wall-clock).
const ReliabilityReport& quick_report() {
  static const ReliabilityReport report = [] {
    ReliabilityConfig cfg;
    cfg.replications = 2;
    return ReliabilityEngine(cfg).run(reliability_quick_suite());
  }();
  return report;
}

TEST(ReliabilityGate, QuickSuitePasses) {
  const ReliabilityReport& report = quick_report();
  EXPECT_EQ(report.conservation_violations, 0u);
  EXPECT_TRUE(report.thread_invariant);
  EXPECT_TRUE(report.passed());
  ASSERT_GE(report.points.size(), 4u);
  // Both topology families are covered.
  std::set<std::string> scenarios;
  for (const ReliabilityPoint& p : report.points) scenarios.insert(p.scenario);
  EXPECT_GE(scenarios.size(), 2u);
}

TEST(ReliabilityGate, PristinePointsAreFullyReachable) {
  bool saw_pristine = false;
  for (const ReliabilityPoint& p : quick_report().points) {
    if (p.failed_routers != 0) continue;
    saw_pristine = true;
    EXPECT_EQ(p.unreachable_pairs, 0u) << p.scenario;
    EXPECT_EQ(p.reachable_pair_fraction, 1.0) << p.scenario;
    EXPECT_EQ(p.unreachable_fraction, 0.0) << p.scenario;
    // Pristine points are the baseline; they carry no ratio.
    EXPECT_TRUE(std::isnan(p.latency_ratio)) << p.scenario;
    EXPECT_TRUE(std::isnan(p.throughput_ratio)) << p.scenario;
  }
  EXPECT_TRUE(saw_pristine);
}

TEST(ReliabilityGate, FaultyPointsActuallyDegrade) {
  bool saw_faulty = false;
  for (const ReliabilityPoint& p : quick_report().points) {
    if (p.failed_routers == 0) continue;
    saw_faulty = true;
    EXPECT_GT(p.unreachable_pairs, 0u) << p.scenario;
    EXPECT_LT(p.reachable_pair_fraction, 1.0) << p.scenario;
    EXPECT_GT(p.unreachable_fraction, 0.0) << p.scenario;
    // Survivable throughput is real but below the pristine baseline's
    // generated load (some offered traffic was unreachable).
    EXPECT_GT(p.delivered_load, 0.0) << p.scenario;
    if (!p.saturated && !std::isnan(p.throughput_ratio)) {
      EXPECT_GT(p.throughput_ratio, 0.0) << p.scenario;
      EXPECT_LE(p.throughput_ratio, 1.0) << p.scenario;
    }
  }
  EXPECT_TRUE(saw_faulty);
}

TEST(ReliabilityGate, FaultySpecDerivationIsDeterministic) {
  // The faulty spec for failure count f is a pure function of the case:
  // rate = f/N so the resolved set has exactly f routers, and the key is
  // distinct per f (memoization and replication seeds separate cleanly).
  const auto suite = reliability_quick_suite();
  ASSERT_FALSE(suite.empty());
  const ReliabilityCase& c = suite.front();
  const core::ScenarioSpec pristine = ReliabilityEngine::faulty_spec(c, 0);
  EXPECT_TRUE(pristine.failures.empty());
  EXPECT_EQ(pristine.key(), c.spec.key());

  const core::ScenarioSpec f2 = ReliabilityEngine::faulty_spec(c, 2);
  EXPECT_FALSE(f2.failures.empty());
  EXPECT_EQ(f2.failures.random_seed, c.failure_seed);
  EXPECT_NE(f2.key(), pristine.key());
  EXPECT_EQ(f2.key(), ReliabilityEngine::faulty_spec(c, 2).key());
  EXPECT_NO_THROW(f2.validate());
}

TEST(ReliabilityGate, JsonReportIsDeterministicAndSchemaTagged) {
  const ReliabilityReport& report = quick_report();
  const std::string a = to_json(report);
  EXPECT_EQ(a, to_json(report));
  EXPECT_NE(a.find("\"schema\": \"kncube-reliability-v1\""), std::string::npos);
  EXPECT_NE(a.find("\"points\""), std::string::npos);
  EXPECT_NE(a.find("\"thread_invariant\": true"), std::string::npos);
  // No timestamps: the baseline diff in CI must be structural.
  EXPECT_EQ(a.find("date"), std::string::npos);
  EXPECT_EQ(a.find("time"), std::string::npos);
}

}  // namespace
}  // namespace kncube::validate
