#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace kncube::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(Xoshiro256, ZeroSeedIsValid) {
  Xoshiro256 rng(0);
  // A broken all-zero state would return 0 forever.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 16; ++i) seen.insert(rng());
  EXPECT_GT(seen.size(), 10u);
}

TEST(Xoshiro256, UniformIsInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformMeanIsHalf) {
  Xoshiro256 rng(11);
  double acc = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.005);
}

TEST(Xoshiro256, UniformBelowStaysInRange) {
  Xoshiro256 rng(13);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 255ull, 1000000ull}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.uniform_below(bound), bound);
  }
}

TEST(Xoshiro256, UniformBelowCoversAllValues) {
  Xoshiro256 rng(17);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_below(7)];
  // Each bucket should be within 10% of the expected n/7.
  for (int c : counts) EXPECT_NEAR(c, n / 7, n / 70);
}

TEST(Xoshiro256, UniformIntIsInclusive) {
  Xoshiro256 rng(19);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, BernoulliMatchesProbability) {
  Xoshiro256 rng(23);
  const double p = 0.137;
  int hits = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(p) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.004);
}

TEST(Xoshiro256, BernoulliEdgeCases) {
  Xoshiro256 rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Xoshiro256, ExponentialHasRequestedMean) {
  Xoshiro256 rng(31);
  const double rate = 0.25;
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.exponential(rate);
  EXPECT_NEAR(acc / n, 1.0 / rate, 0.1);
}

TEST(Xoshiro256, GeometricHasRequestedMean) {
  Xoshiro256 rng(37);
  const double p = 0.02;
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += static_cast<double>(rng.geometric(p));
  // Mean failures before first success: (1-p)/p = 49.
  EXPECT_NEAR(acc / n, (1.0 - p) / p, 1.5);
}

TEST(Xoshiro256, GeometricWithCertaintyIsZero) {
  Xoshiro256 rng(41);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Xoshiro256, SplitStreamsAreIndependent) {
  Xoshiro256 root(99);
  Xoshiro256 a = root.split(0);
  Xoshiro256 b = root.split(1);
  // Identical streams would produce identical sums.
  double sa = 0.0;
  double sb = 0.0;
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto x = a();
    const auto y = b();
    sa += static_cast<double>(x >> 40);
    sb += static_cast<double>(y >> 40);
    equal += x == y ? 1 : 0;
  }
  EXPECT_EQ(equal, 0);
  EXPECT_NE(sa, sb);
}

TEST(Xoshiro256, SplitIsStableAcrossCalls) {
  Xoshiro256 root1(7);
  Xoshiro256 root2(7);
  Xoshiro256 a = root1.split(5);
  Xoshiro256 b = root2.split(5);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a(), b());
}

}  // namespace
}  // namespace kncube::util
