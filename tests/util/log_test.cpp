#include "util/log.hpp"

#include <gtest/gtest.h>

namespace kncube::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelOrderingGatesOutput) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
}

TEST(Log, SetLevelIsObserved) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_TRUE(log_enabled(LogLevel::kDebug));
  set_log_level(LogLevel::kError);
  EXPECT_FALSE(log_enabled(LogLevel::kWarn));
}

TEST(Log, MacroShortCircuitsWhenDisabled) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  KNC_LOG_DEBUG << "value " << expensive();
  EXPECT_EQ(evaluations, 0);  // the stream expression must not run
  KNC_LOG_ERROR << "value " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, WritingDoesNotCrashAtAnyLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  KNC_LOG_ERROR << "error " << 1;
  KNC_LOG_WARN << "warn " << 2.5;
  KNC_LOG_INFO << "info " << "text";
  KNC_LOG_DEBUG << "debug " << 'c';
}

}  // namespace
}  // namespace kncube::util
