#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace kncube::util {
namespace {

Args make_args(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, SeparateKeyValue) {
  const Args a = make_args({"--k", "16"});
  EXPECT_EQ(a.get_int("k", 0), 16);
}

TEST(Args, EqualsForm) {
  const Args a = make_args({"--rate=0.25"});
  EXPECT_DOUBLE_EQ(a.get_double("rate", 0.0), 0.25);
}

TEST(Args, BareFlagIsTrue) {
  const Args a = make_args({"--verbose"});
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_TRUE(a.get_bool("verbose", false));
}

TEST(Args, MissingKeyUsesDefault) {
  const Args a = make_args({});
  EXPECT_EQ(a.get_int("k", 7), 7);
  EXPECT_EQ(a.get_string("name", "default"), "default");
  EXPECT_FALSE(a.get_bool("flag", false));
}

TEST(Args, BoolSpellings) {
  EXPECT_TRUE(make_args({"--x", "true"}).get_bool("x", false));
  EXPECT_TRUE(make_args({"--x", "1"}).get_bool("x", false));
  EXPECT_TRUE(make_args({"--x", "yes"}).get_bool("x", false));
  EXPECT_FALSE(make_args({"--x", "false"}).get_bool("x", true));
  EXPECT_FALSE(make_args({"--x", "0"}).get_bool("x", true));
  EXPECT_FALSE(make_args({"--x", "off"}).get_bool("x", true));
}

TEST(Args, BadBoolThrows) {
  EXPECT_THROW(make_args({"--x", "maybe"}).get_bool("x", false), std::invalid_argument);
}

TEST(Args, FlagFollowedByOptionIsNotConsumed) {
  const Args a = make_args({"--flag", "--k", "3"});
  EXPECT_TRUE(a.get_bool("flag", false));
  EXPECT_EQ(a.get_int("k", 0), 3);
}

TEST(Args, PositionalArgumentsPreserved) {
  const Args a = make_args({"one", "--k", "2", "two"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "one");
  EXPECT_EQ(a.positional()[1], "two");
}

TEST(Args, UnknownKeysDetection) {
  const Args a = make_args({"--k", "1", "--typo", "2"});
  const auto unknown = a.unknown_keys({"k"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
  EXPECT_TRUE(a.unknown_keys({"k", "typo"}).empty());
}

TEST(Args, KeysListsEverything) {
  const Args a = make_args({"--b", "1", "--a", "2"});
  const auto keys = a.keys();
  EXPECT_EQ(keys.size(), 2u);
}

TEST(Args, LastValueWinsOnRepeat) {
  const Args a = make_args({"--k", "1", "--k", "2"});
  EXPECT_EQ(a.get_int("k", 0), 2);
}

TEST(Args, EmptyValueViaEquals) {
  const Args a = make_args({"--name="});
  EXPECT_TRUE(a.has("name"));
  EXPECT_EQ(a.get_string("name", "d"), "");
  // Empty numeric values fall back to the default rather than throwing.
  EXPECT_EQ(a.get_int("name", 5), 5);
}

}  // namespace
}  // namespace kncube::util
