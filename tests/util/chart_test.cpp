#include "util/chart.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace kncube::util {
namespace {

ChartOptions small_options() {
  ChartOptions o;
  o.width = 24;
  o.height = 8;
  return o;
}

TEST(Chart, RendersMarkersAndLegend) {
  Series s;
  s.name = "model";
  s.marker = 'm';
  s.x = {0.0, 1.0, 2.0};
  s.y = {1.0, 2.0, 3.0};
  const std::string out = render_chart({s}, small_options());
  EXPECT_NE(out.find('m'), std::string::npos);
  EXPECT_NE(out.find("m = model"), std::string::npos);
}

TEST(Chart, EmptySeriesProducesPlaceholder) {
  Series s;
  s.name = "empty";
  const std::string out = render_chart({s}, small_options());
  EXPECT_NE(out.find("no finite points"), std::string::npos);
}

TEST(Chart, SkipsNonFiniteValues) {
  Series s;
  s.name = "with-inf";
  s.marker = 'x';
  s.x = {0.0, 1.0, 2.0};
  s.y = {1.0, std::numeric_limits<double>::infinity(), 2.0};
  const std::string out = render_chart({s}, small_options());
  // Two finite markers only.
  std::size_t count = 0;
  for (char ch : out) count += ch == 'x' ? 1u : 0u;
  EXPECT_EQ(count, 2u + 1u);  // plot markers + legend line
}

TEST(Chart, ExtremesLandOnOppositeRows) {
  Series s;
  s.name = "line";
  s.marker = '*';
  s.x = {0.0, 1.0};
  s.y = {0.0, 10.0};
  ChartOptions o = small_options();
  const std::string out = render_chart({s}, o);
  // The max lands on the first plotted row, the min on the last.
  const auto first_star = out.find('*');
  const auto last_star = out.rfind('*', out.find("* = ") - 1);
  EXPECT_LT(first_star, out.find('+'));
  EXPECT_GT(last_star, first_star);
}

TEST(Chart, TitleAndLabelsAppear) {
  Series s;
  s.name = "s";
  s.x = {0.0, 1.0};
  s.y = {0.0, 1.0};
  ChartOptions o = small_options();
  o.title = "My Chart";
  o.x_label = "rate";
  o.y_label = "latency";
  const std::string out = render_chart({s}, o);
  EXPECT_NE(out.find("My Chart"), std::string::npos);
  EXPECT_NE(out.find("rate"), std::string::npos);
  EXPECT_NE(out.find("latency"), std::string::npos);
}

TEST(Chart, ClippingLimitsYRange) {
  Series s;
  s.name = "spike";
  s.x = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  s.y = {1, 1, 1, 1, 1, 1, 1, 1, 1, 1000};
  ChartOptions o = small_options();
  o.y_clip_quantile = 0.8;
  const std::string out = render_chart({s}, o);
  // Without clipping the axis top tick would be 1000.
  EXPECT_EQ(out.find("1000"), std::string::npos);
}

TEST(Chart, MultipleSeriesShareAxes) {
  Series a;
  a.name = "a";
  a.marker = 'a';
  a.x = {0.0, 1.0};
  a.y = {0.0, 1.0};
  Series b;
  b.name = "b";
  b.marker = 'b';
  b.x = {0.0, 1.0};
  b.y = {2.0, 3.0};
  const std::string out = render_chart({a, b}, small_options());
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

}  // namespace
}  // namespace kncube::util
