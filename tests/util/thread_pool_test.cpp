#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace kncube::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleIterationRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ComputesParallelSum) {
  ThreadPool pool(8);
  const std::size_t n = 10000;
  std::vector<double> out(n);
  pool.parallel_for(n, [&](std::size_t i) { out[i] = static_cast<double>(i); });
  const double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(n) * (n - 1) / 2.0);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, CompletesAllWorkDespiteException) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  try {
    pool.parallel_for(200, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("early");
      done.fetch_add(1);
    });
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(done.load(), 199);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(50, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPool, SizeReflectsConstruction) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(GlobalPool, ParallelForWorks) {
  std::atomic<int> count{0};
  parallel_for(64, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, NestedUseDoesNotDeadlock) {
  // The caller participates in draining, so a worker submitting to the same
  // pool must not deadlock even when all workers are busy.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16);
}

}  // namespace
}  // namespace kncube::util
