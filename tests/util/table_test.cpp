#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace kncube::util {
namespace {

TEST(Table, RendersHeadersAndValues) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("beta"), static_cast<long long>(42)});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(Table, TitleAppearsInBothRenderings) {
  Table t({"a"});
  t.set_title("My Title");
  t.add_row({1.0});
  EXPECT_NE(t.to_string().find("My Title"), std::string::npos);
  EXPECT_NE(t.to_csv().find("# My Title"), std::string::npos);
}

TEST(Table, PrecisionControlsDoubles) {
  Table t({"x"});
  t.set_precision(2);
  t.add_row({3.14159});
  EXPECT_NE(t.to_string().find("3.1"), std::string::npos);
  EXPECT_EQ(t.to_string().find("3.14159"), std::string::npos);
}

TEST(Table, SpecialDoublesRenderReadably) {
  Table t({"x"});
  t.add_row({std::numeric_limits<double>::infinity()});
  t.add_row({std::numeric_limits<double>::quiet_NaN()});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("inf (saturated)"), std::string::npos);
  EXPECT_NE(out.find("nan"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"field"});
  t.add_row({std::string("a,b")});
  t.add_row({std::string("say \"hi\"")});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvHasHeaderAndRows) {
  Table t({"a", "b"});
  t.add_row({1.0, 2.0});
  std::istringstream in(t.to_csv());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
}

TEST(Table, WriteCsvRoundTrips) {
  Table t({"k", "v"});
  t.add_row({std::string("x"), 7.5});
  const std::string path = testing::TempDir() + "/kncube_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), t.to_csv());
  std::remove(path.c_str());
}

TEST(Table, WriteCsvFailsOnBadPath) {
  Table t({"a"});
  EXPECT_FALSE(t.write_csv("/nonexistent-dir-kncube/table.csv"));
}

TEST(Table, ColumnsAlignAcrossRows) {
  Table t({"col"});
  t.add_row({std::string("short")});
  t.add_row({std::string("much-longer-content")});
  std::istringstream in(t.to_string());
  std::string first;
  std::getline(in, first);
  std::string line;
  while (std::getline(in, line)) EXPECT_EQ(line.size(), first.size());
}

TEST(TableDeathTest, RowWidthMismatchAsserts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({1.0}), "row width");
}

}  // namespace
}  // namespace kncube::util
