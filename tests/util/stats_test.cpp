#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace kncube::util {
namespace {

TEST(RunningStats, EmptyIsZeroed) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sem(), 0.0);
}

TEST(RunningStats, MatchesNaiveComputation) {
  const std::vector<double> xs = {3.0, 1.5, -2.0, 7.25, 0.0, 4.5, -1.25};
  RunningStats s;
  for (double x : xs) s.add(x);

  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);

  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
  EXPECT_EQ(s.min(), -2.0);
  EXPECT_EQ(s.max(), 7.25);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);

  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), mean);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 5);
  for (int i = 0; i < 1000; ++i) large.add(i % 5);
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_EQ(h.bin_lo(0), 0.0);
  EXPECT_EQ(h.bin_hi(0), 2.0);
  EXPECT_EQ(h.bin_lo(4), 8.0);
  EXPECT_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, CountsSamplesInRightBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(10.0);  // hi edge is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, QuantileOfUniformSamples) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 1.5);
  EXPECT_NEAR(h.quantile(0.05), 5.0, 1.5);
}

TEST(Histogram, QuantileDegenerateCases) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty -> lo
  h.add(5.0);
  EXPECT_GE(h.quantile(0.0), 0.0);
  EXPECT_LE(h.quantile(1.0), 10.0);
}

TEST(BatchMeans, ConvergesOnStationaryStream) {
  BatchMeans bm(100, 0.05, 3);
  bool converged = false;
  for (int i = 0; i < 100000 && !converged; ++i) {
    converged = bm.add(10.0 + (i % 7) * 0.1);
  }
  EXPECT_TRUE(converged);
  EXPECT_NEAR(bm.overall_mean(), 10.3, 0.05);
}

TEST(BatchMeans, DoesNotConvergeOnTrendingStream) {
  BatchMeans bm(100, 0.01, 3);
  bool converged = false;
  // Strongly growing stream: the cumulative mean keeps moving.
  for (int i = 0; i < 5000; ++i) converged |= bm.add(static_cast<double>(i));
  EXPECT_FALSE(converged);
}

TEST(BatchMeans, NeedsTwoWindowsBeforeConverging) {
  BatchMeans bm(10, 0.5, 3);
  // 5 batches < 2*window: cannot converge yet even on constant data.
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(bm.add(1.0));
  EXPECT_EQ(bm.completed_batches(), 5u);
}

TEST(BatchMeans, TracksBatchMeans) {
  BatchMeans bm(2, 0.01, 2);
  bm.add(1.0);
  bm.add(3.0);
  bm.add(5.0);
  bm.add(7.0);
  ASSERT_EQ(bm.completed_batches(), 2u);
  EXPECT_EQ(bm.batch_means()[0], 2.0);
  EXPECT_EQ(bm.batch_means()[1], 6.0);
}

TEST(Correlation, PerfectlyCorrelated) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const std::vector<double> b = {10, 20, 30, 40, 50};
  EXPECT_NEAR(pearson_correlation(a, b), 1.0, 1e-12);
}

TEST(Correlation, PerfectlyAnticorrelated) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {3, 2, 1};
  EXPECT_NEAR(pearson_correlation(a, b), -1.0, 1e-12);
}

TEST(Correlation, DegenerateSeriesGiveZero) {
  EXPECT_EQ(pearson_correlation({1.0}, {2.0}), 0.0);
  EXPECT_EQ(pearson_correlation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(IncompleteBeta, MatchesClosedForms) {
  // I_x(1, 1) = x (uniform CDF).
  EXPECT_NEAR(regularized_incomplete_beta(1.0, 1.0, 0.3), 0.3, 1e-12);
  // I_x(1, b) = 1 - (1-x)^b.
  EXPECT_NEAR(regularized_incomplete_beta(1.0, 3.0, 0.2),
              1.0 - std::pow(0.8, 3.0), 1e-12);
  // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
  const double lhs = regularized_incomplete_beta(2.5, 0.5, 0.7);
  const double rhs = 1.0 - regularized_incomplete_beta(0.5, 2.5, 0.3);
  EXPECT_NEAR(lhs, rhs, 1e-12);
  // Endpoints.
  EXPECT_EQ(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_EQ(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(StudentT, MatchesPublishedTwoSidedTable) {
  // Two-sided 95% critical values (standard t-table).
  EXPECT_NEAR(student_t_critical(0.95, 1), 12.706, 2e-3);
  EXPECT_NEAR(student_t_critical(0.95, 2), 4.303, 1e-3);
  EXPECT_NEAR(student_t_critical(0.95, 4), 2.776, 1e-3);
  EXPECT_NEAR(student_t_critical(0.95, 9), 2.262, 1e-3);
  EXPECT_NEAR(student_t_critical(0.95, 30), 2.042, 1e-3);
  // Two-sided 99%.
  EXPECT_NEAR(student_t_critical(0.99, 5), 4.032, 1e-3);
  EXPECT_NEAR(student_t_critical(0.99, 10), 3.169, 1e-3);
  // Large dof approaches the normal 1.96.
  EXPECT_NEAR(student_t_critical(0.95, 100000), 1.960, 2e-3);
}

TEST(StudentT, MonotoneInDofAndConfidence) {
  // Heavier tails at fewer dof; wider intervals at higher confidence.
  EXPECT_GT(student_t_critical(0.95, 2), student_t_critical(0.95, 20));
  EXPECT_GT(student_t_critical(0.99, 5), student_t_critical(0.95, 5));
  EXPECT_TRUE(std::isinf(student_t_critical(0.95, 0)));
}

TEST(StudentTCi, MatchesHandComputation) {
  // Samples {8, 10, 12}: mean 10, s = 2, sem = 2/sqrt(3),
  // t*(0.95, dof 2) = 4.303 -> half-width 4.969...
  const auto ci = student_t_ci({8.0, 10.0, 12.0});
  EXPECT_EQ(ci.count, 3u);
  EXPECT_NEAR(ci.mean, 10.0, 1e-12);
  EXPECT_NEAR(ci.half_width, 4.303 * 2.0 / std::sqrt(3.0), 2e-3);
  EXPECT_NEAR(ci.lo(), 10.0 - ci.half_width, 1e-12);
  EXPECT_NEAR(ci.hi(), 10.0 + ci.half_width, 1e-12);
  EXPECT_TRUE(ci.contains(10.0));
  EXPECT_FALSE(ci.contains(20.0));
  EXPECT_TRUE(ci.contains(15.1, 0.5));  // slack widens the interval
}

TEST(StudentTCi, DegenerateReplicationCounts) {
  // R = 0: nothing known.
  const auto empty = student_t_ci({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_TRUE(std::isinf(empty.half_width));

  // R = 1: the mean is pinned but no variance estimate exists, so the
  // interval is infinitely wide — a single replication can never reject.
  const auto one = student_t_ci({42.0});
  EXPECT_EQ(one.count, 1u);
  EXPECT_EQ(one.mean, 42.0);
  EXPECT_TRUE(std::isinf(one.half_width));
  EXPECT_TRUE(one.contains(1e9));

  // Zero variance: the interval collapses to the point.
  const auto flat = student_t_ci({5.0, 5.0, 5.0, 5.0});
  EXPECT_EQ(flat.half_width, 0.0);
  EXPECT_TRUE(flat.contains(5.0));
  EXPECT_FALSE(flat.contains(5.001));
}

TEST(StudentTCi, WiderThanNormalApproximationAtSmallR) {
  // The whole reason these helpers exist: at R = 5 the t interval must be
  // visibly wider than the 1.96-sem normal approximation.
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  const auto ci = student_t_ci(xs);
  EXPECT_GT(ci.half_width, rs.ci95_half_width() * 1.3);
}

TEST(MeanRelativeError, BasicAndSkipsNonpositive) {
  EXPECT_NEAR(mean_relative_error({11, 22}, {10, 20}), 0.1, 1e-12);
  // Entries with b <= 0 are skipped.
  EXPECT_NEAR(mean_relative_error({11, 5}, {10, 0}), 0.1, 1e-12);
  EXPECT_EQ(mean_relative_error({1}, {0}), 0.0);
}

}  // namespace
}  // namespace kncube::util
