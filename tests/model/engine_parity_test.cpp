// Parity tests for the channel-class engine refactor: the declarative
// uniform/hot-spot/hypercube models must reproduce the original hand-rolled
// fixed-point implementations (kept verbatim below as references) across
// lambda sweeps including the saturated region, and the h = 0 hot-spot model
// must coincide with the uniform model structurally.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/model_registry.hpp"
#include "core/scenario_spec.hpp"
#include "model/engine/mg1.hpp"
#include "model/engine/vcmux.hpp"
#include "model/hotspot_model.hpp"
#include "model/hypercube_model.hpp"
#include "model/mesh_model.hpp"
#include "model/path_probabilities.hpp"
#include "model/solver.hpp"
#include "model/uniform_model.hpp"

namespace kncube::model {
namespace {

// ---------------------------------------------------------------------------
// Reference implementations: the pre-engine (seed) solvers, trimmed to the
// quantities the parity assertions compare. Any change in engine semantics
// shows up as a divergence from these.
// ---------------------------------------------------------------------------
namespace reference {

struct Outcome {
  bool saturated = true;
  double latency = std::numeric_limits<double>::infinity();
};

Outcome uniform_solve(const UniformModelConfig& cfg) {
  const int k = cfg.k;
  const double lm = static_cast<double>(cfg.message_length);
  const double lc = cfg.injection_rate * static_cast<double>(k - 1) / 2.0;
  const int ns = k - 1;
  const std::size_t y = 0, x = static_cast<std::size_t>(ns),
                    xy = 2 * static_cast<std::size_t>(ns);
  const auto at = [](std::size_t base, int j) {
    return base + static_cast<std::size_t>(j - 1);
  };
  const auto avg = [&](const std::vector<double>& v, std::size_t off) {
    double a = 0.0;
    for (int i = 0; i < ns; ++i) a += v[off + static_cast<std::size_t>(i)];
    return a / static_cast<double>(ns);
  };

  Outcome res;
  std::vector<double> state(3 * static_cast<std::size_t>(ns));
  const double y_ent0 = static_cast<double>(k) / 2.0 + lm - 1.0;
  for (int j = 1; j < k; ++j) {
    state[at(y, j)] = static_cast<double>(j) + lm - 1.0;
    state[at(x, j)] = static_cast<double>(j) + lm - 1.0;
    state[at(xy, j)] = static_cast<double>(j) + y_ent0;
  }
  const double tx_y = lm + static_cast<double>(k) / 2.0 - 1.0;
  const double tx_x = tx_y + static_cast<double>(k - 1) / 2.0;

  auto step = [&](const std::vector<double>& in, std::vector<double>& out) {
    const double ey = avg(in, y);
    const double ex = avg(in, x);
    const QueueDelay by = blocking_delay(Stream{lc, ey, tx_y}, Stream{}, lm, false);
    const QueueDelay bx = blocking_delay(Stream{lc, ex, tx_x}, Stream{}, lm, false);
    if (by.saturated || bx.saturated) return false;
    for (int j = 1; j < k; ++j) {
      out[at(y, j)] = by.value + 1.0 + (j == 1 ? lm - 1.0 : out[at(y, j - 1)]);
      out[at(x, j)] = bx.value + 1.0 + (j == 1 ? lm - 1.0 : out[at(x, j - 1)]);
      out[at(xy, j)] = bx.value + 1.0 + (j == 1 ? ey : out[at(xy, j - 1)]);
    }
    return true;
  };

  const FixedPointResult fp = solve_fixed_point(state, step, cfg.solver);
  if (!fp.converged) return res;

  const double ey = avg(state, y);
  const double ex = avg(state, x);
  const double exy = avg(state, xy);
  const double n = static_cast<double>(k) * static_cast<double>(k);
  const double p_xonly = (static_cast<double>(k) - 1.0) / (n - 1.0);
  const double p_yonly = p_xonly;
  const double p_xy =
      (static_cast<double>(k) - 1.0) * (static_cast<double>(k) - 1.0) / (n - 1.0);
  const double s_net = p_xonly * ex + p_xy * exy + p_yonly * ey;
  const QueueDelay ws =
      mg1_wait(cfg.injection_rate / static_cast<double>(cfg.vcs), s_net, lm);
  if (ws.saturated) return res;
  const double v_x = vc_multiplexing_degree(lc, tx_x, cfg.vcs);
  const double v_y = vc_multiplexing_degree(lc, tx_y, cfg.vcs);
  res.latency = p_xonly * (ex + ws.value) * v_x + p_xy * (exy + ws.value) * v_x +
                p_yonly * (ey + ws.value) * v_y;
  res.saturated = false;
  return res;
}

/// The seed hot-spot engine (step + assembly), verbatim modulo packaging.
class HotspotReference {
 public:
  HotspotReference(const ModelConfig& cfg)
      : cfg_(cfg),
        rates_(traffic_rates(cfg.k, cfg.injection_rate, cfg.hot_fraction)),
        probs_(path_probabilities(cfg.k)),
        k_(cfg.k),
        ns_(cfg.k - 1),
        lm_(static_cast<double>(cfg.message_length)) {
    ybar_ = 0;
    yhot_ = static_cast<std::size_t>(ns_);
    x_ = 2 * static_cast<std::size_t>(ns_);
    xhy_ = 3 * static_cast<std::size_t>(ns_);
    xyb_ = 4 * static_cast<std::size_t>(ns_);
    shy_ = 5 * static_cast<std::size_t>(ns_);
    shx_ = 6 * static_cast<std::size_t>(ns_);
    total_ = 6 * static_cast<std::size_t>(ns_) +
             static_cast<std::size_t>(ns_) * static_cast<std::size_t>(k_);
  }

  Outcome solve() const {
    Outcome res;
    std::vector<double> state = initial_state();
    auto step = [this](const std::vector<double>& in, std::vector<double>& out) {
      return this->step_fn(in, out);
    };
    FixedPointResult fp = solve_fixed_point(state, step, cfg_.solver);
    if (!fp.converged && !fp.diverged) {
      FixedPointOptions slower = cfg_.solver;
      slower.damping = std::min(0.2, cfg_.solver.damping);
      slower.max_iterations = cfg_.solver.max_iterations * 2;
      state = initial_state();
      fp = solve_fixed_point(state, step, slower);
    }
    if (!fp.converged) return res;
    return assemble(state);
  }

 private:
  std::size_t at(std::size_t base, int j) const {
    return base + static_cast<std::size_t>(j - 1);
  }
  std::size_t at_shx(int j, int t) const {
    return shx_ + static_cast<std::size_t>((t - 1) * ns_ + (j - 1));
  }
  double average(const std::vector<double>& v, std::size_t off, int count) const {
    double acc = 0.0;
    for (int i = 0; i < count; ++i) acc += v[off + static_cast<std::size_t>(i)];
    return acc / static_cast<double>(count);
  }
  double tx_hot_y(int j) const { return lm_ + static_cast<double>(j - 1); }
  double tx_hot_x(int j, int t) const {
    const double y_leg = t == k_ ? 0.0 : static_cast<double>(t);
    return lm_ + static_cast<double>(j - 1) + y_leg;
  }
  double tx_reg_y() const { return lm_ + static_cast<double>(k_) / 2.0 - 1.0; }
  double tx_reg_x() const {
    return tx_reg_y() + static_cast<double>(k_ - 1) / 2.0;
  }

  std::vector<double> initial_state() const {
    std::vector<double> s(total_);
    const double y_ent0 = static_cast<double>(k_) / 2.0 + lm_ - 1.0;
    for (int j = 1; j < k_; ++j) {
      const double base = static_cast<double>(j) + lm_ - 1.0;
      s[at(ybar_, j)] = base;
      s[at(yhot_, j)] = base;
      s[at(x_, j)] = base;
      s[at(xhy_, j)] = static_cast<double>(j) + y_ent0;
      s[at(xyb_, j)] = static_cast<double>(j) + y_ent0;
      s[at(shy_, j)] = base;
      for (int t = 1; t <= k_; ++t) {
        const double cont = t == k_ ? lm_ - 1.0 : static_cast<double>(t) + lm_ - 1.0;
        s[at_shx(j, t)] = static_cast<double>(j) + cont;
      }
    }
    return s;
  }

  bool block(const Stream& reg, const Stream& hot, double& out) const {
    const bool busy_incl = cfg_.busy_basis == ServiceBasis::kInclusive;
    if (cfg_.blocking == BlockingVariant::kPaper) {
      const QueueDelay b = blocking_delay(reg, hot, lm_, busy_incl);
      if (b.saturated) return false;
      out = b.value;
      return true;
    }
    const double rate = reg.rate + hot.rate;
    if (rate <= 0.0) {
      out = 0.0;
      return true;
    }
    const double mean_tx = (reg.rate * reg.tx + hot.rate * hot.tx) / rate;
    const QueueDelay w = mg1_wait(rate, mean_tx, lm_);
    if (w.saturated) return false;
    out = w.value;
    return true;
  }

  bool step_fn(const std::vector<double>& in, std::vector<double>& out) const {
    const int k = k_;
    const double lr = rates_.regular_rate;
    const double e_ybar = average(in, ybar_, ns_);
    const double e_yhot = average(in, yhot_, ns_);
    const double e_x = average(in, x_, ns_);
    const Stream reg_y{lr, e_yhot, tx_reg_y()};
    const Stream reg_ybar{lr, e_ybar, tx_reg_y()};
    const Stream reg_x{lr, e_x, tx_reg_x()};

    double b_ybar = 0.0;
    if (!block(reg_ybar, Stream{}, b_ybar)) return false;

    double b_yhot = 0.0;
    for (int l = 1; l <= k; ++l) {
      Stream hot;
      hot.rate = rates_.hot_y[static_cast<std::size_t>(l)];
      if (l < k) {
        hot.inclusive = in[at(shy_, l)];
        hot.tx = tx_hot_y(l);
      }
      double b = 0.0;
      if (!block(reg_y, hot, b)) return false;
      b_yhot += b;
    }
    b_yhot /= static_cast<double>(k);

    double b_x = 0.0;
    for (int t = 1; t <= k; ++t) {
      for (int l = 1; l <= k; ++l) {
        Stream hot;
        hot.rate = rates_.hot_x[static_cast<std::size_t>(l)];
        if (l < k) {
          hot.inclusive = in[at_shx(l, t)];
          hot.tx = tx_hot_x(l, t);
        }
        double b = 0.0;
        if (!block(reg_x, hot, b)) return false;
        b_x += b;
      }
    }
    b_x /= static_cast<double>(k) * static_cast<double>(k);

    for (int j = 1; j < k; ++j) {
      const double last = lm_ - 1.0;
      out[at(ybar_, j)] = b_ybar + 1.0 + (j == 1 ? last : out[at(ybar_, j - 1)]);
      out[at(yhot_, j)] = b_yhot + 1.0 + (j == 1 ? last : out[at(yhot_, j - 1)]);
      out[at(x_, j)] = b_x + 1.0 + (j == 1 ? last : out[at(x_, j - 1)]);
      out[at(xhy_, j)] = b_x + 1.0 + (j == 1 ? e_yhot : out[at(xhy_, j - 1)]);
      out[at(xyb_, j)] = b_x + 1.0 + (j == 1 ? e_ybar : out[at(xyb_, j - 1)]);
    }

    for (int j = 1; j < k; ++j) {
      const Stream hot{rates_.hot_y[static_cast<std::size_t>(j)], in[at(shy_, j)],
                       tx_hot_y(j)};
      double b = 0.0;
      if (!block(reg_y, hot, b)) return false;
      out[at(shy_, j)] = b + 1.0 + (j == 1 ? lm_ - 1.0 : out[at(shy_, j - 1)]);
    }

    for (int t = 1; t <= k; ++t) {
      for (int j = 1; j < k; ++j) {
        const Stream hot{rates_.hot_x[static_cast<std::size_t>(j)], in[at_shx(j, t)],
                         tx_hot_x(j, t)};
        double b = 0.0;
        if (!block(reg_x, hot, b)) return false;
        double cont;
        if (j > 1) {
          cont = out[at_shx(j - 1, t)];
        } else if (t == k) {
          cont = lm_ - 1.0;
        } else {
          cont = out[at(shy_, t)];
        }
        out[at_shx(j, t)] = b + 1.0 + cont;
      }
    }
    return true;
  }

  Outcome assemble(const std::vector<double>& s) const {
    Outcome res;
    const int k = k_;
    const double n_nodes = static_cast<double>(k) * static_cast<double>(k);
    const double lr = rates_.regular_rate;
    const double h = cfg_.hot_fraction;
    const int vcs = cfg_.vcs;
    const double e_ybar = average(s, ybar_, ns_);
    const double e_yhot = average(s, yhot_, ns_);
    const double e_x = average(s, x_, ns_);
    const double e_xhy = average(s, xhy_, ns_);
    const double e_xyb = average(s, xyb_, ns_);

    const double sr_net = probs_.x_only * e_x + probs_.x_then_hot_y * e_xhy +
                          probs_.x_then_nonhot_y * e_xyb +
                          probs_.y_only_hot * e_yhot + probs_.y_only_nonhot * e_ybar;

    const double arr = rates_.lambda / static_cast<double>(vcs);
    const auto source_wait = [&](double service, double& w) {
      const QueueDelay q = mg1_wait(arr, service, lm_);
      if (q.saturated) return false;
      w = q.value;
      return true;
    };

    double ws_sum = 0.0;
    double w_hot_node = 0.0;
    if (!source_wait(sr_net, w_hot_node)) return res;
    ws_sum += w_hot_node;

    std::vector<double> ws_shy(static_cast<std::size_t>(k), 0.0);
    for (int j = 1; j < k; ++j) {
      const double mixed = (1.0 - h) * sr_net + h * s[at(shy_, j)];
      if (!source_wait(mixed, ws_shy[static_cast<std::size_t>(j)])) return res;
      ws_sum += ws_shy[static_cast<std::size_t>(j)];
    }
    std::vector<double> ws_shx(
        static_cast<std::size_t>(k) * static_cast<std::size_t>(k), 0.0);
    for (int t = 1; t <= k; ++t) {
      for (int j = 1; j < k; ++j) {
        const double mixed = (1.0 - h) * sr_net + h * s[at_shx(j, t)];
        double w = 0.0;
        if (!source_wait(mixed, w)) return res;
        ws_shx[static_cast<std::size_t>((t - 1) * k + j)] = w;
        ws_sum += w;
      }
    }
    const double ws_r = ws_sum / n_nodes;

    const bool mux_incl = cfg_.vcmux_basis == ServiceBasis::kInclusive;
    const double v_nonhot_y =
        vc_multiplexing_degree(lr, mux_incl ? e_ybar : tx_reg_y(), vcs);

    std::vector<double> v_hy(static_cast<std::size_t>(k) + 1, 1.0);
    double v_hy_avg = 0.0;
    for (int j = 1; j <= k; ++j) {
      const double rate_h = rates_.hot_y[static_cast<std::size_t>(j)];
      const double s_h_incl = j < k ? s[at(shy_, j)] : 0.0;
      const double s_h = mux_incl ? s_h_incl : (j < k ? tx_hot_y(j) : 0.0);
      const double s_r = mux_incl ? e_yhot : tx_reg_y();
      const double rate = lr + rate_h;
      const double sbar = rate > 0.0 ? (lr * s_r + rate_h * s_h) / rate : 0.0;
      v_hy[static_cast<std::size_t>(j)] = vc_multiplexing_degree(rate, sbar, vcs);
      v_hy_avg += v_hy[static_cast<std::size_t>(j)];
    }
    v_hy_avg /= static_cast<double>(k);

    std::vector<double> v_x(
        static_cast<std::size_t>(k + 1) * static_cast<std::size_t>(k + 1), 1.0);
    double v_x_avg = 0.0;
    for (int t = 1; t <= k; ++t) {
      for (int j = 1; j <= k; ++j) {
        const double rate_h = rates_.hot_x[static_cast<std::size_t>(j)];
        const double s_h_incl = j < k ? s[at_shx(j, t)] : 0.0;
        const double s_h = mux_incl ? s_h_incl : (j < k ? tx_hot_x(j, t) : 0.0);
        const double s_r = mux_incl ? e_x : tx_reg_x();
        const double rate = lr + rate_h;
        const double sbar = rate > 0.0 ? (lr * s_r + rate_h * s_h) / rate : 0.0;
        const double v = vc_multiplexing_degree(rate, sbar, vcs);
        v_x[static_cast<std::size_t>(t * (k + 1) + j)] = v;
        v_x_avg += v;
      }
    }
    v_x_avg /= static_cast<double>(k) * static_cast<double>(k);

    const double sr = probs_.x_only * (e_x + ws_r) * v_x_avg +
                      probs_.x_then_hot_y * (e_xhy + ws_r) * v_x_avg +
                      probs_.x_then_nonhot_y * (e_xyb + ws_r) * v_x_avg +
                      probs_.y_only_hot * (e_yhot + ws_r) * v_hy_avg +
                      probs_.y_only_nonhot * (e_ybar + ws_r) * v_nonhot_y;

    double sh = 0.0;
    for (int j = 1; j < k; ++j) {
      sh += (s[at(shy_, j)] + ws_shy[static_cast<std::size_t>(j)]) *
            v_hy[static_cast<std::size_t>(j)];
    }
    for (int t = 1; t <= k; ++t) {
      for (int j = 1; j < k; ++j) {
        sh += (s[at_shx(j, t)] + ws_shx[static_cast<std::size_t>((t - 1) * k + j)]) *
              v_x[static_cast<std::size_t>(t * (k + 1) + j)];
      }
    }
    sh /= n_nodes - 1.0;

    res.latency = (1.0 - h) * sr + h * sh;
    res.saturated = false;
    return res;
  }

  ModelConfig cfg_;
  TrafficRates rates_;
  PathProbabilities probs_;
  int k_;
  int ns_;
  double lm_;
  std::size_t ybar_, yhot_, x_, xhy_, xyb_, shy_, shx_, total_;
};

Outcome hypercube_solve(const HypercubeModelConfig& cfg) {
  const int n = cfg.dims;
  const double lm = static_cast<double>(cfg.message_length);
  const auto pow2 = [](int e) { return std::ldexp(1.0, e); };
  const double lambda_r = cfg.injection_rate * (1.0 - cfg.hot_fraction) *
                          pow2(n - 1) / (pow2(n) - 1.0);
  std::vector<double> hot_rate(static_cast<std::size_t>(n));
  std::vector<double> funnel(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) {
    hot_rate[static_cast<std::size_t>(d)] =
        cfg.injection_rate * cfg.hot_fraction * pow2(d);
    funnel[static_cast<std::size_t>(d)] = pow2(-(d + 1));
  }
  const auto r_at = [](int d) { return static_cast<std::size_t>(d); };
  const auto h_at = [n](int d) { return static_cast<std::size_t>(n + d); };
  const auto tx = [&](int d) {
    return lm + static_cast<double>(n - 1 - d) / 2.0;
  };
  const auto next_p = [&](int d, int dp) { return pow2(-(dp - d)); };
  const auto deliver_p = [&](int d) { return pow2(-(n - 1 - d)); };

  std::vector<double> state(2 * static_cast<std::size_t>(n));
  for (int d = n - 1; d >= 0; --d) {
    double acc = 1.0 + deliver_p(d) * (lm - 1.0);
    for (int dp = d + 1; dp < n; ++dp) acc += next_p(d, dp) * state[r_at(dp)];
    state[r_at(d)] = acc;
    state[h_at(d)] = acc;
  }
  const std::vector<double> initial = state;

  auto block = [&](const Stream& reg, const Stream& hot, double& out) {
    const QueueDelay b =
        blocking_delay(reg, hot, lm, cfg.busy_basis == ServiceBasis::kInclusive);
    if (b.saturated) return false;
    out = b.value;
    return true;
  };
  auto step = [&](const std::vector<double>& in, std::vector<double>& out) {
    for (int d = n - 1; d >= 0; --d) {
      const Stream reg{lambda_r, in[r_at(d)], tx(d)};
      const Stream hot{hot_rate[static_cast<std::size_t>(d)], in[h_at(d)], tx(d)};
      double b_funnel = 0.0;
      double b_plain = 0.0;
      if (!block(reg, hot, b_funnel)) return false;
      if (!block(reg, Stream{}, b_plain)) return false;
      const double f = funnel[static_cast<std::size_t>(d)];
      const double b_reg = f * b_funnel + (1.0 - f) * b_plain;

      double cont_r = deliver_p(d) * (lm - 1.0);
      double cont_h = cont_r;
      for (int dp = d + 1; dp < n; ++dp) {
        const double p = next_p(d, dp);
        cont_r += p * out[r_at(dp)];
        cont_h += p * out[h_at(dp)];
      }
      out[r_at(d)] = b_reg + 1.0 + cont_r;
      out[h_at(d)] = b_funnel + 1.0 + cont_h;
    }
    return true;
  };

  Outcome res;
  FixedPointResult fp = solve_fixed_point(state, step, cfg.solver);
  if (!fp.converged && !fp.diverged) {
    FixedPointOptions slower = cfg.solver;
    slower.damping = std::min(0.2, cfg.solver.damping);
    slower.max_iterations = cfg.solver.max_iterations * 2;
    state = initial;
    fp = solve_fixed_point(state, step, slower);
  }
  if (!fp.converged) return res;

  const double h = cfg.hot_fraction;
  const double n_nodes = pow2(n);
  std::vector<double> p_first(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) {
    p_first[static_cast<std::size_t>(d)] = pow2(n - 1 - d) / (n_nodes - 1.0);
  }
  double sr_net = 0.0;
  double sh_net = 0.0;
  for (int d = 0; d < n; ++d) {
    sr_net += p_first[static_cast<std::size_t>(d)] * state[r_at(d)];
    sh_net += p_first[static_cast<std::size_t>(d)] * state[h_at(d)];
  }
  const double arr = cfg.injection_rate / static_cast<double>(cfg.vcs);
  const QueueDelay ws = mg1_wait(arr, (1.0 - h) * sr_net + h * sh_net, lm);
  if (ws.saturated) return res;

  const bool mux_incl = cfg.vcmux_basis == ServiceBasis::kInclusive;
  double sr_total = 0.0;
  double sh_total = 0.0;
  for (int d = 0; d < n; ++d) {
    const double rate_h = hot_rate[static_cast<std::size_t>(d)];
    const double s_r = mux_incl ? state[r_at(d)] : tx(d);
    const double s_h = mux_incl ? state[h_at(d)] : tx(d);
    const double rate_f = lambda_r + rate_h;
    const double sbar_f = (lambda_r * s_r + rate_h * s_h) / rate_f;
    const double v_funnel = vc_multiplexing_degree(rate_f, sbar_f, cfg.vcs);
    const double v_plain = vc_multiplexing_degree(lambda_r, s_r, cfg.vcs);
    const double f = funnel[static_cast<std::size_t>(d)];
    const double v_reg = f * v_funnel + (1.0 - f) * v_plain;
    sr_total += p_first[static_cast<std::size_t>(d)] * (state[r_at(d)] + ws.value) * v_reg;
    sh_total +=
        p_first[static_cast<std::size_t>(d)] * (state[h_at(d)] + ws.value) * v_funnel;
  }
  res.latency = (1.0 - h) * sr_total + h * sh_total;
  res.saturated = false;
  return res;
}

}  // namespace reference

// ---------------------------------------------------------------------------
// Parity assertions
// ---------------------------------------------------------------------------

/// Sweep fractions of the model's own coarse saturation estimate; the tail
/// entries land in the saturated region on purpose.
const std::vector<double> kSweepFractions = {0.02, 0.1, 0.25, 0.4, 0.55,
                                             0.7,  0.8, 0.9,  2.5, 6.0};

void expect_parity(const reference::Outcome& want, bool got_saturated,
                   double got_latency, double rel_tol, const std::string& ctx) {
  ASSERT_EQ(want.saturated, got_saturated) << ctx;
  if (!want.saturated) {
    EXPECT_NEAR(got_latency, want.latency, rel_tol * want.latency) << ctx;
  }
}

TEST(EngineParity, UniformMatchesSeedAcrossSweep) {
  for (int k : {4, 8, 16}) {
    for (int lmsg : {8, 32}) {
      UniformModelConfig cfg;
      cfg.k = k;
      cfg.vcs = 2;
      cfg.message_length = lmsg;
      // Capacity scale: the x channel saturates when lc * tx_x -> 1.
      const double tx_x = static_cast<double>(lmsg) +
                          static_cast<double>(k) / 2.0 - 1.0 +
                          static_cast<double>(k - 1) / 2.0;
      const double cap = 2.0 / (static_cast<double>(k - 1) * tx_x);
      for (double f : kSweepFractions) {
        cfg.injection_rate = std::min(1.0, f * cap);
        const UniformModelResult got = UniformTorusModel(cfg).solve();
        const reference::Outcome want = reference::uniform_solve(cfg);
        expect_parity(want, got.saturated, got.latency, 1e-9,
                      "k=" + std::to_string(k) + " Lm=" + std::to_string(lmsg) +
                          " f=" + std::to_string(f));
      }
    }
  }
}

TEST(EngineParity, HypercubeMatchesSeedAcrossSweep) {
  for (int dims : {4, 6}) {
    for (double h : {0.0, 0.2, 0.5}) {
      HypercubeModelConfig cfg;
      cfg.dims = dims;
      cfg.vcs = 2;
      cfg.message_length = 32;
      cfg.hot_fraction = h;
      const double sat = HypercubeHotspotModel(cfg).estimated_saturation_rate();
      for (double f : kSweepFractions) {
        cfg.injection_rate = std::min(1.0, f * sat);
        const HypercubeModelResult got = HypercubeHotspotModel(cfg).solve();
        const reference::Outcome want = reference::hypercube_solve(cfg);
        // The engine sums the e-cube continuation terms before adding the
        // constant; the seed accumulated in place. Identical maths, ulp-level
        // association differences — hence the slightly looser tolerance.
        expect_parity(want, got.saturated, got.latency, 1e-7,
                      "dims=" + std::to_string(dims) + " h=" + std::to_string(h) +
                          " f=" + std::to_string(f));
      }
    }
  }
}

TEST(EngineParity, PaperFigureOperatingPointsMatchSeed) {
  // The Fig. 1 (Lm=32) and Fig. 2 (Lm=100) panels: 16x16 torus, V=2,
  // h in {20%, 40%, 70%}, sampled over the plotted 10-95% load range.
  for (int lmsg : {32, 100}) {
    for (double h : {0.2, 0.4, 0.7}) {
      ModelConfig cfg;
      cfg.k = 16;
      cfg.vcs = 2;
      cfg.message_length = lmsg;
      cfg.hot_fraction = h;
      const double sat = HotspotModel(cfg).estimated_saturation_rate();
      for (double f : {0.1, 0.35, 0.6, 0.85, 0.95}) {
        cfg.injection_rate = f * sat;
        const ModelResult got = HotspotModel(cfg).solve();
        const reference::Outcome want = reference::HotspotReference(cfg).solve();
        expect_parity(want, got.saturated, got.latency, 1e-9,
                      "Lm=" + std::to_string(lmsg) + " h=" + std::to_string(h) +
                          " f=" + std::to_string(f));
      }
    }
  }
}

TEST(EngineParity, HotspotAtZeroHotFractionIsStructurallyUniform) {
  // With h = 0 the hot-spot builder degenerates to the uniform builder over
  // the same engine (hot streams vanish, the five regular classes collapse
  // pairwise), so the two models agree far inside solver tolerance — a
  // structural guarantee, not a coincidence of two codebases.
  for (int k : {4, 8, 16}) {
    ModelConfig hc;
    hc.k = k;
    hc.vcs = 2;
    hc.message_length = 32;
    hc.hot_fraction = 0.0;
    UniformModelConfig uc;
    uc.k = k;
    uc.vcs = 2;
    uc.message_length = 32;
    const double sat = HotspotModel(hc).estimated_saturation_rate();
    for (double f : {0.1, 0.5, 0.9}) {
      hc.injection_rate = uc.injection_rate = f * sat;
      const ModelResult hr = HotspotModel(hc).solve();
      const UniformModelResult ur = UniformTorusModel(uc).solve();
      ASSERT_EQ(hr.saturated, ur.saturated) << "k=" << k << " f=" << f;
      if (!hr.saturated) {
        EXPECT_NEAR(hr.latency, ur.latency, 1e-9 * ur.latency)
            << "k=" << k << " f=" << f;
      }
    }
  }
}

TEST(EngineParity, RegistryPathMatchesDirectModelsBitForBit) {
  // The polymorphic AnalyticalModel interface (ScenarioSpec -> registry ->
  // solve_at) must return the same bits as constructing the direct model
  // class, for every family, across sweeps including the saturated region.
  const auto check = [](const core::ScenarioSpec& spec,
                        const auto& direct_solve_latency, double sat_estimate,
                        const std::string& ctx) {
    const core::ModelDispatch d = core::make_analytical_model(spec);
    ASSERT_TRUE(d.has_model()) << ctx << ": " << d.sim_only_reason;
    for (double f : kSweepFractions) {
      const double lambda = std::min(1.0, f * sat_estimate);
      const ModelResult got = d.model->solve_at(lambda);
      const auto [want_saturated, want_latency] = direct_solve_latency(lambda);
      ASSERT_EQ(got.saturated, want_saturated) << ctx << " f=" << f;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got.latency),
                std::bit_cast<std::uint64_t>(want_latency))
          << ctx << " f=" << f;
    }
  };

  {
    core::ScenarioSpec spec;
    spec.torus().k = 8;
    spec.hotspot().fraction = 0.2;
    ModelConfig cfg;
    cfg.k = 8;
    cfg.vcs = spec.vcs;
    cfg.message_length = spec.message_length;
    cfg.hot_fraction = 0.2;
    check(spec,
          [&](double lambda) {
            cfg.injection_rate = lambda;
            const ModelResult r = HotspotModel(cfg).solve();
            return std::make_pair(r.saturated, r.latency);
          },
          HotspotModel(cfg).estimated_saturation_rate(), "hotspot-torus");
  }
  {
    core::ScenarioSpec spec;
    spec.torus().k = 8;
    spec.traffic = core::UniformTraffic{};
    UniformModelConfig cfg;
    cfg.k = 8;
    cfg.vcs = spec.vcs;
    cfg.message_length = spec.message_length;
    const double tx_x = static_cast<double>(cfg.message_length) + 8.0 / 2.0 - 1.0 +
                        (8.0 - 1.0) / 2.0;
    check(spec,
          [&](double lambda) {
            cfg.injection_rate = lambda;
            const UniformModelResult r = UniformTorusModel(cfg).solve();
            return std::make_pair(r.saturated, r.latency);
          },
          2.0 / (7.0 * tx_x), "uniform-torus");
  }
  {
    core::ScenarioSpec spec;
    spec.topology = core::HypercubeTopology{6};
    spec.hotspot().fraction = 0.2;
    HypercubeModelConfig cfg;
    cfg.dims = 6;
    cfg.vcs = spec.vcs;
    cfg.message_length = spec.message_length;
    cfg.hot_fraction = 0.2;
    check(spec,
          [&](double lambda) {
            cfg.injection_rate = lambda;
            const HypercubeModelResult r = HypercubeHotspotModel(cfg).solve();
            return std::make_pair(r.saturated, r.latency);
          },
          HypercubeHotspotModel(cfg).estimated_saturation_rate(),
          "hotspot-hypercube");
  }
  {
    core::ScenarioSpec spec;
    spec.topology = core::MeshTopology{8, 2};
    spec.traffic = core::UniformTraffic{};
    MeshModelConfig cfg;
    cfg.k = 8;
    cfg.n = 2;
    cfg.vcs = spec.vcs;
    cfg.message_length = spec.message_length;
    check(spec,
          [&](double lambda) {
            cfg.injection_rate = lambda;
            const MeshModelResult r = MeshUniformModel(cfg).solve();
            return std::make_pair(r.saturated, r.latency);
          },
          MeshUniformModel(cfg).estimated_saturation_rate(), "uniform-mesh");
  }
}

TEST(EngineParity, HotspotMatchesSeedAcrossSweep) {
  for (int k : {4, 8, 16}) {
    for (double h : {0.0, 0.2, 0.7}) {
      ModelConfig cfg;
      cfg.k = k;
      cfg.vcs = 2;
      cfg.message_length = 32;
      cfg.hot_fraction = h;
      const double sat = HotspotModel(cfg).estimated_saturation_rate();
      for (double f : kSweepFractions) {
        cfg.injection_rate = std::min(1.0, f * sat);
        const ModelResult got = HotspotModel(cfg).solve();
        const reference::Outcome want = reference::HotspotReference(cfg).solve();
        expect_parity(want, got.saturated, got.latency, 1e-9,
                      "k=" + std::to_string(k) + " h=" + std::to_string(h) +
                          " f=" + std::to_string(f));
      }
    }
  }
}

}  // namespace
}  // namespace kncube::model
