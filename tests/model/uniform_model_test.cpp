#include "model/uniform_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace kncube::model {
namespace {

UniformModelConfig base_config() {
  UniformModelConfig cfg;
  cfg.k = 16;
  cfg.vcs = 2;
  cfg.message_length = 32;
  cfg.injection_rate = 1e-4;
  return cfg;
}

TEST(UniformModel, ZeroLoadLimitMatchesClosedForm) {
  UniformModelConfig cfg = base_config();
  cfg.injection_rate = 1e-9;
  const UniformTorusModel model(cfg);
  const UniformModelResult r = model.solve();
  ASSERT_FALSE(r.saturated);
  EXPECT_NEAR(r.latency, model.zero_load_latency(), 0.01);
}

TEST(UniformModel, ZeroLoadClosedFormValue) {
  // k=16, Lm=32: (p_x + p_y)(k/2 + Lm - 1) + p_xy (k + Lm - 1).
  UniformModelConfig cfg = base_config();
  const double p_x = 15.0 / 255.0;
  const double p_xy = 225.0 / 255.0;
  const double expected = 2 * p_x * (8 + 31) + p_xy * (16 + 31);
  EXPECT_NEAR(UniformTorusModel(cfg).zero_load_latency(), expected, 1e-12);
}

TEST(UniformModel, LatencyIncreasesWithLoad) {
  double prev = 0.0;
  for (double lam : {1e-5, 1e-4, 3e-4, 6e-4, 1e-3}) {
    UniformModelConfig cfg = base_config();
    cfg.injection_rate = lam;
    const UniformModelResult r = UniformTorusModel(cfg).solve();
    ASSERT_FALSE(r.saturated) << lam;
    EXPECT_GT(r.latency, prev);
    prev = r.latency;
  }
}

TEST(UniformModel, SaturatesAtHighLoad) {
  UniformModelConfig cfg = base_config();
  // Channel rate lambda*(k-1)/2 with tx service ~Lm+k/2-1: capacity ~3.4e-3.
  cfg.injection_rate = 5e-3;
  const UniformModelResult r = UniformTorusModel(cfg).solve();
  EXPECT_TRUE(r.saturated);
  EXPECT_TRUE(std::isinf(r.latency));
}

TEST(UniformModel, SaturationBoundaryIsSharp) {
  // Bracket the boundary: stable slightly below, saturated slightly above.
  UniformModelConfig lo = base_config();
  UniformModelConfig hi = base_config();
  double lo_rate = 1e-5;
  double hi_rate = 5e-3;
  for (int i = 0; i < 30; ++i) {
    const double mid = 0.5 * (lo_rate + hi_rate);
    UniformModelConfig cfg = base_config();
    cfg.injection_rate = mid;
    (UniformTorusModel(cfg).solve().saturated ? hi_rate : lo_rate) = mid;
  }
  lo.injection_rate = lo_rate;
  hi.injection_rate = hi_rate;
  EXPECT_FALSE(UniformTorusModel(lo).solve().saturated);
  EXPECT_TRUE(UniformTorusModel(hi).solve().saturated);
  EXPECT_NEAR(hi_rate / lo_rate, 1.0, 1e-4);
  // The boundary sits below the naive single-channel bound 1/(lc_coeff*Lm).
  EXPECT_LT(lo_rate, 1.0 / (7.5 * 32.0));
}

TEST(UniformModel, LongerMessagesAreSlower) {
  UniformModelConfig short_cfg = base_config();
  UniformModelConfig long_cfg = base_config();
  short_cfg.message_length = 16;
  long_cfg.message_length = 64;
  const auto rs = UniformTorusModel(short_cfg).solve();
  const auto rl = UniformTorusModel(long_cfg).solve();
  ASSERT_FALSE(rs.saturated);
  ASSERT_FALSE(rl.saturated);
  EXPECT_GT(rl.latency, rs.latency + 40.0);
}

TEST(UniformModel, VcMuxWithinBounds) {
  UniformModelConfig cfg = base_config();
  cfg.injection_rate = 1e-3;
  const auto r = UniformTorusModel(cfg).solve();
  ASSERT_FALSE(r.saturated);
  EXPECT_GE(r.vc_mux_x, 1.0);
  EXPECT_LE(r.vc_mux_x, 2.0);
  EXPECT_GE(r.vc_mux_y, 1.0);
  EXPECT_LE(r.vc_mux_y, 2.0);
}

TEST(UniformModel, ChannelRateFollowsEq3) {
  UniformModelConfig cfg = base_config();
  cfg.injection_rate = 4e-4;
  EXPECT_DOUBLE_EQ(UniformTorusModel(cfg).channel_rate(), 4e-4 * 7.5);
}

TEST(UniformModel, NetworkLatencyExcludesSourceWait) {
  UniformModelConfig cfg = base_config();
  cfg.injection_rate = 1e-3;
  const auto r = UniformTorusModel(cfg).solve();
  ASSERT_FALSE(r.saturated);
  EXPECT_GT(r.source_wait, 0.0);
  EXPECT_GT(r.latency, r.network_latency);
}

TEST(UniformModel, ValidatesConfig) {
  UniformModelConfig cfg = base_config();
  cfg.k = 1;
  EXPECT_THROW(UniformTorusModel{cfg}, std::invalid_argument);
  cfg = base_config();
  cfg.injection_rate = -1.0;
  EXPECT_THROW(UniformTorusModel{cfg}, std::invalid_argument);
  cfg = base_config();
  cfg.message_length = 0;
  EXPECT_THROW(UniformTorusModel{cfg}, std::invalid_argument);
  cfg = base_config();
  cfg.vcs = 0;
  EXPECT_THROW(UniformTorusModel{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace kncube::model
