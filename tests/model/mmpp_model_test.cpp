// Randomized property tests for the MMPP (bursty-arrival) torus families and
// the centre-hot-spot mesh — the model_property_test invariants extended to
// the families this engine stage made modelable:
//
//  1. Monotonicity: analytical mean latency is non-decreasing in the
//     injection rate below the saturation boundary. The MMPP arrival IDC
//     grows with lambda (more contrast between burst and idle rates), so
//     this also exercises the coupling between the dispersion recomputation
//     and the underlying fixed point.
//  2. Continuation purity: warm-started solves are bit-identical to cold
//     ones on the same grid.
//  3. Bernoulli degeneration: burst_multiplier == 1 makes the modulated
//     chain emit the mean rate in both states — the arrival IDC is exactly
//     1.0 and every solve must be bit-identical to the Bernoulli adapter's.
//
// Specs are drawn from a fixed-seed PRNG so failures reproduce exactly.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "core/model_registry.hpp"
#include "core/scenario_spec.hpp"
#include "util/rng.hpp"

namespace kncube::model {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// A non-degenerate random MMPP shape: stationary burst fraction bounded
/// away from 0 and 1, burst rate achievable (mult * pi_b <= 0.9), mixing
/// rate sigma in [0.02, 0.3] per cycle.
core::MmppArrivals random_mmpp(util::Xoshiro256& rng) {
  core::MmppArrivals m;
  m.burst_multiplier = 1.5 + 2.5 * rng.uniform();
  const double pi_burst = 0.05 + (0.9 / m.burst_multiplier - 0.05) * rng.uniform();
  const double sigma = 0.02 + 0.28 * rng.uniform();
  m.p_enter_burst = sigma * pi_burst;
  m.p_leave_burst = sigma * (1.0 - pi_burst);
  return m;
}

/// One random modeled spec. `family` indexes: 0 mmpp-hotspot-torus,
/// 1 mmpp-uniform-torus, 2 hotspot-mesh.
core::ScenarioSpec random_spec(int family, util::Xoshiro256& rng) {
  core::ScenarioSpec spec;
  const int lm_choices[] = {8, 16, 32};
  spec.message_length = lm_choices[rng.uniform_below(3)];
  spec.vcs = 2 + static_cast<int>(rng.uniform_below(2));
  if (family <= 1) {
    const int k_choices[] = {4, 6, 8, 10};
    spec.torus().k = k_choices[rng.uniform_below(4)];
    spec.arrivals = random_mmpp(rng);
    if (family == 0) {
      spec.hotspot().fraction = 0.05 + 0.45 * rng.uniform();
    } else {
      spec.traffic = core::UniformTraffic{};
    }
  } else {
    const int k_choices[] = {4, 6, 8};
    const int k = k_choices[rng.uniform_below(3)];
    const int n = 2 + static_cast<int>(rng.uniform_below(2));
    spec.topology = core::MeshTopology{k, n};
    spec.hotspot().fraction = 0.05 + 0.45 * rng.uniform();
  }
  return spec;
}

const char* family_name(int family) {
  switch (family) {
    case 0: return "mmpp-hotspot-torus";
    case 1: return "mmpp-uniform-torus";
    default: return "hotspot-mesh";
  }
}

TEST(MmppModelProperty, LatencyMonotoneAndWarmEqualsColdOnRandomSpecs) {
  util::Xoshiro256 rng(0xB005575EED);
  for (int family = 0; family < 3; ++family) {
    for (int trial = 0; trial < 3; ++trial) {
      const core::ScenarioSpec spec = random_spec(family, rng);
      const std::string label = std::string(family_name(family)) + " trial " +
                                std::to_string(trial) + "\n" +
                                core::format_scenario(spec);
      core::ModelDispatch dispatch = core::make_analytical_model(spec);
      ASSERT_TRUE(dispatch.has_model()) << label;
      EXPECT_STREQ(dispatch.model->name(), family_name(family)) << label;

      const double est = dispatch.model->estimated_saturation_rate();
      ASSERT_GT(est, 0.0) << label;

      std::vector<double> grid;
      for (double f : {0.05, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9}) {
        grid.push_back(f * est);
      }

      double prev_latency = dispatch.model->zero_load_latency();
      ASSERT_GT(prev_latency, 0.0) << label;
      std::vector<double> chain;  // converged state for warm chaining
      for (double lambda : grid) {
        const ModelResult cold = dispatch.model->solve_at(lambda);
        std::vector<double> state;
        const ModelResult warm = dispatch.model->solve_at(
            lambda, chain.empty() ? nullptr : &chain, &state);

        ASSERT_EQ(cold.saturated, warm.saturated) << label << "lambda=" << lambda;
        EXPECT_EQ(bits(cold.latency), bits(warm.latency))
            << label << "lambda=" << lambda;
        EXPECT_EQ(bits(cold.regular_latency), bits(warm.regular_latency))
            << label << "lambda=" << lambda;
        EXPECT_EQ(bits(cold.max_channel_utilization),
                  bits(warm.max_channel_utilization))
            << label << "lambda=" << lambda;
        if (!state.empty()) chain = std::move(state);

        if (cold.saturated) continue;
        EXPECT_GE(cold.latency, prev_latency * (1.0 - 1e-9))
            << label << "lambda=" << lambda;
        prev_latency = cold.latency;
      }
    }
  }
}

TEST(MmppModelProperty, UnitBurstMultiplierIsBitwiseBernoulli) {
  util::Xoshiro256 rng(0xDE6E7E5EED);
  for (int family = 0; family < 2; ++family) {
    for (int trial = 0; trial < 3; ++trial) {
      core::ScenarioSpec mmpp_spec = random_spec(family, rng);
      // Degenerate the chain: both states emit the mean rate, so the model
      // must reproduce the Bernoulli adapter's numbers exactly.
      mmpp_spec.mmpp().burst_multiplier = 1.0;
      core::ScenarioSpec bernoulli_spec = mmpp_spec;
      bernoulli_spec.arrivals = core::BernoulliArrivals{};
      const std::string label = std::string(family_name(family)) + " trial " +
                                std::to_string(trial) + "\n" +
                                core::format_scenario(mmpp_spec);

      core::ModelDispatch md = core::make_analytical_model(mmpp_spec);
      core::ModelDispatch bd = core::make_analytical_model(bernoulli_spec);
      ASSERT_TRUE(md.has_model()) << label;
      ASSERT_TRUE(bd.has_model()) << label;

      EXPECT_EQ(bits(md.model->zero_load_latency()),
                bits(bd.model->zero_load_latency()))
          << label;
      EXPECT_EQ(bits(md.model->estimated_saturation_rate()),
                bits(bd.model->estimated_saturation_rate()))
          << label;

      const double est = bd.model->estimated_saturation_rate();
      for (double f : {0.1, 0.3, 0.5, 0.7}) {
        const ModelResult a = md.model->solve_at(f * est);
        const ModelResult b = bd.model->solve_at(f * est);
        ASSERT_EQ(a.saturated, b.saturated) << label << "f=" << f;
        EXPECT_EQ(bits(a.latency), bits(b.latency)) << label << "f=" << f;
        EXPECT_EQ(bits(a.regular_latency), bits(b.regular_latency))
            << label << "f=" << f;
        EXPECT_EQ(bits(a.hot_latency), bits(b.hot_latency))
            << label << "f=" << f;
        EXPECT_EQ(bits(a.max_channel_utilization),
                  bits(b.max_channel_utilization))
            << label << "f=" << f;
      }
    }
  }
}

}  // namespace
}  // namespace kncube::model
